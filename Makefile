# Developer entry points. `make ci` is the gate: vet + build + race-enabled
# tests + the experiment shape assertions.

GO ?= go

.PHONY: all vet build test race experiments bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The EXPERIMENTS.md shape assertions (E1..E17 tables must reproduce).
experiments:
	$(GO) test -run Experiment ./...

bench:
	$(GO) test -bench=. -benchmem ./...

ci: vet build race experiments
