# Developer entry points. `make ci` is the gate: lint (gofmt + vet) +
# build + race-enabled tests + the experiment shape assertions + executor
# parity (hot and tiered) under -race + the fault-injection (chaos) suite
# + the wire-protocol conformance/loadgen smoke suite + the HTAP
# concurrent-ingest/merge suite under -race + the observability suite
# (fingerprints, sys.* views, wire monitoring e2e) + smoke runs of the
# vectorized-scan, compressed-execution and commit-pipeline
# micro-benchmarks.

GO ?= go

.PHONY: all lint vet build test race experiments parity chaos wire htap monitor benchsmoke benchcompressed benchcommit benchbaseline bench ci

all: ci

# Formatting and static checks; fails on any gofmt diff so the wide
# refactor surface stays canonical.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The EXPERIMENTS.md shape assertions (E1..E25 tables must reproduce).
experiments:
	$(GO) test -run Experiment ./...

# Executor parity: every query shape must produce identical output on the
# interpreted, compiled and vectorized executors, under the race detector.
parity:
	$(GO) test -race -run 'TestVectorized|TestTierParity' ./internal/sqlexec/

# Fault injection under the race detector: node crashes, link partitions,
# replica failover, idempotent commit retries and shared-log hole repair.
chaos:
	$(GO) test -race -run 'TestFT' ./internal/soe/ ./internal/sharedlog/

# Wire-protocol conformance under the race detector: the e2e client/server
# suite, the extended-protocol state machine (malformed frames, Bind to a
# missing statement, skip-until-Sync), and the loadgen smoke run — a small
# in-process connection fleet, bounded duration, zero protocol errors.
wire:
	$(GO) test -race -run 'TestWire|TestState|TestLoadSmoke' ./internal/pgwire/

# The write-scale HTAP suite under the race detector: merge/snapshot
# parity property test, multi-writer conflict matrix, group-commit
# batching, merge-epoch aborts, bounded RunInTxn retries, WAL recovery
# with interleaved background merges, the SQL-level chaos triangle
# (ingest + merge daemon + analytic scans), and the E24 experiment shape.
htap:
	$(GO) test -race -run 'TestMergeSnapshotParity|TestConflictMatrix|TestMergeEpoch|TestGroupCommit|TestRunInTxnBounded|TestOwnInserts' ./internal/txn/
	$(GO) test -race -run 'TestRecoveryWithBackgroundMerges' ./internal/wal/
	$(GO) test -race -run 'TestHTAPChaos' ./internal/sqlexec/
	$(GO) test -run 'TestE24Shape' ./internal/experiments/

# The observability suite under the race detector: fingerprint
# normalization, the sys.* views on all three executors, statement-stats
# aggregation and eviction, slow-log retention, the registry <->
# sys.m_metrics <-> Prometheus consistency contract, the end-to-end
# wire monitoring test (a SQL client polling sys.m_statements and
# sys.m_connections under concurrent load), and the E25 self-observation
# experiment shape.
monitor:
	$(GO) test -race -run 'TestNormalizeSQL|TestFingerprint|TestSysViews|TestStatementStats|TestSlowLogRetention|TestMetricsConsistency' ./internal/sqlexec/
	$(GO) test -race -run 'TestMonitoringViewsOverWire' ./internal/pgwire/
	$(GO) test -run 'TestE25Shape' ./internal/experiments/

# Quick pass over the vectorized scan/aggregation micro-benchmarks, gated
# by cmd/benchguard against the committed BENCH_vectorized_baseline.json:
# any ns/op regression beyond 25% fails the target. benchguard also fails
# if a baseline benchmark is missing from the output, so a crashed bench
# run cannot slip through the pipe as a pass.
benchsmoke:
	$(GO) test -run xxx -bench 'BenchmarkScan(Vectorized|RowAtATime)$$|BenchmarkParallelAgg' -benchtime=100x . | $(GO) run ./cmd/benchguard -match 'BenchmarkScan|BenchmarkParallelAgg'

# Compressed-execution micro-benchmarks: the code-valued join probe and
# the run-folding group-by against their row-at-a-time counterparts,
# gated by the same baseline file (join/group-by subset via -match).
benchcompressed:
	$(GO) test -run xxx -bench 'BenchmarkJoinDict|BenchmarkGroupByRLE' -benchtime=20x . | $(GO) run ./cmd/benchguard -match 'BenchmarkJoinDict|BenchmarkGroupByRLE'

# Commit-pipeline micro-benchmarks: concurrent disjoint-table committers
# through the group-commit path vs the serialized baseline (one fsync per
# batch vs one per commit), gated by the same baseline file.
benchcommit:
	$(GO) test -run xxx -bench 'BenchmarkCommit(GroupDisjoint|Serialized)$$' -benchtime=1000x . | $(GO) run ./cmd/benchguard -match 'BenchmarkCommit'

# Regenerate the committed benchmark baseline after an intentional perf
# change; benchguard -write preserves the workload prose and recomputes
# the derived speedups. See README "Benchmark baseline" for the workflow.
# Two passes merge into one file: the commit benchmarks need more
# iterations than the big-table scans for the group batching to settle.
benchbaseline:
	$(GO) test -run xxx -bench 'BenchmarkScan(Vectorized|RowAtATime)$$|BenchmarkParallelAgg|BenchmarkJoinDict|BenchmarkGroupByRLE' -benchtime=10x -benchmem . | $(GO) run ./cmd/benchguard -write
	$(GO) test -run xxx -bench 'BenchmarkCommit(GroupDisjoint|Serialized)$$' -benchtime=1000x -benchmem . | $(GO) run ./cmd/benchguard -write

bench:
	$(GO) test -bench=. -benchmem ./...

ci: lint build race experiments parity chaos wire htap monitor benchsmoke benchcompressed benchcommit
