# Developer entry points. `make ci` is the gate: vet + build + race-enabled
# tests + the experiment shape assertions + executor parity under -race +
# the fault-injection (chaos) suite + a smoke run of the vectorized-scan
# micro-benchmarks.

GO ?= go

.PHONY: all vet build test race experiments parity chaos benchsmoke bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The EXPERIMENTS.md shape assertions (E1..E19 tables must reproduce).
experiments:
	$(GO) test -run Experiment ./...

# Executor parity: every query shape must produce identical output on the
# interpreted, compiled and vectorized executors, under the race detector.
parity:
	$(GO) test -race -run 'TestVectorized' ./internal/sqlexec/

# Fault injection under the race detector: node crashes, link partitions,
# replica failover, idempotent commit retries and shared-log hole repair.
chaos:
	$(GO) test -race -run 'TestFT' ./internal/soe/ ./internal/sharedlog/

# Quick pass over the vectorized scan/aggregation micro-benchmarks; the
# committed baseline lives in BENCH_vectorized_baseline.json.
benchsmoke:
	$(GO) test -run xxx -bench 'BenchmarkScan(Vectorized|RowAtATime)$$|BenchmarkParallelAgg' -benchtime=100x .

bench:
	$(GO) test -bench=. -benchmem ./...

ci: vet build race experiments parity chaos benchsmoke
