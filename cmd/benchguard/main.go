// benchguard gates `make benchsmoke` against the committed baseline: it
// parses `go test -bench` output (stdin or a file argument), compares each
// benchmark's ns/op to BENCH_vectorized_baseline.json, and exits non-zero
// if any regresses beyond the tolerance — or if a baseline benchmark is
// missing from the run, so a crashed bench pass cannot read as a pass.
//
// With -write it regenerates the baseline instead of gating: measured
// results replace the committed ones (suite/workload prose and per-result
// notes are carried over), derived speedups and the acceptance verdict
// are recomputed, and the file is rewritten in place. `make benchbaseline`
// is the one-command wrapper.
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkScan...' . | go run ./cmd/benchguard
//	go run ./cmd/benchguard [-baseline file.json] [-tolerance 25] [out.txt]
//	go test -bench ... -benchmem . | go run ./cmd/benchguard -write
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

type result struct {
	Name        string `json:"name"`
	Iterations  int64  `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
	Note        string `json:"note,omitempty"`
}

type baseline struct {
	Suite      string             `json:"suite"`
	Date       string             `json:"date"`
	Goos       string             `json:"goos"`
	Goarch     string             `json:"goarch"`
	CPU        string             `json:"cpu"`
	CPUs       int                `json:"cpus"`
	Command    string             `json:"command"`
	Workloads  map[string]string  `json:"workloads"`
	Results    []result           `json:"results"`
	Derived    map[string]float64 `json:"derived"`
	Acceptance struct {
		ScanTarget    string `json:"scan_speedup_target"`
		AggTarget     string `json:"parallel_agg_speedup_target"`
		JoinTarget    string `json:"join_code_speedup_target,omitempty"`
		GroupByTarget string `json:"groupby_rle_speedup_target,omitempty"`
		CommitTarget  string `json:"commit_group_speedup_target,omitempty"`
		Met           bool   `json:"met"`
	} `json:"acceptance"`
}

// benchLine matches one result row of `go test -bench` output, e.g.
// "BenchmarkScanVectorized-4   100   7797842 ns/op   1220117 B/op ...".
// The -N suffix is GOMAXPROCS and is stripped for baseline matching.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	baseFile := flag.String("baseline", "BENCH_vectorized_baseline.json", "baseline JSON (ns_per_op per benchmark)")
	tolerance := flag.Float64("tolerance", 25, "allowed ns/op regression over baseline, percent")
	write := flag.Bool("write", false, "regenerate the baseline from the bench output instead of gating against it")
	match := flag.String("match", "", "gate only baseline benchmarks whose name matches this regex (the partial-suite targets pass the subset they ran)")
	flag.Parse()

	raw, err := os.ReadFile(*baseFile)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *baseFile, err))
	}
	gated := base.Results
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fatal(fmt.Errorf("-match: %w", err))
		}
		gated = nil
		for _, r := range base.Results {
			if re.MatchString(r.Name) {
				gated = append(gated, r)
			}
		}
		if len(gated) == 0 {
			fatal(fmt.Errorf("-match %q selects no baseline benchmark — misconfigured gate", *match))
		}
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	// Tee the bench output through so the run stays visible in CI logs,
	// collecting measured results along the way.
	got := map[string]float64{}
	var measured []result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if m := benchLine.FindStringSubmatch(line); m != nil {
			iters, _ := strconv.ParseInt(m[2], 10, 64)
			ns, _ := strconv.ParseFloat(m[3], 64)
			got[m[1]] = ns
			r := result{Name: m[1], Iterations: iters, NsPerOp: int64(math.Round(ns))}
			if m[4] != "" {
				r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
				r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			measured = append(measured, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	if *write {
		if err := writeBaseline(*baseFile, base, measured); err != nil {
			fatal(err)
		}
		return
	}

	failed := false
	fmt.Printf("\nbenchguard: vs %s (tolerance %.0f%%)\n", *baseFile, *tolerance)
	for _, r := range gated {
		ns, ok := got[r.Name]
		if !ok {
			fmt.Printf("  FAIL %-28s missing from bench output (did the run crash?)\n", r.Name)
			failed = true
			continue
		}
		delta := (ns - float64(r.NsPerOp)) / float64(r.NsPerOp) * 100
		verdict := "ok  "
		if delta > *tolerance {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("  %s %-28s %12.0f ns/op  baseline %12d  %+6.1f%%\n", verdict, r.Name, ns, r.NsPerOp, delta)
	}
	if failed {
		fmt.Println("benchguard: regression beyond tolerance — see FAIL rows above")
		os.Exit(1)
	}
	fmt.Println("benchguard: within tolerance")
}

// writeBaseline rewrites the baseline JSON from the measured results.
// Prose metadata (suite, workloads, command, per-result notes) carries
// over from the committed file; machine facts and derived speedups are
// recomputed from this run.
func writeBaseline(path string, old baseline, measured []result) error {
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark results parsed — nothing to write")
	}
	next := old
	next.Date = time.Now().Format("2006-01-02")
	next.Goos, next.Goarch, next.CPUs = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()
	notes := map[string]string{}
	for _, r := range old.Results {
		notes[r.Name] = r.Note
	}
	// Merge rather than replace: a partial bench run refreshes the
	// benchmarks it measured and keeps the rest, so the gate never
	// silently shrinks.
	fresh := map[string]result{}
	for _, r := range measured {
		r.Note = notes[r.Name]
		fresh[r.Name] = r
	}
	next.Results = nil
	ns := map[string]float64{}
	for _, r := range old.Results {
		if m, ok := fresh[r.Name]; ok {
			r = m
			delete(fresh, r.Name)
		}
		next.Results = append(next.Results, r)
		ns[r.Name] = float64(r.NsPerOp)
	}
	for _, r := range measured {
		if m, ok := fresh[r.Name]; ok {
			next.Results = append(next.Results, m)
			ns[r.Name] = float64(m.NsPerOp)
		}
	}
	round1 := func(x float64) float64 { return math.Round(x*10) / 10 }
	scan, agg, join, groupby, commit := 0.0, 0.0, 0.0, 0.0, 0.0
	if v := ns["BenchmarkScanVectorized"]; v > 0 {
		scan = round1(ns["BenchmarkScanRowAtATime"] / v)
	}
	if v := ns["BenchmarkParallelAgg4Workers"]; v > 0 {
		agg = round1(ns["BenchmarkParallelAgg1Worker"] / v)
	}
	if v := ns["BenchmarkJoinDict"]; v > 0 {
		join = round1(ns["BenchmarkJoinDictRowAtATime"] / v)
	}
	if v := ns["BenchmarkGroupByRLELowCard"]; v > 0 {
		groupby = round1(ns["BenchmarkGroupByRLERowAtATime"] / v)
	}
	if v := ns["BenchmarkCommitGroupDisjoint"]; v > 0 {
		commit = round1(ns["BenchmarkCommitSerialized"] / v)
	}
	next.Derived = map[string]float64{
		"scan_speedup_vectorized_vs_row_at_a_time": scan,
		"parallel_agg_speedup_4_workers_vs_1":      agg,
		"join_code_speedup_vs_row_at_a_time":       join,
		"groupby_rle_speedup_vs_row_at_a_time":     groupby,
		"commit_group_speedup_vs_serialized":       commit,
	}
	next.Acceptance.Met = scan >= 3 && agg >= 2 && join >= 2 && groupby >= 2 && commit >= 2
	out, err := json.MarshalIndent(next, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nbenchguard: wrote %s (%d benchmarks, scan %.1fx, parallel agg %.1fx, join %.1fx, group-by %.1fx, commit %.1fx, acceptance met=%v)\n",
		path, len(next.Results), scan, agg, join, groupby, commit, next.Acceptance.Met)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
