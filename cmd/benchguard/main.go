// benchguard gates `make benchsmoke` against the committed baseline: it
// parses `go test -bench` output (stdin or a file argument), compares each
// benchmark's ns/op to BENCH_vectorized_baseline.json, and exits non-zero
// if any regresses beyond the tolerance — or if a baseline benchmark is
// missing from the run, so a crashed bench pass cannot read as a pass.
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkScan...' . | go run ./cmd/benchguard
//	go run ./cmd/benchguard [-baseline file.json] [-tolerance 25] [out.txt]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

type baseline struct {
	Suite   string `json:"suite"`
	Results []struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
	} `json:"results"`
}

// benchLine matches one result row of `go test -bench` output, e.g.
// "BenchmarkScanVectorized-4   100   7797842 ns/op   1220117 B/op ...".
// The -N suffix is GOMAXPROCS and is stripped for baseline matching.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

func main() {
	baseFile := flag.String("baseline", "BENCH_vectorized_baseline.json", "baseline JSON (ns_per_op per benchmark)")
	tolerance := flag.Float64("tolerance", 25, "allowed ns/op regression over baseline, percent")
	flag.Parse()

	raw, err := os.ReadFile(*baseFile)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *baseFile, err))
	}
	want := map[string]int64{}
	for _, r := range base.Results {
		want[r.Name] = r.NsPerOp
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	// Tee the bench output through so the run stays visible in CI logs,
	// collecting measured ns/op along the way.
	got := map[string]float64{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if m := benchLine.FindStringSubmatch(line); m != nil {
			ns, _ := strconv.ParseFloat(m[2], 64)
			got[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	failed := false
	fmt.Printf("\nbenchguard: vs %s (tolerance %.0f%%)\n", *baseFile, *tolerance)
	for _, r := range base.Results {
		ns, ok := got[r.Name]
		if !ok {
			fmt.Printf("  FAIL %-28s missing from bench output (did the run crash?)\n", r.Name)
			failed = true
			continue
		}
		delta := (ns - float64(r.NsPerOp)) / float64(r.NsPerOp) * 100
		verdict := "ok  "
		if delta > *tolerance {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("  %s %-28s %12.0f ns/op  baseline %12d  %+6.1f%%\n", verdict, r.Name, ns, r.NsPerOp, delta)
	}
	if failed {
		fmt.Println("benchguard: regression beyond tolerance — see FAIL rows above")
		os.Exit(1)
	}
	fmt.Println("benchguard: within tolerance")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
