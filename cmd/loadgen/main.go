// loadgen drives a mixed workload against any PostgreSQL wire-protocol
// endpoint — the soed -pgport front end or a standalone pgwire server —
// over N concurrent connections and reports per-op p50/p99/p999 latency,
// throughput, admission rejections and protocol errors. All latencies
// flow through the stats pipeline, so the printed report and a
// Prometheus scrape of the same registry can never disagree.
//
// Usage: go run ./cmd/loadgen -addr 127.0.0.1:5433 [-conns 1000]
//
//	[-duration 10s] [-point 65] [-agg 10] [-join 5] [-insert 20]
//	[-seed-rows 10000] [-no-setup]
//
// Exit status is non-zero when any protocol error occurred: coded
// SQLSTATE errors (including 53xxx admission rejections) are expected
// outcomes under overload, transport or framing failures never are.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/pgwire"
)

func main() {
	addr := flag.String("addr", "", "server address host:port (required)")
	conns := flag.Int("conns", 1000, "concurrent connections")
	duration := flag.Duration("duration", 10*time.Second, "steady-state run time")
	point := flag.Int("point", 65, "point-lookup weight")
	agg := flag.Int("agg", 10, "analytic-aggregate weight")
	join := flag.Int("join", 5, "dimension-join weight")
	insert := flag.Int("insert", 20, "ingest weight")
	seedRows := flag.Int("seed-rows", 10000, "rows seeded into the workload tables")
	noSetup := flag.Bool("no-setup", false, "skip table creation and seeding")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr is required")
		flag.Usage()
		os.Exit(2)
	}

	rep, err := pgwire.RunLoad(pgwire.LoadConfig{
		Addr:         *addr,
		Conns:        *conns,
		Duration:     *duration,
		PointWeight:  *point,
		AggWeight:    *agg,
		JoinWeight:   *join,
		InsertWeight: *insert,
		SeedRows:     *seedRows,
		NoSetup:      *noSetup,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Print(rep)
	if rep.ProtocolErrors > 0 {
		os.Exit(1)
	}
}
