// hanashell is an interactive SQL shell against an embedded ecosystem:
// one entry point for the relational core and every domain engine's SQL
// surface. Statements come from stdin or -e; \commands cover the admin
// experience (status, merge, explain, analyze, slow-query log).
//
// Usage:
//
//	go run ./cmd/hanashell                 # REPL on stdin
//	go run ./cmd/hanashell -e "SELECT 1"   # one-shot
//	go run ./cmd/hanashell -data ./shelldb # durable instance
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/sqlexec"
	"repro/internal/stats"
)

func main() {
	oneShot := flag.String("e", "", "execute one statement and exit")
	dataDir := flag.String("data", "", "durable data directory (default: in-memory)")
	hdfsNodes := flag.Int("hdfs", 0, "attach a simulated HDFS tier with n datanodes")
	slow := flag.Duration("slow", 0, "retain EXPLAIN ANALYZE profiles of statements slower than this (see \\slow)")
	flag.Parse()

	eco, err := core.New(core.Config{DurableDir: *dataDir, HDFSDataNodes: *hdfsNodes})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer eco.Close()
	eco.Engine.SlowThreshold = *slow
	sess := eco.Engine.NewSession()
	defer sess.Close()

	if *oneShot != "" {
		run(eco, sess, *oneShot)
		return
	}

	fmt.Println("hanashell — web-scale data management ecosystem (type \\help)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("  -> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "\\") && buf.Len() == 0 {
			if !command(eco, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString(" ")
		if strings.HasSuffix(trimmed, ";") || trimmed == "" {
			stmt := strings.TrimSpace(buf.String())
			buf.Reset()
			if stmt != "" {
				run(eco, sess, stmt)
			}
		}
		prompt()
	}
}

func run(eco *core.Ecosystem, sess *sqlexec.Session, stmt string) {
	_ = eco
	res, err := sess.Query(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res.String())
}

func command(eco *core.Ecosystem, cmd string) bool {
	switch {
	case cmd == "\\q" || cmd == "\\quit":
		return false
	case cmd == "\\help":
		fmt.Println(`  \status          admin snapshot (tables, tiers, commits)
  \stats           v2stats metrics snapshot (parse/plan/exec timings, ...)
  \traces          recent statement traces (span trees)
  \analyze <sql>   EXPLAIN ANALYZE: run the SELECT and print its operator
                   profile (wall time, rows, kernels, occupancy)
  \slow            slow-query log (statements over the -slow threshold,
                   newest first, with their profiles)
  \merge           delta-merge every table
  \tiers           per-table partition tiers, page-fault counts and
                   buffer-pool occupancy of the warm tier
  \demote <table>  page a table out to the warm tier
  \promote <table> re-hydrate a table into memory
  \sys             list the sys.* monitoring views with column and row
                   counts (query them like tables: SELECT ... FROM sys.m_...)
  \tables          list tables
  \objects         list business objects in the repository
  \q               quit
  SQL statements end with ';' — SELECT/INSERT/UPDATE/DELETE/CREATE/
  DROP/MERGE DELTA OF/EXPLAIN plus the engine functions (SENTIMENT,
  ST_WITHIN_DISTANCE, GRAPH_SHORTEST_PATH, TS_FORECAST, JSON_VALUE, ...)`)
	case cmd == "\\status":
		st := eco.Status()
		fmt.Printf("  commits=%d aborts=%d soe_nodes=%d hdfs_datanodes=%d\n",
			st.Commits, st.Aborts, st.SOENodes, st.HDFSDataNodes)
		for _, t := range st.Tables {
			fmt.Printf("  %-24s rows=%-8d delta=%-6d partitions=%d bytes=%d tiers=%v\n",
				t.Name, t.Rows, t.DeltaRows, t.Partitions, t.Bytes, t.Tiers)
		}
	case cmd == "\\stats":
		// Engine metrics plus the process-wide default registry (column
		// store, streaming) in one merged view.
		snap := stats.Merge(eco.Obs.Snapshot(), stats.Default.Snapshot())
		out := snap.String()
		if strings.TrimSpace(out) == "" {
			fmt.Println("  no metrics yet — run some statements first")
			break
		}
		for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
			fmt.Println("  " + line)
		}
	case cmd == "\\traces":
		out := eco.Tracer.Render(10)
		if strings.TrimSpace(out) == "" {
			fmt.Println("  no traces yet — run some statements first")
			break
		}
		for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
			fmt.Println("  " + line)
		}
	case strings.HasPrefix(cmd, "\\analyze"):
		sql := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(cmd, "\\analyze")), ";")
		if sql == "" {
			fmt.Println("  usage: \\analyze SELECT ...")
			break
		}
		_, prof, err := eco.Engine.AnalyzeSQL(sql)
		if err != nil {
			fmt.Println("  error:", err)
			break
		}
		printIndented(prof.Render())
	case cmd == "\\slow":
		queries := eco.Engine.SlowQueries()
		if len(queries) == 0 {
			fmt.Printf("  slow log empty (%d slow statements ever; start with -slow to set a threshold)\n",
				eco.Engine.SlowQueryCount())
			break
		}
		for _, q := range queries {
			fmt.Printf("  %v  %s\n", q.Total.Round(time.Microsecond), q.SQL)
			printIndented(q.Profile.Render())
		}
	case cmd == "\\merge":
		eco.MergeAll()
		fmt.Println("  merged")
	case cmd == "\\tiers":
		pool := eco.Warm.Pool()
		fmt.Printf("  buffer pool: %d/%d pages resident (%d chunks), store=%d pages of %d bytes\n",
			pool.ResidentPages, pool.BudgetPages, pool.Chunks, eco.Warm.Pages(), eco.Warm.PageSize())
		faults := eco.Warm.FaultsByTable()
		for _, name := range eco.Engine.Cat.Tables() {
			entry, ok := eco.Engine.Cat.Table(name)
			if !ok {
				continue
			}
			for _, p := range entry.Partitions {
				line := fmt.Sprintf("  %-24s %-12s tier=%-8s", name, p.Name, p.Tier)
				if p.Tier == catalog.TierExtended {
					line += fmt.Sprintf(" resident_pages=%d faults=%d",
						residentPages(p), faults[p.Table.Name()])
				}
				fmt.Println(line)
			}
		}
	case strings.HasPrefix(cmd, "\\demote"):
		name := strings.TrimSpace(strings.TrimPrefix(cmd, "\\demote"))
		if name == "" {
			fmt.Println("  usage: \\demote <table>")
			break
		}
		n, err := eco.DemoteTable(name)
		if err != nil {
			fmt.Println("  error:", err)
			break
		}
		fmt.Printf("  demoted %d partitions of %s to the warm tier\n", n, name)
	case strings.HasPrefix(cmd, "\\promote"):
		name := strings.TrimSpace(strings.TrimPrefix(cmd, "\\promote"))
		if name == "" {
			fmt.Println("  usage: \\promote <table>")
			break
		}
		n, err := eco.PromoteTable(name)
		if err != nil {
			fmt.Println("  error:", err)
			break
		}
		fmt.Printf("  promoted %d partitions of %s to the hot tier\n", n, name)
	case cmd == "\\sys":
		sess := eco.Engine.NewSession()
		res, err := sess.Query(`SELECT view_name, columns, rows FROM sys.m_views ORDER BY view_name`)
		sess.Close()
		if err != nil {
			fmt.Println("  error:", err)
			break
		}
		for _, row := range res.Rows {
			fmt.Printf("  %-24s columns=%-3s rows=%s\n",
				row[0].AsString(), row[1].AsString(), row[2].AsString())
		}
	case cmd == "\\tables":
		for _, t := range eco.Engine.Cat.Tables() {
			fmt.Println("  " + t)
		}
	case cmd == "\\objects":
		for _, o := range eco.Repo.List() {
			fmt.Println("  " + o)
		}
	default:
		fmt.Println("  unknown command; try \\help")
	}
	return true
}

// residentPages sums the buffer-pool-resident pages of a warm partition's
// paged columns.
func residentPages(p *catalog.Partition) int {
	snap := p.Table.Snapshot(^uint64(0))
	n := 0
	for c := range snap.Schema() {
		if pc, ok := snap.MainColumn(c).(interface{ ResidentPages() int }); ok {
			n += pc.ResidentPages()
		}
	}
	return n
}

func printIndented(out string) {
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		fmt.Println("  " + line)
	}
}
