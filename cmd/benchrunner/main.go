// benchrunner regenerates the reproduction experiments of DESIGN.md §3 —
// E1..E25 for the paper's quantitative claims and F1..F4 for its
// architecture figures — and prints the tables EXPERIMENTS.md records.
//
// Usage:
//
//	go run ./cmd/benchrunner                    # everything, small scale
//	go run ./cmd/benchrunner -scale full        # EXPERIMENTS.md scale
//	go run ./cmd/benchrunner -experiment E4,E8  # a subset
//	go run ./cmd/benchrunner -profile           # EXPLAIN ANALYZE demo
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/value"
)

func main() {
	which := flag.String("experiment", "", "comma-separated experiment ids (default: all)")
	scaleFlag := flag.String("scale", "small", "small or full")
	showStats := flag.Bool("stats", false, "print the process metrics delta after each experiment")
	profile := flag.Bool("profile", false, "run a reference join+aggregate under EXPLAIN ANALYZE on all three executors and print the operator profiles")
	flag.Parse()

	scale := experiments.Small
	if *scaleFlag == "full" {
		scale = experiments.Full
	}
	if *profile {
		if err := runProfile(scale); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	if *which == "" {
		for _, t := range experiments.All(scale) {
			fmt.Println(t.String())
		}
	} else {
		for _, id := range strings.Split(*which, ",") {
			f, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E25, F1..F4)\n", id)
				os.Exit(1)
			}
			before := stats.Default.Snapshot()
			fmt.Println(f(scale).String())
			if *showStats {
				printDelta(before)
			}
		}
	}
	fmt.Printf("total: %v (scale=%s rows=%d nodes=%d)\n",
		time.Since(start).Round(time.Millisecond), *scaleFlag, scale.Rows, scale.Nodes)
	if *showStats && *which == "" {
		fmt.Println("\nprocess metrics (lifetime):")
		fmt.Print(indent(stats.Default.Snapshot().String()))
	}
}

// printDelta shows what one experiment added to the process-wide registry
// (column store and streaming counters; SOE metrics live in per-cluster
// registries and are shown by the experiments themselves).
func printDelta(before stats.Snapshot) {
	d := stats.Delta(before, stats.Default.Snapshot())
	out := d.String()
	if strings.TrimSpace(out) == "" {
		return
	}
	fmt.Println("process metrics delta:")
	fmt.Print(indent(out))
}

// runProfile is the benchrunner face of EXPLAIN ANALYZE: one reference
// join+aggregate over generated data, profiled on each executor, so the
// per-operator breakdowns can be compared side by side.
func runProfile(scale experiments.Scale) error {
	e := sqlexec.NewEngine()
	if _, err := e.Query(`CREATE TABLE fact (id INT, dim_id INT, grp VARCHAR, v DOUBLE)`); err != nil {
		return err
	}
	if _, err := e.Query(`CREATE TABLE dim (id INT, name VARCHAR)`); err != nil {
		return err
	}
	n := scale.Rows
	if n <= 0 {
		n = 100_000
	}
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.Int(int64(i)), value.Int(int64(i % 500)),
			value.String(fmt.Sprintf("g%d", i%8)), value.Float(float64(i % 1000)),
		}
	}
	e.Cat.MustTable("fact").Primary().ApplyInsert(rows, 1)
	e.Cat.MustTable("fact").Primary().Merge(2)
	drows := make([]value.Row, 500)
	for i := range drows {
		drows[i] = value.Row{value.Int(int64(i)), value.String(fmt.Sprintf("n%03d", i))}
	}
	e.Cat.MustTable("dim").Primary().ApplyInsert(drows, 1)
	e.Cat.MustTable("dim").Primary().Merge(2)
	e.Mgr.AdvanceTo(2)

	const q = `SELECT name, COUNT(*), SUM(v) FROM fact JOIN dim ON fact.dim_id = dim.id WHERE fact.v < 800 GROUP BY name`
	fmt.Printf("profiling %q over %d fact rows\n\n", q, n)
	for _, mode := range []sqlexec.Mode{sqlexec.ModeInterpreted, sqlexec.ModeCompiled, sqlexec.ModeVectorized} {
		e.Mode = mode
		_, prof, err := e.AnalyzeSQL(q)
		if err != nil {
			return err
		}
		fmt.Println(prof.Render())
	}
	return nil
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}
