// benchrunner regenerates the reproduction experiments of DESIGN.md §3 —
// E1..E16 for the paper's quantitative claims and F1..F4 for its
// architecture figures — and prints the tables EXPERIMENTS.md records.
//
// Usage:
//
//	go run ./cmd/benchrunner                    # everything, small scale
//	go run ./cmd/benchrunner -scale full        # EXPERIMENTS.md scale
//	go run ./cmd/benchrunner -experiment E4,E8  # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	which := flag.String("experiment", "", "comma-separated experiment ids (default: all)")
	scaleFlag := flag.String("scale", "small", "small or full")
	flag.Parse()

	scale := experiments.Small
	if *scaleFlag == "full" {
		scale = experiments.Full
	}

	start := time.Now()
	if *which == "" {
		for _, t := range experiments.All(scale) {
			fmt.Println(t.String())
		}
	} else {
		for _, id := range strings.Split(*which, ",") {
			f, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E16, F1..F4)\n", id)
				os.Exit(1)
			}
			fmt.Println(f(scale).String())
		}
	}
	fmt.Printf("total: %v (scale=%s rows=%d nodes=%d)\n",
		time.Since(start).Round(time.Millisecond), *scaleFlag, scale.Rows, scale.Nodes)
}
