// benchrunner regenerates the reproduction experiments of DESIGN.md §3 —
// E1..E19 for the paper's quantitative claims and F1..F4 for its
// architecture figures — and prints the tables EXPERIMENTS.md records.
//
// Usage:
//
//	go run ./cmd/benchrunner                    # everything, small scale
//	go run ./cmd/benchrunner -scale full        # EXPERIMENTS.md scale
//	go run ./cmd/benchrunner -experiment E4,E8  # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	which := flag.String("experiment", "", "comma-separated experiment ids (default: all)")
	scaleFlag := flag.String("scale", "small", "small or full")
	showStats := flag.Bool("stats", false, "print the process metrics delta after each experiment")
	flag.Parse()

	scale := experiments.Small
	if *scaleFlag == "full" {
		scale = experiments.Full
	}

	start := time.Now()
	if *which == "" {
		for _, t := range experiments.All(scale) {
			fmt.Println(t.String())
		}
	} else {
		for _, id := range strings.Split(*which, ",") {
			f, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E19, F1..F4)\n", id)
				os.Exit(1)
			}
			before := stats.Default.Snapshot()
			fmt.Println(f(scale).String())
			if *showStats {
				printDelta(before)
			}
		}
	}
	fmt.Printf("total: %v (scale=%s rows=%d nodes=%d)\n",
		time.Since(start).Round(time.Millisecond), *scaleFlag, scale.Rows, scale.Nodes)
	if *showStats && *which == "" {
		fmt.Println("\nprocess metrics (lifetime):")
		fmt.Print(indent(stats.Default.Snapshot().String()))
	}
}

// printDelta shows what one experiment added to the process-wide registry
// (column store and streaming counters; SOE metrics live in per-cluster
// registries and are shown by the experiments themselves).
func printDelta(before stats.Snapshot) {
	d := stats.Delta(before, stats.Default.Snapshot())
	out := d.String()
	if strings.TrimSpace(out) == "" {
		return
	}
	fmt.Println("process metrics delta:")
	fmt.Print(indent(out))
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}
