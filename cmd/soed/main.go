// soed boots a complete simulated SOE landscape (Figure 3): shared log,
// transaction broker, n query/data services, coordinator, cluster manager
// and discovery. It loads a synthetic order workload, runs distributed
// queries under each join strategy, demonstrates OLAP staleness, kills a
// node and fails its partitions over to their replicas (then a second
// node to show labelled partial results), and prints the cluster state
// plus the failover's distributed trace. With -http it also serves the
// v2stats landscape until interrupted: Prometheus text exposition on
// /metrics (JSON on /metrics.json) and stitched trace trees on /traces
// (one trace via /traces?trace=<id>).
//
// With -pgport it also serves a PostgreSQL wire-protocol front end over a
// gateway engine mirroring the demo data: any libpq client (psql included)
// can connect, run simple and extended queries, and use explicit
// transactions. SIGTERM/SIGINT drains gracefully — new startups are
// refused, in-flight queries finish — and /healthz reports "draining"
// during that window.
//
// Usage: go run ./cmd/soed [-nodes 4] [-rows 20000] [-mode oltp|olap]
//
//	[-http :8080] [-pgport :5433] [-pprof]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/columnstore"
	"repro/internal/distql"
	"repro/internal/netsim"
	"repro/internal/pgwire"
	"repro/internal/soe"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/value"
)

func main() {
	nodes := flag.Int("nodes", 4, "data nodes")
	rows := flag.Int("rows", 20000, "order rows to load")
	mode := flag.String("mode", "oltp", "node mode: oltp or olap")
	latency := flag.Duration("latency", 50*time.Microsecond, "simulated link latency")
	httpAddr := flag.String("http", "", "serve /metrics and /traces on this address (e.g. :8080) after the demo")
	pgAddr := flag.String("pgport", "", "serve the PostgreSQL wire protocol on this address (e.g. :5433) after the demo")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -http address")
	flag.Parse()

	m := soe.OLTP
	if *mode == "olap" {
		m = soe.OLAP
	}
	cluster := soe.NewCluster(soe.ClusterConfig{
		Nodes: *nodes, Mode: m,
		Net:        netsim.Config{Latency: *latency},
		LogStripes: 4, LogReplicas: 2,
	})
	defer cluster.Shutdown()

	fmt.Printf("SOE landscape up: %d nodes, services: %v\n\n", *nodes, cluster.Disc.Services())

	// Schema + load.
	ordersSchema := columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "region", Kind: value.KindString},
		{Name: "amount", Kind: value.KindFloat},
	}
	itemsSchema := columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "order_id", Kind: value.KindString},
		{Name: "qty", Kind: value.KindInt},
	}
	must(cluster.CreateTable("orders", ordersSchema, "id", 2**nodes))
	must(cluster.CreateTable("items", itemsSchema, "order_id", 2**nodes))

	regions := []string{"EMEA", "AMER", "APJ"}
	start := time.Now()
	batch := make([]value.Row, 0, 1000)
	ibatch := make([]value.Row, 0, 2000)
	for i := 0; i < *rows; i++ {
		oid := fmt.Sprintf("O%08d", i)
		batch = append(batch, value.Row{value.String(oid), value.String(regions[i%3]), value.Float(float64(i % 1000))})
		for j := 0; j < 2; j++ {
			ibatch = append(ibatch, value.Row{value.String(fmt.Sprintf("%s-I%d", oid, j)), value.String(oid), value.Int(int64(j + 1))})
		}
		if len(batch) == 1000 {
			mustV(cluster.Insert("orders", batch...))
			mustV(cluster.Insert("items", ibatch...))
			batch, ibatch = batch[:0], ibatch[:0]
		}
	}
	if len(batch) > 0 {
		mustV(cluster.Insert("orders", batch...))
		mustV(cluster.Insert("items", ibatch...))
	}
	fmt.Printf("loaded %d orders + %d items through the broker in %v (log tail %d)\n\n",
		*rows, 2**rows, time.Since(start).Round(time.Millisecond), cluster.Log.Tail())

	if m == soe.OLAP {
		fmt.Println("OLAP mode: data is in the log but nodes have not polled yet")
		r, err := cluster.Query(`SELECT COUNT(*) FROM orders`)
		must0(err)
		fmt.Printf("  count before catch-up: %s\n", r.Rows[0][0].AsString())
		must0(cluster.SyncOLAP())
		r, _ = cluster.Query(`SELECT COUNT(*) FROM orders`)
		fmt.Printf("  count after catch-up:  %s\n\n", r.Rows[0][0].AsString())
	}

	// Distributed aggregation.
	start = time.Now()
	r, plan, err := cluster.Coordinator.Query(`SELECT region, COUNT(*), SUM(amount), AVG(amount) FROM orders GROUP BY region ORDER BY region`)
	must0(err)
	fmt.Printf("aggregation (%s) in %v:\n", plan.Strategy, time.Since(start).Round(time.Millisecond))
	for _, row := range r.Rows {
		fmt.Printf("  %-5s n=%-7s sum=%-10s avg=%s\n", row[0].AsString(), row[1].AsString(), row[2].AsString(), row[3].AsString())
	}
	fmt.Println()

	// Join strategies.
	join := `SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region`
	for _, strat := range []distql.Strategy{distql.StrategyBroadcast, distql.StrategyRepartition} {
		cluster.Net.ResetStats()
		start = time.Now()
		_, _, err := cluster.Coordinator.ForceStrategy(join, strat)
		must0(err)
		msgs, bytes := cluster.Net.Stats()
		fmt.Printf("join strategy %-12s %8v  msgs=%-6d bytes=%d\n", strat, time.Since(start).Round(time.Millisecond), msgs, bytes)
	}
	_, autoPlan, err := cluster.Coordinator.Query(join)
	must0(err)
	fmt.Printf("optimizer chooses: %s\n\n", autoPlan.Strategy)

	// Fault tolerance: replicate every partition, kill a node, and keep
	// answering — the coordinator retries, then routes the victim's
	// partitions to their replicas (catching them up to the last commit).
	if *nodes >= 2 {
		must0(cluster.ReplicateTable("orders"))
		must0(cluster.ReplicateTable("items"))
		victim := cluster.Nodes[*nodes-1].Name
		fmt.Printf("tables replicated; stopping %s without moving its partitions...\n", victim)
		cluster.Manager.StopNode(victim)
		r, err = cluster.Query(`SELECT COUNT(*) FROM orders`)
		must0(err)
		fmt.Printf("orders answered via replica failover: %s rows (completeness %.2f)\n", r.Rows[0][0].AsString(), r.Completeness)

		// The failover, as one distributed trace: coordinator query, task
		// retries, replica catch-up, and the remote exec spans the nodes
		// recorded — stitched by the SpanContext on the message envelopes.
		for _, root := range cluster.Tracer.Recent(16) {
			if root.Name == "query" {
				fmt.Println("failover trace:")
				fmt.Print(cluster.Tracer.RenderTrace(root.TraceID))
				break
			}
		}

		if *nodes >= 3 {
			// Losing a primary and its replica exceeds the replication
			// factor: degraded mode answers from the survivors and labels
			// exactly what is missing instead of failing outright.
			second := cluster.Nodes[*nodes-2].Name
			cluster.Coordinator.PartialResults = true
			cluster.Manager.StopNode(second)
			r, err = cluster.Query(`SELECT COUNT(*) FROM orders`)
			must0(err)
			fmt.Printf("with %s also down: %s rows, completeness %.2f, lost: %v\n",
				second, r.Rows[0][0].AsString(), r.Completeness, r.Lost)
			cluster.Coordinator.PartialResults = false
			cluster.Manager.RecoverNode(second)
		}
		cluster.Manager.RecoverNode(victim)
		fmt.Println()
	}

	fmt.Println("cluster status:")
	for _, st := range cluster.Manager.Status() {
		fmt.Printf("  %-8s partitions=%-3d queries=%-5d rows_scanned=%-9d applied_ts=%d\n",
			st.Node, st.Partitions, st.QueriesRun, st.RowsScanned, st.AppliedTS)
	}

	// v2stats: the landscape-wide metrics aggregate.
	snap := cluster.CollectStats()
	fmt.Println("\nv2stats landscape snapshot (selected):")
	fmt.Printf("  queries:      %d (coordinator) / %d (nodes)\n",
		counterOf(snap, "soe_queries_total", "service=v2dqp"), nodeQueries(snap))
	fmt.Printf("  commits:      %d\n", counterOf(snap, "soe_commits_total", "service=v2transact"))
	fmt.Printf("  log appends:  %d (%d bytes)\n",
		snap.CounterTotal("sharedlog_appends_total"), snap.CounterTotal("sharedlog_bytes_total"))
	fmt.Printf("  net messages: %d (%d bytes)\n",
		snap.CounterTotal("netsim_messages_total"), snap.CounterTotal("netsim_bytes_total"))
	fmt.Printf("  fault path:   %d task retries, %d failovers, %d degraded queries\n",
		snap.CounterTotal("soe_task_retries_total"), snap.CounterTotal("soe_failovers_total"),
		snap.CounterTotal("soe_degraded_queries_total"))
	if h, ok := snap.HistogramNamed("soe_query_ms"); ok {
		fmt.Printf("  query latency: p50=%.2fms p95=%.2fms p99=%.2fms (n=%d)\n", h.P50, h.P95, h.P99, h.Count)
	}

	// Wire front end: a gateway engine mirroring the demo data, served
	// over the PostgreSQL v3 protocol with admission control.
	var pgSrv *pgwire.Server
	wireObs := stats.NewRegistry("service=pgwire")
	if *pgAddr != "" {
		gw := sqlexec.NewEngine()
		seedGateway(gw, *rows)
		// Background merge daemon: wire-ingested deltas compact off the
		// commit path, watermark-bounded by the oldest live snapshot.
		merger := gw.Mgr.StartMerger(txn.MergerConfig{})
		defer merger.Stop()
		// The gateway's sys schema sees the whole landscape: SQL clients
		// can query per-node v2stats through sys.m_cluster.
		soe.RegisterClusterView(gw.SysViews(), cluster)
		var err error
		pgSrv, err = pgwire.Serve(pgwire.EngineBackend{Engine: gw}, pgwire.Config{Addr: *pgAddr, Obs: wireObs})
		must0(err)
		fmt.Printf("\npgwire front end on %s — try: psql \"host=127.0.0.1 port=%d user=soe\" -c 'SELECT region, COUNT(*) FROM orders GROUP BY region'\n",
			pgSrv.Addr(), addrPort(pgSrv.Addr().String()))
	}

	// Landscape metrics plus wire-front-end and process-runtime metrics
	// in one scrape. Runtime gauges are sampled on a 1 Hz ticker so both
	// /metrics and sys.m_metrics stay current without per-scrape cost.
	collect := func() stats.Snapshot {
		return stats.Merge(cluster.CollectStats(), wireObs.Snapshot(), stats.Default.Snapshot())
	}
	if *httpAddr != "" || *pgAddr != "" {
		stats.SampleRuntime(stats.Default)
		go func() {
			for range time.Tick(time.Second) {
				stats.SampleRuntime(stats.Default)
			}
		}()
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", stats.NewHandler(collect, cluster.Tracer))
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", netpprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		}
		// Readiness: "draining" (503) once graceful shutdown has begun, so
		// load balancers stop routing before connections disappear.
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			if pgSrv != nil && pgSrv.Draining() {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "draining")
				return
			}
			fmt.Fprintln(w, "ok")
		})
		extras := ""
		if *pprofOn {
			extras = ", /debug/pprof/"
		}
		fmt.Printf("serving /metrics (Prometheus), /metrics.json, /traces and /healthz%s on %s\n", extras, *httpAddr)
		go func() { must0(http.ListenAndServe(*httpAddr, mux)) }()
	}

	if *pgAddr != "" || *httpAddr != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		<-sig
		if pgSrv != nil {
			fmt.Println("\ndraining pgwire connections...")
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			must0(pgSrv.Shutdown(ctx))
			fmt.Println("drain complete")
		}
	}
}

// seedGateway mirrors the demo orders/items schema and rows into the
// wire gateway's engine.
func seedGateway(gw *sqlexec.Engine, rows int) {
	gw.MustQuery(`CREATE TABLE orders (id VARCHAR, region VARCHAR, amount DOUBLE)`)
	gw.MustQuery(`CREATE TABLE items (id VARCHAR, order_id VARCHAR, qty INT)`)
	regions := []string{"EMEA", "AMER", "APJ"}
	sess := gw.NewSession()
	defer sess.Close()
	mustV(0, sessQuery(sess, `BEGIN`))
	const batch = 1000
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		ords := make([]value.Row, 0, batch)
		its := make([]value.Row, 0, 2*batch)
		for i := lo; i < hi; i++ {
			oid := fmt.Sprintf("O%08d", i)
			ords = append(ords, value.Row{value.String(oid), value.String(regions[i%3]), value.Float(float64(i % 1000))})
			for j := 0; j < 2; j++ {
				its = append(its, value.Row{value.String(fmt.Sprintf("%s-I%d", oid, j)), value.String(oid), value.Int(int64(j + 1))})
			}
		}
		mustV(0, insertRows(sess, "orders", ords))
		mustV(0, insertRows(sess, "items", its))
	}
	mustV(0, sessQuery(sess, `COMMIT`))
}

func sessQuery(sess *sqlexec.Session, sql string, params ...value.Value) error {
	_, err := sess.Query(sql, params...)
	return err
}

// insertRows appends rows through one parameterized multi-row INSERT.
func insertRows(sess *sqlexec.Session, table string, rows []value.Row) error {
	if len(rows) == 0 {
		return nil
	}
	var sb []byte
	sb = append(sb, "INSERT INTO "...)
	sb = append(sb, table...)
	sb = append(sb, " VALUES "...)
	params := make([]value.Value, 0, len(rows)*len(rows[0]))
	for r, row := range rows {
		if r > 0 {
			sb = append(sb, ", "...)
		}
		sb = append(sb, '(')
		for c, v := range row {
			if c > 0 {
				sb = append(sb, ", "...)
			}
			sb = append(sb, '?')
			params = append(params, v)
		}
		sb = append(sb, ')')
	}
	return sessQuery(sess, string(sb), params...)
}

// addrPort extracts the numeric port of a listen address for display.
func addrPort(addr string) int {
	p := 0
	fmt.Sscanf(addr[strings.LastIndex(addr, ":")+1:], "%d", &p)
	return p
}

func counterOf(snap stats.Snapshot, name string, labels ...string) int64 {
	v, _ := snap.Counter(name, labels...)
	return v
}

// nodeQueries sums per-node query counters (labeled node=...).
func nodeQueries(snap stats.Snapshot) int64 {
	var total int64
	for _, c := range snap.CountersNamed("soe_queries_total") {
		if _, ok := stats.LabelValue(c.Labels, "node"); ok {
			total += c.Value
		}
	}
	return total
}

func must(t *soe.DistTable, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	_ = t
}

func mustV(ts uint64, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	_ = ts
}

func must0(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
