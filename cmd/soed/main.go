// soed boots a complete simulated SOE landscape (Figure 3): shared log,
// transaction broker, n query/data services, coordinator, cluster manager
// and discovery. It loads a synthetic order workload, runs distributed
// queries under each join strategy, demonstrates OLAP staleness, kills a
// node and fails its partitions over to their replicas (then a second
// node to show labelled partial results), and prints the cluster state
// plus the failover's distributed trace. With -http it also serves the
// v2stats landscape until interrupted: Prometheus text exposition on
// /metrics (JSON on /metrics.json) and stitched trace trees on /traces
// (one trace via /traces?trace=<id>).
//
// Usage: go run ./cmd/soed [-nodes 4] [-rows 20000] [-mode oltp|olap]
//
//	[-http :8080]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/columnstore"
	"repro/internal/distql"
	"repro/internal/netsim"
	"repro/internal/soe"
	"repro/internal/stats"
	"repro/internal/value"
)

func main() {
	nodes := flag.Int("nodes", 4, "data nodes")
	rows := flag.Int("rows", 20000, "order rows to load")
	mode := flag.String("mode", "oltp", "node mode: oltp or olap")
	latency := flag.Duration("latency", 50*time.Microsecond, "simulated link latency")
	httpAddr := flag.String("http", "", "serve /metrics and /traces on this address (e.g. :8080) after the demo")
	flag.Parse()

	m := soe.OLTP
	if *mode == "olap" {
		m = soe.OLAP
	}
	cluster := soe.NewCluster(soe.ClusterConfig{
		Nodes: *nodes, Mode: m,
		Net:        netsim.Config{Latency: *latency},
		LogStripes: 4, LogReplicas: 2,
	})
	defer cluster.Shutdown()

	fmt.Printf("SOE landscape up: %d nodes, services: %v\n\n", *nodes, cluster.Disc.Services())

	// Schema + load.
	ordersSchema := columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "region", Kind: value.KindString},
		{Name: "amount", Kind: value.KindFloat},
	}
	itemsSchema := columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "order_id", Kind: value.KindString},
		{Name: "qty", Kind: value.KindInt},
	}
	must(cluster.CreateTable("orders", ordersSchema, "id", 2**nodes))
	must(cluster.CreateTable("items", itemsSchema, "order_id", 2**nodes))

	regions := []string{"EMEA", "AMER", "APJ"}
	start := time.Now()
	batch := make([]value.Row, 0, 1000)
	ibatch := make([]value.Row, 0, 2000)
	for i := 0; i < *rows; i++ {
		oid := fmt.Sprintf("O%08d", i)
		batch = append(batch, value.Row{value.String(oid), value.String(regions[i%3]), value.Float(float64(i % 1000))})
		for j := 0; j < 2; j++ {
			ibatch = append(ibatch, value.Row{value.String(fmt.Sprintf("%s-I%d", oid, j)), value.String(oid), value.Int(int64(j + 1))})
		}
		if len(batch) == 1000 {
			mustV(cluster.Insert("orders", batch...))
			mustV(cluster.Insert("items", ibatch...))
			batch, ibatch = batch[:0], ibatch[:0]
		}
	}
	if len(batch) > 0 {
		mustV(cluster.Insert("orders", batch...))
		mustV(cluster.Insert("items", ibatch...))
	}
	fmt.Printf("loaded %d orders + %d items through the broker in %v (log tail %d)\n\n",
		*rows, 2**rows, time.Since(start).Round(time.Millisecond), cluster.Log.Tail())

	if m == soe.OLAP {
		fmt.Println("OLAP mode: data is in the log but nodes have not polled yet")
		r, err := cluster.Query(`SELECT COUNT(*) FROM orders`)
		must0(err)
		fmt.Printf("  count before catch-up: %s\n", r.Rows[0][0].AsString())
		must0(cluster.SyncOLAP())
		r, _ = cluster.Query(`SELECT COUNT(*) FROM orders`)
		fmt.Printf("  count after catch-up:  %s\n\n", r.Rows[0][0].AsString())
	}

	// Distributed aggregation.
	start = time.Now()
	r, plan, err := cluster.Coordinator.Query(`SELECT region, COUNT(*), SUM(amount), AVG(amount) FROM orders GROUP BY region ORDER BY region`)
	must0(err)
	fmt.Printf("aggregation (%s) in %v:\n", plan.Strategy, time.Since(start).Round(time.Millisecond))
	for _, row := range r.Rows {
		fmt.Printf("  %-5s n=%-7s sum=%-10s avg=%s\n", row[0].AsString(), row[1].AsString(), row[2].AsString(), row[3].AsString())
	}
	fmt.Println()

	// Join strategies.
	join := `SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region`
	for _, strat := range []distql.Strategy{distql.StrategyBroadcast, distql.StrategyRepartition} {
		cluster.Net.ResetStats()
		start = time.Now()
		_, _, err := cluster.Coordinator.ForceStrategy(join, strat)
		must0(err)
		msgs, bytes := cluster.Net.Stats()
		fmt.Printf("join strategy %-12s %8v  msgs=%-6d bytes=%d\n", strat, time.Since(start).Round(time.Millisecond), msgs, bytes)
	}
	_, autoPlan, err := cluster.Coordinator.Query(join)
	must0(err)
	fmt.Printf("optimizer chooses: %s\n\n", autoPlan.Strategy)

	// Fault tolerance: replicate every partition, kill a node, and keep
	// answering — the coordinator retries, then routes the victim's
	// partitions to their replicas (catching them up to the last commit).
	if *nodes >= 2 {
		must0(cluster.ReplicateTable("orders"))
		must0(cluster.ReplicateTable("items"))
		victim := cluster.Nodes[*nodes-1].Name
		fmt.Printf("tables replicated; stopping %s without moving its partitions...\n", victim)
		cluster.Manager.StopNode(victim)
		r, err = cluster.Query(`SELECT COUNT(*) FROM orders`)
		must0(err)
		fmt.Printf("orders answered via replica failover: %s rows (completeness %.2f)\n", r.Rows[0][0].AsString(), r.Completeness)

		// The failover, as one distributed trace: coordinator query, task
		// retries, replica catch-up, and the remote exec spans the nodes
		// recorded — stitched by the SpanContext on the message envelopes.
		for _, root := range cluster.Tracer.Recent(16) {
			if root.Name == "query" {
				fmt.Println("failover trace:")
				fmt.Print(cluster.Tracer.RenderTrace(root.TraceID))
				break
			}
		}

		if *nodes >= 3 {
			// Losing a primary and its replica exceeds the replication
			// factor: degraded mode answers from the survivors and labels
			// exactly what is missing instead of failing outright.
			second := cluster.Nodes[*nodes-2].Name
			cluster.Coordinator.PartialResults = true
			cluster.Manager.StopNode(second)
			r, err = cluster.Query(`SELECT COUNT(*) FROM orders`)
			must0(err)
			fmt.Printf("with %s also down: %s rows, completeness %.2f, lost: %v\n",
				second, r.Rows[0][0].AsString(), r.Completeness, r.Lost)
			cluster.Coordinator.PartialResults = false
			cluster.Manager.RecoverNode(second)
		}
		cluster.Manager.RecoverNode(victim)
		fmt.Println()
	}

	fmt.Println("cluster status:")
	for _, st := range cluster.Manager.Status() {
		fmt.Printf("  %-8s partitions=%-3d queries=%-5d rows_scanned=%-9d applied_ts=%d\n",
			st.Node, st.Partitions, st.QueriesRun, st.RowsScanned, st.AppliedTS)
	}

	// v2stats: the landscape-wide metrics aggregate.
	snap := cluster.CollectStats()
	fmt.Println("\nv2stats landscape snapshot (selected):")
	fmt.Printf("  queries:      %d (coordinator) / %d (nodes)\n",
		counterOf(snap, "soe_queries_total", "service=v2dqp"), nodeQueries(snap))
	fmt.Printf("  commits:      %d\n", counterOf(snap, "soe_commits_total", "service=v2transact"))
	fmt.Printf("  log appends:  %d (%d bytes)\n",
		snap.CounterTotal("sharedlog_appends_total"), snap.CounterTotal("sharedlog_bytes_total"))
	fmt.Printf("  net messages: %d (%d bytes)\n",
		snap.CounterTotal("netsim_messages_total"), snap.CounterTotal("netsim_bytes_total"))
	fmt.Printf("  fault path:   %d task retries, %d failovers, %d degraded queries\n",
		snap.CounterTotal("soe_task_retries_total"), snap.CounterTotal("soe_failovers_total"),
		snap.CounterTotal("soe_degraded_queries_total"))
	if h, ok := snap.HistogramNamed("soe_query_ms"); ok {
		fmt.Printf("  query latency: p50=%.2fms p95=%.2fms p99=%.2fms (n=%d)\n", h.P50, h.P95, h.P99, h.Count)
	}

	if *httpAddr != "" {
		fmt.Printf("\nserving /metrics (Prometheus), /metrics.json and /traces on %s\n", *httpAddr)
		must0(http.ListenAndServe(*httpAddr, stats.NewHandler(cluster.CollectStats, cluster.Tracer)))
	}
}

func counterOf(snap stats.Snapshot, name string, labels ...string) int64 {
	v, _ := snap.Counter(name, labels...)
	return v
}

// nodeQueries sums per-node query counters (labeled node=...).
func nodeQueries(snap stats.Snapshot) int64 {
	var total int64
	for _, c := range snap.CountersNamed("soe_queries_total") {
		if _, ok := stats.LabelValue(c.Labels, "node"); ok {
			total += c.Value
		}
	}
	return total
}

func must(t *soe.DistTable, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	_ = t
}

func mustV(ts uint64, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	_ = ts
}

func must0(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
