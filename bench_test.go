// Benchmarks regenerating every experiment of DESIGN.md §3: one benchmark
// per table/figure reproduction (E1..E16, F1..F4), plus micro-benchmarks
// for the ablations DESIGN.md §4 calls out. Run with
//
//	go test -bench=. -benchmem
//
// The E/F benchmarks execute the same code as cmd/benchrunner (package
// internal/experiments); their detailed tables land in EXPERIMENTS.md via
// `go run ./cmd/benchrunner -scale full`.
package main

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/columnstore"
	"repro/internal/experiments"
	"repro/internal/sharedlog"
	"repro/internal/sqlexec"
	"repro/internal/timeseries"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// benchScale keeps the experiment workloads benchmark-sized.
var benchScale = experiments.Scale{Rows: 2_000, Nodes: 4}

func benchExperiment(b *testing.B, f func(experiments.Scale) *experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := f(benchScale)
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", t.ID)
		}
	}
}

func BenchmarkE1_HTAPvsSplit(b *testing.B)     { benchExperiment(b, experiments.E1HTAPvsSplit) }
func BenchmarkE2_Compression(b *testing.B)     { benchExperiment(b, experiments.E2Compression) }
func BenchmarkE3_MergeStableKeys(b *testing.B) { benchExperiment(b, experiments.E3MergeStableKeys) }
func BenchmarkE4_CompiledVsInterpreted(b *testing.B) {
	benchExperiment(b, experiments.E4CompiledVsInterpreted)
}
func BenchmarkE5_Pushdown(b *testing.B)     { benchExperiment(b, experiments.E5Pushdown) }
func BenchmarkE6_AgingPruning(b *testing.B) { benchExperiment(b, experiments.E6AgingPruning) }
func BenchmarkE7_SharedLog(b *testing.B)    { benchExperiment(b, experiments.E7SharedLog) }
func BenchmarkE8_ScaleOutSpeedup(b *testing.B) {
	benchExperiment(b, experiments.E8ScaleOutSpeedup)
}
func BenchmarkE9_ScaleUpVsOut(b *testing.B) { benchExperiment(b, experiments.E9ScaleUpVsOut) }
func BenchmarkE10_HadoopPaths(b *testing.B) { benchExperiment(b, experiments.E10HadoopPaths) }
func BenchmarkE11_TextEngine(b *testing.B)  { benchExperiment(b, experiments.E11TextEngine) }
func BenchmarkE12_GraphHierarchy(b *testing.B) {
	benchExperiment(b, experiments.E12GraphHierarchy)
}
func BenchmarkE13_GeoTimeseries(b *testing.B) { benchExperiment(b, experiments.E13GeoTimeseries) }
func BenchmarkE14_InEngineAlgebra(b *testing.B) {
	benchExperiment(b, experiments.E14InEngineAlgebra)
}
func BenchmarkE15_PlanningDisagg(b *testing.B) {
	benchExperiment(b, experiments.E15PlanningDisagg)
}
func BenchmarkE16_Docstore(b *testing.B)      { benchExperiment(b, experiments.E16Docstore) }
func BenchmarkE17_MetricsReport(b *testing.B) { benchExperiment(b, experiments.E17MetricsReport) }
func BenchmarkE18_VectorizedMorsels(b *testing.B) {
	benchExperiment(b, experiments.E18VectorizedMorsels)
}
func BenchmarkE19_ChaosFailover(b *testing.B) { benchExperiment(b, experiments.E19ChaosFailover) }
func BenchmarkE20_ProfileOverhead(b *testing.B) {
	benchExperiment(b, experiments.E20ProfileOverhead)
}
func BenchmarkE21_ExtendedStoreTiering(b *testing.B) {
	benchExperiment(b, experiments.E21ExtendedStoreTiering)
}
func BenchmarkE23_CompressedExec(b *testing.B) {
	benchExperiment(b, experiments.E23CompressedExec)
}
func BenchmarkE24_HTAPIngestMerge(b *testing.B) {
	benchExperiment(b, experiments.E24HTAPIngestMerge)
}
func BenchmarkF1_Tiering(b *testing.B)     { benchExperiment(b, experiments.F1Tiering) }
func BenchmarkF2_CrossEngine(b *testing.B) { benchExperiment(b, experiments.F2CrossEngine) }
func BenchmarkF3_SOECluster(b *testing.B)  { benchExperiment(b, experiments.F3SOECluster) }
func BenchmarkF4_Ecosystem(b *testing.B)   { benchExperiment(b, experiments.F4Ecosystem) }

// --- commit-pipeline micro-benchmarks (group commit, DESIGN.md §4) -------

// benchCommitThroughput drives concurrent single-row commits against 8
// disjoint tables through a fully durable WAL (fsync per flush). With
// SerialCommits the pipeline degrades to one commit — and one fsync — at a
// time; the group-commit path batches concurrent committers under a single
// clock bump and a single WAL append+fsync, so the speedup measures fsync
// amortization plus the removed commit convoy, not CPU parallelism.
func benchCommitThroughput(b *testing.B, serial bool) {
	store, err := wal.OpenStore(b.TempDir(), wal.SyncEveryCommit)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Log.Close()
	store.Mgr.SerialCommits = serial
	const tables = 8
	for i := 0; i < tables; i++ {
		store.Mgr.Register(columnstore.NewTable(fmt.Sprintf("c%d", i),
			columnstore.Schema{{Name: "v", Kind: value.KindInt}}))
	}
	var next atomic.Int64
	b.SetParallelism(8) // 8 committer goroutines even on one CPU
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tab := fmt.Sprintf("c%d", next.Add(1)%tables)
		var i int64
		for pb.Next() {
			i++
			if _, err := store.Mgr.RunInTxn(func(tx *txn.Txn) error {
				return tx.Insert(tab, value.Row{value.Int(i)})
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkCommitGroupDisjoint(b *testing.B) { benchCommitThroughput(b, false) }
func BenchmarkCommitSerialized(b *testing.B)    { benchCommitThroughput(b, true) }

// --- ablation micro-benchmarks (DESIGN.md §4) ----------------------------

// Ablation 1: executor mode on a hot scan+filter+aggregate pipeline.
func BenchmarkAblation_ExecutorModes(b *testing.B) {
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE t (id INT, grp VARCHAR, v DOUBLE)`)
	sess := eng.NewSession()
	sess.Begin()
	for i := 0; i < 20_000; i++ {
		sess.Query(`INSERT INTO t VALUES (?, ?, ?)`,
			value.Int(int64(i)), value.String(fmt.Sprintf("g%d", i%8)), value.Float(float64(i%1000)))
	}
	sess.Commit()
	sess.Close()
	eng.MustQuery(`MERGE DELTA OF t`)
	q := `SELECT grp, SUM(v) FROM t WHERE id > 5000 AND v < 500 GROUP BY grp`
	for _, mode := range []struct {
		name string
		m    sqlexec.Mode
	}{{"interpreted", sqlexec.ModeInterpreted}, {"compiled", sqlexec.ModeCompiled}} {
		b.Run(mode.name, func(b *testing.B) {
			eng.Mode = mode.m
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.MustQuery(q)
			}
		})
	}
}

// --- vectorized executor micro-benchmarks (DESIGN.md §4, E18) ------------

// vecScanEng holds the shared 1M-row engine for the scan benchmarks; rows
// go straight into the column store (ApplyInsert + Merge) so the setup
// cost is paid once, not per benchmark.
var vecScanEng *sqlexec.Engine

func vecScanEngine(b *testing.B) *sqlexec.Engine {
	b.Helper()
	if vecScanEng != nil {
		return vecScanEng
	}
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE big (id INT, s VARCHAR, v DOUBLE)`)
	const n = 1_000_000
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.Int(int64(i)),
			value.String(fmt.Sprintf("v%03d", i%256)), // ~1/256 selectivity per code
			value.Float(float64(i % 1000)),
		}
	}
	tbl := eng.Cat.MustTable("big").Primary()
	tbl.ApplyInsert(rows, 1)
	tbl.Merge(2)
	eng.Mgr.AdvanceTo(2)
	vecScanEng = eng
	return eng
}

// vecScanQuery is a dictionary-filtered scan+aggregate: the vectorized
// path answers the predicate by comparing dictionary codes.
const vecScanQuery = `SELECT COUNT(*), SUM(v) FROM big WHERE s = 'v042'`

func benchScanMode(b *testing.B, mode sqlexec.Mode) {
	eng := vecScanEngine(b)
	eng.Mode = mode
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eng.MustQuery(vecScanQuery)
		if len(r.Rows) != 1 {
			b.Fatalf("bad result: %v", r.Rows)
		}
	}
}

func BenchmarkScanVectorized(b *testing.B) { benchScanMode(b, sqlexec.ModeVectorized) }
func BenchmarkScanRowAtATime(b *testing.B) { benchScanMode(b, sqlexec.ModeInterpreted) }

// vecAggEng is a range-partitioned table whose partitions all carry a
// cold-read penalty: the morsel pool overlaps those stalls, which is what
// the ParallelAgg benchmarks measure (speedup holds even on one CPU).
var vecAggEng *sqlexec.Engine

func vecAggEngine(b *testing.B) *sqlexec.Engine {
	b.Helper()
	if vecAggEng != nil {
		return vecAggEng
	}
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE pt (k INT, grp VARCHAR, v DOUBLE) PARTITION BY RANGE(k) VALUES (1, 2, 3, 4, 5, 6, 7)`)
	ent := eng.Cat.MustTable("pt")
	const perPart = 2_000
	for pi, p := range ent.Partitions {
		p.ColdReadPenalty = 5_000 // 5ms simulated cold fetch per scan
		rows := make([]value.Row, perPart)
		for i := range rows {
			rows[i] = value.Row{
				value.Int(int64(pi)),
				value.String(fmt.Sprintf("g%d", i%16)),
				value.Float(float64(i % 500)),
			}
		}
		p.Table.ApplyInsert(rows, 1)
		p.Table.Merge(2)
	}
	eng.Mgr.AdvanceTo(2)
	vecAggEng = eng
	return eng
}

func benchParallelAgg(b *testing.B, workers int) {
	eng := vecAggEngine(b)
	eng.Mode = sqlexec.ModeVectorized
	eng.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eng.MustQuery(`SELECT grp, COUNT(*), SUM(v) FROM pt GROUP BY grp`)
		if len(r.Rows) != 16 {
			b.Fatalf("expected 16 groups, got %d", len(r.Rows))
		}
	}
}

func BenchmarkParallelAgg1Worker(b *testing.B)  { benchParallelAgg(b, 1) }
func BenchmarkParallelAgg4Workers(b *testing.B) { benchParallelAgg(b, 4) }
func BenchmarkParallelAggNWorkers(b *testing.B) { benchParallelAgg(b, runtime.NumCPU()) }

// --- compressed-execution micro-benchmarks (DESIGN.md §4, E23) -----------

// joinDictEng: a 500k-row fact table whose join key is dict-encoded (256
// distinct values) probed against a small dim covering 1/8 of the key
// space. The code-valued probe skips the 7/8 non-matching rows without
// ever materializing them; the row executors box every probe row first.
var joinDictEng *sqlexec.Engine

func joinDictEngine(b *testing.B) *sqlexec.Engine {
	b.Helper()
	if joinDictEng != nil {
		return joinDictEng
	}
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE fact (id INT, rk VARCHAR, qty INT)`)
	eng.MustQuery(`CREATE TABLE dim (rk VARCHAR, name VARCHAR)`)
	const n = 500_000
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.Int(int64(i)),
			value.String(fmt.Sprintf("r%03d", i%256)),
			value.Int(int64(i % 100)),
		}
	}
	ft := eng.Cat.MustTable("fact").Primary()
	ft.ApplyInsert(rows, 1)
	ft.Merge(2)
	drows := make([]value.Row, 32)
	for i := range drows {
		drows[i] = value.Row{
			value.String(fmt.Sprintf("r%03d", i*8)),
			value.String(fmt.Sprintf("name-%03d", i)),
		}
	}
	dt := eng.Cat.MustTable("dim").Primary()
	dt.ApplyInsert(drows, 1)
	dt.Merge(2)
	eng.Mgr.AdvanceTo(2)
	joinDictEng = eng
	return eng
}

const joinDictQuery = `SELECT COUNT(*), SUM(f.qty) FROM fact f JOIN dim d ON f.rk = d.rk`

func benchJoinDict(b *testing.B, mode sqlexec.Mode) {
	eng := joinDictEngine(b)
	eng.Mode = mode
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eng.MustQuery(joinDictQuery)
		if len(r.Rows) != 1 {
			b.Fatalf("bad result: %v", r.Rows)
		}
	}
}

func BenchmarkJoinDict(b *testing.B)           { benchJoinDict(b, sqlexec.ModeVectorized) }
func BenchmarkJoinDictRowAtATime(b *testing.B) { benchJoinDict(b, sqlexec.ModeInterpreted) }

// rleAggEng: 1M rows whose group keys arrive sorted, so the merge picks
// run-length encoding. g has 8 runs of 125k rows (low cardinality), g2 has
// 100k runs of 10 (exceeding the flat-array group cutoff), v has runs of
// 500 — run-folding aggregation consumes these without expanding.
var rleAggEng *sqlexec.Engine

func rleAggEngine(b *testing.B) *sqlexec.Engine {
	b.Helper()
	if rleAggEng != nil {
		return rleAggEng
	}
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE rle (g INT, g2 INT, v INT)`)
	const n = 1_000_000
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.Int(int64(i / (n / 8))),
			value.Int(int64(i / 10)),
			value.Int(int64((i / 500) % 50)),
		}
	}
	tbl := eng.Cat.MustTable("rle").Primary()
	tbl.ApplyInsert(rows, 1)
	tbl.Merge(2)
	eng.Mgr.AdvanceTo(2)
	rleAggEng = eng
	return eng
}

const groupByRLELowCardQuery = `SELECT g, COUNT(*), SUM(v), MAX(v) FROM rle GROUP BY g`

func benchGroupByRLE(b *testing.B, mode sqlexec.Mode, q string, groups int) {
	eng := rleAggEngine(b)
	eng.Mode = mode
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eng.MustQuery(q)
		if len(r.Rows) != groups {
			b.Fatalf("expected %d groups, got %d", groups, len(r.Rows))
		}
	}
}

func BenchmarkGroupByRLELowCard(b *testing.B) {
	benchGroupByRLE(b, sqlexec.ModeVectorized, groupByRLELowCardQuery, 8)
}

func BenchmarkGroupByRLEHighCard(b *testing.B) {
	benchGroupByRLE(b, sqlexec.ModeVectorized, `SELECT g2, COUNT(*), SUM(v) FROM rle GROUP BY g2`, 100_000)
}

func BenchmarkGroupByRLERowAtATime(b *testing.B) {
	benchGroupByRLE(b, sqlexec.ModeInterpreted, groupByRLELowCardQuery, 8)
}

// Ablation 2: delta-merge cadence — many small merges vs one big merge.
func BenchmarkAblation_MergeCadence(b *testing.B) {
	const rows = 20_000
	mkRows := func() []value.Row {
		out := make([]value.Row, rows)
		for i := range out {
			out[i] = value.Row{value.Int(int64(i)), value.String(fmt.Sprintf("k%06d", i%500))}
		}
		return out
	}
	schema := columnstore.Schema{{Name: "id", Kind: value.KindInt}, {Name: "k", Kind: value.KindString}}
	b.Run("merge-every-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := columnstore.NewTable("t", schema)
			all := mkRows()
			for off := 0; off < rows; off += rows / 8 {
				t.ApplyInsert(all[off:off+rows/8], uint64(off+1))
				t.Merge(uint64(off + 2))
			}
		}
	})
	b.Run("merge-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := columnstore.NewTable("t", schema)
			t.ApplyInsert(mkRows(), 1)
			t.Merge(2)
		}
	})
}

// Ablation 3: shared-log striping under concurrent appenders.
func BenchmarkAblation_LogStriping(b *testing.B) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	for _, stripes := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("stripes-%d", stripes), func(b *testing.B) {
			log := sharedlog.NewInMemory(stripes, 1)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := log.Append(payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// Ablation 4: time-series codec throughput.
func BenchmarkAblation_TSCodec(b *testing.B) {
	s := timeseries.New()
	for i := 0; i < 10_000; i++ {
		s.Append(int64(i)*1_000_000, 20+float64(i%7)*0.1)
	}
	enc := timeseries.Encode(s)
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(timeseries.RawSize(s)))
		for i := 0; i < b.N; i++ {
			timeseries.Encode(s)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(timeseries.RawSize(s)))
		for i := 0; i < b.N; i++ {
			if _, err := timeseries.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation 5: scan predicate fast path (typed int comparison vs generic).
func BenchmarkAblation_ScanPredicate(b *testing.B) {
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE t (a INT, s VARCHAR)`)
	sess := eng.NewSession()
	sess.Begin()
	for i := 0; i < 50_000; i++ {
		sess.Query(`INSERT INTO t VALUES (?, ?)`, value.Int(int64(i)), value.String(fmt.Sprintf("v%d", i%100)))
	}
	sess.Commit()
	sess.Close()
	eng.MustQuery(`MERGE DELTA OF t`)
	b.Run("int-fast-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.MustQuery(`SELECT COUNT(*) FROM t WHERE a > 25000`)
		}
	})
	b.Run("dict-eq-fast-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.MustQuery(`SELECT COUNT(*) FROM t WHERE s = 'v42'`)
		}
	})
	b.Run("generic-expression", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.MustQuery(`SELECT COUNT(*) FROM t WHERE a % 2 = 0`)
		}
	})
}
