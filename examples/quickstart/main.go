// Quickstart: boot an ecosystem, run OLTP and OLAP on the same column
// store, and combine text, geo and currency functionality in one SQL
// statement — the elevator pitch of the paper in ~100 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/value"
)

func main() {
	eco, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eco.Close()

	// DDL — plain SQL against the in-memory column store.
	eco.MustQuery(`CREATE TABLE customers (id VARCHAR, name VARCHAR, lat DOUBLE, lon DOUBLE, review VARCHAR)`)
	eco.MustQuery(`CREATE TABLE orders (id VARCHAR, cust_id VARCHAR, amount DOUBLE, currency VARCHAR, status VARCHAR)`)

	// OLTP: transactional inserts (every statement is ACID).
	customers := []struct {
		id, name string
		lat, lon float64
		review   string
	}{
		{"C1", "Alpha GmbH", 52.52, 13.40, "great service, fast delivery"},
		{"C2", "Beta Corp", 52.53, 13.41, "terrible support, slow and broken"},
		{"C3", "Gamma Ltd", 37.56, 126.97, "works perfectly, love it"},
	}
	for _, c := range customers {
		eco.MustQuery(`INSERT INTO customers VALUES (?, ?, ?, ?, ?)`,
			value.String(c.id), value.String(c.name), value.Float(c.lat), value.Float(c.lon), value.String(c.review))
	}
	eco.Bridge.Currency.SetRate("USD", 0, 0.9)
	eco.MustQuery(`INSERT INTO orders VALUES ('O1', 'C1', 1000, 'EUR', 'OPEN')`)
	eco.MustQuery(`INSERT INTO orders VALUES ('O2', 'C1', 500, 'USD', 'PAID')`)
	eco.MustQuery(`INSERT INTO orders VALUES ('O3', 'C2', 250, 'USD', 'OPEN')`)
	eco.MustQuery(`INSERT INTO orders VALUES ('O4', 'C3', 800, 'EUR', 'PAID')`)

	// OLAP on the same store — no replication, no ETL (§II-A).
	fmt.Println("== Revenue per customer (EUR, converted in-engine) ==")
	r := eco.MustQuery(`
		SELECT c.name, SUM(CONVERT_CURRENCY(o.amount, o.currency, 'EUR', 1)) AS revenue
		FROM orders o JOIN customers c ON c.id = o.cust_id
		GROUP BY c.name ORDER BY revenue DESC`)
	printResult(r)

	// Cross-engine query: geospatial proximity + text sentiment in one
	// statement through one optimizer (Figure 2).
	fmt.Println("== Happy customers within 10 km of Berlin center ==")
	r = eco.MustQuery(`
		SELECT id, name FROM customers
		WHERE ST_WITHIN_DISTANCE(lat, lon, 52.5200, 13.4050, 10)
		  AND SENTIMENT(review) > 0`)
	printResult(r)

	// The column store at work: merge the delta, look at compression.
	eco.MergeAll()
	st := eco.Status()
	fmt.Println("== Storage after delta merge ==")
	for _, t := range st.Tables {
		fmt.Printf("  %-10s rows=%-4d partitions=%d bytes=%d\n", t.Name, t.Rows, t.Partitions, t.Bytes)
	}

	// EXPLAIN shows the optimized plan.
	fmt.Println("== EXPLAIN ==")
	r = eco.MustQuery(`EXPLAIN SELECT c.name, COUNT(*) FROM orders o JOIN customers c ON c.id = o.cust_id WHERE o.status = 'OPEN' GROUP BY c.name`)
	for _, row := range r.Rows {
		fmt.Println("  " + row[0].S)
	}
}

func printResult(r interface{ String() string }) {
	fmt.Println(r.String())
}
