// Scenario §V-3: a producer of soap for washrooms plans service routes to
// refill dispensers. Sensor readings land in the Hadoop tier and stream
// into the in-memory store; locations live in the GIS engine; the ERP
// master data and route planning run relationally; the facility graph
// answers the routing question; event notices (big events near a
// location) trigger proactive refills.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/columnstore"
	"repro/internal/core"
	"repro/internal/soe"
	"repro/internal/value"
)

func main() {
	eco, err := core.New(core.Config{
		HDFSDataNodes: 3,
		SOE:           &soe.ClusterConfig{Nodes: 2, Mode: soe.OLTP},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eco.Close()

	// --- ERP master data (relational, in-memory) -----------------------
	eco.MustQuery(`CREATE TABLE dispensers (id VARCHAR, building VARCHAR, lat DOUBLE, lon DOUBLE)`)
	eco.MustQuery(`CREATE TABLE buildings (id VARCHAR, name VARCHAR)`)
	dispensers := []struct {
		id, building string
		lat, lon     float64
	}{
		{"DISP-0001", "B1", 52.5200, 13.4050},
		{"DISP-0002", "B1", 52.5201, 13.4052},
		{"DISP-0003", "B2", 52.5310, 13.3840},
		{"DISP-0004", "B3", 52.5075, 13.4251},
	}
	for _, d := range dispensers {
		eco.MustQuery(`INSERT INTO dispensers VALUES (?, ?, ?, ?)`,
			value.String(d.id), value.String(d.building), value.Float(d.lat), value.Float(d.lon))
	}
	eco.MustQuery(`INSERT INTO buildings VALUES ('B1', 'Hauptbahnhof'), ('B2', 'Messe'), ('B3', 'Ostbahnhof')`)
	if err := eco.Geo.CreateIndex("disp_geo", "dispensers", "lat", "lon", "id"); err != nil {
		log.Fatal(err)
	}

	// --- Sensor data: raw history in HDFS, live feed streamed ----------
	// Historic fill-level CSV lands in the Hadoop tier; the Hive source
	// makes it SQL-queryable with pushdown.
	var csv strings.Builder
	for i, d := range dispensers {
		for h := 0; h < 24; h++ {
			fill := 100 - (h*3+i*7)%100
			csv.WriteString(fmt.Sprintf("%s,%d,%d\n", d.id, h*3_600_000_000, fill))
		}
	}
	if err := eco.HDFS.WriteFile("/sensors/fill_history.csv", []byte(csv.String())); err != nil {
		log.Fatal(err)
	}
	sensorSchema := columnstore.Schema{
		{Name: "sensor", Kind: value.KindString},
		{Name: "ts", Kind: value.KindInt},
		{Name: "fill", Kind: value.KindInt},
	}
	eco.HiveSrc.DefineTable("fill_history", "/sensors/fill_history.csv", sensorSchema)
	if err := eco.Fed.Expose("history", "hive", "fill_history"); err != nil {
		log.Fatal(err)
	}

	// Live readings stream into the delta store; a trigger fires on
	// critically low levels.
	eco.MustQuery(`CREATE TABLE live_fill (sensor VARCHAR, ts INT, fill DOUBLE)`)
	stream := eco.NewStream(columnstore.Schema{
		{Name: "sensor", Kind: value.KindString},
		{Name: "ts", Kind: value.KindInt},
		{Name: "fill", Kind: value.KindFloat},
	})
	var alerts []string
	stream.OnEvent(func(r value.Row) {
		if r[2].F < 15 {
			alerts = append(alerts, r[0].S)
		}
	})
	// Stream sink expects the stream schema order (sensor, ts, fill).
	if err := stream.IntoTable(eco.Engine, "live_fill"); err != nil {
		log.Fatal(err)
	}
	readings := []struct {
		sensor string
		fill   float64
	}{{"DISP-0001", 8}, {"DISP-0002", 72}, {"DISP-0003", 12}, {"DISP-0004", 55}}
	for i, rd := range readings {
		stream.Push(value.Row{value.String(rd.sensor), value.Int(int64(i)), value.Float(rd.fill)})
	}
	stream.Flush()
	fmt.Printf("low-fill alerts from the stream: %v\n\n", alerts)

	// --- Event notices: proactive refills (§V-3) -----------------------
	// A big event near Messe (B2) means its dispensers refill even above
	// the usual threshold.
	eco.MustQuery(`CREATE TABLE events (name VARCHAR, lat DOUBLE, lon DOUBLE, expected_visitors INT)`)
	eco.MustQuery(`INSERT INTO events VALUES ('TechConf', 52.5312, 13.3845, 20000)`)

	// --- The planning query: which dispensers need service? ------------
	fmt.Println("== Dispensers needing refill (threshold 15, or near a big event: 60) ==")
	r := eco.MustQuery(`
		SELECT d.id, b.name AS building, f.fill,
		       CASE WHEN e.name IS NOT NULL THEN 'proactive' ELSE 'urgent' END AS reason
		FROM live_fill f
		JOIN dispensers d ON d.id = f.sensor
		JOIN buildings b ON b.id = d.building
		LEFT JOIN events e ON ST_WITHIN_DISTANCE(d.lat, d.lon, e.lat, e.lon, 1) AND e.expected_visitors > 10000
		WHERE f.fill < CASE WHEN e.name IS NOT NULL THEN 60 ELSE 15 END
		ORDER BY f.fill`)
	fmt.Println(r.String())

	// --- Routing: the facility graph answers the path question ---------
	eco.MustQuery(`CREATE TABLE corridors (src VARCHAR, dst VARCHAR, meters DOUBLE)`)
	for _, c := range [][3]any{
		{"depot", "B1", 1200.0}, {"B1", "B2", 4300.0}, {"B1", "B3", 2500.0}, {"B2", "B3", 5200.0}, {"depot", "B3", 2000.0},
	} {
		eco.MustQuery(`INSERT INTO corridors VALUES (?, ?, ?)`,
			value.String(c[0].(string)), value.String(c[1].(string)), value.Float(c[2].(float64)))
	}
	if err := eco.Graph.CreateGraphView("campus", "corridors", "src", "dst", "meters", true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Service route depot → Messe (B2) ==")
	r = eco.MustQuery(`SELECT step, node FROM TABLE(GRAPH_SHORTEST_PATH('campus', 'depot', 'B2')) p ORDER BY step`)
	fmt.Println(r.String())

	// --- Historic analysis straight from HDFS via SDA pushdown ---------
	fmt.Println("== Hours below 20% per dispenser (computed on the Hadoop side) ==")
	r = eco.MustQuery(`SELECT h.sensor, COUNT(*) AS hours_low FROM TABLE(FED_HISTORY('fill < 20')) h GROUP BY h.sensor ORDER BY hours_low DESC`)
	fmt.Println(r.String())

	fmt.Printf("rows fetched from Hadoop: %d (filter pushed down)\n", eco.Fed.RowsMoved())
}
