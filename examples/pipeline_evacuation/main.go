// Scenario §V-5: a gas pipeline is stored as a huge graph together with
// its geographic locations. When a sensor stream detects a pressure drop
// (a leak), the system computes an evacuation plan in real time: isolate
// the leaking segment, find everyone within the danger radius, and give
// each affected site the shortest safe route to an assembly point.
package main

import (
	"fmt"
	"log"

	"repro/internal/columnstore"
	"repro/internal/core"
	"repro/internal/value"
)

func main() {
	eco, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eco.Close()

	// --- The pipeline graph with geo positions -------------------------
	eco.MustQuery(`CREATE TABLE stations (id VARCHAR, lat DOUBLE, lon DOUBLE)`)
	stations := []struct {
		id       string
		lat, lon float64
	}{
		{"plant", 53.55, 9.99}, {"j1", 53.40, 10.10}, {"j2", 53.25, 10.25},
		{"j3", 53.10, 10.40}, {"city_gate", 52.95, 10.55}, {"storage", 53.30, 9.90},
	}
	for _, s := range stations {
		eco.MustQuery(`INSERT INTO stations VALUES (?, ?, ?)`,
			value.String(s.id), value.Float(s.lat), value.Float(s.lon))
	}
	eco.MustQuery(`CREATE TABLE pipes (src VARCHAR, dst VARCHAR, km DOUBLE, segment VARCHAR)`)
	pipes := []struct {
		src, dst string
		km       float64
		seg      string
	}{
		{"plant", "j1", 18, "SEG-A"}, {"j1", "j2", 21, "SEG-B"}, {"j2", "j3", 20, "SEG-C"},
		{"j3", "city_gate", 19, "SEG-D"}, {"j1", "storage", 16, "SEG-E"}, {"storage", "j2", 26, "SEG-F"},
	}
	for _, p := range pipes {
		eco.MustQuery(`INSERT INTO pipes VALUES (?, ?, ?, ?)`,
			value.String(p.src), value.String(p.dst), value.Float(p.km), value.String(p.seg))
	}
	if err := eco.Graph.CreateGraphView("pipeline", "pipes", "src", "dst", "km", true); err != nil {
		log.Fatal(err)
	}
	if err := eco.Geo.CreateIndex("station_geo", "stations", "lat", "lon", "id"); err != nil {
		log.Fatal(err)
	}

	// Sites (villages, facilities) along the line.
	eco.MustQuery(`CREATE TABLE sites (id VARCHAR, name VARCHAR, lat DOUBLE, lon DOUBLE, people INT)`)
	sites := []struct {
		id, name string
		lat, lon float64
		people   int
	}{
		{"S1", "Village North", 53.38, 10.12, 800},
		{"S2", "Factory East", 53.26, 10.27, 250},
		{"S3", "Farm Cluster", 53.12, 10.38, 60},
		{"S4", "Town South", 52.96, 10.53, 4000},
	}
	for _, s := range sites {
		eco.MustQuery(`INSERT INTO sites VALUES (?, ?, ?, ?, ?)`,
			value.String(s.id), value.String(s.name), value.Float(s.lat), value.Float(s.lon), value.Int(int64(s.people)))
	}

	// --- Live pressure stream with leak detection -----------------------
	eco.MustQuery(`CREATE TABLE pressure (segment VARCHAR, ts INT, bar DOUBLE)`)
	stream := eco.NewStream(columnstore.Schema{
		{Name: "segment", Kind: value.KindString},
		{Name: "ts", Kind: value.KindInt},
		{Name: "bar", Kind: value.KindFloat},
	})
	var leaks []string
	stream.OnEvent(func(r value.Row) {
		if r[2].F < 40 { // nominal is ~60 bar
			leaks = append(leaks, r[0].S)
		}
	})
	if err := stream.IntoTable(eco.Engine, "pressure"); err != nil {
		log.Fatal(err)
	}
	// Normal readings, then a sudden drop on SEG-B (j1-j2).
	for i, seg := range []string{"SEG-A", "SEG-B", "SEG-C", "SEG-D", "SEG-E", "SEG-F"} {
		stream.Push(value.Row{value.String(seg), value.Int(int64(i)), value.Float(60)})
	}
	stream.Push(value.Row{value.String("SEG-B"), value.Int(100), value.Float(31.5)})
	stream.Flush()
	if len(leaks) == 0 {
		log.Fatal("no leak detected")
	}
	fmt.Printf("LEAK DETECTED on %s\n\n", leaks[0])

	// --- Real-time evacuation plan --------------------------------------
	// 1. Locate the leaking segment's endpoints and the danger midpoint.
	seg := eco.MustQuery(`SELECT p.src, p.dst FROM pipes p WHERE p.segment = ?`, value.String(leaks[0]))
	src, dst := seg.Rows[0][0].S, seg.Rows[0][1].S
	ends := eco.MustQuery(`SELECT lat, lon FROM stations WHERE id IN (?, ?)`, value.String(src), value.String(dst))
	midLat := (ends.Rows[0][0].F + ends.Rows[1][0].F) / 2
	midLon := (ends.Rows[0][1].F + ends.Rows[1][1].F) / 2
	fmt.Printf("leak between %s and %s, danger center (%.3f, %.3f)\n\n", src, dst, midLat, midLon)

	// 2. Everyone within 15 km of the leak must evacuate.
	fmt.Println("== Sites inside the 15 km danger zone ==")
	danger := eco.MustQuery(fmt.Sprintf(`
		SELECT s.id, s.name, s.people, ST_DISTANCE_KM(s.lat, s.lon, %f, %f) AS km
		FROM sites s WHERE ST_WITHIN_DISTANCE(s.lat, s.lon, %f, %f, 15)
		ORDER BY km`, midLat, midLon, midLat, midLon))
	fmt.Println(danger.String())

	// 3. Isolate: which stations stay reachable from the plant with the
	//    leaking segment closed? Rebuild the view without SEG-B.
	eco.MustQuery(`CREATE VIEW safe_pipes AS SELECT src, dst, km FROM pipes WHERE segment <> 'SEG-B'`)
	eco.MustQuery(`CREATE TABLE safe_pipes_t (src VARCHAR, dst VARCHAR, km DOUBLE)`)
	eco.MustQuery(`INSERT INTO safe_pipes_t SELECT src, dst, km FROM safe_pipes`)
	if err := eco.Graph.CreateGraphView("safe", "safe_pipes_t", "src", "dst", "km", true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Supply route plant → city_gate avoiding the leak ==")
	route := eco.MustQuery(`SELECT step, node, cost FROM TABLE(GRAPH_SHORTEST_PATH('safe', 'plant', 'city_gate')) p ORDER BY step`)
	fmt.Println(route.String())

	// 4. Evacuation totals for the crisis dashboard.
	total := eco.MustQuery(fmt.Sprintf(`
		SELECT SUM(people) FROM sites WHERE ST_WITHIN_DISTANCE(lat, lon, %f, %f, 15)`, midLat, midLon))
	fmt.Printf("people to evacuate: %d\n", total.Rows[0][0].AsInt())
}
