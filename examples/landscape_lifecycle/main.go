// The non-functional half of §V: "one central repository for business
// objects with consistent deployment procedures into all SAP systems,
// seamless migration from development via test to active systems, single
// interface for a central administration of all components." This example
// runs a three-system landscape (dev → test → prod) from one repository,
// upgrades an object, detects landscape drift, and shows the single
// administration surface.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	repo := core.NewRepository()

	// The business object: a sales order with its view and a text index,
	// defined once, deployed everywhere.
	repo.Define(core.BusinessObject{
		Name: "sales_order",
		Statements: []string{
			`CREATE TABLE so (id VARCHAR, customer VARCHAR, note VARCHAR, total DOUBLE, status VARCHAR)`,
			`CREATE VIEW so_open AS SELECT id, customer, total FROM so WHERE status = 'OPEN'`,
		},
		Wire: func(e *core.Ecosystem) error {
			return e.Text.CreateIndex("so", "note", "id")
		},
	})
	repo.Define(core.BusinessObject{
		Name:       "revenue_report",
		Statements: []string{`CREATE VIEW revenue AS SELECT customer, SUM(total) AS total FROM so GROUP BY customer`},
	})

	mkSystem := func(name string) *core.Ecosystem {
		e, err := core.New(core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		if err := repo.DeployAll(e); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return e
	}
	dev, test, prod := mkSystem("dev"), mkSystem("test"), mkSystem("prod")
	defer dev.Close()
	defer test.Close()
	defer prod.Close()
	fmt.Println("deployed sales_order v1 + revenue_report v1 to dev, test, prod")

	// Work happens in prod while dev evolves.
	prod.MustQuery(`INSERT INTO so VALUES ('SO-1', 'Acme', 'urgent delivery to Berlin', 1200, 'OPEN')`)
	prod.MustQuery(`INSERT INTO so VALUES ('SO-2', 'Globex', 'standard order', 300, 'CLOSED')`)
	r := prod.MustQuery(`SELECT * FROM so_open`)
	fmt.Printf("\nprod open orders:\n%s\n", r)
	r = prod.MustQuery(`SELECT k FROM TABLE(TEXT_SEARCH('so', 'urgent Berlin')) s`)
	fmt.Printf("text search on the deployed index: %s hits\n\n", fmt.Sprint(len(r.Rows)))

	// Version 2 of the report lands in dev and test, not yet in prod.
	repo.Define(core.BusinessObject{
		Name:       "revenue_report",
		Statements: []string{`CREATE VIEW revenue_v2 AS SELECT customer, SUM(total) AS total, COUNT(*) AS orders FROM so GROUP BY customer`},
	})
	for _, sys := range []*core.Ecosystem{dev, test} {
		if err := repo.Deploy("revenue_report", sys); err != nil {
			log.Fatal(err)
		}
	}

	// The landscape check: which objects differ across systems?
	drift := core.LandscapeDrift(repo, dev, test, prod)
	fmt.Println("landscape drift (dev, test, prod versions):")
	for obj, versions := range drift {
		fmt.Printf("  %-16s %v  ← prod lags\n", obj, versions)
	}

	// Roll prod forward; drift disappears.
	if err := repo.Deploy("revenue_report", prod); err != nil {
		log.Fatal(err)
	}
	if len(core.LandscapeDrift(repo, dev, test, prod)) == 0 {
		fmt.Println("after rollout: landscape consistent")
	}

	// One administration surface for every system.
	fmt.Println("\nadmin snapshot per system:")
	for name, sys := range map[string]*core.Ecosystem{"dev": dev, "test": test, "prod": prod} {
		st := sys.Status()
		rows := 0
		for _, t := range st.Tables {
			rows += t.Rows
		}
		fmt.Printf("  %-5s tables=%d rows=%d commits=%d\n", name, len(st.Tables), rows, st.Commits)
	}
}
