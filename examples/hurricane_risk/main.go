// Scenario §V-4: an insurance company calculates rates from hurricane
// probabilities. Historic hurricane tracks sit in a Hadoop-like storage;
// customers and their rates live in the ERP tables; customer locations sit
// in the geospatial engine. A prediction model derived from the tracks
// maps onto customer locations to build per-location risk profiles, and
// the computed rates go back into the ERP for consumption.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/columnstore"
	"repro/internal/core"
	"repro/internal/value"
)

func main() {
	eco, err := core.New(core.Config{HDFSDataNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer eco.Close()
	rng := rand.New(rand.NewSource(2015))

	// --- Historic hurricane tracks in the Hadoop tier -------------------
	// One CSV row per observation: storm, year, lat, lon, wind (kt).
	var csv strings.Builder
	storms := 0
	for year := 1990; year <= 2014; year++ {
		for s := 0; s < 4; s++ {
			storms++
			// Tracks start in the Atlantic and drift northwest over the
			// Florida / Gulf coast box.
			lat, lon := 18+rng.Float64()*4, -60-rng.Float64()*10
			wind := 40 + rng.Float64()*30
			for step := 0; step < 20; step++ {
				lat += 0.4 + rng.Float64()*0.3
				lon -= 0.9 + rng.Float64()*0.5
				wind += rng.Float64()*14 - 6
				csv.WriteString(fmt.Sprintf("H%04d,%d,%.3f,%.3f,%.1f\n", storms, year, lat, lon, wind))
			}
		}
	}
	if err := eco.HDFS.WriteFile("/weather/hurdat.csv", []byte(csv.String())); err != nil {
		log.Fatal(err)
	}
	trackSchema := columnstore.Schema{
		{Name: "storm", Kind: value.KindString},
		{Name: "yr", Kind: value.KindInt},
		{Name: "lat", Kind: value.KindFloat},
		{Name: "lon", Kind: value.KindFloat},
		{Name: "wind", Kind: value.KindFloat},
	}
	eco.HiveSrc.DefineTable("hurdat", "/weather/hurdat.csv", trackSchema)
	if err := eco.Fed.Expose("tracks", "hive", "hurdat"); err != nil {
		log.Fatal(err)
	}

	// --- ERP: customers and their current rates ------------------------
	eco.MustQuery(`CREATE TABLE customers (id VARCHAR, name VARCHAR, lat DOUBLE, lon DOUBLE, insured_value DOUBLE, rate DOUBLE)`)
	custs := []struct {
		id, name string
		lat, lon float64
		insured  float64
	}{
		{"C1", "Miami Marina", 25.76, -80.19, 2_000_000},
		{"C2", "Houston Plant", 29.76, -95.37, 5_000_000},
		{"C3", "Chicago Depot", 41.88, -87.63, 3_000_000},
		{"C4", "Tampa Resort", 27.95, -82.46, 1_500_000},
	}
	for _, c := range custs {
		eco.MustQuery(`INSERT INTO customers VALUES (?, ?, ?, ?, ?, 0.001)`,
			value.String(c.id), value.String(c.name), value.Float(c.lat), value.Float(c.lon), value.Float(c.insured))
	}
	if err := eco.Geo.CreateIndex("cust_geo", "customers", "lat", "lon", "id"); err != nil {
		log.Fatal(err)
	}

	// --- Risk model: strong-wind observations near each customer -------
	// The federation pushes the wind filter into the Hadoop side; only
	// hurricane-strength observations travel.
	strong := eco.MustQuery(`SELECT t.storm, t.yr, t.lat, t.lon FROM TABLE(FED_TRACKS('wind >= 64')) t`)
	fmt.Printf("hurricane-strength observations fetched: %d (of %d total)\n\n", len(strong.Rows), 25*4*20)

	// Pull them into a relational staging table and join spatially.
	eco.MustQuery(`CREATE TABLE strong_obs (storm VARCHAR, yr INT, lat DOUBLE, lon DOUBLE)`)
	sess := eco.Engine.NewSession()
	sess.Query("BEGIN")
	for _, r := range strong.Rows {
		sess.Query(`INSERT INTO strong_obs VALUES (?, ?, ?, ?)`, r[0], r[1], r[2], r[3])
	}
	sess.Query("COMMIT")
	sess.Close()

	fmt.Println("== Hurricane exposure per customer (strong obs within 150 km, 25 years) ==")
	risk := eco.MustQuery(`
		SELECT c.id, c.name, COUNT(*) AS hits
		FROM customers c JOIN strong_obs o ON ST_WITHIN_DISTANCE(c.lat, c.lon, o.lat, o.lon, 150)
		GROUP BY c.id, c.name ORDER BY hits DESC`)
	fmt.Println(risk.String())

	// Annual frequency trend per region: the time series engine forecasts
	// next year's expected count from yearly aggregates.
	eco.MustQuery(`CREATE TABLE yearly (region VARCHAR, yr INT, hits DOUBLE)`)
	yearly := eco.MustQuery(`SELECT o.yr, COUNT(*) FROM strong_obs o GROUP BY o.yr ORDER BY o.yr`)
	for _, r := range yearly.Rows {
		eco.MustQuery(`INSERT INTO yearly VALUES ('gulf', ?, ?)`, r[0], value.Float(r[1].AsFloat()))
	}
	if err := eco.Series.CreateSeriesView("freq", "yearly", "region", "yr", "hits"); err != nil {
		log.Fatal(err)
	}
	fc := eco.MustQuery(`SELECT val FROM TABLE(TS_FORECAST('freq', 'gulf', 1)) f`)
	fmt.Printf("forecast strong observations next season: %.1f\n\n", fc.Rows[0][0].AsFloat())

	// --- Computed rates go back to the ERP (§V-4) -----------------------
	eco.MustQuery(`CREATE TABLE risk_profile (cust VARCHAR, hits INT)`)
	for _, r := range risk.Rows {
		eco.MustQuery(`INSERT INTO risk_profile VALUES (?, ?)`, r[0], r[2])
	}
	// Per-customer rate update from the risk profile.
	for _, r := range risk.Rows {
		eco.MustQuery(`UPDATE customers SET rate = 0.001 + 0.0001 * ? WHERE id = ?`, r[2], r[0])
	}
	fmt.Println("== Updated insurance rates (back in the ERP) ==")
	out := eco.MustQuery(`SELECT id, name, rate, ROUND(insured_value * rate, 0) AS premium FROM customers ORDER BY rate DESC`)
	fmt.Println(out.String())
}
