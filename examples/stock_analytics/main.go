// Scenario §V-1: financial analysts keep stock prices in the relational
// store and run complex numerical analysis without exporting to external
// files. The time series engine computes correlations, the scientific
// engine builds the covariance matrix and extracts its dominant
// eigenvector (the market factor) in-engine, an external "R" provider is
// called as an operator in the data flow, and text analysis links recent
// news entities back to the traded companies.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/value"
)

// rProvider simulates the external R system of §II-B.
type rProvider struct{}

func (rProvider) Name() string { return "R" }
func (rProvider) Call(proc string, in map[string][]float64) (map[string][]float64, error) {
	switch proc {
	case "drawdown": // maximum drawdown of a price series
		x := in["x"]
		peak, maxDD := math.Inf(-1), 0.0
		out := make([]float64, len(x))
		for i, v := range x {
			if v > peak {
				peak = v
			}
			dd := (peak - v) / peak
			if dd > maxDD {
				maxDD = dd
			}
			out[i] = maxDD
		}
		return map[string][]float64{"drawdown": out}, nil
	}
	return nil, fmt.Errorf("R: unknown procedure %q", proc)
}

func main() {
	eco, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eco.Close()
	eco.Mining.RegisterProvider(rProvider{})
	rng := rand.New(rand.NewSource(42))

	// --- Price history in the relational store --------------------------
	eco.MustQuery(`CREATE TABLE prices (ticker VARCHAR, ts INT, price DOUBLE)`)
	tickers := []string{"SAP", "ACME", "GLOBEX", "INITECH"}
	days := 250
	// ACME follows SAP (same market factor); GLOBEX is anti-cyclical;
	// INITECH is pure noise.
	base := make([]float64, days)
	base[0] = 0
	for d := 1; d < days; d++ {
		base[d] = base[d-1] + rng.NormFloat64()
	}
	sess := eco.Engine.NewSession()
	sess.Query("BEGIN")
	for d := 0; d < days; d++ {
		prices := map[string]float64{
			"SAP":     100 + 2*base[d] + rng.NormFloat64()*0.2,
			"ACME":    50 + 1.1*base[d] + rng.NormFloat64()*0.2,
			"GLOBEX":  80 - 1.5*base[d] + rng.NormFloat64()*0.2,
			"INITECH": 30 + rng.NormFloat64()*2,
		}
		for _, tk := range tickers {
			sess.Query(`INSERT INTO prices VALUES (?, ?, ?)`,
				value.String(tk), value.Int(int64(d)), value.Float(prices[tk]))
		}
	}
	sess.Query("COMMIT")
	sess.Close()
	eco.MergeAll() // read-optimize before the analytical phase

	if err := eco.Series.CreateSeriesView("stocks", "prices", "ticker", "ts", "price"); err != nil {
		log.Fatal(err)
	}

	// --- Correlations through the time series engine --------------------
	fmt.Println("== Pairwise correlation with SAP ==")
	for _, tk := range tickers[1:] {
		r := eco.MustQuery(`SELECT TS_CORRELATION('stocks', 'SAP', ?)`, value.String(tk))
		fmt.Printf("  SAP vs %-8s %+.3f\n", tk, r.Rows[0][0].AsFloat())
	}
	fmt.Println()

	// --- Covariance + dominant eigenvector, all in-engine (§II-G) -------
	series := make([][]float64, len(tickers))
	for i, tk := range tickers {
		s, err := eco.Series.Series("stocks", tk)
		if err != nil {
			log.Fatal(err)
		}
		diffs := s.Diff()
		series[i] = make([]float64, diffs.Len())
		for d := 0; d < diffs.Len(); d++ {
			series[i][d] = diffs.At(d).Val
		}
	}
	obs := matrix.NewDense(len(series[0]), len(tickers))
	for d := 0; d < obs.Rows; d++ {
		for i := range tickers {
			obs.Set(d, i, series[i][d])
		}
	}
	cov := matrix.Covariance(obs)
	if err := eco.Matrix.SaveCSR("cov_matrix", cov.ToCSR()); err != nil {
		log.Fatal(err)
	}
	r := eco.MustQuery(`SELECT MATRIX_EIGENVALUE('cov_matrix', ?, ?)`,
		value.Int(int64(len(tickers))), value.Int(int64(len(tickers))))
	fmt.Printf("dominant market-factor variance (λ₁): %.3f\n", r.Rows[0][0].AsFloat())
	ev, vec, iters, err := eco.Matrix.EigenInEngine("cov_matrix", len(tickers), len(tickers))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eigenvector after %d iterations (λ=%.3f):\n", iters, ev)
	for i, tk := range tickers {
		fmt.Printf("  %-8s %+.3f\n", tk, vec[i])
	}
	fmt.Println()

	// --- External R operator in the data flow (§II-B) -------------------
	eco.MustQuery(`CREATE VIEW sap_prices AS SELECT price FROM prices WHERE ticker = 'SAP'`)
	r = eco.MustQuery(`SELECT MAX(val) AS max_drawdown FROM TABLE(EXT_CALL('R', 'drawdown', 'sap_prices', 'price')) d`)
	fmt.Printf("maximum drawdown of SAP (computed by the R provider): %.1f%%\n\n", 100*r.Rows[0][0].AsFloat())

	// --- News context: text entities join the tickers -------------------
	eco.MustQuery(`CREATE TABLE news (id VARCHAR, body VARCHAR)`)
	eco.MustQuery(`INSERT INTO news VALUES ('N1', 'Acme Corp announces record quarter, investors happy')`)
	eco.MustQuery(`INSERT INTO news VALUES ('N2', 'Globex Corp faces terrible supply problem in Berlin')`)
	if err := eco.Text.CreateIndex("news", "body", "id"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Company mentions in the news with sentiment ==")
	r = eco.MustQuery(`
		SELECT e.entity, n.id, SENTIMENT(n.body) AS tone
		FROM TABLE(TEXT_ENTITIES('news')) e JOIN news n ON n.id = e.k
		WHERE e.etype = 'COMPANY' ORDER BY tone DESC`)
	fmt.Println(r.String())
}
