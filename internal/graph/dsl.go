package graph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the graph domain-specific language the paper
// announces for §II-E: "providing a domain-specific language to fully
// exploit the graph data model without the constraints imposed by the
// relational representation". The DSL is a compact pattern-matching
// language in the spirit of openCypher:
//
//	MATCH (a)-[*1..3]->(b) WHERE a = 'plant' RETURN b
//	MATCH (a)-->(b) WHERE b = 'city' RETURN a
//	MATCH (a)-[*..2]->(b) WHERE a = 'x' RETURN b, depth
//	MATCH SHORTEST (a)-[*]->(b) WHERE a = 'x' AND b = 'y' RETURN node
//
// Supported: one edge pattern with hop bounds, equality constraints on
// the endpoint variables, RETURN of endpoint variables plus the derived
// columns `depth` (for reachability) and `node`/`step`/`cost` (for
// SHORTEST).

// DSLResult is the result relation of a DSL query.
type DSLResult struct {
	Cols []string
	Rows [][]string
}

// dslQuery is the parsed form.
type dslQuery struct {
	shortest   bool
	varA, varB string
	minHops    int
	maxHops    int // -1 = unbounded
	binds      map[string]string
	returns    []string
}

// RunDSL parses and evaluates a DSL query against the graph.
func (g *Graph) RunDSL(query string) (*DSLResult, error) {
	q, err := parseDSL(query)
	if err != nil {
		return nil, err
	}
	if q.shortest {
		return g.runShortest(q)
	}
	return g.runReach(q)
}

func (g *Graph) runReach(q *dslQuery) (*DSLResult, error) {
	srcBound, srcOK := q.binds[q.varA]
	dstBound, dstOK := q.binds[q.varB]

	var sources []string
	if srcOK {
		if !g.Has(srcBound) {
			return &DSLResult{Cols: q.returns}, nil
		}
		sources = []string{srcBound}
	} else {
		sources = append(sources, g.names...)
		sort.Strings(sources)
	}

	res := &DSLResult{Cols: q.returns}
	for _, src := range sources {
		for node, depth := range g.reachDepths(src, q.maxHops) {
			if depth < q.minHops {
				continue
			}
			if dstOK && node != dstBound {
				continue
			}
			row := make([]string, len(q.returns))
			for i, col := range q.returns {
				switch col {
				case q.varA:
					row[i] = src
				case q.varB:
					row[i] = node
				case "depth":
					row[i] = strconv.Itoa(depth)
				default:
					return nil, fmt.Errorf("graph dsl: unknown return column %q", col)
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	sort.Slice(res.Rows, func(a, b int) bool {
		return strings.Join(res.Rows[a], "\x00") < strings.Join(res.Rows[b], "\x00")
	})
	return res, nil
}

// reachDepths returns node -> minimal hop count from src (excluding src),
// bounded by maxHops (-1 = unbounded).
func (g *Graph) reachDepths(src string, maxHops int) map[string]int {
	out := map[string]int{}
	s, ok := g.nodes[src]
	if !ok {
		return out
	}
	seen := map[int]bool{s: true}
	frontier := []int{s}
	depth := 0
	for len(frontier) > 0 && (maxHops < 0 || depth < maxHops) {
		depth++
		var next []int
		for _, cur := range frontier {
			for _, e := range g.adj[cur] {
				if !seen[e.to] {
					seen[e.to] = true
					out[g.names[e.to]] = depth
					next = append(next, e.to)
				}
			}
		}
		frontier = next
	}
	return out
}

func (g *Graph) runShortest(q *dslQuery) (*DSLResult, error) {
	src, ok1 := q.binds[q.varA]
	dst, ok2 := q.binds[q.varB]
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("graph dsl: SHORTEST needs both endpoints bound")
	}
	res := &DSLResult{Cols: q.returns}
	path, cost, ok := g.ShortestPath(src, dst)
	if !ok {
		return res, nil
	}
	for step, node := range path {
		row := make([]string, len(q.returns))
		for i, col := range q.returns {
			switch col {
			case "node":
				row[i] = node
			case "step":
				row[i] = strconv.Itoa(step)
			case "cost":
				row[i] = strconv.FormatFloat(cost, 'g', -1, 64)
			case q.varA:
				row[i] = src
			case q.varB:
				row[i] = dst
			default:
				return nil, fmt.Errorf("graph dsl: unknown return column %q", col)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// parseDSL parses the MATCH ... WHERE ... RETURN ... form.
func parseDSL(s string) (*dslQuery, error) {
	q := &dslQuery{minHops: 1, maxHops: 1, binds: map[string]string{}}
	rest := strings.TrimSpace(s)
	upper := strings.ToUpper(rest)
	if !strings.HasPrefix(upper, "MATCH") {
		return nil, fmt.Errorf("graph dsl: query must start with MATCH")
	}
	rest = strings.TrimSpace(rest[len("MATCH"):])
	if up := strings.ToUpper(rest); strings.HasPrefix(up, "SHORTEST") {
		q.shortest = true
		q.maxHops = -1
		rest = strings.TrimSpace(rest[len("SHORTEST"):])
	}

	// Pattern: (a)-[...]->(b) or (a)-->(b).
	pat, rest, err := cutPattern(rest)
	if err != nil {
		return nil, err
	}
	if err := parsePattern(pat, q); err != nil {
		return nil, err
	}

	// Optional WHERE.
	up := strings.ToUpper(rest)
	if i := strings.Index(up, "RETURN"); i < 0 {
		return nil, fmt.Errorf("graph dsl: missing RETURN")
	} else {
		wherePart := strings.TrimSpace(rest[:i])
		returnPart := strings.TrimSpace(rest[i+len("RETURN"):])
		if wherePart != "" {
			wu := strings.ToUpper(wherePart)
			if !strings.HasPrefix(wu, "WHERE") {
				return nil, fmt.Errorf("graph dsl: unexpected %q", wherePart)
			}
			for _, cond := range strings.Split(wherePart[len("WHERE"):], " AND ") {
				parts := strings.SplitN(cond, "=", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("graph dsl: bad condition %q", cond)
				}
				name := strings.TrimSpace(parts[0])
				val := strings.Trim(strings.TrimSpace(parts[1]), "'")
				if name != q.varA && name != q.varB {
					return nil, fmt.Errorf("graph dsl: unknown variable %q", name)
				}
				q.binds[name] = val
			}
		}
		for _, col := range strings.Split(returnPart, ",") {
			q.returns = append(q.returns, strings.TrimSpace(col))
		}
	}
	if len(q.returns) == 0 || q.returns[0] == "" {
		return nil, fmt.Errorf("graph dsl: empty RETURN list")
	}
	return q, nil
}

// cutPattern splits the leading (a)-[...]->(b) pattern from the rest.
func cutPattern(s string) (pat, rest string, err error) {
	if !strings.HasPrefix(s, "(") {
		return "", "", fmt.Errorf("graph dsl: pattern must start with (")
	}
	// The pattern ends at the second closing parenthesis.
	count := 0
	for i, r := range s {
		if r == ')' {
			count++
			if count == 2 {
				return s[:i+1], strings.TrimSpace(s[i+1:]), nil
			}
		}
	}
	return "", "", fmt.Errorf("graph dsl: unterminated pattern")
}

func parsePattern(pat string, q *dslQuery) error {
	// (a) EDGE (b)
	close1 := strings.IndexByte(pat, ')')
	open2 := strings.LastIndexByte(pat, '(')
	if close1 < 0 || open2 < close1 {
		return fmt.Errorf("graph dsl: malformed pattern %q", pat)
	}
	q.varA = strings.TrimSpace(pat[1:close1])
	q.varB = strings.TrimSpace(pat[open2+1 : len(pat)-1])
	if q.varA == "" || q.varB == "" || q.varA == q.varB {
		return fmt.Errorf("graph dsl: pattern needs two distinct variables")
	}
	edge := strings.TrimSpace(pat[close1+1 : open2])
	switch {
	case edge == "-->":
		q.minHops, q.maxHops = 1, 1
	case strings.HasPrefix(edge, "-[") && strings.HasSuffix(edge, "]->"):
		spec := strings.TrimSpace(edge[2 : len(edge)-3])
		if !strings.HasPrefix(spec, "*") {
			return fmt.Errorf("graph dsl: edge spec must be *[min]..[max], got %q", spec)
		}
		spec = spec[1:]
		switch {
		case spec == "":
			q.minHops, q.maxHops = 1, -1
		case strings.Contains(spec, ".."):
			parts := strings.SplitN(spec, "..", 2)
			q.minHops = 1
			q.maxHops = -1
			if parts[0] != "" {
				n, err := strconv.Atoi(parts[0])
				if err != nil || n < 0 {
					return fmt.Errorf("graph dsl: bad min hops %q", parts[0])
				}
				q.minHops = n
			}
			if parts[1] != "" {
				n, err := strconv.Atoi(parts[1])
				if err != nil || n < q.minHops {
					return fmt.Errorf("graph dsl: bad max hops %q", parts[1])
				}
				q.maxHops = n
			}
		default:
			n, err := strconv.Atoi(spec)
			if err != nil || n < 1 {
				return fmt.Errorf("graph dsl: bad hop count %q", spec)
			}
			q.minHops, q.maxHops = n, n
		}
	default:
		return fmt.Errorf("graph dsl: unsupported edge %q", edge)
	}
	return nil
}
