package graph

import (
	"fmt"
	"sort"
)

// Hierarchy is a forest with nested-interval labels: every node carries
// [lo, hi) bounds such that d is a descendant of a iff a.lo < d.lo &&
// d.hi <= a.hi. Subtree size, containment and level queries are O(1) after
// the labeling pass. This is the engine behind the paper's hierarchy
// support (§II-E) and the in-DB "count transitive child nodes" pushdown of
// §III (experiment E5/E12).
type Hierarchy struct {
	parent map[string]string
	kids   map[string][]string
	labels map[string]span
	roots  []string
	dirty  bool
}

type span struct {
	lo, hi, level int
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{parent: map[string]string{}, kids: map[string][]string{}, labels: map[string]span{}}
}

// Add inserts node under parent; an empty parent makes it a root.
// Re-adding a node moves it (subtree included).
func (h *Hierarchy) Add(node, parent string) error {
	if node == "" {
		return fmt.Errorf("hierarchy: empty node name")
	}
	if parent != "" && h.wouldCycle(node, parent) {
		return fmt.Errorf("hierarchy: adding %s under %s creates a cycle", node, parent)
	}
	if old, ok := h.parent[node]; ok {
		// Move: detach from the old parent or roots.
		if old == "" {
			h.roots = removeStr(h.roots, node)
		} else {
			h.kids[old] = removeStr(h.kids[old], node)
		}
	}
	h.parent[node] = parent
	if parent == "" {
		h.roots = append(h.roots, node)
	} else {
		if _, ok := h.parent[parent]; !ok {
			// Implicit root parent.
			h.parent[parent] = ""
			h.roots = append(h.roots, parent)
		}
		h.kids[parent] = append(h.kids[parent], node)
	}
	h.dirty = true
	return nil
}

func (h *Hierarchy) wouldCycle(node, parent string) bool {
	for cur := parent; cur != ""; cur = h.parent[cur] {
		if cur == node {
			return true
		}
	}
	return false
}

func removeStr(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// relabel assigns nested-interval labels with a DFS.
func (h *Hierarchy) relabel() {
	if !h.dirty {
		return
	}
	h.labels = make(map[string]span, len(h.parent))
	counter := 0
	roots := append([]string(nil), h.roots...)
	sort.Strings(roots)
	var dfs func(n string, level int)
	dfs = func(n string, level int) {
		lo := counter
		counter++
		kids := append([]string(nil), h.kids[n]...)
		sort.Strings(kids)
		for _, k := range kids {
			dfs(k, level+1)
		}
		h.labels[n] = span{lo: lo, hi: counter, level: level}
	}
	for _, r := range roots {
		dfs(r, 0)
	}
	h.dirty = false
}

// Size returns the node count.
func (h *Hierarchy) Size() int { return len(h.parent) }

// IsDescendant reports whether d lies strictly below a — an O(1) interval
// check after labeling.
func (h *Hierarchy) IsDescendant(d, a string) bool {
	h.relabel()
	ds, ok1 := h.labels[d]
	as, ok2 := h.labels[a]
	return ok1 && ok2 && as.lo < ds.lo && ds.hi <= as.hi
}

// SubtreeCount returns the number of transitive children of node —
// interval width minus one, O(1) after labeling (§III: only the count
// travels to the application, never the subtree).
func (h *Hierarchy) SubtreeCount(node string) int {
	h.relabel()
	s, ok := h.labels[node]
	if !ok {
		return 0
	}
	return s.hi - s.lo - 1
}

// SubtreeCountRecursive is the application-layer baseline of §III: walk
// the whole subtree, materializing every node (experiment E12 compares it
// against SubtreeCount).
func (h *Hierarchy) SubtreeCountRecursive(node string) int {
	n := 0
	for _, k := range h.kids[node] {
		n += 1 + h.SubtreeCountRecursive(k)
	}
	return n
}

// Children returns the direct children, sorted.
func (h *Hierarchy) Children(node string) []string {
	out := append([]string(nil), h.kids[node]...)
	sort.Strings(out)
	return out
}

// Parent returns the parent and whether the node exists and is not a root.
func (h *Hierarchy) Parent(node string) (string, bool) {
	p, ok := h.parent[node]
	return p, ok && p != ""
}

// Siblings returns nodes sharing the parent, excluding node itself.
func (h *Hierarchy) Siblings(node string) []string {
	p, ok := h.parent[node]
	if !ok {
		return nil
	}
	var pool []string
	if p == "" {
		pool = h.roots
	} else {
		pool = h.kids[p]
	}
	var out []string
	for _, s := range pool {
		if s != node {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Ancestors returns the path from the node's parent up to its root.
func (h *Hierarchy) Ancestors(node string) []string {
	var out []string
	cur, ok := h.parent[node]
	for ok && cur != "" {
		out = append(out, cur)
		cur, ok = h.parent[cur]
	}
	return out
}

// Level returns the depth of the node (roots are level 0).
func (h *Hierarchy) Level(node string) int {
	h.relabel()
	return h.labels[node].level
}

// Descendants returns the full subtree below node in label order.
func (h *Hierarchy) Descendants(node string) []string {
	h.relabel()
	s, ok := h.labels[node]
	if !ok {
		return nil
	}
	var out []string
	for n, l := range h.labels {
		if s.lo < l.lo && l.hi <= s.hi {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(a, b int) bool { return h.labels[out[a]].lo < h.labels[out[b]].lo })
	return out
}

// --- versioned hierarchies ------------------------------------------------

// VersionedHierarchy keeps named versions of a hierarchy (time-dependent
// org structures, §II-E). Versions are copy-on-snapshot: cheap for the
// modest hierarchy sizes of business metadata, with the DeltaNI property
// that every version answers interval queries at full speed.
type VersionedHierarchy struct {
	current  *Hierarchy
	versions map[int64]*Hierarchy // validFrom timestamp -> frozen snapshot
	stamps   []int64
}

// NewVersionedHierarchy returns a versioned hierarchy with an empty
// current state.
func NewVersionedHierarchy() *VersionedHierarchy {
	return &VersionedHierarchy{current: NewHierarchy(), versions: map[int64]*Hierarchy{}}
}

// Current returns the mutable head version.
func (v *VersionedHierarchy) Current() *Hierarchy { return v.current }

// Snapshot freezes the current state as the version valid from ts.
func (v *VersionedHierarchy) Snapshot(ts int64) {
	frozen := NewHierarchy()
	for n, p := range v.current.parent {
		frozen.parent[n] = p
	}
	for n, ks := range v.current.kids {
		frozen.kids[n] = append([]string(nil), ks...)
	}
	frozen.roots = append([]string(nil), v.current.roots...)
	frozen.dirty = true
	v.versions[ts] = frozen
	v.stamps = append(v.stamps, ts)
	sort.Slice(v.stamps, func(a, b int) bool { return v.stamps[a] < v.stamps[b] })
}

// AsOf returns the version valid at ts: the snapshot with the greatest
// validFrom <= ts, or nil when none exists.
func (v *VersionedHierarchy) AsOf(ts int64) *Hierarchy {
	i := sort.Search(len(v.stamps), func(i int) bool { return v.stamps[i] > ts })
	if i == 0 {
		return nil
	}
	return v.versions[v.stamps[i-1]]
}

// Versions returns the snapshot timestamps, ascending.
func (v *VersionedHierarchy) Versions() []int64 {
	return append([]int64(nil), v.stamps...)
}
