package graph

import (
	"reflect"
	"testing"

	"repro/internal/sqlexec"
)

func dslGraph() *Graph {
	g := New()
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "c", 1)
	g.AddEdge("c", "d", 1)
	g.AddEdge("a", "x", 5)
	g.AddEdge("x", "d", 5)
	return g
}

func TestDSLSingleHop(t *testing.T) {
	g := dslGraph()
	r, err := g.RunDSL(`MATCH (a)-->(b) WHERE a = 'a' RETURN b`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range r.Rows {
		got = append(got, row[0])
	}
	if !reflect.DeepEqual(got, []string{"b", "x"}) {
		t.Fatalf("got=%v", got)
	}
}

func TestDSLBoundedHops(t *testing.T) {
	g := dslGraph()
	r, err := g.RunDSL(`MATCH (s)-[*1..2]->(n) WHERE s = 'a' RETURN n, depth`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"b": "1", "x": "1", "c": "2", "d": "2"}
	if len(r.Rows) != len(want) {
		t.Fatalf("rows=%v", r.Rows)
	}
	for _, row := range r.Rows {
		if want[row[0]] != row[1] {
			t.Fatalf("depth of %s = %s", row[0], row[1])
		}
	}
	// Min bound excludes direct neighbors.
	r, _ = g.RunDSL(`MATCH (s)-[*2..3]->(n) WHERE s = 'a' RETURN n`)
	for _, row := range r.Rows {
		if row[0] == "b" || row[0] == "x" {
			t.Fatalf("1-hop node leaked: %v", r.Rows)
		}
	}
}

func TestDSLUnboundedAndReverseBind(t *testing.T) {
	g := dslGraph()
	r, err := g.RunDSL(`MATCH (s)-[*]->(n) WHERE s = 'a' AND n = 'd' RETURN s, n, depth`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][2] != "2" { // a->x->d is 2 hops min? a->b->c->d is 3; a->x->d is 2
		t.Fatalf("rows=%v", r.Rows)
	}
	// Bind only the destination: every node reaching 'd' in one hop.
	r, _ = g.RunDSL(`MATCH (s)-->(n) WHERE n = 'd' RETURN s`)
	var got []string
	for _, row := range r.Rows {
		got = append(got, row[0])
	}
	if !reflect.DeepEqual(got, []string{"c", "x"}) {
		t.Fatalf("got=%v", got)
	}
}

func TestDSLShortest(t *testing.T) {
	g := dslGraph()
	r, err := g.RunDSL(`MATCH SHORTEST (s)-[*]->(n) WHERE s = 'a' AND n = 'd' RETURN step, node, cost`)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted: a->b->c->d costs 3 beats a->x->d costing 10.
	if len(r.Rows) != 4 || r.Rows[3][1] != "d" || r.Rows[0][2] != "3" {
		t.Fatalf("rows=%v", r.Rows)
	}
	// Unreachable yields empty relation, not an error.
	r, err = g.RunDSL(`MATCH SHORTEST (s)-[*]->(n) WHERE s = 'd' AND n = 'a' RETURN node`)
	if err != nil || len(r.Rows) != 0 {
		t.Fatalf("rows=%v err=%v", r.Rows, err)
	}
}

func TestDSLFixedHopCount(t *testing.T) {
	g := dslGraph()
	r, err := g.RunDSL(`MATCH (s)-[*2]->(n) WHERE s = 'a' RETURN n`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"c": true, "d": true}
	for _, row := range r.Rows {
		if !want[row[0]] {
			t.Fatalf("unexpected %s", row[0])
		}
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestDSLErrors(t *testing.T) {
	g := dslGraph()
	for _, q := range []string{
		``,
		`SELECT 1`,
		`MATCH (a)-->(a) RETURN a`,
		`MATCH (a)-->(b) RETURN`,
		`MATCH (a)-->(b) WHERE c = 'x' RETURN a`,
		`MATCH (a)-[*x]->(b) RETURN b`,
		`MATCH (a)-[*3..1]->(b) RETURN b`,
		`MATCH (a)<--(b) RETURN a`,
		`MATCH (a)-->(b) WHERE a = 'a' RETURN nosuch`,
		`MATCH SHORTEST (a)-[*]->(b) WHERE a = 'a' RETURN node`, // missing b bind
	} {
		if _, err := g.RunDSL(q); err == nil {
			t.Fatalf("%q accepted", q)
		}
	}
}

func TestDSLUnknownStartNode(t *testing.T) {
	g := dslGraph()
	r, err := g.RunDSL(`MATCH (s)-->(n) WHERE s = 'ghost' RETURN n`)
	if err != nil || len(r.Rows) != 0 {
		t.Fatalf("rows=%v err=%v", r.Rows, err)
	}
}

func TestDSLThroughSQL(t *testing.T) {
	eng := sqlexec.NewEngine()
	views := Attach(eng)
	eng.MustQuery(`CREATE TABLE edges (src VARCHAR, dst VARCHAR)`)
	eng.MustQuery(`INSERT INTO edges VALUES ('a', 'b'), ('b', 'c'), ('a', 'x')`)
	if err := views.CreateGraphView("g", "edges", "src", "dst", "", false); err != nil {
		t.Fatal(err)
	}
	r := eng.MustQuery(`SELECT q.c1, q.c2 FROM TABLE(GRAPH_QUERY('g', 'MATCH (s)-[*1..2]->(n) WHERE s = ''a'' RETURN n, depth')) q ORDER BY q.c1`)
	if len(r.Rows) != 3 { // b(1), c(2), x(1)
		t.Fatalf("rows=%v", r.Rows)
	}
	if r.Rows[1][0].S != "c" || r.Rows[1][1].S != "2" {
		t.Fatalf("rows=%v", r.Rows)
	}
	if _, err := eng.Query(`SELECT * FROM TABLE(GRAPH_QUERY('g', 'garbage')) q`); err == nil {
		t.Fatal("bad DSL accepted")
	}
}
