package graph

import (
	"fmt"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

// Views interprets relational columns as graph or hierarchy structures —
// "graph views on top of the relational data" (§II-E) — and exposes
// traversal operators as SQL functions:
//
//	TABLE(GRAPH_SHORTEST_PATH('view', 'a', 'b'))  → (step, node, cost)
//	TABLE(GRAPH_NEIGHBORS('view', 'a'))           → (node)
//	TABLE(GRAPH_REACHABLE('view', 'a', hops))     → (node)
//	GRAPH_DISTANCE('view', 'a', 'b')              → hop count scalar
//	TABLE(HIER_DESCENDANTS('view', 'n'))          → (node, level)
//	HIER_SUBTREE_COUNT('view', 'n')               → scalar
//	HIER_IS_DESCENDANT('view', 'd', 'a')          → scalar boolean
type Views struct {
	mu   sync.Mutex
	eng  *sqlexec.Engine
	defs map[string]*viewDef
}

type viewDef struct {
	graphTable string // edge table
	srcCol     string
	dstCol     string
	weightCol  string // "" for unweighted
	undirected bool

	hierTable string // hierarchy table (node, parent)
	nodeCol   string
	parentCol string

	cachedTS uint64
	graph    *Graph
	hier     *Hierarchy
}

// Attach installs the graph engine into a relational engine.
func Attach(eng *sqlexec.Engine) *Views {
	v := &Views{eng: eng, defs: map[string]*viewDef{}}

	eng.Reg.RegisterScalar("GRAPH_DISTANCE", func(a []value.Value) (value.Value, error) {
		if len(a) != 3 {
			return value.Null, fmt.Errorf("graph: GRAPH_DISTANCE(view, from, to)")
		}
		g, err := v.Graph(a[0].AsString())
		if err != nil {
			return value.Null, err
		}
		d := g.Distance(a[1].AsString(), a[2].AsString())
		if d < 0 {
			return value.Null, nil
		}
		return value.Int(int64(d)), nil
	})
	eng.Reg.RegisterScalar("HIER_SUBTREE_COUNT", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, fmt.Errorf("graph: HIER_SUBTREE_COUNT(view, node)")
		}
		h, err := v.Hierarchy(a[0].AsString())
		if err != nil {
			return value.Null, err
		}
		return value.Int(int64(h.SubtreeCount(a[1].AsString()))), nil
	})
	eng.Reg.RegisterScalar("HIER_IS_DESCENDANT", func(a []value.Value) (value.Value, error) {
		if len(a) != 3 {
			return value.Null, fmt.Errorf("graph: HIER_IS_DESCENDANT(view, desc, anc)")
		}
		h, err := v.Hierarchy(a[0].AsString())
		if err != nil {
			return value.Null, err
		}
		return value.Bool(h.IsDescendant(a[1].AsString(), a[2].AsString())), nil
	})

	eng.Reg.RegisterTable("GRAPH_SHORTEST_PATH", columnstore.Schema{
		{Name: "step", Kind: value.KindInt},
		{Name: "node", Kind: value.KindString},
		{Name: "cost", Kind: value.KindFloat},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 3 {
			return nil, fmt.Errorf("graph: GRAPH_SHORTEST_PATH(view, from, to)")
		}
		g, err := v.Graph(a[0].AsString())
		if err != nil {
			return nil, err
		}
		path, cost, ok := g.ShortestPath(a[1].AsString(), a[2].AsString())
		if !ok {
			return nil, nil
		}
		out := make([]value.Row, len(path))
		for i, n := range path {
			out[i] = value.Row{value.Int(int64(i)), value.String(n), value.Float(cost)}
		}
		return out, nil
	})
	eng.Reg.RegisterTable("GRAPH_NEIGHBORS", columnstore.Schema{
		{Name: "node", Kind: value.KindString},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 2 {
			return nil, fmt.Errorf("graph: GRAPH_NEIGHBORS(view, node)")
		}
		g, err := v.Graph(a[0].AsString())
		if err != nil {
			return nil, err
		}
		var out []value.Row
		for _, n := range g.Neighbors(a[1].AsString()) {
			out = append(out, value.Row{value.String(n)})
		}
		return out, nil
	})
	eng.Reg.RegisterTable("GRAPH_REACHABLE", columnstore.Schema{
		{Name: "node", Kind: value.KindString},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 3 {
			return nil, fmt.Errorf("graph: GRAPH_REACHABLE(view, node, hops)")
		}
		g, err := v.Graph(a[0].AsString())
		if err != nil {
			return nil, err
		}
		var out []value.Row
		for _, n := range g.Reachable(a[1].AsString(), int(a[2].AsInt())) {
			out = append(out, value.Row{value.String(n)})
		}
		return out, nil
	})
	eng.Reg.RegisterTable("HIER_DESCENDANTS", columnstore.Schema{
		{Name: "node", Kind: value.KindString},
		{Name: "level", Kind: value.KindInt},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 2 {
			return nil, fmt.Errorf("graph: HIER_DESCENDANTS(view, node)")
		}
		h, err := v.Hierarchy(a[0].AsString())
		if err != nil {
			return nil, err
		}
		var out []value.Row
		for _, n := range h.Descendants(a[1].AsString()) {
			out = append(out, value.Row{value.String(n), value.Int(int64(h.Level(n)))})
		}
		return out, nil
	})
	// The graph DSL (§II-E's announced domain-specific language) embeds in
	// SQL as a table function returning up to four generic columns.
	eng.Reg.RegisterTable("GRAPH_QUERY", columnstore.Schema{
		{Name: "c1", Kind: value.KindString},
		{Name: "c2", Kind: value.KindString},
		{Name: "c3", Kind: value.KindString},
		{Name: "c4", Kind: value.KindString},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 2 {
			return nil, fmt.Errorf("graph: GRAPH_QUERY(view, dsl)")
		}
		g, err := v.Graph(a[0].AsString())
		if err != nil {
			return nil, err
		}
		res, err := g.RunDSL(a[1].AsString())
		if err != nil {
			return nil, err
		}
		if len(res.Cols) > 4 {
			return nil, fmt.Errorf("graph: GRAPH_QUERY supports at most 4 return columns")
		}
		out := make([]value.Row, len(res.Rows))
		for i, row := range res.Rows {
			r := make(value.Row, 4)
			for c := 0; c < 4; c++ {
				if c < len(row) {
					r[c] = value.String(row[c])
				}
			}
			out[i] = r
		}
		return out, nil
	})

	eng.Reg.RegisterTable("HIER_ANCESTORS", columnstore.Schema{
		{Name: "node", Kind: value.KindString},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 2 {
			return nil, fmt.Errorf("graph: HIER_ANCESTORS(view, node)")
		}
		h, err := v.Hierarchy(a[0].AsString())
		if err != nil {
			return nil, err
		}
		var out []value.Row
		for _, n := range h.Ancestors(a[1].AsString()) {
			out = append(out, value.Row{value.String(n)})
		}
		return out, nil
	})
	return v
}

// CreateGraphView declares a graph over an edge table. weightCol may be ""
// for unweighted graphs.
func (v *Views) CreateGraphView(name, table, srcCol, dstCol, weightCol string, undirected bool) error {
	entry, ok := v.eng.Cat.Table(table)
	if !ok {
		return fmt.Errorf("graph: unknown table %q", table)
	}
	for _, c := range []string{srcCol, dstCol} {
		if entry.Schema.ColIndex(c) < 0 {
			return fmt.Errorf("graph: column %q not in %s", c, table)
		}
	}
	if weightCol != "" && entry.Schema.ColIndex(weightCol) < 0 {
		return fmt.Errorf("graph: weight column %q not in %s", weightCol, table)
	}
	v.mu.Lock()
	v.defs[name] = &viewDef{graphTable: table, srcCol: srcCol, dstCol: dstCol, weightCol: weightCol, undirected: undirected}
	v.mu.Unlock()
	return nil
}

// CreateHierarchyView declares a hierarchy over a (node, parent) table.
func (v *Views) CreateHierarchyView(name, table, nodeCol, parentCol string) error {
	entry, ok := v.eng.Cat.Table(table)
	if !ok {
		return fmt.Errorf("graph: unknown table %q", table)
	}
	for _, c := range []string{nodeCol, parentCol} {
		if entry.Schema.ColIndex(c) < 0 {
			return fmt.Errorf("graph: column %q not in %s", c, table)
		}
	}
	v.mu.Lock()
	v.defs[name] = &viewDef{hierTable: table, nodeCol: nodeCol, parentCol: parentCol}
	v.mu.Unlock()
	return nil
}

// Graph materializes (or returns the cached) graph of a view at the
// current snapshot.
func (v *Views) Graph(name string) (*Graph, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, ok := v.defs[name]
	if !ok || d.graphTable == "" {
		return nil, fmt.Errorf("graph: no graph view %q", name)
	}
	ts := v.eng.Mgr.Now()
	if d.graph != nil && d.cachedTS == ts {
		return d.graph, nil
	}
	entry, ok := v.eng.Cat.Table(d.graphTable)
	if !ok {
		return nil, fmt.Errorf("graph: table %q dropped", d.graphTable)
	}
	si := entry.Schema.ColIndex(d.srcCol)
	di := entry.Schema.ColIndex(d.dstCol)
	wi := -1
	if d.weightCol != "" {
		wi = entry.Schema.ColIndex(d.weightCol)
	}
	g := New()
	for _, p := range entry.Partitions {
		snap := p.Table.Snapshot(ts)
		for pos := 0; pos < snap.NumRows(); pos++ {
			if !snap.Visible(pos) {
				continue
			}
			w := 1.0
			if wi >= 0 {
				w = snap.Get(wi, pos).AsFloat()
			}
			src, dst := snap.Get(si, pos).AsString(), snap.Get(di, pos).AsString()
			if d.undirected {
				g.AddUndirected(src, dst, w)
			} else {
				g.AddEdge(src, dst, w)
			}
		}
	}
	d.graph, d.cachedTS = g, ts
	return g, nil
}

// Hierarchy materializes (or returns the cached) hierarchy of a view.
func (v *Views) Hierarchy(name string) (*Hierarchy, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, ok := v.defs[name]
	if !ok || d.hierTable == "" {
		return nil, fmt.Errorf("graph: no hierarchy view %q", name)
	}
	ts := v.eng.Mgr.Now()
	if d.hier != nil && d.cachedTS == ts {
		return d.hier, nil
	}
	entry, ok := v.eng.Cat.Table(d.hierTable)
	if !ok {
		return nil, fmt.Errorf("graph: table %q dropped", d.hierTable)
	}
	ni := entry.Schema.ColIndex(d.nodeCol)
	pi := entry.Schema.ColIndex(d.parentCol)
	h := NewHierarchy()
	for _, p := range entry.Partitions {
		snap := p.Table.Snapshot(ts)
		for pos := 0; pos < snap.NumRows(); pos++ {
			if !snap.Visible(pos) {
				continue
			}
			parent := ""
			if pv := snap.Get(pi, pos); !pv.IsNull() {
				parent = pv.AsString()
			}
			if err := h.Add(snap.Get(ni, pos).AsString(), parent); err != nil {
				return nil, err
			}
		}
	}
	d.hier, d.cachedTS = h, ts
	return h, nil
}
