// Package graph implements the embedded graph and hierarchy engine of
// §II-E: graph views defined over relational columns, traversal operators
// (shortest path, distance, neighborhood, components), and a hierarchy
// engine with nested-interval labeling that answers subtree predicates in
// O(1) per node — including versioned, time-dependent hierarchies
// (DeltaNI-inspired, [5]).
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Graph is a directed, optionally weighted multigraph over string node
// IDs. Build once from an edge list (typically a relational scan); reads
// are concurrency-safe after Freeze.
type Graph struct {
	nodes map[string]int
	names []string
	adj   [][]edge
	radj  [][]edge
	edges int
}

type edge struct {
	to int
	w  float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: map[string]int{}}
}

// AddEdge inserts a directed edge with weight w (use 1 for unweighted).
func (g *Graph) AddEdge(from, to string, w float64) {
	f, t := g.intern(from), g.intern(to)
	g.adj[f] = append(g.adj[f], edge{to: t, w: w})
	g.radj[t] = append(g.radj[t], edge{to: f, w: w})
	g.edges++
}

// AddUndirected inserts edges in both directions.
func (g *Graph) AddUndirected(a, b string, w float64) {
	g.AddEdge(a, b, w)
	g.AddEdge(b, a, w)
}

func (g *Graph) intern(name string) int {
	if id, ok := g.nodes[name]; ok {
		return id
	}
	id := len(g.names)
	g.nodes[name] = id
	g.names = append(g.names, name)
	g.adj = append(g.adj, nil)
	g.radj = append(g.radj, nil)
	return id
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Has reports whether the node exists.
func (g *Graph) Has(name string) bool {
	_, ok := g.nodes[name]
	return ok
}

// Neighbors returns the out-neighbors of a node, sorted.
func (g *Graph) Neighbors(name string) []string {
	id, ok := g.nodes[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.adj[id]))
	for _, e := range g.adj[id] {
		out = append(out, g.names[e.to])
	}
	sort.Strings(out)
	return out
}

// Distance returns the minimum hop count between two nodes (BFS), or -1
// when unreachable.
func (g *Graph) Distance(from, to string) int {
	path := g.bfsPath(from, to)
	if path == nil {
		return -1
	}
	return len(path) - 1
}

// ShortestPath returns the minimum-weight path and its total cost
// (Dijkstra). ok is false when unreachable.
func (g *Graph) ShortestPath(from, to string) (path []string, cost float64, ok bool) {
	s, sok := g.nodes[from]
	t, tok := g.nodes[to]
	if !sok || !tok {
		return nil, 0, false
	}
	const inf = math.MaxFloat64
	dist := make([]float64, len(g.names))
	prev := make([]int, len(g.names))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[s] = 0
	pq := &nodeHeap{{node: s, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if cur.dist > dist[cur.node] {
			continue
		}
		if cur.node == t {
			break
		}
		for _, e := range g.adj[cur.node] {
			if nd := cur.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = cur.node
				heap.Push(pq, nodeDist{node: e.to, dist: nd})
			}
		}
	}
	if dist[t] == inf {
		return nil, 0, false
	}
	for at := t; at != -1; at = prev[at] {
		path = append([]string{g.names[at]}, path...)
	}
	return path, dist[t], true
}

// bfsPath returns the hop-minimal path or nil.
func (g *Graph) bfsPath(from, to string) []string {
	s, sok := g.nodes[from]
	t, tok := g.nodes[to]
	if !sok || !tok {
		return nil
	}
	prev := make([]int, len(g.names))
	for i := range prev {
		prev[i] = -2
	}
	prev[s] = -1
	queue := []int{s}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == t {
			var path []string
			for at := t; at != -1; at = prev[at] {
				path = append([]string{g.names[at]}, path...)
			}
			return path
		}
		for _, e := range g.adj[cur] {
			if prev[e.to] == -2 {
				prev[e.to] = cur
				queue = append(queue, e.to)
			}
		}
	}
	return nil
}

// Reachable returns all nodes reachable from start within maxHops
// (maxHops < 0 means unlimited), excluding start, sorted.
func (g *Graph) Reachable(start string, maxHops int) []string {
	s, ok := g.nodes[start]
	if !ok {
		return nil
	}
	seen := map[int]bool{s: true}
	frontier := []int{s}
	hops := 0
	var out []string
	for len(frontier) > 0 && (maxHops < 0 || hops < maxHops) {
		hops++
		var next []int
		for _, cur := range frontier {
			for _, e := range g.adj[cur] {
				if !seen[e.to] {
					seen[e.to] = true
					out = append(out, g.names[e.to])
					next = append(next, e.to)
				}
			}
		}
		frontier = next
	}
	sort.Strings(out)
	return out
}

// ConnectedComponents returns a component label per node (undirected
// interpretation), as name -> component id.
func (g *Graph) ConnectedComponents() map[string]int {
	comp := make([]int, len(g.names))
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for i := range g.names {
		if comp[i] >= 0 {
			continue
		}
		stack := []int{i}
		comp[i] = next
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, lists := range [][]edge{g.adj[cur], g.radj[cur]} {
				for _, e := range lists {
					if comp[e.to] < 0 {
						comp[e.to] = next
						stack = append(stack, e.to)
					}
				}
			}
		}
		next++
	}
	out := make(map[string]int, len(g.names))
	for i, n := range g.names {
		out[n] = comp[i]
	}
	return out
}

// Degree returns out- and in-degree of a node.
func (g *Graph) Degree(name string) (out, in int) {
	id, ok := g.nodes[name]
	if !ok {
		return 0, 0
	}
	return len(g.adj[id]), len(g.radj[id])
}

type nodeDist struct {
	node int
	dist float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Validate reports structural problems (self-loops are allowed; negative
// weights break Dijkstra and are rejected).
func (g *Graph) Validate() error {
	for i, es := range g.adj {
		for _, e := range es {
			if e.w < 0 {
				return fmt.Errorf("graph: negative edge weight %f at %s", e.w, g.names[i])
			}
		}
	}
	return nil
}
