package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sqlexec"
)

func pipelineGraph() *Graph {
	// A small gas-pipeline-like network.
	g := New()
	g.AddUndirected("plant", "junction1", 5)
	g.AddUndirected("junction1", "junction2", 3)
	g.AddUndirected("junction2", "city", 4)
	g.AddUndirected("junction1", "city", 9)
	g.AddUndirected("junction2", "storage", 2)
	g.AddEdge("storage", "flare", 1)
	return g
}

func TestShortestPathWeights(t *testing.T) {
	g := pipelineGraph()
	path, cost, ok := g.ShortestPath("plant", "city")
	if !ok {
		t.Fatal("unreachable")
	}
	// plant-j1-j2-city = 5+3+4 = 12 beats plant-j1-city = 5+9 = 14.
	if cost != 12 {
		t.Fatalf("cost=%v path=%v", cost, path)
	}
	if !reflect.DeepEqual(path, []string{"plant", "junction1", "junction2", "city"}) {
		t.Fatalf("path=%v", path)
	}
}

func TestDistanceAndReachability(t *testing.T) {
	g := pipelineGraph()
	if d := g.Distance("plant", "city"); d != 2 { // hops: plant-j1-city
		t.Fatalf("distance=%d", d)
	}
	if d := g.Distance("flare", "plant"); d != -1 { // directed edge only
		t.Fatalf("distance=%d", d)
	}
	r := g.Reachable("plant", 1)
	if !reflect.DeepEqual(r, []string{"junction1"}) {
		t.Fatalf("1-hop=%v", r)
	}
	if got := len(g.Reachable("plant", -1)); got != 5 {
		t.Fatalf("reachable=%d", got)
	}
}

func TestNeighborsDegreeComponents(t *testing.T) {
	g := pipelineGraph()
	n := g.Neighbors("junction1")
	if !reflect.DeepEqual(n, []string{"city", "junction2", "plant"}) {
		t.Fatalf("neighbors=%v", n)
	}
	out, in := g.Degree("storage")
	if out != 2 || in != 1 { // undirected to j2 + directed to flare; in only from j2
		t.Fatalf("deg=%d/%d", out, in)
	}
	g.AddEdge("island_a", "island_b", 1)
	comp := g.ConnectedComponents()
	if comp["plant"] == comp["island_a"] {
		t.Fatal("components merged wrongly")
	}
	if comp["island_a"] != comp["island_b"] {
		t.Fatal("island split wrongly")
	}
}

func TestShortestPathUnknownNodes(t *testing.T) {
	g := pipelineGraph()
	if _, _, ok := g.ShortestPath("nope", "city"); ok {
		t.Fatal("phantom source")
	}
	if _, _, ok := g.ShortestPath("plant", "nope"); ok {
		t.Fatal("phantom target")
	}
	if g.Neighbors("nope") != nil {
		t.Fatal("phantom neighbors")
	}
}

func TestDijkstraMatchesBFSOnUnitWeightsProperty(t *testing.T) {
	// Property: with unit weights, Dijkstra cost equals BFS hop count.
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		g := New()
		n := 20
		for i := 0; i < 40; i++ {
			a := fmt.Sprintf("n%d", rng.Intn(n))
			b := fmt.Sprintf("n%d", rng.Intn(n))
			g.AddEdge(a, b, 1)
		}
		a := fmt.Sprintf("n%d", rng.Intn(n))
		b := fmt.Sprintf("n%d", rng.Intn(n))
		if !g.Has(a) || !g.Has(b) {
			return true
		}
		d := g.Distance(a, b)
		_, cost, ok := g.ShortestPath(a, b)
		if d < 0 {
			return !ok
		}
		return ok && int(cost) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func orgHierarchy() *Hierarchy {
	h := NewHierarchy()
	h.Add("board", "")
	h.Add("sales", "board")
	h.Add("rnd", "board")
	h.Add("sales_eu", "sales")
	h.Add("sales_us", "sales")
	h.Add("sales_eu_de", "sales_eu")
	h.Add("sales_eu_fr", "sales_eu")
	h.Add("hana_team", "rnd")
	return h
}

func TestHierarchySubtreeCount(t *testing.T) {
	h := orgHierarchy()
	cases := map[string]int{"board": 7, "sales": 4, "sales_eu": 2, "hana_team": 0}
	for node, want := range cases {
		if got := h.SubtreeCount(node); got != want {
			t.Fatalf("SubtreeCount(%s)=%d want %d", node, got, want)
		}
		if got := h.SubtreeCountRecursive(node); got != want {
			t.Fatalf("recursive(%s)=%d want %d", node, got, want)
		}
	}
}

func TestHierarchyPredicates(t *testing.T) {
	h := orgHierarchy()
	if !h.IsDescendant("sales_eu_de", "board") || !h.IsDescendant("sales_eu_de", "sales") {
		t.Fatal("descendant check failed")
	}
	if h.IsDescendant("sales", "rnd") || h.IsDescendant("board", "sales") {
		t.Fatal("false descendant")
	}
	if h.IsDescendant("board", "board") {
		t.Fatal("node is not its own descendant")
	}
	if h.Level("board") != 0 || h.Level("sales_eu_de") != 3 {
		t.Fatalf("levels: %d %d", h.Level("board"), h.Level("sales_eu_de"))
	}
	if got := h.Siblings("sales_eu"); !reflect.DeepEqual(got, []string{"sales_us"}) {
		t.Fatalf("siblings=%v", got)
	}
	if got := h.Ancestors("sales_eu_de"); !reflect.DeepEqual(got, []string{"sales_eu", "sales", "board"}) {
		t.Fatalf("ancestors=%v", got)
	}
	if got := h.Children("sales"); !reflect.DeepEqual(got, []string{"sales_eu", "sales_us"}) {
		t.Fatalf("children=%v", got)
	}
}

func TestHierarchyMoveAndCycleRejection(t *testing.T) {
	h := orgHierarchy()
	if err := h.Add("sales", "sales_eu_de"); err == nil {
		t.Fatal("cycle accepted")
	}
	// Move the whole EU subtree under R&D.
	if err := h.Add("sales_eu", "rnd"); err != nil {
		t.Fatal(err)
	}
	if h.SubtreeCount("sales") != 1 {
		t.Fatalf("sales count=%d", h.SubtreeCount("sales"))
	}
	if h.SubtreeCount("rnd") != 4 {
		t.Fatalf("rnd count=%d", h.SubtreeCount("rnd"))
	}
	if !h.IsDescendant("sales_eu_de", "rnd") {
		t.Fatal("moved subtree lost")
	}
}

func TestIntervalAndRecursiveCountsAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		h := NewHierarchy()
		h.Add("n0", "")
		for i := 1; i < 30; i++ {
			parent := fmt.Sprintf("n%d", rng.Intn(i))
			h.Add(fmt.Sprintf("n%d", i), parent)
		}
		for i := 0; i < 30; i++ {
			n := fmt.Sprintf("n%d", i)
			if h.SubtreeCount(n) != h.SubtreeCountRecursive(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionedHierarchy(t *testing.T) {
	v := NewVersionedHierarchy()
	v.Current().Add("root", "")
	v.Current().Add("a", "root")
	v.Snapshot(100)
	v.Current().Add("b", "root")
	v.Current().Add("c", "b")
	v.Snapshot(200)
	v.Current().Add("a", "b") // reorg: move a under b

	if h := v.AsOf(150); h.SubtreeCount("root") != 1 {
		t.Fatalf("v100 count=%d", h.SubtreeCount("root"))
	}
	if h := v.AsOf(250); h.SubtreeCount("b") != 1 {
		t.Fatalf("v200 count=%d", h.SubtreeCount("b"))
	}
	if v.AsOf(50) != nil {
		t.Fatal("version before first snapshot must be nil")
	}
	if v.Current().SubtreeCount("b") != 2 {
		t.Fatal("head version wrong")
	}
	if len(v.Versions()) != 2 {
		t.Fatalf("versions=%v", v.Versions())
	}
}

func TestSQLGraphView(t *testing.T) {
	eng := sqlexec.NewEngine()
	views := Attach(eng)
	eng.MustQuery(`CREATE TABLE pipes (src VARCHAR, dst VARCHAR, len DOUBLE)`)
	for _, e := range [][3]any{
		{"plant", "j1", 5.0}, {"j1", "j2", 3.0}, {"j2", "city", 4.0}, {"j1", "city", 9.0},
	} {
		eng.MustQuery(fmt.Sprintf(`INSERT INTO pipes VALUES ('%s', '%s', %f)`, e[0], e[1], e[2]))
	}
	if err := views.CreateGraphView("pipeline", "pipes", "src", "dst", "len", true); err != nil {
		t.Fatal(err)
	}
	r := eng.MustQuery(`SELECT node FROM TABLE(GRAPH_SHORTEST_PATH('pipeline', 'plant', 'city')) p ORDER BY p.step`)
	if len(r.Rows) != 4 || r.Rows[3][0].S != "city" {
		t.Fatalf("rows=%v", r.Rows)
	}
	r = eng.MustQuery(`SELECT GRAPH_DISTANCE('pipeline', 'plant', 'city')`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("distance=%v", r.Rows[0][0])
	}
	// The view follows relational DML: add a shortcut pipe.
	eng.MustQuery(`INSERT INTO pipes VALUES ('plant', 'city', 1.0)`)
	r = eng.MustQuery(`SELECT COUNT(*) FROM TABLE(GRAPH_SHORTEST_PATH('pipeline', 'plant', 'city')) p`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("path len=%v after shortcut", r.Rows[0][0])
	}
}

func TestSQLHierarchyView(t *testing.T) {
	eng := sqlexec.NewEngine()
	views := Attach(eng)
	eng.MustQuery(`CREATE TABLE org (node VARCHAR, parent VARCHAR)`)
	for _, p := range [][2]string{
		{"board", ""}, {"sales", "board"}, {"rnd", "board"}, {"eu", "sales"}, {"de", "eu"},
	} {
		eng.MustQuery(fmt.Sprintf(`INSERT INTO org VALUES ('%s', '%s')`, p[0], p[1])) // empty string parent = root
	}
	if err := views.CreateHierarchyView("orgchart", "org", "node", "parent"); err != nil {
		t.Fatal(err)
	}
	r := eng.MustQuery(`SELECT HIER_SUBTREE_COUNT('orgchart', 'sales')`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
	r = eng.MustQuery(`SELECT node, level FROM TABLE(HIER_DESCENDANTS('orgchart', 'board')) d ORDER BY level, node`)
	if len(r.Rows) != 4 {
		t.Fatalf("rows=%v", r.Rows)
	}
	r = eng.MustQuery(`SELECT HIER_IS_DESCENDANT('orgchart', 'de', 'board')`)
	if !r.Rows[0][0].AsBool() {
		t.Fatal("descendant check via SQL failed")
	}
}

func TestViewErrors(t *testing.T) {
	eng := sqlexec.NewEngine()
	views := Attach(eng)
	if err := views.CreateGraphView("g", "missing", "a", "b", "", false); err == nil {
		t.Fatal("missing table accepted")
	}
	eng.MustQuery(`CREATE TABLE e (src VARCHAR, dst VARCHAR)`)
	if err := views.CreateGraphView("g", "e", "src", "nope", "", false); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := views.Graph("ghost"); err == nil {
		t.Fatal("missing view accepted")
	}
	if _, err := views.Hierarchy("ghost"); err == nil {
		t.Fatal("missing hierarchy accepted")
	}
}
