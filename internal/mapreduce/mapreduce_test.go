package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/hdfs"
)

func wordCountJob(fs *hdfs.FS, inputs []string, out string) *Job {
	return &Job{
		FS: fs, Inputs: inputs, Output: out,
		Mapper: func(path string, chunk []byte, emit func(k, v string)) {
			for _, w := range strings.Fields(string(chunk)) {
				emit(w, "1")
			}
		},
		Reducer: func(k string, vs []string, emit func(k, v string)) {
			n := 0
			for _, v := range vs {
				x, _ := strconv.Atoi(v)
				n += x
			}
			emit(k, strconv.Itoa(n))
		},
	}
}

func TestWordCount(t *testing.T) {
	fs := hdfs.New(3, 1<<16, 2) // block larger than input: no split cuts
	fs.WriteFile("/in/a.txt", []byte("soap water soap towel"))
	fs.WriteFile("/in/b.txt", []byte("water soap"))
	job := wordCountJob(fs, []string{"/in/a.txt", "/in/b.txt"}, "/out/wc")
	c, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.MapTasks != 2 || c.ReduceTasks != 2 {
		t.Fatalf("counters=%+v", c)
	}
	res, err := ReadResults(fs, "/out/wc")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range res {
		got[kv.K] = kv.V
	}
	if got["soap"] != "3" || got["water"] != "2" || got["towel"] != "1" {
		t.Fatalf("got=%v", got)
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	fs := hdfs.New(2, 1<<16, 1)
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString("hot ")
	}
	fs.WriteFile("/in/hot.txt", []byte(sb.String()))

	plain := wordCountJob(fs, []string{"/in/hot.txt"}, "/out/plain")
	cPlain, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	combined := wordCountJob(fs, []string{"/in/hot.txt"}, "/out/comb")
	combined.Combiner = combined.Reducer
	cComb, err := combined.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cComb.ShuffledKVs >= cPlain.ShuffledKVs {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d", cComb.ShuffledKVs, cPlain.ShuffledKVs)
	}
	// Same result.
	a, _ := ReadResults(fs, "/out/plain")
	b, _ := ReadResults(fs, "/out/comb")
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("results differ: %v vs %v", a, b)
	}
}

func TestMultiBlockInput(t *testing.T) {
	// 10-byte records, block size a multiple of the record length so
	// splits never cut a record.
	fs := hdfs.New(3, 100, 2)
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "k%03d 0001\n", i%10)
	}
	fs.WriteFile("/in/rec.txt", []byte(sb.String()))
	job := &Job{
		FS: fs, Inputs: []string{"/in/rec.txt"}, Output: "/out/rec",
		Mapper: LinesMapper(func(line string, emit func(k, v string)) {
			parts := strings.Fields(line)
			emit(parts[0], parts[1])
		}),
		Reducer: func(k string, vs []string, emit func(k, v string)) {
			emit(k, strconv.Itoa(len(vs)))
		},
		Reducers: 3,
	}
	c, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.MapTasks != 10 { // 1000 bytes / 100 block
		t.Fatalf("map tasks=%d", c.MapTasks)
	}
	res, _ := ReadResults(fs, "/out/rec")
	if len(res) != 10 {
		t.Fatalf("keys=%d", len(res))
	}
	for _, kv := range res {
		if kv.V != "10" {
			t.Fatalf("key %s count %s", kv.K, kv.V)
		}
	}
}

func TestJobValidation(t *testing.T) {
	fs := hdfs.New(1, 64, 1)
	if _, err := (&Job{FS: fs, Inputs: []string{"/x"}}).Run(); err == nil {
		t.Fatal("missing mapper accepted")
	}
	job := wordCountJob(fs, []string{"/missing"}, "/out")
	if _, err := job.Run(); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestRerunOverwritesOutput(t *testing.T) {
	fs := hdfs.New(2, 1<<16, 1)
	fs.WriteFile("/in/x", []byte("a b"))
	job := wordCountJob(fs, []string{"/in/x"}, "/out/r")
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatalf("rerun failed: %v", err)
	}
}
