// Package mapreduce is the MapReduce runtime of the simulated Hadoop
// stack (§IV-C): jobs read block-aligned splits from package hdfs, map
// tasks run in parallel workers, an optional combiner reduces map output
// early, a hash shuffle groups keys into reduce partitions, and reducers
// write part files back to HDFS. The SOE file connector (integration path
// 1 of §IV-C) combines these jobs with SOE data processing.
package mapreduce

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/hdfs"
)

// KV is one key/value pair.
type KV struct {
	K, V string
}

// MapFn maps one input split to key/value pairs.
type MapFn func(path string, chunk []byte, emit func(k, v string))

// ReduceFn folds all values of one key.
type ReduceFn func(k string, vs []string, emit func(k, v string))

// Job describes one MapReduce execution.
type Job struct {
	FS       *hdfs.FS
	Inputs   []string
	Output   string // output directory; part files land beneath
	Mapper   MapFn
	Reducer  ReduceFn
	Combiner ReduceFn // optional
	Workers  int      // parallel map/reduce tasks; default 4
	Reducers int      // reduce partitions; default 2
}

// Counters reports what a job did.
type Counters struct {
	MapTasks    int
	ReduceTasks int
	MapInKVs    int
	MapOutKVs   int
	ShuffledKVs int
	ReduceOut   int
}

// Run executes the job and returns its counters.
func (j *Job) Run() (Counters, error) {
	var c Counters
	if j.Workers <= 0 {
		j.Workers = 4
	}
	if j.Reducers <= 0 {
		j.Reducers = 2
	}
	if j.Mapper == nil || j.Reducer == nil {
		return c, fmt.Errorf("mapreduce: mapper and reducer required")
	}

	// Collect splits.
	var splits []hdfs.Split
	for _, in := range j.Inputs {
		ss, err := j.FS.Splits(in)
		if err != nil {
			return c, err
		}
		splits = append(splits, ss...)
	}
	c.MapTasks = len(splits)

	// Map phase: workers pull splits; per-task output partitioned by key
	// hash into reduce buckets.
	buckets := make([][]KV, j.Reducers)
	var bmu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, j.Workers)
	var mapErr error
	var emu sync.Mutex
	for _, s := range splits {
		wg.Add(1)
		sem <- struct{}{}
		go func(s hdfs.Split) {
			defer wg.Done()
			defer func() { <-sem }()
			chunk, err := j.FS.ReadSplit(s)
			if err != nil {
				emu.Lock()
				mapErr = err
				emu.Unlock()
				return
			}
			var local []KV
			j.Mapper(s.Path, chunk, func(k, v string) {
				local = append(local, KV{k, v})
			})
			if j.Combiner != nil {
				local = combine(local, j.Combiner)
			}
			bmu.Lock()
			c.MapOutKVs += len(local)
			for _, kv := range local {
				b := int(hashKey(kv.K) % uint64(j.Reducers))
				buckets[b] = append(buckets[b], kv)
				c.ShuffledKVs++
			}
			bmu.Unlock()
		}(s)
	}
	wg.Wait()
	if mapErr != nil {
		return c, mapErr
	}

	// Reduce phase.
	c.ReduceTasks = j.Reducers
	results := make([][]KV, j.Reducers)
	for r := 0; r < j.Reducers; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			defer func() { <-sem }()
			grouped := groupByKey(buckets[r])
			var out []KV
			for _, g := range grouped {
				j.Reducer(g.key, g.vals, func(k, v string) {
					out = append(out, KV{k, v})
				})
			}
			results[r] = out
		}(r)
	}
	wg.Wait()

	// Write part files.
	for r, out := range results {
		c.ReduceOut += len(out)
		var sb strings.Builder
		for _, kv := range out {
			sb.WriteString(kv.K)
			sb.WriteByte('\t')
			sb.WriteString(kv.V)
			sb.WriteByte('\n')
		}
		path := fmt.Sprintf("%s/part-r-%05d", j.Output, r)
		if j.FS.Exists(path) {
			j.FS.Delete(path)
		}
		if err := j.FS.WriteFile(path, []byte(sb.String())); err != nil {
			return c, err
		}
	}
	return c, nil
}

type group struct {
	key  string
	vals []string
}

func groupByKey(kvs []KV) []group {
	m := map[string][]string{}
	for _, kv := range kvs {
		m[kv.K] = append(m[kv.K], kv.V)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]group, 0, len(keys))
	for _, k := range keys {
		out = append(out, group{key: k, vals: m[k]})
	}
	return out
}

func combine(kvs []KV, c ReduceFn) []KV {
	var out []KV
	for _, g := range groupByKey(kvs) {
		c(g.key, g.vals, func(k, v string) {
			out = append(out, KV{k, v})
		})
	}
	return out
}

func hashKey(s string) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ReadResults loads and parses every part file of a finished job.
func ReadResults(fs *hdfs.FS, outputDir string) ([]KV, error) {
	var out []KV
	for _, p := range fs.List(outputDir + "/part-r-") {
		data, err := fs.ReadFile(p)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			parts := strings.SplitN(line, "\t", 2)
			if len(parts) == 2 {
				out = append(out, KV{parts[0], parts[1]})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].K < out[b].K })
	return out, nil
}

// LinesMapper adapts a per-line function to a MapFn. NOTE: block splits
// can cut a line in half; writers that need exact per-line semantics must
// pick a block size aligned with their record length (the CSV generators
// in this repository do), mirroring the real-world fixed-record idiom.
func LinesMapper(f func(line string, emit func(k, v string))) MapFn {
	return func(path string, chunk []byte, emit func(k, v string)) {
		for _, line := range strings.Split(string(chunk), "\n") {
			if line != "" {
				f(line, emit)
			}
		}
	}
}
