// Package federation implements SDA ("Smart Data Access", Figure 2/4):
// the federation framework that reaches out "to a huge variety of
// external data sources". Remote sources register with the relational
// engine; queries against exposed tables push their conditions down to
// the source (Hive-style SQL pushdown into the simulated Hadoop stack,
// SOE cluster pushdown, or any custom Source), and the results join
// locally with in-memory data — the integration hub role of the
// ecosystem.
package federation

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/soe"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

// Source is one remote system reachable through SDA.
type Source interface {
	Name() string
	Schema(table string) (columnstore.Schema, error)
	// Scan returns the rows of table matching the pushed-down condition
	// (SQL text, empty = all).
	Scan(table, where string) ([]value.Row, error)
}

// Federation manages sources and their exposed tables.
type Federation struct {
	mu      sync.Mutex
	eng     *sqlexec.Engine
	sources map[string]Source
	// RowsMovedFromRemote counts rows crossing the federation boundary
	// (the E10 transfer metric).
	rowsMoved int
}

// Attach creates the federation layer on an engine.
func Attach(eng *sqlexec.Engine) *Federation {
	return &Federation{eng: eng, sources: map[string]Source{}}
}

// Register adds a source.
func (f *Federation) Register(s Source) {
	f.mu.Lock()
	f.sources[s.Name()] = s
	f.mu.Unlock()
}

// RowsMoved returns rows transferred from remote sources so far.
func (f *Federation) RowsMoved() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rowsMoved
}

// Expose makes source.remoteTable queryable as the table function
// FED_<LOCAL>([where]):
//
//	SELECT * FROM TABLE(FED_SENSORS()) s
//	SELECT * FROM TABLE(FED_SENSORS('fill < 20')) s      -- pushdown
func (f *Federation) Expose(local, sourceName, remoteTable string) error {
	f.mu.Lock()
	src, ok := f.sources[sourceName]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("federation: unknown source %q", sourceName)
	}
	schema, err := src.Schema(remoteTable)
	if err != nil {
		return err
	}
	fname := "FED_" + strings.ToUpper(local)
	f.eng.Reg.RegisterTable(fname, schema, func(args []value.Value) ([]value.Row, error) {
		where := ""
		if len(args) > 0 {
			where = args[0].AsString()
		}
		rows, err := src.Scan(remoteTable, where)
		if err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.rowsMoved += len(rows)
		f.mu.Unlock()
		return rows, nil
	})
	return nil
}

// --- in-memory source (tests, "R" result sets, generic adapters) ---------

// MemSource serves static relations.
type MemSource struct {
	SourceName string
	Tables     map[string]MemTable
}

// MemTable is one static relation.
type MemTable struct {
	Schema columnstore.Schema
	Rows   []value.Row
}

// Name implements Source.
func (m *MemSource) Name() string { return m.SourceName }

// Schema implements Source.
func (m *MemSource) Schema(table string) (columnstore.Schema, error) {
	t, ok := m.Tables[table]
	if !ok {
		return nil, fmt.Errorf("federation: %s has no table %q", m.SourceName, table)
	}
	return t.Schema, nil
}

// Scan implements Source with local predicate evaluation.
func (m *MemSource) Scan(table, where string) ([]value.Row, error) {
	t, ok := m.Tables[table]
	if !ok {
		return nil, fmt.Errorf("federation: %s has no table %q", m.SourceName, table)
	}
	if where == "" {
		return t.Rows, nil
	}
	pred, err := sqlexec.CompileRowPredicate(where, t.Schema, nil)
	if err != nil {
		return nil, err
	}
	var out []value.Row
	for _, r := range t.Rows {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// --- Hive-style source over the simulated Hadoop stack -----------------

// HiveSource exposes CSV files in HDFS as tables; pushed-down conditions
// execute as MapReduce jobs on the Hadoop side — "pushing down SQL
// statements from HANA into Hive or similar frameworks. The queries on
// HDFS data are executed on Hadoop and the results are combined in the
// HANA layer" (§IV-C).
type HiveSource struct {
	FS     *hdfs.FS
	mu     sync.Mutex
	tables map[string]hiveTable
	// JobsRun counts MapReduce executions (E10 visibility).
	JobsRun int
}

type hiveTable struct {
	path   string
	schema columnstore.Schema
}

// NewHiveSource creates a Hive-like source over an HDFS instance.
func NewHiveSource(fs *hdfs.FS) *HiveSource {
	return &HiveSource{FS: fs, tables: map[string]hiveTable{}}
}

// Name implements Source.
func (h *HiveSource) Name() string { return "hive" }

// DefineTable maps a CSV file to a table schema.
func (h *HiveSource) DefineTable(name, path string, schema columnstore.Schema) {
	h.mu.Lock()
	h.tables[name] = hiveTable{path: path, schema: schema}
	h.mu.Unlock()
}

// Schema implements Source.
func (h *HiveSource) Schema(table string) (columnstore.Schema, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.tables[table]
	if !ok {
		return nil, fmt.Errorf("federation: hive has no table %q", table)
	}
	return t.schema, nil
}

// Scan implements Source: the filter runs inside a MapReduce job over the
// table's CSV blocks; only matching rows leave the Hadoop side.
func (h *HiveSource) Scan(table, where string) ([]value.Row, error) {
	h.mu.Lock()
	t, ok := h.tables[table]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("federation: hive has no table %q", table)
	}
	var pred func(value.Row) bool
	if where != "" {
		p, err := sqlexec.CompileRowPredicate(where, t.schema, nil)
		if err != nil {
			return nil, err
		}
		pred = p
	}
	schema := t.schema
	job := &mapreduce.Job{
		FS:     h.FS,
		Inputs: []string{t.path},
		Output: fmt.Sprintf("/tmp/hive/%s_%d", table, h.bumpJobs()),
		Mapper: mapreduce.LinesMapper(func(line string, emit func(k, v string)) {
			row, err := ParseCSVRow(line, schema)
			if err != nil {
				return
			}
			if pred == nil || pred(row) {
				emit(line, "")
			}
		}),
		Reducer: func(k string, vs []string, emit func(k, v string)) {
			for range vs {
				emit(k, "")
			}
		},
	}
	if _, err := job.Run(); err != nil {
		return nil, err
	}
	kvs, err := mapreduce.ReadResults(h.FS, job.Output)
	if err != nil {
		return nil, err
	}
	var out []value.Row
	for _, kv := range kvs {
		row, err := ParseCSVRow(kv.K, schema)
		if err != nil {
			continue
		}
		out = append(out, row)
	}
	return out, nil
}

func (h *HiveSource) bumpJobs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.JobsRun++
	return h.JobsRun
}

// ParseCSVRow converts one comma-separated line into a typed row.
func ParseCSVRow(line string, schema columnstore.Schema) (value.Row, error) {
	parts := strings.Split(line, ",")
	if len(parts) != len(schema) {
		return nil, fmt.Errorf("federation: %d fields for %d columns", len(parts), len(schema))
	}
	row := make(value.Row, len(schema))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		switch schema[i].Kind {
		case value.KindInt, value.KindTime:
			n, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, err
			}
			row[i] = value.Value{K: schema[i].Kind, I: n}
		case value.KindFloat:
			x, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, err
			}
			row[i] = value.Float(x)
		case value.KindBool:
			lp := strings.ToLower(p)
			row[i] = value.Bool(lp == "true" || lp == "1")
		default:
			row[i] = value.String(p)
		}
	}
	return row, nil
}

// CSVLine renders a row for HDFS CSV storage.
func CSVLine(row value.Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.AsString()
	}
	return strings.Join(parts, ",")
}

// --- SOE cluster source -----------------------------------------------

// SOESource federates a scale-out cluster: conditions push down into the
// distributed query coordinator (integration path 3 of §IV-C in its
// federated form).
type SOESource struct {
	Cluster *soe.Cluster
}

// Name implements Source.
func (s *SOESource) Name() string { return "soe" }

// Schema implements Source.
func (s *SOESource) Schema(table string) (columnstore.Schema, error) {
	t, ok := s.Cluster.Catalog.Table(table)
	if !ok {
		return nil, fmt.Errorf("federation: soe has no table %q", table)
	}
	return t.Schema, nil
}

// Scan implements Source.
func (s *SOESource) Scan(table, where string) ([]value.Row, error) {
	sql := "SELECT * FROM " + table
	if where != "" {
		sql += " WHERE " + where
	}
	res, err := s.Cluster.Query(sql)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}
