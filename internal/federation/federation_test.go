package federation

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/columnstore"
	"repro/internal/hdfs"
	"repro/internal/soe"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

func sensorSchema() columnstore.Schema {
	return columnstore.Schema{
		{Name: "sensor", Kind: value.KindString},
		{Name: "fill", Kind: value.KindInt},
	}
}

func TestMemSourceExposeAndJoin(t *testing.T) {
	eng := sqlexec.NewEngine()
	fed := Attach(eng)
	fed.Register(&MemSource{SourceName: "erp", Tables: map[string]MemTable{
		"dispensers": {
			Schema: sensorSchema(),
			Rows: []value.Row{
				{value.String("D1"), value.Int(5)},
				{value.String("D2"), value.Int(80)},
				{value.String("D3"), value.Int(10)},
			},
		},
	}})
	if err := fed.Expose("disp", "erp", "dispensers"); err != nil {
		t.Fatal(err)
	}
	// Local table joins with federated data.
	eng.MustQuery(`CREATE TABLE locations (sensor VARCHAR, city VARCHAR)`)
	eng.MustQuery(`INSERT INTO locations VALUES ('D1', 'Berlin'), ('D2', 'Paris'), ('D3', 'Berlin')`)

	r := eng.MustQuery(`SELECT l.city, COUNT(*) FROM TABLE(FED_DISP('fill < 20')) d JOIN locations l ON l.sensor = d.sensor GROUP BY l.city ORDER BY l.city`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "Berlin" || r.Rows[0][1].I != 2 {
		t.Fatalf("rows=%v", r.Rows)
	}
	// Pushdown moved only matching rows.
	if fed.RowsMoved() != 2 {
		t.Fatalf("rows moved=%d", fed.RowsMoved())
	}
}

func TestExposeErrors(t *testing.T) {
	eng := sqlexec.NewEngine()
	fed := Attach(eng)
	if err := fed.Expose("x", "ghost", "t"); err == nil {
		t.Fatal("unknown source accepted")
	}
	fed.Register(&MemSource{SourceName: "m", Tables: map[string]MemTable{}})
	if err := fed.Expose("x", "m", "missing"); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	schema := columnstore.Schema{
		{Name: "s", Kind: value.KindString},
		{Name: "n", Kind: value.KindInt},
		{Name: "f", Kind: value.KindFloat},
		{Name: "b", Kind: value.KindBool},
	}
	row := value.Row{value.String("x"), value.Int(7), value.Float(2.5), value.Bool(true)}
	parsed, err := ParseCSVRow(CSVLine(row), schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !value.Equal(parsed[i], row[i]) {
			t.Fatalf("col %d: %v != %v", i, parsed[i], row[i])
		}
	}
	if _, err := ParseCSVRow("only,two", schema); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := ParseCSVRow("a,notanint,1,true", schema); err == nil {
		t.Fatal("bad int accepted")
	}
}

func TestHiveSourcePushdownRunsMapReduce(t *testing.T) {
	// 15-byte fixed-width CSV lines; block size a multiple of the record
	// length so splits never cut a record.
	fs := hdfs.New(3, 15*16, 2)
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		sb.WriteString(fmt.Sprintf("DISP-%04d,%04d\n", i, i))
	}
	if err := fs.WriteFile("/warehouse/sensors.csv", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	hive := NewHiveSource(fs)
	hive.DefineTable("sensors", "/warehouse/sensors.csv", sensorSchema())

	eng := sqlexec.NewEngine()
	fed := Attach(eng)
	fed.Register(hive)
	if err := fed.Expose("sensors", "hive", "sensors"); err != nil {
		t.Fatal(err)
	}
	r := eng.MustQuery(`SELECT COUNT(*) FROM TABLE(FED_SENSORS('fill < 10')) s`)
	if r.Rows[0][0].I != 10 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
	if hive.JobsRun < 1 {
		t.Fatalf("jobs=%d (pushdown did not run on Hadoop)", hive.JobsRun)
	}
	// Unfiltered scan moves all rows.
	fedBefore := fed.RowsMoved()
	eng.MustQuery(`SELECT COUNT(*) FROM TABLE(FED_SENSORS()) s`)
	if fed.RowsMoved()-fedBefore != 64 {
		t.Fatalf("moved=%d", fed.RowsMoved()-fedBefore)
	}
}

func TestSOESourceFederation(t *testing.T) {
	c := soe.NewCluster(soe.ClusterConfig{Nodes: 2, Mode: soe.OLTP})
	defer c.Shutdown()
	if _, err := c.CreateTable("remote_orders", columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "amount", Kind: value.KindFloat},
	}, "id", 4); err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 10; i++ {
		rows = append(rows, value.Row{value.String(fmt.Sprintf("R%d", i)), value.Float(float64(i * 10))})
	}
	c.Insert("remote_orders", rows...)

	eng := sqlexec.NewEngine()
	fed := Attach(eng)
	fed.Register(&SOESource{Cluster: c})
	if err := fed.Expose("orders", "soe", "remote_orders"); err != nil {
		t.Fatal(err)
	}
	r := eng.MustQuery(`SELECT SUM(amount) FROM TABLE(FED_ORDERS('amount >= 50')) o`)
	if r.Rows[0][0].AsFloat() != 50+60+70+80+90 {
		t.Fatalf("sum=%v", r.Rows[0][0])
	}
}
