// Package rdd provides Spark-RDD-style lazy distributed collections over
// the simulated Hadoop stack, plus the SOE wrapping of §IV-C (integration
// path 2): "integration is performed into the Spark framework as RDD
// objects by utilizing SAP HANA SOE for relevant operations like join,
// filters, aggregation" — TableRDD pushes filters, projections and
// aggregations down into the SOE cluster and exposes the result as an
// ordinary RDD the rest of a Spark-like pipeline can transform.
package rdd

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/hdfs"
	"repro/internal/soe"
	"repro/internal/value"
)

// RDD is a lazy, partitioned collection.
type RDD[T any] struct {
	compute func() ([][]T, error)
}

// FromSlice partitions a slice into an RDD.
func FromSlice[T any](xs []T, parts int) *RDD[T] {
	if parts <= 0 {
		parts = 1
	}
	return &RDD[T]{compute: func() ([][]T, error) {
		out := make([][]T, parts)
		for i, x := range xs {
			p := i % parts
			out[p] = append(out[p], x)
		}
		return out, nil
	}}
}

// FromHDFSLines reads a text file as one partition per block.
func FromHDFSLines(fs *hdfs.FS, path string) *RDD[string] {
	return &RDD[string]{compute: func() ([][]string, error) {
		splits, err := fs.Splits(path)
		if err != nil {
			return nil, err
		}
		out := make([][]string, len(splits))
		var wg sync.WaitGroup
		errs := make([]error, len(splits))
		for i, s := range splits {
			wg.Add(1)
			go func(i int, s hdfs.Split) {
				defer wg.Done()
				chunk, err := fs.ReadSplit(s)
				if err != nil {
					errs[i] = err
					return
				}
				for _, line := range strings.Split(string(chunk), "\n") {
					if line != "" {
						out[i] = append(out[i], line)
					}
				}
			}(i, s)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		return out, nil
	}}
}

// Map transforms every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return &RDD[U]{compute: func() ([][]U, error) {
		parts, err := r.compute()
		if err != nil {
			return nil, err
		}
		out := make([][]U, len(parts))
		eachPartition(parts, func(i int, p []T) {
			for _, x := range p {
				out[i] = append(out[i], f(x))
			}
		})
		return out, nil
	}}
}

// Filter keeps elements matching pred.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return &RDD[T]{compute: func() ([][]T, error) {
		parts, err := r.compute()
		if err != nil {
			return nil, err
		}
		out := make([][]T, len(parts))
		eachPartition(parts, func(i int, p []T) {
			for _, x := range p {
				if pred(x) {
					out[i] = append(out[i], x)
				}
			}
		})
		return out, nil
	}}
}

// FlatMap expands every element to zero or more outputs.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return &RDD[U]{compute: func() ([][]U, error) {
		parts, err := r.compute()
		if err != nil {
			return nil, err
		}
		out := make([][]U, len(parts))
		eachPartition(parts, func(i int, p []T) {
			for _, x := range p {
				out[i] = append(out[i], f(x)...)
			}
		})
		return out, nil
	}}
}

func eachPartition[T any](parts [][]T, f func(i int, p []T)) {
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i, parts[i])
		}(i)
	}
	wg.Wait()
}

// Collect materializes all elements.
func (r *RDD[T]) Collect() ([]T, error) {
	parts, err := r.compute()
	if err != nil {
		return nil, err
	}
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count returns the element count.
func (r *RDD[T]) Count() (int, error) {
	parts, err := r.compute()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	return n, nil
}

// Take returns up to n elements.
func (r *RDD[T]) Take(n int) ([]T, error) {
	all, err := r.Collect()
	if err != nil {
		return nil, err
	}
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}

// Reduce folds all elements with f (requires at least one element).
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, error) {
	var zero T
	all, err := r.Collect()
	if err != nil {
		return zero, err
	}
	if len(all) == 0 {
		return zero, fmt.Errorf("rdd: reduce of empty collection")
	}
	acc := all[0]
	for _, x := range all[1:] {
		acc = f(acc, x)
	}
	return acc, nil
}

// Pair is a keyed value for ReduceByKey.
type Pair[V any] struct {
	K string
	V V
}

// ReduceByKey merges values per key with f.
func ReduceByKey[V any](r *RDD[Pair[V]], f func(V, V) V) *RDD[Pair[V]] {
	return &RDD[Pair[V]]{compute: func() ([][]Pair[V], error) {
		all, err := r.Collect()
		if err != nil {
			return nil, err
		}
		acc := map[string]V{}
		var order []string
		for _, p := range all {
			if v, ok := acc[p.K]; ok {
				acc[p.K] = f(v, p.V)
			} else {
				acc[p.K] = p.V
				order = append(order, p.K)
			}
		}
		out := make([]Pair[V], 0, len(order))
		for _, k := range order {
			out = append(out, Pair[V]{k, acc[k]})
		}
		return [][]Pair[V]{out}, nil
	}}
}

// --- SOE table wrapping ------------------------------------------------

// TableRDD wraps a distributed SOE table as an RDD with pushdown: filters,
// projections and aggregations accumulate into the SQL shipped to the
// cluster instead of running element-wise in the RDD runtime.
type TableRDD struct {
	c     *soe.Cluster
	table string
	cols  []string
	where []string
}

// FromSOETable wraps a table.
func FromSOETable(c *soe.Cluster, table string) *TableRDD {
	return &TableRDD{c: c, table: table}
}

// Where pushes a filter condition (SQL syntax) down to the SOE.
func (t *TableRDD) Where(cond string) *TableRDD {
	cp := *t
	cp.where = append(append([]string(nil), t.where...), cond)
	return &cp
}

// Select pushes a projection down to the SOE.
func (t *TableRDD) Select(cols ...string) *TableRDD {
	cp := *t
	cp.cols = cols
	return &cp
}

// SQL renders the pushed-down statement.
func (t *TableRDD) SQL() string {
	cols := "*"
	if len(t.cols) > 0 {
		cols = strings.Join(t.cols, ", ")
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", cols, t.table)
	if len(t.where) > 0 {
		sql += " WHERE " + strings.Join(t.where, " AND ")
	}
	return sql
}

// Rows executes the pushed-down query and exposes the result as an RDD.
func (t *TableRDD) Rows() *RDD[value.Row] {
	return &RDD[value.Row]{compute: func() ([][]value.Row, error) {
		res, err := t.c.Query(t.SQL())
		if err != nil {
			return nil, err
		}
		return [][]value.Row{res.Rows}, nil
	}}
}

// SumBy pushes a grouped SUM aggregation into the SOE and returns keyed
// results — the "relevant operations like ... aggregation" path.
func (t *TableRDD) SumBy(groupCol, aggCol string) *RDD[Pair[float64]] {
	return &RDD[Pair[float64]]{compute: func() ([][]Pair[float64], error) {
		sql := fmt.Sprintf("SELECT %s, SUM(%s) FROM %s", groupCol, aggCol, t.table)
		if len(t.where) > 0 {
			sql += " WHERE " + strings.Join(t.where, " AND ")
		}
		sql += fmt.Sprintf(" GROUP BY %s", groupCol)
		res, err := t.c.Query(sql)
		if err != nil {
			return nil, err
		}
		out := make([]Pair[float64], 0, len(res.Rows))
		for _, r := range res.Rows {
			out = append(out, Pair[float64]{K: r[0].AsString(), V: r[1].AsFloat()})
		}
		return [][]Pair[float64]{out}, nil
	}}
}
