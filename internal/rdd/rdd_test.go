package rdd

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/columnstore"
	"repro/internal/hdfs"
	"repro/internal/soe"
	"repro/internal/value"
)

func TestMapFilterCollect(t *testing.T) {
	nums := FromSlice([]int{1, 2, 3, 4, 5, 6}, 3)
	doubled := Map(nums, func(x int) int { return x * 2 })
	big := Filter(doubled, func(x int) bool { return x > 6 })
	got, err := big.Collect()
	if err != nil {
		t.Fatal(err)
	}
	set := map[int]bool{}
	for _, x := range got {
		set[x] = true
	}
	if len(got) != 3 || !set[8] || !set[10] || !set[12] {
		t.Fatalf("got=%v", got)
	}
	if n, _ := big.Count(); n != 3 {
		t.Fatalf("count=%d", n)
	}
}

func TestFlatMapAndReduce(t *testing.T) {
	lines := FromSlice([]string{"a b", "c d e"}, 2)
	words := FlatMap(lines, func(s string) []string { return strings.Fields(s) })
	if n, _ := words.Count(); n != 5 {
		t.Fatalf("count=%d", n)
	}
	nums := FromSlice([]int{1, 2, 3, 4}, 2)
	sum, err := Reduce(nums, func(a, b int) int { return a + b })
	if err != nil || sum != 10 {
		t.Fatalf("sum=%d err=%v", sum, err)
	}
	empty := FromSlice([]int{}, 1)
	if _, err := Reduce(empty, func(a, b int) int { return a }); err == nil {
		t.Fatal("empty reduce accepted")
	}
}

func TestReduceByKey(t *testing.T) {
	pairs := FromSlice([]Pair[int]{{"a", 1}, {"b", 2}, {"a", 3}}, 2)
	summed := ReduceByKey(pairs, func(a, b int) int { return a + b })
	got, _ := summed.Collect()
	m := map[string]int{}
	for _, p := range got {
		m[p.K] = p.V
	}
	if m["a"] != 4 || m["b"] != 2 {
		t.Fatalf("got=%v", m)
	}
}

func TestTakeAndLaziness(t *testing.T) {
	executions := 0
	r := &RDD[int]{compute: func() ([][]int, error) {
		executions++
		return [][]int{{1, 2, 3}}, nil
	}}
	mapped := Map(r, func(x int) int { return x })
	if executions != 0 {
		t.Fatal("transformation triggered execution")
	}
	got, _ := mapped.Take(2)
	if len(got) != 2 || executions != 1 {
		t.Fatalf("got=%v executions=%d", got, executions)
	}
}

func TestFromHDFSLines(t *testing.T) {
	fs := hdfs.New(2, 1<<16, 1)
	fs.WriteFile("/data/lines.txt", []byte("one\ntwo\nthree\n"))
	r := FromHDFSLines(fs, "/data/lines.txt")
	got, err := r.Collect()
	if err != nil || len(got) != 3 || got[0] != "one" {
		t.Fatalf("got=%v err=%v", got, err)
	}
	bad := FromHDFSLines(fs, "/missing")
	if _, err := bad.Collect(); err == nil {
		t.Fatal("missing file accepted")
	}
}

func newSOECluster(t *testing.T) *soe.Cluster {
	t.Helper()
	c := soe.NewCluster(soe.ClusterConfig{Nodes: 2, Mode: soe.OLTP})
	t.Cleanup(c.Shutdown)
	schema := columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "region", Kind: value.KindString},
		{Name: "amount", Kind: value.KindFloat},
	}
	if _, err := c.CreateTable("sales", schema, "id", 4); err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 20; i++ {
		rows = append(rows, value.Row{
			value.String(fmt.Sprintf("S%02d", i)),
			value.String([]string{"EU", "US"}[i%2]),
			value.Float(float64(i)),
		})
	}
	if _, err := c.Insert("sales", rows...); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSOETableRDDPushdown(t *testing.T) {
	c := newSOECluster(t)
	table := FromSOETable(c, "sales").Where("amount >= 10").Select("id", "amount")
	if sql := table.SQL(); sql != "SELECT id, amount FROM sales WHERE amount >= 10" {
		t.Fatalf("sql=%q", sql)
	}
	rows, err := table.Rows().Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows=%d", len(rows))
	}
	// RDD transformations compose on top of the pushed-down result.
	ids := Map(table.Rows(), func(r value.Row) string { return r[0].S })
	got, _ := ids.Count()
	if got != 10 {
		t.Fatalf("ids=%d", got)
	}
}

func TestSOESumByPushesAggregation(t *testing.T) {
	c := newSOECluster(t)
	sums := FromSOETable(c, "sales").Where("amount < 10").SumBy("region", "amount")
	got, err := sums.Collect()
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]float64{}
	for _, p := range got {
		m[p.K] = p.V
	}
	// amounts 0..9: EU gets evens (0+2+4+6+8=20), US odds (1+3+5+7+9=25).
	if m["EU"] != 20 || m["US"] != 25 {
		t.Fatalf("sums=%v", m)
	}
}
