package distql

import (
	"strings"
	"testing"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

func parseSel(t *testing.T, sql string) *sqlexec.SelectStmt {
	t.Helper()
	st, err := sqlexec.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sqlexec.SelectStmt)
}

func TestRewritePlainSelect(t *testing.T) {
	p, err := Rewrite(parseSel(t, `SELECT id, amount FROM orders WHERE amount > 5 LIMIT 3`))
	if err != nil {
		t.Fatal(err)
	}
	if p.GroupCols != -1 {
		t.Fatal("plain select must concat")
	}
	if !strings.Contains(p.LocalSQL, "LIMIT 3") {
		t.Fatalf("limit not pushed: %s", p.LocalSQL)
	}
	if p.LeftTable != "orders" || p.RightTable != "" {
		t.Fatalf("tables=%q/%q", p.LeftTable, p.RightTable)
	}
}

func TestRewritePartialAggregates(t *testing.T) {
	p, err := Rewrite(parseSel(t, `SELECT region, COUNT(*), AVG(amount) FROM orders GROUP BY region`))
	if err != nil {
		t.Fatal(err)
	}
	if p.GroupCols != 1 || len(p.Finals) != 2 || p.HiddenCols != 1 {
		t.Fatalf("plan=%+v", p)
	}
	// AVG splits into SUM + COUNT locally.
	if !strings.Contains(p.LocalSQL, "SUM(amount)") || !strings.Contains(p.LocalSQL, "COUNT(amount)") {
		t.Fatalf("local=%s", p.LocalSQL)
	}
	if p.Finals[0].Fn != "SUM" { // COUNT merges by summing
		t.Fatalf("finals=%v", p.Finals)
	}
	if p.Finals[1].Fn != "AVG" || p.Finals[1].CountCol != 3 {
		t.Fatalf("avg final=%v", p.Finals[1])
	}
}

func TestRewriteRejectsUnsupported(t *testing.T) {
	for _, sql := range []string{
		`SELECT a FROM t1 JOIN t2 ON t1.a = t2.b JOIN t3 ON t2.c = t3.d`,
		`SELECT region, SUM(x) FROM t GROUP BY region HAVING SUM(x) > 1`,
		`SELECT SUM(x) / COUNT(*) FROM t`,
		`SELECT a FROM (SELECT a FROM t) s`,
		`SELECT a FROM t1 LEFT JOIN t2 ON t1.a = t2.b`,
	} {
		if _, err := Rewrite(parseSel(t, sql)); err == nil {
			t.Fatalf("%q accepted", sql)
		}
	}
}

func TestRewriteJoinKeys(t *testing.T) {
	p, err := Rewrite(parseSel(t, `SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON i.order_id = o.id GROUP BY o.region`))
	if err != nil {
		t.Fatal(err)
	}
	if p.LeftTable != "orders" || p.RightTable != "items" {
		t.Fatalf("tables=%s/%s", p.LeftTable, p.RightTable)
	}
	// Flipped ON order still resolves sides correctly.
	if p.LeftKey != "id" || p.RightKey != "order_id" {
		t.Fatalf("keys=%s/%s", p.LeftKey, p.RightKey)
	}
}

func TestMergePartialsMinMaxSumAvg(t *testing.T) {
	p, err := Rewrite(parseSel(t, `SELECT region, MIN(x), MAX(x), SUM(x), AVG(x), COUNT(*) FROM t GROUP BY region`))
	if err != nil {
		t.Fatal(err)
	}
	// Partial rows: [region, min, max, sum, avg-sum-partial..., count*, hidden avg count]
	// Layout: group(1) + finals(5: min,max,sum,avg,count) + hidden(1).
	batch1 := []value.Row{{value.String("A"), value.Float(1), value.Float(5), value.Float(6), value.Float(6), value.Int(2), value.Int(2)}}
	batch2 := []value.Row{{value.String("A"), value.Float(0), value.Float(9), value.Float(9), value.Float(9), value.Int(1), value.Int(1)}}
	rows := p.MergePartials([][]value.Row{batch1, batch2})
	if len(rows) != 1 {
		t.Fatalf("rows=%v", rows)
	}
	r := rows[0]
	// Output permutation: region, MIN, MAX, SUM, AVG, COUNT.
	if r[0].S != "A" || r[1].F != 0 || r[2].F != 9 || r[3].F != 15 {
		t.Fatalf("row=%v", r)
	}
	if r[4].AsFloat() != 5 { // (6+9)/(2+1)
		t.Fatalf("avg=%v", r[4])
	}
	if r[5].AsInt() != 3 {
		t.Fatalf("count=%v", r[5])
	}
}

func TestMergeConcat(t *testing.T) {
	p, _ := Rewrite(parseSel(t, `SELECT a FROM t`))
	rows := p.MergePartials([][]value.Row{{{value.Int(1)}}, {{value.Int(2)}}})
	if len(rows) != 2 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyLocalParallel: "local-parallel",
		StrategyColocated:     "colocated",
		StrategyBroadcast:     "broadcast",
		StrategyRepartition:   "repartition",
	} {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
	p, _ := Rewrite(parseSel(t, `SELECT region, SUM(x) FROM t GROUP BY region`))
	if !strings.Contains(p.Describe(), "local=") {
		t.Fatal("describe missing local sql")
	}
}
