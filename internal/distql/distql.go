// Package distql holds the distributed query planning model of the SOE's
// coordinator (v2dqp): the task/strategy vocabulary, the partial-aggregate
// rewrite that splits GROUP BY queries into node-local partials and a
// coordinator-side final merge, and the join strategy chooser (co-located
// / broadcast / repartition). Plans "specifically tailored for a clustered
// execution" are what §IV-A credits for strong distributed speedups [13];
// experiment E8 sweeps the strategies.
package distql

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// Strategy is how a query spreads over the cluster.
type Strategy int

// The supported strategies.
const (
	StrategyLocalParallel Strategy = iota // single table, partials per node
	StrategyColocated                     // join, both sides co-partitioned
	StrategyBroadcast                     // join, small side replicated
	StrategyRepartition                   // join, both sides shuffled by key
)

// String names a strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyLocalParallel:
		return "local-parallel"
	case StrategyColocated:
		return "colocated"
	case StrategyBroadcast:
		return "broadcast"
	case StrategyRepartition:
		return "repartition"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// FinalAgg says how the coordinator merges one partial column.
type FinalAgg struct {
	// Fn: SUM, MIN, MAX, COUNT (summed), AVG (uses the paired count col).
	Fn string
	// CountCol is the partial-count column index for AVG finals, -1
	// otherwise.
	CountCol int
}

// Plan is the coordinator-executable distributed plan.
type Plan struct {
	Strategy Strategy
	// LocalSQL runs on every participating node (temp names already
	// substituted for broadcast/repartition).
	LocalSQL string
	// OutCols is the result header presented to the client.
	OutCols []string
	// GroupCols: the first GroupCols output columns of the local results
	// are grouping keys; the rest merge via Finals. GroupCols == -1 means
	// "no aggregation: concatenate rows".
	GroupCols int
	Finals    []FinalAgg
	// HiddenCols: trailing partial columns (AVG counts) dropped from the
	// final output.
	HiddenCols int
	// Order/limit applied at the coordinator after merging.
	OrderBy []sqlexec.OrderItem
	Limit   int
	Offset  int

	// Join metadata (strategies other than local-parallel).
	LeftTable, RightTable string
	LeftKey, RightKey     string
	BroadcastTable        string // the replicated side (broadcast)

	outPerm []int // client column i reads merged column outPerm[i]
}

// Describe renders the plan for EXPLAIN-style output.
func (p *Plan) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "strategy=%s", p.Strategy)
	if p.LeftTable != "" {
		fmt.Fprintf(&sb, " join=%s.%s=%s.%s", p.LeftTable, p.LeftKey, p.RightTable, p.RightKey)
	}
	fmt.Fprintf(&sb, " local=%q", p.LocalSQL)
	if p.GroupCols >= 0 {
		fmt.Fprintf(&sb, " merge=group(%d)+%d aggs", p.GroupCols, len(p.Finals))
	} else {
		sb.WriteString(" merge=concat")
	}
	return sb.String()
}

// Rewrite turns a parsed SELECT into a distributed plan skeleton: the
// node-local SQL plus the coordinator merge spec. Join strategy selection
// happens in the coordinator (it needs the cluster catalog); Rewrite
// fills everything else.
//
// Supported shape: SELECT items over one table or one equi-join, WHERE,
// GROUP BY with plain aggregates (COUNT/SUM/AVG/MIN/MAX, COUNT(*)),
// ORDER BY over output columns, LIMIT/OFFSET.
func Rewrite(sel *sqlexec.SelectStmt) (*Plan, error) {
	if len(sel.Joins) > 1 {
		return nil, fmt.Errorf("distql: at most one join supported")
	}
	if sel.From.Subquery != nil || sel.From.Func != nil {
		return nil, fmt.Errorf("distql: distributed subqueries/table functions unsupported")
	}
	p := &Plan{Limit: sel.Limit, Offset: sel.Offset, OrderBy: sel.OrderBy, GroupCols: -1}

	if len(sel.Joins) == 1 {
		j := sel.Joins[0]
		if j.Left {
			return nil, fmt.Errorf("distql: distributed LEFT JOIN unsupported")
		}
		lk, rk, err := equiKeys(j.On, sel.From.Alias, j.Table.Alias)
		if err != nil {
			return nil, err
		}
		p.LeftTable, p.RightTable = sel.From.Name, j.Table.Name
		p.LeftKey, p.RightKey = lk, rk
	} else {
		p.LeftTable = sel.From.Name
	}

	hasAgg := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}

	local := *sel
	local.OrderBy = nil
	local.Limit = -1
	local.Offset = 0

	if !hasAgg {
		// Plain selection: run as-is on each node; LIMIT can be pushed
		// only without OFFSET and ORDER BY handled at the coordinator, so
		// push a superset limit when no offset is involved.
		if sel.Limit >= 0 && sel.Offset == 0 && len(sel.OrderBy) == 0 {
			local.Limit = sel.Limit
		}
		p.LocalSQL = sqlexec.Deparse(&local)
		for _, it := range sel.Items {
			p.OutCols = append(p.OutCols, itemName(it))
		}
		return p, nil
	}

	// Aggregation: rewrite the select list into partials.
	if sel.Having != nil {
		return nil, fmt.Errorf("distql: distributed HAVING unsupported")
	}
	var items []sqlexec.SelectItem
	var finals []FinalAgg
	groupCols := 0
	// Group expressions lead the local projection.
	for _, g := range sel.GroupBy {
		items = append(items, sqlexec.SelectItem{Expr: g, As: fmt.Sprintf("g%d", groupCols)})
		groupCols++
	}
	var avgCounts []sqlexec.SelectItem
	for _, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("distql: SELECT * with aggregation unsupported")
		}
		if isGroupExpr(it.Expr, sel.GroupBy) {
			continue // already projected as a group column
		}
		fe, ok := it.Expr.(*sqlexec.FuncExpr)
		if !ok || !isAggName(fe.Name) {
			return nil, fmt.Errorf("distql: select item %q must be a group column or a plain aggregate", itemName(it))
		}
		switch fe.Name {
		case "COUNT":
			items = append(items, sqlexec.SelectItem{Expr: fe, As: fmt.Sprintf("a%d", len(finals))})
			finals = append(finals, FinalAgg{Fn: "SUM", CountCol: -1})
		case "SUM", "MIN", "MAX":
			items = append(items, sqlexec.SelectItem{Expr: fe, As: fmt.Sprintf("a%d", len(finals))})
			finals = append(finals, FinalAgg{Fn: fe.Name, CountCol: -1})
		case "AVG":
			sum := &sqlexec.FuncExpr{Name: "SUM", Args: fe.Args}
			cnt := &sqlexec.FuncExpr{Name: "COUNT", Args: fe.Args}
			items = append(items, sqlexec.SelectItem{Expr: sum, As: fmt.Sprintf("a%d", len(finals))})
			avgCounts = append(avgCounts, sqlexec.SelectItem{Expr: cnt, As: fmt.Sprintf("c%d", len(avgCounts))})
			finals = append(finals, FinalAgg{Fn: "AVG", CountCol: -2}) // patched below
		default:
			return nil, fmt.Errorf("distql: aggregate %s unsupported", fe.Name)
		}
	}
	// Hidden AVG count partials go last.
	base := groupCols + len(finals)
	ci := 0
	for i := range finals {
		if finals[i].Fn == "AVG" {
			finals[i].CountCol = base + ci
			ci++
		}
	}
	items = append(items, avgCounts...)
	local.Items = items
	local.Distinct = false
	p.LocalSQL = sqlexec.Deparse(&local)
	p.GroupCols = groupCols
	p.Finals = finals
	p.HiddenCols = len(avgCounts)
	// Client-facing header follows the original select list order:
	// group items first is an implementation detail, so re-project.
	for _, it := range sel.Items {
		p.OutCols = append(p.OutCols, itemName(it))
	}
	// Output mapping: the original order may interleave group cols and
	// aggregates; build the permutation.
	p.outPerm = buildPerm(sel, groupCols)
	return p, nil
}

// outPerm maps client column i to merged-row column outPerm[i].
func (p *Plan) OutPerm() []int { return p.outPerm }

func buildPerm(sel *sqlexec.SelectStmt, groupCols int) []int {
	perm := make([]int, 0, len(sel.Items))
	aggSeen := 0
	for _, it := range sel.Items {
		if isGroupExpr(it.Expr, sel.GroupBy) {
			perm = append(perm, groupIndex(it.Expr, sel.GroupBy))
		} else {
			perm = append(perm, groupCols+aggSeen)
			aggSeen++
		}
	}
	return perm
}

func groupIndex(e sqlexec.Expr, groups []sqlexec.Expr) int {
	for i, g := range groups {
		if sqlexec.ExprText(g) == sqlexec.ExprText(e) {
			return i
		}
	}
	return 0
}

func isGroupExpr(e sqlexec.Expr, groups []sqlexec.Expr) bool {
	for _, g := range groups {
		if sqlexec.ExprText(g) == sqlexec.ExprText(e) {
			return true
		}
	}
	return false
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func isAggName(n string) bool { return aggNames[n] }

func containsAgg(e sqlexec.Expr) bool {
	if fe, ok := e.(*sqlexec.FuncExpr); ok && aggNames[fe.Name] {
		return true
	}
	switch x := e.(type) {
	case *sqlexec.BinaryExpr:
		return containsAgg(x.L) || containsAgg(x.R)
	case *sqlexec.UnaryExpr:
		return containsAgg(x.E)
	}
	return false
}

func itemName(it sqlexec.SelectItem) string {
	if it.As != "" {
		return it.As
	}
	if c, ok := it.Expr.(*sqlexec.ColRef); ok {
		return c.Name
	}
	return strings.ToLower(sqlexec.ExprText(it.Expr))
}

// equiKeys extracts the single equi-join condition l.x = r.y.
func equiKeys(on sqlexec.Expr, leftAlias, rightAlias string) (string, string, error) {
	be, ok := on.(*sqlexec.BinaryExpr)
	if !ok || be.Op != "=" {
		return "", "", fmt.Errorf("distql: join condition must be a single equality")
	}
	l, ok1 := be.L.(*sqlexec.ColRef)
	r, ok2 := be.R.(*sqlexec.ColRef)
	if !ok1 || !ok2 {
		return "", "", fmt.Errorf("distql: join condition must compare columns")
	}
	switch {
	case l.Qual == leftAlias && r.Qual == rightAlias:
		return l.Name, r.Name, nil
	case l.Qual == rightAlias && r.Qual == leftAlias:
		return r.Name, l.Name, nil
	default:
		return "", "", fmt.Errorf("distql: join condition must reference both sides")
	}
}

// KeyBounds inspects a SELECT's WHERE conjuncts for bounds on the given
// key column (col op literal over integers). The coordinator uses it for
// distributed partition pruning on range-partitioned tables. Returns the
// inclusive [lo, hi] window and whether any bound was found.
func KeyBounds(sel *sqlexec.SelectStmt, alias, key string) (lo, hi int64, bounded bool) {
	lo, hi = math.MinInt64, math.MaxInt64
	var walk func(e sqlexec.Expr)
	walk = func(e sqlexec.Expr) {
		switch x := e.(type) {
		case *sqlexec.BinaryExpr:
			if x.Op == "AND" {
				walk(x.L)
				walk(x.R)
				return
			}
			cr, ok1 := x.L.(*sqlexec.ColRef)
			lit, ok2 := x.R.(*sqlexec.Literal)
			op := x.Op
			if !ok1 || !ok2 {
				if cr2, ok := x.R.(*sqlexec.ColRef); ok {
					if lit2, ok := x.L.(*sqlexec.Literal); ok {
						cr, lit = cr2, lit2
						switch op {
						case "<":
							op = ">"
						case "<=":
							op = ">="
						case ">":
							op = "<"
						case ">=":
							op = "<="
						}
						ok1, ok2 = true, true
					}
				}
			}
			if !ok1 || !ok2 || cr.Name != key || (cr.Qual != "" && cr.Qual != alias) {
				return
			}
			if !lit.Val.Numeric() {
				return
			}
			k := lit.Val.AsInt()
			switch op {
			case "=":
				if k > lo {
					lo = k
				}
				if k < hi {
					hi = k
				}
				bounded = true
			case "<":
				if k-1 < hi {
					hi = k - 1
				}
				bounded = true
			case "<=":
				if k < hi {
					hi = k
				}
				bounded = true
			case ">":
				if k+1 > lo {
					lo = k + 1
				}
				bounded = true
			case ">=":
				if k > lo {
					lo = k
				}
				bounded = true
			}
		case *sqlexec.BetweenExpr:
			cr, ok := x.E.(*sqlexec.ColRef)
			if !ok || x.Not || cr.Name != key || (cr.Qual != "" && cr.Qual != alias) {
				return
			}
			if l, ok := x.Lo.(*sqlexec.Literal); ok && l.Val.Numeric() {
				if v := l.Val.AsInt(); v > lo {
					lo = v
				}
				bounded = true
			}
			if h, ok := x.Hi.(*sqlexec.Literal); ok && h.Val.Numeric() {
				if v := h.Val.AsInt(); v < hi {
					hi = v
				}
				bounded = true
			}
		}
	}
	walk(sel.Where)
	return lo, hi, bounded
}

// MergePartials combines node-local partial rows into the final result.
func (p *Plan) MergePartials(batches [][]value.Row) []value.Row {
	if p.GroupCols < 0 {
		var out []value.Row
		for _, b := range batches {
			out = append(out, b...)
		}
		return out
	}
	type acc struct {
		key  value.Row
		vals []value.Value
	}
	groups := map[string]*acc{}
	var order []string
	for _, batch := range batches {
		for _, row := range batch {
			key := row[:p.GroupCols]
			k := value.Row(key).Key()
			g := groups[k]
			if g == nil {
				g = &acc{key: key.Clone(), vals: make([]value.Value, len(row)-p.GroupCols)}
				copy(g.vals, row[p.GroupCols:])
				groups[k] = g
				order = append(order, k)
				continue
			}
			for i := range g.vals {
				cur, nv := g.vals[i], row[p.GroupCols+i]
				fn := "SUM"
				if i < len(p.Finals) {
					switch p.Finals[i].Fn {
					case "MIN":
						fn = "MIN"
					case "MAX":
						fn = "MAX"
					}
				}
				switch fn {
				case "MIN":
					if cur.IsNull() || (!nv.IsNull() && value.Compare(nv, cur) < 0) {
						g.vals[i] = nv
					}
				case "MAX":
					if cur.IsNull() || (!nv.IsNull() && value.Compare(nv, cur) > 0) {
						g.vals[i] = nv
					}
				default:
					g.vals[i] = value.Add(cur, nv)
				}
			}
		}
	}
	out := make([]value.Row, 0, len(order))
	for _, k := range order {
		g := groups[k]
		merged := append(g.key.Clone(), g.vals...)
		// Resolve AVG finals.
		for i, f := range p.Finals {
			if f.Fn == "AVG" {
				sum := merged[p.GroupCols+i]
				cnt := merged[f.CountCol]
				merged[p.GroupCols+i] = value.Div(sum, cnt)
			}
		}
		// Drop hidden count columns.
		merged = merged[:len(merged)-p.HiddenCols]
		// Re-project into the client's column order.
		if len(p.outPerm) > 0 {
			proj := make(value.Row, len(p.outPerm))
			for i, src := range p.outPerm {
				proj[i] = merged[src]
			}
			merged = proj
		}
		out = append(out, merged)
	}
	return out
}
