package columnstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/value"
)

// ColumnDef describes one column of a table.
type ColumnDef struct {
	Name string
	Kind value.Kind
}

// Schema is the ordered column list of a table.
type Schema []ColumnDef

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema { return append(Schema(nil), s...) }

// NeverDeleted is the deletion stamp of a live row version.
const NeverDeleted = ^uint64(0)

// MergeStats records what one delta→main merge did; experiment E3 compares
// these between random and generated (stable-order) keys.
type MergeStats struct {
	Duration     time.Duration
	RowsMerged   int  // rows in the new main store
	RowsEvicted  int  // dead versions compacted away
	DictResorted bool // true when existing main value IDs had to change
	RemappedRefs int  // main references rewritten due to dictionary resort
	DictSize     int  // merged dictionary entries (string columns, summed)
}

// Table is one column-store table: immutable main part plus write-optimized
// delta part, with per-row MVCC stamps. All mutations go through the
// transaction layer, which supplies commit timestamps.
type Table struct {
	mu     sync.RWMutex
	name   string
	schema Schema

	main     []MainColumn
	mainRows int
	delta    []*DeltaColumn

	// created[i] / deleted[i] are the commit timestamps bounding the
	// lifetime of logical row i (main rows first, then delta rows).
	// deleted entries are accessed atomically: they flip exactly once from
	// NeverDeleted to the deleting transaction's commit timestamp.
	created []uint64
	deleted []uint64

	// stableKeys marks string columns whose values are generated in
	// ascending order (application knowledge, §III): merge skips sorting
	// their delta dictionaries.
	stableKeys map[int]bool

	mergeHooks []func(remap []int)
	lastMerge  MergeStats
	merges     int
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) *Table {
	t := &Table{name: name, schema: schema.Clone(), stableKeys: make(map[int]bool)}
	t.resetDelta()
	t.main = make([]MainColumn, len(schema))
	for i, c := range schema {
		t.main[i] = emptyMain(c.Kind)
	}
	return t
}

func (t *Table) resetDelta() {
	t.delta = make([]*DeltaColumn, len(t.schema))
	for i, c := range t.schema {
		t.delta[i] = NewDeltaColumn(c.Kind)
	}
}

func emptyMain(k value.Kind) MainColumn {
	switch k {
	case value.KindString:
		return &DictColumn{Dict: NewDictionary(nil), Refs: PackUints(nil)}
	case value.KindFloat:
		return &FloatColumn{}
	default:
		return NewIntColumn(nil, nil, k)
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema (callers must not mutate it).
func (t *Table) Schema() Schema { return t.schema }

// SetStableKeyColumn records the §III application hint that the named
// string column receives monotonically increasing generated keys.
func (t *Table) SetStableKeyColumn(name string) error {
	i := t.schema.ColIndex(name)
	if i < 0 {
		return fmt.Errorf("columnstore: no column %q in %s", name, t.name)
	}
	if t.schema[i].Kind != value.KindString {
		return fmt.Errorf("columnstore: stable-key hint only applies to string columns")
	}
	t.mu.Lock()
	t.stableKeys[i] = true
	t.mu.Unlock()
	return nil
}

// AddColumn appends a column to the schema (flexible tables, §II-H).
// Existing rows read as NULL in the new column.
func (t *Table) AddColumn(def ColumnDef) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.schema = append(t.schema, def)
	// Main part: a sparse column of NULLs covering existing main rows.
	t.main = append(t.main, NewSparseColumn(t.mainRows, value.Null, nil, nil, def.Kind))
	// Delta part: backfill NULLs for rows already buffered.
	dc := NewDeltaColumn(def.Kind)
	if len(t.delta) > 0 {
		for i := 0; i < t.delta[0].Len(); i++ {
			dc.Append(value.Null)
		}
	}
	t.delta = append(t.delta, dc)
	return len(t.schema) - 1
}

// ApplyInsert appends rows to the delta store with the given commit
// timestamp and returns the logical positions assigned. Called by the
// transaction layer at commit (or with ts=1 by bulk loaders).
func (t *Table) ApplyInsert(rows []value.Row, ts uint64) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := make([]int, len(rows))
	for r, row := range rows {
		for c := range t.schema {
			var v value.Value
			if c < len(row) {
				v = row[c]
			}
			t.delta[c].Append(v)
		}
		pos[r] = len(t.created)
		t.created = append(t.created, ts)
		t.deleted = append(t.deleted, NeverDeleted)
	}
	return pos
}

// ApplyInsertStamped appends rows with explicit per-row create and delete
// stamps. Used by checkpoint restore and replica catch-up, where physical
// positions and MVCC lifetimes must be reproduced exactly.
func (t *Table) ApplyInsertStamped(rows []value.Row, created, deleted []uint64) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := make([]int, len(rows))
	for r, row := range rows {
		for c := range t.schema {
			var v value.Value
			if c < len(row) {
				v = row[c]
			}
			t.delta[c].Append(v)
		}
		pos[r] = len(t.created)
		t.created = append(t.created, created[r])
		t.deleted = append(t.deleted, deleted[r])
	}
	return pos
}

// ApplyDelete stamps row pos as deleted at ts. It returns false when the
// row was already deleted — the first-committer-wins write-write conflict
// signal used by the transaction layer.
func (t *Table) ApplyDelete(pos int, ts uint64) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if pos < 0 || pos >= len(t.deleted) {
		return false
	}
	return atomic.CompareAndSwapUint64(&t.deleted[pos], NeverDeleted, ts)
}

// RowLive reports whether row pos exists and carries no deletion stamp.
// The transaction layer uses it for commit-time victim validation under
// its per-table apply latches — no snapshot allocation required. A stamp
// placed by a not-yet-published commit already counts as dead: that
// commit is irrevocable, so a second deleter must abort either way.
func (t *Table) RowLive(pos int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if pos < 0 || pos >= len(t.deleted) {
		return false
	}
	return atomic.LoadUint64(&t.deleted[pos]) == NeverDeleted
}

// NumRows returns the current number of logical row slots (live and dead).
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.created)
}

// DeltaRows returns the number of rows currently buffered in the delta
// store.
func (t *Table) DeltaRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.created) - t.mainRows
}

// MainRows returns the number of rows in main storage.
func (t *Table) MainRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mainRows
}

// OnMerge registers a hook invoked after each merge with the row remap
// table: remap[oldPos] = newPos, or -1 when the row version was compacted.
// Secondary structures (inverted indexes, R-trees, graph adjacency) use it
// to stay aligned with physical positions.
func (t *Table) OnMerge(hook func(remap []int)) {
	t.mu.Lock()
	t.mergeHooks = append(t.mergeHooks, hook)
	t.mu.Unlock()
}

// LastMergeStats returns statistics of the most recent merge.
func (t *Table) LastMergeStats() MergeStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lastMerge
}

// MergeCount returns how many merges have run.
func (t *Table) MergeCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.merges
}

// Bytes returns the compressed footprint of main plus delta storage.
func (t *Table) Bytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, c := range t.main {
		n += c.Bytes()
	}
	for _, c := range t.delta {
		n += c.Bytes()
	}
	return n + len(t.created)*16
}

// Snapshot captures a consistent read view at timestamp ts. The snapshot
// remains valid across concurrent inserts and merges: it pins the column
// structures that existed at capture time. Delta columns are pinned as
// frozen views — the live delta keeps growing in place under the table
// lock, and a view taken here can never observe a mid-append reallocation.
func (t *Table) Snapshot(ts uint64) *Snapshot {
	cSnapshots.Inc()
	t.mu.RLock()
	defer t.mu.RUnlock()
	delta := make([]*DeltaColumn, len(t.delta))
	for i, dc := range t.delta {
		delta[i] = dc.view()
	}
	return &Snapshot{
		ts:       ts,
		schema:   t.schema,
		main:     t.main,
		mainRows: t.mainRows,
		delta:    delta,
		created:  t.created,
		deleted:  t.deleted,
		rows:     len(t.created),
	}
}

// Snapshot is a consistent, immutable read view of a table.
type Snapshot struct {
	ts       uint64
	schema   Schema
	main     []MainColumn
	mainRows int
	delta    []*DeltaColumn
	created  []uint64
	deleted  []uint64
	rows     int
}

// NumRows returns the number of logical row slots in the snapshot
// (including invisible ones; use Visible to filter).
func (s *Snapshot) NumRows() int { return s.rows }

// TS returns the snapshot timestamp.
func (s *Snapshot) TS() uint64 { return s.ts }

// Schema returns the schema at capture time.
func (s *Snapshot) Schema() Schema { return s.schema }

// Visible reports whether row i is visible to this snapshot.
func (s *Snapshot) Visible(i int) bool {
	if s.created[i] > s.ts {
		return false
	}
	return atomic.LoadUint64(&s.deleted[i]) > s.ts
}

// AllVisible reports whether every physical row slot is visible to this
// snapshot — the precondition for answering aggregates from a zone-map
// synopsis (which is built over all physical rows) without touching any
// column data.
func (s *Snapshot) AllVisible() bool {
	for i := range s.created {
		if s.created[i] > s.ts || atomic.LoadUint64(&s.deleted[i]) <= s.ts {
			return false
		}
	}
	return true
}

// Created returns the commit timestamp that created row i.
func (s *Snapshot) Created(i int) uint64 { return s.created[i] }

// Deleted returns the commit timestamp that deleted row i, or NeverDeleted.
func (s *Snapshot) Deleted(i int) uint64 { return atomic.LoadUint64(&s.deleted[i]) }

// Get returns column col of row i.
func (s *Snapshot) Get(col, i int) value.Value {
	if i < s.mainRows {
		if col < len(s.main) {
			return s.main[col].Get(i)
		}
		return value.Null
	}
	if col < len(s.delta) {
		d := i - s.mainRows
		if d < s.delta[col].Len() {
			return s.delta[col].Get(d)
		}
	}
	return value.Null
}

// Row materializes all columns of row i.
func (s *Snapshot) Row(i int) value.Row {
	out := make(value.Row, len(s.schema))
	for c := range s.schema {
		out[c] = s.Get(c, i)
	}
	return out
}

// MainRows returns the number of rows served from main storage.
func (s *Snapshot) MainRows() int { return s.mainRows }

// MainColumn returns the main-part column, for executors that specialize
// on the physical representation.
func (s *Snapshot) MainColumn(col int) MainColumn {
	if col < len(s.main) {
		return s.main[col]
	}
	return nil
}

// DeltaColumn returns the delta-part column.
func (s *Snapshot) DeltaColumn(col int) *DeltaColumn {
	if col < len(s.delta) {
		return s.delta[col]
	}
	return nil
}

// LiveRows counts rows visible to the snapshot.
func (s *Snapshot) LiveRows() int {
	n := 0
	for i := 0; i < s.rows; i++ {
		if s.Visible(i) {
			n++
		}
	}
	return n
}

// Merge folds the delta store into a new main store, compacting row
// versions that are invisible to every snapshot at or after minActiveTS.
// String dictionaries are re-sorted and references remapped unless the
// stable-key fast path applies (§III).
func (t *Table) Merge(minActiveTS uint64) MergeStats {
	cMerges.Inc()
	start := time.Now()
	t.mu.Lock()

	total := len(t.created)
	remap := make([]int, total)
	keep := make([]int, 0, total)
	for i := 0; i < total; i++ {
		if atomic.LoadUint64(&t.deleted[i]) <= minActiveTS {
			remap[i] = -1 // dead to every current and future snapshot
			continue
		}
		remap[i] = len(keep)
		keep = append(keep, i)
	}

	stats := MergeStats{RowsMerged: len(keep), RowsEvicted: total - len(keep)}
	newMain := make([]MainColumn, len(t.schema))
	for c := range t.schema {
		newMain[c] = t.mergeColumn(c, keep, &stats)
	}

	newCreated := make([]uint64, len(keep))
	newDeleted := make([]uint64, len(keep))
	for n, old := range keep {
		newCreated[n] = t.created[old]
		newDeleted[n] = atomic.LoadUint64(&t.deleted[old])
	}

	t.main = newMain
	t.mainRows = len(keep)
	t.created = newCreated
	t.deleted = newDeleted
	t.resetDelta()
	t.merges++
	stats.Duration = time.Since(start)
	t.lastMerge = stats
	hooks := make([]func(remap []int), len(t.mergeHooks))
	copy(hooks, t.mergeHooks)
	t.mu.Unlock()

	for _, h := range hooks {
		h(remap)
	}
	return stats
}

// mergeColumn builds the new main column c from the kept row positions.
func (t *Table) mergeColumn(c int, keep []int, stats *MergeStats) MainColumn {
	kind := t.schema[c].Kind
	dc := t.delta[c]
	getDelta := func(pos int) value.Value {
		d := pos - t.mainRows
		if d < dc.Len() {
			return dc.Get(d)
		}
		return value.Null
	}

	switch kind {
	case value.KindString:
		return t.mergeStringColumn(c, keep, stats)
	case value.KindFloat:
		vals := make([]float64, len(keep))
		var nulls *Bitset
		for n, old := range keep {
			var v value.Value
			if old < t.mainRows {
				v = t.main[c].Get(old)
			} else {
				v = getDelta(old)
			}
			if v.IsNull() {
				if nulls == nil {
					nulls = NewBitset(len(keep))
				}
				nulls.Set(n)
			} else {
				vals[n] = v.F
			}
		}
		return &FloatColumn{Vals: vals, Nulls: nulls}
	default: // Int, Bool, Time
		vals := make([]int64, len(keep))
		var nulls *Bitset
		for n, old := range keep {
			var v value.Value
			if old < t.mainRows {
				v = t.main[c].Get(old)
			} else {
				v = getDelta(old)
			}
			if v.IsNull() {
				if nulls == nil {
					nulls = NewBitset(len(keep))
				}
				nulls.Set(n)
			} else {
				vals[n] = v.I
			}
		}
		// Prefer RLE when the data is extremely runny (sorted sensor IDs,
		// status flags); otherwise frame-of-reference bit packing.
		if len(vals) >= 1024 && nulls == nil {
			runs := 1
			for i := 1; i < len(vals); i++ {
				if vals[i] != vals[i-1] {
					runs++
				}
			}
			if runs*8 < len(vals) {
				boxed := make([]value.Value, len(vals))
				for i, v := range vals {
					boxed[i] = value.Value{K: kind, I: v}
				}
				return NewRLEColumn(boxed)
			}
		}
		return NewIntColumn(vals, nulls, kind)
	}
}

func (t *Table) mergeStringColumn(c int, keep []int, stats *MergeStats) MainColumn {
	dc := t.delta[c]
	var oldDict *Dictionary
	var oldRefs func(i int) (id int, null bool)
	switch mc := t.main[c].(type) {
	case *DictColumn:
		oldDict = mc.Dict
		oldRefs = func(i int) (int, bool) {
			if mc.IsNull(i) {
				return 0, true
			}
			return mc.ValueID(i), false
		}
	default:
		// Sparse or RLE main column: rebuild through string values.
		var vals []string
		seen := map[string]bool{}
		for i := 0; i < mc.Len(); i++ {
			v := mc.Get(i)
			if !v.IsNull() && !seen[v.S] {
				seen[v.S] = true
				vals = append(vals, v.S)
			}
		}
		oldDict = BuildDictionary(vals)
		oldRefs = func(i int) (int, bool) {
			v := mc.Get(i)
			if v.IsNull() {
				return 0, true
			}
			id, _ := oldDict.Lookup(v.S)
			return id, false
		}
	}

	merged, mainRemap, deltaRemap, resorted := mergeDictionaries(oldDict, dc.Dict())
	if resorted {
		stats.DictResorted = true
	}
	stats.DictSize += merged.Len()

	refs := make([]uint64, len(keep))
	var nulls *Bitset
	for n, old := range keep {
		if old < t.mainRows {
			id, null := oldRefs(old)
			if null {
				if nulls == nil {
					nulls = NewBitset(len(keep))
				}
				nulls.Set(n)
				continue
			}
			if mainRemap != nil {
				id = mainRemap[id]
				stats.RemappedRefs++
			}
			refs[n] = uint64(id)
			continue
		}
		d := old - t.mainRows
		if d >= dc.Len() || dc.IsNull(d) {
			if nulls == nil {
				nulls = NewBitset(len(keep))
			}
			nulls.Set(n)
			continue
		}
		refs[n] = uint64(deltaRemap[dc.refs[d]])
	}
	return &DictColumn{Dict: merged, Refs: PackUints(refs), Nulls: nulls}
}

// SortedBy reports whether the visible rows of snapshot s are sorted
// ascending by column col — a cheap statistic the optimizer uses for RLE
// and pruning decisions.
func (s *Snapshot) SortedBy(col int) bool {
	var prev value.Value
	first := true
	for i := 0; i < s.rows; i++ {
		if !s.Visible(i) {
			continue
		}
		v := s.Get(col, i)
		if !first && value.Compare(prev, v) > 0 {
			return false
		}
		prev, first = v, false
	}
	return true
}

// CollectVisible returns the positions of all rows visible to s, in
// physical order. Utility for engines that build secondary structures.
func (s *Snapshot) CollectVisible() []int {
	out := make([]int, 0, s.rows)
	for i := 0; i < s.rows; i++ {
		if s.Visible(i) {
			out = append(out, i)
		}
	}
	return out
}

// FindRows returns the positions of visible rows where column col equals v.
// Uses the dictionary to avoid string comparisons on main storage.
func (s *Snapshot) FindRows(col int, v value.Value) []int {
	var out []int
	if dcol, ok := s.main[col].(*DictColumn); ok && v.K == value.KindString {
		if id, found := dcol.Lookup(v.S); found {
			for i := 0; i < s.mainRows; i++ {
				if dcol.ValueID(i) == id && !dcol.IsNull(i) && s.Visible(i) {
					out = append(out, i)
				}
			}
		}
		for i := s.mainRows; i < s.rows; i++ {
			if s.Visible(i) && value.Equal(s.Get(col, i), v) {
				out = append(out, i)
			}
		}
		return out
	}
	for i := 0; i < s.rows; i++ {
		if s.Visible(i) && value.Equal(s.Get(col, i), v) {
			out = append(out, i)
		}
	}
	return out
}

// Lookup is a convenience over DictColumn for FindRows.
func (c *DictColumn) Lookup(s string) (int, bool) { return c.Dict.Lookup(s) }

// SortPositions sorts row positions by the snapshot values of column col.
func (s *Snapshot) SortPositions(pos []int, col int, desc bool) {
	sort.SliceStable(pos, func(a, b int) bool {
		cmp := value.Compare(s.Get(col, pos[a]), s.Get(col, pos[b]))
		if desc {
			return cmp > 0
		}
		return cmp < 0
	})
}
