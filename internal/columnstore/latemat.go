// Late-materialization kernels: code-remap key translation for dictionary
// columns and run folds for RLE columns. These power the compressed
// execution paths of the vectorized executor — joins probe on integer
// codes, group-bys key on codes, and aggregates fold whole RLE runs —
// decoding values only where a result row is actually produced.
package columnstore

import (
	"sort"

	"repro/internal/value"
)

// CodeKeys implements KeyCoder for a dictionary column: every row is a
// small-int code into the table-wide sorted dictionary, so the per-call
// remap table (code → canonical key) is built lazily and each distinct
// value is decoded and interned exactly once per call.
func (c *DictColumn) CodeKeys(sel []int, intern func(string) int64, nullKey int64, out []int64) []int64 {
	remap := make([]int64, c.Dict.Len())
	have := make([]bool, c.Dict.Len())
	for _, pos := range sel {
		if c.Nulls != nil && c.Nulls.Get(pos) {
			out = append(out, nullKey)
			continue
		}
		id := int(c.Refs.Get(pos))
		if !have[id] {
			remap[id] = intern(c.Dict.Value(id))
			have[id] = true
		}
		out = append(out, remap[id])
	}
	return out
}

// Int64 exposes the raw integer payload of row i (IntAccessor). RLE
// columns are only chosen for NULL-free integer data at merge time, so
// the stored values carry the payload directly.
func (c *RLEColumn) Int64(i int) int64 { return c.Get(i).I }

// FilterInts implements the integer comparison kernel run-wise: one
// comparison decides a whole run. NULL runs never match; the kernel is
// only bound when the literal kind matches the column kind, so raw
// payload comparison is exact.
func (c *RLEColumn) FilterInts(lo, hi int, op CmpOp, k int64, sel []int) []int {
	c.FoldRuns(lo, hi, func(v value.Value, start, end int) {
		if v.IsNull() || v.K == value.KindFloat {
			return
		}
		cmp := 0
		switch {
		case v.I < k:
			cmp = -1
		case v.I > k:
			cmp = 1
		}
		if op.MatchOrd(cmp) {
			for i := start; i < end; i++ {
				sel = append(sel, i)
			}
		}
	})
	return sel
}

// FoldRuns implements RunFolder over the run table: binary-search the
// first run covering lo, then walk runs clipped to [lo, hi).
func (c *RLEColumn) FoldRuns(lo, hi int, fn func(v value.Value, start, end int)) {
	if lo >= hi || c.n == 0 {
		return
	}
	k := sort.SearchInts(c.Ends, lo+1)
	start := lo
	for ; k < len(c.Ends) && start < hi; k++ {
		end := c.Ends[k]
		if end > hi {
			end = hi
		}
		fn(c.Values[k], start, end)
		start = c.Ends[k]
	}
}
