package columnstore

import "repro/internal/value"

// DeltaColumn is the write-optimized buffer that records all changes to one
// column since the last merge (§III: "a buffer structure called delta store
// which records all changes"). Strings are interned in an unsorted delta
// dictionary; numerics are appended to flat slices.
type DeltaColumn struct {
	kind  value.Kind
	ints  []int64   // Int, Bool, Time payloads
	flts  []float64 // Float payloads
	refs  []int32   // delta dictionary references for strings
	dict  *DeltaDict
	nulls []bool // append-only so concurrent snapshot reads stay race-free
	n     int
}

// NewDeltaColumn returns an empty delta column of the given kind.
func NewDeltaColumn(kind value.Kind) *DeltaColumn {
	c := &DeltaColumn{kind: kind}
	if kind == value.KindString {
		c.dict = NewDeltaDict()
	}
	return c
}

// Kind returns the logical kind.
func (c *DeltaColumn) Kind() value.Kind { return c.kind }

// Len returns the number of buffered rows.
func (c *DeltaColumn) Len() int { return c.n }

// Append buffers one value, coercing it to the column kind.
func (c *DeltaColumn) Append(v value.Value) {
	v = value.Coerce(v, c.kind)
	c.nulls = append(c.nulls, v.IsNull())
	switch c.kind {
	case value.KindString:
		id := int32(0)
		if !v.IsNull() {
			id = int32(c.dict.Add(v.S))
		}
		c.refs = append(c.refs, id)
	case value.KindFloat:
		c.flts = append(c.flts, v.F)
	default:
		c.ints = append(c.ints, v.I)
	}
	c.n++
}

// Get returns buffered row i as a Value.
func (c *DeltaColumn) Get(i int) value.Value {
	if c.IsNull(i) {
		return value.Null
	}
	switch c.kind {
	case value.KindString:
		return value.String(c.dict.Value(int(c.refs[i])))
	case value.KindFloat:
		return value.Float(c.flts[i])
	default:
		return value.Value{K: c.kind, I: c.ints[i]}
	}
}

// IsNull reports whether buffered row i is NULL.
func (c *DeltaColumn) IsNull(i int) bool { return i < len(c.nulls) && c.nulls[i] }

// view returns a frozen copy of the column for snapshot readers. Slice
// headers and the row count are captured while the table lock is held, so
// later Appends — which may reallocate the backing arrays — cannot race
// reads through the view.
func (c *DeltaColumn) view() *DeltaColumn {
	v := *c
	if c.dict != nil {
		v.dict = c.dict.view()
	}
	return &v
}

// Int64 returns buffered row i as a raw int64 (Int/Bool/Time columns).
func (c *DeltaColumn) Int64(i int) int64 { return c.ints[i] }

// Float64 returns buffered row i as a raw float64 (Float columns).
func (c *DeltaColumn) Float64(i int) float64 { return c.flts[i] }

// Dict returns the unsorted delta dictionary (string columns only).
func (c *DeltaColumn) Dict() *DeltaDict { return c.dict }

// Bytes returns the approximate heap footprint of the delta buffer.
func (c *DeltaColumn) Bytes() int {
	n := len(c.ints)*8 + len(c.flts)*8 + len(c.refs)*4
	if c.dict != nil {
		for _, s := range c.dict.Values() {
			n += 16 + len(s) + 24 // string + map entry overhead
		}
	}
	n += len(c.nulls)
	return n
}
