package columnstore

import (
	"sort"

	"repro/internal/value"
)

// MainColumn is the read-optimized, immutable representation of one column
// in main storage. Implementations are chosen per column at merge time
// based on data characteristics (dictionary for strings, frame-of-reference
// bit packing for integers, RLE when runs dominate, sparse for mostly-NULL
// flexible-table columns).
type MainColumn interface {
	Kind() value.Kind
	Len() int
	Get(i int) value.Value
	// IsNull reports whether row i is NULL without materializing a Value.
	IsNull(i int) bool
	// Bytes returns the approximate compressed heap footprint, used by the
	// compression experiments (E2) and the cluster statistics service.
	Bytes() int
}

// IntAccessor is implemented by main columns that can expose rows as raw
// int64 without boxing; the compiled executor specializes on it.
type IntAccessor interface {
	Int64(i int) int64
}

// FloatAccessor is the float64 counterpart of IntAccessor.
type FloatAccessor interface {
	Float64(i int) float64
}

// --- Dictionary-encoded string column -----------------------------------

// DictColumn stores strings as bit-packed IDs into a sorted dictionary.
type DictColumn struct {
	Dict  *Dictionary
	Refs  *BitPacked
	Nulls *Bitset // nil when no NULLs
}

// Kind returns value.KindString.
func (c *DictColumn) Kind() value.Kind { return value.KindString }

// Len returns the row count.
func (c *DictColumn) Len() int { return c.Refs.Len() }

// Get returns row i as a Value.
func (c *DictColumn) Get(i int) value.Value {
	if c.IsNull(i) {
		return value.Null
	}
	return value.String(c.Dict.Value(int(c.Refs.Get(i))))
}

// IsNull reports whether row i is NULL.
func (c *DictColumn) IsNull(i int) bool { return c.Nulls != nil && c.Nulls.Get(i) }

// Bytes returns the compressed footprint (dictionary + packed refs).
func (c *DictColumn) Bytes() int {
	n := c.Dict.Bytes() + c.Refs.Bytes()
	if c.Nulls != nil {
		n += c.Nulls.Bytes()
	}
	return n
}

// ValueID returns the dictionary ID at row i (undefined for NULL rows).
func (c *DictColumn) ValueID(i int) int { return int(c.Refs.Get(i)) }

// --- Frame-of-reference integer column ----------------------------------

// IntColumn stores int64 values as base + bit-packed deltas.
type IntColumn struct {
	Base  int64
	Refs  *BitPacked
	Nulls *Bitset
	kind  value.Kind // KindInt or KindTime or KindBool
}

// NewIntColumn frame-of-reference packs vals. kind selects the logical
// type (INT, TIMESTAMP or BOOLEAN) the raw int64 values represent.
func NewIntColumn(vals []int64, nulls *Bitset, kind value.Kind) *IntColumn {
	var base int64
	if len(vals) > 0 {
		base = vals[0]
		for _, v := range vals {
			if v < base {
				base = v
			}
		}
	}
	packed := make([]uint64, len(vals))
	for i, v := range vals {
		packed[i] = uint64(v - base)
	}
	return &IntColumn{Base: base, Refs: PackUints(packed), Nulls: nulls, kind: kind}
}

// Kind returns the logical kind of the column.
func (c *IntColumn) Kind() value.Kind { return c.kind }

// Len returns the row count.
func (c *IntColumn) Len() int { return c.Refs.Len() }

// Int64 returns row i as a raw int64.
func (c *IntColumn) Int64(i int) int64 { return c.Base + int64(c.Refs.Get(i)) }

// Get returns row i as a Value.
func (c *IntColumn) Get(i int) value.Value {
	if c.IsNull(i) {
		return value.Null
	}
	return value.Value{K: c.kind, I: c.Int64(i)}
}

// IsNull reports whether row i is NULL.
func (c *IntColumn) IsNull(i int) bool { return c.Nulls != nil && c.Nulls.Get(i) }

// Bytes returns the compressed footprint.
func (c *IntColumn) Bytes() int {
	n := c.Refs.Bytes() + 8
	if c.Nulls != nil {
		n += c.Nulls.Bytes()
	}
	return n
}

// --- Float column ---------------------------------------------------------

// FloatColumn stores float64 values uncompressed (the time-series engine
// provides XOR compression for sensor data; relational floats stay flat for
// scan speed).
type FloatColumn struct {
	Vals  []float64
	Nulls *Bitset
}

// Kind returns value.KindFloat.
func (c *FloatColumn) Kind() value.Kind { return value.KindFloat }

// Len returns the row count.
func (c *FloatColumn) Len() int { return len(c.Vals) }

// Float64 returns row i as a raw float64.
func (c *FloatColumn) Float64(i int) float64 { return c.Vals[i] }

// Get returns row i as a Value.
func (c *FloatColumn) Get(i int) value.Value {
	if c.IsNull(i) {
		return value.Null
	}
	return value.Float(c.Vals[i])
}

// IsNull reports whether row i is NULL.
func (c *FloatColumn) IsNull(i int) bool { return c.Nulls != nil && c.Nulls.Get(i) }

// Bytes returns the heap footprint.
func (c *FloatColumn) Bytes() int {
	n := len(c.Vals) * 8
	if c.Nulls != nil {
		n += c.Nulls.Bytes()
	}
	return n
}

// --- Run-length encoded column ---------------------------------------------

// RLEColumn compresses long runs of identical values; chosen at merge time
// when the run count is below half the row count (typical for sorted or
// low-cardinality data such as status flags and sensor IDs).
type RLEColumn struct {
	// Ends[k] is the exclusive end row of run k; Values[k] its value.
	Ends   []int
	Values []value.Value
	n      int
}

// NewRLEColumn run-length encodes vals.
func NewRLEColumn(vals []value.Value) *RLEColumn {
	c := &RLEColumn{n: len(vals)}
	for i, v := range vals {
		if i == 0 || !value.Equal(v, c.Values[len(c.Values)-1]) || v.K != c.Values[len(c.Values)-1].K {
			c.Values = append(c.Values, v)
			c.Ends = append(c.Ends, i+1)
		} else {
			c.Ends[len(c.Ends)-1] = i + 1
		}
	}
	return c
}

// RunCount returns the number of runs.
func (c *RLEColumn) RunCount() int { return len(c.Ends) }

// Run is one run of identical values: rows [Start, End) all carry Val.
type Run struct {
	Start, End int
	Val        value.Value
}

// Runs materializes the run list. Kernels and operators iterate this
// instead of calling Get(i) per row, which binary-searches the run ends
// on every call.
func (c *RLEColumn) Runs() []Run {
	out := make([]Run, len(c.Ends))
	start := 0
	for k, end := range c.Ends {
		out[k] = Run{Start: start, End: end, Val: c.Values[k]}
		start = end
	}
	return out
}

// RunAt returns run k without allocating.
func (c *RLEColumn) RunAt(k int) Run {
	start := 0
	if k > 0 {
		start = c.Ends[k-1]
	}
	return Run{Start: start, End: c.Ends[k], Val: c.Values[k]}
}

// Kind returns the kind of the first run (columns are homogeneous).
func (c *RLEColumn) Kind() value.Kind {
	for _, v := range c.Values {
		if !v.IsNull() {
			return v.K
		}
	}
	return value.KindNull
}

// Len returns the row count.
func (c *RLEColumn) Len() int { return c.n }

// Get returns row i as a Value.
func (c *RLEColumn) Get(i int) value.Value {
	k := sort.SearchInts(c.Ends, i+1)
	return c.Values[k]
}

// IsNull reports whether row i is NULL.
func (c *RLEColumn) IsNull(i int) bool { return c.Get(i).IsNull() }

// Bytes returns the compressed footprint.
func (c *RLEColumn) Bytes() int {
	n := len(c.Ends) * 8
	for _, v := range c.Values {
		n += 24 + len(v.S)
	}
	return n
}

// --- Sparse column ----------------------------------------------------------

// SparseColumn stores only non-default positions; the flexible-table engine
// (§II-H) uses it for implicitly created, mostly-NULL columns.
type SparseColumn struct {
	N         int
	Default   value.Value // usually NULL
	Positions []int       // sorted
	Values    []value.Value
	kind      value.Kind
}

// NewSparseColumn builds a sparse column of n rows where only the given
// positions deviate from def. Positions must be sorted ascending.
func NewSparseColumn(n int, def value.Value, positions []int, vals []value.Value, kind value.Kind) *SparseColumn {
	return &SparseColumn{N: n, Default: def, Positions: positions, Values: vals, kind: kind}
}

// Kind returns the logical kind.
func (c *SparseColumn) Kind() value.Kind { return c.kind }

// Len returns the row count.
func (c *SparseColumn) Len() int { return c.N }

// Get returns row i as a Value.
func (c *SparseColumn) Get(i int) value.Value {
	k := sort.SearchInts(c.Positions, i)
	if k < len(c.Positions) && c.Positions[k] == i {
		return c.Values[k]
	}
	return c.Default
}

// IsNull reports whether row i is NULL.
func (c *SparseColumn) IsNull(i int) bool { return c.Get(i).IsNull() }

// Density returns the fraction of explicitly stored rows.
func (c *SparseColumn) Density() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(len(c.Positions)) / float64(c.N)
}

// Bytes returns the compressed footprint.
func (c *SparseColumn) Bytes() int {
	n := len(c.Positions) * 8
	for _, v := range c.Values {
		n += 24 + len(v.S)
	}
	return n
}

// RawBytes estimates the uncompressed footprint of a column: what a plain
// row-store array of the same logical values would occupy. Used to report
// compression ratios (E2).
func RawBytes(c MainColumn) int {
	switch c.Kind() {
	case value.KindString:
		n := 0
		for i := 0; i < c.Len(); i++ {
			n += 16 + len(c.Get(i).S)
		}
		return n
	case value.KindBool:
		return c.Len()
	default:
		return c.Len() * 8
	}
}
