package columnstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestBitPackedRoundTrip(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{0, 0, 0},
		{1, 2, 3, 4, 5},
		{1 << 63, 0, ^uint64(0)},
		{255, 256, 257},
	}
	for _, vals := range cases {
		bp := PackUints(vals)
		if bp.Len() != len(vals) {
			t.Fatalf("len=%d want %d", bp.Len(), len(vals))
		}
		for i, v := range vals {
			if got := bp.Get(i); got != v {
				t.Fatalf("Get(%d)=%d want %d (width %d)", i, got, v, bp.Width())
			}
		}
	}
}

func TestBitPackedProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		// Bound the width to keep the test fast but still cross word
		// boundaries.
		for i := range vals {
			vals[i] &= (1 << (uint(i)%37 + 1)) - 1
		}
		bp := PackUints(vals)
		return reflect.DeepEqual(bp.Unpack(), append([]uint64{}, vals...)) || (len(vals) == 0 && bp.Len() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetBasics(t *testing.T) {
	s := NewBitset(10)
	s.Set(3)
	s.Set(9)
	s.Set(64) // forces growth
	if !s.Get(3) || !s.Get(9) || !s.Get(64) || s.Get(4) {
		t.Fatal("bitset get/set broken")
	}
	if s.Count() != 3 {
		t.Fatalf("count=%d", s.Count())
	}
	s.Clear(3)
	if s.Get(3) || s.Count() != 2 {
		t.Fatal("clear broken")
	}
	if !s.Any() {
		t.Fatal("any broken")
	}
}

func TestDictionaryLookup(t *testing.T) {
	d := BuildDictionary([]string{"pear", "apple", "fig", "apple"})
	if d.Len() != 3 {
		t.Fatalf("len=%d", d.Len())
	}
	for _, s := range []string{"apple", "fig", "pear"} {
		id, ok := d.Lookup(s)
		if !ok || d.Value(id) != s {
			t.Fatalf("lookup %q failed", s)
		}
	}
	if _, ok := d.Lookup("mango"); ok {
		t.Fatal("phantom value")
	}
	if d.Max() != "pear" {
		t.Fatalf("max=%q", d.Max())
	}
	// Value IDs are sorted order: range predicate property.
	a, _ := d.Lookup("apple")
	p, _ := d.Lookup("pear")
	if !(a < p) {
		t.Fatal("dictionary not order-preserving")
	}
}

func TestMergeDictionariesAppendOnlyFastPath(t *testing.T) {
	main := BuildDictionary([]string{"a", "b", "c"})
	delta := NewDeltaDict()
	delta.Add("x")
	delta.Add("d")
	merged, mainRemap, deltaRemap, resorted := mergeDictionaries(main, delta)
	if resorted || mainRemap != nil {
		t.Fatal("append-only case must not resort")
	}
	if merged.Len() != 5 {
		t.Fatalf("merged len=%d", merged.Len())
	}
	for oldID, s := range delta.Values() {
		if merged.Value(deltaRemap[oldID]) != s {
			t.Fatalf("delta remap broken for %q", s)
		}
	}
}

func TestMergeDictionariesResort(t *testing.T) {
	main := BuildDictionary([]string{"b", "d", "f"})
	delta := NewDeltaDict()
	delta.Add("a")
	delta.Add("e")
	delta.Add("d") // duplicate of existing
	merged, mainRemap, deltaRemap, resorted := mergeDictionaries(main, delta)
	if !resorted || mainRemap == nil {
		t.Fatal("interleaved values must resort")
	}
	want := []string{"a", "b", "d", "e", "f"}
	for i, s := range want {
		if merged.Value(i) != s {
			t.Fatalf("merged[%d]=%q want %q", i, merged.Value(i), s)
		}
	}
	// Old main IDs must map to the same strings.
	for oldID := 0; oldID < main.Len(); oldID++ {
		if merged.Value(mainRemap[oldID]) != main.Value(oldID) {
			t.Fatal("main remap broken")
		}
	}
	for oldID, s := range delta.Values() {
		if merged.Value(deltaRemap[oldID]) != s {
			t.Fatal("delta remap broken")
		}
	}
}

func TestMergeDictionariesProperty(t *testing.T) {
	f := func(mainVals, deltaVals []string) bool {
		main := BuildDictionary(mainVals)
		delta := NewDeltaDict()
		for _, s := range deltaVals {
			delta.Add(s)
		}
		merged, mainRemap, deltaRemap, _ := mergeDictionaries(main, delta)
		// Invariant 1: merged dictionary is sorted and unique.
		for i := 1; i < merged.Len(); i++ {
			if merged.Value(i-1) >= merged.Value(i) {
				return false
			}
		}
		// Invariant 2: remaps preserve string identity.
		for id := 0; id < main.Len(); id++ {
			nid := id
			if mainRemap != nil {
				nid = mainRemap[id]
			}
			if merged.Value(nid) != main.Value(id) {
				return false
			}
		}
		for id, s := range delta.Values() {
			if merged.Value(deltaRemap[id]) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sampleSchema() Schema {
	return Schema{
		{Name: "id", Kind: value.KindInt},
		{Name: "name", Kind: value.KindString},
		{Name: "amount", Kind: value.KindFloat},
	}
}

func TestTableInsertAndSnapshot(t *testing.T) {
	tab := NewTable("orders", sampleSchema())
	tab.ApplyInsert([]value.Row{
		{value.Int(1), value.String("alice"), value.Float(10.5)},
		{value.Int(2), value.String("bob"), value.Float(20)},
	}, 5)

	snapBefore := tab.Snapshot(4)
	if snapBefore.LiveRows() != 0 {
		t.Fatal("rows visible before their commit ts")
	}
	snap := tab.Snapshot(5)
	if snap.LiveRows() != 2 {
		t.Fatalf("live=%d", snap.LiveRows())
	}
	if got := snap.Get(1, 0); got.S != "alice" {
		t.Fatalf("got %v", got)
	}
	if got := snap.Get(2, 1); got.F != 20 {
		t.Fatalf("got %v", got)
	}
}

func TestTableDeleteVisibilityAndConflict(t *testing.T) {
	tab := NewTable("t", sampleSchema())
	pos := tab.ApplyInsert([]value.Row{{value.Int(1), value.String("x"), value.Float(1)}}, 1)
	if !tab.ApplyDelete(pos[0], 10) {
		t.Fatal("first delete must win")
	}
	if tab.ApplyDelete(pos[0], 11) {
		t.Fatal("second delete must report conflict")
	}
	if tab.Snapshot(9).LiveRows() != 1 {
		t.Fatal("row must stay visible to pre-delete snapshots")
	}
	if tab.Snapshot(10).LiveRows() != 0 {
		t.Fatal("row must be invisible at delete ts")
	}
}

func TestTableMergeCompactsAndPreservesData(t *testing.T) {
	tab := NewTable("t", sampleSchema())
	var rows []value.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, value.Row{value.Int(int64(i)), value.String(fmt.Sprintf("n%03d", i)), value.Float(float64(i) / 2)})
	}
	pos := tab.ApplyInsert(rows, 1)
	for i := 0; i < 50; i++ {
		tab.ApplyDelete(pos[i], 2)
	}
	stats := tab.Merge(3) // everything deleted before ts 3 is dead
	if stats.RowsMerged != 50 || stats.RowsEvicted != 50 {
		t.Fatalf("stats=%+v", stats)
	}
	if tab.MainRows() != 50 || tab.DeltaRows() != 0 {
		t.Fatalf("main=%d delta=%d", tab.MainRows(), tab.DeltaRows())
	}
	snap := tab.Snapshot(3)
	if snap.LiveRows() != 50 {
		t.Fatalf("live=%d", snap.LiveRows())
	}
	// Surviving rows are 50..99 with intact values.
	seen := map[int64]bool{}
	for i := 0; i < snap.NumRows(); i++ {
		if !snap.Visible(i) {
			continue
		}
		id := snap.Get(0, i).I
		seen[id] = true
		if want := fmt.Sprintf("n%03d", id); snap.Get(1, i).S != want {
			t.Fatalf("name mismatch for id %d", id)
		}
		if snap.Get(2, i).F != float64(id)/2 {
			t.Fatalf("amount mismatch for id %d", id)
		}
	}
	for i := int64(50); i < 100; i++ {
		if !seen[i] {
			t.Fatalf("row %d lost in merge", i)
		}
	}
}

func TestMergeRemapHook(t *testing.T) {
	tab := NewTable("t", sampleSchema())
	pos := tab.ApplyInsert([]value.Row{
		{value.Int(1), value.String("a"), value.Float(0)},
		{value.Int(2), value.String("b"), value.Float(0)},
		{value.Int(3), value.String("c"), value.Float(0)},
	}, 1)
	tab.ApplyDelete(pos[1], 2)
	var got []int
	tab.OnMerge(func(remap []int) { got = append([]int{}, remap...) })
	tab.Merge(5)
	want := []int{0, -1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("remap=%v want %v", got, want)
	}
}

func TestMergeStableKeyAvoidsResort(t *testing.T) {
	tab := NewTable("t", Schema{{Name: "key", Kind: value.KindString}})
	if err := tab.SetStableKeyColumn("key"); err != nil {
		t.Fatal(err)
	}
	// Generated keys: strictly increasing.
	var rows []value.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, value.Row{value.String(fmt.Sprintf("DOC-%08d", i))})
	}
	tab.ApplyInsert(rows, 1)
	s1 := tab.Merge(2)
	if s1.DictResorted {
		t.Fatal("first merge into empty main cannot resort")
	}
	rows = rows[:0]
	for i := 1000; i < 2000; i++ {
		rows = append(rows, value.Row{value.String(fmt.Sprintf("DOC-%08d", i))})
	}
	tab.ApplyInsert(rows, 3)
	s2 := tab.Merge(4)
	if s2.DictResorted || s2.RemappedRefs != 0 {
		t.Fatalf("stable keys must merge without resort: %+v", s2)
	}

	// Contrast: random keys force a resort.
	tab2 := NewTable("t2", Schema{{Name: "key", Kind: value.KindString}})
	rng := rand.New(rand.NewSource(7))
	rows = rows[:0]
	for i := 0; i < 1000; i++ {
		rows = append(rows, value.Row{value.String(fmt.Sprintf("K%08d", rng.Intn(1<<30)))})
	}
	tab2.ApplyInsert(rows, 1)
	tab2.Merge(2)
	rows = rows[:0]
	for i := 0; i < 1000; i++ {
		rows = append(rows, value.Row{value.String(fmt.Sprintf("K%08d", rng.Intn(1<<30)))})
	}
	tab2.ApplyInsert(rows, 3)
	s4 := tab2.Merge(4)
	if !s4.DictResorted || s4.RemappedRefs == 0 {
		t.Fatalf("random keys should resort: %+v", s4)
	}
}

func TestSnapshotStableAcrossMerge(t *testing.T) {
	tab := NewTable("t", sampleSchema())
	tab.ApplyInsert([]value.Row{{value.Int(1), value.String("pre"), value.Float(1)}}, 1)
	snap := tab.Snapshot(1)
	tab.ApplyInsert([]value.Row{{value.Int(2), value.String("post"), value.Float(2)}}, 2)
	tab.Merge(3)
	// The old snapshot still sees exactly its row, at its old position.
	if snap.LiveRows() != 1 || snap.Get(1, 0).S != "pre" {
		t.Fatal("snapshot invalidated by merge")
	}
	// A new snapshot sees both rows.
	if tab.Snapshot(2).LiveRows() != 2 {
		t.Fatal("post-merge snapshot wrong")
	}
}

func TestAddColumnFlexible(t *testing.T) {
	tab := NewTable("flex", Schema{{Name: "id", Kind: value.KindInt}})
	tab.ApplyInsert([]value.Row{{value.Int(1)}}, 1)
	ci := tab.AddColumn(ColumnDef{Name: "extra", Kind: value.KindString})
	tab.ApplyInsert([]value.Row{{value.Int(2), value.String("hello")}}, 2)
	snap := tab.Snapshot(2)
	if !snap.Get(ci, 0).IsNull() {
		t.Fatal("old row must read NULL in new column")
	}
	if snap.Get(ci, 1).S != "hello" {
		t.Fatal("new column value lost")
	}
	// Merge keeps the flexible column intact.
	tab.Merge(3)
	snap = tab.Snapshot(2)
	vals := map[string]bool{}
	for i := 0; i < snap.NumRows(); i++ {
		if snap.Visible(i) {
			vals[snap.Get(ci, i).AsString()] = true
		}
	}
	if !vals["NULL"] || !vals["hello"] {
		t.Fatalf("after merge: %v", vals)
	}
}

func TestRLEColumn(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 100; i++ {
		vals = append(vals, value.Int(int64(i/25)))
	}
	c := NewRLEColumn(vals)
	if c.RunCount() != 4 {
		t.Fatalf("runs=%d", c.RunCount())
	}
	for i := 0; i < 100; i++ {
		if c.Get(i).I != int64(i/25) {
			t.Fatalf("Get(%d)", i)
		}
	}
	if c.Bytes() >= 100*8 {
		t.Fatal("RLE larger than raw")
	}
}

func TestMergePicksRLEForRunnyInts(t *testing.T) {
	tab := NewTable("sensors", Schema{{Name: "sensor_id", Kind: value.KindInt}})
	var rows []value.Row
	for i := 0; i < 4096; i++ {
		rows = append(rows, value.Row{value.Int(int64(i / 1024))})
	}
	tab.ApplyInsert(rows, 1)
	tab.Merge(2)
	if _, ok := tab.Snapshot(2).MainColumn(0).(*RLEColumn); !ok {
		t.Fatalf("expected RLE, got %T", tab.Snapshot(2).MainColumn(0))
	}
}

func TestSparseColumn(t *testing.T) {
	c := NewSparseColumn(1000, value.Null, []int{5, 500}, []value.Value{value.String("a"), value.String("b")}, value.KindString)
	if c.Get(5).S != "a" || c.Get(500).S != "b" {
		t.Fatal("sparse get broken")
	}
	if !c.Get(6).IsNull() {
		t.Fatal("default must be NULL")
	}
	if d := c.Density(); d != 0.002 {
		t.Fatalf("density=%v", d)
	}
}

func TestFindRowsUsesDictionary(t *testing.T) {
	tab := NewTable("t", Schema{{Name: "s", Kind: value.KindString}})
	var rows []value.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, value.Row{value.String(fmt.Sprintf("v%d", i%10))})
	}
	tab.ApplyInsert(rows, 1)
	tab.Merge(2)
	// Add a delta row matching too.
	tab.ApplyInsert([]value.Row{{value.String("v3")}}, 3)
	snap := tab.Snapshot(3)
	got := snap.FindRows(0, value.String("v3"))
	if len(got) != 11 {
		t.Fatalf("found %d rows", len(got))
	}
	if len(snap.FindRows(0, value.String("nope"))) != 0 {
		t.Fatal("phantom matches")
	}
}

func TestCompressionRatioDictionary(t *testing.T) {
	tab := NewTable("t", Schema{{Name: "status", Kind: value.KindString}})
	statuses := []string{"OPEN", "CLOSED", "SHIPPED", "PAID"}
	var rows []value.Row
	for i := 0; i < 10000; i++ {
		rows = append(rows, value.Row{value.String(statuses[i%4])})
	}
	tab.ApplyInsert(rows, 1)
	tab.Merge(2)
	col := tab.Snapshot(2).MainColumn(0)
	raw := RawBytes(col)
	if col.Bytes()*10 > raw {
		t.Fatalf("dictionary compression too weak: %d vs raw %d", col.Bytes(), raw)
	}
}

func TestTableMergePropertyRandomOps(t *testing.T) {
	// Property: after arbitrary insert/delete/merge interleavings, a
	// snapshot at the final timestamp sees exactly the rows inserted and
	// not deleted, with intact payloads.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		tab := NewTable("p", Schema{{Name: "k", Kind: value.KindInt}, {Name: "v", Kind: value.KindString}})
		type live struct {
			pos int
			k   int64
		}
		var alive []live
		expect := map[int64]string{}
		ts := uint64(1)
		nextKey := int64(0)
		for op := 0; op < 200; op++ {
			switch r := rng.Intn(10); {
			case r < 6: // insert
				k := nextKey
				nextKey++
				v := fmt.Sprintf("val-%d-%d", trial, k)
				pos := tab.ApplyInsert([]value.Row{{value.Int(k), value.String(v)}}, ts)
				alive = append(alive, live{pos[0], k})
				expect[k] = v
				ts++
			case r < 8 && len(alive) > 0: // delete
				i := rng.Intn(len(alive))
				tab.ApplyDelete(alive[i].pos, ts)
				delete(expect, alive[i].k)
				alive = append(alive[:i], alive[i+1:]...)
				ts++
			default: // merge; positions shift, track via remap
				var remap []int
				tab.OnMerge(func(r []int) { remap = r })
				tab.Merge(ts)
				for i := range alive {
					alive[i].pos = remap[alive[i].pos]
					if alive[i].pos < 0 {
						t.Fatal("live row compacted")
					}
				}
				tab.mergeHooks = nil
			}
		}
		snap := tab.Snapshot(ts)
		got := map[int64]string{}
		for i := 0; i < snap.NumRows(); i++ {
			if snap.Visible(i) {
				got[snap.Get(0, i).I] = snap.Get(1, i).S
			}
		}
		if !reflect.DeepEqual(got, expect) {
			t.Fatalf("trial %d: got %d rows want %d", trial, len(got), len(expect))
		}
	}
}

func TestSortPositionsAndSortedBy(t *testing.T) {
	tab := NewTable("t", Schema{{Name: "n", Kind: value.KindInt}})
	tab.ApplyInsert([]value.Row{{value.Int(3)}, {value.Int(1)}, {value.Int(2)}}, 1)
	snap := tab.Snapshot(1)
	if snap.SortedBy(0) {
		t.Fatal("not sorted")
	}
	pos := snap.CollectVisible()
	snap.SortPositions(pos, 0, false)
	var got []int64
	for _, p := range pos {
		got = append(got, snap.Get(0, p).I)
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatalf("got %v", got)
	}
	snap.SortPositions(pos, 0, true)
	if snap.Get(0, pos[0]).I != 3 {
		t.Fatal("desc sort broken")
	}
}

func TestAccessorSurfaces(t *testing.T) {
	// Exercise the small accessor methods engines rely on.
	tab := NewTable("acc", sampleSchema())
	tab.ApplyInsert([]value.Row{
		{value.Int(1), value.String("a"), value.Float(1.5)},
		{value.Null, value.Null, value.Null},
	}, 1)
	if tab.Name() != "acc" || tab.Schema()[1].Name != "name" || tab.NumRows() != 2 {
		t.Fatal("table accessors")
	}
	if got := tab.Schema().Names(); got[2] != "amount" {
		t.Fatalf("names=%v", got)
	}
	snap := tab.Snapshot(1)
	if snap.TS() != 1 || len(snap.Schema()) != 3 {
		t.Fatal("snapshot accessors")
	}
	if snap.Created(0) != 1 || snap.Deleted(0) != NeverDeleted {
		t.Fatal("stamps")
	}
	row := snap.Row(0)
	if row[0].I != 1 || row[1].S != "a" || row[2].F != 1.5 {
		t.Fatalf("row=%v", row)
	}
	if !snap.Row(1)[0].IsNull() || !snap.Row(1)[2].IsNull() {
		t.Fatal("null row")
	}
	// Delta column typed accessors.
	dc := snap.DeltaColumn(0)
	if dc.Kind() != value.KindInt || dc.Int64(0) != 1 {
		t.Fatal("delta int accessor")
	}
	if snap.DeltaColumn(2).Float64(0) != 1.5 {
		t.Fatal("delta float accessor")
	}
	if dc.Bytes() == 0 || tab.Bytes() == 0 {
		t.Fatal("byte accounting")
	}
	tab.Merge(2)
	if tab.MergeCount() != 1 || tab.LastMergeStats().RowsMerged != 2 {
		t.Fatalf("merge stats=%+v", tab.LastMergeStats())
	}
	snap = tab.Snapshot(2)
	// Main column accessors post-merge.
	ic := snap.MainColumn(0).(*IntColumn)
	if ic.Kind() != value.KindInt || ic.Len() != 2 || ic.Bytes() == 0 {
		t.Fatal("int column accessors")
	}
	if !ic.IsNull(1) || !ic.Get(1).IsNull() {
		t.Fatal("int null")
	}
	fc := snap.MainColumn(2).(*FloatColumn)
	if fc.Kind() != value.KindFloat || fc.Len() != 2 || fc.Float64(0) != 1.5 || fc.Bytes() == 0 {
		t.Fatal("float column accessors")
	}
	if !fc.Get(1).IsNull() {
		t.Fatal("float null")
	}
	dcol := snap.MainColumn(1).(*DictColumn)
	if dcol.Kind() != value.KindString || dcol.Len() != 2 || !dcol.Get(1).IsNull() {
		t.Fatal("dict column accessors")
	}
	if snap.MainColumn(99) != nil || !snap.Get(99, 0).IsNull() {
		t.Fatal("out-of-range column")
	}
}

func TestBitPackedWidthAndBytes(t *testing.T) {
	bp := PackUints([]uint64{7, 0, 3})
	if bp.Width() != 3 || bp.Len() != 3 || bp.Bytes() == 0 {
		t.Fatalf("width=%d len=%d", bp.Width(), bp.Len())
	}
	zero := PackUints([]uint64{0, 0})
	if zero.Width() != 0 || zero.Get(1) != 0 || zero.Bytes() != 0 {
		t.Fatal("all-zero packing")
	}
	wide := PackUints([]uint64{^uint64(0)})
	if wide.Width() != 64 || wide.Get(0) != ^uint64(0) {
		t.Fatal("64-bit packing")
	}
}

func TestDictionaryLowerBoundAndDeltaLookup(t *testing.T) {
	d := BuildDictionary([]string{"b", "d", "f"})
	if d.LowerBound("c") != 1 || d.LowerBound("a") != 0 || d.LowerBound("z") != 3 {
		t.Fatal("lower bound")
	}
	if NewDictionary(nil).Max() != "" {
		t.Fatal("empty max")
	}
	dd := NewDeltaDict()
	id := dd.Add("x")
	if got, ok := dd.Lookup("x"); !ok || got != id {
		t.Fatal("delta lookup")
	}
	if _, ok := dd.Lookup("missing"); ok {
		t.Fatal("phantom delta entry")
	}
}

func TestRLEAndSparseSurfaces(t *testing.T) {
	rle := NewRLEColumn([]value.Value{value.Null, value.Null, value.Int(3)})
	if rle.Kind() != value.KindInt || rle.Len() != 3 {
		t.Fatal("rle accessors")
	}
	if !rle.IsNull(0) || rle.IsNull(2) {
		t.Fatal("rle nulls")
	}
	allNull := NewRLEColumn([]value.Value{value.Null})
	if allNull.Kind() != value.KindNull {
		t.Fatal("all-null rle kind")
	}
	sp := NewSparseColumn(10, value.Null, []int{2}, []value.Value{value.String("x")}, value.KindString)
	if sp.Kind() != value.KindString || sp.Len() != 10 || sp.Bytes() == 0 {
		t.Fatal("sparse accessors")
	}
	if !sp.IsNull(0) || sp.IsNull(2) {
		t.Fatal("sparse nulls")
	}
	empty := NewSparseColumn(0, value.Null, nil, nil, value.KindString)
	if empty.Density() != 0 {
		t.Fatal("empty density")
	}
	if RawBytes(sp) == 0 {
		t.Fatal("raw bytes of string column")
	}
	boolCol := NewIntColumn([]int64{1, 0}, nil, value.KindBool)
	if RawBytes(boolCol) != 2 {
		t.Fatalf("bool raw bytes=%d", RawBytes(boolCol))
	}
}

func TestApplyInsertStamped(t *testing.T) {
	tab := NewTable("st", Schema{{Name: "v", Kind: value.KindInt}})
	pos := tab.ApplyInsertStamped(
		[]value.Row{{value.Int(1)}, {value.Int(2)}},
		[]uint64{5, 7},
		[]uint64{NeverDeleted, 9},
	)
	if len(pos) != 2 {
		t.Fatal("positions")
	}
	if tab.Snapshot(6).LiveRows() != 1 {
		t.Fatal("created stamp")
	}
	if tab.Snapshot(8).LiveRows() != 2 || tab.Snapshot(9).LiveRows() != 1 {
		t.Fatal("deleted stamp")
	}
}

func TestMergeStringColumnFromSparseMain(t *testing.T) {
	// A flexible column starts life as a sparse main column; the merge
	// must rebuild it through the generic path.
	tab := NewTable("flex2", Schema{{Name: "id", Kind: value.KindInt}})
	tab.ApplyInsert([]value.Row{{value.Int(1)}}, 1)
	tab.Merge(2) // id in main
	ci := tab.AddColumn(ColumnDef{Name: "tag", Kind: value.KindString})
	tab.ApplyInsert([]value.Row{{value.Int(2), value.String("new")}}, 3)
	tab.Merge(4) // sparse main column merges with delta
	snap := tab.Snapshot(4)
	vals := map[string]bool{}
	for i := 0; i < snap.NumRows(); i++ {
		if snap.Visible(i) {
			vals[snap.Get(ci, i).AsString()] = true
		}
	}
	if !vals["NULL"] || !vals["new"] {
		t.Fatalf("vals=%v", vals)
	}
	// Second merge exercises the now-DictColumn path again with nulls.
	tab.ApplyInsert([]value.Row{{value.Int(3), value.String("again")}}, 5)
	tab.Merge(6)
	if tab.Snapshot(6).LiveRows() != 3 {
		t.Fatal("rows lost")
	}
}
