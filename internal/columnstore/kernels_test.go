package columnstore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
)

func TestRLERuns(t *testing.T) {
	vals := []value.Value{
		value.String("a"), value.String("a"), value.String("a"),
		value.String("b"),
		value.String("c"), value.String("c"),
	}
	c := NewRLEColumn(vals)
	runs := c.Runs()
	want := []Run{
		{Start: 0, End: 3, Val: value.String("a")},
		{Start: 3, End: 4, Val: value.String("b")},
		{Start: 4, End: 6, Val: value.String("c")},
	}
	if len(runs) != len(want) {
		t.Fatalf("got %d runs, want %d", len(runs), len(want))
	}
	for k, r := range runs {
		if r.Start != want[k].Start || r.End != want[k].End || !value.Equal(r.Val, want[k].Val) {
			t.Fatalf("run %d = %+v, want %+v", k, r, want[k])
		}
		if ra := c.RunAt(k); ra != r {
			t.Fatalf("RunAt(%d) = %+v, Runs()[%d] = %+v", k, ra, k, r)
		}
	}
	// Reconstructing rows through runs must agree with Get.
	for _, r := range runs {
		for i := r.Start; i < r.End; i++ {
			if !value.Equal(c.Get(i), r.Val) {
				t.Fatalf("row %d: Get=%v run=%v", i, c.Get(i), r.Val)
			}
		}
	}
}

func TestRLERunsEmpty(t *testing.T) {
	c := NewRLEColumn(nil)
	if runs := c.Runs(); len(runs) != 0 {
		t.Fatalf("empty column produced runs: %v", runs)
	}
}

func TestBitPackedUnpackRange(t *testing.T) {
	for _, width := range []int{1, 7, 13, 31, 63} {
		vals := make([]uint64, 1000)
		r := rand.New(rand.NewSource(int64(width)))
		for i := range vals {
			vals[i] = r.Uint64() & ((1 << width) - 1)
		}
		bp := PackUints(vals)
		var buf []uint64
		for _, span := range [][2]int{{0, 1000}, {17, 401}, {998, 1000}, {500, 500}} {
			buf = bp.UnpackRange(span[0], span[1], buf)
			if len(buf) != span[1]-span[0] {
				t.Fatalf("width %d: range %v gave %d entries", width, span, len(buf))
			}
			for i, v := range buf {
				if want := bp.Get(span[0] + i); v != want {
					t.Fatalf("width %d pos %d: got %d want %d", width, span[0]+i, v, want)
				}
			}
		}
	}
}

// referenceFilter computes the expected selection with the boxed Get path.
func referenceFilter(c MainColumn, lo, hi int, op CmpOp, lit value.Value) []int {
	var out []int
	for i := lo; i < hi; i++ {
		v := c.Get(i)
		if v.IsNull() {
			continue
		}
		if op.MatchOrd(value.Compare(v, lit)) {
			out = append(out, i)
		}
	}
	return out
}

func eqSel(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var allOps = []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}

func TestIntColumnFilterRange(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := make([]int64, 5000)
	nulls := NewBitset(len(vals))
	for i := range vals {
		vals[i] = 100 + int64(r.Intn(1000))
		if r.Intn(20) == 0 {
			nulls.Set(i)
		}
	}
	c := NewIntColumn(vals, nulls, value.KindInt)
	for _, k := range []int64{-5, 99, 100, 555, 1099, 1100, 5000} {
		for _, op := range allOps {
			got := c.FilterRange(13, 4990, op, k, nil)
			want := referenceFilter(c, 13, 4990, op, value.Int(k))
			if !eqSel(got, want) {
				t.Fatalf("int op=%d k=%d: got %d matches, want %d", op, k, len(got), len(want))
			}
		}
	}
}

func TestDictColumnFilterString(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	strs := make([]string, 3000)
	var uniq []string
	for i := range strs {
		strs[i] = fmt.Sprintf("v%03d", r.Intn(50))
	}
	seen := map[string]bool{}
	for _, s := range strs {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	dict := BuildDictionary(uniq)
	refs := make([]uint64, len(strs))
	nulls := NewBitset(len(strs))
	for i, s := range strs {
		id, _ := dict.Lookup(s)
		refs[i] = uint64(id)
		if r.Intn(30) == 0 {
			nulls.Set(i)
		}
	}
	c := &DictColumn{Dict: dict, Refs: PackUints(refs), Nulls: nulls}
	for _, lit := range []string{"v000", "v025", "v025x", "v049", "zzz", ""} {
		for _, op := range allOps {
			got := c.FilterString(5, 2995, op, lit, nil)
			want := referenceFilter(c, 5, 2995, op, value.String(lit))
			if !eqSel(got, want) {
				t.Fatalf("dict op=%d lit=%q: got %d matches, want %d", op, lit, len(got), len(want))
			}
		}
	}
}

func TestFloatColumnFilterRange(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	c := &FloatColumn{Vals: make([]float64, 2000), Nulls: NewBitset(2000)}
	for i := range c.Vals {
		c.Vals[i] = float64(r.Intn(100))
		if r.Intn(25) == 0 {
			c.Nulls.Set(i)
		}
	}
	for _, k := range []float64{-1, 0, 49.5, 50, 99, 200} {
		for _, op := range allOps {
			got := c.FilterRange(3, 1997, op, k, nil)
			want := referenceFilter(c, 3, 1997, op, value.Float(k))
			if !eqSel(got, want) {
				t.Fatalf("float op=%d k=%v: got %d matches, want %d", op, k, len(got), len(want))
			}
		}
	}
}

func TestRLEColumnFilterRange(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 40; i++ {
		run := value.String(fmt.Sprintf("s%02d", i%7))
		for j := 0; j < 50; j++ {
			vals = append(vals, run)
		}
	}
	vals[77] = value.Null // a NULL inside a run splits it and never matches
	c := NewRLEColumn(vals)
	for _, lit := range []string{"s00", "s03", "s06", "zzz"} {
		for _, op := range allOps {
			got := c.FilterRange(9, len(vals)-9, op, value.String(lit), nil)
			want := referenceFilter(c, 9, len(vals)-9, op, value.String(lit))
			if !eqSel(got, want) {
				t.Fatalf("rle op=%d lit=%q: got %d matches, want %d", op, lit, len(got), len(want))
			}
		}
	}
}

func TestSnapshotVisibleRange(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "a", Kind: value.KindInt}})
	rows := make([]value.Row, 100)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i))}
	}
	tbl.ApplyInsert(rows[:50], 5)
	tbl.ApplyInsert(rows[50:], 9)
	snap := tbl.Snapshot(6)
	got := snap.VisibleRange(0, snap.NumRows(), nil)
	want := snap.CollectVisible()
	if !eqSel(got, want) {
		t.Fatalf("VisibleRange disagrees with CollectVisible: %d vs %d rows", len(got), len(want))
	}
	// Sub-ranges concatenate to the full range.
	var parts []int
	parts = snap.VisibleRange(0, 30, parts)
	parts = snap.VisibleRange(30, snap.NumRows(), parts)
	if !eqSel(parts, want) {
		t.Fatal("split VisibleRange disagrees with full sweep")
	}
}
