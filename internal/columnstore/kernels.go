// Batch filter kernels over encoded main-storage columns. The vectorized
// executor drives these over morsels (fixed row ranges): each kernel
// appends matching row positions to a selection vector, operating directly
// on the encoded representation — dictionary value IDs instead of
// materialized strings, frame-of-reference codes instead of decoded
// int64s, whole RLE runs instead of per-row lookups — so a scan touches
// compressed data at memory speed and boxes only the surviving rows.
package columnstore

import (
	"sort"
	"sync/atomic"

	"repro/internal/value"
)

// CmpOp is a comparison operator understood by the batch filter kernels.
type CmpOp int

// The comparison operators. They mirror the SQL binary operators the
// planner marks as kernel-eligible.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// MatchOrd reports whether a comparison result c (as returned by
// value.Compare(v, lit)) satisfies the operator.
func (op CmpOp) MatchOrd(c int) bool {
	switch op {
	case CmpEQ:
		return c == 0
	case CmpNE:
		return c != 0
	case CmpLT:
		return c < 0
	case CmpLE:
		return c <= 0
	case CmpGT:
		return c > 0
	case CmpGE:
		return c >= 0
	}
	return false
}

// VisibleRange appends to sel the positions in [lo, hi) of rows visible to
// the snapshot and returns the extended slice. This is the per-morsel
// visibility pass of the vectorized scan: one linear sweep over the MVCC
// stamps instead of a virtual call per row.
func (s *Snapshot) VisibleRange(lo, hi int, sel []int) []int {
	created, deleted, ts := s.created, s.deleted, s.ts
	for i := lo; i < hi; i++ {
		if created[i] <= ts && atomic.LoadUint64(&deleted[i]) > ts {
			sel = append(sel, i)
		}
	}
	return sel
}

// UnpackRange decodes entries [lo, hi) into dst (reused when capacity
// allows), streaming through the packed words in order instead of
// re-deriving word/offset per entry as Get does.
func (b *BitPacked) UnpackRange(lo, hi int, dst []uint64) []uint64 {
	dst = dst[:0]
	if b.width == 0 {
		for i := lo; i < hi; i++ {
			dst = append(dst, 0)
		}
		return dst
	}
	mask := ^uint64(0)
	if b.width < 64 {
		mask = (1 << b.width) - 1
	}
	words, width := b.words, b.width
	bitPos := uint(lo) * width
	for i := lo; i < hi; i++ {
		word, off := bitPos>>6, bitPos&63
		v := words[word] >> off
		if off+width > 64 {
			v |= words[word+1] << (64 - off)
		}
		dst = append(dst, v&mask)
		bitPos += width
	}
	return dst
}

// FilterRange appends to sel every index in [lo, hi) whose packed value
// satisfies (op, k), streaming the decode like UnpackRange. Callers that
// need NULL semantics filter the survivors against their null bitmap.
func (b *BitPacked) FilterRange(lo, hi int, op CmpOp, k uint64, sel []int) []int {
	if b.width == 0 {
		if op.MatchOrd(compareUint(0, k)) {
			for i := lo; i < hi; i++ {
				sel = append(sel, i)
			}
		}
		return sel
	}
	mask := ^uint64(0)
	if b.width < 64 {
		mask = (1 << b.width) - 1
	}
	words, width := b.words, b.width
	bitPos := uint(lo) * width
	// One tight loop per operator: the branch on op stays outside the scan.
	switch op {
	case CmpEQ:
		for i := lo; i < hi; i++ {
			word, off := bitPos>>6, bitPos&63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			if v&mask == k {
				sel = append(sel, i)
			}
			bitPos += width
		}
	case CmpNE:
		for i := lo; i < hi; i++ {
			word, off := bitPos>>6, bitPos&63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			if v&mask != k {
				sel = append(sel, i)
			}
			bitPos += width
		}
	case CmpLT:
		for i := lo; i < hi; i++ {
			word, off := bitPos>>6, bitPos&63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			if v&mask < k {
				sel = append(sel, i)
			}
			bitPos += width
		}
	case CmpLE:
		for i := lo; i < hi; i++ {
			word, off := bitPos>>6, bitPos&63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			if v&mask <= k {
				sel = append(sel, i)
			}
			bitPos += width
		}
	case CmpGT:
		for i := lo; i < hi; i++ {
			word, off := bitPos>>6, bitPos&63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			if v&mask > k {
				sel = append(sel, i)
			}
			bitPos += width
		}
	case CmpGE:
		for i := lo; i < hi; i++ {
			word, off := bitPos>>6, bitPos&63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			if v&mask >= k {
				sel = append(sel, i)
			}
			bitPos += width
		}
	}
	return sel
}

func compareUint(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// FilterRange appends the positions in [lo, hi) whose value satisfies
// (op, k). The comparison runs in the frame-of-reference domain: k is
// rebased once and compared against the packed codes, never decoding to
// int64 per row. NULL rows never match.
func (c *IntColumn) FilterRange(lo, hi int, op CmpOp, k int64, sel []int) []int {
	t := k - c.Base
	maxRef := ^uint64(0)
	if w := c.Refs.Width(); w < 64 {
		maxRef = (1 << w) - 1
	}
	// Out-of-domain literals resolve per morsel, not per row.
	switch {
	case t < 0: // every stored value exceeds k
		switch op {
		case CmpNE, CmpGT, CmpGE:
			return c.appendNonNull(lo, hi, sel)
		default:
			return sel
		}
	case uint64(t) > maxRef: // every stored value is below k
		switch op {
		case CmpNE, CmpLT, CmpLE:
			return c.appendNonNull(lo, hi, sel)
		default:
			return sel
		}
	}
	start := len(sel)
	sel = c.Refs.FilterRange(lo, hi, op, uint64(t), sel)
	if c.Nulls != nil {
		out := sel[:start]
		for _, p := range sel[start:] {
			if !c.Nulls.Get(p) {
				out = append(out, p)
			}
		}
		sel = out
	}
	return sel
}

func (c *IntColumn) appendNonNull(lo, hi int, sel []int) []int {
	if c.Nulls == nil {
		for i := lo; i < hi; i++ {
			sel = append(sel, i)
		}
		return sel
	}
	for i := lo; i < hi; i++ {
		if !c.Nulls.Get(i) {
			sel = append(sel, i)
		}
	}
	return sel
}

// FilterString appends the positions in [lo, hi) whose string satisfies
// (op, lit). Because the dictionary is sorted, every operator reduces to a
// value-ID interval (or its complement for <>), so the scan compares
// bit-packed IDs and never materializes a string. NULL rows never match.
func (c *DictColumn) FilterString(lo, hi int, op CmpOp, lit string, sel []int) []int {
	d := c.Dict
	n := d.Len()
	if n == 0 {
		return sel
	}
	lb := d.LowerBound(lit)
	present := lb < n && d.Value(lb) == lit
	loID, hiID := 0, n-1
	switch op {
	case CmpEQ:
		if !present {
			return sel
		}
		loID, hiID = lb, lb
	case CmpNE:
		if present {
			return c.filterIDNot(lo, hi, uint64(lb), sel)
		}
		// literal absent: every non-NULL row matches; keep the full interval
	case CmpLT:
		hiID = lb - 1
	case CmpLE:
		if present {
			hiID = lb
		} else {
			hiID = lb - 1
		}
	case CmpGT:
		if present {
			loID = lb + 1
		} else {
			loID = lb
		}
	case CmpGE:
		loID = lb
	}
	if loID > hiID {
		return sel
	}
	return c.filterIDRange(lo, hi, uint64(loID), uint64(hiID), sel)
}

func (c *DictColumn) filterIDRange(lo, hi int, loID, hiID uint64, sel []int) []int {
	start := len(sel)
	if loID == hiID {
		sel = c.Refs.FilterRange(lo, hi, CmpEQ, loID, sel)
	} else {
		sel = c.Refs.FilterRange(lo, hi, CmpGE, loID, sel)
		out := sel[:start]
		for _, p := range sel[start:] {
			if c.Refs.Get(p) <= hiID {
				out = append(out, p)
			}
		}
		sel = out
	}
	if c.Nulls != nil {
		out := sel[:start]
		for _, p := range sel[start:] {
			if !c.Nulls.Get(p) {
				out = append(out, p)
			}
		}
		sel = out
	}
	return sel
}

func (c *DictColumn) filterIDNot(lo, hi int, ex uint64, sel []int) []int {
	start := len(sel)
	sel = c.Refs.FilterRange(lo, hi, CmpNE, ex, sel)
	if c.Nulls != nil {
		out := sel[:start]
		for _, p := range sel[start:] {
			if !c.Nulls.Get(p) {
				out = append(out, p)
			}
		}
		sel = out
	}
	return sel
}

// FilterRange appends the positions in [lo, hi) whose float satisfies
// (op, k). Floats are stored flat, so this is a straight slice sweep.
// NULL rows never match.
func (c *FloatColumn) FilterRange(lo, hi int, op CmpOp, k float64, sel []int) []int {
	start := len(sel)
	vals := c.Vals
	switch op {
	case CmpEQ:
		for i := lo; i < hi; i++ {
			if vals[i] == k {
				sel = append(sel, i)
			}
		}
	case CmpNE:
		for i := lo; i < hi; i++ {
			if vals[i] != k {
				sel = append(sel, i)
			}
		}
	case CmpLT:
		for i := lo; i < hi; i++ {
			if vals[i] < k {
				sel = append(sel, i)
			}
		}
	case CmpLE:
		for i := lo; i < hi; i++ {
			if vals[i] <= k {
				sel = append(sel, i)
			}
		}
	case CmpGT:
		for i := lo; i < hi; i++ {
			if vals[i] > k {
				sel = append(sel, i)
			}
		}
	case CmpGE:
		for i := lo; i < hi; i++ {
			if vals[i] >= k {
				sel = append(sel, i)
			}
		}
	}
	if c.Nulls != nil {
		out := sel[:start]
		for _, p := range sel[start:] {
			if !c.Nulls.Get(p) {
				out = append(out, p)
			}
		}
		sel = out
	}
	return sel
}

// FilterRange appends the positions in [lo, hi) whose value satisfies
// (op, lit), evaluating the predicate once per run and emitting or
// skipping runs wholesale — the per-row binary search of Get never runs.
// NULL runs never match.
func (c *RLEColumn) FilterRange(lo, hi int, op CmpOp, lit value.Value, sel []int) []int {
	if lo >= hi || c.n == 0 {
		return sel
	}
	k := sort.SearchInts(c.Ends, lo+1)
	start := lo
	for ; k < len(c.Ends) && start < hi; k++ {
		end := c.Ends[k]
		if end > hi {
			end = hi
		}
		if v := c.Values[k]; !v.IsNull() && op.MatchOrd(value.Compare(v, lit)) {
			for i := start; i < end; i++ {
				sel = append(sel, i)
			}
		}
		start = c.Ends[k]
	}
	return sel
}
