package columnstore

import "sort"

// Dictionary is the sorted, immutable string dictionary of a main-storage
// column. Value IDs are positions in sorted order, so range predicates on
// strings translate to integer range predicates on value IDs.
type Dictionary struct {
	values []string
}

// NewDictionary builds a dictionary from already-sorted, de-duplicated
// values. The caller retains no reference to the slice.
func NewDictionary(sorted []string) *Dictionary { return &Dictionary{values: sorted} }

// BuildDictionary sorts and de-duplicates vals into a dictionary.
func BuildDictionary(vals []string) *Dictionary {
	sorted := append([]string(nil), vals...)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return &Dictionary{values: out}
}

// Len returns the number of distinct values.
func (d *Dictionary) Len() int { return len(d.values) }

// Value returns the string at value ID id.
func (d *Dictionary) Value(id int) string { return d.values[id] }

// Lookup returns the value ID of s and whether it exists.
func (d *Dictionary) Lookup(s string) (int, bool) {
	i := sort.SearchStrings(d.values, s)
	if i < len(d.values) && d.values[i] == s {
		cDictHits.Inc()
		return i, true
	}
	cDictMisses.Inc()
	return i, false
}

// LowerBound returns the first value ID whose string is >= s.
func (d *Dictionary) LowerBound(s string) int { return sort.SearchStrings(d.values, s) }

// Bytes returns the approximate heap footprint of the dictionary.
func (d *Dictionary) Bytes() int {
	n := len(d.values) * 16 // string headers
	for _, v := range d.values {
		n += len(v)
	}
	return n
}

// Max returns the lexicographically largest value, or "" when empty.
func (d *Dictionary) Max() string {
	if len(d.values) == 0 {
		return ""
	}
	return d.values[len(d.values)-1]
}

// DeltaDict is the unsorted, append-only dictionary of a delta-store
// column. New values get the next free ID in arrival order; the merge
// phase folds them into the sorted main dictionary.
type DeltaDict struct {
	values []string
	index  map[string]int
}

// NewDeltaDict returns an empty delta dictionary.
func NewDeltaDict() *DeltaDict {
	return &DeltaDict{index: make(map[string]int)}
}

// view returns a read-only copy of the dictionary's current state for
// snapshot readers; the live dictionary keeps growing underneath. The
// view carries no index map — snapshot readers only resolve IDs to
// values, never intern.
func (d *DeltaDict) view() *DeltaDict { return &DeltaDict{values: d.values} }

// Add interns s and returns its delta value ID.
func (d *DeltaDict) Add(s string) int {
	if id, ok := d.index[s]; ok {
		return id
	}
	id := len(d.values)
	d.values = append(d.values, s)
	d.index[s] = id
	return id
}

// Lookup returns the delta value ID of s, if present.
func (d *DeltaDict) Lookup(s string) (int, bool) {
	id, ok := d.index[s]
	return id, ok
}

// Value returns the string behind delta value ID id.
func (d *DeltaDict) Value(id int) string { return d.values[id] }

// Len returns the number of distinct delta values.
func (d *DeltaDict) Len() int { return len(d.values) }

// Values returns the backing slice (arrival order); callers must not
// mutate it.
func (d *DeltaDict) Values() []string { return d.values }

// mergeDictionaries unions a sorted main dictionary with an unsorted delta
// dictionary. It returns the merged dictionary, a remap table for old main
// IDs (nil when main IDs are unchanged), a remap table for delta IDs, and
// whether the main portion had to be resorted/remapped.
//
// Fast path (§III application knowledge): when every delta value sorts
// strictly after the current main maximum — the case for generated,
// monotonically increasing keys — the delta values are appended after the
// main values and all existing main references stay valid.
func mergeDictionaries(main *Dictionary, delta *DeltaDict) (merged *Dictionary, mainRemap, deltaRemap []int, resorted bool) {
	deltaSorted := append([]string(nil), delta.Values()...)
	sort.Strings(deltaSorted)
	// De-duplicate the sorted delta values.
	uniq := deltaSorted[:0]
	for i, v := range deltaSorted {
		if i == 0 || v != deltaSorted[i-1] {
			uniq = append(uniq, v)
		}
	}

	appendOnly := main.Len() == 0 || len(uniq) == 0 || uniq[0] > main.Max()
	if appendOnly {
		vals := make([]string, 0, main.Len()+len(uniq))
		vals = append(vals, main.values...)
		vals = append(vals, uniq...)
		merged = NewDictionary(vals)
		deltaRemap = make([]int, delta.Len())
		for oldID, s := range delta.Values() {
			id, _ := merged.Lookup(s)
			deltaRemap[oldID] = id
		}
		return merged, nil, deltaRemap, false
	}

	// General path: two-way merge of the sorted sequences.
	vals := make([]string, 0, main.Len()+len(uniq))
	mainRemap = make([]int, main.Len())
	i, j := 0, 0
	for i < main.Len() || j < len(uniq) {
		switch {
		case j >= len(uniq) || (i < main.Len() && main.values[i] <= uniq[j]):
			if j < len(uniq) && main.values[i] == uniq[j] {
				j++ // same value arrives from both sides
			}
			mainRemap[i] = len(vals)
			vals = append(vals, main.values[i])
			i++
		default:
			vals = append(vals, uniq[j])
			j++
		}
	}
	merged = NewDictionary(vals)
	deltaRemap = make([]int, delta.Len())
	for oldID, s := range delta.Values() {
		id, _ := merged.Lookup(s)
		deltaRemap[oldID] = id
	}
	// The main remap may still be the identity if every delta value was a
	// duplicate of an existing main value.
	identity := true
	for id, nid := range mainRemap {
		if id != nid {
			identity = false
			break
		}
	}
	if identity {
		mainRemap = nil
	}
	return merged, mainRemap, deltaRemap, mainRemap != nil
}
