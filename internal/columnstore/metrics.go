package columnstore

import "repro/internal/stats"

// The column store has no plumbing path for a per-instance registry
// (tables are created deep inside engines), so it reports into the
// process-wide default registry. Counters are cached at package level:
// the hot paths pay one atomic add, never a registry lookup.
var (
	cSnapshots  = stats.Default.Counter("columnstore_snapshots_total")
	cDictHits   = stats.Default.Counter("columnstore_dict_hits_total")
	cDictMisses = stats.Default.Counter("columnstore_dict_misses_total")
	cMerges     = stats.Default.Counter("columnstore_merges_total")
)
