// Tier support: the reader-capability interfaces the executors specialize
// on (instead of type-switching on concrete column structs), the zone-map
// synopsis the planner prunes warm partitions with, and the raw accessors
// the extended store needs to serialize encoded columns page by page.
//
// The capability methods carry distinct names (FilterInts/FilterFloats/
// FilterValues) because the concrete columns already overload FilterRange
// with per-type literal arguments; the aliases below forward to those
// kernels so hot columns and paged warm columns satisfy the same
// interfaces.
package columnstore

import (
	"fmt"

	"repro/internal/value"
)

// IntFilterer is a column that can run the integer comparison kernel over
// a row range, appending matching positions to sel. NULL rows never match.
type IntFilterer interface {
	FilterInts(lo, hi int, op CmpOp, k int64, sel []int) []int
}

// FloatFilterer is the float64 counterpart of IntFilterer.
type FloatFilterer interface {
	FilterFloats(lo, hi int, op CmpOp, k float64, sel []int) []int
}

// StringFilterer is a column that can run string comparison kernels
// (dictionary-order interval scans for hot columns).
type StringFilterer interface {
	FilterString(lo, hi int, op CmpOp, lit string, sel []int) []int
}

// ValueFilterer is the generic boxed-value kernel (RLE columns compare
// whole runs; any literal kind is accepted).
type ValueFilterer interface {
	FilterValues(lo, hi int, op CmpOp, lit value.Value, sel []int) []int
}

// DictIndexed is a string column with one table-wide sorted dictionary:
// the compiled executor's string-equality fast path compares value IDs
// instead of strings. Paged warm columns use per-chunk dictionaries and
// deliberately do NOT implement this.
type DictIndexed interface {
	LookupID(s string) (int, bool)
	IDAt(i int) int
	IsNull(i int) bool
}

// KeyCoder translates row positions of a string column into canonical
// int64 join/group keys without boxing a value per row. intern maps a
// decoded string to its canonical key and is called at most once per
// distinct dictionary entry per call (the late-materialization contract:
// the per-row work is an integer remap, decode happens once per distinct
// value). NULL rows yield nullKey. Keys append to out, one per position
// in sel, in order.
type KeyCoder interface {
	CodeKeys(sel []int, intern func(string) int64, nullKey int64, out []int64) []int64
}

// RunFolder exposes run-granular iteration for run-length-aware
// aggregation: fn observes each maximal run of identical values clipped
// to [lo, hi), in ascending row order. Aggregates consume whole runs
// (count × value) instead of expanding them row by row.
type RunFolder interface {
	FoldRuns(lo, hi int, fn func(v value.Value, start, end int))
}

// FilterInts aliases IntColumn.FilterRange under the capability name.
func (c *IntColumn) FilterInts(lo, hi int, op CmpOp, k int64, sel []int) []int {
	return c.FilterRange(lo, hi, op, k, sel)
}

// FilterFloats aliases FloatColumn.FilterRange under the capability name.
func (c *FloatColumn) FilterFloats(lo, hi int, op CmpOp, k float64, sel []int) []int {
	return c.FilterRange(lo, hi, op, k, sel)
}

// FilterValues aliases RLEColumn.FilterRange under the capability name.
func (c *RLEColumn) FilterValues(lo, hi int, op CmpOp, lit value.Value, sel []int) []int {
	return c.FilterRange(lo, hi, op, lit, sel)
}

// LookupID aliases Dict.Lookup for the DictIndexed capability.
func (c *DictColumn) LookupID(s string) (int, bool) { return c.Dict.Lookup(s) }

// IDAt aliases ValueID for the DictIndexed capability.
func (c *DictColumn) IDAt(i int) int { return c.ValueID(i) }

// --- Zone maps -------------------------------------------------------------

// ColumnZone is the per-column synopsis of a warm partition: min/max over
// non-NULL values plus value and NULL counts, computed over every physical
// row at demotion time (a conservative superset of any snapshot's visible
// rows, so pruning with it can never drop a matching row).
type ColumnZone struct {
	Min, Max value.Value
	Count    int // non-NULL rows
	Nulls    int
}

// ZoneMap is the partition synopsis the planner consults before faulting
// any page. Rows and Merges stamp the table state the map was built from;
// a mismatch (new inserts or a merge since demotion) invalidates the map.
type ZoneMap struct {
	Cols   []ColumnZone
	Rows   int
	Merges int
}

// BuildZoneMap computes the synopsis over all physical rows of a snapshot
// (visible or not — MVCC-dead rows only widen the bounds).
func BuildZoneMap(s *Snapshot) *ZoneMap {
	z := &ZoneMap{Cols: make([]ColumnZone, len(s.Schema())), Rows: s.NumRows()}
	for c := range z.Cols {
		cz := &z.Cols[c]
		for i := 0; i < s.NumRows(); i++ {
			v := s.Get(c, i)
			if v.IsNull() {
				cz.Nulls++
				continue
			}
			if cz.Count == 0 || value.Compare(v, cz.Min) < 0 {
				cz.Min = v
			}
			if cz.Count == 0 || value.Compare(v, cz.Max) > 0 {
				cz.Max = v
			}
			cz.Count++
		}
	}
	return z
}

// --- Raw codec accessors ---------------------------------------------------
//
// The extended store serializes the encoded representations verbatim; these
// constructors and accessors expose just enough of the unexported physical
// state to round-trip a column without re-encoding it.

// Words returns the packed backing words (callers must not mutate).
func (b *BitPacked) Words() []uint64 { return b.words }

// NewBitPackedFromWords reassembles a packed vector from its physical
// parts, as produced by Words/Width/Len.
func NewBitPackedFromWords(words []uint64, width uint, n int) *BitPacked {
	return &BitPacked{words: words, width: width, n: n}
}

// Words returns the bitmap backing words (callers must not mutate).
func (s *Bitset) Words() []uint64 { return s.words }

// NewBitsetFromWords reassembles a bitset from its physical parts.
func NewBitsetFromWords(words []uint64, n int) *Bitset {
	return &Bitset{words: words, n: n}
}

// NewIntColumnFromParts reassembles a frame-of-reference column from its
// physical parts without re-deriving the base.
func NewIntColumnFromParts(base int64, refs *BitPacked, nulls *Bitset, kind value.Kind) *IntColumn {
	return &IntColumn{Base: base, Refs: refs, Nulls: nulls, kind: kind}
}

// NewRLEColumnFromParts reassembles an RLE column from its run table.
func NewRLEColumnFromParts(ends []int, vals []value.Value, n int) *RLEColumn {
	return &RLEColumn{Ends: ends, Values: vals, n: n}
}

// ReplaceMain swaps the main-storage columns for alternative physical
// representations of the same logical rows (the demote/promote paths swap
// in-memory encodings for paged warm columns and back). Every replacement
// must cover exactly the current main row count; the delta store, MVCC
// stamps and schema are untouched. Snapshots taken before the swap keep
// reading the old columns.
func (t *Table) ReplaceMain(cols []MainColumn) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(cols) != len(t.schema) {
		return fmt.Errorf("columnstore: ReplaceMain on %s: %d columns, schema has %d", t.name, len(cols), len(t.schema))
	}
	for i, c := range cols {
		if c.Len() != t.mainRows {
			return fmt.Errorf("columnstore: ReplaceMain on %s: column %s has %d rows, main has %d",
				t.name, t.schema[i].Name, c.Len(), t.mainRows)
		}
	}
	t.main = cols
	return nil
}
