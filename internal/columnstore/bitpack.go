// Package columnstore implements the main-memory column store at the base
// of the ecosystem: sorted dictionary encoding, bit-packed value vectors,
// run-length and sparse columns, a write-optimized delta store, and the
// delta→main merge with dictionary resorting (plus the application-aware
// stable-key fast path described in §III of the paper).
package columnstore

import "math/bits"

// BitPacked is an immutable vector of unsigned integers packed at the
// minimal bit width. It is the physical representation of dictionary value
// IDs and frame-of-reference encoded integers in main storage.
type BitPacked struct {
	words []uint64
	width uint // bits per entry, 0..64 (0 = all values are zero)
	n     int
}

// PackUints packs vals at the minimal width that fits max(vals).
func PackUints(vals []uint64) *BitPacked {
	var maxV uint64
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	width := uint(bits.Len64(maxV))
	bp := &BitPacked{width: width, n: len(vals)}
	if width == 0 {
		return bp
	}
	bp.words = make([]uint64, (len(vals)*int(width)+63)/64)
	for i, v := range vals {
		bp.set(i, v)
	}
	return bp
}

func (b *BitPacked) set(i int, v uint64) {
	bitPos := uint(i) * b.width
	word := bitPos >> 6
	off := bitPos & 63
	b.words[word] |= v << off
	if off+b.width > 64 {
		b.words[word+1] |= v >> (64 - off)
	}
}

// Get returns entry i.
func (b *BitPacked) Get(i int) uint64 {
	if b.width == 0 {
		return 0
	}
	bitPos := uint(i) * b.width
	word := bitPos >> 6
	off := bitPos & 63
	v := b.words[word] >> off
	if off+b.width > 64 {
		v |= b.words[word+1] << (64 - off)
	}
	if b.width == 64 {
		return v
	}
	return v & ((1 << b.width) - 1)
}

// Len returns the number of entries.
func (b *BitPacked) Len() int { return b.n }

// Width returns the bits used per entry.
func (b *BitPacked) Width() uint { return b.width }

// Bytes returns the heap footprint of the packed words.
func (b *BitPacked) Bytes() int { return len(b.words) * 8 }

// Unpack materializes all entries into a fresh slice.
func (b *BitPacked) Unpack() []uint64 {
	out := make([]uint64, b.n)
	for i := range out {
		out[i] = b.Get(i)
	}
	return out
}

// Bitset is a simple growable bitmap used for null tracking and row
// visibility marks.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset sized for n bits, all zero.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Set sets bit i, growing the bitset if needed.
func (s *Bitset) Set(i int) {
	s.ensure(i)
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s *Bitset) Clear(i int) {
	s.ensure(i)
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set. Out-of-range bits read as zero.
func (s *Bitset) Get(i int) bool {
	if i < 0 || i>>6 >= len(s.words) {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Len returns the logical size in bits.
func (s *Bitset) Len() int { return s.n }

// Count returns the number of set bits.
func (s *Bitset) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Bitset) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Bytes returns the heap footprint.
func (s *Bitset) Bytes() int { return len(s.words) * 8 }

func (s *Bitset) ensure(i int) {
	if i >= s.n {
		s.n = i + 1
	}
	if w := i >> 6; w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
}
