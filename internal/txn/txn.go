// Package txn implements the transaction layer of the in-memory store:
// MVCC snapshot isolation with first-committer-wins write-write conflict
// detection, a monotonic commit clock, and tracking of the oldest active
// snapshot (the merge watermark for the column store's delta→main merge).
//
// The paper (§II-A) positions SAP HANA as "a fully ACID compliant
// relational database"; this package provides the A, C and I — durability
// is layered on by package wal, and the relaxed, availability-favoring
// model of the scale-out extension lives in package soe.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// ErrConflict is returned by Commit when another transaction deleted or
// updated a row this transaction also deleted or updated.
var ErrConflict = errors.New("txn: write-write conflict, transaction aborted")

// ErrClosed is returned when operating on a finished transaction.
var ErrClosed = errors.New("txn: transaction already committed or aborted")

// CommitListener observes committed write sets; the WAL and the streaming
// engine subscribe to it.
type CommitListener func(commitTS uint64, writes []Write)

// WriteKind discriminates the operations in a write set.
type WriteKind uint8

// The write-set operation kinds.
const (
	WriteInsert WriteKind = iota
	WriteDelete
)

// Write is one operation of a transaction's write set. For inserts, Row
// holds the payload and Pos the position assigned at commit. For deletes,
// Pos is the victim row.
type Write struct {
	Kind  WriteKind
	Table string
	Row   value.Row
	Pos   int
}

// Manager coordinates transactions over a set of column-store tables.
type Manager struct {
	mu        sync.Mutex
	clock     atomic.Uint64  // last issued timestamp
	active    map[uint64]int // snapshot TS -> number of active txns using it
	tables    map[string]*columnstore.Table
	listeners []CommitListener
	nextID    atomic.Uint64

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// NewManager returns a Manager with an empty table registry. The clock
// starts at 1 so that bulk loads at ts 1 are visible to all transactions.
func NewManager() *Manager {
	m := &Manager{
		active: make(map[uint64]int),
		tables: make(map[string]*columnstore.Table),
	}
	m.clock.Store(1)
	return m
}

// Register makes a table visible to the transaction layer.
func (m *Manager) Register(t *columnstore.Table) {
	m.mu.Lock()
	m.tables[t.Name()] = t
	m.mu.Unlock()
}

// Deregister removes a table (DROP TABLE).
func (m *Manager) Deregister(name string) {
	m.mu.Lock()
	delete(m.tables, name)
	m.mu.Unlock()
}

// Table returns a registered table.
func (m *Manager) Table(name string) (*columnstore.Table, bool) {
	m.mu.Lock()
	t, ok := m.tables[name]
	m.mu.Unlock()
	return t, ok
}

// OnCommit registers a commit listener (e.g. the WAL appender).
func (m *Manager) OnCommit(l CommitListener) {
	m.mu.Lock()
	m.listeners = append(m.listeners, l)
	m.mu.Unlock()
}

// Now returns the current commit clock value; snapshots taken at Now see
// all committed transactions.
func (m *Manager) Now() uint64 { return m.clock.Load() }

// AdvanceTo moves the clock forward to at least ts; used by recovery and
// by replicas applying a shared log.
func (m *Manager) AdvanceTo(ts uint64) {
	for {
		cur := m.clock.Load()
		if cur >= ts || m.clock.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// MinActiveTS returns the oldest snapshot any live transaction may read —
// the watermark below which the column store may compact dead versions.
func (m *Manager) MinActiveTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	min := m.clock.Load()
	for ts := range m.active {
		if ts < min {
			min = ts
		}
	}
	return min
}

// Stats returns the number of committed and aborted transactions.
func (m *Manager) Stats() (commits, aborts uint64) {
	return m.commits.Load(), m.aborts.Load()
}

// Begin starts a transaction reading at the current clock.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	snap := m.clock.Load()
	m.active[snap]++
	m.mu.Unlock()
	return &Txn{
		m:       m,
		id:      m.nextID.Add(1),
		snapTS:  snap,
		deletes: make(map[string]map[int]bool),
	}
}

// Txn is one transaction: a snapshot timestamp plus a buffered write set.
// Reads go through Snapshot views overlaid with the transaction's own
// uncommitted writes (read-your-own-writes).
type Txn struct {
	m      *Manager
	id     uint64
	snapTS uint64
	done   bool

	writes  []Write
	deletes map[string]map[int]bool // table -> victim positions
	inserts map[string][]value.Row  // lazy; kept in writes order too
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// SnapshotTS returns the transaction's read timestamp.
func (t *Txn) SnapshotTS() uint64 { return t.snapTS }

// Insert buffers rows for insertion into the named table.
func (t *Txn) Insert(table string, rows ...value.Row) error {
	if t.done {
		return ErrClosed
	}
	if _, ok := t.m.Table(table); !ok {
		return fmt.Errorf("txn: unknown table %q", table)
	}
	for _, r := range rows {
		t.writes = append(t.writes, Write{Kind: WriteInsert, Table: table, Row: r.Clone()})
	}
	return nil
}

// Delete buffers the deletion of row pos of the named table. The conflict
// check happens at commit (first committer wins).
func (t *Txn) Delete(table string, pos int) error {
	if t.done {
		return ErrClosed
	}
	if _, ok := t.m.Table(table); !ok {
		return fmt.Errorf("txn: unknown table %q", table)
	}
	if t.deletes[table] == nil {
		t.deletes[table] = make(map[int]bool)
	}
	if t.deletes[table][pos] {
		return nil // idempotent within the transaction
	}
	t.deletes[table][pos] = true
	t.writes = append(t.writes, Write{Kind: WriteDelete, Table: table, Pos: pos})
	return nil
}

// Update replaces row pos of the named table with newRow: MVCC delete plus
// insert, the column-store idiom for updates.
func (t *Txn) Update(table string, pos int, newRow value.Row) error {
	if err := t.Delete(table, pos); err != nil {
		return err
	}
	return t.Insert(table, newRow)
}

// View returns a read view of the named table combining the transaction's
// snapshot with its own uncommitted writes.
func (t *Txn) View(table string) (*View, error) {
	tab, ok := t.m.Table(table)
	if !ok {
		return nil, fmt.Errorf("txn: unknown table %q", table)
	}
	v := &View{snap: tab.Snapshot(t.snapTS), txn: t, table: table}
	return v, nil
}

// Commit applies the write set atomically at a fresh commit timestamp.
// On conflict every stamped delete is rolled back is impossible under
// first-committer-wins — conflicts are detected before any stamp is
// placed, by re-checking victim liveness under the global commit mutex.
func (t *Txn) Commit() (uint64, error) {
	if t.done {
		return 0, ErrClosed
	}
	t.done = true
	m := t.m

	m.mu.Lock()
	// Read-only fast path.
	if len(t.writes) == 0 {
		m.release(t.snapTS)
		m.mu.Unlock()
		m.commits.Add(1)
		return m.clock.Load(), nil
	}

	// Validate deletes: victim must still be live (not deleted by a
	// transaction that committed after our snapshot — or before it, which
	// our own View would have filtered anyway).
	for table, victims := range t.deletes {
		tab := m.tables[table]
		if tab == nil {
			m.release(t.snapTS)
			m.mu.Unlock()
			m.aborts.Add(1)
			return 0, fmt.Errorf("txn: table %q dropped", table)
		}
		latest := tab.Snapshot(m.clock.Load())
		for pos := range victims {
			if !latest.Visible(pos) {
				m.release(t.snapTS)
				m.mu.Unlock()
				m.aborts.Add(1)
				return 0, ErrConflict
			}
		}
	}

	commitTS := m.clock.Add(1)

	// Apply: group inserts per table to amortize locking, stamp deletes.
	byTable := make(map[string][]value.Row)
	var order []string
	for _, w := range t.writes {
		if w.Kind == WriteInsert {
			if _, seen := byTable[w.Table]; !seen {
				order = append(order, w.Table)
			}
			byTable[w.Table] = append(byTable[w.Table], w.Row)
		}
	}
	sort.Strings(order)
	posOut := make(map[string][]int)
	for _, table := range order {
		posOut[table] = m.tables[table].ApplyInsert(byTable[table], commitTS)
	}
	next := make(map[string]int)
	for i := range t.writes {
		w := &t.writes[i]
		switch w.Kind {
		case WriteInsert:
			w.Pos = posOut[w.Table][next[w.Table]]
			next[w.Table]++
		case WriteDelete:
			if !m.tables[w.Table].ApplyDelete(w.Pos, commitTS) {
				// Cannot happen: liveness was validated under m.mu and
				// stamps are only placed by committers holding m.mu.
				panic("txn: delete conflict after validation")
			}
		}
	}
	m.release(t.snapTS)
	listeners := append([]CommitListener(nil), m.listeners...)
	writes := t.writes
	m.mu.Unlock()

	m.commits.Add(1)
	for _, l := range listeners {
		l(commitTS, writes)
	}
	return commitTS, nil
}

// Abort discards the transaction's buffered writes.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.m.mu.Lock()
	t.m.release(t.snapTS)
	t.m.mu.Unlock()
	t.m.aborts.Add(1)
}

// release decrements the active-snapshot refcount; caller holds m.mu.
func (m *Manager) release(snapTS uint64) {
	if n := m.active[snapTS]; n <= 1 {
		delete(m.active, snapTS)
	} else {
		m.active[snapTS] = n - 1
	}
}

// View is a transaction-consistent read view over one table: the MVCC
// snapshot plus the transaction's uncommitted writes.
type View struct {
	snap  *columnstore.Snapshot
	txn   *Txn
	table string
}

// Snapshot exposes the underlying storage snapshot (committed data only);
// executors use it for fast columnar scans and then overlay OwnWrites.
func (v *View) Snapshot() *columnstore.Snapshot { return v.snap }

// Visible reports whether committed row pos is visible, accounting for
// the transaction's own uncommitted deletes.
func (v *View) Visible(pos int) bool {
	if v.txn.deletes[v.table][pos] {
		return false
	}
	return v.snap.Visible(pos)
}

// Get reads column col of committed row pos.
func (v *View) Get(col, pos int) value.Value { return v.snap.Get(col, pos) }

// OwnInserts returns the rows this transaction has buffered for the table,
// in insertion order.
func (v *View) OwnInserts() []value.Row {
	var out []value.Row
	for _, w := range v.txn.writes {
		if w.Kind == WriteInsert && w.Table == v.table {
			out = append(out, w.Row)
		}
	}
	return out
}

// NumRows returns the committed row slot count.
func (v *View) NumRows() int { return v.snap.NumRows() }

// RunInTxn executes fn in a transaction, committing on nil error and
// retrying once on write-write conflict.
func (m *Manager) RunInTxn(fn func(t *Txn) error) (uint64, error) {
	for attempt := 0; ; attempt++ {
		t := m.Begin()
		if err := fn(t); err != nil {
			t.Abort()
			return 0, err
		}
		ts, err := t.Commit()
		if err == nil {
			return ts, nil
		}
		if !errors.Is(err, ErrConflict) || attempt >= 1 {
			return 0, err
		}
	}
}
