// Package txn implements the transaction layer of the in-memory store:
// MVCC snapshot isolation with first-committer-wins write-write conflict
// detection, a monotonic commit clock, and tracking of the oldest active
// snapshot (the merge watermark for the column store's delta→main merge).
//
// The commit pipeline is built for write scale. Committers validate their
// delete sets under per-table latches (not a global mutex), then enqueue
// into a group-commit batch: one committer becomes the leader, assigns a
// contiguous timestamp range to the whole batch under a single clock bump,
// lets every member apply its own write set concurrently (disjoint tables
// in parallel), publishes the clock once all applies land, and hands the
// batch to the WAL as one append with one flush+fsync. Merges renumber
// row positions, so they run as exclusive jobs between batches through
// the same pipeline — see RunExclusive and merge.go for the background
// merge daemon.
//
// The paper (§II-A) positions SAP HANA as "a fully ACID compliant
// relational database"; this package provides the A, C and I — durability
// is layered on by package wal, and the relaxed, availability-favoring
// model of the scale-out extension lives in package soe.
package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// ErrConflict is returned by Commit when another transaction deleted or
// updated a row this transaction also deleted or updated, or when a
// delta→main merge renumbered positions the transaction had observed.
var ErrConflict = errors.New("txn: write-write conflict, transaction aborted")

// ErrClosed is returned when operating on a finished transaction.
var ErrClosed = errors.New("txn: transaction already committed or aborted")

// CommitListener observes committed write sets one transaction at a time;
// the streaming engine and the text indexer subscribe to it. Listeners run
// on the group-commit leader goroutine in commit-timestamp order.
type CommitListener func(commitTS uint64, writes []Write)

// GroupCommit is one transaction of a published group-commit batch.
type GroupCommit struct {
	TS     uint64
	Writes []Write
}

// GroupCommitListener observes whole group-commit batches (ascending TS).
// The WAL subscribes here so a batch of N commits costs one append with
// one flush and one fsync instead of N.
type GroupCommitListener func(batch []GroupCommit)

// WriteKind discriminates the operations in a write set.
type WriteKind uint8

// The write-set operation kinds.
const (
	WriteInsert WriteKind = iota
	WriteDelete
)

// Write is one operation of a transaction's write set. For inserts, Row
// holds the payload and Pos the position assigned at commit. For deletes,
// Pos is the victim row.
type Write struct {
	Kind  WriteKind
	Table string
	Row   value.Row
	Pos   int
}

// Manager coordinates transactions over a set of column-store tables.
type Manager struct {
	mu        sync.Mutex
	clock     atomic.Uint64  // last published timestamp
	active    map[uint64]int // snapshot TS -> number of active txns using it
	tables    map[string]*columnstore.Table
	latches   map[string]*sync.Mutex // per-table apply latches
	listeners []CommitListener
	groupLs   []GroupCommitListener
	nextID    atomic.Uint64

	// SerialCommits forces every commit through one global mutex,
	// degenerating group commit to batches of one. It reproduces the
	// pre-pipeline serialized behavior and exists as the baseline for the
	// commit-throughput benchmarks; leave it false in production paths.
	SerialCommits bool
	serialMu      sync.Mutex

	gcMu    sync.Mutex
	gcQueue []*gcJob
	gcLead  bool

	commits   atomic.Uint64
	aborts    atomic.Uint64
	conflicts atomic.Uint64
}

// NewManager returns a Manager with an empty table registry. The clock
// starts at 1 so that bulk loads at ts 1 are visible to all transactions.
func NewManager() *Manager {
	m := &Manager{
		active:  make(map[uint64]int),
		tables:  make(map[string]*columnstore.Table),
		latches: make(map[string]*sync.Mutex),
	}
	m.clock.Store(1)
	return m
}

// Register makes a table visible to the transaction layer.
func (m *Manager) Register(t *columnstore.Table) {
	m.mu.Lock()
	m.tables[t.Name()] = t
	m.mu.Unlock()
}

// Deregister removes a table (DROP TABLE). The table's latch survives so
// in-flight committers and merge jobs holding it stay sound.
func (m *Manager) Deregister(name string) {
	m.mu.Lock()
	delete(m.tables, name)
	m.mu.Unlock()
}

// Table returns a registered table.
func (m *Manager) Table(name string) (*columnstore.Table, bool) {
	m.mu.Lock()
	t, ok := m.tables[name]
	m.mu.Unlock()
	return t, ok
}

// TableNames returns the names of all registered tables, sorted.
func (m *Manager) TableNames() []string {
	m.mu.Lock()
	names := make([]string, 0, len(m.tables))
	for name := range m.tables {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	return names
}

// OnCommit registers a per-transaction commit listener (e.g. the
// streaming engine or the text indexer).
func (m *Manager) OnCommit(l CommitListener) {
	m.mu.Lock()
	m.listeners = append(m.listeners, l)
	m.mu.Unlock()
}

// OnCommitGroup registers a batch listener (e.g. the WAL group appender).
func (m *Manager) OnCommitGroup(l GroupCommitListener) {
	m.mu.Lock()
	m.groupLs = append(m.groupLs, l)
	m.mu.Unlock()
}

// Now returns the current commit clock value; snapshots taken at Now see
// all committed transactions.
func (m *Manager) Now() uint64 { return m.clock.Load() }

// AdvanceTo moves the clock forward to at least ts; used by recovery and
// by replicas applying a shared log.
func (m *Manager) AdvanceTo(ts uint64) {
	for {
		cur := m.clock.Load()
		if cur >= ts || m.clock.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// MinActiveTS returns the oldest snapshot any live transaction may read —
// the watermark below which the column store may compact dead versions.
func (m *Manager) MinActiveTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	min := m.clock.Load()
	for ts := range m.active {
		if ts < min {
			min = ts
		}
	}
	return min
}

// Stats returns the number of committed and aborted transactions.
func (m *Manager) Stats() (commits, aborts uint64) {
	return m.commits.Load(), m.aborts.Load()
}

// Conflicts returns the number of commits aborted with ErrConflict.
func (m *Manager) Conflicts() uint64 { return m.conflicts.Load() }

// latchFor returns (creating if needed) the apply latch for a table name.
func (m *Manager) latchFor(name string) *sync.Mutex {
	m.mu.Lock()
	la := m.latches[name]
	if la == nil {
		la = &sync.Mutex{}
		m.latches[name] = la
	}
	m.mu.Unlock()
	return la
}

// latchTables acquires the apply latches for the given sorted table names.
// Sorted acquisition order across all committers makes the latching
// deadlock-free.
func (m *Manager) latchTables(names []string) []*sync.Mutex {
	latches := make([]*sync.Mutex, len(names))
	for i, name := range names {
		latches[i] = m.latchFor(name)
	}
	for _, la := range latches {
		la.Lock()
	}
	return latches
}

func unlatch(latches []*sync.Mutex) {
	for _, la := range latches {
		la.Unlock()
	}
}

// Begin starts a transaction reading at the current clock.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	snap := m.clock.Load()
	m.active[snap]++
	m.mu.Unlock()
	return &Txn{
		m:       m,
		id:      m.nextID.Add(1),
		snapTS:  snap,
		deletes: make(map[string]map[int]bool),
	}
}

// Txn is one transaction: a snapshot timestamp plus a buffered write set.
// Reads go through Snapshot views overlaid with the transaction's own
// uncommitted writes (read-your-own-writes).
type Txn struct {
	m      *Manager
	id     uint64
	snapTS uint64
	done   bool

	writes  []Write
	deletes map[string]map[int]bool // table -> victim positions
	inserts map[string][]value.Row  // table -> buffered rows, insertion order
	epochs  map[string]int          // table -> MergeCount at first observation
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// SnapshotTS returns the transaction's read timestamp.
func (t *Txn) SnapshotTS() uint64 { return t.snapTS }

// observeEpoch records the table's merge epoch the first time this
// transaction observes positions in it. Commit validation aborts with
// ErrConflict if a merge renumbered positions since: any Pos the
// transaction collected would be stale. The epoch is read before the
// caller takes its snapshot, so a racing merge can only cause a spurious
// abort, never a silently wrong commit.
func (t *Txn) observeEpoch(table string, tab *columnstore.Table) {
	if t.epochs == nil {
		t.epochs = make(map[string]int)
	}
	if _, seen := t.epochs[table]; !seen {
		t.epochs[table] = tab.MergeCount()
	}
}

// SnapshotTable returns a storage snapshot of the named table at the
// transaction's read timestamp, recording the table's merge epoch so that
// positions collected from the snapshot stay valid through commit (a
// concurrent merge aborts the transaction with ErrConflict instead).
func (t *Txn) SnapshotTable(table string) (*columnstore.Snapshot, error) {
	tab, ok := t.m.Table(table)
	if !ok {
		return nil, fmt.Errorf("txn: unknown table %q", table)
	}
	t.observeEpoch(table, tab)
	return tab.Snapshot(t.snapTS), nil
}

// Insert buffers rows for insertion into the named table.
func (t *Txn) Insert(table string, rows ...value.Row) error {
	if t.done {
		return ErrClosed
	}
	if _, ok := t.m.Table(table); !ok {
		return fmt.Errorf("txn: unknown table %q", table)
	}
	if t.inserts == nil {
		t.inserts = make(map[string][]value.Row)
	}
	for _, r := range rows {
		c := r.Clone()
		t.writes = append(t.writes, Write{Kind: WriteInsert, Table: table, Row: c})
		t.inserts[table] = append(t.inserts[table], c)
	}
	return nil
}

// Delete buffers the deletion of row pos of the named table. The conflict
// check happens at commit (first committer wins). Victim positions must
// come from this transaction's own View/SnapshotTable so the merge epoch
// they were read under is on record.
func (t *Txn) Delete(table string, pos int) error {
	if t.done {
		return ErrClosed
	}
	tab, ok := t.m.Table(table)
	if !ok {
		return fmt.Errorf("txn: unknown table %q", table)
	}
	t.observeEpoch(table, tab)
	if t.deletes[table] == nil {
		t.deletes[table] = make(map[int]bool)
	}
	if t.deletes[table][pos] {
		return nil // idempotent within the transaction
	}
	t.deletes[table][pos] = true
	t.writes = append(t.writes, Write{Kind: WriteDelete, Table: table, Pos: pos})
	return nil
}

// Update replaces row pos of the named table with newRow: MVCC delete plus
// insert, the column-store idiom for updates.
func (t *Txn) Update(table string, pos int, newRow value.Row) error {
	if err := t.Delete(table, pos); err != nil {
		return err
	}
	return t.Insert(table, newRow)
}

// View returns a read view of the named table combining the transaction's
// snapshot with its own uncommitted writes.
func (t *Txn) View(table string) (*View, error) {
	snap, err := t.SnapshotTable(table)
	if err != nil {
		return nil, err
	}
	return &View{snap: snap, txn: t, table: table}, nil
}

// resolve maps every table the write set touches to its *Table and returns
// the sorted list of tables with deletes. A concurrently dropped table
// aborts the commit cleanly instead of panicking at apply.
func (t *Txn) resolve() (tabs map[string]*columnstore.Table, delNames []string, err error) {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	tabs = make(map[string]*columnstore.Table)
	need := func(name string) error {
		if _, ok := tabs[name]; ok {
			return nil
		}
		tab, ok := m.tables[name]
		if !ok {
			return fmt.Errorf("txn: table %q dropped", name)
		}
		tabs[name] = tab
		return nil
	}
	for name := range t.inserts {
		if err := need(name); err != nil {
			return nil, nil, err
		}
	}
	for name := range t.deletes {
		if err := need(name); err != nil {
			return nil, nil, err
		}
		delNames = append(delNames, name)
	}
	sort.Strings(delNames)
	return tabs, delNames, nil
}

// apply installs the write set at commitTS. Inserts are grouped per table
// (one ApplyInsert lock round-trip each); deletes were validated under the
// table latch the caller still holds, so the stamp cannot fail.
func (t *Txn) apply(commitTS uint64, tabs map[string]*columnstore.Table) {
	insNames := make([]string, 0, len(t.inserts))
	for name := range t.inserts {
		insNames = append(insNames, name)
	}
	sort.Strings(insNames)
	posOut := make(map[string][]int, len(insNames))
	for _, name := range insNames {
		posOut[name] = tabs[name].ApplyInsert(t.inserts[name], commitTS)
	}
	next := make(map[string]int, len(insNames))
	for i := range t.writes {
		w := &t.writes[i]
		switch w.Kind {
		case WriteInsert:
			w.Pos = posOut[w.Table][next[w.Table]]
			next[w.Table]++
		case WriteDelete:
			if !tabs[w.Table].ApplyDelete(w.Pos, commitTS) {
				// Cannot happen: liveness was validated under the table
				// latch, stamps are only placed by latch holders, and
				// merges run exclusively between batches.
				panic("txn: delete conflict after validation")
			}
		}
	}
}

// Commit validates the write set under per-table latches, then rides a
// group-commit batch: the batch leader assigns it a timestamp from one
// clock bump shared with its peers, the write set is applied concurrently
// with other members (disjoint tables in parallel), and the clock is
// published only after the whole batch has landed — so no snapshot ever
// observes a torn commit. Commit returns once the batch's listeners (WAL
// append + fsync under SyncEveryCommit) have run.
func (t *Txn) Commit() (uint64, error) {
	if t.done {
		return 0, ErrClosed
	}
	t.done = true
	m := t.m

	// Read-only fast path.
	if len(t.writes) == 0 {
		m.mu.Lock()
		m.release(t.snapTS)
		m.mu.Unlock()
		m.commits.Add(1)
		cCommits.Inc()
		return m.clock.Load(), nil
	}

	if m.SerialCommits {
		m.serialMu.Lock()
		defer m.serialMu.Unlock()
	}

	tabs, delNames, err := t.resolve()
	if err != nil {
		t.releaseAbort()
		return 0, err
	}

	// Validate deletes under the table latches: the victim must still be
	// live, and no merge may have renumbered positions since we observed
	// them. Latches are held through apply (ownership passes to the batch
	// leader), so validation cannot be invalidated before the stamp lands.
	latches := m.latchTables(delNames)
	for _, name := range delNames {
		tab := tabs[name]
		if tab.MergeCount() != t.epochs[name] {
			unlatch(latches)
			t.releaseAbort()
			m.conflicts.Add(1)
			cConflicts.Inc()
			return 0, fmt.Errorf("txn: table %q merged under transaction: %w", name, ErrConflict)
		}
		for pos := range t.deletes[name] {
			if !tab.RowLive(pos) {
				unlatch(latches)
				t.releaseAbort()
				m.conflicts.Add(1)
				cConflicts.Inc()
				return 0, ErrConflict
			}
		}
	}

	job := &gcJob{
		txn:     t,
		tabs:    tabs,
		latches: latches,
		apply:   make(chan struct{}),
		elect:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	m.submit(job)

	m.mu.Lock()
	m.release(t.snapTS)
	m.mu.Unlock()
	m.commits.Add(1)
	cCommits.Inc()
	return job.ts, nil
}

// releaseAbort drops the snapshot pin and counts an abort.
func (t *Txn) releaseAbort() {
	t.m.mu.Lock()
	t.m.release(t.snapTS)
	t.m.mu.Unlock()
	t.m.aborts.Add(1)
	cAborts.Inc()
}

// Abort discards the transaction's buffered writes.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.releaseAbort()
}

// release decrements the active-snapshot refcount; caller holds m.mu.
func (m *Manager) release(snapTS uint64) {
	if n := m.active[snapTS]; n <= 1 {
		delete(m.active, snapTS)
	} else {
		m.active[snapTS] = n - 1
	}
}

// --- Group commit -----------------------------------------------------

// gcJob is one unit in the group-commit queue: either a validated commit
// (txn != nil) or an exclusive job (a merge) that must run with no apply
// in flight on its table.
type gcJob struct {
	// Commit jobs.
	txn     *Txn
	tabs    map[string]*columnstore.Table
	latches []*sync.Mutex
	ts      uint64          // assigned by the leader before apply is closed
	wg      *sync.WaitGroup // batch apply barrier
	apply   chan struct{}   // leader → member: ts assigned, apply now

	// Exclusive jobs.
	excl  bool
	table string
	fn    func(watermark uint64)

	elect     chan struct{} // leader → member: take over leadership
	done      chan struct{} // leader → member: fully committed/ran
	processed bool          // leader-side: job completed (leader goroutine only)
}

// maxLeaderDrains bounds how many batches one committer serves as leader
// before handing leadership to a queued peer, so no single caller's
// latency (or snapshot pin, which holds back the merge watermark) grows
// without bound under sustained load.
const maxLeaderDrains = 4

// submit enqueues a commit job and blocks until it is fully committed.
// The first enqueuer with no active leader leads the batch; members apply
// their own write sets when signaled and may inherit leadership.
func (m *Manager) submit(j *gcJob) {
	m.gcMu.Lock()
	m.gcQueue = append(m.gcQueue, j)
	lead := !m.gcLead
	if lead {
		m.gcLead = true
	}
	m.gcMu.Unlock()
	if lead {
		m.lead(j)
		return
	}
	select {
	case <-j.apply:
		j.txn.apply(j.ts, j.tabs)
		j.wg.Done()
		<-j.done
	case <-j.elect:
		m.lead(j)
	}
}

// RunExclusive runs fn on the named table with no commit apply in flight:
// the group-commit leader executes it between batches while holding the
// table's apply latch, passing the current MinActiveTS watermark. Merges
// go through here so the WAL observes merge records in true execution
// order relative to commits, and so no committer's validated positions
// are renumbered out from under it.
func (m *Manager) RunExclusive(table string, fn func(watermark uint64)) {
	j := &gcJob{
		excl:  true,
		table: table,
		fn:    fn,
		elect: make(chan struct{}),
		done:  make(chan struct{}),
	}
	m.gcMu.Lock()
	m.gcQueue = append(m.gcQueue, j)
	lead := !m.gcLead
	if lead {
		m.gcLead = true
	}
	m.gcMu.Unlock()
	if lead {
		m.lead(j)
		return
	}
	select {
	case <-j.done:
	case <-j.elect:
		m.lead(j)
	}
}

// lead drains the group-commit queue until it is empty or leadership is
// handed off. own is the leader's own job; leadership cannot be handed
// off before it has been processed.
func (m *Manager) lead(own *gcJob) {
	for drains := 0; ; drains++ {
		m.gcMu.Lock()
		if len(m.gcQueue) == 0 {
			m.gcLead = false
			m.gcMu.Unlock()
			return
		}
		if drains >= maxLeaderDrains && own.processed {
			next := m.gcQueue[0]
			m.gcMu.Unlock()
			close(next.elect) // leadership transfers; gcLead stays set
			return
		}
		batch := m.gcQueue
		m.gcQueue = nil
		m.gcMu.Unlock()
		if !m.runGroup(batch, own) {
			// No commit landed and every exclusive job was requeued
			// behind a latch still held by a not-yet-enqueued committer;
			// yield so that committer can finish validating.
			runtime.Gosched()
		}
	}
}

// runGroup processes one drained batch: commits first (single clock bump,
// concurrent applies, publish, listeners), then exclusive jobs. Returns
// whether any job completed.
func (m *Manager) runGroup(batch []*gcJob, own *gcJob) bool {
	var commits, excls []*gcJob
	for _, j := range batch {
		if j.excl {
			excls = append(excls, j)
		} else {
			commits = append(commits, j)
		}
	}

	if len(commits) > 0 {
		// Phase 1: assign a contiguous TS range under one clock bump and
		// let every member apply its own write set concurrently.
		base := m.clock.Load()
		var wg sync.WaitGroup
		wg.Add(len(commits))
		for i, j := range commits {
			j.ts = base + 1 + uint64(i)
			j.wg = &wg
			if j != own {
				close(j.apply)
			}
		}
		if own != nil && !own.excl && !own.processed {
			own.txn.apply(own.ts, own.tabs)
			wg.Done()
		}
		wg.Wait()

		// Phase 2: the validate→apply window is closed; release every
		// member's table latches (ownership passed to the leader).
		for _, j := range commits {
			unlatch(j.latches)
		}

		// Phase 3: publish the whole batch with one clock store. Readers
		// beginning now see either none or all of each member's writes.
		m.AdvanceTo(base + uint64(len(commits)))

		// Phase 4: listeners. The WAL's group listener appends the batch
		// as one flush+fsync; per-commit listeners run in TS order.
		m.mu.Lock()
		ls := append([]CommitListener(nil), m.listeners...)
		gls := append([]GroupCommitListener(nil), m.groupLs...)
		m.mu.Unlock()
		if len(gls) > 0 {
			rec := make([]GroupCommit, len(commits))
			for i, j := range commits {
				rec[i] = GroupCommit{TS: j.ts, Writes: j.txn.writes}
			}
			for _, g := range gls {
				g(rec)
			}
		}
		for _, j := range commits {
			for _, l := range ls {
				l(j.ts, j.txn.writes)
			}
		}

		cGroupCommits.Inc()
		hGroupSize.Observe(float64(len(commits)))

		// Phase 5: wake the members.
		for _, j := range commits {
			j.processed = true
			if j != own {
				close(j.done)
			}
		}
	}

	progress := len(commits) > 0
	for _, j := range excls {
		la := m.latchFor(j.table)
		if !la.TryLock() {
			// A committer that validated against this table but has not
			// yet enqueued still holds the latch; running the merge now
			// could renumber its positions. Requeue behind it.
			m.gcMu.Lock()
			m.gcQueue = append(m.gcQueue, j)
			m.gcMu.Unlock()
			continue
		}
		wm := m.MinActiveTS()
		j.fn(wm)
		la.Unlock()
		progress = true
		j.processed = true
		if j != own {
			close(j.done)
		}
	}
	return progress
}

// MergeNow merges the table's delta into main through the commit pipeline:
// the merge runs exclusively between group-commit batches at the current
// MinActiveTS watermark, so no live snapshot observes it and no validated
// committer has its positions renumbered. Works for any table (registered
// or not — latches are keyed by name).
func (m *Manager) MergeNow(t *columnstore.Table) columnstore.MergeStats {
	var st columnstore.MergeStats
	m.RunExclusive(t.Name(), func(wm uint64) {
		st = t.Merge(wm)
	})
	return st
}

// MergeTableNow is MergeNow for a registered table name.
func (m *Manager) MergeTableNow(name string) (columnstore.MergeStats, error) {
	tab, ok := m.Table(name)
	if !ok {
		return columnstore.MergeStats{}, fmt.Errorf("txn: unknown table %q", name)
	}
	return m.MergeNow(tab), nil
}

// --- Views ------------------------------------------------------------

// View is a transaction-consistent read view over one table: the MVCC
// snapshot plus the transaction's uncommitted writes.
type View struct {
	snap  *columnstore.Snapshot
	txn   *Txn
	table string
}

// Snapshot exposes the underlying storage snapshot (committed data only);
// executors use it for fast columnar scans and then overlay OwnWrites.
func (v *View) Snapshot() *columnstore.Snapshot { return v.snap }

// Visible reports whether committed row pos is visible, accounting for
// the transaction's own uncommitted deletes.
func (v *View) Visible(pos int) bool {
	if v.txn.deletes[v.table][pos] {
		return false
	}
	return v.snap.Visible(pos)
}

// Get reads column col of committed row pos.
func (v *View) Get(col, pos int) value.Value { return v.snap.Get(col, pos) }

// OwnInserts returns the rows this transaction has buffered for the table,
// in insertion order. The per-table index makes this O(own rows), not
// O(write set) — multi-statement transactions used to rescan every write.
func (v *View) OwnInserts() []value.Row {
	own := v.txn.inserts[v.table]
	if len(own) == 0 {
		return nil
	}
	return append([]value.Row(nil), own...)
}

// NumRows returns the committed row slot count.
func (v *View) NumRows() int { return v.snap.NumRows() }

// --- Retry loop -------------------------------------------------------

// Retry policy for RunInTxn: bounded attempts with capped exponential
// backoff and full jitter (the same shape as the scale-out coordinator's
// task retry), so conflicting writers decorrelate instead of re-colliding.
const (
	runInTxnAttempts = 5
	retryBaseBackoff = 100 * time.Microsecond
	retryMaxBackoff  = 5 * time.Millisecond
)

// retryBackoff returns the sleep before retry attempt (0-based), capped
// exponential with full jitter.
func retryBackoff(attempt int) time.Duration {
	d := retryBaseBackoff
	for i := 0; i < attempt && d < retryMaxBackoff; i++ {
		d *= 2
	}
	if d > retryMaxBackoff {
		d = retryMaxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// RunInTxn executes fn in a transaction, committing on nil error and
// retrying on write-write conflict with bounded attempts and jittered
// exponential backoff. fn must be safe to re-run.
func (m *Manager) RunInTxn(fn func(t *Txn) error) (uint64, error) {
	for attempt := 0; ; attempt++ {
		t := m.Begin()
		if err := fn(t); err != nil {
			t.Abort()
			return 0, err
		}
		ts, err := t.Commit()
		if err == nil {
			return ts, nil
		}
		if !errors.Is(err, ErrConflict) || attempt >= runInTxnAttempts-1 {
			return 0, err
		}
		cRetries.Inc()
		time.Sleep(retryBackoff(attempt))
	}
}
