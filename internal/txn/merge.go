package txn

import (
	"sync/atomic"
	"time"
)

// MergerConfig tunes the background merge daemon.
type MergerConfig struct {
	// Threshold is the delta row count at which a table becomes a merge
	// candidate. Defaults to 4096.
	Threshold int
	// Interval is the sweep cadence. Defaults to 20ms.
	Interval time.Duration
	// Merge executes one merge. Nil means merge directly through the
	// commit pipeline (Manager.MergeTableNow); the WAL store passes a
	// closure that also logs a merge record.
	Merge func(table string) error
	// Filter, when non-nil, restricts which tables the daemon considers
	// (false = skip). Tiered deployments use it to leave warm partitions
	// to the aging policy.
	Filter func(table string) bool
}

// Merger is the background merge daemon: it watches every registered
// table's delta size and triggers watermark-bounded delta→main merges off
// the commit path. Each merge runs as an exclusive job between
// group-commit batches at the MinActiveTS watermark, so no live snapshot
// ever observes renumbered positions and ingest never stalls behind a
// foreground merge.
type Merger struct {
	m      *Manager
	cfg    MergerConfig
	stop   chan struct{}
	done   chan struct{}
	merges atomic.Uint64
}

// StartMerger launches the background merge daemon for this manager's
// tables. Call Stop to shut it down; Stop waits for an in-flight sweep.
func (m *Manager) StartMerger(cfg MergerConfig) *Merger {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 4096
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 20 * time.Millisecond
	}
	if cfg.Merge == nil {
		cfg.Merge = func(table string) error {
			_, err := m.MergeTableNow(table)
			return err
		}
	}
	g := &Merger{m: m, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go g.loop()
	return g
}

// Stop shuts the daemon down and waits for it to exit.
func (g *Merger) Stop() {
	close(g.stop)
	<-g.done
}

// Merges returns how many background merges this daemon has run.
func (g *Merger) Merges() uint64 { return g.merges.Load() }

func (g *Merger) loop() {
	defer close(g.done)
	tick := time.NewTicker(g.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
			g.sweep()
		}
	}
}

// sweep merges every table whose delta crossed the threshold and records
// the residual delta backlog of the rest.
func (g *Merger) sweep() {
	backlog := 0
	for _, name := range g.m.TableNames() {
		if g.cfg.Filter != nil && !g.cfg.Filter(name) {
			continue
		}
		tab, ok := g.m.Table(name)
		if !ok {
			continue // dropped since TableNames
		}
		d := tab.DeltaRows()
		if d < g.cfg.Threshold {
			backlog += d
			continue
		}
		if err := g.cfg.Merge(name); err != nil {
			cBgMergeErrs.Inc()
			continue
		}
		g.merges.Add(1)
		cBgMerges.Inc()
	}
	gMergeBacklog.Set(float64(backlog))
}
