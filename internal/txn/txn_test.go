package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/columnstore"
	"repro/internal/value"
)

func newManagerWithTable(t *testing.T) (*Manager, *columnstore.Table) {
	t.Helper()
	m := NewManager()
	tab := columnstore.NewTable("acct", columnstore.Schema{
		{Name: "id", Kind: value.KindInt},
		{Name: "balance", Kind: value.KindInt},
	})
	m.Register(tab)
	return m, tab
}

func TestCommitMakesRowsVisible(t *testing.T) {
	m, tab := newManagerWithTable(t)
	tx := m.Begin()
	if err := tx.Insert("acct", value.Row{value.Int(1), value.Int(100)}); err != nil {
		t.Fatal(err)
	}
	// Not visible to a concurrent snapshot.
	other := m.Begin()
	v, _ := other.View("acct")
	if v.Snapshot().LiveRows() != 0 {
		t.Fatal("uncommitted insert leaked")
	}
	other.Abort()

	ts, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Snapshot(ts).LiveRows() != 1 {
		t.Fatal("committed row not visible")
	}
}

func TestSnapshotIsolationReaderUnaffected(t *testing.T) {
	m, _ := newManagerWithTable(t)
	if _, err := m.RunInTxn(func(tx *Txn) error {
		return tx.Insert("acct", value.Row{value.Int(1), value.Int(100)})
	}); err != nil {
		t.Fatal(err)
	}
	reader := m.Begin()
	rv, _ := reader.View("acct")

	// A later writer deletes the row.
	if _, err := m.RunInTxn(func(tx *Txn) error { return tx.Delete("acct", 0) }); err != nil {
		t.Fatal(err)
	}

	// The reader still sees it.
	if !rv.Visible(0) {
		t.Fatal("snapshot isolation violated")
	}
	reader.Abort()
	// A fresh transaction does not.
	fresh := m.Begin()
	fv, _ := fresh.View("acct")
	if fv.Visible(0) {
		t.Fatal("deleted row visible to later snapshot")
	}
	fresh.Abort()
}

func TestWriteWriteConflictFirstCommitterWins(t *testing.T) {
	m, _ := newManagerWithTable(t)
	m.RunInTxn(func(tx *Txn) error {
		return tx.Insert("acct", value.Row{value.Int(1), value.Int(100)})
	})
	t1 := m.Begin()
	t2 := m.Begin()
	if err := t1.Delete("acct", 0); err != nil {
		t.Fatal(err)
	}
	if err := t2.Delete("acct", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Commit(); err != nil {
		t.Fatal("first committer must win:", err)
	}
	if _, err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer must abort, got %v", err)
	}
	c, a := m.Stats()
	if c < 2 || a != 1 {
		t.Fatalf("commits=%d aborts=%d", c, a)
	}
}

func TestUpdateIsDeletePlusInsert(t *testing.T) {
	m, tab := newManagerWithTable(t)
	m.RunInTxn(func(tx *Txn) error {
		return tx.Insert("acct", value.Row{value.Int(1), value.Int(100)})
	})
	if _, err := m.RunInTxn(func(tx *Txn) error {
		return tx.Update("acct", 0, value.Row{value.Int(1), value.Int(250)})
	}); err != nil {
		t.Fatal(err)
	}
	snap := tab.Snapshot(m.Now())
	live := 0
	for i := 0; i < snap.NumRows(); i++ {
		if snap.Visible(i) {
			live++
			if snap.Get(1, i).I != 250 {
				t.Fatalf("balance=%d", snap.Get(1, i).I)
			}
		}
	}
	if live != 1 {
		t.Fatalf("live=%d", live)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	m, _ := newManagerWithTable(t)
	m.RunInTxn(func(tx *Txn) error {
		return tx.Insert("acct", value.Row{value.Int(1), value.Int(1)})
	})
	tx := m.Begin()
	tx.Insert("acct", value.Row{value.Int(2), value.Int(2)})
	tx.Delete("acct", 0)
	v, _ := tx.View("acct")
	if v.Visible(0) {
		t.Fatal("own delete not visible")
	}
	own := v.OwnInserts()
	if len(own) != 1 || own[0][0].I != 2 {
		t.Fatalf("own inserts %v", own)
	}
	tx.Abort()
	// Abort discards everything.
	fresh := m.Begin()
	fv, _ := fresh.View("acct")
	if !fv.Visible(0) {
		t.Fatal("aborted delete leaked")
	}
	fresh.Abort()
}

func TestMinActiveTSTracksOldestSnapshot(t *testing.T) {
	m, _ := newManagerWithTable(t)
	base := m.MinActiveTS()
	old := m.Begin()
	for i := 0; i < 5; i++ {
		m.RunInTxn(func(tx *Txn) error {
			return tx.Insert("acct", value.Row{value.Int(int64(i)), value.Int(0)})
		})
	}
	if got := m.MinActiveTS(); got != old.snapTS {
		t.Fatalf("watermark=%d want %d", got, old.snapTS)
	}
	old.Abort()
	if got := m.MinActiveTS(); got <= base {
		t.Fatalf("watermark did not advance: %d", got)
	}
}

func TestMergeRespectsWatermark(t *testing.T) {
	m, tab := newManagerWithTable(t)
	m.RunInTxn(func(tx *Txn) error {
		return tx.Insert("acct", value.Row{value.Int(1), value.Int(1)})
	})
	holder := m.Begin() // pins the snapshot
	hv, _ := holder.View("acct")
	m.RunInTxn(func(tx *Txn) error { return tx.Delete("acct", 0) })

	stats := tab.Merge(m.MinActiveTS())
	if stats.RowsEvicted != 0 {
		t.Fatal("merge compacted a row pinned by an open snapshot")
	}
	if !hv.Visible(0) {
		t.Fatal("pinned snapshot lost its row")
	}
	holder.Abort()
	stats = tab.Merge(m.MinActiveTS())
	if stats.RowsEvicted != 1 {
		t.Fatalf("expected eviction after release, got %+v", stats)
	}
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	// Classic bank transfer test: concurrent updates; conflicts abort;
	// total balance is conserved.
	m, tab := newManagerWithTable(t)
	const accounts = 8
	m.RunInTxn(func(tx *Txn) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Insert("acct", value.Row{value.Int(int64(i)), value.Int(1000)}); err != nil {
				return err
			}
		}
		return nil
	})

	findLive := func(snap *columnstore.Snapshot, id int64) (int, int64) {
		for i := snap.NumRows() - 1; i >= 0; i-- {
			if snap.Visible(i) && snap.Get(0, i).I == id {
				return i, snap.Get(1, i).I
			}
		}
		return -1, 0
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := m.Begin()
				v, _ := tx.View("acct")
				from := int64((seed + i) % accounts)
				to := int64((seed + i + 1) % accounts)
				fp, fb := findLive(v.Snapshot(), from)
				tp, tb := findLive(v.Snapshot(), to)
				if fp < 0 || tp < 0 {
					tx.Abort()
					continue
				}
				tx.Update("acct", fp, value.Row{value.Int(from), value.Int(fb - 10)})
				tx.Update("acct", tp, value.Row{value.Int(to), value.Int(tb + 10)})
				tx.Commit() // conflict errors are fine — aborted atomically
			}
		}(w)
	}
	wg.Wait()

	snap := tab.Snapshot(m.Now())
	var total int64
	live := 0
	for i := 0; i < snap.NumRows(); i++ {
		if snap.Visible(i) {
			live++
			total += snap.Get(1, i).I
		}
	}
	if live != accounts {
		t.Fatalf("live accounts=%d", live)
	}
	if total != accounts*1000 {
		t.Fatalf("money not conserved: %d", total)
	}
}

func TestCommitListenerReceivesWrites(t *testing.T) {
	m, _ := newManagerWithTable(t)
	var gotTS uint64
	var gotWrites []Write
	m.OnCommit(func(ts uint64, ws []Write) { gotTS, gotWrites = ts, ws })
	ts, err := m.RunInTxn(func(tx *Txn) error {
		return tx.Insert("acct", value.Row{value.Int(9), value.Int(9)})
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotTS != ts || len(gotWrites) != 1 || gotWrites[0].Kind != WriteInsert {
		t.Fatalf("listener got ts=%d writes=%v", gotTS, gotWrites)
	}
	if gotWrites[0].Pos < 0 {
		t.Fatal("insert position not filled in")
	}
}

func TestClosedTransactionRejectsOperations(t *testing.T) {
	m, _ := newManagerWithTable(t)
	tx := m.Begin()
	tx.Abort()
	if err := tx.Insert("acct", value.Row{value.Int(1), value.Int(1)}); !errors.Is(err, ErrClosed) {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatal(err)
	}
	tx.Abort() // double abort is a no-op
}

func TestUnknownTableErrors(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if err := tx.Insert("ghost", value.Row{}); err == nil {
		t.Fatal("expected error")
	}
	if err := tx.Delete("ghost", 0); err == nil {
		t.Fatal("expected error")
	}
	if _, err := tx.View("ghost"); err == nil {
		t.Fatal("expected error")
	}
	tx.Abort()
}

func TestAdvanceTo(t *testing.T) {
	m := NewManager()
	m.AdvanceTo(100)
	if m.Now() != 100 {
		t.Fatalf("now=%d", m.Now())
	}
	m.AdvanceTo(50) // never goes backwards
	if m.Now() != 100 {
		t.Fatalf("clock went backwards: %d", m.Now())
	}
}

func TestManyTablesCommitAtomicity(t *testing.T) {
	m := NewManager()
	for i := 0; i < 3; i++ {
		m.Register(columnstore.NewTable(fmt.Sprintf("t%d", i), columnstore.Schema{{Name: "v", Kind: value.KindInt}}))
	}
	ts, err := m.RunInTxn(func(tx *Txn) error {
		for i := 0; i < 3; i++ {
			if err := tx.Insert(fmt.Sprintf("t%d", i), value.Row{value.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tab, _ := m.Table(fmt.Sprintf("t%d", i))
		if tab.Snapshot(ts).LiveRows() != 1 {
			t.Fatalf("table t%d missing row", i)
		}
	}
}
