package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/columnstore"
	"repro/internal/value"
)

func newHTAPTable(name string) *columnstore.Table {
	return columnstore.NewTable(name, columnstore.Schema{
		{Name: "id", Kind: value.KindInt},
		{Name: "v", Kind: value.KindInt},
	})
}

// content returns the multiset of (id, v) pairs visible in a snapshot.
func content(snap *columnstore.Snapshot) map[string]int {
	out := make(map[string]int)
	for pos := 0; pos < snap.NumRows(); pos++ {
		if !snap.Visible(pos) {
			continue
		}
		k := fmt.Sprintf("%d|%d", snap.Get(0, pos).AsInt(), snap.Get(1, pos).AsInt())
		out[k]++
	}
	return out
}

func sameContent(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// TestMergeSnapshotParityProperty is the HTAP isolation property: a
// snapshot taken at any TS reads identical rows before, during and after
// background merges, while concurrent writers keep committing. Runs the
// full pipeline — group commit, per-table latches, background merge
// daemon — under load (and under -race via make htap).
func TestMergeSnapshotParityProperty(t *testing.T) {
	m := NewManager()
	tab := newHTAPTable("prop")
	m.Register(tab)

	if _, err := m.RunInTxn(func(tx *Txn) error {
		for i := 0; i < 300; i++ {
			if err := tx.Insert("prop", value.Row{value.Int(int64(i)), value.Int(0)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	merger := m.StartMerger(MergerConfig{Threshold: 32, Interval: time.Millisecond})
	defer merger.Stop()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	// Writers: updates (delete+insert of the same id with v+1) and fresh
	// inserts, through the bounded-retry loop.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < 120 && !stop.Load(); i++ {
				_, err := m.RunInTxn(func(tx *Txn) error {
					v, err := tx.View("prop")
					if err != nil {
						return err
					}
					// Probe a few random positions for a live row to update.
					n := v.NumRows()
					for try := 0; try < 8; try++ {
						pos := rng.Intn(n)
						if !v.Visible(pos) {
							continue
						}
						id := v.Get(0, pos).AsInt()
						val := v.Get(1, pos).AsInt()
						return tx.Update("prop", pos, value.Row{value.Int(id), value.Int(val + 1)})
					}
					return tx.Insert("prop", value.Row{value.Int(int64(1000 + w*1000 + i)), value.Int(0)})
				})
				if err != nil && !errors.Is(err, ErrConflict) {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// Readers: pin a snapshot TS and re-read the table several times while
	// merges and commits churn underneath; the visible content must not
	// change.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25 && !stop.Load(); i++ {
				tx := m.Begin()
				snap, err := tx.SnapshotTable("prop")
				if err != nil {
					tx.Abort()
					errCh <- err
					return
				}
				want := content(snap)
				for rep := 0; rep < 5; rep++ {
					time.Sleep(200 * time.Microsecond)
					again, err := tx.SnapshotTable("prop")
					if err != nil {
						tx.Abort()
						errCh <- err
						return
					}
					if got := content(again); !sameContent(want, got) {
						tx.Abort()
						errCh <- fmt.Errorf("snapshot at ts=%d changed under merge: %d vs %d distinct rows",
							tx.SnapshotTS(), len(want), len(got))
						return
					}
				}
				tx.Abort()
			}
		}()
	}

	wg.Wait()
	stop.Store(true)
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if merger.Merges() == 0 {
		t.Fatal("background merger never ran; property was not exercised")
	}
}

// TestConflictMatrixMultiWriter drives every overlapping-victim pairing
// (delete/delete, delete/update, update/update) with concurrent
// committers: exactly one writer per victim may win, everyone else gets
// ErrConflict, and the surviving state matches the winner's operation.
func TestConflictMatrixMultiWriter(t *testing.T) {
	type op struct {
		name   string
		mutate func(tx *Txn, pos int) error
	}
	del := op{"delete", func(tx *Txn, pos int) error { return tx.Delete("mx", pos) }}
	upd := op{"update", func(tx *Txn, pos int) error {
		return tx.Update("mx", pos, value.Row{value.Int(7), value.Int(99)})
	}}

	for _, pair := range [][2]op{{del, del}, {del, upd}, {upd, del}, {upd, upd}} {
		t.Run(pair[0].name+"_"+pair[1].name, func(t *testing.T) {
			m := NewManager()
			tab := newHTAPTable("mx")
			m.Register(tab)
			if _, err := m.RunInTxn(func(tx *Txn) error {
				return tx.Insert("mx", value.Row{value.Int(7), value.Int(0)})
			}); err != nil {
				t.Fatal(err)
			}

			const writers = 4
			var wins, conflicts atomic.Int64
			var wg, ready sync.WaitGroup
			start := make(chan struct{})
			ready.Add(writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Snapshot and buffer before any peer commits, so every
					// writer targets the same live victim.
					tx := m.Begin()
					v, err := tx.View("mx")
					if err != nil {
						t.Error(err)
						ready.Done()
						return
					}
					pos := -1
					for p := 0; p < v.NumRows(); p++ {
						if v.Visible(p) {
							pos = p
							break
						}
					}
					if pos < 0 {
						t.Error("no live victim")
						ready.Done()
						return
					}
					if err := pair[w%2].mutate(tx, pos); err != nil {
						t.Error(err)
						ready.Done()
						return
					}
					ready.Done()
					<-start
					switch _, err := tx.Commit(); {
					case err == nil:
						wins.Add(1)
					case errors.Is(err, ErrConflict):
						conflicts.Add(1)
					default:
						t.Errorf("unexpected commit error: %v", err)
					}
				}(w)
			}
			ready.Wait()
			close(start)
			wg.Wait()
			if wins.Load() != 1 || conflicts.Load() != writers-1 {
				t.Fatalf("wins=%d conflicts=%d, want 1/%d", wins.Load(), conflicts.Load(), writers-1)
			}
			// Surviving state matches whichever op won.
			snap := tab.Snapshot(m.Now())
			live := 0
			for pos := 0; pos < snap.NumRows(); pos++ {
				if snap.Visible(pos) {
					live++
					if got := snap.Get(1, pos).AsInt(); got != 99 {
						t.Fatalf("surviving row v=%d, want 99 (update winner)", got)
					}
				}
			}
			if live > 1 {
				t.Fatalf("%d live rows after conflict resolution, want ≤1", live)
			}
			if c := m.Conflicts(); c != uint64(writers-1) {
				t.Fatalf("conflict counter=%d, want %d", c, writers-1)
			}
		})
	}

	t.Run("insert_insert", func(t *testing.T) {
		// Inserts never conflict: all writers win.
		m := NewManager()
		m.Register(newHTAPTable("mx"))
		var wg sync.WaitGroup
		var wins atomic.Int64
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if _, err := m.RunInTxn(func(tx *Txn) error {
					return tx.Insert("mx", value.Row{value.Int(int64(w)), value.Int(0)})
				}); err != nil {
					t.Error(err)
					return
				}
				wins.Add(1)
			}(w)
		}
		wg.Wait()
		if wins.Load() != 4 {
			t.Fatalf("wins=%d, want 4", wins.Load())
		}
	})
}

// TestMergeEpochConflict: a transaction that observed positions before a
// merge renumbered them must abort with ErrConflict instead of deleting
// whatever row now occupies the stale position; insert-only transactions
// sail through merges untouched.
func TestMergeEpochConflict(t *testing.T) {
	m := NewManager()
	tab := newHTAPTable("ep")
	m.Register(tab)
	if _, err := m.RunInTxn(func(tx *Txn) error {
		for i := 0; i < 4; i++ {
			if err := tx.Insert("ep", value.Row{value.Int(int64(i)), value.Int(0)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	tx := m.Begin()
	v, err := tx.View("ep")
	if err != nil {
		t.Fatal(err)
	}
	pos := -1
	for p := 0; p < v.NumRows(); p++ {
		if v.Visible(p) {
			pos = p
			break
		}
	}
	if err := tx.Delete("ep", pos); err != nil {
		t.Fatal(err)
	}

	if _, err := m.MergeTableNow("ep"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit after merge: err=%v, want ErrConflict", err)
	}

	// Insert-only transactions carry no positions; merges cannot abort them.
	tx2 := m.Begin()
	if err := tx2.Insert("ep", value.Row{value.Int(100), value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MergeTableNow("ep"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatalf("insert-only commit across merge: %v", err)
	}
}

// TestGroupCommitBatches: concurrent committers on disjoint tables land
// in shared batches — contiguous timestamps under one clock bump, one
// group append per batch — and every commit is delivered exactly once.
func TestGroupCommitBatches(t *testing.T) {
	m := NewManager()
	const tables = 8
	for i := 0; i < tables; i++ {
		m.Register(newHTAPTable(fmt.Sprintf("t%d", i)))
	}

	var mu sync.Mutex
	var sizes []int
	total := 0
	m.OnCommitGroup(func(batch []GroupCommit) {
		for i := 1; i < len(batch); i++ {
			if batch[i].TS != batch[i-1].TS+1 {
				t.Errorf("batch timestamps not contiguous: %d after %d", batch[i].TS, batch[i-1].TS)
			}
		}
		mu.Lock()
		sizes = append(sizes, len(batch))
		total += len(batch)
		mu.Unlock()
		// Simulate a slow fsync so followers pile into the next batch.
		time.Sleep(2 * time.Millisecond)
	})

	const committers = 32
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := m.RunInTxn(func(tx *Txn) error {
				return tx.Insert(fmt.Sprintf("t%d", i%tables), value.Row{value.Int(int64(i)), value.Int(0)})
			}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if total != committers {
		t.Fatalf("group listener saw %d commits, want %d", total, committers)
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	if max < 2 {
		t.Fatalf("no batching observed (batch sizes %v); group commit is not grouping", sizes)
	}
}

// TestRunInTxnBoundedRetries: an unconditional conflict must be retried
// with backoff a bounded number of times, then surface ErrConflict.
func TestRunInTxnBoundedRetries(t *testing.T) {
	m := NewManager()
	tab := newHTAPTable("rt")
	m.Register(tab)
	if _, err := m.RunInTxn(func(tx *Txn) error {
		return tx.Insert("rt", value.Row{value.Int(1), value.Int(0)})
	}); err != nil {
		t.Fatal(err)
	}
	// Kill the row so every later delete of pos conflicts.
	var pos int
	if _, err := m.RunInTxn(func(tx *Txn) error {
		v, err := tx.View("rt")
		if err != nil {
			return err
		}
		for p := 0; p < v.NumRows(); p++ {
			if v.Visible(p) {
				pos = p
				return tx.Delete("rt", p)
			}
		}
		return errors.New("no live row")
	}); err != nil {
		t.Fatal(err)
	}

	attempts := 0
	start := time.Now()
	_, err := m.RunInTxn(func(tx *Txn) error {
		attempts++
		return tx.Delete("rt", pos) // already dead → ErrConflict at commit
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err=%v, want ErrConflict", err)
	}
	if attempts != runInTxnAttempts {
		t.Fatalf("attempts=%d, want %d", attempts, runInTxnAttempts)
	}
	if elapsed := time.Since(start); elapsed < retryBaseBackoff {
		t.Fatalf("retries returned in %v; backoff did not engage", elapsed)
	}
}

// TestOwnInsertsIndexed: OwnInserts comes from the per-table index, in
// insertion order, unaffected by interleaved writes to other tables.
func TestOwnInsertsIndexed(t *testing.T) {
	m := NewManager()
	m.Register(newHTAPTable("a"))
	m.Register(newHTAPTable("b"))
	tx := m.Begin()
	defer tx.Abort()
	for i := 0; i < 5; i++ {
		if err := tx.Insert("a", value.Row{value.Int(int64(i)), value.Int(0)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert("b", value.Row{value.Int(int64(100 + i)), value.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tx.View("a")
	if err != nil {
		t.Fatal(err)
	}
	own := v.OwnInserts()
	if len(own) != 5 {
		t.Fatalf("len=%d, want 5", len(own))
	}
	for i, r := range own {
		if r[0].AsInt() != int64(i) {
			t.Fatalf("own[%d]=%v, want id %d", i, r, i)
		}
	}
}
