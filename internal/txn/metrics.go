package txn

import "repro/internal/stats"

// Process-wide commit-pipeline metrics, registered on the default stats
// registry so they flow through the cluster stats service and the
// Prometheus exposition without extra plumbing (same pattern as the
// columnstore counters).
var (
	cCommits      = stats.Default.Counter("txn_commits_total")
	cAborts       = stats.Default.Counter("txn_aborts_total")
	cConflicts    = stats.Default.Counter("txn_conflicts_total")
	cRetries      = stats.Default.Counter("txn_retries_total")
	cGroupCommits = stats.Default.Counter("txn_group_commits_total")
	hGroupSize    = stats.Default.Histogram("txn_group_commit_size")

	cBgMerges     = stats.Default.Counter("merge_background_total")
	cBgMergeErrs  = stats.Default.Counter("merge_background_errors_total")
	gMergeBacklog = stats.Default.Gauge("merge_backlog_delta_rows")
)
