package text

import (
	"strings"
	"unicode"
)

// Entity is one extracted, typed span (§II-C: "extract entities (like
// names, addresses, companies, ...) and sentiments ... stored as
// structured data").
type Entity struct {
	Type string // PERSON, COMPANY, LOCATION, MONEY, EMAIL, SENSOR
	Text string
}

var companySuffixes = []string{"Inc", "Corp", "Corporation", "GmbH", "AG", "SE", "Ltd", "LLC", "Co"}

var locationGazetteer = map[string]bool{
	"Berlin": true, "Walldorf": true, "Dresden": true, "Seoul": true,
	"Paris": true, "London": true, "Tokyo": true, "Chicago": true,
	"Miami": true, "Houston": true, "Texas": true, "Florida": true,
	"Germany": true, "Korea": true, "USA": true,
}

var personTitles = map[string]bool{"Mr": true, "Mrs": true, "Ms": true, "Dr": true, "Prof": true}

// ExtractEntities runs the rule-based extraction pipeline over a document.
func ExtractEntities(doc string) []Entity {
	var out []Entity
	words := splitWordsKeepCase(doc)

	for i := 0; i < len(words); i++ {
		w := words[i]
		// MONEY: number followed by currency, or $/€ prefix handled by
		// currency words since splitWords drops symbols.
		if isNumberWord(w) && i+1 < len(words) && isCurrencyWord(words[i+1]) {
			out = append(out, Entity{Type: "MONEY", Text: w + " " + words[i+1]})
			i++
			continue
		}
		// EMAIL survives splitting as name/host runs; detect on raw doc
		// below instead.
		// COMPANY: Capitalized+ followed by a legal suffix.
		if isCapitalized(w) && i+1 < len(words) && isCompanySuffix(words[i+1]) {
			// Extend left over preceding capitalized words.
			start := i
			for start > 0 && isCapitalized(words[start-1]) && !personTitles[strings.TrimRight(words[start-1], ".")] {
				start--
			}
			out = append(out, Entity{Type: "COMPANY", Text: strings.Join(words[start:i+2], " ")})
			i++
			continue
		}
		// LOCATION from the gazetteer.
		if locationGazetteer[w] {
			out = append(out, Entity{Type: "LOCATION", Text: w})
			continue
		}
		// PERSON: title + capitalized, or two adjacent capitalized words
		// not at sentence start.
		if personTitles[strings.TrimRight(w, ".")] && i+1 < len(words) && isCapitalized(words[i+1]) {
			name := words[i+1]
			if i+2 < len(words) && isCapitalized(words[i+2]) && !isCompanySuffix(words[i+2]) {
				name += " " + words[i+2]
				i++
			}
			out = append(out, Entity{Type: "PERSON", Text: name})
			i++
			continue
		}
	}

	// EMAIL on the raw text.
	for _, f := range strings.Fields(doc) {
		f = strings.Trim(f, ".,;:()!?\"'")
		at := strings.IndexByte(f, '@')
		if at > 0 && strings.Contains(f[at:], ".") && !strings.ContainsAny(f, " ") {
			out = append(out, Entity{Type: "EMAIL", Text: f})
		}
	}
	// SENSOR ids (IoT flavor): tokens like SN-1234 or DISP-0007.
	for _, f := range strings.Fields(doc) {
		f = strings.Trim(f, ".,;:()!?\"'")
		if i := strings.IndexByte(f, '-'); i > 0 && i < len(f)-1 {
			prefix, rest := f[:i], f[i+1:]
			if isAllUpper(prefix) && isAllDigit(rest) {
				out = append(out, Entity{Type: "SENSOR", Text: f})
			}
		}
	}
	return out
}

func splitWordsKeepCase(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '.' && start >= 0 {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, strings.TrimRight(s[start:i], "."))
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, strings.TrimRight(s[start:], "."))
	}
	return out
}

func isCapitalized(w string) bool {
	if w == "" {
		return false
	}
	r := rune(w[0])
	return unicode.IsUpper(r)
}

func isCompanySuffix(w string) bool {
	w = strings.TrimRight(w, ".")
	for _, s := range companySuffixes {
		if w == s {
			return true
		}
	}
	return false
}

func isNumberWord(w string) bool {
	if w == "" {
		return false
	}
	for _, r := range w {
		if !unicode.IsDigit(r) && r != '.' {
			return false
		}
	}
	return true
}

func isCurrencyWord(w string) bool {
	switch strings.ToUpper(strings.TrimRight(w, ".")) {
	case "EUR", "USD", "KRW", "DOLLARS", "EUROS", "WON":
		return true
	}
	return false
}

func isAllUpper(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsUpper(r) {
			return false
		}
	}
	return true
}

func isAllDigit(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// --- sentiment ---------------------------------------------------------

var positiveWords = map[string]bool{
	"good": true, "great": true, "excellent": true, "love": true,
	"happy": true, "fast": true, "reliable": true, "amazing": true,
	"perfect": true, "works": true, "easy": true, "best": true,
	"recommend": true, "clean": true, "fresh": true, "full": true,
}

var negativeWords = map[string]bool{
	"bad": true, "terrible": true, "awful": true, "hate": true, "slow": true,
	"broken": true, "empty": true, "dirty": true, "worst": true,
	"fail": true, "failure": true, "leak": true, "problem": true,
	"unhappy": true, "poor": true, "missing": true, "never": true,
}

var negations = map[string]bool{"not": true, "no": true, "never": true, "isn't": true, "don't": true, "doesn't": true}

// Sentiment scores a document in [-1, 1]: sign of (positives - negatives)
// normalized by matched words, with single-step negation flipping.
func Sentiment(doc string) float64 {
	words := splitWords(strings.ToLower(doc))
	score, matched := 0.0, 0
	for i, w := range words {
		s := 0.0
		if positiveWords[w] {
			s = 1
		} else if negativeWords[w] {
			s = -1
		} else {
			continue
		}
		if i > 0 && negations[words[i-1]] {
			s = -s
		}
		score += s
		matched++
	}
	if matched == 0 {
		return 0
	}
	return score / float64(matched)
}
