// Package text implements the text engine of §II-C: tokenization with
// stemming, an inverted index with TF-IDF ranked and fuzzy search,
// rule-based entity and sentiment extraction, Naive-Bayes classification
// and k-means document clustering. Results are structured data that joins
// back to the relational store — extraction is triggered automatically
// when documents are ingested (see Indexer).
package text

import (
	"strings"
	"unicode"
)

// Token is one analyzed term with its position in the document.
type Token struct {
	Term string // stemmed, lower-cased
	Raw  string // original surface form
	Pos  int    // token position (for phrase queries)
}

var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true,
	"he": true, "in": true, "is": true, "it": true, "its": true, "of": true,
	"on": true, "or": true, "that": true, "the": true, "to": true,
	"was": true, "were": true, "will": true, "with": true, "this": true,
}

// Tokenize splits, lower-cases, drops stopwords and stems. Positions count
// all word tokens (including stopwords) so phrase distances survive.
func Tokenize(doc string) []Token {
	var out []Token
	pos := 0
	for _, raw := range splitWords(doc) {
		pos++
		lower := strings.ToLower(raw)
		if stopwords[lower] {
			continue
		}
		out = append(out, Token{Term: Stem(lower), Raw: raw, Pos: pos - 1})
	}
	return out
}

// splitWords extracts letter/digit runs.
func splitWords(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, strings.Trim(s[start:i], "'"))
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, strings.Trim(s[start:], "'"))
	}
	// Drop empties from lone apostrophes.
	clean := out[:0]
	for _, w := range out {
		if w != "" {
			clean = append(clean, w)
		}
	}
	return clean
}

// Stem applies a compact Porter-style suffix stripper: enough for recall
// across inflections without a full rule table.
func Stem(w string) string {
	if len(w) <= 3 {
		return w
	}
	for _, suf := range []string{"ational", "iveness", "fulness", "ousness"} {
		if strings.HasSuffix(w, suf) && len(w)-len(suf) >= 3 {
			return w[:len(w)-len(suf)+2] // ational->at etc., keep a stub
		}
	}
	rules := []struct{ suf, rep string }{
		{"sses", "ss"}, {"ies", "i"}, {"ing", ""}, {"edly", ""}, {"ed", ""},
		{"ly", ""}, {"ment", ""}, {"ness", ""}, {"tion", "t"}, {"s", ""},
	}
	for _, r := range rules {
		if strings.HasSuffix(w, r.suf) {
			stem := w[:len(w)-len(r.suf)] + r.rep
			if len(stem) >= 3 {
				// Undouble final consonant (running -> run), but only when
				// the suffix was stripped outright, not replaced
				// (classes -> class must keep its ss).
				if r.rep == "" && len(stem) >= 2 && stem[len(stem)-1] == stem[len(stem)-2] && !isVowel(stem[len(stem)-1]) {
					stem = stem[:len(stem)-1]
				}
				return stem
			}
		}
	}
	return w
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// editDistance1 reports whether a and b are within Levenshtein distance 1
// (fuzzy term matching).
func editDistance1(a, b string) bool {
	la, lb := len(a), len(b)
	if la == lb {
		diff := 0
		for i := 0; i < la; i++ {
			if a[i] != b[i] {
				diff++
				if diff > 1 {
					return false
				}
			}
		}
		return true
	}
	if la > lb {
		a, b = b, a
		la, lb = lb, la
	}
	if lb-la != 1 {
		return false
	}
	// b has one extra char.
	i, j, skipped := 0, 0, false
	for i < la {
		if a[i] == b[j] {
			i++
			j++
			continue
		}
		if skipped {
			return false
		}
		skipped = true
		j++
	}
	return true
}
