package text

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

func TestTokenizeAndStem(t *testing.T) {
	toks := Tokenize("The quick foxes were running, and jumping!")
	var terms []string
	for _, tk := range toks {
		terms = append(terms, tk.Term)
	}
	want := map[string]bool{"quick": true, "foxe": true, "run": true, "jump": true}
	for _, term := range terms {
		if !want[term] {
			t.Fatalf("unexpected term %q in %v", term, terms)
		}
	}
	if len(terms) != 4 {
		t.Fatalf("terms=%v", terms)
	}
	// Stopwords dropped; positions preserved for non-stopwords.
	if toks[0].Pos != 1 { // "The"(0) quick(1)
		t.Fatalf("pos=%d", toks[0].Pos)
	}
}

func TestStemCases(t *testing.T) {
	cases := map[string]string{
		"running": "run", "dispensers": "dispenser", "classes": "class",
		"cities": "citi", "payment": "pay", "the": "the", "go": "go",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Fatalf("Stem(%q)=%q want %q", in, got, want)
		}
	}
}

func TestEditDistance1(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"cat", "cat", true}, {"cat", "cut", true}, {"cat", "cats", true},
		{"cat", "at", true}, {"cat", "dog", false}, {"cat", "catss", false},
		{"", "a", true}, {"ab", "ba", false},
	}
	for _, c := range cases {
		if got := editDistance1(c.a, c.b); got != c.want {
			t.Fatalf("editDistance1(%q,%q)=%v", c.a, c.b, got)
		}
	}
}

func TestIndexSearchRanking(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "the dispenser is empty, refill the dispenser now")
	ix.Add(2, "dispenser works fine")
	ix.Add(3, "unrelated sensor report about temperature")
	hits := ix.Search("dispenser")
	if len(hits) != 2 {
		t.Fatalf("hits=%v", hits)
	}
	if hits[0].Doc != 1 {
		t.Fatalf("tf ranking broken: %v", hits)
	}
	// AND semantics.
	if got := ix.Search("dispenser empty"); len(got) != 1 || got[0].Doc != 1 {
		t.Fatalf("AND broken: %v", got)
	}
	if got := ix.Search("dispenser temperature"); len(got) != 0 {
		t.Fatalf("AND leaked: %v", got)
	}
}

func TestPhraseSearch(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "big event in the city hall tonight")
	ix.Add(2, "the event was big")
	hits := ix.Search(`"big event"`)
	if len(hits) != 1 || hits[0].Doc != 1 {
		t.Fatalf("phrase hits=%v", hits)
	}
}

func TestFuzzySearch(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "hurricane warning for the coast")
	if got := ix.Search("huricane~"); len(got) != 1 {
		t.Fatalf("fuzzy miss: %v", got)
	}
	if got := ix.Search("huricane"); len(got) != 0 {
		t.Fatalf("exact should miss: %v", got)
	}
}

func TestIndexRemove(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "alpha beta")
	ix.Add(2, "alpha gamma")
	ix.Remove(1)
	if got := ix.Search("beta"); len(got) != 0 {
		t.Fatalf("removed doc found: %v", got)
	}
	if got := ix.Search("alpha"); len(got) != 1 || got[0].Doc != 2 {
		t.Fatalf("surviving doc lost: %v", got)
	}
	if ix.DocCount() != 1 {
		t.Fatalf("docs=%d", ix.DocCount())
	}
}

func TestEntityExtraction(t *testing.T) {
	doc := "Mr John Smith from Acme Corp visited Berlin and paid 500 EUR. Contact: j.smith@acme.example. Sensor DISP-0042 reported."
	es := ExtractEntities(doc)
	byType := map[string][]string{}
	for _, e := range es {
		byType[e.Type] = append(byType[e.Type], e.Text)
	}
	if len(byType["PERSON"]) == 0 || byType["PERSON"][0] != "John Smith" {
		t.Fatalf("person: %v", byType)
	}
	if len(byType["COMPANY"]) == 0 || byType["COMPANY"][0] != "Acme Corp" {
		t.Fatalf("company: %v", byType)
	}
	if len(byType["LOCATION"]) == 0 || byType["LOCATION"][0] != "Berlin" {
		t.Fatalf("location: %v", byType)
	}
	if len(byType["MONEY"]) == 0 || byType["MONEY"][0] != "500 EUR" {
		t.Fatalf("money: %v", byType)
	}
	if len(byType["EMAIL"]) == 0 {
		t.Fatalf("email: %v", byType)
	}
	if len(byType["SENSOR"]) == 0 || byType["SENSOR"][0] != "DISP-0042" {
		t.Fatalf("sensor: %v", byType)
	}
}

func TestSentiment(t *testing.T) {
	if s := Sentiment("great product, works perfectly, love it"); s <= 0 {
		t.Fatalf("positive text scored %v", s)
	}
	if s := Sentiment("terrible, broken and slow"); s >= 0 {
		t.Fatalf("negative text scored %v", s)
	}
	if s := Sentiment("not good at all"); s >= 0 {
		t.Fatalf("negation not applied: %v", s)
	}
	if s := Sentiment("the invoice number is 42"); s != 0 {
		t.Fatalf("neutral text scored %v", s)
	}
}

func TestClassifier(t *testing.T) {
	c := NewClassifier()
	c.Train("complaint", "the dispenser is broken and empty again")
	c.Train("complaint", "terrible service, slow refill")
	c.Train("praise", "great service, always clean and full")
	c.Train("praise", "works perfectly, very happy")
	label, margin := c.Classify("dispenser empty and broken")
	if label != "complaint" || margin <= 0 {
		t.Fatalf("label=%q margin=%v", label, margin)
	}
	label, _ = c.Classify("clean and full, happy customers")
	if label != "praise" {
		t.Fatalf("label=%q", label)
	}
}

func TestClusterSeparatesTopics(t *testing.T) {
	docs := []string{
		"stock price market trading shares",
		"market shares stock dividend price",
		"hurricane storm wind rain coast",
		"storm rain flooding hurricane warning",
	}
	assign := Cluster(docs, 2, 10)
	if len(assign) != 4 {
		t.Fatalf("assign=%v", assign)
	}
	if assign[0] != assign[1] || assign[2] != assign[3] || assign[0] == assign[2] {
		t.Fatalf("clustering failed: %v", assign)
	}
}

func TestClusterEdgeCases(t *testing.T) {
	if Cluster(nil, 3, 5) != nil {
		t.Fatal("empty docs")
	}
	one := Cluster([]string{"solo"}, 5, 5)
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("one=%v", one)
	}
}

func newIndexedEngine(t *testing.T) (*sqlexec.Engine, *Indexer) {
	t.Helper()
	eng := sqlexec.NewEngine()
	ix := Attach(eng)
	if _, err := eng.Query(`CREATE TABLE docs (id VARCHAR, body VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	for i, body := range []string{
		"dispenser DISP-0001 at Berlin station is empty, refill required",
		"dispenser DISP-0002 works great, recently cleaned by Acme Corp",
		"temperature sensor normal, no problem detected",
	} {
		if _, err := eng.Query(fmt.Sprintf(`INSERT INTO docs VALUES ('d%d', '%s')`, i+1, body)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CreateIndex("docs", "body", "id"); err != nil {
		t.Fatal(err)
	}
	return eng, ix
}

func TestSQLTextSearchJoinsWithRelationalData(t *testing.T) {
	eng, _ := newIndexedEngine(t)
	r, err := eng.Query(`SELECT d.id, ts.score FROM TABLE(TEXT_SEARCH('docs', 'dispenser empty')) ts JOIN docs d ON d.id = ts.k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].S != "d1" {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestSQLEntitiesAutoExtracted(t *testing.T) {
	eng, _ := newIndexedEngine(t)
	r, err := eng.Query(`SELECT k, entity FROM TABLE(TEXT_ENTITIES('docs')) e WHERE e.etype = 'SENSOR' ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][1].S != "DISP-0001" {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestIncrementalIndexingOnCommit(t *testing.T) {
	eng, _ := newIndexedEngine(t)
	// New document is analyzed automatically at commit (§II-C).
	if _, err := eng.Query(`INSERT INTO docs VALUES ('d4', 'hurricane damaged the dispenser in Miami')`); err != nil {
		t.Fatal(err)
	}
	r, _ := eng.Query(`SELECT k FROM TABLE(TEXT_SEARCH('docs', 'hurricane')) s`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "d4" {
		t.Fatalf("rows=%v", r.Rows)
	}
	// Delete drops it from the index.
	if _, err := eng.Query(`DELETE FROM docs WHERE id = 'd4'`); err != nil {
		t.Fatal(err)
	}
	r, _ = eng.Query(`SELECT k FROM TABLE(TEXT_SEARCH('docs', 'hurricane')) s`)
	if len(r.Rows) != 0 {
		t.Fatalf("deleted doc still found: %v", r.Rows)
	}
}

func TestIndexSurvivesMerge(t *testing.T) {
	eng, _ := newIndexedEngine(t)
	if _, err := eng.Query(`MERGE DELTA OF docs`); err != nil {
		t.Fatal(err)
	}
	r, _ := eng.Query(`SELECT k FROM TABLE(TEXT_SEARCH('docs', 'dispenser')) s ORDER BY k`)
	if len(r.Rows) != 2 {
		t.Fatalf("post-merge rows=%v", r.Rows)
	}
	// And incremental indexing continues after the merge.
	eng.Query(`INSERT INTO docs VALUES ('d9', 'another dispenser report')`)
	r, _ = eng.Query(`SELECT k FROM TABLE(TEXT_SEARCH('docs', 'dispenser')) s`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestSentimentScalarInSQL(t *testing.T) {
	eng, _ := newIndexedEngine(t)
	// d2 is praise; d3's "no problem" flips positive through negation; d1
	// ("empty") must score negative.
	r, err := eng.Query(`SELECT id FROM docs WHERE SENTIMENT(body) > 0 ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][0].S != "d2" || r.Rows[1][0].S != "d3" {
		t.Fatalf("rows=%v", r.Rows)
	}
	r, _ = eng.Query(`SELECT id FROM docs WHERE SENTIMENT(body) < 0`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "d1" {
		t.Fatalf("negative rows=%v", r.Rows)
	}
}

func TestContainsTextScalar(t *testing.T) {
	eng, _ := newIndexedEngine(t)
	r, err := eng.Query(`SELECT id FROM docs WHERE CONTAINS_TEXT(body, 'refill required')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].S != "d1" {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestSearchNeverReturnsInvisibleDocsProperty(t *testing.T) {
	// Property: whatever insert/delete sequence runs, search results only
	// reference live documents.
	eng := sqlexec.NewEngine()
	ix := Attach(eng)
	eng.Query(`CREATE TABLE d (id VARCHAR, body VARCHAR)`)
	ix.CreateIndex("d", "body", "id")
	i := 0
	f := func(del bool) bool {
		i++
		id := fmt.Sprintf("x%d", i)
		eng.Query(`INSERT INTO d VALUES (?, ?)`, value.String(id), value.String("common token payload "+id))
		if del {
			eng.Query(`DELETE FROM d WHERE id = ?`, value.String(id))
		}
		rows, err := ix.Search("d", "common")
		if err != nil {
			return false
		}
		live, _ := eng.Query(`SELECT COUNT(*) FROM d`)
		return int64(len(rows)) == live.Rows[0][0].I
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
