package text

import (
	"math"
	"sort"
	"strings"
	"sync"
)

// posting records one document occurrence of a term.
type posting struct {
	Doc  int   // document ID (caller-defined, e.g. row position)
	Freq int   // term frequency
	Pos  []int // token positions for phrase queries
}

// Index is an in-memory inverted index with TF-IDF ranking.
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting
	docLen   map[int]int
	docs     int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{postings: map[string][]posting{}, docLen: map[int]int{}}
}

// Add indexes a document under the given ID. Re-adding an ID without
// Remove first double-counts; the Indexer layer manages lifecycles.
func (ix *Index) Add(doc int, content string) {
	toks := Tokenize(content)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	byTerm := map[string][]int{}
	for _, t := range toks {
		byTerm[t.Term] = append(byTerm[t.Term], t.Pos)
	}
	for term, positions := range byTerm {
		ix.postings[term] = append(ix.postings[term], posting{Doc: doc, Freq: len(positions), Pos: positions})
	}
	ix.docLen[doc] = len(toks)
	ix.docs++
}

// Remove drops a document from the index.
func (ix *Index) Remove(doc int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docLen[doc]; !ok {
		return
	}
	for term, ps := range ix.postings {
		kept := ps[:0]
		for _, p := range ps {
			if p.Doc != doc {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(ix.postings, term)
		} else {
			ix.postings[term] = kept
		}
	}
	delete(ix.docLen, doc)
	ix.docs--
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs
}

// Hit is one ranked search result.
type Hit struct {
	Doc   int
	Score float64
}

// Search runs a query: terms are ANDed; "quoted phrases" must appear
// adjacent; a trailing ~ on a term enables fuzzy matching (edit distance
// 1). Results are TF-IDF ranked, best first.
func (ix *Index) Search(query string) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	phrases, terms := parseQuery(query)
	if len(phrases) == 0 && len(terms) == 0 {
		return nil
	}
	scores := map[int]float64{}
	matchedAll := map[int]int{}
	need := len(terms) + len(phrases)

	for _, q := range terms {
		docs := ix.matchTerm(q)
		for doc, tf := range docs {
			idf := math.Log(1 + float64(ix.docs)/float64(len(docs)))
			scores[doc] += float64(tf) / float64(max(1, ix.docLen[doc])) * idf * 100
			matchedAll[doc]++
		}
	}
	for _, ph := range phrases {
		docs := ix.matchPhrase(ph)
		for doc, tf := range docs {
			idf := math.Log(1 + float64(ix.docs)/float64(max(1, len(docs))))
			scores[doc] += float64(tf) / float64(max(1, ix.docLen[doc])) * idf * 150
			matchedAll[doc]++
		}
	}

	var hits []Hit
	for doc, n := range matchedAll {
		if n == need {
			hits = append(hits, Hit{Doc: doc, Score: scores[doc]})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].Doc < hits[b].Doc
	})
	return hits
}

// Contains reports whether the document matches the query (unranked).
func (ix *Index) Contains(doc int, query string) bool {
	for _, h := range ix.Search(query) {
		if h.Doc == doc {
			return true
		}
	}
	return false
}

type fuzzyTerm struct {
	term  string
	fuzzy bool
}

func parseQuery(q string) (phrases [][]string, terms []fuzzyTerm) {
	q = strings.TrimSpace(q)
	for {
		i := strings.IndexByte(q, '"')
		if i < 0 {
			break
		}
		j := strings.IndexByte(q[i+1:], '"')
		if j < 0 {
			break
		}
		phrase := q[i+1 : i+1+j]
		var ph []string
		for _, t := range Tokenize(phrase) {
			ph = append(ph, t.Term)
		}
		if len(ph) > 0 {
			phrases = append(phrases, ph)
		}
		q = q[:i] + " " + q[i+1+j+1:]
	}
	for _, w := range strings.Fields(q) {
		fuzzy := strings.HasSuffix(w, "~")
		w = strings.TrimSuffix(w, "~")
		for _, t := range Tokenize(w) {
			terms = append(terms, fuzzyTerm{term: t.Term, fuzzy: fuzzy})
		}
	}
	return phrases, terms
}

// matchTerm returns doc -> term frequency for exact or fuzzy matches.
func (ix *Index) matchTerm(q fuzzyTerm) map[int]int {
	out := map[int]int{}
	if !q.fuzzy {
		for _, p := range ix.postings[q.term] {
			out[p.Doc] += p.Freq
		}
		return out
	}
	for term, ps := range ix.postings {
		if term == q.term || editDistance1(term, q.term) {
			for _, p := range ps {
				out[p.Doc] += p.Freq
			}
		}
	}
	return out
}

// matchPhrase returns doc -> phrase frequency using positional postings.
func (ix *Index) matchPhrase(terms []string) map[int]int {
	out := map[int]int{}
	if len(terms) == 0 {
		return out
	}
	// doc -> positions of first term.
	first := map[int][]int{}
	for _, p := range ix.postings[terms[0]] {
		first[p.Doc] = append(first[p.Doc], p.Pos...)
	}
	for doc, starts := range first {
		count := 0
		for _, s := range starts {
			ok := true
			for k := 1; k < len(terms); k++ {
				if !ix.hasAt(terms[k], doc, s+k) {
					ok = false
					break
				}
			}
			if ok {
				count++
			}
		}
		if count > 0 {
			out[doc] = count
		}
	}
	return out
}

func (ix *Index) hasAt(term string, doc, pos int) bool {
	for _, p := range ix.postings[term] {
		if p.Doc != doc {
			continue
		}
		for _, pp := range p.Pos {
			if pp == pos {
				return true
			}
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
