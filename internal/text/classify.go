package text

import (
	"math"
	"sort"
)

// Classifier is a multinomial Naive Bayes text classifier (§II-C "text
// classification").
type Classifier struct {
	classDocs  map[string]int
	termCounts map[string]map[string]int // class -> term -> count
	classTotal map[string]int            // class -> total term count
	vocab      map[string]bool
	docs       int
}

// NewClassifier returns an untrained classifier.
func NewClassifier() *Classifier {
	return &Classifier{
		classDocs:  map[string]int{},
		termCounts: map[string]map[string]int{},
		classTotal: map[string]int{},
		vocab:      map[string]bool{},
	}
}

// Train adds one labeled document.
func (c *Classifier) Train(label, doc string) {
	c.classDocs[label]++
	c.docs++
	if c.termCounts[label] == nil {
		c.termCounts[label] = map[string]int{}
	}
	for _, t := range Tokenize(doc) {
		c.termCounts[label][t.Term]++
		c.classTotal[label]++
		c.vocab[t.Term] = true
	}
}

// Classify returns the most likely label and its log-probability margin
// over the runner-up (0 when fewer than two classes are trained).
func (c *Classifier) Classify(doc string) (string, float64) {
	if c.docs == 0 {
		return "", 0
	}
	type scored struct {
		label string
		lp    float64
	}
	var all []scored
	v := float64(len(c.vocab))
	for label, n := range c.classDocs {
		lp := math.Log(float64(n) / float64(c.docs))
		for _, t := range Tokenize(doc) {
			tf := float64(c.termCounts[label][t.Term])
			lp += math.Log((tf + 1) / (float64(c.classTotal[label]) + v))
		}
		all = append(all, scored{label, lp})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].lp != all[b].lp {
			return all[a].lp > all[b].lp
		}
		return all[a].label < all[b].label
	})
	margin := 0.0
	if len(all) > 1 {
		margin = all[0].lp - all[1].lp
	}
	return all[0].label, margin
}

// --- k-means clustering -----------------------------------------------

// Cluster groups documents into k clusters over TF vectors using k-means
// with deterministic farthest-point seeding. Returns the cluster index per
// document.
func Cluster(docs []string, k int, iters int) []int {
	n := len(docs)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// Vocabulary and TF vectors.
	vocabIdx := map[string]int{}
	vecs := make([]map[int]float64, n)
	for i, d := range docs {
		v := map[int]float64{}
		for _, t := range Tokenize(d) {
			idx, ok := vocabIdx[t.Term]
			if !ok {
				idx = len(vocabIdx)
				vocabIdx[t.Term] = idx
			}
			v[idx]++
		}
		normalize(v)
		vecs[i] = v
	}

	// Farthest-point seeding from doc 0.
	centroids := []map[int]float64{copyVec(vecs[0])}
	for len(centroids) < k {
		best, bestDist := 0, -1.0
		for i, v := range vecs {
			d := math.MaxFloat64
			for _, c := range centroids {
				if dd := sqDist(v, c); dd < d {
					d = dd
				}
			}
			if d > bestDist {
				best, bestDist = i, d
			}
		}
		centroids = append(centroids, copyVec(vecs[best]))
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.MaxFloat64
			for ci, c := range centroids {
				if d := sqDist(v, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		// Recompute centroids.
		sums := make([]map[int]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = map[int]float64{}
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for idx, val := range v {
				sums[c][idx] += val
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				continue
			}
			for idx := range sums[ci] {
				sums[ci][idx] /= float64(counts[ci])
			}
			centroids[ci] = sums[ci]
		}
	}
	return assign
}

func normalize(v map[int]float64) {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		return
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}
}

func copyVec(v map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

func sqDist(a, b map[int]float64) float64 {
	d := 0.0
	for k, x := range a {
		y := b[k]
		d += (x - y) * (x - y)
	}
	for k, y := range b {
		if _, ok := a[k]; !ok {
			d += y * y
		}
	}
	return d
}
