package text

import (
	"fmt"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/sqlexec"
	"repro/internal/txn"
	"repro/internal/value"
)

// Indexer wires the text engine into the relational engine: it maintains
// inverted indexes over document columns, triggers entity and sentiment
// extraction automatically when documents are ingested or changed (§II-C),
// and exposes the results through SQL functions:
//
//	SENTIMENT(text)                               scalar in [-1,1]
//	CONTAINS_TEXT(text, query)                    unindexed match
//	TABLE(TEXT_SEARCH('table','query'))           indexed ranked search
//	TABLE(TEXT_ENTITIES('table'))                 extracted entities
type Indexer struct {
	mu      sync.Mutex
	eng     *sqlexec.Engine
	indexes map[string]*tableIndex
}

type tableIndex struct {
	mu       sync.Mutex
	idx      *Index
	table    *columnstore.Table
	col      int // document column
	keyCol   int // join-key column surfaced in results
	entities map[int][]Entity
	senti    map[int]float64
}

// Attach installs the text engine into a relational engine.
func Attach(eng *sqlexec.Engine) *Indexer {
	ix := &Indexer{eng: eng, indexes: map[string]*tableIndex{}}

	eng.Reg.RegisterScalar("SENTIMENT", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, fmt.Errorf("text: SENTIMENT(text)")
		}
		if a[0].IsNull() {
			return value.Null, nil
		}
		return value.Float(Sentiment(a[0].AsString())), nil
	})
	eng.Reg.RegisterScalar("CONTAINS_TEXT", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, fmt.Errorf("text: CONTAINS_TEXT(text, query)")
		}
		if a[0].IsNull() || a[1].IsNull() {
			return value.Bool(false), nil
		}
		probe := NewIndex()
		probe.Add(0, a[0].AsString())
		return value.Bool(probe.Contains(0, a[1].AsString())), nil
	})
	eng.Reg.RegisterTable("TEXT_SEARCH", columnstore.Schema{
		{Name: "k", Kind: value.KindString},
		{Name: "score", Kind: value.KindFloat},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 2 {
			return nil, fmt.Errorf("text: TEXT_SEARCH('table', 'query')")
		}
		return ix.Search(a[0].AsString(), a[1].AsString())
	})
	eng.Reg.RegisterTable("TEXT_ENTITIES", columnstore.Schema{
		{Name: "k", Kind: value.KindString},
		{Name: "etype", Kind: value.KindString},
		{Name: "entity", Kind: value.KindString},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 1 {
			return nil, fmt.Errorf("text: TEXT_ENTITIES('table')")
		}
		return ix.Entities(a[0].AsString())
	})

	// Auto-trigger: new or changed documents are analyzed on commit.
	eng.Mgr.OnCommit(ix.onCommit)
	return ix
}

// CreateIndex builds a text index over table.docCol; keyCol values key the
// search results for relational joins. Existing rows are indexed
// immediately; future commits index incrementally.
func (ix *Indexer) CreateIndex(table, docCol, keyCol string) error {
	entry, ok := ix.eng.Cat.Table(table)
	if !ok {
		return fmt.Errorf("text: unknown table %q", table)
	}
	ci := entry.Schema.ColIndex(docCol)
	ki := entry.Schema.ColIndex(keyCol)
	if ci < 0 || ki < 0 {
		return fmt.Errorf("text: columns %q/%q not in %s", docCol, keyCol, table)
	}
	t := entry.Primary()
	ti := &tableIndex{idx: NewIndex(), table: t, col: ci, keyCol: ki,
		entities: map[int][]Entity{}, senti: map[int]float64{}}

	snap := t.Snapshot(ix.eng.Mgr.Now())
	for _, pos := range snap.CollectVisible() {
		ti.indexRow(pos, snap.Get(ci, pos))
	}
	t.OnMerge(ti.remap)

	ix.mu.Lock()
	ix.indexes[table] = ti
	ix.mu.Unlock()
	return nil
}

func (ti *tableIndex) indexRow(pos int, doc value.Value) {
	if doc.IsNull() {
		return
	}
	content := doc.AsString()
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.idx.Add(pos, content)
	if es := ExtractEntities(content); len(es) > 0 {
		ti.entities[pos] = es
	}
	ti.senti[pos] = Sentiment(content)
}

func (ti *tableIndex) dropRow(pos int) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.idx.Remove(pos)
	delete(ti.entities, pos)
	delete(ti.senti, pos)
}

// remap follows a delta→main merge: physical positions shift or vanish.
func (ti *tableIndex) remap(remap []int) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	old := ti.idx
	ti.idx = NewIndex()
	oldEnt, oldSen := ti.entities, ti.senti
	ti.entities, ti.senti = map[int][]Entity{}, map[int]float64{}
	for term, ps := range old.postings {
		for _, p := range ps {
			if p.Doc >= len(remap) || remap[p.Doc] < 0 {
				continue
			}
			np := remap[p.Doc]
			ti.idx.postings[term] = append(ti.idx.postings[term], posting{Doc: np, Freq: p.Freq, Pos: p.Pos})
		}
	}
	for doc, n := range old.docLen {
		if doc < len(remap) && remap[doc] >= 0 {
			ti.idx.docLen[remap[doc]] = n
			ti.idx.docs++
		}
	}
	for doc, es := range oldEnt {
		if doc < len(remap) && remap[doc] >= 0 {
			ti.entities[remap[doc]] = es
		}
	}
	for doc, s := range oldSen {
		if doc < len(remap) && remap[doc] >= 0 {
			ti.senti[remap[doc]] = s
		}
	}
}

func (ix *Indexer) onCommit(ts uint64, writes []txn.Write) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, w := range writes {
		for table, ti := range ix.indexes {
			if ti.table.Name() != w.Table && table != w.Table {
				continue
			}
			switch w.Kind {
			case txn.WriteInsert:
				if ti.col < len(w.Row) {
					ti.indexRow(w.Pos, w.Row[ti.col])
				}
			case txn.WriteDelete:
				ti.dropRow(w.Pos)
			}
		}
	}
}

// Search runs a ranked query against the named table's index, returning
// (key, score) rows.
func (ix *Indexer) Search(table, query string) ([]value.Row, error) {
	ti, err := ix.lookup(table)
	if err != nil {
		return nil, err
	}
	snap := ti.table.Snapshot(ix.eng.Mgr.Now())
	var out []value.Row
	for _, h := range ti.idx.Search(query) {
		if h.Doc >= snap.NumRows() || !snap.Visible(h.Doc) {
			continue
		}
		key := snap.Get(ti.keyCol, h.Doc)
		out = append(out, value.Row{value.String(key.AsString()), value.Float(h.Score)})
	}
	return out, nil
}

// Entities returns all extracted entities of a table as (key, type,
// entity) rows — the structured output of text analysis ready to be joined
// with relational data.
func (ix *Indexer) Entities(table string) ([]value.Row, error) {
	ti, err := ix.lookup(table)
	if err != nil {
		return nil, err
	}
	snap := ti.table.Snapshot(ix.eng.Mgr.Now())
	ti.mu.Lock()
	defer ti.mu.Unlock()
	var out []value.Row
	for pos := 0; pos < snap.NumRows(); pos++ {
		es, ok := ti.entities[pos]
		if !ok || !snap.Visible(pos) {
			continue
		}
		key := snap.Get(ti.keyCol, pos).AsString()
		for _, e := range es {
			out = append(out, value.Row{value.String(key), value.String(e.Type), value.String(e.Text)})
		}
	}
	return out, nil
}

// SentimentOf returns the stored sentiment of the row keyed by key.
func (ix *Indexer) SentimentOf(table, key string) (float64, bool) {
	ti, err := ix.lookup(table)
	if err != nil {
		return 0, false
	}
	snap := ti.table.Snapshot(ix.eng.Mgr.Now())
	ti.mu.Lock()
	defer ti.mu.Unlock()
	for pos, s := range ti.senti {
		if pos < snap.NumRows() && snap.Visible(pos) && snap.Get(ti.keyCol, pos).AsString() == key {
			return s, true
		}
	}
	return 0, false
}

func (ix *Indexer) lookup(table string) (*tableIndex, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ti, ok := ix.indexes[table]
	if !ok {
		return nil, fmt.Errorf("text: no text index on %q", table)
	}
	return ti, nil
}
