package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/columnstore"
	"repro/internal/txn"
	"repro/internal/value"
)

func acctSchema() columnstore.Schema {
	return columnstore.Schema{
		{Name: "id", Kind: value.KindInt},
		{Name: "who", Kind: value.KindString},
		{Name: "amt", Kind: value.KindFloat},
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(filepath.Join(dir, "w.log"), SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	row := value.Row{value.Int(-7), value.String("héllo"), value.Float(3.25), value.Bool(true), value.Null, value.TimeMicros(1234567)}
	if err := w.AppendCommit(42, []txn.Write{{Kind: txn.WriteInsert, Table: "t", Row: row, Pos: 3}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	var got value.Row
	var gotTS uint64
	err = Replay(filepath.Join(dir, "w.log"), func(ts uint64, writes []txn.Write, mt string, wm uint64) error {
		gotTS = ts
		got = writes[0].Row
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotTS != 42 || len(got) != len(row) {
		t.Fatalf("ts=%d row=%v", gotTS, got)
	}
	for i := range row {
		if !value.Equal(row[i], got[i]) || row[i].K != got[i].K {
			t.Fatalf("col %d: %v != %v", i, row[i], got[i])
		}
	}
}

func TestRecoveryRebuildsState(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	tab := columnstore.NewTable("acct", acctSchema())
	s.Mgr.Register(tab)
	for i := 0; i < 10; i++ {
		if _, err := s.Mgr.RunInTxn(func(tx *txn.Txn) error {
			return tx.Insert("acct", value.Row{value.Int(int64(i)), value.String("u"), value.Float(float64(i))})
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Mgr.RunInTxn(func(tx *txn.Txn) error { return tx.Delete("acct", 3) })
	before := s.Mgr.Now()
	s.Log.Close()

	// "Crash" and recover. Tables are rediscovered from the log, but the
	// schema must be re-registered by the catalog layer first — simulate
	// that by pre-registering an empty table.
	s2, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	// Recovery without a checkpoint needs the schema; OpenStore replays
	// only into registered tables, so in this low-level test we register
	// first and replay manually.
	tab2 := columnstore.NewTable("acct", acctSchema())
	s2.Mgr.Register(tab2)
	err = Replay(filepath.Join(dir, "redo.log"), func(ts uint64, writes []txn.Write, mt string, wm uint64) error {
		for _, w := range writes {
			switch w.Kind {
			case txn.WriteInsert:
				tab2.ApplyInsert([]value.Row{w.Row}, ts)
			case txn.WriteDelete:
				tab2.ApplyDelete(w.Pos, ts)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := tab2.Snapshot(before)
	if snap.LiveRows() != 9 {
		t.Fatalf("recovered live=%d want 9", snap.LiveRows())
	}
}

func TestCheckpointAndRecoverWithSuffix(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	tab := columnstore.NewTable("acct", acctSchema())
	s.Mgr.Register(tab)
	for i := 0; i < 5; i++ {
		s.Mgr.RunInTxn(func(tx *txn.Txn) error {
			return tx.Insert("acct", value.Row{value.Int(int64(i)), value.String("pre"), value.Float(0)})
		})
	}
	if err := s.Checkpoint(map[string]*columnstore.Table{"acct": tab}); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint activity: 2 inserts, 1 delete, 1 merge.
	for i := 5; i < 7; i++ {
		s.Mgr.RunInTxn(func(tx *txn.Txn) error {
			return tx.Insert("acct", value.Row{value.Int(int64(i)), value.String("post"), value.Float(0)})
		})
	}
	s.Mgr.RunInTxn(func(tx *txn.Txn) error { return tx.Delete("acct", 0) })
	if _, err := s.MergeTable("acct"); err != nil {
		t.Fatal(err)
	}
	s.Mgr.RunInTxn(func(tx *txn.Txn) error {
		return tx.Insert("acct", value.Row{value.Int(99), value.String("after-merge"), value.Float(0)})
	})
	want := tab.Snapshot(s.Mgr.Now()).LiveRows()
	s.Log.Close()

	s2, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	tab2, ok := s2.Mgr.Table("acct")
	if !ok {
		t.Fatal("checkpointed table not recovered")
	}
	got := tab2.Snapshot(s2.Mgr.Now()).LiveRows()
	if got != want {
		t.Fatalf("recovered live=%d want %d", got, want)
	}
	// Values survive, including the post-merge insert.
	found := false
	snap := tab2.Snapshot(s2.Mgr.Now())
	for i := 0; i < snap.NumRows(); i++ {
		if snap.Visible(i) && snap.Get(0, i).I == 99 {
			found = snap.Get(1, i).S == "after-merge"
		}
	}
	if !found {
		t.Fatal("post-merge insert lost")
	}
}

func TestTornTailToleratedByReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "redo.log")
	w, _ := Open(path, SyncNever)
	w.AppendCommit(2, []txn.Write{{Kind: txn.WriteInsert, Table: "t", Row: value.Row{value.Int(1)}}})
	w.AppendCommit(3, []txn.Write{{Kind: txn.WriteInsert, Table: "t", Row: value.Row{value.Int(2)}}})
	w.Close()
	// Chop bytes off the end: torn write at crash.
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)-3], 0o644)
	var seen []uint64
	err := Replay(path, func(ts uint64, writes []txn.Write, mt string, wm uint64) error {
		seen = append(seen, ts)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != 2 {
		t.Fatalf("seen=%v", seen)
	}
}

func TestBackupAndRestore(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir, SyncNever)
	tab := columnstore.NewTable("acct", acctSchema())
	s.Mgr.Register(tab)
	s.Mgr.RunInTxn(func(tx *txn.Txn) error {
		return tx.Insert("acct", value.Row{value.Int(7), value.String("backup-me"), value.Float(1.5)})
	})
	bk := filepath.Join(dir, "backup.db")
	if err := s.Backup(bk, map[string]*columnstore.Table{"acct": tab}); err != nil {
		t.Fatal(err)
	}
	mgr, err := RestoreBackup(bk)
	if err != nil {
		t.Fatal(err)
	}
	tab2, ok := mgr.Table("acct")
	if !ok {
		t.Fatal("table missing from restore")
	}
	snap := tab2.Snapshot(mgr.Now())
	if snap.LiveRows() != 1 || snap.Get(1, 0).S != "backup-me" {
		t.Fatal("backup data wrong")
	}
	// Restored manager continues transacting.
	if _, err := mgr.RunInTxn(func(tx *txn.Txn) error {
		return tx.Insert("acct", value.Row{value.Int(8), value.String("x"), value.Float(0)})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointPreservesMVCCStamps(t *testing.T) {
	dir := t.TempDir()
	tab := columnstore.NewTable("t", columnstore.Schema{{Name: "v", Kind: value.KindInt}})
	tab.ApplyInsert([]value.Row{{value.Int(1)}}, 5)
	pos := tab.ApplyInsert([]value.Row{{value.Int(2)}}, 7)
	tab.ApplyDelete(pos[0], 9)
	path := filepath.Join(dir, "ck.db")
	if err := WriteCheckpoint(path, 10, map[string]*columnstore.Table{"t": tab}); err != nil {
		t.Fatal(err)
	}
	tables, ts, err := LoadCheckpoint(path)
	if err != nil || ts != 10 {
		t.Fatalf("ts=%d err=%v", ts, err)
	}
	got := tables["t"]
	if got.Snapshot(6).LiveRows() != 1 {
		t.Fatal("stamp created=5 lost")
	}
	if got.Snapshot(8).LiveRows() != 2 {
		t.Fatal("stamp created=7 lost")
	}
	if got.Snapshot(9).LiveRows() != 1 {
		t.Fatal("delete stamp lost")
	}
}

func TestReplayMissingFileIsNoop(t *testing.T) {
	if err := Replay(filepath.Join(t.TempDir(), "nope.log"), func(uint64, []txn.Write, string, uint64) error {
		t.Fatal("callback on missing file")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAttachAndLSN(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(filepath.Join(dir, "a.log"), SyncEveryCommit)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager()
	tab := columnstore.NewTable("t", columnstore.Schema{{Name: "v", Kind: value.KindInt}})
	mgr.Register(tab)
	w.Attach(mgr)
	if w.LSN() != 0 {
		t.Fatal("fresh lsn")
	}
	mgr.RunInTxn(func(tx *txn.Txn) error { return tx.Insert("t", value.Row{value.Int(1)}) })
	mgr.RunInTxn(func(tx *txn.Txn) error { return tx.Insert("t", value.Row{value.Int(2)}) })
	if w.LSN() != 2 {
		t.Fatalf("lsn=%d", w.LSN())
	}
	w.Close()
	// The attached log is replayable.
	count := 0
	Replay(filepath.Join(dir, "a.log"), func(ts uint64, ws []txn.Write, mt string, wm uint64) error {
		count += len(ws)
		return nil
	})
	if count != 2 {
		t.Fatalf("replayed=%d", count)
	}
}

func TestRecoveredTablesListing(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir, SyncNever)
	tab := columnstore.NewTable("acct", acctSchema())
	s.Mgr.Register(tab)
	s.Mgr.RunInTxn(func(tx *txn.Txn) error {
		return tx.Insert("acct", value.Row{value.Int(1), value.String("x"), value.Float(0)})
	})
	if len(s.RecoveredTables()) != 0 {
		t.Fatal("fresh store claims recovered tables")
	}
	if err := s.Checkpoint(map[string]*columnstore.Table{"acct": tab}); err != nil {
		t.Fatal(err)
	}
	s.Log.Close()
	s2, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.RecoveredTables()
	if len(rec) != 1 || rec[0].Name() != "acct" {
		t.Fatalf("recovered=%v", rec)
	}
	if rec[0].Schema().ColIndex("who") < 0 {
		t.Fatal("schema lost")
	}
}
