package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/columnstore"
	"repro/internal/txn"
	"repro/internal/value"
)

// tableContent returns the multiset of (id, v) pairs currently live.
func tableContent(tab *columnstore.Table, ts uint64) map[string]int {
	snap := tab.Snapshot(ts)
	out := make(map[string]int)
	for pos := 0; pos < snap.NumRows(); pos++ {
		if !snap.Visible(pos) {
			continue
		}
		out[fmt.Sprintf("%d|%d", snap.Get(0, pos).AsInt(), snap.Get(1, pos).AsInt())]++
	}
	return out
}

// TestRecoveryWithBackgroundMerges is the WAL-ordering regression trap for
// the group-commit pipeline: background merges renumber positions, and
// replayed deletes apply by logged position — so merge records must land
// in the log in true execution order relative to commit batches. Run
// concurrent ingest/updates with a logging background merger, then reopen
// the store and require bit-identical live content.
func TestRecoveryWithBackgroundMerges(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	tab := columnstore.NewTable("ev", columnstore.Schema{
		{Name: "id", Kind: value.KindInt},
		{Name: "v", Kind: value.KindInt},
	})
	s.Mgr.Register(tab)
	// Checkpoint the empty table so reopen knows the schema and replays
	// the whole commit/merge stream from the log.
	if err := s.Checkpoint(map[string]*columnstore.Table{"ev": tab}); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Mgr.RunInTxn(func(tx *txn.Txn) error {
		for i := 0; i < 200; i++ {
			if err := tx.Insert("ev", value.Row{value.Int(int64(i)), value.Int(0)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	merger := s.StartMerger(32, time.Millisecond)

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 11))
			for i := 0; i < 100; i++ {
				_, err := s.Mgr.RunInTxn(func(tx *txn.Txn) error {
					if rng.Intn(3) == 0 {
						// Update a live row found through the txn snapshot.
						v, err := tx.View("ev")
						if err != nil {
							return err
						}
						for try := 0; try < 8; try++ {
							pos := rng.Intn(v.NumRows())
							if !v.Visible(pos) {
								continue
							}
							id := v.Get(0, pos).AsInt()
							return tx.Update("ev", pos, value.Row{value.Int(id), value.Int(v.Get(1, pos).AsInt() + 1)})
						}
						return nil
					}
					return tx.Insert("ev", value.Row{value.Int(int64(10000 + w*1000 + i)), value.Int(0)})
				})
				if err != nil && !errors.Is(err, txn.ErrConflict) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	merger.Stop()

	if merger.Merges() == 0 {
		t.Fatal("background merger never fired; ordering was not exercised")
	}
	want := tableContent(tab, s.Mgr.Now())
	if err := s.Log.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Log.Close()
	tab2, ok := s2.Mgr.Table("ev")
	if !ok {
		t.Fatal("table ev not recovered")
	}
	got := tableContent(tab2, s2.Mgr.Now())
	if len(got) != len(want) {
		t.Fatalf("recovered %d distinct rows, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("row %s: recovered count %d, want %d", k, got[k], n)
		}
	}
}
