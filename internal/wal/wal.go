// Package wal provides durability for the in-memory store: a binary
// write-ahead redo log, checkpoints that capture the exact physical state
// of every table (positions and MVCC stamps included), backup/restore on
// top of checkpoints, and crash recovery that loads the latest checkpoint
// and replays the log suffix. This is the "backup, recovery and HA
// mechanisms" layer of §II of the paper; the scale-out extension replaces
// it with the distributed shared log (package sharedlog).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/columnstore"
	"repro/internal/txn"
	"repro/internal/value"
)

// Record kinds in the log stream.
const (
	recCommit byte = 1
	recMerge  byte = 2
)

// SyncMode controls when the log file is fsynced.
type SyncMode int

// Supported sync modes.
const (
	SyncEveryCommit SyncMode = iota // full durability
	SyncNever                       // leave it to the OS (benchmarks)
)

// WAL is an append-only redo log.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	mode SyncMode
	lsn  uint64
}

// Open opens (creating if needed) the log file at path for appending.
func Open(path string, mode SyncMode) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &WAL{f: f, w: bufio.NewWriter(f), mode: mode}, nil
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// LSN returns the number of records appended through this handle.
func (w *WAL) LSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lsn
}

// AppendCommit logs one committed transaction.
func (w *WAL) AppendCommit(ts uint64, writes []txn.Write) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.writeCommitLocked(ts, writes)
	return w.finish()
}

// AppendCommitBatch logs a whole group-commit batch under one lock
// acquisition, one buffer flush and (under SyncEveryCommit) one fsync —
// the durability amortization that makes group commit pay.
func (w *WAL) AppendCommitBatch(batch []txn.GroupCommit) error {
	if len(batch) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, c := range batch {
		w.writeCommitLocked(c.TS, c.Writes)
	}
	return w.finish()
}

// writeCommitLocked serializes one commit record; caller holds w.mu and
// is responsible for finish(). Each record advances the LSN.
func (w *WAL) writeCommitLocked(ts uint64, writes []txn.Write) {
	w.w.WriteByte(recCommit)
	writeUvarint(w.w, ts)
	writeUvarint(w.w, uint64(len(writes)))
	for _, wr := range writes {
		w.w.WriteByte(byte(wr.Kind))
		writeString(w.w, wr.Table)
		writeUvarint(w.w, uint64(wr.Pos))
		writeUvarint(w.w, uint64(len(wr.Row)))
		for _, v := range wr.Row {
			writeValue(w.w, v)
		}
	}
	w.lsn++
}

// AppendMerge logs a delta→main merge so replay compacts deterministically
// at the same point in the redo stream.
func (w *WAL) AppendMerge(table string, watermark uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.WriteByte(recMerge)
	writeString(w.w, table)
	writeUvarint(w.w, watermark)
	w.lsn++
	return w.finish()
}

// finish flushes buffered records and syncs per the mode; the caller has
// already advanced the LSN per record.
func (w *WAL) finish() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.mode == SyncEveryCommit {
		return w.f.Sync()
	}
	return nil
}

// Attach subscribes the WAL to a transaction manager: every group-commit
// batch is appended (and synced per the mode) as one unit before control
// returns to the committers.
func (w *WAL) Attach(m *txn.Manager) {
	m.OnCommitGroup(func(batch []txn.GroupCommit) {
		// A failed append in this simulation is fatal to durability; we
		// surface it loudly rather than silently losing the tail.
		if err := w.AppendCommitBatch(batch); err != nil {
			panic(fmt.Sprintf("wal: append failed: %v", err))
		}
	})
}

// ReplayFn receives each log record during replay. mergeTable is empty for
// commit records; writes is nil for merge records.
type ReplayFn func(ts uint64, writes []txn.Write, mergeTable string, watermark uint64) error

// Replay streams the records of the log at path. A truncated trailing
// record (torn write at crash) terminates replay cleanly.
func Replay(path string, fn ReplayFn) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		kind, err := r.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch kind {
		case recCommit:
			ts, err := binary.ReadUvarint(r)
			if err != nil {
				return truncated(err)
			}
			n, err := binary.ReadUvarint(r)
			if err != nil {
				return truncated(err)
			}
			writes := make([]txn.Write, 0, n)
			for i := uint64(0); i < n; i++ {
				var wr txn.Write
				kb, err := r.ReadByte()
				if err != nil {
					return truncated(err)
				}
				wr.Kind = txn.WriteKind(kb)
				if wr.Table, err = readString(r); err != nil {
					return truncated(err)
				}
				pos, err := binary.ReadUvarint(r)
				if err != nil {
					return truncated(err)
				}
				wr.Pos = int(pos)
				rn, err := binary.ReadUvarint(r)
				if err != nil {
					return truncated(err)
				}
				wr.Row = make(value.Row, rn)
				for c := range wr.Row {
					if wr.Row[c], err = readValue(r); err != nil {
						return truncated(err)
					}
				}
				writes = append(writes, wr)
			}
			if err := fn(ts, writes, "", 0); err != nil {
				return err
			}
		case recMerge:
			table, err := readString(r)
			if err != nil {
				return truncated(err)
			}
			wm, err := binary.ReadUvarint(r)
			if err != nil {
				return truncated(err)
			}
			if err := fn(0, nil, table, wm); err != nil {
				return err
			}
		default:
			return fmt.Errorf("wal: corrupt record kind %d", kind)
		}
	}
}

func truncated(err error) error {
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		return nil // torn tail: recover up to the last complete record
	}
	return err
}

// --- value / string binary codec -----------------------------------------

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(w *bufio.Writer, v value.Value) {
	w.WriteByte(byte(v.K))
	switch v.K {
	case value.KindNull:
	case value.KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
		w.Write(buf[:])
	case value.KindString:
		writeString(w, v.S)
	default:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
		w.Write(buf[:])
	}
}

func readValue(r *bufio.Reader) (value.Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return value.Null, err
	}
	k := value.Kind(kb)
	switch k {
	case value.KindNull:
		return value.Null, nil
	case value.KindFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return value.Null, err
		}
		return value.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case value.KindString:
		s, err := readString(r)
		if err != nil {
			return value.Null, err
		}
		return value.String(s), nil
	default:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return value.Null, err
		}
		return value.Value{K: k, I: int64(binary.LittleEndian.Uint64(buf[:]))}, nil
	}
}

// --- checkpoints -----------------------------------------------------------

const checkpointMagic = "HNCKPT01"

// WriteCheckpoint captures the exact physical state (schemas, row slots,
// MVCC stamps) of the given tables at clock time ts into path. The write
// is atomic: a temp file renamed into place.
func WriteCheckpoint(path string, ts uint64, tables map[string]*columnstore.Table) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	w := bufio.NewWriter(f)
	w.WriteString(checkpointMagic)
	writeUvarint(w, ts)
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	writeUvarint(w, uint64(len(names)))
	for _, name := range names {
		t := tables[name]
		snap := t.Snapshot(^uint64(0) - 1)
		writeString(w, name)
		schema := t.Schema()
		writeUvarint(w, uint64(len(schema)))
		for _, c := range schema {
			writeString(w, c.Name)
			w.WriteByte(byte(c.Kind))
		}
		n := snap.NumRows()
		writeUvarint(w, uint64(n))
		for i := 0; i < n; i++ {
			writeUvarint(w, snap.Created(i))
			writeUvarint(w, snap.Deleted(i))
			for c := range schema {
				writeValue(w, snap.Get(c, i))
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint and returns the reconstructed tables
// and the clock timestamp at capture.
func LoadCheckpoint(path string) (map[string]*columnstore.Table, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != checkpointMagic {
		return nil, 0, fmt.Errorf("wal: bad checkpoint header")
	}
	ts, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, 0, err
	}
	nt, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, 0, err
	}
	tables := make(map[string]*columnstore.Table, nt)
	for ti := uint64(0); ti < nt; ti++ {
		name, err := readString(r)
		if err != nil {
			return nil, 0, err
		}
		nc, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, 0, err
		}
		schema := make(columnstore.Schema, nc)
		for c := range schema {
			if schema[c].Name, err = readString(r); err != nil {
				return nil, 0, err
			}
			kb, err := r.ReadByte()
			if err != nil {
				return nil, 0, err
			}
			schema[c].Kind = value.Kind(kb)
		}
		tab := columnstore.NewTable(name, schema)
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, 0, err
		}
		rows := make([]value.Row, 0, n)
		created := make([]uint64, 0, n)
		deleted := make([]uint64, 0, n)
		for i := uint64(0); i < n; i++ {
			cts, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, 0, err
			}
			dts, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, 0, err
			}
			row := make(value.Row, nc)
			for c := range row {
				if row[c], err = readValue(r); err != nil {
					return nil, 0, err
				}
			}
			rows = append(rows, row)
			created = append(created, cts)
			deleted = append(deleted, dts)
		}
		tab.ApplyInsertStamped(rows, created, deleted)
		tables[name] = tab
	}
	return tables, ts, nil
}

// --- store orchestration -----------------------------------------------

// Store bundles a transaction manager with a WAL and checkpoint directory,
// providing logged merges, checkpointing, backup/restore and recovery.
type Store struct {
	Dir string
	Mgr *txn.Manager
	Log *WAL

	recovered []string // table names restored from the checkpoint
}

// OpenStore recovers (or initializes) a durable store in dir: loads the
// latest checkpoint if present, replays the WAL suffix, and attaches a
// fresh WAL for new commits.
func OpenStore(dir string, mode SyncMode) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	mgr := txn.NewManager()
	var maxTS uint64 = 1

	ckptPath := filepath.Join(dir, "checkpoint.db")
	var ckptTS uint64
	var recovered []string
	if tables, ts, err := LoadCheckpoint(ckptPath); err == nil {
		ckptTS = ts
		maxTS = ts
		for name, t := range tables {
			mgr.Register(t)
			recovered = append(recovered, name)
		}
		sort.Strings(recovered)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	logPath := filepath.Join(dir, "redo.log")
	err := Replay(logPath, func(ts uint64, writes []txn.Write, mergeTable string, watermark uint64) error {
		if mergeTable != "" {
			if t, ok := mgr.Table(mergeTable); ok && watermark > ckptTS {
				t.Merge(watermark)
			}
			return nil
		}
		if ts <= ckptTS {
			return nil // already in the checkpoint
		}
		if ts > maxTS {
			maxTS = ts
		}
		for _, w := range writes {
			t, ok := mgr.Table(w.Table)
			if !ok {
				continue // table dropped later; tolerated
			}
			switch w.Kind {
			case txn.WriteInsert:
				t.ApplyInsert([]value.Row{w.Row}, ts)
			case txn.WriteDelete:
				t.ApplyDelete(w.Pos, ts)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mgr.AdvanceTo(maxTS)

	log, err := Open(logPath, mode)
	if err != nil {
		return nil, err
	}
	s := &Store{Dir: dir, Mgr: mgr, Log: log, recovered: recovered}
	// One listener for the lifetime of the store; it always appends to the
	// store's current log so checkpointing can swap the file underneath.
	mgr.OnCommitGroup(func(batch []txn.GroupCommit) {
		if err := s.Log.AppendCommitBatch(batch); err != nil {
			panic(fmt.Sprintf("wal: append failed: %v", err))
		}
	})
	return s, nil
}

// RecoveredTables lists the tables reconstructed from the checkpoint at
// open, so higher layers can rebuild their catalogs.
func (s *Store) RecoveredTables() []*columnstore.Table {
	var out []*columnstore.Table
	for _, name := range s.recovered {
		if t, ok := s.Mgr.Table(name); ok {
			out = append(out, t)
		}
	}
	return out
}

// MergeTable runs a logged delta→main merge on the named table. The merge
// executes as an exclusive job between group-commit batches, so the merge
// record lands in the log in true execution order relative to commit
// records — replay then renumbers positions at exactly the same point in
// the redo stream as the live run did.
func (s *Store) MergeTable(name string) (columnstore.MergeStats, error) {
	t, ok := s.Mgr.Table(name)
	if !ok {
		return columnstore.MergeStats{}, fmt.Errorf("wal: unknown table %q", name)
	}
	var st columnstore.MergeStats
	var aerr error
	s.Mgr.RunExclusive(name, func(wm uint64) {
		if aerr = s.Log.AppendMerge(name, wm); aerr != nil {
			return
		}
		st = t.Merge(wm)
	})
	if aerr != nil {
		return columnstore.MergeStats{}, aerr
	}
	return st, nil
}

// StartMerger launches a background merge daemon whose merges are logged
// through this store (see txn.Merger).
func (s *Store) StartMerger(threshold int, interval time.Duration) *txn.Merger {
	return s.Mgr.StartMerger(txn.MergerConfig{
		Threshold: threshold,
		Interval:  interval,
		Merge: func(name string) error {
			_, err := s.MergeTable(name)
			return err
		},
	})
}

// Checkpoint captures the current state and truncates the redo log.
func (s *Store) Checkpoint(tables map[string]*columnstore.Table) error {
	ts := s.Mgr.Now()
	if err := WriteCheckpoint(filepath.Join(s.Dir, "checkpoint.db"), ts, tables); err != nil {
		return err
	}
	// Truncate the log: records up to ts are superseded by the checkpoint.
	// (Records after ts cannot exist yet because commits are serialized
	// through the manager and the caller quiesced writers.)
	if err := s.Log.Close(); err != nil {
		return err
	}
	if err := os.Truncate(filepath.Join(s.Dir, "redo.log"), 0); err != nil {
		return err
	}
	log, err := Open(filepath.Join(s.Dir, "redo.log"), s.Log.mode)
	if err != nil {
		return err
	}
	s.Log = log
	return nil
}

// Backup writes a consistent full backup (a checkpoint file) to path.
func (s *Store) Backup(path string, tables map[string]*columnstore.Table) error {
	return WriteCheckpoint(path, s.Mgr.Now(), tables)
}

// RestoreBackup loads a backup into a fresh manager.
func RestoreBackup(path string) (*txn.Manager, error) {
	tables, ts, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	mgr := txn.NewManager()
	for _, t := range tables {
		mgr.Register(t)
	}
	mgr.AdvanceTo(ts)
	return mgr, nil
}
