package timeseries

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// The sensor-data codec: delta-of-delta varint encoding for timestamps
// (regular sampling intervals collapse to single zero bytes) and
// Gorilla-style XOR encoding for values (slowly changing sensor readings
// collapse to single bits). This is the "powerful compression mechanism,
// which is especially useful for sensor data" of §II-F; experiment E2
// measures the ratios.

// Encode serializes a series into the compressed representation.
func Encode(s *Series) []byte {
	s.ensureSorted()
	samples := s.samples
	var out []byte
	var tmp [binary.MaxVarintLen64]byte

	// Header: count.
	n := binary.PutUvarint(tmp[:], uint64(len(samples)))
	out = append(out, tmp[:n]...)
	if len(samples) == 0 {
		return out
	}

	// Timestamps: first absolute, then delta, then delta-of-delta.
	n = binary.PutVarint(tmp[:], samples[0].TS)
	out = append(out, tmp[:n]...)
	var prevTS, prevDelta int64
	prevTS = samples[0].TS
	for i := 1; i < len(samples); i++ {
		delta := samples[i].TS - prevTS
		dod := delta - prevDelta
		n = binary.PutVarint(tmp[:], dod)
		out = append(out, tmp[:n]...)
		prevTS, prevDelta = samples[i].TS, delta
	}

	// Values: XOR with the previous value, bit-packed.
	bw := &bitWriter{}
	prevBits := math.Float64bits(samples[0].Val)
	bw.writeBits(prevBits, 64)
	prevLead, prevTrail := uint8(65), uint8(0) // invalid -> force new window
	for i := 1; i < len(samples); i++ {
		cur := math.Float64bits(samples[i].Val)
		xor := cur ^ prevBits
		prevBits = cur
		if xor == 0 {
			bw.writeBit(0)
			continue
		}
		bw.writeBit(1)
		lead := uint8(bits.LeadingZeros64(xor))
		trail := uint8(bits.TrailingZeros64(xor))
		if lead > 31 {
			lead = 31
		}
		if prevLead <= 64 && lead >= prevLead && trail >= prevTrail {
			// Reuse the previous window.
			bw.writeBit(0)
			bw.writeBits(xor>>prevTrail, int(64-prevLead-prevTrail))
		} else {
			bw.writeBit(1)
			bw.writeBits(uint64(lead), 5)
			sig := 64 - lead - trail
			bw.writeBits(uint64(sig-1), 6) // sig in [1,64] stored as sig-1
			bw.writeBits(xor>>trail, int(sig))
			prevLead, prevTrail = lead, trail
		}
	}
	return append(out, bw.bytes()...)
}

// Decode reverses Encode.
func Decode(data []byte) (*Series, error) {
	pos := 0
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("timeseries: corrupt header")
	}
	pos += n
	s := New()
	if count == 0 {
		return s, nil
	}

	ts0, n := binary.Varint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("timeseries: corrupt first timestamp")
	}
	pos += n
	timestamps := make([]int64, count)
	timestamps[0] = ts0
	prevTS, prevDelta := ts0, int64(0)
	for i := uint64(1); i < count; i++ {
		dod, n := binary.Varint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("timeseries: corrupt timestamp %d", i)
		}
		pos += n
		delta := prevDelta + dod
		prevTS += delta
		prevDelta = delta
		timestamps[i] = prevTS
	}

	br := &bitReader{data: data[pos:]}
	first, err := br.readBits(64)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, count)
	vals[0] = math.Float64frombits(first)
	prevBits := first
	var lead, trail uint8
	lead = 65
	for i := uint64(1); i < count; i++ {
		b, err := br.readBit()
		if err != nil {
			return nil, err
		}
		if b == 0 {
			vals[i] = math.Float64frombits(prevBits)
			continue
		}
		b, err = br.readBit()
		if err != nil {
			return nil, err
		}
		if b == 1 {
			l, err := br.readBits(5)
			if err != nil {
				return nil, err
			}
			sigBits, err := br.readBits(6)
			if err != nil {
				return nil, err
			}
			sig := sigBits + 1
			lead = uint8(l)
			trail = uint8(64 - l - sig)
		}
		sig := 64 - lead - trail
		x, err := br.readBits(int(sig))
		if err != nil {
			return nil, err
		}
		prevBits ^= x << trail
		vals[i] = math.Float64frombits(prevBits)
	}

	for i := uint64(0); i < count; i++ {
		s.Append(timestamps[i], vals[i])
	}
	return s, nil
}

// RawSize returns the uncompressed footprint (16 bytes per sample).
func RawSize(s *Series) int { return s.Len() * 16 }

// --- bit-level IO -----------------------------------------------------

type bitWriter struct {
	buf  []byte
	cur  byte
	nbit uint8
}

func (w *bitWriter) writeBit(b byte) {
	w.cur = w.cur<<1 | (b & 1)
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

func (w *bitWriter) writeBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.writeBit(byte(v >> uint(i) & 1))
	}
}

func (w *bitWriter) bytes() []byte {
	out := w.buf
	if w.nbit > 0 {
		out = append(out, w.cur<<(8-w.nbit))
	}
	return out
}

type bitReader struct {
	data []byte
	pos  int
	nbit uint8
}

func (r *bitReader) readBit() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("timeseries: bitstream exhausted")
	}
	b := r.data[r.pos] >> (7 - r.nbit) & 1
	r.nbit++
	if r.nbit == 8 {
		r.pos++
		r.nbit = 0
	}
	return b, nil
}

func (r *bitReader) readBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}
