package timeseries

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqlexec"
)

func TestAppendKeepsOrder(t *testing.T) {
	s := New()
	s.Append(30, 3)
	s.Append(10, 1)
	s.Append(20, 2)
	ss := s.Samples()
	if ss[0].TS != 10 || ss[1].TS != 20 || ss[2].TS != 30 {
		t.Fatalf("samples=%v", ss)
	}
}

func TestSliceAndStats(t *testing.T) {
	s := New()
	for i := int64(0); i < 10; i++ {
		s.Append(i*100, float64(i))
	}
	sub := s.Slice(200, 500)
	if sub.Len() != 4 || sub.At(0).TS != 200 || sub.At(3).TS != 500 {
		t.Fatalf("slice=%v", sub.Samples())
	}
	n, mean, min, max, std := s.Stats()
	if n != 10 || mean != 4.5 || min != 0 || max != 9 {
		t.Fatalf("stats=%v %v %v %v %v", n, mean, min, max, std)
	}
	if math.Abs(std-2.8722813) > 1e-6 {
		t.Fatalf("std=%v", std)
	}
}

func TestResample(t *testing.T) {
	s := New()
	for i := int64(0); i < 60; i++ {
		s.Append(i, float64(i%10))
	}
	for _, c := range []struct {
		agg  AggKind
		val0 float64
	}{
		{AggAvg, 4.5}, {AggSum, 45}, {AggMin, 0}, {AggMax, 9},
		{AggFirst, 0}, {AggLast, 9}, {AggCount, 10},
	} {
		rs, err := s.Resample(10, c.agg)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Len() != 6 || rs.At(0).Val != c.val0 {
			t.Fatalf("%s: %v", c.agg, rs.Samples()[:1])
		}
	}
	if _, err := s.Resample(0, AggAvg); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestFillGaps(t *testing.T) {
	s := New()
	s.Append(0, 0)
	s.Append(40, 4)
	filled := s.FillGaps(10)
	if filled.Len() != 5 {
		t.Fatalf("filled=%v", filled.Samples())
	}
	if filled.At(2).TS != 20 || filled.At(2).Val != 2 {
		t.Fatalf("interp=%v", filled.At(2))
	}
}

func TestMovingAvgAndDiff(t *testing.T) {
	s := New()
	for i := int64(1); i <= 5; i++ {
		s.Append(i, float64(i))
	}
	ma := s.MovingAvg(2)
	if ma.At(0).Val != 1 || ma.At(1).Val != 1.5 || ma.At(4).Val != 4.5 {
		t.Fatalf("ma=%v", ma.Samples())
	}
	d := s.Diff()
	if d.Len() != 4 {
		t.Fatalf("diff len=%d", d.Len())
	}
	for _, x := range d.Samples() {
		if x.Val != 1 {
			t.Fatalf("diff=%v", d.Samples())
		}
	}
}

func TestCorrelation(t *testing.T) {
	a, b, c := New(), New(), New()
	for i := int64(0); i < 50; i++ {
		a.Append(i, float64(i))
		b.Append(i, float64(i)*2+5) // perfectly correlated
		c.Append(i, -float64(i))    // perfectly anti-correlated
	}
	if r := Correlation(a, b); math.Abs(r-1) > 1e-9 {
		t.Fatalf("corr=%v", r)
	}
	if r := Correlation(a, c); math.Abs(r+1) > 1e-9 {
		t.Fatalf("anticorr=%v", r)
	}
	// Disjoint timestamps -> 0.
	d := New()
	d.Append(1000, 1)
	if r := Correlation(a, d); r != 0 {
		t.Fatalf("disjoint corr=%v", r)
	}
}

func TestNormalize(t *testing.T) {
	s := New()
	for i := int64(0); i < 10; i++ {
		s.Append(i, float64(i)*3+7)
	}
	n, mean, _, _, std := s.Normalize().Stats()
	if n != 10 || math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
		t.Fatalf("normalized mean=%v std=%v", mean, std)
	}
}

func TestCodecRoundTripExact(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(5))
	ts := int64(1_700_000_000_000_000)
	val := 20.0
	for i := 0; i < 1000; i++ {
		ts += 60_000_000 // regular minute interval
		if i%50 == 0 {
			ts += int64(rng.Intn(1000)) // occasional jitter
		}
		val += rng.Float64() - 0.5
		s.Append(ts, val)
	}
	enc := Encode(s)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != s.Len() {
		t.Fatalf("len=%d", dec.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if s.At(i) != dec.At(i) {
			t.Fatalf("sample %d: %v != %v", i, s.At(i), dec.At(i))
		}
	}
}

func TestCodecCompressesSensorData(t *testing.T) {
	// Typical sensor pattern: regular timestamps, slowly drifting values.
	s := New()
	ts := int64(0)
	for i := 0; i < 10000; i++ {
		ts += 1_000_000
		s.Append(ts, 21.5) // constant temperature
	}
	enc := Encode(s)
	ratio := float64(RawSize(s)) / float64(len(enc))
	if ratio < 12 {
		t.Fatalf("constant-series compression ratio only %.1fx", ratio)
	}
}

func TestCodecPropertyRandomSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func() bool {
		s := New()
		n := rng.Intn(200)
		ts := int64(rng.Intn(1 << 30))
		for i := 0; i < n; i++ {
			ts += int64(rng.Intn(1000)) + 1
			s.Append(ts, rng.NormFloat64()*1e6)
		}
		dec, err := Decode(Encode(s))
		if err != nil || dec.Len() != s.Len() {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if s.At(i) != dec.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecEmptyAndSingle(t *testing.T) {
	if dec, err := Decode(Encode(New())); err != nil || dec.Len() != 0 {
		t.Fatal("empty round trip")
	}
	s := New()
	s.Append(42, 3.14)
	dec, err := Decode(Encode(s))
	if err != nil || dec.Len() != 1 || dec.At(0) != s.At(0) {
		t.Fatal("single round trip")
	}
	if _, err := Decode([]byte{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestForecastSES(t *testing.T) {
	s := New()
	for i := int64(0); i < 20; i++ {
		s.Append(i, 100)
	}
	fc, err := SES(s, 0.5, 3)
	if err != nil || len(fc) != 3 || math.Abs(fc[0]-100) > 1e-9 {
		t.Fatalf("fc=%v err=%v", fc, err)
	}
	if _, err := SES(New(), 0.5, 1); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := SES(s, 0, 1); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestForecastHoltTracksTrend(t *testing.T) {
	s := New()
	for i := int64(0); i < 50; i++ {
		s.Append(i, float64(i)*2) // slope 2
	}
	fc, err := Holt(s, 0.8, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Next value should be near 2*50 = 100 and rising ~2 per step.
	if math.Abs(fc[0]-100) > 5 {
		t.Fatalf("fc[0]=%v", fc[0])
	}
	if fc[4] <= fc[0] {
		t.Fatal("trend not extrapolated")
	}
}

func TestForecastHoltWintersSeasonal(t *testing.T) {
	s := New()
	for i := int64(0); i < 48; i++ {
		seasonal := 10 * math.Sin(2*math.Pi*float64(i%12)/12)
		s.Append(i, 50+seasonal)
	}
	fc, err := HoltWinters(s, 0.3, 0.05, 0.3, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	// The forecast's seasonal swing should roughly match the signal's.
	minV, maxV := fc[0], fc[0]
	for _, v := range fc {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV-minV < 10 {
		t.Fatalf("seasonality lost: range=%v", maxV-minV)
	}
	if _, err := HoltWinters(s, 0.3, 0.05, 0.3, 40, 2); err == nil {
		t.Fatal("insufficient seasons accepted")
	}
}

func TestSQLSeriesView(t *testing.T) {
	eng := sqlexec.NewEngine()
	v := Attach(eng)
	eng.MustQuery(`CREATE TABLE readings (sensor VARCHAR, ts INT, val DOUBLE)`)
	for i := 0; i < 120; i++ {
		eng.MustQuery(fmt.Sprintf(`INSERT INTO readings VALUES ('temp', %d, %f)`, i*1_000_000, 20+float64(i)*0.1))
		eng.MustQuery(fmt.Sprintf(`INSERT INTO readings VALUES ('humid', %d, %f)`, i*1_000_000, 80-float64(i)*0.2))
	}
	if err := v.CreateSeriesView("sensors", "readings", "sensor", "ts", "val"); err != nil {
		t.Fatal(err)
	}
	// Resolution adaptation via SQL: 2-minute buckets.
	r := eng.MustQuery(`SELECT COUNT(*) FROM TABLE(TS_RESAMPLE('sensors', 'temp', 60000000, 'avg')) b`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("buckets=%v", r.Rows[0][0])
	}
	// Correlation across sensors: perfectly anti-correlated.
	r = eng.MustQuery(`SELECT TS_CORRELATION('sensors', 'temp', 'humid')`)
	if c := r.Rows[0][0].F; math.Abs(c+1) > 1e-6 {
		t.Fatalf("corr=%v", c)
	}
	// Forecast continues the trend upward.
	r = eng.MustQuery(`SELECT val FROM TABLE(TS_FORECAST('sensors', 'temp', 3)) f WHERE f.step = 1`)
	if r.Rows[0][0].F < 31 {
		t.Fatalf("forecast=%v", r.Rows[0][0])
	}
	// Compressed size is far below raw.
	r = eng.MustQuery(`SELECT TS_COMPRESSED_BYTES('sensors', 'temp')`)
	if r.Rows[0][0].I >= 120*16 {
		t.Fatalf("compressed=%v bytes", r.Rows[0][0])
	}
}

func TestSeriesViewErrors(t *testing.T) {
	eng := sqlexec.NewEngine()
	v := Attach(eng)
	if err := v.CreateSeriesView("x", "missing", "a", "b", "c"); err == nil {
		t.Fatal("missing table accepted")
	}
	if _, err := v.Series("ghost", "k"); err == nil {
		t.Fatal("missing view accepted")
	}
}
