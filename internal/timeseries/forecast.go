package timeseries

import "fmt"

// Forecasting (§II-B "a variety of forecasting algorithms"): simple and
// double (Holt) exponential smoothing, plus seasonal Holt-Winters for
// cyclic sensor loads.

// SES returns a simple-exponential-smoothing forecast of the next h values
// with smoothing factor alpha.
func SES(s *Series, alpha float64, h int) ([]float64, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("timeseries: alpha must be in (0,1]")
	}
	samples := s.Samples()
	if len(samples) == 0 {
		return nil, fmt.Errorf("timeseries: empty series")
	}
	level := samples[0].Val
	for _, x := range samples[1:] {
		level = alpha*x.Val + (1-alpha)*level
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = level
	}
	return out, nil
}

// Holt returns a double-exponential-smoothing (trend-aware) forecast.
func Holt(s *Series, alpha, beta float64, h int) ([]float64, error) {
	samples := s.Samples()
	if len(samples) < 2 {
		return nil, fmt.Errorf("timeseries: Holt needs at least 2 samples")
	}
	level := samples[0].Val
	trend := samples[1].Val - samples[0].Val
	for _, x := range samples[1:] {
		prevLevel := level
		level = alpha*x.Val + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = level + float64(i+1)*trend
	}
	return out, nil
}

// HoltWinters returns an additive seasonal forecast with the given season
// length.
func HoltWinters(s *Series, alpha, beta, gamma float64, season, h int) ([]float64, error) {
	samples := s.Samples()
	if season < 2 || len(samples) < 2*season {
		return nil, fmt.Errorf("timeseries: need at least two full seasons")
	}
	// Initial level/trend from the first two seasons.
	var s1, s2 float64
	for i := 0; i < season; i++ {
		s1 += samples[i].Val
		s2 += samples[season+i].Val
	}
	s1 /= float64(season)
	s2 /= float64(season)
	level := s1
	trend := (s2 - s1) / float64(season)
	seasonal := make([]float64, season)
	for i := 0; i < season; i++ {
		seasonal[i] = samples[i].Val - s1
	}

	for i := season; i < len(samples); i++ {
		x := samples[i].Val
		si := i % season
		prevLevel := level
		level = alpha*(x-seasonal[si]) + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
		seasonal[si] = gamma*(x-level) + (1-gamma)*seasonal[si]
	}

	out := make([]float64, h)
	for i := 0; i < h; i++ {
		si := (len(samples) + i) % season
		out[i] = level + float64(i+1)*trend + seasonal[si]
	}
	return out, nil
}
