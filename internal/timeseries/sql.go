package timeseries

import (
	"fmt"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

// Views maps relational (key, timestamp, value) tables to named series and
// registers the SQL surface of the time series engine:
//
//	TABLE(TS_RESAMPLE('view', 'key', step_us, 'avg'))  → (ts, val)
//	TABLE(TS_FORECAST('view', 'key', h))               → (step, val)
//	TS_CORRELATION('view', 'key1', 'key2')             → scalar
//	TS_COMPRESSED_BYTES('view', 'key')                 → scalar (codec size)
type Views struct {
	mu   sync.Mutex
	eng  *sqlexec.Engine
	defs map[string]*seriesView
}

type seriesView struct {
	table  string
	keyCol string
	tsCol  string
	valCol string
}

// Attach installs the time series engine into a relational engine.
func Attach(eng *sqlexec.Engine) *Views {
	v := &Views{eng: eng, defs: map[string]*seriesView{}}

	eng.Reg.RegisterScalar("TS_CORRELATION", func(a []value.Value) (value.Value, error) {
		if len(a) != 3 {
			return value.Null, fmt.Errorf("timeseries: TS_CORRELATION(view, key1, key2)")
		}
		s1, err := v.Series(a[0].AsString(), a[1].AsString())
		if err != nil {
			return value.Null, err
		}
		s2, err := v.Series(a[0].AsString(), a[2].AsString())
		if err != nil {
			return value.Null, err
		}
		return value.Float(Correlation(s1, s2)), nil
	})
	eng.Reg.RegisterScalar("TS_COMPRESSED_BYTES", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, fmt.Errorf("timeseries: TS_COMPRESSED_BYTES(view, key)")
		}
		s, err := v.Series(a[0].AsString(), a[1].AsString())
		if err != nil {
			return value.Null, err
		}
		return value.Int(int64(len(Encode(s)))), nil
	})
	eng.Reg.RegisterTable("TS_RESAMPLE", columnstore.Schema{
		{Name: "ts", Kind: value.KindInt},
		{Name: "val", Kind: value.KindFloat},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 4 {
			return nil, fmt.Errorf("timeseries: TS_RESAMPLE(view, key, step, agg)")
		}
		s, err := v.Series(a[0].AsString(), a[1].AsString())
		if err != nil {
			return nil, err
		}
		rs, err := s.Resample(a[2].AsInt(), AggKind(a[3].AsString()))
		if err != nil {
			return nil, err
		}
		var out []value.Row
		for _, x := range rs.Samples() {
			out = append(out, value.Row{value.Int(x.TS), value.Float(x.Val)})
		}
		return out, nil
	})
	eng.Reg.RegisterTable("TS_FORECAST", columnstore.Schema{
		{Name: "step", Kind: value.KindInt},
		{Name: "val", Kind: value.KindFloat},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 3 {
			return nil, fmt.Errorf("timeseries: TS_FORECAST(view, key, h)")
		}
		s, err := v.Series(a[0].AsString(), a[1].AsString())
		if err != nil {
			return nil, err
		}
		fc, err := Holt(s, 0.5, 0.3, int(a[2].AsInt()))
		if err != nil {
			return nil, err
		}
		var out []value.Row
		for i, x := range fc {
			out = append(out, value.Row{value.Int(int64(i + 1)), value.Float(x)})
		}
		return out, nil
	})
	return v
}

// CreateSeriesView declares that table(keyCol, tsCol, valCol) holds one
// series per key value.
func (v *Views) CreateSeriesView(name, table, keyCol, tsCol, valCol string) error {
	entry, ok := v.eng.Cat.Table(table)
	if !ok {
		return fmt.Errorf("timeseries: unknown table %q", table)
	}
	for _, c := range []string{keyCol, tsCol, valCol} {
		if entry.Schema.ColIndex(c) < 0 {
			return fmt.Errorf("timeseries: column %q not in %s", c, table)
		}
	}
	v.mu.Lock()
	v.defs[name] = &seriesView{table: table, keyCol: keyCol, tsCol: tsCol, valCol: valCol}
	v.mu.Unlock()
	return nil
}

// Series materializes the series of one key at the current snapshot.
func (v *Views) Series(view, key string) (*Series, error) {
	v.mu.Lock()
	d, ok := v.defs[view]
	v.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("timeseries: no series view %q", view)
	}
	entry, ok := v.eng.Cat.Table(d.table)
	if !ok {
		return nil, fmt.Errorf("timeseries: table %q dropped", d.table)
	}
	ki := entry.Schema.ColIndex(d.keyCol)
	ti := entry.Schema.ColIndex(d.tsCol)
	vi := entry.Schema.ColIndex(d.valCol)
	out := New()
	ts := v.eng.Mgr.Now()
	for _, p := range entry.Partitions {
		snap := p.Table.Snapshot(ts)
		for pos := 0; pos < snap.NumRows(); pos++ {
			if !snap.Visible(pos) || snap.Get(ki, pos).AsString() != key {
				continue
			}
			out.Append(snap.Get(ti, pos).AsInt(), snap.Get(vi, pos).AsFloat())
		}
	}
	return out, nil
}
