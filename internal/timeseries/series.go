// Package timeseries implements the time series engine of §II-F: a native
// series type with "large compression factors" (delta-of-delta timestamps
// and XOR-encoded floats, the sensor-data codec), resolution adaptation
// (downsampling), comparison and correlation functions, transformations
// (moving aggregates, gap filling, normalization) and forecasting (§II-B)
// — all integrated with the relational engine through SQL functions.
package timeseries

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one observation.
type Sample struct {
	TS  int64 // microseconds since epoch
	Val float64
}

// Series is a time-ordered sequence of samples.
type Series struct {
	samples []Sample
	sorted  bool
}

// New returns an empty series.
func New() *Series { return &Series{sorted: true} }

// FromSamples builds a series, sorting by timestamp.
func FromSamples(ss []Sample) *Series {
	s := &Series{samples: append([]Sample(nil), ss...)}
	s.sortSamples()
	return s
}

// Append adds one observation.
func (s *Series) Append(ts int64, val float64) {
	if n := len(s.samples); n > 0 && ts < s.samples[n-1].TS {
		s.sorted = false
	}
	s.samples = append(s.samples, Sample{ts, val})
}

func (s *Series) sortSamples() {
	sort.SliceStable(s.samples, func(a, b int) bool { return s.samples[a].TS < s.samples[b].TS })
	s.sorted = true
}

func (s *Series) ensureSorted() {
	if !s.sorted {
		s.sortSamples()
	}
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.samples) }

// Samples returns the ordered observations (callers must not mutate).
func (s *Series) Samples() []Sample {
	s.ensureSorted()
	return s.samples
}

// At returns the i-th sample in time order.
func (s *Series) At(i int) Sample {
	s.ensureSorted()
	return s.samples[i]
}

// Slice returns the sub-series within [from, to].
func (s *Series) Slice(from, to int64) *Series {
	s.ensureSorted()
	lo := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].TS >= from })
	hi := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].TS > to })
	return FromSamples(s.samples[lo:hi])
}

// Stats returns count, mean, min, max and standard deviation.
func (s *Series) Stats() (n int, mean, min, max, std float64) {
	n = len(s.samples)
	if n == 0 {
		return 0, 0, 0, 0, 0
	}
	min, max = math.MaxFloat64, -math.MaxFloat64
	for _, x := range s.samples {
		mean += x.Val
		if x.Val < min {
			min = x.Val
		}
		if x.Val > max {
			max = x.Val
		}
	}
	mean /= float64(n)
	for _, x := range s.samples {
		std += (x.Val - mean) * (x.Val - mean)
	}
	std = math.Sqrt(std / float64(n))
	return n, mean, min, max, std
}

// AggKind selects the bucket aggregate for resampling.
type AggKind string

// Supported resampling aggregates.
const (
	AggAvg   AggKind = "avg"
	AggSum   AggKind = "sum"
	AggMin   AggKind = "min"
	AggMax   AggKind = "max"
	AggFirst AggKind = "first"
	AggLast  AggKind = "last"
	AggCount AggKind = "count"
)

// Resample buckets the series at the given step (resolution adaptation,
// §II-F). Bucket timestamps are the bucket starts; empty buckets are
// omitted.
func (s *Series) Resample(step int64, agg AggKind) (*Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("timeseries: step must be positive")
	}
	s.ensureSorted()
	out := New()
	i := 0
	for i < len(s.samples) {
		bucket := s.samples[i].TS - mod(s.samples[i].TS, step)
		end := bucket + step
		var vals []float64
		for i < len(s.samples) && s.samples[i].TS < end {
			vals = append(vals, s.samples[i].Val)
			i++
		}
		out.Append(bucket, aggregate(vals, agg))
	}
	return out, nil
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

func aggregate(vals []float64, agg AggKind) float64 {
	switch agg {
	case AggSum:
		t := 0.0
		for _, v := range vals {
			t += v
		}
		return t
	case AggMin:
		m := vals[0]
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return m
	case AggMax:
		m := vals[0]
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m
	case AggFirst:
		return vals[0]
	case AggLast:
		return vals[len(vals)-1]
	case AggCount:
		return float64(len(vals))
	default: // AggAvg
		t := 0.0
		for _, v := range vals {
			t += v
		}
		return t / float64(len(vals))
	}
}

// FillGaps inserts linearly interpolated samples so consecutive timestamps
// are at most step apart.
func (s *Series) FillGaps(step int64) *Series {
	s.ensureSorted()
	out := New()
	for i, cur := range s.samples {
		out.Append(cur.TS, cur.Val)
		if i+1 >= len(s.samples) {
			break
		}
		next := s.samples[i+1]
		for ts := cur.TS + step; ts < next.TS; ts += step {
			frac := float64(ts-cur.TS) / float64(next.TS-cur.TS)
			out.Append(ts, cur.Val+frac*(next.Val-cur.Val))
		}
	}
	return out
}

// MovingAvg returns the trailing moving average over window samples.
func (s *Series) MovingAvg(window int) *Series {
	s.ensureSorted()
	out := New()
	sum := 0.0
	for i, x := range s.samples {
		sum += x.Val
		if i >= window {
			sum -= s.samples[i-window].Val
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out.Append(x.TS, sum/float64(n))
	}
	return out
}

// Diff returns the first difference series (len-1 samples).
func (s *Series) Diff() *Series {
	s.ensureSorted()
	out := New()
	for i := 1; i < len(s.samples); i++ {
		out.Append(s.samples[i].TS, s.samples[i].Val-s.samples[i-1].Val)
	}
	return out
}

// Normalize returns the z-score transformed series.
func (s *Series) Normalize() *Series {
	_, mean, _, _, std := s.Stats()
	out := New()
	for _, x := range s.samples {
		v := 0.0
		if std > 0 {
			v = (x.Val - mean) / std
		}
		out.Append(x.TS, v)
	}
	return out
}

// Correlation returns the Pearson correlation of two series joined on
// timestamp (comparison function of §II-F). Returns 0 when fewer than two
// common points exist.
func Correlation(a, b *Series) float64 {
	a.ensureSorted()
	b.ensureSorted()
	bv := make(map[int64]float64, b.Len())
	for _, x := range b.samples {
		bv[x.TS] = x.Val
	}
	var xs, ys []float64
	for _, x := range a.samples {
		if y, ok := bv[x.TS]; ok {
			xs = append(xs, x.Val)
			ys = append(ys, y)
		}
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
