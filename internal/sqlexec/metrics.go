package sqlexec

import "repro/internal/stats"

// Vectorized-execution observability. Like the column store, the executor
// has no per-instance registry path inside Run, so morsel and kernel
// accounting reports into the process-wide default registry (the SOE
// stats service folds it into every collection). Counters are cached at
// package level so the hot path pays one atomic add, never a lookup.
var (
	// cVecQueries counts queries answered by the vectorized path;
	// cVecPlanFallbacks counts queries that fell back to row-at-a-time
	// because the plan contained a shape the batch operators don't cover.
	cVecQueries       = stats.Default.Counter("sql_vec_queries_total")
	cVecPlanFallbacks = stats.Default.Counter("sql_vec_plan_fallbacks_total")

	// cVecMorsels counts dispatched morsels; cVecKernelHits counts scan
	// conjuncts bound to an encoded-column kernel (per partition), and
	// cVecKernelFallbacks those evaluated by the generic row expression
	// instead.
	cVecMorsels         = stats.Default.Counter("sql_vec_morsels_total")
	cVecKernelHits      = stats.Default.Counter("sql_vec_kernel_hits_total")
	cVecKernelFallbacks = stats.Default.Counter("sql_vec_kernel_fallbacks_total")

	// hVecWorkerBusy records per-worker busy time per query, exposing
	// morsel-pool utilization skew.
	hVecWorkerBusy = stats.Default.Histogram("sql_vec_worker_busy_us")

	// Compressed-execution counters: join probe keys resolved as integer
	// codes, RLE runs folded whole into aggregates, operator batches fused
	// past an intermediate materialization, and the estimated boxed bytes
	// never materialized because of late materialization.
	cVecCodesJoined   = stats.Default.Counter("sql_vec_codes_joined_total")
	cVecRunsFolded    = stats.Default.Counter("sql_vec_runs_folded_total")
	cVecBatchesFused  = stats.Default.Counter("sql_vec_batches_fused_total")
	cVecDecodeAvoided = stats.Default.Counter("sql_vec_decode_bytes_avoided_total")
)
