package sqlexec

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// The virtual-table provider behind the `sys` schema of monitoring views
// (HANA's M_* views, §II): each view is a name, a schema, and a snapshot
// function over some live subsystem. Nothing is stored — a scan
// materializes a consistent snapshot at execution time, so any SQL client
// (pgwire included) can observe the engine through its own query surface.
// Subsystems outside sqlexec (pgwire, extstore, soe) register their views
// onto an engine's SysCatalog at wiring time.

// SysTable is one virtual monitoring view.
type SysTable struct {
	Name   string // fully qualified, e.g. "sys.m_statements"
	Schema columnstore.Schema
	// Snapshot materializes the view. Called once per scan; the returned
	// rows are the consistent snapshot that scan iterates.
	Snapshot func() ([]value.Row, error)
}

// SysCatalog is the registry of virtual views an engine serves. All
// methods are nil-safe so planners without one resolve nothing.
type SysCatalog struct {
	mu     sync.RWMutex
	tables map[string]*SysTable
}

// NewSysCatalog returns an empty virtual-view registry.
func NewSysCatalog() *SysCatalog {
	return &SysCatalog{tables: map[string]*SysTable{}}
}

// Register installs (or replaces) a virtual view under its fully
// qualified name.
func (sc *SysCatalog) Register(name string, schema columnstore.Schema, snap func() ([]value.Row, error)) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.tables[name] = &SysTable{Name: name, Schema: schema, Snapshot: snap}
}

// Lookup resolves a fully qualified view name.
func (sc *SysCatalog) Lookup(name string) (*SysTable, bool) {
	if sc == nil {
		return nil, false
	}
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	t, ok := sc.tables[name]
	return t, ok
}

// Names lists the registered views, sorted.
func (sc *SysCatalog) Names() []string {
	if sc == nil {
		return nil
	}
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	out := make([]string, 0, len(sc.tables))
	for n := range sc.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VirtualScanPlan scans one sys view. All three executors materialize the
// snapshot when the scan starts and then stream it like any base table,
// so filters, joins and aggregates compose over monitoring data
// unchanged.
type VirtualScanPlan struct {
	Table *SysTable
	Alias string
	cols  []colInfo
}

func (p *VirtualScanPlan) columns() []colInfo { return p.cols }

// newVirtualIter materializes the snapshot and streams it; shared by the
// interpreted and compiled executors (the same build-then-iterate shape
// as table functions).
func newVirtualIter(p *VirtualScanPlan, ctx *execCtx) (iterator, error) {
	rows, err := p.Table.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("sql: %s snapshot: %w", p.Table.Name, err)
	}
	ctx.mu.Lock()
	ctx.stats.RowsScanned += len(rows)
	ctx.mu.Unlock()
	return &tableFuncIter{rows: rows}, nil
}

// vecVirtual is the vectorized scan: the snapshot is taken when the
// pipeline runs and emitted in batches.
func vecVirtual(x *VirtualScanPlan, ctx *execCtx) (vpipe, error) {
	return func(emit func(rows []value.Row) error) error {
		rows, err := x.Table.Snapshot()
		if err != nil {
			return fmt.Errorf("sql: %s snapshot: %w", x.Table.Name, err)
		}
		ctx.mu.Lock()
		ctx.stats.RowsScanned += len(rows)
		ctx.mu.Unlock()
		const batch = 1024
		for i := 0; i < len(rows); i += batch {
			j := i + batch
			if j > len(rows) {
				j = len(rows)
			}
			if err := emit(rows[i:j]); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
