package sqlexec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/txn"
)

// TestHTAPChaosIngestMergeScan runs the full HTAP triangle through the
// SQL surface: concurrent sessions ingesting and updating, a background
// merge daemon compacting the delta underneath them, and analytic
// sessions scanning throughout. Every row carries amt=1, so the invariant
// COUNT(*) == SUM(amt) must hold in every analytic read — a torn commit,
// a mid-merge snapshot or a misapplied delete all break it.
func TestHTAPChaosIngestMergeScan(t *testing.T) {
	e := NewEngine()
	e.MustQuery(`CREATE TABLE ev (k INT, amt INT)`)
	merger := e.Mgr.StartMerger(txn.MergerConfig{Threshold: 64, Interval: time.Millisecond})
	defer merger.Stop()

	const writers = 3
	const readers = 2
	const perWriter = 60
	var wWg, rWg sync.WaitGroup
	var inserted, updates, deletes, conflicts atomic.Int64
	errCh := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wWg.Add(1)
		go func(w int) {
			defer wWg.Done()
			sess := e.NewSession()
			for i := 0; i < perWriter; i++ {
				base := w*100000 + i*10
				var b strings.Builder
				b.WriteString("INSERT INTO ev VALUES ")
				for j := 0; j < 5; j++ {
					if j > 0 {
						b.WriteString(", ")
					}
					fmt.Fprintf(&b, "(%d, 1)", base+j)
				}
				if _, err := sess.Query(b.String()); err != nil {
					errCh <- err
					return
				}
				inserted.Add(5)
				// A third of the iterations also mutate: updates keep amt=1
				// so the invariant survives; deletes remove count and sum
				// together.
				switch i % 3 {
				case 1:
					if _, err := sess.Query(fmt.Sprintf(`UPDATE ev SET k = k WHERE k = %d`, base)); err != nil {
						if strings.Contains(err.Error(), "conflict") {
							conflicts.Add(1)
							continue
						}
						errCh <- err
						return
					}
					updates.Add(1)
				case 2:
					res, err := sess.Query(fmt.Sprintf(`DELETE FROM ev WHERE k = %d`, base+1))
					if err != nil {
						if strings.Contains(err.Error(), "conflict") {
							conflicts.Add(1)
							continue
						}
						errCh <- err
						return
					}
					deletes.Add(res.Rows[0][0].AsInt())
				}
			}
		}(w)
	}

	var scans atomic.Int64
	stopReaders := make(chan struct{})
	for r := 0; r < readers; r++ {
		rWg.Add(1)
		go func() {
			defer rWg.Done()
			sess := e.NewSession()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				res, err := sess.Query(`SELECT COUNT(*), SUM(amt) FROM ev`)
				if err != nil {
					errCh <- err
					return
				}
				cnt := res.Rows[0][0].AsInt()
				sum := int64(0)
				if !res.Rows[0][1].IsNull() {
					sum = res.Rows[0][1].AsInt()
				}
				if cnt != sum {
					errCh <- fmt.Errorf("analytic invariant broken: COUNT=%d SUM=%d", cnt, sum)
					return
				}
				scans.Add(1)
			}
		}()
	}

	wWg.Wait()
	close(stopReaders)
	rWg.Wait()

	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Final exactness: every acknowledged write is reflected.
	want := inserted.Load() - deletes.Load()
	got := e.MustQuery(`SELECT COUNT(*) FROM ev`).Rows[0][0].AsInt()
	if got != want {
		t.Fatalf("final count=%d, want %d (inserted=%d deleted=%d)", got, want, inserted.Load(), deletes.Load())
	}
	if scans.Load() == 0 {
		t.Fatal("no analytic scans completed during ingest")
	}
	if merger.Merges() == 0 {
		t.Fatal("background merger never fired during the chaos run")
	}
	t.Logf("chaos: %d inserts, %d updates, %d deletes, %d conflicts, %d analytic scans, %d background merges",
		inserted.Load(), updates.Load(), deletes.Load(), conflicts.Load(), scans.Load(), merger.Merges())
}
