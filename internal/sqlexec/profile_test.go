package sqlexec

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/value"
)

// profileEngine bulk-loads a fact/dimension pair big enough that a
// join+aggregate takes measurable wall time under every executor.
func profileEngine(t testing.TB) *Engine {
	t.Helper()
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE fact (id INT, dim_id INT, grp VARCHAR, v DOUBLE)`)
	mustExec(t, e, `CREATE TABLE dim (id INT, name VARCHAR)`)
	const n = 60_000
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.Int(int64(i)),
			value.Int(int64(i % 500)),
			value.String(fmt.Sprintf("g%d", i%8)),
			value.Float(float64(i % 1000)),
		}
	}
	e.Cat.MustTable("fact").Primary().ApplyInsert(rows, 1)
	e.Cat.MustTable("fact").Primary().Merge(2)
	drows := make([]value.Row, 500)
	for i := range drows {
		drows[i] = value.Row{value.Int(int64(i)), value.String(fmt.Sprintf("n%03d", i))}
	}
	e.Cat.MustTable("dim").Primary().ApplyInsert(drows, 1)
	e.Cat.MustTable("dim").Primary().Merge(2)
	e.Mgr.AdvanceTo(2)
	return e
}

const profileQuery = `SELECT name, COUNT(*), SUM(v) FROM fact JOIN dim ON fact.dim_id = dim.id WHERE fact.v < 800 GROUP BY name`

// Acceptance: per-operator self times must telescope back to the
// statement's wall time (within 20%) on all three executors.
func TestAnalyzeSQLOperatorTimesSumToTotal(t *testing.T) {
	e := profileEngine(t)
	for _, tc := range []struct {
		name string
		mode Mode
	}{
		{"interpreted", ModeInterpreted},
		{"compiled", ModeCompiled},
		{"vectorized", ModeVectorized},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e.Mode = tc.mode
			res, prof, err := e.AnalyzeSQL(profileQuery)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("no result rows")
			}
			if prof.Mode != tc.mode {
				t.Fatalf("profile mode %v, want %v", prof.Mode, tc.mode)
			}
			total, ops := prof.Total, prof.OperatorTotal()
			if total <= 0 || ops <= 0 {
				t.Fatalf("degenerate times: total=%v ops=%v", total, ops)
			}
			diff := total - ops
			if diff < 0 {
				diff = -diff
			}
			if float64(diff) > 0.20*float64(total) {
				t.Fatalf("operator sum %v deviates more than 20%% from total %v\n%s", ops, total, prof.Render())
			}
			text := prof.Render()
			for _, want := range []string{"Aggregate", "HashJoin", "Scan fact", "Scan dim", "rows_out="} {
				if !strings.Contains(text, want) {
					t.Fatalf("render missing %q:\n%s", want, text)
				}
			}
		})
	}
}

// Join profiles report the hash-table build size (right input) and probe
// size (left input) on every executor.
func TestAnalyzeJoinBuildProbeSizes(t *testing.T) {
	e := profileEngine(t)
	for _, mode := range []Mode{ModeInterpreted, ModeCompiled, ModeVectorized} {
		e.Mode = mode
		_, prof, err := e.AnalyzeSQL(`SELECT COUNT(*) FROM fact JOIN dim ON fact.dim_id = dim.id`)
		if err != nil {
			t.Fatal(err)
		}
		var join *OpProfile
		var walk func(o *OpProfile)
		walk = func(o *OpProfile) {
			if strings.HasPrefix(o.Label, "HashJoin") {
				join = o
			}
			for _, c := range o.Children {
				walk(c)
			}
		}
		walk(prof.Root)
		if join == nil {
			t.Fatalf("mode %v: no join operator in\n%s", mode, prof.Render())
		}
		if b, p := join.buildRows.Load(), join.probeRows.Load(); b != 500 || p != 60_000 {
			t.Fatalf("mode %v: build=%d probe=%d, want 500/60000", mode, b, p)
		}
	}
}

// The vectorized fused agg+scan keeps morsel, worker-occupancy and
// kernel-vs-fallback counters on the scan node even though the scan never
// runs as its own pipeline stage.
func TestAnalyzeVectorizedFusedScanCounters(t *testing.T) {
	e := profileEngine(t)
	e.Mode = ModeVectorized
	e.Workers = 2
	_, prof, err := e.AnalyzeSQL(`SELECT grp, COUNT(*) FROM fact WHERE v < 500 GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	text := prof.Render()
	if !strings.Contains(text, "(fused into parent)") {
		t.Fatalf("scan not marked fused:\n%s", text)
	}
	scan := prof.Root
	for scan != nil && !strings.HasPrefix(scan.Label, "Scan") {
		if len(scan.Children) == 0 {
			scan = nil
			break
		}
		scan = scan.Children[len(scan.Children)-1]
	}
	if scan == nil {
		t.Fatalf("no scan node in\n%s", text)
	}
	if scan.morsels.Load() == 0 || scan.rowsScanned.Load() != 60_000 {
		t.Fatalf("scan counters: morsels=%d rows_scanned=%d", scan.morsels.Load(), scan.rowsScanned.Load())
	}
	if scan.kernelHits.Load() == 0 {
		t.Fatalf("v < 500 should bind a float kernel:\n%s", text)
	}
	if scan.busyNS.Load() == 0 {
		t.Fatal("no worker busy time recorded")
	}
	if !strings.Contains(text, "occupancy=") {
		t.Fatalf("no occupancy in render:\n%s", text)
	}
}

// EXPLAIN ANALYZE is reachable as plain SQL through a session.
func TestExplainAnalyzeStatement(t *testing.T) {
	e := profileEngine(t)
	res, err := e.Query(`EXPLAIN ANALYZE ` + profileQuery)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, r := range res.Rows {
		text.WriteString(r[0].AsString() + "\n")
	}
	got := text.String()
	for _, want := range []string{"EXPLAIN ANALYZE (vectorized", "total=", "HashJoin", "Scan fact"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

// With a threshold set, slow statements are retained with their profiles;
// the log is bounded and evicts oldest-first.
func TestSlowQueryLogRetainsProfiles(t *testing.T) {
	e := profileEngine(t)
	e.SlowThreshold = time.Nanosecond // everything is slow
	e.SlowLogCap = 2
	for i := 0; i < 3; i++ {
		mustExec(t, e, fmt.Sprintf(`SELECT COUNT(*) FROM dim WHERE id > %d`, i))
	}
	slow := e.SlowQueries()
	if len(slow) != 2 {
		t.Fatalf("slow log length %d, want 2 (bounded)", len(slow))
	}
	if e.SlowQueryCount() != 3 {
		t.Fatalf("slow total %d, want 3", e.SlowQueryCount())
	}
	// Newest first; the oldest statement (id > 0) was evicted.
	if !strings.Contains(slow[0].SQL, "id > 2") || !strings.Contains(slow[1].SQL, "id > 1") {
		t.Fatalf("wrong retention order: %q, %q", slow[0].SQL, slow[1].SQL)
	}
	for _, q := range slow {
		if q.Profile == nil || q.Profile.Total <= 0 || q.Profile.Root == nil {
			t.Fatalf("slow query retained without profile: %+v", q)
		}
		if q.Total != q.Profile.Total {
			t.Fatalf("total mismatch: %v vs %v", q.Total, q.Profile.Total)
		}
	}
	// Fast queries stay out once the threshold is realistic.
	e.SlowThreshold = time.Hour
	mustExec(t, e, `SELECT COUNT(*) FROM dim`)
	if e.SlowQueryCount() != 3 {
		t.Fatalf("fast query leaked into slow log")
	}
}
