package sqlexec

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Env is the runtime environment of a compiled expression: the current
// input row plus statement parameters.
type Env struct {
	Row    value.Row
	Params []value.Value
}

// evalFn is a compiled expression: AST is resolved and bound once per
// statement; evaluation touches no maps or name lookups.
type evalFn func(env *Env) value.Value

// colResolver maps a (qualifier, name) pair to an ordinal in Env.Row.
type colResolver func(qual, name string) (int, error)

// compileExpr binds an expression tree against a row shape. All column
// references resolve to ordinals at compile time.
func compileExpr(e Expr, resolve colResolver, reg *Registry) (evalFn, error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return func(*Env) value.Value { return v }, nil

	case *ColRef:
		idx, err := resolve(x.Qual, x.Name)
		if err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			if idx >= len(env.Row) {
				return value.Null
			}
			return env.Row[idx]
		}, nil

	case *Param:
		idx := x.Index
		return func(env *Env) value.Value {
			if idx >= len(env.Params) {
				return value.Null
			}
			return env.Params[idx]
		}, nil

	case *BinaryExpr:
		l, err := compileExpr(x.L, resolve, reg)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.R, resolve, reg)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return func(env *Env) value.Value { return value.Add(l(env), r(env)) }, nil
		case "-":
			return func(env *Env) value.Value { return value.Sub(l(env), r(env)) }, nil
		case "*":
			return func(env *Env) value.Value { return value.Mul(l(env), r(env)) }, nil
		case "/":
			return func(env *Env) value.Value { return value.Div(l(env), r(env)) }, nil
		case "%":
			return func(env *Env) value.Value { return value.Mod(l(env), r(env)) }, nil
		case "||":
			return func(env *Env) value.Value {
				a, b := l(env), r(env)
				if a.IsNull() || b.IsNull() {
					return value.Null
				}
				return value.String(a.AsString() + b.AsString())
			}, nil
		case "=":
			return cmpFn(l, r, func(c int) bool { return c == 0 }), nil
		case "<>":
			return cmpFn(l, r, func(c int) bool { return c != 0 }), nil
		case "<":
			return cmpFn(l, r, func(c int) bool { return c < 0 }), nil
		case "<=":
			return cmpFn(l, r, func(c int) bool { return c <= 0 }), nil
		case ">":
			return cmpFn(l, r, func(c int) bool { return c > 0 }), nil
		case ">=":
			return cmpFn(l, r, func(c int) bool { return c >= 0 }), nil
		case "AND":
			return func(env *Env) value.Value {
				lv := l(env)
				if !lv.IsNull() && !lv.AsBool() {
					return value.Bool(false)
				}
				rv := r(env)
				if !rv.IsNull() && !rv.AsBool() {
					return value.Bool(false)
				}
				if lv.IsNull() || rv.IsNull() {
					return value.Null
				}
				return value.Bool(true)
			}, nil
		case "OR":
			return func(env *Env) value.Value {
				lv := l(env)
				if !lv.IsNull() && lv.AsBool() {
					return value.Bool(true)
				}
				rv := r(env)
				if !rv.IsNull() && rv.AsBool() {
					return value.Bool(true)
				}
				if lv.IsNull() || rv.IsNull() {
					return value.Null
				}
				return value.Bool(false)
			}, nil
		case "LIKE":
			return func(env *Env) value.Value {
				a, b := l(env), r(env)
				if a.IsNull() || b.IsNull() {
					return value.Null
				}
				return value.Bool(likeMatch(a.AsString(), b.AsString()))
			}, nil
		}
		return nil, fmt.Errorf("sql: unknown operator %q", x.Op)

	case *UnaryExpr:
		inner, err := compileExpr(x.E, resolve, reg)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return func(env *Env) value.Value {
				v := inner(env)
				if v.IsNull() {
					return value.Null
				}
				return value.Bool(!v.AsBool())
			}, nil
		}
		return func(env *Env) value.Value { return value.Neg(inner(env)) }, nil

	case *FuncExpr:
		if aggNames[x.Name] {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
		}
		fn, ok := reg.Scalar(x.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown function %s", x.Name)
		}
		args := make([]evalFn, len(x.Args))
		for i, a := range x.Args {
			f, err := compileExpr(a, resolve, reg)
			if err != nil {
				return nil, err
			}
			args[i] = f
		}
		return func(env *Env) value.Value {
			vals := make([]value.Value, len(args))
			for i, f := range args {
				vals[i] = f(env)
			}
			out, err := fn(vals)
			if err != nil {
				return value.Null
			}
			return out
		}, nil

	case *CaseExpr:
		type arm struct{ cond, then evalFn }
		arms := make([]arm, len(x.Whens))
		for i, w := range x.Whens {
			c, err := compileExpr(w.Cond, resolve, reg)
			if err != nil {
				return nil, err
			}
			t, err := compileExpr(w.Then, resolve, reg)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{c, t}
		}
		var els evalFn
		if x.Else != nil {
			f, err := compileExpr(x.Else, resolve, reg)
			if err != nil {
				return nil, err
			}
			els = f
		}
		return func(env *Env) value.Value {
			for _, a := range arms {
				if c := a.cond(env); !c.IsNull() && c.AsBool() {
					return a.then(env)
				}
			}
			if els != nil {
				return els(env)
			}
			return value.Null
		}, nil

	case *InExpr:
		inner, err := compileExpr(x.E, resolve, reg)
		if err != nil {
			return nil, err
		}
		list := make([]evalFn, len(x.List))
		for i, v := range x.List {
			f, err := compileExpr(v, resolve, reg)
			if err != nil {
				return nil, err
			}
			list[i] = f
		}
		not := x.Not
		return func(env *Env) value.Value {
			v := inner(env)
			if v.IsNull() {
				return value.Null
			}
			for _, f := range list {
				if value.Equal(v, f(env)) {
					return value.Bool(!not)
				}
			}
			return value.Bool(not)
		}, nil

	case *BetweenExpr:
		inner, err := compileExpr(x.E, resolve, reg)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(x.Lo, resolve, reg)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(x.Hi, resolve, reg)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(env *Env) value.Value {
			v := inner(env)
			if v.IsNull() {
				return value.Null
			}
			in := value.Compare(v, lo(env)) >= 0 && value.Compare(v, hi(env)) <= 0
			return value.Bool(in != not)
		}, nil

	case *IsNullExpr:
		inner, err := compileExpr(x.E, resolve, reg)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(env *Env) value.Value {
			return value.Bool(inner(env).IsNull() != not)
		}, nil
	}
	return nil, fmt.Errorf("sql: cannot compile %T", e)
}

func cmpFn(l, r evalFn, test func(int) bool) evalFn {
	return func(env *Env) value.Value {
		a, b := l(env), r(env)
		if a.IsNull() || b.IsNull() {
			return value.Null
		}
		return value.Bool(test(value.Compare(a, b)))
	}
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || !strings.EqualFold(string(s[0]), string(p[0])) {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// exprString renders an expression for plan explanations and error text.
func exprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Literal:
		if x.Val.K == value.KindString {
			return "'" + x.Val.S + "'"
		}
		return x.Val.AsString()
	case *ColRef:
		if x.Qual != "" {
			return x.Qual + "." + x.Name
		}
		return x.Name
	case *Param:
		return "?"
	case *BinaryExpr:
		return "(" + exprString(x.L) + " " + x.Op + " " + exprString(x.R) + ")"
	case *UnaryExpr:
		return x.Op + " " + exprString(x.E)
	case *FuncExpr:
		var args []string
		if x.Star {
			args = []string{"*"}
		}
		for _, a := range x.Args {
			args = append(args, exprString(a))
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *CaseExpr:
		return "CASE ..."
	case *InExpr:
		return exprString(x.E) + " IN (...)"
	case *BetweenExpr:
		return exprString(x.E) + " BETWEEN " + exprString(x.Lo) + " AND " + exprString(x.Hi)
	case *IsNullExpr:
		if x.Not {
			return exprString(x.E) + " IS NOT NULL"
		}
		return exprString(x.E) + " IS NULL"
	}
	return fmt.Sprintf("%T", e)
}

// collectColRefs gathers all column references in an expression.
func collectColRefs(e Expr, out *[]*ColRef) {
	switch x := e.(type) {
	case nil:
	case *ColRef:
		*out = append(*out, x)
	case *BinaryExpr:
		collectColRefs(x.L, out)
		collectColRefs(x.R, out)
	case *UnaryExpr:
		collectColRefs(x.E, out)
	case *FuncExpr:
		for _, a := range x.Args {
			collectColRefs(a, out)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			collectColRefs(w.Cond, out)
			collectColRefs(w.Then, out)
		}
		collectColRefs(x.Else, out)
	case *InExpr:
		collectColRefs(x.E, out)
		for _, v := range x.List {
			collectColRefs(v, out)
		}
	case *BetweenExpr:
		collectColRefs(x.E, out)
		collectColRefs(x.Lo, out)
		collectColRefs(x.Hi, out)
	case *IsNullExpr:
		collectColRefs(x.E, out)
	}
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// andAll rebuilds a conjunction; nil for an empty list.
func andAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: "AND", L: out, R: e}
		}
	}
	return out
}
