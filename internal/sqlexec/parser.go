package sqlexec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	st, _, err := ParseWithParams(src)
	return st, err
}

// ParseWithParams parses a single SQL statement and also reports how many
// positional parameter bindings it requires: the number of `?` occurrences
// or the highest `$N` reference, whichever the statement uses.
func ParseWithParams(src string) (Statement, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	p.accept(tkOp, ";")
	if !p.at(tkEOF, "") {
		return nil, 0, p.errf("trailing input %q", p.cur().text)
	}
	return st, p.params, nil
}

type parser struct {
	toks   []token
	i      int
	src    string
	params int
}

func (p *parser) cur() token {
	if p.i >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF sentinel
	}
	return p.toks[p.i]
}

func (p *parser) next() token {
	t := p.cur()
	if p.i < len(p.toks) {
		p.i++
	}
	return t
}

func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near byte %d of %q)", fmt.Sprintf(format, args...), p.cur().pos, truncate(p.src, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tkKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tkKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tkKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tkKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tkKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tkKeyword, "DROP"):
		return p.parseDrop()
	case p.at(tkKeyword, "MERGE"):
		return p.parseMergeDelta()
	default:
		return nil, p.errf("unsupported statement start %q", p.cur().text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept(tkKeyword, "DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(tkOp, ",") {
			break
		}
	}

	if p.accept(tkKeyword, "FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = ref
		for {
			left := false
			switch {
			case p.accept(tkKeyword, "JOIN"):
			case p.at(tkKeyword, "INNER"):
				p.next()
				if _, err := p.expect(tkKeyword, "JOIN"); err != nil {
					return nil, err
				}
			case p.at(tkKeyword, "LEFT"):
				p.next()
				p.accept(tkKeyword, "OUTER")
				if _, err := p.expect(tkKeyword, "JOIN"); err != nil {
					return nil, err
				}
				left = true
			default:
				goto afterJoins
			}
			jt, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Joins = append(s.Joins, JoinClause{Left: left, Table: jt, On: on})
		}
	}
afterJoins:

	if p.accept(tkKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(tkOp, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tkKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.accept(tkOp, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		s.Limit = n
		if p.accept(tkKeyword, "OFFSET") {
			off, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			s.Offset = off
		}
	}
	return s, nil
}

func (p *parser) parseIntLiteral() (int, error) {
	t, err := p.expect(tkNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tkOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// alias.* form
	if p.cur().kind == tkIdent && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].kind == tkOp && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tkOp && p.toks[p.i+2].text == "*" {
		qual := p.next().text
		p.next()
		p.next()
		return SelectItem{Star: true, Qual: qual}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tkKeyword, "AS") {
		t := p.next()
		if t.kind != tkIdent && t.kind != tkString {
			return item, p.errf("bad alias %q", t.text)
		}
		item.As = t.text
	} else if p.cur().kind == tkIdent {
		item.As = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	var ref TableRef
	switch {
	case p.accept(tkOp, "("):
		sub, err := p.parseSelect()
		if err != nil {
			return ref, err
		}
		if _, err := p.expect(tkOp, ")"); err != nil {
			return ref, err
		}
		ref.Subquery = sub
	case p.accept(tkKeyword, "TABLE"):
		if _, err := p.expect(tkOp, "("); err != nil {
			return ref, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return ref, err
		}
		fe, ok := e.(*FuncExpr)
		if !ok {
			return ref, p.errf("TABLE(...) requires a function call")
		}
		if _, err := p.expect(tkOp, ")"); err != nil {
			return ref, err
		}
		ref.Func = fe
	default:
		t := p.next()
		if t.kind != tkIdent {
			return ref, p.errf("expected table name, found %q", t.text)
		}
		ref.Name = t.text
		// Schema-qualified name (sys.m_statements): the full name resolves
		// the table; the default alias below is the bare second part so
		// column references qualify naturally.
		if p.accept(tkOp, ".") {
			t2, err := p.expect(tkIdent, "")
			if err != nil {
				return ref, err
			}
			ref.Name = ref.Name + "." + t2.text
		}
	}
	if p.accept(tkKeyword, "AS") {
		t, err := p.expect(tkIdent, "")
		if err != nil {
			return ref, err
		}
		ref.Alias = t.text
	} else if p.cur().kind == tkIdent {
		ref.Alias = p.next().text
	}
	if ref.Alias == "" {
		ref.Alias = ref.Name
		if i := strings.LastIndexByte(ref.Alias, '.'); i >= 0 {
			ref.Alias = ref.Alias[i+1:]
		}
	}
	if ref.Alias == "" {
		return ref, p.errf("derived tables and table functions need an alias")
	}
	return ref, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: t.text}
	if p.accept(tkOp, "(") {
		for {
			c, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c.text)
			if !p.accept(tkOp, ",") {
				break
			}
		}
		if _, err := p.expect(tkOp, ")"); err != nil {
			return nil, err
		}
	}
	if p.accept(tkKeyword, "VALUES") {
		for {
			if _, err := p.expect(tkOp, "("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(tkOp, ",") {
					break
				}
			}
			if _, err := p.expect(tkOp, ")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if !p.accept(tkOp, ",") {
				break
			}
		}
		return st, nil
	}
	if p.at(tkKeyword, "SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	}
	return nil, p.errf("INSERT needs VALUES or SELECT")
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: t.text}
	if _, err := p.expect(tkKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, struct {
			Col  string
			Expr Expr
		}{c.text, e})
		if !p.accept(tkOp, ",") {
			break
		}
	}
	if p.accept(tkKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: t.text}
	if p.accept(tkKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.accept(tkKeyword, "TABLE"):
		st := &CreateTableStmt{Options: map[string]string{}}
		if p.accept(tkKeyword, "IF") {
			if _, err := p.expect(tkKeyword, "NOT"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tkKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			st.IfNotExists = true
		}
		t, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, err
		}
		st.Name = t.text
		if _, err := p.expect(tkOp, "("); err != nil {
			return nil, err
		}
		for {
			c, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, err
			}
			ty := p.next()
			if ty.kind != tkIdent && ty.kind != tkKeyword {
				return nil, p.errf("bad type %q", ty.text)
			}
			st.Cols = append(st.Cols, ColDefAST{Name: c.text, Type: ty.text})
			if !p.accept(tkOp, ",") {
				break
			}
		}
		if _, err := p.expect(tkOp, ")"); err != nil {
			return nil, err
		}
		if p.accept(tkKeyword, "PARTITION") {
			if _, err := p.expect(tkKeyword, "BY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tkKeyword, "RANGE"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tkOp, "("); err != nil {
				return nil, err
			}
			c, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, err
			}
			st.PartitionBy = c.text
			if _, err := p.expect(tkOp, ")"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tkOp, "("); err != nil {
				return nil, err
			}
			for {
				neg := p.accept(tkOp, "-")
				n, err := p.parseIntLiteral()
				if err != nil {
					return nil, err
				}
				if neg {
					n = -n
				}
				st.Bounds = append(st.Bounds, int64(n))
				if !p.accept(tkOp, ",") {
					break
				}
			}
			if _, err := p.expect(tkOp, ")"); err != nil {
				return nil, err
			}
		}
		if p.accept(tkKeyword, "WITH") {
			if _, err := p.expect(tkOp, "("); err != nil {
				return nil, err
			}
			for {
				k, err := p.expect(tkIdent, "")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tkOp, "="); err != nil {
					return nil, err
				}
				v := p.next()
				if v.kind != tkString && v.kind != tkIdent && v.kind != tkNumber {
					return nil, p.errf("bad option value %q", v.text)
				}
				st.Options[k.text] = v.text
				if !p.accept(tkOp, ",") {
					break
				}
			}
			if _, err := p.expect(tkOp, ")"); err != nil {
				return nil, err
			}
		}
		return st, nil
	case p.accept(tkKeyword, "VIEW"):
		t, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: t.text, Select: sel}, nil
	default:
		return nil, p.errf("CREATE %q not supported", p.cur().text)
	}
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if _, err := p.expect(tkKeyword, "TABLE"); err != nil {
		return nil, err
	}
	st := &DropTableStmt{}
	if p.accept(tkKeyword, "IF") {
		if _, err := p.expect(tkKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	st.Name = t.text
	return st, nil
}

func (p *parser) parseMergeDelta() (Statement, error) {
	p.next() // MERGE
	if _, err := p.expect(tkKeyword, "DELTA"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "OF"); err != nil {
		return nil, err
	}
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	return &MergeDeltaStmt{Table: t.text}, nil
}

// --- expressions, precedence climbing ------------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tkKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tkKeyword, "IS") {
		not := p.accept(tkKeyword, "NOT")
		if _, err := p.expect(tkKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	}
	notIn := false
	if p.at(tkKeyword, "NOT") && p.i+1 < len(p.toks) &&
		(p.toks[p.i+1].text == "IN" || p.toks[p.i+1].text == "BETWEEN" || p.toks[p.i+1].text == "LIKE") {
		p.next()
		notIn = true
	}
	if p.accept(tkKeyword, "IN") {
		if _, err := p.expect(tkOp, "("); err != nil {
			return nil, err
		}
		ie := &InExpr{E: l, Not: notIn}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ie.List = append(ie.List, e)
			if !p.accept(tkOp, ",") {
				break
			}
		}
		if _, err := p.expect(tkOp, ")"); err != nil {
			return nil, err
		}
		return ie, nil
	}
	if p.accept(tkKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: notIn}, nil
	}
	if p.accept(tkKeyword, "LIKE") {
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		e := Expr(&BinaryExpr{Op: "LIKE", L: l, R: r})
		if notIn {
			e = &UnaryExpr{Op: "NOT", E: e}
		}
		return e, nil
	}
	for {
		var op string
		switch {
		case p.at(tkOp, "="), p.at(tkOp, "<"), p.at(tkOp, ">"), p.at(tkOp, "<="), p.at(tkOp, ">="), p.at(tkOp, "<>"), p.at(tkOp, "!="):
			op = p.next().text
			if op == "!=" {
				op = "<>"
			}
		default:
			return l, nil
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkOp, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.accept(tkOp, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		case p.accept(tkOp, "||"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "||", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkOp, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.accept(tkOp, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		case p.accept(tkOp, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tkOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			return &Literal{Val: value.Neg(lit.Val)}, nil
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tkNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Val: value.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Literal{Val: value.Int(n)}, nil
	case tkString:
		p.next()
		return &Literal{Val: value.String(t.text)}, nil
	case tkParam:
		p.next()
		if strings.HasPrefix(t.text, "$") {
			// $N references parameter N (1-based), PostgreSQL style; the
			// same parameter may appear more than once.
			n, err := strconv.Atoi(t.text[1:])
			if err != nil || n < 1 {
				return nil, p.errf("bad parameter reference %q", t.text)
			}
			if n > p.params {
				p.params = n
			}
			return &Param{Index: n - 1}, nil
		}
		p.params++
		return &Param{Index: p.params - 1}, nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: value.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: value.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: value.Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tkIdent:
		p.next()
		// Function call?
		if p.at(tkOp, "(") {
			return p.parseFuncCall(t.text)
		}
		// Qualified column?
		if p.accept(tkOp, ".") {
			c, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColRef{Qual: t.text, Name: c.text}, nil
		}
		return &ColRef{Name: t.text}, nil
	case tkOp:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.next() // (
	fe := &FuncExpr{Name: strings.ToUpper(name)}
	if p.accept(tkOp, "*") {
		fe.Star = true
		_, err := p.expect(tkOp, ")")
		return fe, err
	}
	if p.accept(tkOp, ")") {
		return fe, nil
	}
	fe.Distinct = p.accept(tkKeyword, "DISTINCT")
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fe.Args = append(fe.Args, e)
		if !p.accept(tkOp, ",") {
			break
		}
	}
	_, err := p.expect(tkOp, ")")
	return fe, err
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	ce := &CaseExpr{}
	for p.accept(tkKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, struct{ Cond, Then Expr }{cond, then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE needs at least one WHEN")
	}
	if p.accept(tkKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if _, err := p.expect(tkKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}
