package sqlexec

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/extstore"
	"repro/internal/value"
)

// ExecStats accounts what a statement touched; the aging (E6) and pushdown
// (E5) experiments read these counters.
type ExecStats struct {
	RowsScanned       int
	RowsOut           int
	PartitionsScanned int
	PartitionsPruned  int
	ColdPenaltyMicros int

	// Vectorized-executor accounting (zero on the row-at-a-time paths):
	// morsels dispatched, scan conjuncts bound to encoded-column kernels
	// (counted per partition) and conjuncts that fell back to the generic
	// expression evaluator.
	Morsels         int
	KernelHits      int
	KernelFallbacks int

	// Extended-store accounting: buffer-pool chunk faults triggered while
	// scanning warm partitions, and the wall time spent reading and
	// decoding their pages. Attribution is approximate under concurrent
	// queries (the counters diff a process-wide total).
	PageFaults      int
	PageFaultMicros int

	// Late-materialization accounting (compressed execution): join probe
	// keys answered as integer codes without decoding, RLE runs folded
	// whole into aggregates, operator batches fused past an intermediate
	// materialization, and an estimate of the boxed bytes never
	// materialized because of it (16 per skipped value).
	CodesJoined        int
	RunsFolded         int
	BatchesFused       int
	DecodeBytesAvoided int
}

// Result is a materialized query result.
type Result struct {
	Cols  []string
	Rows  []value.Row
	Stats ExecStats
}

// execCtx carries per-statement execution state. workers/pool/mu exist
// for the vectorized executor: one worker pool is shared by every batch
// operator of the statement, and morsel workers flush their stats under
// mu.
type execCtx struct {
	ts      uint64
	params  []value.Value
	reg     *Registry
	stats   *ExecStats
	workers int
	mu      sync.Mutex
	pool    *vecPool
	prof    *Profile // non-nil under EXPLAIN ANALYZE
}

// getPool lazily starts the statement's morsel worker pool.
func (ctx *execCtx) getPool() *vecPool {
	if ctx.pool == nil {
		ctx.pool = newVecPool(ctx.workers)
		if ctx.prof != nil {
			ctx.prof.Workers = ctx.pool.workers
		}
	}
	return ctx.pool
}

// Mode selects the executor implementation (experiment E4).
type Mode int

// Executor modes.
const (
	ModeCompiled    Mode = iota // fused closure pipelines
	ModeInterpreted             // Volcano-style iterator tree
	ModeVectorized              // morsel-parallel batch kernels (default)
)

// Run executes a plan to a materialized result with the default worker
// count (one morsel worker per CPU when vectorized).
func Run(p Plan, ts uint64, params []value.Value, reg *Registry, mode Mode) (*Result, error) {
	return RunWorkers(p, ts, params, reg, mode, 0)
}

// RunWorkers executes a plan to a materialized result. workers sizes the
// vectorized executor's morsel pool (<=0 means runtime.NumCPU()); the
// row-at-a-time modes ignore it.
func RunWorkers(p Plan, ts uint64, params []value.Value, reg *Registry, mode Mode, workers int) (*Result, error) {
	res, _, err := runMaybeProfiled(p, ts, params, reg, mode, workers, false)
	return res, err
}

// RunAnalyzed executes a plan like RunWorkers while also recording a
// per-operator Profile — the engine of EXPLAIN ANALYZE. The profile's
// Mode reflects the executor that actually ran the statement (a plan the
// batch operators don't cover falls back to the compiled pipeline).
func RunAnalyzed(p Plan, ts uint64, params []value.Value, reg *Registry, mode Mode, workers int) (*Result, *Profile, error) {
	return runMaybeProfiled(p, ts, params, reg, mode, workers, true)
}

func runMaybeProfiled(p Plan, ts uint64, params []value.Value, reg *Registry, mode Mode, workers int, profiled bool) (*Result, *Profile, error) {
	res := &Result{}
	for _, c := range p.columns() {
		res.Cols = append(res.Cols, c.Name)
	}
	ctx := &execCtx{ts: ts, params: params, reg: reg, stats: &res.Stats, workers: workers}
	var prof *Profile
	var t0 time.Time
	if profiled {
		prof = newProfile(p, mode, 0)
		ctx.prof = prof
		t0 = time.Now()
	}
	finish := func() {
		if prof == nil {
			return
		}
		prof.Total = time.Since(t0)
		prof.finish(p)
	}
	if mode == ModeVectorized {
		handled, err := runVectorized(p, ctx, res)
		if err != nil {
			return nil, nil, err
		}
		if handled {
			res.Stats.RowsOut = len(res.Rows)
			finish()
			return res, prof, nil
		}
		// Plan shape not covered by the batch operators: transparent
		// fallback to the compiled row pipeline.
		cVecPlanFallbacks.Inc()
		mode = ModeCompiled
		if prof != nil {
			prof.Mode = mode
		}
	}
	if mode == ModeInterpreted {
		it, err := buildIter(p, ctx)
		if err != nil {
			return nil, nil, err
		}
		if err := it.Open(); err != nil {
			return nil, nil, err
		}
		defer it.Close()
		for {
			row, ok, err := it.Next()
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				break
			}
			res.Rows = append(res.Rows, row)
		}
	} else {
		pipe, err := compilePlan(p, ctx)
		if err != nil {
			return nil, nil, err
		}
		if err := pipe(func(row value.Row) error {
			res.Rows = append(res.Rows, row)
			return nil
		}); err != nil {
			return nil, nil, err
		}
	}
	res.Stats.RowsOut = len(res.Rows)
	finish()
	return res, prof, nil
}

// --- Volcano-style interpreter -------------------------------------------

// iterator is the classic open/next/close operator interface. Every Next
// call crosses an interface boundary and materializes a boxed row — the
// per-tuple interpretation overhead query compilation removes (§IV-A).
type iterator interface {
	Open() error
	Next() (value.Row, bool, error)
	Close()
}

// buildIter constructs the operator for a plan node, attaching the
// analyze wrapper when the statement is profiled.
func buildIter(p Plan, ctx *execCtx) (iterator, error) {
	it, err := buildIterRaw(p, ctx)
	if err != nil {
		return nil, err
	}
	return ctx.prof.wrapIter(p, it), nil
}

func buildIterRaw(p Plan, ctx *execCtx) (iterator, error) {
	switch x := p.(type) {
	case *ScanPlan:
		return newScanIter(x, ctx)
	case *TableFuncPlan:
		return newTableFuncIter(x, ctx)
	case *VirtualScanPlan:
		return newVirtualIter(x, ctx)
	case *FilterPlan:
		child, err := buildIter(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		pred, err := compileExpr(x.Pred, resolverFor(x.Child.columns()), ctx.reg)
		if err != nil {
			return nil, err
		}
		return &filterIter{child: child, pred: pred, ctx: ctx}, nil
	case *ProjectPlan:
		child, err := buildIter(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		res := resolverFor(x.Child.columns())
		exprs := make([]evalFn, len(x.Exprs))
		for i, e := range x.Exprs {
			f, err := compileExpr(e, res, ctx.reg)
			if err != nil {
				return nil, err
			}
			exprs[i] = f
		}
		return &projectIter{child: child, exprs: exprs, ctx: ctx}, nil
	case *JoinPlan:
		return newJoinIter(x, ctx)
	case *AggPlan:
		return newAggIter(x, ctx)
	case *DistinctPlan:
		child, err := buildIter(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &distinctIter{child: child}, nil
	case *SortPlan:
		return newSortIter(x, ctx)
	case *LimitPlan:
		child, err := buildIter(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &limitIter{child: child, n: x.N, offset: x.Offset}, nil
	case *AliasPlan:
		return buildIter(x.Child, ctx)
	case *ValuesPlan:
		return newValuesIter(x, ctx)
	}
	return nil, fmt.Errorf("sql: no interpreter for %T", p)
}

// scanIter scans partitions row by row. Row counts accumulate in scanned
// and flush to the shared stats once per partition (and on Close) instead
// of bumping the counter on every row — per-row stats writes showed up in
// scan profiles.
type scanIter struct {
	plan    *ScanPlan
	ctx     *execCtx
	filter  evalFn
	parts   []*catalog.Partition
	pi      int
	snap    snapState
	pos     int
	scanned int
	env     Env
	op      *OpProfile // per-operator analyze counters; may be nil

	// Extended-store fault baseline, re-armed per partition so warm-scan
	// faults are charged to this operator.
	faults0  int64
	faultNS0 int64
	tracking bool
}

type snapState struct {
	snap interface {
		NumRows() int
		Visible(int) bool
		Row(int) value.Row
	}
	n int
}

func newScanIter(p *ScanPlan, ctx *execCtx) (*scanIter, error) {
	it := &scanIter{plan: p, ctx: ctx, parts: p.scanParts(), op: ctx.prof.node(p)}
	if p.Filter != nil {
		f, err := compileExpr(p.Filter, resolverFor(p.columns()), ctx.reg)
		if err != nil {
			return nil, err
		}
		it.filter = f
	}
	return it, nil
}

func (it *scanIter) Open() error {
	it.ctx.stats.PartitionsPruned += it.plan.Pruned
	if it.op != nil {
		it.op.partsPruned.Add(int64(it.plan.Pruned))
	}
	it.pi = -1
	it.snap.snap = nil
	it.env.Params = it.ctx.params
	return nil
}

// flushStats moves the locally accumulated row count into the shared
// statement stats. Idempotent between accumulations.
func (it *scanIter) flushStats() {
	if it.scanned > 0 {
		it.ctx.stats.RowsScanned += it.scanned
		if it.op != nil {
			it.op.rowsScanned.Add(int64(it.scanned))
		}
		it.scanned = 0
	}
	if it.tracking {
		attributeFaults(it.ctx.stats, it.op, it.faults0, it.faultNS0)
		it.faults0, it.faultNS0 = extstore.FaultCounters()
	}
}

func (it *scanIter) Next() (value.Row, bool, error) {
	for {
		if it.snap.snap == nil || it.pos >= it.snap.n {
			it.flushStats()
			it.pi++
			if it.pi >= len(it.parts) {
				return nil, false, nil
			}
			part := it.parts[it.pi]
			if part.ColdReadPenalty > 0 {
				time.Sleep(time.Duration(part.ColdReadPenalty) * time.Microsecond)
				it.ctx.stats.ColdPenaltyMicros += part.ColdReadPenalty
			}
			s := part.Table.Snapshot(it.ctx.ts)
			it.snap = snapState{snap: s, n: s.NumRows()}
			it.pos = 0
			it.faults0, it.faultNS0 = extstore.FaultCounters()
			it.tracking = true
			it.ctx.stats.PartitionsScanned++
			if it.op != nil {
				it.op.partsScanned.Add(1)
			}
			continue
		}
		pos := it.pos
		it.pos++
		if !it.snap.snap.Visible(pos) {
			continue
		}
		it.scanned++
		row := it.snap.snap.Row(pos)
		if it.filter != nil {
			it.env.Row = row
			if v := it.filter(&it.env); v.IsNull() || !v.AsBool() {
				continue
			}
		}
		return row, true, nil
	}
}

// Close flushes counts a LIMIT may have cut short mid-partition.
func (it *scanIter) Close() { it.flushStats() }

type tableFuncIter struct {
	rows []value.Row
	i    int
}

func newTableFuncIter(p *TableFuncPlan, ctx *execCtx) (iterator, error) {
	fn, ok := ctx.reg.Table(p.Name)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table function %s", p.Name)
	}
	args, err := evalConstArgs(p.Args, ctx)
	if err != nil {
		return nil, err
	}
	rows, err := fn.Fn(args)
	if err != nil {
		return nil, err
	}
	return &tableFuncIter{rows: rows}, nil
}

func evalConstArgs(args []Expr, ctx *execCtx) ([]value.Value, error) {
	out := make([]value.Value, len(args))
	env := Env{Params: ctx.params}
	for i, a := range args {
		f, err := compileExpr(a, func(q, n string) (int, error) {
			return 0, fmt.Errorf("sql: table function arguments must be constants")
		}, ctx.reg)
		if err != nil {
			return nil, err
		}
		out[i] = f(&env)
	}
	return out, nil
}

func (it *tableFuncIter) Open() error { it.i = 0; return nil }
func (it *tableFuncIter) Next() (value.Row, bool, error) {
	if it.i >= len(it.rows) {
		return nil, false, nil
	}
	r := it.rows[it.i]
	it.i++
	return r, true, nil
}
func (it *tableFuncIter) Close() {}

type filterIter struct {
	child iterator
	pred  evalFn
	ctx   *execCtx
	env   Env
}

func (it *filterIter) Open() error {
	it.env.Params = it.ctx.params
	return it.child.Open()
}

func (it *filterIter) Next() (value.Row, bool, error) {
	for {
		row, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.env.Row = row
		if v := it.pred(&it.env); !v.IsNull() && v.AsBool() {
			return row, true, nil
		}
	}
}

func (it *filterIter) Close() { it.child.Close() }

type projectIter struct {
	child iterator
	exprs []evalFn
	ctx   *execCtx
	env   Env
}

func (it *projectIter) Open() error {
	it.env.Params = it.ctx.params
	return it.child.Open()
}

func (it *projectIter) Next() (value.Row, bool, error) {
	row, ok, err := it.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.env.Row = row
	out := make(value.Row, len(it.exprs))
	for i, f := range it.exprs {
		out[i] = f(&it.env)
	}
	return out, true, nil
}

func (it *projectIter) Close() { it.child.Close() }

// joinIter is a hash join (equi keys) or nested-loop join (none).
type joinIter struct {
	plan     *JoinPlan
	ctx      *execCtx
	left     iterator
	right    iterator
	lKeys    []evalFn
	rKeys    []evalFn
	residual evalFn
	rWidth   int

	build   map[string][]value.Row
	rRows   []value.Row // nested-loop fallback
	matches []value.Row
	mi      int
	cur     value.Row
	matched bool
	env     Env
}

func newJoinIter(p *JoinPlan, ctx *execCtx) (iterator, error) {
	l, err := buildIter(p.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := buildIter(p.R, ctx)
	if err != nil {
		return nil, err
	}
	it := &joinIter{plan: p, ctx: ctx, left: l, right: r, rWidth: len(p.R.columns())}
	lres := resolverFor(p.L.columns())
	rres := resolverFor(p.R.columns())
	for i := range p.EquiL {
		lf, err := compileExpr(p.EquiL[i], lres, ctx.reg)
		if err != nil {
			return nil, err
		}
		rf, err := compileExpr(p.EquiR[i], rres, ctx.reg)
		if err != nil {
			return nil, err
		}
		it.lKeys = append(it.lKeys, lf)
		it.rKeys = append(it.rKeys, rf)
	}
	if p.Residual != nil {
		f, err := compileExpr(p.Residual, resolverFor(p.columns()), ctx.reg)
		if err != nil {
			return nil, err
		}
		it.residual = f
	}
	return it, nil
}

func (it *joinIter) Open() error {
	it.env.Params = it.ctx.params
	if err := it.left.Open(); err != nil {
		return err
	}
	if err := it.right.Open(); err != nil {
		return err
	}
	// Build phase.
	if len(it.rKeys) > 0 {
		it.build = make(map[string][]value.Row)
	}
	env := Env{Params: it.ctx.params}
	key := make(value.Row, len(it.rKeys))
	for {
		row, ok, err := it.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if it.build != nil {
			env.Row = row
			for i, f := range it.rKeys {
				key[i] = f(&env)
			}
			k := key.Key()
			it.build[k] = append(it.build[k], row)
		} else {
			it.rRows = append(it.rRows, row)
		}
	}
	it.cur = nil
	return nil
}

func (it *joinIter) Next() (value.Row, bool, error) {
	for {
		if it.cur == nil {
			row, ok, err := it.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.cur = row
			it.matched = false
			it.mi = 0
			if it.build != nil {
				it.env.Row = row
				key := make(value.Row, len(it.lKeys))
				hasNull := false
				for i, f := range it.lKeys {
					key[i] = f(&it.env)
					if key[i].IsNull() {
						hasNull = true
					}
				}
				if hasNull {
					it.matches = nil
				} else {
					it.matches = it.build[key.Key()]
				}
			} else {
				it.matches = it.rRows
			}
		}
		for it.mi < len(it.matches) {
			r := it.matches[it.mi]
			it.mi++
			combined := make(value.Row, 0, len(it.cur)+len(r))
			combined = append(combined, it.cur...)
			combined = append(combined, r...)
			if it.residual != nil {
				it.env.Row = combined
				if v := it.residual(&it.env); v.IsNull() || !v.AsBool() {
					continue
				}
			}
			it.matched = true
			return combined, true, nil
		}
		if it.plan.LeftOuter && !it.matched {
			combined := make(value.Row, len(it.cur)+it.rWidth)
			copy(combined, it.cur)
			it.cur = nil
			return combined, true, nil
		}
		it.cur = nil
	}
}

func (it *joinIter) Close() {
	it.left.Close()
	it.right.Close()
}

// aggIter hash-aggregates its input.
type aggIter struct {
	plan   *AggPlan
	ctx    *execCtx
	child  iterator
	groups []evalFn
	aggs   []aggState
	out    []value.Row
	i      int
}

func newAggIter(p *AggPlan, ctx *execCtx) (iterator, error) {
	child, err := buildIter(p.Child, ctx)
	if err != nil {
		return nil, err
	}
	it := &aggIter{plan: p, ctx: ctx, child: child}
	res := resolverFor(p.Child.columns())
	for _, g := range p.GroupBy {
		f, err := compileExpr(g, res, ctx.reg)
		if err != nil {
			return nil, err
		}
		it.groups = append(it.groups, f)
	}
	for _, a := range p.Aggs {
		st := aggState{spec: a}
		if a.Arg != nil {
			f, err := compileExpr(a.Arg, res, ctx.reg)
			if err != nil {
				return nil, err
			}
			st.arg = f
		}
		it.aggs = append(it.aggs, st)
	}
	return it, nil
}

type aggState struct {
	spec aggSpec
	arg  evalFn
}

// aggAcc is the running state of one aggregate within one group.
type aggAcc struct {
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	min     value.Value
	max     value.Value
	seen    map[string]bool // DISTINCT
}

func (a *aggAcc) add(v value.Value, spec aggSpec) {
	if spec.Star {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	if spec.Distinct {
		if a.seen == nil {
			a.seen = map[string]bool{}
		}
		k := v.AsString()
		if a.seen[k] {
			return
		}
		a.seen[k] = true
	}
	a.count++
	switch v.K {
	case value.KindFloat:
		a.isFloat = true
		a.sumF += v.F
	default:
		a.sumI += v.I
	}
	if a.min.IsNull() || value.Compare(v, a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || value.Compare(v, a.max) > 0 {
		a.max = v
	}
}

func (a *aggAcc) result(spec aggSpec) value.Value {
	switch spec.Fn {
	case "COUNT":
		return value.Int(a.count)
	case "SUM":
		if a.count == 0 {
			return value.Null
		}
		if a.isFloat {
			return value.Float(a.sumF + float64(a.sumI))
		}
		return value.Int(a.sumI)
	case "AVG":
		if a.count == 0 {
			return value.Null
		}
		return value.Float((a.sumF + float64(a.sumI)) / float64(a.count))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	}
	return value.Null
}

func (it *aggIter) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	type group struct {
		key  value.Row
		accs []aggAcc
	}
	groups := map[string]*group{}
	var order []string
	env := Env{Params: it.ctx.params}
	for {
		row, ok, err := it.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		env.Row = row
		key := make(value.Row, len(it.groups))
		for i, f := range it.groups {
			key[i] = f(&env)
		}
		k := key.Key()
		g := groups[k]
		if g == nil {
			g = &group{key: key, accs: make([]aggAcc, len(it.aggs))}
			groups[k] = g
			order = append(order, k)
		}
		for i := range it.aggs {
			var v value.Value
			if it.aggs[i].arg != nil {
				v = it.aggs[i].arg(&env)
			}
			g.accs[i].add(v, it.aggs[i].spec)
		}
	}
	// Aggregates without GROUP BY yield exactly one row.
	if len(order) == 0 && len(it.groups) == 0 {
		g := &group{accs: make([]aggAcc, len(it.aggs))}
		groups[""] = g
		order = append(order, "")
	}
	for _, k := range order {
		g := groups[k]
		row := make(value.Row, 0, len(g.key)+len(it.aggs))
		row = append(row, g.key...)
		for i := range it.aggs {
			row = append(row, g.accs[i].result(it.aggs[i].spec))
		}
		it.out = append(it.out, row)
	}
	it.i = 0
	return nil
}

func (it *aggIter) Next() (value.Row, bool, error) {
	if it.i >= len(it.out) {
		return nil, false, nil
	}
	r := it.out[it.i]
	it.i++
	return r, true, nil
}

func (it *aggIter) Close() { it.child.Close() }

type distinctIter struct {
	child iterator
	seen  map[string]bool
}

func (it *distinctIter) Open() error {
	it.seen = map[string]bool{}
	return it.child.Open()
}

func (it *distinctIter) Next() (value.Row, bool, error) {
	for {
		row, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := row.Key()
		if it.seen[k] {
			continue
		}
		it.seen[k] = true
		return row, true, nil
	}
}

func (it *distinctIter) Close() { it.child.Close() }

type sortIter struct {
	plan  *SortPlan
	ctx   *execCtx
	child iterator
	keys  []evalFn
	descs []bool
	rows  []value.Row
	i     int
}

func newSortIter(p *SortPlan, ctx *execCtx) (iterator, error) {
	child, err := buildIter(p.Child, ctx)
	if err != nil {
		return nil, err
	}
	it := &sortIter{plan: p, ctx: ctx, child: child}
	res := resolverFor(p.Child.columns())
	for _, k := range p.Keys {
		f, err := compileExpr(k.Expr, res, ctx.reg)
		if err != nil {
			return nil, err
		}
		it.keys = append(it.keys, f)
		it.descs = append(it.descs, k.Desc)
	}
	return it, nil
}

func (it *sortIter) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	type keyed struct {
		row  value.Row
		keys value.Row
	}
	var all []keyed
	env := Env{Params: it.ctx.params}
	for {
		row, ok, err := it.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		env.Row = row
		ks := make(value.Row, len(it.keys))
		for i, f := range it.keys {
			ks[i] = f(&env)
		}
		all = append(all, keyed{row, ks})
	}
	sort.SliceStable(all, func(a, b int) bool {
		for i := range it.keys {
			c := value.Compare(all[a].keys[i], all[b].keys[i])
			if it.descs[i] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	it.rows = it.rows[:0]
	for _, k := range all {
		it.rows = append(it.rows, k.row)
	}
	it.i = 0
	return nil
}

func (it *sortIter) Next() (value.Row, bool, error) {
	if it.i >= len(it.rows) {
		return nil, false, nil
	}
	r := it.rows[it.i]
	it.i++
	return r, true, nil
}

func (it *sortIter) Close() { it.child.Close() }

type limitIter struct {
	child     iterator
	n, offset int
	skipped   int
	emitted   int
}

func (it *limitIter) Open() error {
	it.skipped, it.emitted = 0, 0
	return it.child.Open()
}

func (it *limitIter) Next() (value.Row, bool, error) {
	for {
		if it.emitted >= it.n {
			return nil, false, nil
		}
		row, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if it.skipped < it.offset {
			it.skipped++
			continue
		}
		it.emitted++
		return row, true, nil
	}
}

func (it *limitIter) Close() { it.child.Close() }

type valuesIter struct {
	rows []value.Row
	i    int
}

func newValuesIter(p *ValuesPlan, ctx *execCtx) (iterator, error) {
	it := &valuesIter{}
	env := Env{Params: ctx.params}
	for _, exprs := range p.Rows {
		row := make(value.Row, len(exprs))
		for i, e := range exprs {
			f, err := compileExpr(e, func(q, n string) (int, error) {
				return 0, fmt.Errorf("sql: no columns in VALUES")
			}, ctx.reg)
			if err != nil {
				return nil, err
			}
			row[i] = f(&env)
		}
		it.rows = append(it.rows, row)
	}
	return it, nil
}

func (it *valuesIter) Open() error { it.i = 0; return nil }
func (it *valuesIter) Next() (value.Row, bool, error) {
	if it.i >= len(it.rows) {
		return nil, false, nil
	}
	r := it.rows[it.i]
	it.i++
	return r, true, nil
}
func (it *valuesIter) Close() {}
