package sqlexec

import (
	"sort"
	"sync"
	"time"
)

// Per-fingerprint workload statistics (pg_stat_statements-style): every
// statement a Session executes is normalized to its fingerprint and
// aggregated here — calls, errors, rows returned and a latency reservoir
// for quantiles. sys.m_statements materializes this table; the PR-10
// cost-based optimizer reads the same aggregates.

const (
	defaultStmtCap = 512 // distinct fingerprints retained
	stmtSampleCap  = 256 // latency samples kept per fingerprint
)

// StatementStat is one fingerprint's aggregate, as exposed by
// Engine.StatementStats and sys.m_statements.
type StatementStat struct {
	ID       string // fingerprint, 16 hex digits
	Query    string // normalized statement text
	Calls    int64
	Errors   int64
	Rows     int64 // rows returned to clients
	TotalMs  float64
	MinMs    float64
	MaxMs    float64
	P50Ms    float64
	P95Ms    float64
	P99Ms    float64
	LastCall time.Time
}

type stmtEntry struct {
	stat    StatementStat
	samples []float64 // latency ring, ms
	next    int
}

// stmtLog aggregates statements under one mutex; the map is bounded — at
// capacity a new fingerprint evicts the least-called entry, so a workload
// of unbounded distinct shapes degrades to tracking its heavy hitters
// rather than growing without limit.
type stmtLog struct {
	mu      sync.Mutex
	m       map[string]*stmtEntry
	cap     int
	evicted int64
}

func (l *stmtLog) record(id, norm string, d time.Duration, rows int64, failed bool) {
	ms := float64(d) / float64(time.Millisecond)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m == nil {
		l.m = make(map[string]*stmtEntry)
	}
	e := l.m[id]
	if e == nil {
		capacity := l.cap
		if capacity <= 0 {
			capacity = defaultStmtCap
		}
		if len(l.m) >= capacity {
			l.evictLeastCalled()
		}
		e = &stmtEntry{stat: StatementStat{ID: id, Query: norm, MinMs: ms}}
		l.m[id] = e
	}
	s := &e.stat
	s.Calls++
	if failed {
		s.Errors++
	}
	s.Rows += rows
	s.TotalMs += ms
	if ms < s.MinMs {
		s.MinMs = ms
	}
	if ms > s.MaxMs {
		s.MaxMs = ms
	}
	s.LastCall = time.Now()
	if len(e.samples) < stmtSampleCap {
		e.samples = append(e.samples, ms)
	} else {
		e.samples[e.next] = ms
		e.next = (e.next + 1) % stmtSampleCap
	}
}

// evictLeastCalled drops the entry with the fewest calls; caller holds mu.
func (l *stmtLog) evictLeastCalled() {
	var victim string
	min := int64(-1)
	for id, e := range l.m {
		if min < 0 || e.stat.Calls < min {
			min, victim = e.stat.Calls, id
		}
	}
	if victim != "" {
		delete(l.m, victim)
		l.evicted++
	}
}

// snapshot returns the aggregates with quantiles computed from each
// entry's latency reservoir, sorted by TotalMs descending.
func (l *stmtLog) snapshot() []StatementStat {
	l.mu.Lock()
	out := make([]StatementStat, 0, len(l.m))
	rings := make([][]float64, 0, len(l.m))
	for _, e := range l.m {
		out = append(out, e.stat)
		rings = append(rings, append([]float64(nil), e.samples...))
	}
	l.mu.Unlock()
	for i, ring := range rings {
		sort.Float64s(ring)
		out[i].P50Ms = quantileOf(ring, 0.50)
		out[i].P95Ms = quantileOf(ring, 0.95)
		out[i].P99Ms = quantileOf(ring, 0.99)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMs != out[j].TotalMs {
			return out[i].TotalMs > out[j].TotalMs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// StatementStats returns the fingerprinted workload aggregates, highest
// total time first — the data behind sys.m_statements.
func (e *Engine) StatementStats() []StatementStat { return e.stmts.snapshot() }

// SetStatementCapacity bounds how many distinct fingerprints are retained
// (default 512); beyond it the least-called entry is evicted.
func (e *Engine) SetStatementCapacity(n int) {
	e.stmts.mu.Lock()
	e.stmts.cap = n
	e.stmts.mu.Unlock()
}

// StatementEvictions reports how many fingerprints were evicted by the
// capacity bound — nonzero means the workload has more distinct shapes
// than the log retains.
func (e *Engine) StatementEvictions() int64 {
	e.stmts.mu.Lock()
	defer e.stmts.mu.Unlock()
	return e.stmts.evicted
}
