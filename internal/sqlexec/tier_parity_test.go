package sqlexec

import (
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/extstore"
)

// TestTierParity is the cross-tier correctness contract: the full parity
// query catalog runs against an engine whose every table is demoted to
// the warm tier under a buffer pool far smaller than the dataset, and
// all three executors must produce output bit-for-bit identical to the
// all-hot reference run. Under -race it also exercises concurrent page
// faulting from the morsel workers.
func TestTierParity(t *testing.T) {
	hot := parityEngine(t)

	warm := parityEngine(t)
	store, err := extstore.OpenTemp(extstore.Options{PageSize: 512, ChunkRows: 64, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for _, name := range []string{"orders", "items", "sales", "events", "dims"} {
		entry := warm.Cat.MustTable(name)
		if _, err := store.DemoteTable(entry, warm.Mgr.MinActiveTS()); err != nil {
			t.Fatalf("demote %s: %v", name, err)
		}
		for _, p := range entry.Partitions {
			if p.Tier != catalog.TierExtended {
				t.Fatalf("%s partition %s still %s after demote", name, p.Name, p.Tier)
			}
			if p.Zone == nil {
				t.Fatalf("%s partition %s has no zone map", name, p.Name)
			}
		}
	}
	if pages := store.Pages(); pages < 5*8 {
		t.Fatalf("dataset too small to stress the pool: %d pages on disk vs budget 8", pages)
	}

	faulted := false
	for _, q := range parityQueries {
		hot.Mode = ModeInterpreted
		wantKeys := resultKeys(mustExec(t, hot, q.sql, q.params...))

		for _, mode := range []Mode{ModeInterpreted, ModeCompiled} {
			warm.Mode = mode
			got := mustExec(t, warm, q.sql, q.params...)
			if keys := resultKeys(got); !reflect.DeepEqual(keys, wantKeys) {
				t.Errorf("%s: warm mode=%d output differs from all-hot (%d vs %d rows)",
					q.sql, mode, len(keys), len(wantKeys))
			}
			if got.Stats.PageFaults > 0 {
				faulted = true
			}
		}
		for _, workers := range []int{1, 4} {
			warm.Mode = ModeVectorized
			warm.Workers = workers
			got := mustExec(t, warm, q.sql, q.params...)
			if keys := resultKeys(got); !reflect.DeepEqual(keys, wantKeys) {
				t.Errorf("%s: warm vectorized(workers=%d) output differs from all-hot (%d vs %d rows)",
					q.sql, workers, len(keys), len(wantKeys))
			}
			if got.Stats.PageFaults > 0 {
				faulted = true
			}
		}
	}
	if !faulted {
		t.Fatal("no query reported page faults — warm tier was never exercised")
	}

	// The pool must have stayed within (or near) its budget: clock eviction
	// keeps residency bounded even though the dataset is ~an order of
	// magnitude larger.
	if ps := store.Pool(); ps.ResidentPages > 8+4 {
		t.Fatalf("pool over budget after the suite: %d resident pages (budget 8)", ps.ResidentPages)
	}
}

// TestTierPromoteRoundTrip demotes, queries, promotes and asserts results
// and tier tags stay consistent — plus re-hydration via an ordinary MERGE
// DELTA (the OnMerge hook path).
func TestTierPromoteRoundTrip(t *testing.T) {
	e := parityEngine(t)
	store, err := extstore.OpenTemp(extstore.Options{PageSize: 1024, ChunkRows: 128, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const q = `SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region`
	want := resultKeys(mustExec(t, e, q))

	entry := e.Cat.MustTable("orders")
	if _, err := store.DemoteTable(entry, e.Mgr.MinActiveTS()); err != nil {
		t.Fatal(err)
	}
	if got := resultKeys(mustExec(t, e, q)); !reflect.DeepEqual(got, want) {
		t.Fatal("warm scan differs from hot scan")
	}

	// New writes land in the hot delta on top of the paged main.
	mustExec(t, e, `INSERT INTO orders VALUES (9001, 'EMEA', 'OPEN', 10.5, 2015)`)
	r := mustExec(t, e, `SELECT COUNT(*) FROM orders WHERE id = 9001`)
	if r.Rows[0][0].I != 1 {
		t.Fatal("delta row over warm main not visible")
	}

	if err := store.Promote(entry.Partitions[0], e.Mgr.MinActiveTS()); err != nil {
		t.Fatal(err)
	}
	if entry.Partitions[0].Tier != catalog.TierHot {
		t.Fatalf("tier after promote: %s", entry.Partitions[0].Tier)
	}

	// Demote again, then re-hydrate through plain SQL MERGE: the OnMerge
	// hook must flip the catalog tier back without store involvement.
	if _, err := store.DemoteTable(entry, e.Mgr.MinActiveTS()); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `INSERT INTO orders VALUES (9002, 'APJ', 'OPEN', 1.0, 2015)`)
	mustExec(t, e, `MERGE DELTA OF orders`)
	if entry.Partitions[0].Tier != catalog.TierHot {
		t.Fatalf("tier after MERGE DELTA: %s", entry.Partitions[0].Tier)
	}
	if entry.Partitions[0].Zone != nil {
		t.Fatal("zone map survived re-hydration")
	}
}
