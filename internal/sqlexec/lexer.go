package sqlexec

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkOp    // operators and punctuation
	tkParam // ? (sequential) or $N (explicit 1-based index)
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, idents original case-folded to lower
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"IS": true, "NULL": true, "LIKE": true, "DISTINCT": true, "ASC": true,
	"DESC": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "VIEW": true, "DROP": true, "IF": true, "EXISTS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"TRUE": true, "FALSE": true, "MERGE": true, "DELTA": true, "OF": true,
	"WITH": true, "PARTITION": true, "RANGE": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.lexWord()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '?':
			l.emit(tkParam, "?")
			l.pos++
		case c == '$':
			// $N positional parameter (PostgreSQL style); 1-based.
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			if l.pos == start+1 {
				return nil, fmt.Errorf("sql: bare $ at %d", start)
			}
			l.toks = append(l.toks, token{kind: tkParam, text: l.src[start:l.pos], pos: start})
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.emit(tkEOF, "")
	return l.toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_' || c == '"'
}

func (l *lexer) emit(k tokenKind, s string) {
	l.toks = append(l.toks, token{kind: k, text: s, pos: l.pos})
}

func (l *lexer) lexWord() {
	start := l.pos
	if l.src[l.pos] == '"' { // quoted identifier
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		word := l.src[start+1 : l.pos]
		l.pos++ // closing quote
		l.emit(tkIdent, strings.ToLower(word))
		return
	}
	for l.pos < len(l.src) && (isIdentStart(rune(l.src[l.pos])) || l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.emit(tkKeyword, upper)
	} else {
		l.emit(tkIdent, strings.ToLower(word))
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.emit(tkNumber, l.src[start:l.pos])
}

func (l *lexer) lexString() error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tkString, sb.String())
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at %d", l.pos)
}

var twoCharOps = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true, "||": true}

func (l *lexer) lexOp() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.emit(tkOp, two)
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '*', '+', '-', '/', '%', '=', '<', '>', ';':
		l.emit(tkOp, string(c))
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}
