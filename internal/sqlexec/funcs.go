package sqlexec

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// ScalarFunc is a pure scalar extension function. Domain engines (text,
// geo, graph, time series, appbridge) register their SQL-visible
// operations here — the mechanism behind "extensions to SQL" in §II.
type ScalarFunc func(args []value.Value) (value.Value, error)

// TableFunc produces a relation; invoked via FROM TABLE(f(...)). Graph
// traversals, hierarchy expansions and forecasts surface as table
// functions. The schema is declared at registration so the planner can
// resolve column references before execution.
type TableFunc struct {
	Schema columnstore.Schema
	Fn     func(args []value.Value) ([]value.Row, error)
}

// Registry holds the extension functions of one engine instance.
type Registry struct {
	mu      sync.RWMutex
	scalars map[string]ScalarFunc
	tables  map[string]TableFunc
}

// NewRegistry returns a registry pre-loaded with the SQL builtins.
func NewRegistry() *Registry {
	r := &Registry{scalars: map[string]ScalarFunc{}, tables: map[string]TableFunc{}}
	registerBuiltins(r)
	return r
}

// RegisterScalar adds or replaces a scalar function (name is
// case-insensitive).
func (r *Registry) RegisterScalar(name string, fn ScalarFunc) {
	r.mu.Lock()
	r.scalars[strings.ToUpper(name)] = fn
	r.mu.Unlock()
}

// RegisterTable adds or replaces a table function.
func (r *Registry) RegisterTable(name string, schema columnstore.Schema, fn func(args []value.Value) ([]value.Row, error)) {
	r.mu.Lock()
	r.tables[strings.ToUpper(name)] = TableFunc{Schema: schema, Fn: fn}
	r.mu.Unlock()
}

// Scalar resolves a scalar function.
func (r *Registry) Scalar(name string) (ScalarFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.scalars[strings.ToUpper(name)]
	return f, ok
}

// Table resolves a table function.
func (r *Registry) Table(name string) (TableFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.tables[strings.ToUpper(name)]
	return f, ok
}

func argErr(name string, want int, got int) error {
	return fmt.Errorf("sql: %s expects %d arguments, got %d", name, want, got)
}

func registerBuiltins(r *Registry) {
	r.RegisterScalar("ABS", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("ABS", 1, len(a))
		}
		switch a[0].K {
		case value.KindInt:
			if a[0].I < 0 {
				return value.Int(-a[0].I), nil
			}
			return a[0], nil
		case value.KindFloat:
			return value.Float(math.Abs(a[0].F)), nil
		}
		return value.Null, nil
	})
	r.RegisterScalar("LENGTH", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("LENGTH", 1, len(a))
		}
		if a[0].IsNull() {
			return value.Null, nil
		}
		return value.Int(int64(len(a[0].AsString()))), nil
	})
	r.RegisterScalar("LOWER", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("LOWER", 1, len(a))
		}
		return value.String(strings.ToLower(a[0].AsString())), nil
	})
	r.RegisterScalar("UPPER", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("UPPER", 1, len(a))
		}
		return value.String(strings.ToUpper(a[0].AsString())), nil
	})
	r.RegisterScalar("SUBSTR", func(a []value.Value) (value.Value, error) {
		if len(a) != 3 {
			return value.Null, argErr("SUBSTR", 3, len(a))
		}
		s := a[0].AsString()
		start := int(a[1].AsInt()) - 1 // SQL is 1-based
		n := int(a[2].AsInt())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return value.String(""), nil
		}
		end := start + n
		if end > len(s) {
			end = len(s)
		}
		return value.String(s[start:end]), nil
	})
	r.RegisterScalar("CONCAT", func(a []value.Value) (value.Value, error) {
		var sb strings.Builder
		for _, v := range a {
			if !v.IsNull() {
				sb.WriteString(v.AsString())
			}
		}
		return value.String(sb.String()), nil
	})
	r.RegisterScalar("ROUND", func(a []value.Value) (value.Value, error) {
		if len(a) == 1 {
			return value.Float(math.Round(a[0].AsFloat())), nil
		}
		if len(a) != 2 {
			return value.Null, argErr("ROUND", 2, len(a))
		}
		scale := math.Pow10(int(a[1].AsInt()))
		return value.Float(math.Round(a[0].AsFloat()*scale) / scale), nil
	})
	r.RegisterScalar("FLOOR", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("FLOOR", 1, len(a))
		}
		return value.Float(math.Floor(a[0].AsFloat())), nil
	})
	r.RegisterScalar("CEIL", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("CEIL", 1, len(a))
		}
		return value.Float(math.Ceil(a[0].AsFloat())), nil
	})
	r.RegisterScalar("SQRT", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("SQRT", 1, len(a))
		}
		return value.Float(math.Sqrt(a[0].AsFloat())), nil
	})
	r.RegisterScalar("POWER", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, argErr("POWER", 2, len(a))
		}
		return value.Float(math.Pow(a[0].AsFloat(), a[1].AsFloat())), nil
	})
	r.RegisterScalar("MOD", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, argErr("MOD", 2, len(a))
		}
		return value.Mod(a[0], a[1]), nil
	})
	r.RegisterScalar("COALESCE", func(a []value.Value) (value.Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return value.Null, nil
	})
	r.RegisterScalar("IFNULL", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, argErr("IFNULL", 2, len(a))
		}
		if a[0].IsNull() {
			return a[1], nil
		}
		return a[0], nil
	})
	r.RegisterScalar("CAST_INT", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("CAST_INT", 1, len(a))
		}
		return value.Coerce(a[0], value.KindInt), nil
	})
	r.RegisterScalar("CAST_DOUBLE", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("CAST_DOUBLE", 1, len(a))
		}
		return value.Coerce(a[0], value.KindFloat), nil
	})
	r.RegisterScalar("TO_TIMESTAMP", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, argErr("TO_TIMESTAMP", 1, len(a))
		}
		return value.Coerce(a[0], value.KindTime), nil
	})
	r.RegisterScalar("YEAR", timePart(func(y, m, d, h int) int { return y }))
	r.RegisterScalar("MONTH", timePart(func(y, m, d, h int) int { return m }))
	r.RegisterScalar("DAY", timePart(func(y, m, d, h int) int { return d }))
	r.RegisterScalar("HOUR", timePart(func(y, m, d, h int) int { return h }))
	r.RegisterScalar("GREATEST", func(a []value.Value) (value.Value, error) {
		if len(a) == 0 {
			return value.Null, nil
		}
		best := a[0]
		for _, v := range a[1:] {
			if value.Compare(v, best) > 0 {
				best = v
			}
		}
		return best, nil
	})
	r.RegisterScalar("LEAST", func(a []value.Value) (value.Value, error) {
		if len(a) == 0 {
			return value.Null, nil
		}
		best := a[0]
		for _, v := range a[1:] {
			if value.Compare(v, best) < 0 {
				best = v
			}
		}
		return best, nil
	})
}

func timePart(sel func(y, m, d, h int) int) ScalarFunc {
	return func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, fmt.Errorf("sql: time part expects 1 argument")
		}
		if a[0].IsNull() {
			return value.Null, nil
		}
		t := value.Coerce(a[0], value.KindTime)
		if t.IsNull() {
			return value.Null, nil
		}
		tt := t.AsTime()
		return value.Int(int64(sel(tt.Year(), int(tt.Month()), tt.Day(), tt.Hour()))), nil
	}
}

// aggregate names recognized by the planner.
var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

// containsAggregate reports whether the expression tree contains an
// aggregate function call.
func containsAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *FuncExpr:
		if aggNames[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return containsAggregate(x.L) || containsAggregate(x.R)
	case *UnaryExpr:
		return containsAggregate(x.E)
	case *CaseExpr:
		for _, w := range x.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Then) {
				return true
			}
		}
		return containsAggregate(x.Else)
	case *InExpr:
		if containsAggregate(x.E) {
			return true
		}
		for _, v := range x.List {
			if containsAggregate(v) {
				return true
			}
		}
	case *BetweenExpr:
		return containsAggregate(x.E) || containsAggregate(x.Lo) || containsAggregate(x.Hi)
	case *IsNullExpr:
		return containsAggregate(x.E)
	}
	return false
}
