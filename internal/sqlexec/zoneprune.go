package sqlexec

import (
	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/value"
)

// Zone-map pruning: warm partitions carry a per-column min/max/count
// synopsis recorded at demotion time, so the planner can drop partitions
// a filter refutes before the executor faults a single page. Zone maps
// cover every physical row (including MVCC-dead versions), which makes
// them a conservative superset — a refuted zone can never hide a visible
// matching row.

// zonePrune filters parts down to those a scan's conjuncts cannot refute
// via zone maps. Only warm partitions with a synopsis still matching the
// table's current shape participate; everything else is kept.
func zonePrune(s *ScanPlan, conjs []Expr, parts []*catalog.Partition) []*catalog.Partition {
	preds := make([]vecPred, 0, len(conjs))
	for _, c := range conjs {
		if p, ok := classifyVecConjunct(c, s.cols); ok {
			preds = append(preds, p)
		}
	}
	if len(preds) == 0 {
		return parts
	}
	kept := parts[:0:0]
	for _, p := range parts {
		if zoneRefutes(p, preds) {
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// zoneRefutes reports whether any conjunct proves partition p empty.
func zoneRefutes(p *catalog.Partition, preds []vecPred) bool {
	z := p.Zone
	if z == nil || p.Tier != catalog.TierExtended {
		return false
	}
	// Stale synopsis: rows were inserted or a merge re-hydrated the table
	// since demotion. Never prune on it.
	if z.Rows != p.Table.NumRows() || z.Merges != p.Table.MergeCount() {
		return false
	}
	for _, pr := range preds {
		if pr.Col >= len(z.Cols) {
			continue
		}
		if zoneRefutesPred(z.Cols[pr.Col], pr.Op, pr.Lit) {
			return true
		}
	}
	return false
}

// zoneRefutesPred reports whether "col <op> k" is provably false for every
// row summarized by zc.
func zoneRefutesPred(zc columnstore.ColumnZone, op columnstore.CmpOp, k value.Value) bool {
	if zc.Count == 0 {
		// Only NULLs (or no rows at all): a comparison is never true.
		return true
	}
	// Compare only within a kind family — value.Compare orders across
	// kinds by kind tag, which is meaningless for pruning.
	if !zoneKindsComparable(zc.Min.K, k.K) {
		return false
	}
	cmpLo := value.Compare(k, zc.Min) // k vs min
	cmpHi := value.Compare(k, zc.Max) // k vs max
	switch op {
	case columnstore.CmpEQ:
		return cmpLo < 0 || cmpHi > 0
	case columnstore.CmpNE:
		// All values equal k ⇒ no row differs.
		return cmpLo == 0 && cmpHi == 0 && value.Compare(zc.Min, zc.Max) == 0
	case columnstore.CmpLT:
		return cmpLo <= 0 // min >= k
	case columnstore.CmpLE:
		return cmpLo < 0 // min > k
	case columnstore.CmpGT:
		return cmpHi >= 0 // max <= k
	case columnstore.CmpGE:
		return cmpHi > 0 // max < k
	}
	return false
}

// zoneKindsComparable reports whether min/max of kind a order meaningfully
// against a literal of kind b: identical kinds always do, and the numeric
// kinds (int/float) interoperate the way the executors' coercions do.
func zoneKindsComparable(a, b value.Kind) bool {
	if a == b {
		return true
	}
	num := func(k value.Kind) bool { return k == value.KindInt || k == value.KindFloat }
	return num(a) && num(b)
}
