package sqlexec

import (
	"sync"
	"time"
)

// SlowQuery is one statement retained by the slow-query log: the SQL
// text plus the full EXPLAIN ANALYZE profile captured while it ran.
type SlowQuery struct {
	SQL         string
	Fingerprint string // stable fingerprint ID, joins against sys.m_statements
	When        time.Time
	Total       time.Duration
	Profile     *Profile
}

// slowLog is a bounded ring of the most recent slow statements. When the
// engine's SlowThreshold is set, every SELECT runs profiled and the ones
// crossing the threshold land here — the profile is captured in flight,
// not reconstructed after the fact, so the one slow execution out of a
// thousand fast ones arrives with its operator breakdown attached.
type slowLog struct {
	mu    sync.Mutex
	ring  []*SlowQuery
	next  int
	total int64
	cap   int // SetSlowCapacity override; 0 defers to the engine field
}

func (l *slowLog) add(q *SlowQuery, capacity int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cap > 0 {
		capacity = l.cap
	}
	if capacity <= 0 {
		capacity = 32
	}
	l.total++
	if len(l.ring) == capacity {
		// Steady state: overwrite the oldest entry.
		l.ring[l.next] = q
		l.next = (l.next + 1) % capacity
		return
	}
	// Ring still filling, or the retention capacity changed since the
	// last entry (SetSlowCapacity): rebuild chronologically, keep the
	// newest entries that fit, and restart the ring at the new size.
	chron := make([]*SlowQuery, 0, len(l.ring)+1)
	for i := 0; i < len(l.ring); i++ {
		chron = append(chron, l.ring[(l.next+i)%len(l.ring)])
	}
	chron = append(chron, q)
	if len(chron) > capacity {
		chron = chron[len(chron)-capacity:]
	}
	l.ring = chron
	l.next = len(l.ring) % capacity
}

// recent returns retained slow queries, newest first.
func (l *slowLog) recent() []*SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*SlowQuery, 0, len(l.ring))
	for i := 1; i <= len(l.ring); i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// maybeRecordSlow retains the profile when it crossed the engine's
// threshold; called on every profiled statement.
func (e *Engine) maybeRecordSlow(sql string, prof *Profile) {
	if prof == nil || e.SlowThreshold <= 0 || prof.Total < e.SlowThreshold {
		return
	}
	prof.SQL = sql
	fp, _ := Fingerprint(sql)
	e.slow.add(&SlowQuery{SQL: sql, Fingerprint: fp, When: time.Now(),
		Total: prof.Total, Profile: prof}, e.SlowLogCap)
	e.Obs.Counter("sql_slow_queries_total").Inc()
}

// SetSlowCapacity reconfigures the slow-query log retention; the ring
// resizes on the next retained statement, keeping the newest entries when
// shrinking. Values <= 0 restore the construction-time default. Safe to
// call while sessions are executing.
func (e *Engine) SetSlowCapacity(n int) {
	e.slow.mu.Lock()
	e.slow.cap = n
	e.slow.mu.Unlock()
}

// SlowQueries returns the retained slow statements, newest first.
func (e *Engine) SlowQueries() []*SlowQuery { return e.slow.recent() }

// SlowQueryCount returns how many statements ever crossed the threshold
// (including ones the bounded ring has since evicted).
func (e *Engine) SlowQueryCount() int64 {
	e.slow.mu.Lock()
	defer e.slow.mu.Unlock()
	return e.slow.total
}
