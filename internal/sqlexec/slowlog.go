package sqlexec

import (
	"sync"
	"time"
)

// SlowQuery is one statement retained by the slow-query log: the SQL
// text plus the full EXPLAIN ANALYZE profile captured while it ran.
type SlowQuery struct {
	SQL     string
	Total   time.Duration
	Profile *Profile
}

// slowLog is a bounded ring of the most recent slow statements. When the
// engine's SlowThreshold is set, every SELECT runs profiled and the ones
// crossing the threshold land here — the profile is captured in flight,
// not reconstructed after the fact, so the one slow execution out of a
// thousand fast ones arrives with its operator breakdown attached.
type slowLog struct {
	mu    sync.Mutex
	ring  []*SlowQuery
	next  int
	total int64
}

func (l *slowLog) add(q *SlowQuery, capacity int) {
	if capacity <= 0 {
		capacity = 32
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < capacity {
		l.ring = append(l.ring, q)
		l.next = len(l.ring) % capacity
		return
	}
	l.ring[l.next] = q
	l.next = (l.next + 1) % len(l.ring)
}

// recent returns retained slow queries, newest first.
func (l *slowLog) recent() []*SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*SlowQuery, 0, len(l.ring))
	for i := 1; i <= len(l.ring); i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// maybeRecordSlow retains the profile when it crossed the engine's
// threshold; called on every profiled statement.
func (e *Engine) maybeRecordSlow(sql string, prof *Profile) {
	if prof == nil || e.SlowThreshold <= 0 || prof.Total < e.SlowThreshold {
		return
	}
	prof.SQL = sql
	e.slow.add(&SlowQuery{SQL: sql, Total: prof.Total, Profile: prof}, e.SlowLogCap)
	e.Obs.Counter("sql_slow_queries_total").Inc()
}

// SlowQueries returns the retained slow statements, newest first.
func (e *Engine) SlowQueries() []*SlowQuery { return e.slow.recent() }

// SlowQueryCount returns how many statements ever crossed the threshold
// (including ones the bounded ring has since evicted).
func (e *Engine) SlowQueryCount() int64 {
	e.slow.mu.Lock()
	defer e.slow.mu.Unlock()
	return e.slow.total
}
