package sqlexec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/value"
)

// Engine is the relational entry point of one node: SQL in, results out.
// It wires the parser, planner, optimizer and executors to a catalog and a
// transaction manager. Domain engines extend it by registering scalar and
// table functions and by installing a partition-prune hook.
type Engine struct {
	Cat  *catalog.Catalog
	Mgr  *txn.Manager
	Reg  *Registry
	Mode Mode
	// Workers sizes the vectorized executor's per-query morsel pool;
	// <=0 means one worker per CPU. Ignored by the row-at-a-time modes.
	Workers int
	// Prune participates in partition pruning (installed by the aging
	// engine).
	Prune PruneHook
	// OnMergeDelta is invoked by MERGE DELTA OF statements; the durable
	// store wires logged merges here. Defaults to a direct merge.
	OnMergeDelta func(table string) error
	// Obs receives parse/plan/exec timings and row counts; nil-safe, so an
	// engine without a registry pays only a nil check per statement.
	Obs *stats.Registry
	// Tracer records per-statement span trees when set.
	Tracer *stats.Tracer
	// SlowThreshold enables always-on profiling: SELECTs run with a
	// Profile attached and the ones slower than this are retained —
	// profile included — in the slow-query log. Zero disables profiling
	// outside EXPLAIN ANALYZE / AnalyzeSQL.
	SlowThreshold time.Duration
	// SlowLogCap bounds the slow-query log ring (default 32).
	SlowLogCap int
	slow       slowLog
	// Sys serves the virtual monitoring views of the `sys` schema
	// (sys.m_statements, sys.m_sessions, ...). Engine-local views are
	// registered at construction; outer layers (pgwire, extstore, soe)
	// add theirs at wiring time.
	Sys *SysCatalog
	// stmts aggregates per-fingerprint workload statistics for every
	// statement any session executes (sys.m_statements).
	stmts stmtLog
	// Open-session registry behind sys.m_sessions.
	sessMu   sync.Mutex
	sessions map[int64]*Session
	sessSeq  int64
}

// NewEngine builds an engine over its own fresh catalog and manager.
func NewEngine() *Engine {
	e := &Engine{Cat: catalog.New(), Mgr: txn.NewManager(), Reg: NewRegistry(), Mode: ModeVectorized}
	e.initSys()
	return e
}

// NewEngineWith builds an engine over existing infrastructure.
func NewEngineWith(cat *catalog.Catalog, mgr *txn.Manager) *Engine {
	e := &Engine{Cat: cat, Mgr: mgr, Reg: NewRegistry(), Mode: ModeVectorized}
	e.initSys()
	return e
}

// initSys installs the sys schema. Engines constructed literally (tests)
// get it lazily on first session.
func (e *Engine) initSys() {
	if e.Sys != nil {
		return
	}
	e.Sys = NewSysCatalog()
	registerEngineSysViews(e)
}

// Query parses, plans and executes a statement in auto-commit mode.
func (e *Engine) Query(sql string, params ...value.Value) (*Result, error) {
	s := e.NewSession()
	defer s.Close()
	return s.Query(sql, params...)
}

// MustQuery is Query that panics on error; for tests and examples.
func (e *Engine) MustQuery(sql string, params ...value.Value) *Result {
	r, err := e.Query(sql, params...)
	if err != nil {
		panic(err)
	}
	return r
}

// ExplainSQL returns the optimized plan of a SELECT as text.
func (e *Engine) ExplainSQL(sql string) (string, error) {
	st, err := Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("sql: EXPLAIN supports only SELECT")
	}
	pl := &Planner{Cat: e.Cat, Reg: e.Reg, Sys: e.Sys, TS: e.Mgr.Now(), Prune: e.Prune}
	plan, err := pl.BuildSelect(sel)
	if err != nil {
		return "", err
	}
	return Explain(plan), nil
}

// AnalyzeSQL executes a SELECT with per-operator profiling attached and
// returns both the result and the annotated plan (EXPLAIN ANALYZE). The
// statement actually runs — the timings are measured, not estimated.
func (e *Engine) AnalyzeSQL(sql string, params ...value.Value) (*Result, *Profile, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("sql: EXPLAIN ANALYZE supports only SELECT")
	}
	ts := e.Mgr.Now()
	pl := &Planner{Cat: e.Cat, Reg: e.Reg, Sys: e.Sys, TS: ts, Prune: e.Prune}
	plan, err := pl.BuildSelect(sel)
	if err != nil {
		return nil, nil, err
	}
	res, prof, err := RunAnalyzed(plan, ts, params, e.Reg, e.Mode, e.Workers)
	if err != nil {
		return nil, nil, err
	}
	prof.SQL = sql
	e.maybeRecordSlow(sql, prof)
	return res, prof, nil
}

// Session executes statements; DML inside an explicit transaction is
// buffered until COMMIT. SELECTs read the session's snapshot (committed
// data as of transaction begin).
//
// Concurrency contract: a Session is owned by exactly one goroutine at a
// time — its transaction pointer, statement span and slow-log fields are
// unsynchronized by design, mirroring a database connection. Concurrency
// comes from many sessions over one Engine (which is fully safe to
// share); the wire front end opens one session per connection for exactly
// this reason. Sharing one Session across goroutines is a data race.
type Session struct {
	e        *Engine
	id       int64
	tx       *txn.Txn
	explicit bool
	cur      *stats.Span // statement span while Query is executing
	curSQL   string      // statement text, for the slow-query log
	// info mirrors the session state for sys.m_sessions: monitoring
	// queries read it from other goroutines, so unlike the fields above
	// it is mutex-guarded. The owning goroutine updates it at statement
	// boundaries.
	info sessionInfo
}

// sessionInfo is the cross-goroutine-readable session state.
type sessionInfo struct {
	mu         sync.Mutex
	started    time.Time
	lastActive time.Time
	active     bool
	sql        string // current statement while active
	stmts      int64
	inTxn      bool
}

// SysViews returns the engine's virtual-view catalog, installing the sys
// schema first when the engine was constructed literally (tests) rather
// than through NewEngine/NewEngineWith.
func (e *Engine) SysViews() *SysCatalog {
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	if e.Sys == nil {
		e.Sys = NewSysCatalog()
		registerEngineSysViews(e)
	}
	return e.Sys
}

// NewSession opens a session in auto-commit mode and registers it with
// the engine's session table (sys.m_sessions).
func (e *Engine) NewSession() *Session {
	e.SysViews()
	e.sessMu.Lock()
	e.sessSeq++
	s := &Session{e: e, id: e.sessSeq}
	now := time.Now()
	s.info.started = now
	s.info.lastActive = now
	if e.sessions == nil {
		e.sessions = map[int64]*Session{}
	}
	e.sessions[s.id] = s
	e.sessMu.Unlock()
	return s
}

// Close aborts any open explicit transaction and deregisters the session.
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Abort()
		s.tx = nil
	}
	s.e.sessMu.Lock()
	delete(s.e.sessions, s.id)
	s.e.sessMu.Unlock()
}

// sessionRows materializes sys.m_sessions.
func (e *Engine) sessionRows() []value.Row {
	e.sessMu.Lock()
	open := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		open = append(open, s)
	}
	e.sessMu.Unlock()
	rows := make([]value.Row, 0, len(open))
	for _, s := range open {
		s.info.mu.Lock()
		state := "idle"
		if s.info.active {
			state = "active"
		}
		rows = append(rows, value.Row{
			value.Int(s.id), value.String(state), value.String(s.info.sql),
			value.Bool(s.info.inTxn), value.Int(s.info.stmts),
			value.Time(s.info.started), value.Time(s.info.lastActive),
		})
		s.info.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].I < rows[j][0].I })
	return rows
}

// Begin starts an explicit transaction.
func (s *Session) Begin() error {
	if s.tx != nil {
		return fmt.Errorf("sql: transaction already open")
	}
	s.tx = s.e.Mgr.Begin()
	s.explicit = true
	return nil
}

// Commit commits the explicit transaction. The transaction is finished
// either way: a conflict abort surfaces as a wrapped error (never bare —
// callers and the wire layer classify it by errors.Is on txn.ErrConflict)
// and the session returns to auto-commit mode.
func (s *Session) Commit() error {
	if s.tx == nil {
		return fmt.Errorf("sql: no open transaction")
	}
	_, err := s.tx.Commit()
	s.tx = nil
	s.explicit = false
	if err != nil {
		return fmt.Errorf("sql: commit failed: %w", err)
	}
	return nil
}

// Rollback aborts the explicit transaction.
func (s *Session) Rollback() error {
	if s.tx == nil {
		return fmt.Errorf("sql: no open transaction")
	}
	s.tx.Abort()
	s.tx = nil
	s.explicit = false
	return nil
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.explicit }

// Describe returns the output column names of a SELECT without executing
// it — the plan is built, not run. Non-SELECT statements (including the
// BEGIN/COMMIT/ROLLBACK control statements) return (nil, nil): they
// produce no row set. The wire front end uses this for the extended
// protocol's Describe message.
func (s *Session) Describe(sql string) ([]string, error) {
	trimmed := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
	switch strings.ToUpper(trimmed) {
	case "BEGIN", "COMMIT", "ROLLBACK":
		return nil, nil
	}
	if up := strings.ToUpper(trimmed); strings.HasPrefix(up, "EXPLAIN") {
		return []string{"plan"}, nil
	}
	st, err := Parse(trimmed)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, nil
	}
	pl := &Planner{Cat: s.e.Cat, Reg: s.e.Reg, Sys: s.e.Sys, TS: s.snapshotTS(), Prune: s.e.Prune}
	plan, err := pl.BuildSelect(sel)
	if err != nil {
		return nil, err
	}
	cols := plan.columns()
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return names, nil
}

// Query executes one SQL statement. It wraps the dispatcher with the
// workload bookkeeping every statement gets: the session is marked
// active for sys.m_sessions, and the outcome lands in the fingerprinted
// statement statistics behind sys.m_statements.
func (s *Session) Query(sql string, params ...value.Value) (*Result, error) {
	s.setActive(sql)
	t0 := time.Now()
	res, err := s.run(sql, params...)
	d := time.Since(t0)
	var rows int64
	if res != nil {
		rows = int64(len(res.Rows))
	}
	id, norm := Fingerprint(sql)
	s.e.stmts.record(id, norm, d, rows, err != nil)
	s.setIdle()
	return res, err
}

// setActive publishes the running statement to sys.m_sessions.
func (s *Session) setActive(sql string) {
	s.info.mu.Lock()
	s.info.active = true
	s.info.sql = strings.TrimSpace(sql)
	s.info.stmts++
	s.info.mu.Unlock()
}

// setIdle publishes statement completion and the transaction state.
func (s *Session) setIdle() {
	s.info.mu.Lock()
	s.info.active = false
	s.info.sql = ""
	s.info.inTxn = s.explicit
	s.info.lastActive = time.Now()
	s.info.mu.Unlock()
}

// run dispatches one SQL statement. Control statements (BEGIN/COMMIT/
// ROLLBACK/EXPLAIN) are handled here; everything else goes through the
// parser.
func (s *Session) run(sql string, params ...value.Value) (*Result, error) {
	trimmed := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
	switch strings.ToUpper(trimmed) {
	case "BEGIN":
		return &Result{}, s.Begin()
	case "COMMIT":
		return &Result{}, s.Commit()
	case "ROLLBACK":
		return &Result{}, s.Rollback()
	}
	if up := strings.ToUpper(trimmed); strings.HasPrefix(up, "EXPLAIN ANALYZE ") {
		_, prof, err := s.e.AnalyzeSQL(trimmed[len("EXPLAIN ANALYZE "):], params...)
		if err != nil {
			return nil, err
		}
		return textResult(prof.Render()), nil
	} else if strings.HasPrefix(up, "EXPLAIN ") {
		text, err := s.e.ExplainSQL(trimmed[len("EXPLAIN "):])
		if err != nil {
			return nil, err
		}
		return textResult(text), nil
	}

	span := s.e.Tracer.Start("sql", "stmt="+firstWord(trimmed))
	defer span.Finish()
	tParse := time.Now()
	st, need, err := ParseWithParams(sql)
	s.e.Obs.Histogram("sql_parse_ms").ObserveSince(tParse)
	if err != nil {
		return nil, err
	}
	if need > len(params) {
		return nil, fmt.Errorf("sql: statement requires parameter $%d, got %d", need, len(params))
	}
	s.cur = span
	s.curSQL = trimmed
	defer func() { s.cur = nil; s.curSQL = "" }()
	switch x := st.(type) {
	case *SelectStmt:
		return s.execSelect(x, params)
	case *InsertStmt:
		return s.execInsert(x, params)
	case *UpdateStmt:
		return s.execUpdate(x, params)
	case *DeleteStmt:
		return s.execDelete(x, params)
	case *CreateTableStmt:
		return s.execCreateTable(x)
	case *CreateViewStmt:
		return &Result{}, s.e.Cat.CreateView(x.Name, selectSQL(sql))
	case *DropTableStmt:
		if !s.e.Cat.DropTable(x.Name) && !x.IfExists {
			return nil, fmt.Errorf("sql: no table %q", x.Name)
		}
		s.e.Mgr.Deregister(x.Name)
		return &Result{}, nil
	case *MergeDeltaStmt:
		if s.e.OnMergeDelta != nil {
			return &Result{}, s.e.OnMergeDelta(x.Table)
		}
		entry, ok := s.e.Cat.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("sql: no table %q", x.Table)
		}
		// Merge through the commit pipeline so concurrent committers with
		// validated positions are never renumbered mid-commit.
		for _, p := range entry.Partitions {
			s.e.Mgr.MergeNow(p.Table)
		}
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sql: unhandled statement %T", st)
}

// textResult renders multi-line text as a one-column result set.
func textResult(text string) *Result {
	res := &Result{Cols: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, value.Row{value.String(line)})
	}
	return res
}

// firstWord labels a statement span by its leading keyword.
func firstWord(sql string) string {
	if i := strings.IndexAny(sql, " \t\n"); i > 0 {
		return strings.ToUpper(sql[:i])
	}
	return strings.ToUpper(sql)
}

// selectSQL extracts the SELECT text of a CREATE VIEW statement.
func selectSQL(sql string) string {
	up := strings.ToUpper(sql)
	i := strings.Index(up, " AS ")
	if i < 0 {
		return sql
	}
	return strings.TrimSpace(sql[i+4:])
}

func (s *Session) snapshotTS() uint64 {
	if s.tx != nil {
		return s.tx.SnapshotTS()
	}
	return s.e.Mgr.Now()
}

func (s *Session) execSelect(sel *SelectStmt, params []value.Value) (*Result, error) {
	ts := s.snapshotTS()
	tPlan := time.Now()
	psp := s.cur.Child("plan")
	pl := &Planner{Cat: s.e.Cat, Reg: s.e.Reg, Sys: s.e.Sys, TS: ts, Prune: s.e.Prune}
	plan, err := pl.BuildSelect(sel)
	psp.Finish()
	s.e.Obs.Histogram("sql_plan_ms").ObserveSince(tPlan)
	if err != nil {
		return nil, err
	}
	tExec := time.Now()
	esp := s.cur.Child("exec")
	var res *Result
	if s.e.SlowThreshold > 0 {
		// Always-on profiling: the slow execution is captured with its
		// operator breakdown, not re-run after the fact.
		var prof *Profile
		res, prof, err = RunAnalyzed(plan, ts, params, s.e.Reg, s.e.Mode, s.e.Workers)
		s.e.maybeRecordSlow(s.curSQL, prof)
	} else {
		res, err = RunWorkers(plan, ts, params, s.e.Reg, s.e.Mode, s.e.Workers)
	}
	esp.Finish()
	s.e.Obs.Histogram("sql_exec_ms").ObserveSince(tExec)
	s.e.Obs.Counter("sql_queries_total").Inc()
	if res != nil {
		s.e.Obs.Counter("sql_rows_scanned_total").Add(int64(res.Stats.RowsScanned))
	}
	return res, err
}

// currentTxn returns the session transaction, creating a one-statement
// transaction in auto-commit mode. done() commits it when owned; like
// Commit it never returns a bare txn error (errors.Is still unwraps).
func (s *Session) currentTxn() (tx *txn.Txn, done func() error) {
	if s.tx != nil {
		return s.tx, func() error { return nil }
	}
	tx = s.e.Mgr.Begin()
	return tx, func() error {
		if _, err := tx.Commit(); err != nil {
			return fmt.Errorf("sql: auto-commit failed: %w", err)
		}
		return nil
	}
}

func (s *Session) execInsert(ins *InsertStmt, params []value.Value) (*Result, error) {
	entry, ok := s.e.Cat.Table(ins.Table)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", ins.Table)
	}

	// Source rows.
	var src []value.Row
	if ins.Select != nil {
		res, err := s.execSelect(ins.Select, params)
		if err != nil {
			return nil, err
		}
		src = res.Rows
	} else {
		env := Env{Params: params}
		for _, exprs := range ins.Rows {
			row := make(value.Row, len(exprs))
			for i, ex := range exprs {
				f, err := compileExpr(ex, noColumns, s.e.Reg)
				if err != nil {
					return nil, err
				}
				row[i] = f(&env)
			}
			src = append(src, row)
		}
	}

	// Column mapping; flexible tables create unknown columns on the fly
	// (§II-H).
	colIdx := make([]int, 0, len(ins.Columns))
	if len(ins.Columns) > 0 {
		for _, c := range ins.Columns {
			idx := entry.Schema.ColIndex(c)
			if idx < 0 {
				if !entry.Flexible {
					return nil, fmt.Errorf("sql: unknown column %q in %s", c, ins.Table)
				}
				kind := value.KindString
				if len(src) > 0 && len(colIdx) < len(src[0]) && !src[0][len(colIdx)].IsNull() {
					kind = src[0][len(colIdx)].K
				}
				def := columnstore.ColumnDef{Name: c, Kind: kind}
				for _, p := range entry.Partitions {
					idx = p.Table.AddColumn(def)
				}
				entry.Schema = append(entry.Schema, def)
			}
			colIdx = append(colIdx, idx)
		}
	}

	tx, done := s.currentTxn()
	count := 0
	for _, row := range src {
		full := row
		if len(ins.Columns) > 0 {
			full = make(value.Row, len(entry.Schema))
			for i, idx := range colIdx {
				if i < len(row) {
					full[idx] = row[i]
				}
			}
		}
		// Coerce to schema kinds.
		for i := range full {
			if i < len(entry.Schema) {
				full[i] = value.Coerce(full[i], entry.Schema[i].Kind)
			}
		}
		part := routePartition(entry, full)
		if err := tx.Insert(part.Table.Name(), full); err != nil {
			if s.tx == nil {
				tx.Abort()
			}
			return nil, err
		}
		count++
	}
	if err := done(); err != nil {
		return nil, err
	}
	return &Result{Cols: []string{"inserted"}, Rows: []value.Row{{value.Int(int64(count))}}}, nil
}

func noColumns(q, n string) (int, error) {
	return 0, fmt.Errorf("sql: column reference %s not allowed here", joinQual(q, n))
}

func routePartition(entry *catalog.TableEntry, row value.Row) *catalog.Partition {
	p0 := entry.Partitions[0]
	if p0.PruneCol == "" || len(entry.Partitions) == 1 {
		return p0
	}
	ci := entry.Schema.ColIndex(p0.PruneCol)
	if ci < 0 || ci >= len(row) {
		return p0
	}
	return entry.PartitionFor(row[ci])
}

// victims finds visible rows matching the WHERE clause of UPDATE/DELETE.
type victim struct {
	part *catalog.Partition
	pos  int
	row  value.Row
}

// findVictims snapshots through the transaction (tx.SnapshotTable) so the
// merge epoch each position was read under is on record: a background
// merge that renumbers positions between here and commit turns into a
// clean ErrConflict retry instead of deleting the wrong row.
func (s *Session) findVictims(tx *txn.Txn, table string, where Expr, params []value.Value) (*catalog.TableEntry, []victim, error) {
	entry, ok := s.e.Cat.Table(table)
	if !ok {
		return nil, nil, fmt.Errorf("sql: unknown table %q", table)
	}
	cols := make([]colInfo, len(entry.Schema))
	for i, c := range entry.Schema {
		cols[i] = colInfo{Qual: table, Name: c.Name}
	}
	var pred evalFn
	if where != nil {
		f, err := compileExpr(where, resolverFor(cols), s.e.Reg)
		if err != nil {
			return nil, nil, err
		}
		pred = f
	}
	var out []victim
	env := Env{Params: params}
	for _, p := range entry.Partitions {
		snap, err := tx.SnapshotTable(p.Table.Name())
		if err != nil {
			return nil, nil, err
		}
		n := snap.NumRows()
		for pos := 0; pos < n; pos++ {
			if !snap.Visible(pos) {
				continue
			}
			row := snap.Row(pos)
			if pred != nil {
				env.Row = row
				if v := pred(&env); v.IsNull() || !v.AsBool() {
					continue
				}
			}
			out = append(out, victim{part: p, pos: pos, row: row})
		}
	}
	return entry, out, nil
}

func (s *Session) execUpdate(up *UpdateStmt, params []value.Value) (*Result, error) {
	tx, done := s.currentTxn()
	entry, vs, err := s.findVictims(tx, up.Table, up.Where, params)
	if err != nil {
		if s.tx == nil {
			tx.Abort()
		}
		return nil, err
	}
	cols := make([]colInfo, len(entry.Schema))
	for i, c := range entry.Schema {
		cols[i] = colInfo{Qual: up.Table, Name: c.Name}
	}
	type setter struct {
		idx int
		fn  evalFn
	}
	var setters []setter
	for _, st := range up.Set {
		idx := entry.Schema.ColIndex(st.Col)
		if idx < 0 {
			if s.tx == nil {
				tx.Abort()
			}
			return nil, fmt.Errorf("sql: unknown column %q", st.Col)
		}
		f, err := compileExpr(st.Expr, resolverFor(cols), s.e.Reg)
		if err != nil {
			if s.tx == nil {
				tx.Abort()
			}
			return nil, err
		}
		setters = append(setters, setter{idx, f})
	}
	env := Env{Params: params}
	for _, v := range vs {
		newRow := v.row.Clone()
		env.Row = v.row
		for _, st := range setters {
			newRow[st.idx] = value.Coerce(st.fn(&env), entry.Schema[st.idx].Kind)
		}
		if err := tx.Delete(v.part.Table.Name(), v.pos); err != nil {
			if s.tx == nil {
				tx.Abort()
			}
			return nil, err
		}
		target := routePartition(entry, newRow)
		if err := tx.Insert(target.Table.Name(), newRow); err != nil {
			if s.tx == nil {
				tx.Abort()
			}
			return nil, err
		}
	}
	if err := done(); err != nil {
		return nil, err
	}
	return &Result{Cols: []string{"updated"}, Rows: []value.Row{{value.Int(int64(len(vs)))}}}, nil
}

func (s *Session) execDelete(del *DeleteStmt, params []value.Value) (*Result, error) {
	tx, done := s.currentTxn()
	_, vs, err := s.findVictims(tx, del.Table, del.Where, params)
	if err != nil {
		if s.tx == nil {
			tx.Abort()
		}
		return nil, err
	}
	for _, v := range vs {
		if err := tx.Delete(v.part.Table.Name(), v.pos); err != nil {
			if s.tx == nil {
				tx.Abort()
			}
			return nil, err
		}
	}
	if err := done(); err != nil {
		return nil, err
	}
	return &Result{Cols: []string{"deleted"}, Rows: []value.Row{{value.Int(int64(len(vs)))}}}, nil
}

func (s *Session) execCreateTable(ct *CreateTableStmt) (*Result, error) {
	if _, exists := s.e.Cat.Table(ct.Name); exists {
		if ct.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sql: table %q already exists", ct.Name)
	}
	schema := make(columnstore.Schema, len(ct.Cols))
	for i, c := range ct.Cols {
		k, err := value.ParseKind(c.Type)
		if err != nil {
			return nil, err
		}
		schema[i] = columnstore.ColumnDef{Name: c.Name, Kind: k}
	}
	var entry *catalog.TableEntry
	var err error
	if ct.PartitionBy != "" {
		entry, err = s.e.Cat.CreateRangePartitioned(ct.Name, schema, ct.PartitionBy, ct.Bounds)
	} else {
		entry, err = s.e.Cat.CreateTable(ct.Name, schema)
	}
	if err != nil {
		return nil, err
	}
	for _, p := range entry.Partitions {
		s.e.Mgr.Register(p.Table)
	}
	for k, v := range ct.Options {
		switch k {
		case "flexible":
			entry.Flexible = v == "true" || v == "1"
		case "stable_key":
			for _, p := range entry.Partitions {
				if err := p.Table.SetStableKeyColumn(v); err != nil {
					return nil, err
				}
			}
		default:
			entry.Metadata[k] = v
		}
	}
	return &Result{}, nil
}

// RegisterEntryTables registers all partitions of an externally created
// entry with the transaction manager (engines that create tables through
// the catalog directly use this).
func (e *Engine) RegisterEntryTables(entry *catalog.TableEntry) {
	for _, p := range entry.Partitions {
		e.Mgr.Register(p.Table)
	}
}
