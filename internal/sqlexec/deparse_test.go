package sqlexec

import (
	"strings"
	"testing"

	"repro/internal/columnstore"
	"repro/internal/value"
)

func TestDeparseRoundTrip(t *testing.T) {
	// Parse → deparse → parse → deparse must be a fixed point, and both
	// parses must execute identically.
	queries := []string{
		`SELECT a, b AS x FROM t WHERE a > 1 AND b LIKE 'x%' ORDER BY x DESC LIMIT 3 OFFSET 1`,
		`SELECT COUNT(*), SUM(a) FROM t GROUP BY b HAVING COUNT(*) > 2`,
		`SELECT * FROM t1 JOIN t2 ON t1.a = t2.b LEFT JOIN t3 ON t2.c = t3.d`,
		`SELECT a FROM (SELECT a FROM t) sub WHERE a IN (1, 2) OR a BETWEEN 5 AND 9`,
		`SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t WHERE b IS NOT NULL`,
		`SELECT DISTINCT UPPER(name) FROM t WHERE NOT (x = 1)`,
		`SELECT a || '-' || b FROM t WHERE s = 'it''s'`,
	}
	for _, q := range queries {
		st1, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		d1 := Deparse(st1.(*SelectStmt))
		st2, err := Parse(d1)
		if err != nil {
			t.Fatalf("deparse output unparseable: %s → %s: %v", q, d1, err)
		}
		d2 := Deparse(st2.(*SelectStmt))
		if d1 != d2 {
			t.Fatalf("not a fixed point:\n%s\n%s", d1, d2)
		}
	}
}

func TestDeparsedQueryExecutesIdentically(t *testing.T) {
	e := newTestEngine(t)
	q := `SELECT status, COUNT(*) AS n, SUM(total) FROM orders WHERE yr >= 2014 AND status <> 'OPEN' GROUP BY status ORDER BY status`
	st, _ := Parse(q)
	dq := Deparse(st.(*SelectStmt))
	r1 := mustExec(t, e, q)
	r2 := mustExec(t, e, dq)
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		if r1.Rows[i].Key() != r2.Rows[i].Key() {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestCompileRowPredicate(t *testing.T) {
	schema := columnstore.Schema{
		{Name: "fill", Kind: value.KindInt},
		{Name: "site", Kind: value.KindString},
	}
	pred, err := CompileRowPredicate(`fill < 20 AND site <> 'closed'`, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(value.Row{value.Int(10), value.String("a")}) {
		t.Fatal("should match")
	}
	if pred(value.Row{value.Int(30), value.String("a")}) {
		t.Fatal("fill too high")
	}
	if pred(value.Row{value.Int(10), value.String("closed")}) {
		t.Fatal("closed site matched")
	}
	if _, err := CompileRowPredicate(`nosuch = 1`, schema, nil); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := CompileRowPredicate(`fill <`, schema, nil); err == nil {
		t.Fatal("syntax error accepted")
	}
}

func TestResultString(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, `SELECT id, name FROM customers WHERE id < 2 ORDER BY id`)
	s := r.String()
	if !strings.Contains(s, "id") || !strings.Contains(s, "cust00") {
		t.Fatalf("rendering: %q", s)
	}
	var nilRes *Result
	if nilRes.String() != "(no result)\n" {
		t.Fatal("nil rendering")
	}
}
