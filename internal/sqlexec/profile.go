package sqlexec

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/value"
)

// This file implements EXPLAIN ANALYZE: a per-query Profile mirroring the
// plan tree, populated by whichever executor runs the statement. Each
// operator records its inclusive wall time (own work plus descendants) so
// self times telescope — summing every operator's self time reproduces
// the root's inclusive time, which is how the analyze output stays
// reconcilable against the statement's end-to-end latency.
//
// Instrumentation attaches at operator boundaries, once per Next call
// (interpreter), per pushed row (compiled) or per batch/morsel
// (vectorized), so the vectorized hot path pays a handful of clock reads
// per 16k-row morsel — experiment E20 pins the overhead below 10%.

// OpProfile is one operator's measured runtime behavior. Counters use
// atomics because morsel workers update the scan operator concurrently.
type OpProfile struct {
	Label    string
	Children []*OpProfile

	wallNS          atomic.Int64 // inclusive: operator + descendants
	rowsOut         atomic.Int64
	batches         atomic.Int64
	rowsScanned     atomic.Int64 // scans: visible rows examined
	partsScanned    atomic.Int64
	partsPruned     atomic.Int64
	morsels         atomic.Int64
	kernelHits      atomic.Int64
	kernelFallbacks atomic.Int64
	busyNS          atomic.Int64 // summed worker-side morsel time
	pageFaults      atomic.Int64 // scans: extended-store chunk faults
	faultNS         atomic.Int64 // scans: time inside those faults
	buildRows       atomic.Int64 // joins: hash-table input
	probeRows       atomic.Int64 // joins: probe-side input
	codesJoined     atomic.Int64 // joins: probe keys answered as integer codes
	runsFolded      atomic.Int64 // aggregates: RLE runs consumed whole
	batchesFused    atomic.Int64 // batches fused past an intermediate materialization
	decodeAvoided   atomic.Int64 // estimated boxed bytes never materialized
	fused           bool         // executed inside the parent (agg+scan fusion)
}

// Wall returns the operator's inclusive wall time.
func (o *OpProfile) Wall() time.Duration { return time.Duration(o.wallNS.Load()) }

// Self returns the operator's exclusive wall time: inclusive minus the
// children's inclusive time, clamped at zero.
func (o *OpProfile) Self() time.Duration {
	self := o.wallNS.Load()
	for _, c := range o.Children {
		self -= c.wallNS.Load()
	}
	if self < 0 {
		self = 0
	}
	return time.Duration(self)
}

// RowsOut returns the number of rows the operator produced.
func (o *OpProfile) RowsOut() int64 { return o.rowsOut.Load() }

// Profile is the runtime-annotated plan of one analyzed statement.
type Profile struct {
	Root    *OpProfile
	Mode    Mode
	Workers int           // morsel workers (vectorized mode)
	Total   time.Duration // end-to-end statement wall time
	SQL     string

	byPlan map[Plan]*OpProfile
}

// newProfile builds the OpProfile tree mirroring a plan.
func newProfile(p Plan, mode Mode, workers int) *Profile {
	prof := &Profile{Mode: mode, Workers: workers, byPlan: map[Plan]*OpProfile{}}
	prof.Root = prof.build(p)
	return prof
}

func (p *Profile) build(pl Plan) *OpProfile {
	op := &OpProfile{Label: planLabel(pl)}
	p.byPlan[pl] = op
	for _, c := range planChildren(pl) {
		op.Children = append(op.Children, p.build(c))
	}
	return op
}

// node returns the profile node for a plan operator; nil on a nil
// profile or unknown node, and every recording path tolerates nil.
func (p *Profile) node(pl Plan) *OpProfile {
	if p == nil {
		return nil
	}
	return p.byPlan[pl]
}

// OperatorTotal sums every operator's self time — by construction this
// telescopes to the root's inclusive time and should land within a few
// percent of Total (the remainder is parse/plan/result assembly).
func (p *Profile) OperatorTotal() time.Duration {
	var sum time.Duration
	var walk func(o *OpProfile)
	walk = func(o *OpProfile) {
		sum += o.Self()
		for _, c := range o.Children {
			walk(c)
		}
	}
	if p.Root != nil {
		walk(p.Root)
	}
	return sum
}

// Render formats the annotated plan tree.
func (p *Profile) Render() string {
	var sb strings.Builder
	mode := [...]string{"compiled", "interpreted", "vectorized"}[p.Mode]
	fmt.Fprintf(&sb, "EXPLAIN ANALYZE (%s", mode)
	if p.Mode == ModeVectorized && p.Workers > 0 {
		fmt.Fprintf(&sb, ", %d workers", p.Workers)
	}
	fmt.Fprintf(&sb, ") total=%s operators=%s\n", fmtDur(p.Total), fmtDur(p.OperatorTotal()))
	if p.Root != nil {
		p.renderOp(&sb, p.Root, 1)
	}
	return sb.String()
}

func (p *Profile) renderOp(sb *strings.Builder, o *OpProfile, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(o.Label)
	if o.fused {
		fmt.Fprintf(sb, "  (fused into parent)")
	} else {
		fmt.Fprintf(sb, "  time=%s self=%s", fmtDur(o.Wall()), fmtDur(o.Self()))
	}
	if n := o.rowsOut.Load(); n > 0 || !o.fused {
		fmt.Fprintf(sb, " rows_out=%d", n)
	}
	if n := o.batches.Load(); n > 0 {
		fmt.Fprintf(sb, " batches=%d", n)
	}
	if n := o.rowsScanned.Load(); n > 0 {
		fmt.Fprintf(sb, " rows_scanned=%d", n)
	}
	if n := o.partsScanned.Load(); n > 0 {
		fmt.Fprintf(sb, " partitions=%d", n)
		if pr := o.partsPruned.Load(); pr > 0 {
			fmt.Fprintf(sb, " pruned=%d", pr)
		}
	}
	if n := o.morsels.Load(); n > 0 {
		fmt.Fprintf(sb, " morsels=%d", n)
	}
	if h, f := o.kernelHits.Load(), o.kernelFallbacks.Load(); h+f > 0 {
		fmt.Fprintf(sb, " kernels=%d/%d", h, f)
	}
	if n := o.pageFaults.Load(); n > 0 {
		fmt.Fprintf(sb, " page_faults=%d fault_time=%s", n, fmtDur(time.Duration(o.faultNS.Load())))
	}
	if busy := o.busyNS.Load(); busy > 0 {
		fmt.Fprintf(sb, " worker_busy=%s", fmtDur(time.Duration(busy)))
		if p.Workers > 0 {
			// Occupancy: average busy workers over the operator's (or, for
			// fused scans, the statement's) wall-clock window.
			window := o.wallNS.Load()
			if window == 0 {
				window = int64(p.Total)
			}
			if window > 0 {
				fmt.Fprintf(sb, " occupancy=%.2f/%d", float64(busy)/float64(window), p.Workers)
			}
		}
	}
	if b := o.buildRows.Load(); b > 0 || o.probeRows.Load() > 0 {
		fmt.Fprintf(sb, " build=%d probe=%d", b, o.probeRows.Load())
	}
	if n := o.codesJoined.Load(); n > 0 {
		fmt.Fprintf(sb, " codes_joined=%d", n)
	}
	if n := o.runsFolded.Load(); n > 0 {
		fmt.Fprintf(sb, " runs_folded=%d", n)
	}
	if n := o.batchesFused.Load(); n > 0 {
		fmt.Fprintf(sb, " batches_fused=%d", n)
	}
	if n := o.decodeAvoided.Load(); n > 0 {
		fmt.Fprintf(sb, " decode_avoided=%dB", n)
	}
	sb.WriteString("\n")
	for _, c := range o.Children {
		p.renderOp(sb, c, depth+1)
	}
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}

// finish derives cross-operator numbers that are cheaper to infer than to
// instrument: hash-join build/probe sizes from the children's row counts.
func (p *Profile) finish(pl Plan) {
	if p == nil {
		return
	}
	var walk func(Plan)
	walk = func(n Plan) {
		if j, ok := n.(*JoinPlan); ok {
			op, l, r := p.node(j), p.node(j.L), p.node(j.R)
			if op != nil && l != nil && r != nil && op.buildRows.Load() == 0 {
				// All three executors build the hash table on the right
				// (the planner's chooseBuildSide already put the smaller
				// input there) and probe with the left.
				op.buildRows.Store(r.rowsOut.Load())
				op.probeRows.Store(l.rowsOut.Load())
			}
		}
		for _, c := range planChildren(n) {
			walk(c)
		}
	}
	walk(pl)
}

// planChildren enumerates a plan node's inputs.
func planChildren(p Plan) []Plan {
	switch x := p.(type) {
	case *FilterPlan:
		return []Plan{x.Child}
	case *ProjectPlan:
		return []Plan{x.Child}
	case *JoinPlan:
		return []Plan{x.L, x.R}
	case *AggPlan:
		return []Plan{x.Child}
	case *DistinctPlan:
		return []Plan{x.Child}
	case *SortPlan:
		return []Plan{x.Child}
	case *LimitPlan:
		return []Plan{x.Child}
	case *AliasPlan:
		return []Plan{x.Child}
	}
	return nil
}

// planLabel is the one-line operator description, matching EXPLAIN.
func planLabel(p Plan) string {
	switch x := p.(type) {
	case *ScanPlan:
		s := "Scan " + x.Entry.Name
		if x.Alias != x.Entry.Name {
			s += " AS " + x.Alias
		}
		s += " [" + strconv.Itoa(len(x.scanParts())) + "/" + strconv.Itoa(len(x.Entry.Partitions)) + " partitions]"
		if x.Filter != nil {
			s += " filter=" + exprString(x.Filter)
		}
		return s
	case *TableFuncPlan:
		return "TableFunc " + x.Name
	case *VirtualScanPlan:
		return "VirtualScan " + x.Table.Name
	case *FilterPlan:
		return "Filter " + exprString(x.Pred)
	case *JoinPlan:
		kind := "HashJoin"
		if len(x.EquiL) == 0 {
			kind = "NestedLoopJoin"
		}
		if x.LeftOuter {
			kind = "Left" + kind
		}
		for i := range x.EquiL {
			kind += " " + exprString(x.EquiL[i]) + "=" + exprString(x.EquiR[i])
		}
		if x.Residual != nil {
			kind += " residual=" + exprString(x.Residual)
		}
		return kind
	case *ProjectPlan:
		return "Project " + strings.Join(x.Names, ", ")
	case *AggPlan:
		return fmt.Sprintf("Aggregate groups=%d aggs=%d", len(x.GroupBy), len(x.Aggs))
	case *DistinctPlan:
		return "Distinct"
	case *SortPlan:
		return "Sort"
	case *LimitPlan:
		return fmt.Sprintf("Limit %d offset %d", x.N, x.Offset)
	case *AliasPlan:
		return "Alias " + x.Alias
	case *ValuesPlan:
		return fmt.Sprintf("Values %d rows", len(x.Rows))
	}
	return fmt.Sprintf("%T", p)
}

// --- executor hooks ---------------------------------------------------------

// profIter wraps a Volcano iterator, timing Open/Next/Close inclusively
// and counting produced rows.
type profIter struct {
	inner iterator
	op    *OpProfile
}

func (it *profIter) Open() error {
	t0 := time.Now()
	err := it.inner.Open()
	it.op.wallNS.Add(time.Since(t0).Nanoseconds())
	return err
}

func (it *profIter) Next() (value.Row, bool, error) {
	t0 := time.Now()
	row, ok, err := it.inner.Next()
	it.op.wallNS.Add(time.Since(t0).Nanoseconds())
	if ok {
		it.op.rowsOut.Add(1)
	}
	return row, ok, err
}

func (it *profIter) Close() {
	t0 := time.Now()
	it.inner.Close()
	it.op.wallNS.Add(time.Since(t0).Nanoseconds())
}

// wrapIter attaches profiling to an interpreter operator. The wrapped
// children are invoked inside the parent's Next, so wall times nest
// inclusively on their own.
func (p *Profile) wrapIter(pl Plan, it iterator) iterator {
	if p == nil {
		return it
	}
	op := p.byPlan[pl]
	if op == nil {
		return it
	}
	return &profIter{inner: it, op: op}
}

// wrapPipe attaches profiling to a compiled (push) operator. A push
// pipeline inverts control — the scan loop drives everything — so the
// operator's inclusive time is its invocation time minus the time spent
// inside the downstream emit it was handed.
func (p *Profile) wrapPipe(pl Plan, inner pipe) pipe {
	if p == nil {
		return inner
	}
	op := p.byPlan[pl]
	if op == nil {
		return inner
	}
	return func(emit func(value.Row) error) error {
		var emitNS int64
		t0 := time.Now()
		err := inner(func(row value.Row) error {
			op.rowsOut.Add(1)
			e0 := time.Now()
			eerr := emit(row)
			emitNS += time.Since(e0).Nanoseconds()
			return eerr
		})
		op.wallNS.Add(time.Since(t0).Nanoseconds() - emitNS)
		return err
	}
}

// wrapVPipe is wrapPipe for the vectorized batch pipelines: the same
// inclusive-minus-emit accounting, charged once per batch.
func (p *Profile) wrapVPipe(pl Plan, inner vpipe) vpipe {
	if p == nil {
		return inner
	}
	op := p.byPlan[pl]
	if op == nil {
		return inner
	}
	return func(emit func(rows []value.Row) error) error {
		var emitNS int64
		t0 := time.Now()
		err := inner(func(rows []value.Row) error {
			op.rowsOut.Add(int64(len(rows)))
			op.batches.Add(1)
			e0 := time.Now()
			eerr := emit(rows)
			emitNS += time.Since(e0).Nanoseconds()
			return eerr
		})
		op.wallNS.Add(time.Since(t0).Nanoseconds() - emitNS)
		return err
	}
}
