package sqlexec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/extstore"
	"repro/internal/value"
)

// TestZonePruneProperty is the zone-map pruning correctness property
// (quick.Check, matching the mergeDictionaries style): for randomized
// datasets and randomized int/string predicates, a scan over warm
// partitions — where the planner prunes via zone maps before any page
// fault — returns exactly the rows of the unpruned all-hot scan.
func TestZonePruneProperty(t *testing.T) {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	var pruned int64

	f := func(seed int64, kRaw int64, litSel, opSel, colSel uint8) bool {
		letters := []string{"alpha", "bravo", "charlie", "delta", "echo"}

		build := func() *Engine {
			e := NewEngine()
			mustExec(t, e, `CREATE TABLE zt (pk INT, v INT, s VARCHAR) PARTITION BY RANGE(pk) VALUES (60, 120)`)
			sess := e.NewSession()
			defer sess.Close()
			sess.Begin()
			r2 := rand.New(rand.NewSource(seed)) // same rows in both engines
			for i := 0; i < 180; i++ {
				v := value.Int(int64(r2.Intn(101) - 50))
				s := value.String(letters[r2.Intn(len(letters))])
				if r2.Intn(23) == 0 {
					v = value.Null
				}
				if r2.Intn(19) == 0 {
					s = value.Null
				}
				if _, err := sess.Query(`INSERT INTO zt VALUES (?, ?, ?)`,
					value.Int(int64(i)), v, s); err != nil {
					t.Fatal(err)
				}
			}
			if err := sess.Commit(); err != nil {
				t.Fatal(err)
			}
			mustExec(t, e, `MERGE DELTA OF zt`)
			return e
		}

		hot := build()
		warm := build()
		store, err := extstore.OpenTemp(extstore.Options{PageSize: 512, ChunkRows: 32, PoolPages: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if _, err := store.DemoteTable(warm.Cat.MustTable("zt"), warm.Mgr.MinActiveTS()); err != nil {
			t.Fatal(err)
		}

		op := ops[int(opSel)%len(ops)]
		var q string
		if colSel%2 == 0 {
			// Int predicate; widen k beyond the data range sometimes so
			// whole-table prunes happen too.
			k := kRaw%80 - 40
			if kRaw%7 == 0 {
				k = kRaw % 1000
			}
			q = fmt.Sprintf(`SELECT pk, v, s FROM zt WHERE v %s %d ORDER BY pk`, op, k)
		} else {
			lits := append(letters, "aaa", "zzz") // out-of-range literals prune everything
			q = fmt.Sprintf(`SELECT pk, v, s FROM zt WHERE s %s '%s' ORDER BY pk`, op, lits[int(litSel)%len(lits)])
		}

		hot.Mode = ModeInterpreted
		want := resultKeys(mustExec(t, hot, q))
		for _, mode := range []Mode{ModeInterpreted, ModeCompiled, ModeVectorized} {
			warm.Mode = mode
			got := mustExec(t, warm, q)
			if keys := resultKeys(got); !reflect.DeepEqual(keys, want) {
				t.Logf("%s: mode=%d pruned warm scan %d rows, unpruned hot scan %d rows", q, mode, len(keys), len(want))
				return false
			}
			pruned += int64(got.Stats.PartitionsPruned)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if pruned == 0 {
		t.Fatal("zone pruning never fired across the property run")
	}
}
