package sqlexec

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// This file implements statement fingerprinting: the normalization that
// folds every execution of "the same query shape" onto one stable ID, the
// way pg_stat_statements (and HANA's M_SQL_PLAN_CACHE) key their workload
// statistics. Literals and parameters are abstracted away, IN-lists of
// literals collapse regardless of arity, and whitespace/keyword case are
// canonicalized — so `select * from t where id = 7` and
// `SELECT * FROM t WHERE id IN ($1,$2,$3)` each map to one fingerprint no
// matter how the client spells them.

// Fingerprint returns the stable fingerprint ID (16 hex digits, FNV-64a
// of the normalized text) and the normalized text itself.
func Fingerprint(sql string) (id, norm string) {
	norm = NormalizeSQL(sql)
	h := fnv.New64a()
	h.Write([]byte(norm))
	return fmt.Sprintf("%016x", h.Sum64()), norm
}

// NormalizeSQL canonicalizes a statement for fingerprinting: keywords
// uppercase, identifiers lowercase, every literal and parameter replaced
// by `?`, IN-lists of literals collapsed to `(...)`, and spacing reduced
// to a single canonical form. Statements the lexer rejects fall back to
// whitespace collapsing, so every string — even unparseable garbage —
// gets a deterministic fingerprint.
func NormalizeSQL(sql string) string {
	toks, err := lex(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
	if err != nil {
		return strings.Join(strings.Fields(sql), " ")
	}
	var parts []string
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch t.kind {
		case tkEOF:
		case tkNumber, tkString, tkParam:
			parts = append(parts, "?")
		case tkKeyword:
			parts = append(parts, t.text)
			if t.text == "IN" {
				if j, ok := literalListEnd(toks, i+1); ok {
					parts = append(parts, "(...)")
					i = j
				}
			}
		default:
			parts = append(parts, t.text)
		}
	}
	var sb strings.Builder
	for i, s := range parts {
		if i > 0 && spaceBetween(parts[i-1], s) {
			sb.WriteByte(' ')
		}
		sb.WriteString(s)
	}
	return sb.String()
}

// literalListEnd reports whether toks[start] opens a parenthesized list
// made only of literals/parameters (commas and unary minus allowed) and
// returns the index of the closing paren.
func literalListEnd(toks []token, start int) (int, bool) {
	if start >= len(toks) || toks[start].kind != tkOp || toks[start].text != "(" {
		return 0, false
	}
	for j := start + 1; j < len(toks); j++ {
		t := toks[j]
		switch {
		case t.kind == tkOp && t.text == ")":
			if j == start+1 {
				return 0, false // IN () — not a literal list
			}
			return j, true
		case t.kind == tkNumber || t.kind == tkString || t.kind == tkParam:
		case t.kind == tkOp && (t.text == "," || t.text == "-"):
		default:
			return 0, false
		}
	}
	return 0, false
}

// spaceBetween decides canonical spacing: none around '.', none after
// '(' and none before ',' or ')'.
func spaceBetween(prev, cur string) bool {
	switch cur {
	case ",", ")", ".":
		return false
	}
	switch prev {
	case "(", ".":
		return false
	}
	return true
}
