package sqlexec

import (
	"sort"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// This file implements compressed execution: the vectorized operators
// that keep dictionary codes and selection vectors flowing through the
// pipeline instead of decoding at scan exit. Joins probe on integer
// codes (build keys interned into the probe key space once), group-bys
// key on codes with a flat-array fast path, aggregates consume whole RLE
// runs, and pure-projection pipelines materialize only selected columns.
// Every path is gated by a plan-shape check (plan.go) and falls back to
// the boxed operators per morsel, so results stay byte-identical to the
// row-at-a-time executors.

// vecFlatGroupCutoff bounds the flat-array group fast path: group codes
// in [0, cutoff) index an array, anything beyond spills to the overflow
// map. Dictionary codes are dense from zero, so low-cardinality keys
// never touch the map; package-level so tests can force mid-query
// overflow.
var vecFlatGroupCutoff = 4096

// nullCode is the canonical key reserved for NULL group/join keys.
const nullCode int64 = -1

// strInterner assigns dense int64 ids to decoded strings, shared across
// the worker folds of one query so every worker agrees on the code
// space. The KeyCoder contract calls intern once per distinct value per
// morsel, which keeps the mutex off the per-row path.
type strInterner struct {
	mu   sync.Mutex
	ids  map[string]int64
	vals []string
}

func newStrInterner() *strInterner { return &strInterner{ids: map[string]int64{}} }

func (it *strInterner) intern(s string) int64 {
	it.mu.Lock()
	id, ok := it.ids[s]
	if !ok {
		id = int64(len(it.vals))
		it.ids[s] = id
		it.vals = append(it.vals, s)
	}
	it.mu.Unlock()
	return id
}

// addRepeat folds n identical values in one step — the run-length
// contract: COUNT gains n, sums gain value × n (exact for the integer
// sums that reach the fused path; float sums are routed to the ordered
// fold before ever getting here), MIN/MAX compare once per run.
func (a *aggAcc) addRepeat(v value.Value, n int64, spec aggSpec) {
	if n <= 0 {
		return
	}
	if spec.Star {
		a.count += n
		return
	}
	if v.IsNull() {
		return
	}
	a.count += n
	switch v.K {
	case value.KindFloat:
		a.isFloat = true
		a.sumF += v.F * float64(n)
	default:
		a.sumI += v.I * n
	}
	if a.min.IsNull() || value.Compare(v, a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || value.Compare(v, a.max) > 0 {
		a.max = v
	}
}

// --- code-valued group-by ---------------------------------------------------

// codeGroup is one group keyed by a canonical int64 code. The boxed key
// is only carried for odd groups (delta values whose kind escapes the
// canonical domain); everything else renders its key from the code at
// finish time.
type codeGroup struct {
	code  int64
	key   value.Value // odd groups only
	null  bool
	odd   bool
	accs  []aggAcc
	first int64
}

// codeFold is one worker-local partial aggregation keyed on codes: a
// flat array for codes below the cutoff, an overflow map above it, plus
// dedicated slots for the NULL group, the global (no GROUP BY) group and
// odd-kind keys. Morsels dispatch per encoding: whole-run folds for
// run-length group columns, code keys for dictionary columns, raw int64
// for frame-of-reference columns, boxed rows for delta morsels and
// residual filters.
type codeFold struct {
	info     aggCodeInfo
	specs    []aggSpec
	interner *strInterner

	flat     []*codeGroup
	overflow map[int64]*codeGroup
	nullG    *codeGroup
	global   *codeGroup
	odd      map[string]*codeGroup

	keyScratch []int64

	// avoidPerRow estimates boxed values NOT materialized per surviving
	// row on the code paths: full row width minus the distinct aggregate
	// argument columns actually read.
	avoidPerRow int

	runsFolded    int64
	batchesFused  int64
	decodeAvoided int64
}

func newCodeFold(x *AggPlan, info aggCodeInfo, interner *strInterner, ncols int) *codeFold {
	distinct := map[int]bool{}
	for _, ac := range info.argCols {
		if ac >= 0 {
			distinct[ac] = true
		}
	}
	return &codeFold{
		info:        info,
		specs:       x.Aggs,
		interner:    interner,
		overflow:    map[int64]*codeGroup{},
		odd:         map[string]*codeGroup{},
		avoidPerRow: ncols - len(distinct),
	}
}

func (f *codeFold) newGroup(code, rank int64) *codeGroup {
	return &codeGroup{code: code, accs: make([]aggAcc, len(f.specs)), first: rank}
}

// group resolves the partial group for a canonical code. Workers consume
// their morsels in ascending sequence order, so the first rank a group
// sees inside one fold is its minimum for that fold — the same invariant
// vecAggFold relies on.
func (f *codeFold) group(code, rank int64) *codeGroup {
	if code >= 0 && code < int64(vecFlatGroupCutoff) {
		if int(code) >= len(f.flat) {
			grown := make([]*codeGroup, vecFlatGroupCutoff)
			copy(grown, f.flat)
			f.flat = grown
		}
		g := f.flat[code]
		if g == nil {
			g = f.newGroup(code, rank)
			f.flat[code] = g
		}
		return g
	}
	g := f.overflow[code]
	if g == nil {
		g = f.newGroup(code, rank)
		f.overflow[code] = g
	}
	return g
}

func (f *codeFold) nullGroup(rank int64) *codeGroup {
	if f.nullG == nil {
		f.nullG = f.newGroup(nullCode, rank)
		f.nullG.null = true
	}
	return f.nullG
}

func (f *codeFold) globalGroup() *codeGroup {
	if f.global == nil {
		f.global = f.newGroup(0, 0)
	}
	return f.global
}

func (f *codeFold) oddGroup(v value.Value, rank int64) *codeGroup {
	k := value.Row{v}.Key()
	g := f.odd[k]
	if g == nil {
		g = f.newGroup(0, rank)
		g.odd = true
		g.key = v
		f.odd[k] = g
	}
	return g
}

// groupFor maps one boxed group-key value onto its canonical group.
func (f *codeFold) groupFor(v value.Value, rank int64) *codeGroup {
	switch {
	case v.IsNull():
		return f.nullGroup(rank)
	case f.info.groupKind == value.KindString && v.K == value.KindString:
		return f.group(f.interner.intern(v.S), rank)
	case f.info.groupKind != value.KindString && v.K == f.info.groupKind:
		return f.group(v.I, rank)
	default:
		return f.oddGroup(v, rank)
	}
}

// foldArgs folds one surviving row position into a group, reading only
// the aggregate argument columns.
func (f *codeFold) foldArgs(g *codeGroup, t *scanTask, pos int) {
	for j, spec := range f.specs {
		ac := f.info.argCols[j]
		if ac < 0 {
			g.accs[j].add(value.Null, spec)
			continue
		}
		g.accs[j].add(t.getters[ac](pos), spec)
	}
}

// foldMorsel dispatches one morsel's surviving positions onto the
// cheapest eligible path. sel is worker scratch and must not be
// retained.
func (f *codeFold) foldMorsel(r *scanRun, t *scanTask, sel []int) {
	base := int64(t.seq) << 20
	dense := len(sel) == t.hi-t.lo
	if f.info.groupCol < 0 {
		if t.main && t.resid == nil {
			f.foldGlobal(t, sel, dense)
			return
		}
		f.foldBoxed(r, t, sel, base)
		return
	}
	if t.main && t.resid == nil {
		mc := t.snap.MainColumn(f.info.groupCol)
		if dense {
			if rf, ok := mc.(columnstore.RunFolder); ok {
				f.foldRuns(rf, t, base)
				return
			}
		}
		if f.info.groupKind == value.KindString {
			if kc, ok := mc.(columnstore.KeyCoder); ok {
				f.foldCodes(kc, t, sel, base)
				return
			}
		} else if ia, ok := mc.(columnstore.IntAccessor); ok {
			f.foldInts(mc, ia, t, sel, base)
			return
		}
	}
	f.foldBoxed(r, t, sel, base)
}

// foldCodes groups a morsel by dictionary code: per surviving row the
// work is one int64 remap and an array index — each distinct string
// decodes once per morsel, not once per row.
func (f *codeFold) foldCodes(kc columnstore.KeyCoder, t *scanTask, sel []int, base int64) {
	keys := kc.CodeKeys(sel, f.interner.intern, nullCode, f.keyScratch[:0])
	f.keyScratch = keys
	for i, pos := range sel {
		rank := base + int64(i)
		var g *codeGroup
		if keys[i] == nullCode {
			g = f.nullGroup(rank)
		} else {
			g = f.group(keys[i], rank)
		}
		f.foldArgs(g, t, pos)
	}
	f.batchesFused++
	f.decodeAvoided += int64(len(sel)) * int64(f.avoidPerRow) * 16
}

// foldInts groups a morsel by raw integer value (frame-of-reference and
// run-length integer columns expose IntAccessor).
func (f *codeFold) foldInts(mc columnstore.MainColumn, ia columnstore.IntAccessor, t *scanTask, sel []int, base int64) {
	for i, pos := range sel {
		rank := base + int64(i)
		var g *codeGroup
		if mc.IsNull(pos) {
			g = f.nullGroup(rank)
		} else {
			g = f.group(ia.Int64(pos), rank)
		}
		f.foldArgs(g, t, pos)
	}
	f.batchesFused++
	f.decodeAvoided += int64(len(sel)) * int64(f.avoidPerRow) * 16
}

// foldRuns consumes whole runs of the group column: the group resolves
// once per run, COUNT(*) and arguments equal to the key fold count ×
// value, run-length argument columns fold their own sub-runs, and only
// arguments without run structure walk rows.
func (f *codeFold) foldRuns(rf columnstore.RunFolder, t *scanTask, base int64) {
	rf.FoldRuns(t.lo, t.hi, func(v value.Value, start, end int) {
		n := int64(end - start)
		g := f.groupFor(v, base+int64(start-t.lo))
		for j, spec := range f.specs {
			ac := f.info.argCols[j]
			switch {
			case ac < 0:
				g.accs[j].addRepeat(value.Null, n, spec)
			case ac == f.info.groupCol:
				g.accs[j].addRepeat(v, n, spec)
			default:
				if arf, ok := t.snap.MainColumn(ac).(columnstore.RunFolder); ok {
					arf.FoldRuns(start, end, func(av value.Value, s, e int) {
						g.accs[j].addRepeat(av, int64(e-s), spec)
						if e-s > 1 {
							f.runsFolded++
						}
					})
				} else {
					gtr := t.getters[ac]
					for p := start; p < end; p++ {
						g.accs[j].add(gtr(p), spec)
					}
				}
			}
		}
		if n > 1 {
			f.runsFolded++
		}
	})
	f.batchesFused++
	f.decodeAvoided += int64(t.hi-t.lo) * int64(f.avoidPerRow) * 16
}

// foldGlobal folds an aggregate-only morsel without any grouping:
// COUNT(*) is the selection count, run-length arguments fold whole runs,
// the rest read positions directly.
func (f *codeFold) foldGlobal(t *scanTask, sel []int, dense bool) {
	g := f.globalGroup()
	for j, spec := range f.specs {
		ac := f.info.argCols[j]
		if ac < 0 {
			g.accs[j].addRepeat(value.Null, int64(len(sel)), spec)
			continue
		}
		if dense {
			if arf, ok := t.snap.MainColumn(ac).(columnstore.RunFolder); ok {
				arf.FoldRuns(t.lo, t.hi, func(av value.Value, s, e int) {
					g.accs[j].addRepeat(av, int64(e-s), spec)
					if e-s > 1 {
						f.runsFolded++
					}
				})
				continue
			}
		}
		gtr := t.getters[ac]
		for _, pos := range sel {
			g.accs[j].add(gtr(pos), spec)
		}
	}
	f.batchesFused++
	f.decodeAvoided += int64(len(sel)) * int64(f.avoidPerRow) * 16
}

// foldBoxed is the per-morsel fallback: materialize rows (applying any
// residual), then fold boxed values through the same canonical key
// space.
func (f *codeFold) foldBoxed(r *scanRun, t *scanTask, sel []int, base int64) {
	rows := r.materialize(t, sel)
	for i, row := range rows {
		rank := base + int64(i)
		var g *codeGroup
		if f.info.groupCol < 0 {
			g = f.globalGroup()
		} else {
			g = f.groupFor(row[f.info.groupCol], rank)
		}
		for j, spec := range f.specs {
			ac := f.info.argCols[j]
			if ac < 0 {
				g.accs[j].add(value.Null, spec)
				continue
			}
			g.accs[j].add(row[ac], spec)
		}
	}
}

// keyValue renders the group key exactly as the boxed executors would
// have produced it.
func (g *codeGroup) keyValue(info aggCodeInfo, interner *strInterner) value.Value {
	switch {
	case g.null:
		return value.Null
	case g.odd:
		return g.key
	case info.groupKind == value.KindString:
		return value.Value{K: value.KindString, S: interner.vals[g.code]}
	default:
		return value.Value{K: info.groupKind, I: g.code}
	}
}

// finishCodeAgg merges the per-worker folds (plus any zone-answered
// partial accumulators) per key domain — codes, NULL, odd boxed keys —
// and renders rows in first-seen order, matching the sequential
// executors byte for byte.
func finishCodeAgg(folds []*codeFold, zoneAccs []aggAcc, x *AggPlan, info aggCodeInfo, interner *strInterner) []value.Row {
	nAggs := len(x.Aggs)
	mergeInto := func(dst, src *codeGroup) {
		if src.first < dst.first {
			dst.first = src.first
		}
		for i := 0; i < nAggs; i++ {
			dst.accs[i].merge(&src.accs[i])
		}
	}
	if info.groupCol < 0 {
		// Global aggregation always yields one row, even over zero input.
		accs := make([]aggAcc, nAggs)
		for _, f := range folds {
			if f != nil && f.global != nil {
				for i := range accs {
					accs[i].merge(&f.global.accs[i])
				}
			}
		}
		if zoneAccs != nil {
			for i := range accs {
				accs[i].merge(&zoneAccs[i])
			}
		}
		row := make(value.Row, 0, nAggs)
		for i := range x.Aggs {
			row = append(row, accs[i].result(x.Aggs[i]))
		}
		return []value.Row{row}
	}
	codes := map[int64]*codeGroup{}
	odds := map[string]*codeGroup{}
	var nullG *codeGroup
	for _, f := range folds {
		if f == nil {
			continue
		}
		collect := func(g *codeGroup) {
			if m := codes[g.code]; m != nil {
				mergeInto(m, g)
			} else {
				codes[g.code] = g
			}
		}
		for _, g := range f.flat {
			if g != nil {
				collect(g)
			}
		}
		for _, g := range f.overflow {
			collect(g)
		}
		if f.nullG != nil {
			if nullG == nil {
				nullG = f.nullG
			} else {
				mergeInto(nullG, f.nullG)
			}
		}
		for k, g := range f.odd {
			if m := odds[k]; m != nil {
				mergeInto(m, g)
			} else {
				odds[k] = g
			}
		}
	}
	list := make([]*codeGroup, 0, len(codes)+len(odds)+1)
	for _, g := range codes {
		list = append(list, g)
	}
	for _, g := range odds {
		list = append(list, g)
	}
	if nullG != nil {
		list = append(list, nullG)
	}
	sort.Slice(list, func(a, b int) bool { return list[a].first < list[b].first })
	out := make([]value.Row, 0, len(list))
	for _, g := range list {
		row := make(value.Row, 0, 1+nAggs)
		row = append(row, g.keyValue(info, interner))
		for i := range x.Aggs {
			row = append(row, g.accs[i].result(x.Aggs[i]))
		}
		out = append(out, row)
	}
	return out
}

// vecAggScanCode fuses a code-keyed aggregation into the scan morsels:
// every worker folds its morsels into a code-keyed partial table, and
// warm partitions whose zone map exactly describes the snapshot answer
// COUNT/MIN/MAX from the synopsis without faulting a page.
func vecAggScanCode(x *AggPlan, s *ScanPlan, info aggCodeInfo, ctx *execCtx) (vpipe, error) {
	prep, err := prepScan(s, ctx)
	if err != nil {
		return nil, err
	}
	zoneEligible := info.groupCol < 0 && s.Filter == nil
	for i, spec := range x.Aggs {
		switch {
		case spec.Fn == "COUNT" && !spec.Distinct:
		case (spec.Fn == "MIN" || spec.Fn == "MAX") && info.argCols[i] >= 0:
		default:
			zoneEligible = false
		}
	}
	return func(emit func([]value.Row) error) error {
		// The scan child never passes through vecCompile here — its wall
		// time is charged to the fused aggregate while morsel/kernel/row
		// counters still reach the scan node via the scanRun hook.
		if op := ctx.prof.node(s); op != nil {
			op.fused = true
		}
		var zoneAccs []aggAcc
		var zoneAvoided int64
		if zoneEligible {
			zoneAccs = make([]aggAcc, len(x.Aggs))
			prep.zoneAgg = func(snap *columnstore.Snapshot, z *columnstore.ZoneMap) bool {
				rows := snap.NumRows()
				for i, spec := range x.Aggs {
					ac := info.argCols[i]
					switch {
					case spec.Fn == "COUNT" && ac < 0:
						zoneAccs[i].count += int64(rows)
					case spec.Fn == "COUNT":
						zoneAccs[i].count += int64(z.Cols[ac].Count)
					case spec.Fn == "MIN":
						if z.Cols[ac].Count > 0 {
							zoneAccs[i].add(z.Cols[ac].Min, spec)
						}
					case spec.Fn == "MAX":
						if z.Cols[ac].Count > 0 {
							zoneAccs[i].add(z.Cols[ac].Max, spec)
						}
					}
				}
				zoneAvoided += int64(rows) * int64(prep.ncols) * 16
				return true
			}
		}
		run, err := prep.newRun(ctx)
		if err != nil {
			return err
		}
		pool := ctx.getPool()
		interner := newStrInterner()
		folds := make([]*codeFold, pool.workers)
		for w := range folds {
			folds[w] = newCodeFold(x, info, interner, prep.ncols)
		}
		var wg sync.WaitGroup
		wg.Add(len(run.tasks))
		for _, t := range run.tasks {
			t := t
			pool.submit(func(w int) {
				defer wg.Done()
				run.process(t, w, func(sel []int) []value.Row {
					folds[w].foldMorsel(run, t, sel)
					return nil
				})
			})
		}
		wg.Wait()
		var runs, fused, avoided int64
		for _, f := range folds {
			runs += f.runsFolded
			fused += f.batchesFused
			avoided += f.decodeAvoided
		}
		recordLateMat(ctx, run.op, 0, runs, fused, avoided+zoneAvoided)
		return emit(finishCodeAgg(folds, zoneAccs, x, info, interner))
	}, nil
}

// --- code-valued hash join --------------------------------------------------

// vecJoinCode probes a hash join on integer key codes: the build side
// drains boxed (so a one-sided dictionary join qualifies naturally) and
// its keys intern into canonical code space once; probe morsels then
// translate their key column to codes and materialize probe rows only
// where a match (or LEFT OUTER pad) actually produces output.
func vecJoinCode(x *JoinPlan, info joinCodeInfo, ctx *execCtx) (vpipe, error) {
	prep, err := prepScan(info.scan, ctx)
	if err != nil {
		return nil, err
	}
	right, err := vecCompile(x.R, ctx)
	if err != nil {
		return nil, err
	}
	rKey, err := compileExpr(x.EquiR[0], resolverFor(x.R.columns()), ctx.reg)
	if err != nil {
		return nil, err
	}
	var residual evalFn
	if x.Residual != nil {
		if residual, err = compileExpr(x.Residual, resolverFor(x.columns()), ctx.reg); err != nil {
			return nil, err
		}
	}
	rWidth := len(x.R.columns())
	keyKind := info.keyKind

	return func(emit func([]value.Row) error) error {
		// Phase 1: drain the build side boxed, indexing rows by canonical
		// key — interned ids for string keys, raw int64 for integer-kind
		// keys, boxed fallback for any other kind. Build order is
		// preserved per key, so match order equals the sequential join.
		strIDs := map[string]int64{}
		var lists [][]value.Row
		ints := map[int64][]value.Row{}
		odd := map[string][]value.Row{}
		var buildRows int64
		env := Env{Params: ctx.params}
		if err := right(func(rows []value.Row) error {
			for _, row := range rows {
				buildRows++
				env.Row = row
				v := rKey(&env)
				switch {
				case v.IsNull():
					// NULL never matches an equi key.
				case keyKind == value.KindString && v.K == value.KindString:
					id, ok := strIDs[v.S]
					if !ok {
						id = int64(len(lists))
						strIDs[v.S] = id
						lists = append(lists, nil)
					}
					lists[id] = append(lists[id], row)
				case keyKind != value.KindString && v.K == keyKind:
					ints[v.I] = append(ints[v.I], row)
				default:
					k := value.Row{v}.Key()
					odd[k] = append(odd[k], row)
				}
			}
			return nil
		}); err != nil {
			return err
		}
		op := ctx.prof.node(x)
		if op != nil {
			op.buildRows.Store(buildRows)
		}
		if sop := ctx.prof.node(info.scan); sop != nil {
			sop.fused = true
		}

		// lookup translates a probe-side string to its build code without
		// growing the intern space: unseen probe values get no-match.
		lookup := func(s string) int64 {
			if id, ok := strIDs[s]; ok {
				return id
			}
			return nullCode
		}
		matchesBoxed := func(v value.Value) []value.Row {
			switch {
			case v.IsNull():
				return nil
			case keyKind == value.KindString && v.K == value.KindString:
				if id, ok := strIDs[v.S]; ok {
					return lists[id]
				}
				return nil
			case keyKind != value.KindString && v.K == keyKind:
				return ints[v.I]
			default:
				return odd[value.Row{v}.Key()]
			}
		}

		run, err := prep.newRun(ctx)
		if err != nil {
			return err
		}
		keyScratch := make([][]int64, ctx.getPool().workers)
		ncols := prep.ncols

		// Phase 2: probe fused into the scan morsels, emitted in morsel
		// order by the ordered drain.
		probe := func(t *scanTask, w int) []value.Row {
			return run.process(t, w, func(sel []int) []value.Row {
				var out []value.Row
				penv := Env{Params: ctx.params}
				appendMatches := func(lrow value.Row, matches []value.Row) {
					matched := false
					for _, rrow := range matches {
						combined := make(value.Row, 0, len(lrow)+len(rrow))
						combined = append(combined, lrow...)
						combined = append(combined, rrow...)
						if residual != nil {
							penv.Row = combined
							if v := residual(&penv); v.IsNull() || !v.AsBool() {
								continue
							}
						}
						matched = true
						out = append(out, combined)
					}
					if x.LeftOuter && !matched {
						combined := make(value.Row, len(lrow)+rWidth)
						copy(combined, lrow)
						out = append(out, combined)
					}
				}
				materializeAt := func(pos int) value.Row {
					lrow := make(value.Row, len(t.getters))
					for c, g := range t.getters {
						lrow[c] = g(pos)
					}
					return lrow
				}

				if t.main && t.resid == nil {
					mc := t.snap.MainColumn(info.keyCol)
					if keyKind == value.KindString {
						if kc, ok := mc.(columnstore.KeyCoder); ok {
							keys := kc.CodeKeys(sel, lookup, nullCode, keyScratch[w][:0])
							keyScratch[w] = keys
							skipped := 0
							for i, pos := range sel {
								var matches []value.Row
								if id := keys[i]; id >= 0 {
									matches = lists[id]
								}
								if len(matches) == 0 && !x.LeftOuter {
									skipped++
									continue
								}
								appendMatches(materializeAt(pos), matches)
							}
							recordLateMat(ctx, op, int64(len(sel)), 0, 1, int64(skipped)*int64(ncols)*16)
							if op != nil {
								op.probeRows.Add(int64(len(sel)))
							}
							return out
						}
					} else if ia, ok := mc.(columnstore.IntAccessor); ok {
						skipped := 0
						for _, pos := range sel {
							var matches []value.Row
							if !mc.IsNull(pos) {
								matches = ints[ia.Int64(pos)]
							}
							if len(matches) == 0 && !x.LeftOuter {
								skipped++
								continue
							}
							appendMatches(materializeAt(pos), matches)
						}
						recordLateMat(ctx, op, int64(len(sel)), 0, 1, int64(skipped)*int64(ncols)*16)
						if op != nil {
							op.probeRows.Add(int64(len(sel)))
						}
						return out
					}
				}
				// Boxed fallback within the morsel: delta rows, residual
				// filters, or encodings without a code path. The equi key is
				// a bare column reference, so the boxed row carries it.
				rows := run.materialize(t, sel)
				for _, lrow := range rows {
					appendMatches(lrow, matchesBoxed(lrow[info.keyCol]))
				}
				if op != nil {
					op.probeRows.Add(int64(len(rows)))
				}
				return out
			})
		}
		return run.drainWith(probe, emit)
	}, nil
}

// --- fused projection -------------------------------------------------------

// vecProjectScan fuses pure column selection into the scan: surviving
// positions materialize only the projected columns, skipping the
// intermediate full-width batch entirely (full rows are still built when
// a residual predicate needs them).
func vecProjectScan(s *ScanPlan, cols []int, ctx *execCtx) (vpipe, error) {
	prep, err := prepScan(s, ctx)
	if err != nil {
		return nil, err
	}
	distinct := map[int]bool{}
	for _, c := range cols {
		distinct[c] = true
	}
	avoidPerRow := prep.ncols - len(distinct)
	return func(emit func([]value.Row) error) error {
		if op := ctx.prof.node(s); op != nil {
			op.fused = true
		}
		run, err := prep.newRun(ctx)
		if err != nil {
			return err
		}
		return run.drainWith(func(t *scanTask, w int) []value.Row {
			return run.process(t, w, func(sel []int) []value.Row {
				if t.resid != nil {
					rows := run.materialize(t, sel)
					out := make([]value.Row, len(rows))
					for i, row := range rows {
						prow := make(value.Row, len(cols))
						for c, idx := range cols {
							prow[c] = row[idx]
						}
						out[i] = prow
					}
					return out
				}
				out := make([]value.Row, 0, len(sel))
				for _, pos := range sel {
					prow := make(value.Row, len(cols))
					for c, idx := range cols {
						prow[c] = t.getters[idx](pos)
					}
					out = append(out, prow)
				}
				recordLateMat(ctx, run.op, 0, 0, 1, int64(len(sel))*int64(avoidPerRow)*16)
				return out
			})
		}, emit)
	}, nil
}

// recordLateMat flushes late-materialization counters into the query
// stats, the operator profile and the process-wide registry.
func recordLateMat(ctx *execCtx, op *OpProfile, codes, runs, fused, avoided int64) {
	if codes == 0 && runs == 0 && fused == 0 && avoided == 0 {
		return
	}
	ctx.mu.Lock()
	ctx.stats.CodesJoined += int(codes)
	ctx.stats.RunsFolded += int(runs)
	ctx.stats.BatchesFused += int(fused)
	ctx.stats.DecodeBytesAvoided += int(avoided)
	ctx.mu.Unlock()
	if op != nil {
		op.codesJoined.Add(codes)
		op.runsFolded.Add(runs)
		op.batchesFused.Add(fused)
		op.decodeAvoided.Add(avoided)
	}
	cVecCodesJoined.Add(codes)
	cVecRunsFolded.Add(runs)
	cVecBatchesFused.Add(fused)
	cVecDecodeAvoided.Add(avoided)
}
