// Package sqlexec implements the relational query stack of the ecosystem:
// a SQL subset with the paper's extensions, a rule- and cost-based
// optimizer, and two executors over the column store — a Volcano-style
// interpreter and a fused "compiled" executor that specializes pipelines
// into closures, standing in for SAP HANA SOE's SQL→C→LLVM compilation
// (§IV-A, experiment E4).
package sqlexec

import "repro/internal/value"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int
}

// SelectItem is one projection of a SELECT list.
type SelectItem struct {
	Expr Expr
	As   string
	Star bool   // SELECT * or alias.*
	Qual string // alias for alias.*
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinClause is one JOIN ... ON ... in a FROM chain.
type JoinClause struct {
	Left  bool // LEFT OUTER JOIN
	Table TableRef
	On    Expr
}

// TableRef is a named table, a derived table, or a table function.
type TableRef struct {
	Name     string // base table or view name
	Alias    string
	Subquery *SelectStmt // derived table
	Func     *FuncExpr   // TABLE(f(args))
}

// InsertStmt is INSERT INTO ... VALUES / SELECT.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

// UpdateStmt is UPDATE ... SET ... WHERE.
type UpdateStmt struct {
	Table string
	Set   []struct {
		Col  string
		Expr Expr
	}
	Where Expr
}

// DeleteStmt is DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE with optional ecosystem options
// (PARTITION BY RANGE, WITH (...) hints such as stable_key).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Cols        []ColDefAST
	Options     map[string]string
	PartitionBy string // range column, "" when unpartitioned
	Bounds      []int64
}

// ColDefAST is one column definition in CREATE TABLE.
type ColDefAST struct {
	Name string
	Type string
}

// CreateViewStmt is CREATE VIEW name AS select.
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// MergeDeltaStmt is the HANA-style "MERGE DELTA OF t" maintenance command.
type MergeDeltaStmt struct{ Table string }

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateViewStmt) stmt()  {}
func (*DropTableStmt) stmt()   {}
func (*MergeDeltaStmt) stmt()  {}

// Expr is any expression node.
type Expr interface{ expr() }

// Literal is a constant.
type Literal struct{ Val value.Value }

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Qual string // table alias, may be empty
	Name string
}

// Param is a positional ? placeholder.
type Param struct{ Index int }

// BinaryExpr is a binary operator application.
type BinaryExpr struct {
	Op   string // + - * / % = <> < <= > >= AND OR LIKE
	L, R Expr
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string // NOT, -
	E  Expr
}

// FuncExpr is a function call, including aggregates.
type FuncExpr struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

// CaseExpr is CASE WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Whens []struct{ Cond, Then Expr }
	Else  Expr
}

// InExpr is x IN (v1, v2, ...).
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// BetweenExpr is x BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*Literal) expr()     {}
func (*ColRef) expr()      {}
func (*Param) expr()       {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*FuncExpr) expr()    {}
func (*CaseExpr) expr()    {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*IsNullExpr) expr()  {}
