package sqlexec

import "strings"

// String renders the result as an aligned text table (shell, examples).
func (r *Result) String() string {
	if r == nil || len(r.Cols) == 0 {
		return "(no result)\n"
	}
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(r.Cols))
		for ci := range r.Cols {
			s := "NULL"
			if ci < len(row) {
				s = row[ci].AsString()
			}
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(v)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(v)))
		}
		sb.WriteString("\n")
	}
	writeRow(r.Cols)
	seps := make([]string, len(r.Cols))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	writeRow(seps)
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}
