package sqlexec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/value"
)

// colInfo names one output column of a plan node.
type colInfo struct {
	Qual string
	Name string
}

// Plan is a logical/physical query plan node. The same tree is consumed by
// both executors (interpreted and compiled).
type Plan interface {
	columns() []colInfo
}

// ScanPlan reads one logical table: all partitions surviving pruning, with
// an optional pushed-down predicate.
type ScanPlan struct {
	Entry  *catalog.TableEntry
	Alias  string
	Filter Expr                 // conjunction over this table's columns
	Parts  []*catalog.Partition // post-pruning; nil means "all"
	Pruned int                  // partitions eliminated (for stats)
	cols   []colInfo

	// VecEligible/VecResidual split Filter's conjuncts by kernel shape:
	// eligible conjuncts (column <cmp> literal) can run as batch kernels
	// over encoded main columns, the residue needs the row-at-a-time
	// expression evaluator. Filled by the planner (markKernelEligible);
	// VecMarked distinguishes "not analyzed" from "nothing eligible".
	VecMarked   bool
	VecEligible []vecPred
	VecResidual []Expr
}

func (s *ScanPlan) columns() []colInfo { return s.cols }

// TableFuncPlan invokes a registered table function.
type TableFuncPlan struct {
	Name  string
	Args  []Expr
	Alias string
	cols  []colInfo // filled at exec time if empty
}

func (s *TableFuncPlan) columns() []colInfo { return s.cols }

// FilterPlan applies a residual predicate.
type FilterPlan struct {
	Child Plan
	Pred  Expr
}

func (f *FilterPlan) columns() []colInfo { return f.Child.columns() }

// JoinPlan is a hash join. EquiL/EquiR are the equi-key expressions over
// the left/right child rows; Residual is evaluated on the combined row.
type JoinPlan struct {
	L, R      Plan
	LeftOuter bool
	EquiL     []Expr
	EquiR     []Expr
	Residual  Expr
}

func (j *JoinPlan) columns() []colInfo {
	return append(append([]colInfo{}, j.L.columns()...), j.R.columns()...)
}

// ProjectPlan computes the select list.
type ProjectPlan struct {
	Child Plan
	Exprs []Expr
	Names []string
}

func (p *ProjectPlan) columns() []colInfo {
	out := make([]colInfo, len(p.Names))
	for i, n := range p.Names {
		out[i] = colInfo{Name: n}
	}
	return out
}

// aggSpec is one aggregate computation.
type aggSpec struct {
	Fn       string // COUNT SUM AVG MIN MAX
	Arg      Expr   // nil for COUNT(*)
	Star     bool
	Distinct bool
}

// AggPlan groups and aggregates. Output row = group values followed by
// aggregate values.
type AggPlan struct {
	Child   Plan
	GroupBy []Expr
	Aggs    []aggSpec
	outCols []colInfo
}

func (a *AggPlan) columns() []colInfo { return a.outCols }

// DistinctPlan removes duplicate rows.
type DistinctPlan struct{ Child Plan }

func (d *DistinctPlan) columns() []colInfo { return d.Child.columns() }

// SortPlan orders rows by compiled key expressions over its input.
type SortPlan struct {
	Child Plan
	Keys  []OrderItem
}

func (s *SortPlan) columns() []colInfo { return s.Child.columns() }

// LimitPlan truncates the stream.
type LimitPlan struct {
	Child     Plan
	N, Offset int
}

func (l *LimitPlan) columns() []colInfo { return l.Child.columns() }

// AliasPlan renames the qualifier of all child columns (derived tables).
type AliasPlan struct {
	Child Plan
	Alias string
}

func (a *AliasPlan) columns() []colInfo {
	in := a.Child.columns()
	out := make([]colInfo, len(in))
	for i, c := range in {
		out[i] = colInfo{Qual: a.Alias, Name: c.Name}
	}
	return out
}

// PruneHook lets the aging engine (§III) participate in partition pruning
// with semantic rules beyond simple range bounds. It returns the subset of
// parts that must be scanned given the conjuncts.
type PruneHook func(entry *catalog.TableEntry, conjuncts []Expr, parts []*catalog.Partition) []*catalog.Partition

// Planner builds optimized plans against a catalog.
type Planner struct {
	Cat   *catalog.Catalog
	Reg   *Registry
	TS    uint64 // statement snapshot, for size estimates
	Prune PruneHook
	// Sys resolves virtual monitoring views (sys.m_statements, ...);
	// nil-safe — a planner without one sees only base tables.
	Sys *SysCatalog
	// MaxViewDepth caps view expansion recursion.
	MaxViewDepth int
}

// BuildSelect turns a parsed SELECT into an optimized plan.
func (pl *Planner) BuildSelect(s *SelectStmt) (Plan, error) {
	return pl.buildSelect(s, 0)
}

func (pl *Planner) buildSelect(s *SelectStmt, depth int) (Plan, error) {
	if depth > pl.maxDepth() {
		return nil, fmt.Errorf("sql: view/subquery nesting too deep")
	}

	// FROM clause: left-deep join tree.
	var root Plan
	var err error
	if s.From.Name != "" || s.From.Subquery != nil || s.From.Func != nil {
		root, err = pl.buildTableRef(s.From, depth)
		if err != nil {
			return nil, err
		}
		for _, j := range s.Joins {
			right, err := pl.buildTableRef(j.Table, depth)
			if err != nil {
				return nil, err
			}
			root = &JoinPlan{L: root, R: right, LeftOuter: j.Left, Residual: j.On}
		}
	} else {
		root = &ValuesPlan{Rows: [][]Expr{{}}, Names: nil} // SELECT without FROM: one empty row
	}

	// WHERE.
	if s.Where != nil {
		root = &FilterPlan{Child: root, Pred: s.Where}
	}

	// Optimize the relational core before stacking agg/sort.
	root = pl.optimize(root)

	// Aggregation.
	needAgg := len(s.GroupBy) > 0
	for _, it := range s.Items {
		if !it.Star && containsAggregate(it.Expr) {
			needAgg = true
		}
	}
	if s.Having != nil && !needAgg {
		return nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
	}

	var projExprs []Expr
	var projNames []string
	var aggNode *AggPlan

	if needAgg {
		agg := &AggPlan{Child: root, GroupBy: s.GroupBy}
		aggNode = agg
		// Rewrite select items / having / order-by over the agg output:
		// group expressions become ColRef{#g<i>}, aggregates ColRef{#a<i>}.
		rew := &aggRewriter{agg: agg}
		for _, it := range s.Items {
			if it.Star {
				return nil, fmt.Errorf("sql: SELECT * with GROUP BY is not supported")
			}
			e, err := rew.rewrite(it.Expr)
			if err != nil {
				return nil, err
			}
			projExprs = append(projExprs, e)
			projNames = append(projNames, itemName(it))
		}
		if s.Having != nil {
			h, err := rew.rewrite(s.Having)
			if err != nil {
				return nil, err
			}
			agg.buildOutCols()
			root = &FilterPlan{Child: agg, Pred: h}
		} else {
			agg.buildOutCols()
			root = agg
		}
	} else {
		for _, it := range s.Items {
			if it.Star {
				for _, c := range root.columns() {
					if it.Qual != "" && c.Qual != it.Qual {
						continue
					}
					projExprs = append(projExprs, &ColRef{Qual: c.Qual, Name: c.Name})
					projNames = append(projNames, c.Name)
				}
				continue
			}
			projExprs = append(projExprs, it.Expr)
			projNames = append(projNames, itemName(it))
		}
	}

	proj := &ProjectPlan{Child: root, Exprs: projExprs, Names: projNames}
	var out Plan = proj

	if s.Distinct {
		out = &DistinctPlan{Child: out}
	}

	if len(s.OrderBy) > 0 {
		keys := make([]OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			// ORDER BY ordinal (1-based) resolves to the projection; other
			// keys resolve against output aliases first, and fall back to
			// the pre-projection input (ORDER BY o.total with SELECT
			// c.name, o.total).
			if lit, ok := o.Expr.(*Literal); ok && lit.Val.K == value.KindInt {
				idx := int(lit.Val.I)
				if idx < 1 || idx > len(projNames) {
					return nil, fmt.Errorf("sql: ORDER BY position %d out of range", idx)
				}
				keys[i] = OrderItem{Expr: &ColRef{Name: projNames[idx-1]}, Desc: o.Desc}
				continue
			}
			if aggNode != nil {
				if e, err := (&aggRewriter{agg: aggNode}).rewrite(o.Expr); err == nil {
					aggNode.buildOutCols()
					keys[i] = OrderItem{Expr: e, Desc: o.Desc}
					continue
				}
			}
			keys[i] = o
		}
		postOK := true
		for _, k := range keys {
			if !coveredBy(k.Expr, proj.columns()) {
				postOK = false
				break
			}
		}
		switch {
		case postOK:
			out = &SortPlan{Child: out, Keys: keys}
		default:
			preOK := true
			for _, k := range keys {
				if !coveredBy(k.Expr, root.columns()) {
					preOK = false
					break
				}
			}
			if !preOK {
				return nil, fmt.Errorf("sql: ORDER BY key not in output or input columns")
			}
			// Sort below the projection (and below DISTINCT, whose output
			// order is then preserved by the stable operators above).
			proj.Child = &SortPlan{Child: proj.Child, Keys: keys}
		}
	}
	if s.Limit >= 0 {
		out = &LimitPlan{Child: out, N: s.Limit, Offset: s.Offset}
	}
	return out, nil
}

// ValuesPlan emits literal rows (used for FROM-less selects).
type ValuesPlan struct {
	Rows  [][]Expr
	Names []string
}

func (v *ValuesPlan) columns() []colInfo {
	out := make([]colInfo, len(v.Names))
	for i, n := range v.Names {
		out[i] = colInfo{Name: n}
	}
	return out
}

func (pl *Planner) maxDepth() int {
	if pl.MaxViewDepth > 0 {
		return pl.MaxViewDepth
	}
	return 8
}

func (pl *Planner) buildTableRef(ref TableRef, depth int) (Plan, error) {
	switch {
	case ref.Subquery != nil:
		inner, err := pl.buildSelect(ref.Subquery, depth+1)
		if err != nil {
			return nil, err
		}
		return &AliasPlan{Child: inner, Alias: ref.Alias}, nil
	case ref.Func != nil:
		tf, ok := pl.Reg.Table(ref.Func.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table function %s", ref.Func.Name)
		}
		tp := &TableFuncPlan{Name: ref.Func.Name, Args: ref.Func.Args, Alias: ref.Alias}
		for _, c := range tf.Schema {
			tp.cols = append(tp.cols, colInfo{Qual: ref.Alias, Name: c.Name})
		}
		return tp, nil
	default:
		if v, ok := pl.Cat.View(ref.Name); ok {
			st, err := Parse(v.SQL)
			if err != nil {
				return nil, fmt.Errorf("sql: view %q: %w", ref.Name, err)
			}
			sel, ok := st.(*SelectStmt)
			if !ok {
				return nil, fmt.Errorf("sql: view %q is not a SELECT", ref.Name)
			}
			inner, err := pl.buildSelect(sel, depth+1)
			if err != nil {
				return nil, err
			}
			return &AliasPlan{Child: inner, Alias: ref.Alias}, nil
		}
		entry, ok := pl.Cat.Table(ref.Name)
		if !ok {
			if st, sok := pl.Sys.Lookup(ref.Name); sok {
				vp := &VirtualScanPlan{Table: st, Alias: ref.Alias}
				for _, c := range st.Schema {
					vp.cols = append(vp.cols, colInfo{Qual: ref.Alias, Name: c.Name})
				}
				return vp, nil
			}
			return nil, fmt.Errorf("sql: unknown table %q", ref.Name)
		}
		cols := make([]colInfo, len(entry.Schema))
		for i, c := range entry.Schema {
			cols[i] = colInfo{Qual: ref.Alias, Name: c.Name}
		}
		return &ScanPlan{Entry: entry, Alias: ref.Alias, cols: cols}, nil
	}
}

func itemName(it SelectItem) string {
	if it.As != "" {
		return it.As
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Name
	}
	return strings.ToLower(exprString(it.Expr))
}

// --- aggregate rewriting ---------------------------------------------------

// aggRewriter replaces aggregate calls and group-by expressions in a
// select/having expression with references into the AggPlan output row:
// #g<i> for group key i, #a<i> for aggregate i.
type aggRewriter struct {
	agg *AggPlan
}

func (r *aggRewriter) rewrite(e Expr) (Expr, error) {
	// Exact group-by match?
	for i, g := range r.agg.GroupBy {
		if exprString(g) == exprString(e) {
			return &ColRef{Name: fmt.Sprintf("#g%d", i)}, nil
		}
	}
	switch x := e.(type) {
	case *FuncExpr:
		if aggNames[x.Name] {
			idx := r.addAgg(x)
			return &ColRef{Name: fmt.Sprintf("#a%d", idx)}, nil
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := r.rewrite(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &FuncExpr{Name: x.Name, Args: args}, nil
	case *BinaryExpr:
		l, err := r.rewrite(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.rewrite(x.R)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: x.Op, L: l, R: rr}, nil
	case *UnaryExpr:
		inner, err := r.rewrite(x.E)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: x.Op, E: inner}, nil
	case *CaseExpr:
		out := &CaseExpr{}
		for _, w := range x.Whens {
			c, err := r.rewrite(w.Cond)
			if err != nil {
				return nil, err
			}
			t, err := r.rewrite(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, struct{ Cond, Then Expr }{c, t})
		}
		if x.Else != nil {
			e2, err := r.rewrite(x.Else)
			if err != nil {
				return nil, err
			}
			out.Else = e2
		}
		return out, nil
	case *Literal, *Param:
		return e, nil
	case *ColRef:
		return nil, fmt.Errorf("sql: column %q must appear in GROUP BY or inside an aggregate", exprString(x))
	case *IsNullExpr:
		inner, err := r.rewrite(x.E)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{E: inner, Not: x.Not}, nil
	}
	return nil, fmt.Errorf("sql: unsupported expression %T over aggregation", e)
}

func (r *aggRewriter) addAgg(f *FuncExpr) int {
	var arg Expr
	if len(f.Args) == 1 {
		arg = f.Args[0]
	}
	spec := aggSpec{Fn: f.Name, Arg: arg, Star: f.Star, Distinct: f.Distinct}
	// Reuse identical aggregates.
	for i, a := range r.agg.Aggs {
		if a.Fn == spec.Fn && a.Star == spec.Star && a.Distinct == spec.Distinct && exprString(a.Arg) == exprString(spec.Arg) {
			return i
		}
	}
	r.agg.Aggs = append(r.agg.Aggs, spec)
	return len(r.agg.Aggs) - 1
}

func (a *AggPlan) buildOutCols() {
	a.outCols = a.outCols[:0]
	for i := range a.GroupBy {
		a.outCols = append(a.outCols, colInfo{Name: fmt.Sprintf("#g%d", i)})
	}
	for i := range a.Aggs {
		a.outCols = append(a.outCols, colInfo{Name: fmt.Sprintf("#a%d", i)})
	}
}

// --- optimizer ------------------------------------------------------------

// optimize applies predicate pushdown, equi-join extraction, partition
// pruning, and join-side selection.
func (pl *Planner) optimize(p Plan) Plan {
	switch x := p.(type) {
	case *FilterPlan:
		child := pl.optimize(x.Child)
		conjs := splitConjuncts(x.Pred)
		rest := pl.pushConjuncts(child, conjs)
		if len(rest) == 0 {
			return child
		}
		return &FilterPlan{Child: child, Pred: andAll(rest)}
	case *JoinPlan:
		x.L = pl.optimize(x.L)
		x.R = pl.optimize(x.R)
		pl.extractEquiKeys(x)
		pl.chooseBuildSide(x)
		return x
	case *ScanPlan:
		pl.pruneScan(x)
		return x
	case *AliasPlan:
		x.Child = pl.optimize(x.Child)
		return x
	case *AggPlan:
		x.Child = pl.optimize(x.Child)
		return x
	default:
		return p
	}
}

// pushConjuncts tries to sink each conjunct into a scan (or through joins)
// and returns the conjuncts it could not place.
func (pl *Planner) pushConjuncts(p Plan, conjs []Expr) []Expr {
	var rest []Expr
	for _, c := range conjs {
		if !pl.pushOne(p, c) {
			rest = append(rest, c)
		}
	}
	return rest
}

func (pl *Planner) pushOne(p Plan, conj Expr) bool {
	switch x := p.(type) {
	case *ScanPlan:
		if coveredBy(conj, x.columns()) {
			if x.Filter == nil {
				x.Filter = conj
			} else {
				x.Filter = &BinaryExpr{Op: "AND", L: x.Filter, R: conj}
			}
			pl.pruneScan(x)
			return true
		}
	case *JoinPlan:
		// Pushing below a left outer join's right side changes semantics;
		// only push to the left (preserved) side.
		if pl.pushOne(x.L, conj) {
			return true
		}
		if !x.LeftOuter && pl.pushOne(x.R, conj) {
			return true
		}
		// Merging a WHERE conjunct into the ON condition is only valid for
		// inner joins: for LEFT OUTER joins the ON clause decides matching
		// while WHERE filters results, and the two differ for unmatched
		// rows.
		if !x.LeftOuter && coveredBy(conj, x.columns()) {
			if x.Residual == nil {
				x.Residual = conj
			} else {
				x.Residual = &BinaryExpr{Op: "AND", L: x.Residual, R: conj}
			}
			pl.extractEquiKeys(x)
			return true
		}
	case *FilterPlan:
		return pl.pushOne(x.Child, conj)
	}
	return false
}

// coveredBy reports whether every column reference of e resolves within
// the given columns.
func coveredBy(e Expr, cols []colInfo) bool {
	var refs []*ColRef
	collectColRefs(e, &refs)
	for _, r := range refs {
		found := false
		for _, c := range cols {
			if (r.Qual == "" || r.Qual == c.Qual) && r.Name == c.Name {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// extractEquiKeys moves residual conjuncts of the form l.x = r.y into the
// hash-join key lists. Extraction is append-only and idempotent: keys
// already extracted stay; only conjuncts still in Residual are examined
// (predicate pushdown may add residual conjuncts after the first pass).
func (pl *Planner) extractEquiKeys(j *JoinPlan) {
	if j.Residual == nil {
		return
	}
	lcols, rcols := j.L.columns(), j.R.columns()
	var residual []Expr
	for _, c := range splitConjuncts(j.Residual) {
		be, ok := c.(*BinaryExpr)
		if ok && be.Op == "=" {
			switch {
			case coveredBy(be.L, lcols) && coveredBy(be.R, rcols):
				j.EquiL = append(j.EquiL, be.L)
				j.EquiR = append(j.EquiR, be.R)
				continue
			case coveredBy(be.R, lcols) && coveredBy(be.L, rcols):
				j.EquiL = append(j.EquiL, be.R)
				j.EquiR = append(j.EquiR, be.L)
				continue
			}
		}
		residual = append(residual, c)
	}
	j.Residual = andAll(residual)
}

// chooseBuildSide swaps inner-join children so the hash build side (right)
// is the smaller input.
func (pl *Planner) chooseBuildSide(j *JoinPlan) {
	if j.LeftOuter || len(j.EquiL) == 0 {
		return
	}
	if pl.estimate(j.L) < pl.estimate(j.R) {
		j.L, j.R = j.R, j.L
		j.EquiL, j.EquiR = j.EquiR, j.EquiL
	}
}

func (pl *Planner) estimate(p Plan) int {
	switch x := p.(type) {
	case *ScanPlan:
		n := 0
		for _, part := range x.scanParts() {
			n += part.Table.NumRows()
		}
		if x.Filter != nil {
			n /= 3 // crude selectivity guess
		}
		return n
	case *FilterPlan:
		return pl.estimate(x.Child) / 3
	case *JoinPlan:
		l, r := pl.estimate(x.L), pl.estimate(x.R)
		if l > r {
			return l
		}
		return r
	case *AliasPlan:
		return pl.estimate(x.Child)
	case *AggPlan:
		return pl.estimate(x.Child) / 4
	default:
		return 1 << 20
	}
}

// scanParts returns the effective partition list of a scan.
func (s *ScanPlan) scanParts() []*catalog.Partition {
	if s.Parts != nil {
		return s.Parts
	}
	return s.Entry.Partitions
}

// vecPred is one kernel-eligible scan conjunct: <column> <cmp> <literal>.
// The vectorized executor binds it to an encoded-column batch kernel per
// partition; partitions whose physical encoding has no matching kernel
// evaluate Orig through the generic expression path instead.
type vecPred struct {
	Col  int // index into the scan's output columns
	Op   columnstore.CmpOp
	Lit  value.Value
	Orig Expr
}

// cmpOps maps SQL comparison spellings to kernel operators.
var cmpOps = map[string]columnstore.CmpOp{
	"=": columnstore.CmpEQ, "<>": columnstore.CmpNE,
	"<": columnstore.CmpLT, "<=": columnstore.CmpLE,
	">": columnstore.CmpGT, ">=": columnstore.CmpGE,
}

// markKernelEligible classifies the scan's filter conjuncts for the
// vectorized executor. A conjunct qualifies when it compares one of the
// scan's columns against a non-NULL literal with a plain comparison
// operator — the shape every batch kernel understands. Everything else
// (functions, parameters, LIKE, IN, multi-column expressions) lands in
// VecResidual and runs row-at-a-time on the already-thinned selection.
func markKernelEligible(s *ScanPlan) {
	s.VecMarked = true
	s.VecEligible = s.VecEligible[:0]
	s.VecResidual = s.VecResidual[:0]
	if s.Filter == nil {
		return
	}
	for _, conj := range splitConjuncts(s.Filter) {
		if p, ok := classifyVecConjunct(conj, s.cols); ok {
			s.VecEligible = append(s.VecEligible, p)
		} else {
			s.VecResidual = append(s.VecResidual, conj)
		}
	}
}

func classifyVecConjunct(e Expr, cols []colInfo) (vecPred, bool) {
	be, ok := e.(*BinaryExpr)
	if !ok {
		return vecPred{}, false
	}
	op, ok := cmpOps[be.Op]
	if !ok {
		return vecPred{}, false
	}
	cr, lok := be.L.(*ColRef)
	lit, rok := be.R.(*Literal)
	if !lok || !rok {
		// literal <op> column: flip the operand order and the operator.
		cr2, c2 := be.R.(*ColRef)
		lit2, l2 := be.L.(*Literal)
		if !c2 || !l2 {
			return vecPred{}, false
		}
		cr, lit = cr2, lit2
		switch op {
		case columnstore.CmpLT:
			op = columnstore.CmpGT
		case columnstore.CmpLE:
			op = columnstore.CmpGE
		case columnstore.CmpGT:
			op = columnstore.CmpLT
		case columnstore.CmpGE:
			op = columnstore.CmpLE
		}
	}
	if lit.Val.IsNull() {
		return vecPred{}, false // NULL comparisons are never true
	}
	for i, c := range cols {
		if (cr.Qual == "" || cr.Qual == c.Qual) && cr.Name == c.Name {
			return vecPred{Col: i, Op: op, Lit: lit.Val, Orig: e}, true
		}
	}
	return vecPred{}, false
}

// --- compressed-execution eligibility ---------------------------------------
//
// The late-materialization paths (exec_vector_code.go) only engage on plan
// shapes where key translation to canonical int64 codes is exact; anything
// else keeps today's boxed behavior through the per-plan fallback.

// findScanCol resolves a column reference against a scan's output columns
// with exactly the executor resolver's semantics (including the ambiguity
// rule), returning -1 when it does not resolve cleanly.
func findScanCol(cols []colInfo, cr *ColRef) int {
	idx, err := resolverFor(cols)(cr.Qual, cr.Name)
	if err != nil {
		return -1
	}
	return idx
}

// codeKeyKind reports whether a column kind supports canonical int64 key
// coding: strings go through the dictionary remap, integer-payload kinds
// use the raw value. Floats are excluded — their boxed grouping semantics
// are not worth replicating bit-for-bit on a fast path.
func codeKeyKind(k value.Kind) bool {
	switch k {
	case value.KindString, value.KindInt, value.KindBool, value.KindTime:
		return true
	}
	return false
}

// aggCodeInfo is the shape summary of a code-keyed fused aggregation:
// which scan column carries the group key (-1 for global aggregation) and
// which scan column feeds each aggregate (-1 for COUNT(*)).
type aggCodeInfo struct {
	groupCol  int
	groupKind value.Kind
	argCols   []int
}

// aggCodeShape reports whether a fused scan aggregation can key on
// integer codes: at most one GROUP BY expression, which must be a bare
// reference to a non-float scan column, and every aggregate argument a
// bare column reference (or COUNT(*)). Callers have already excluded
// DISTINCT and order-sensitive float sums.
func aggCodeShape(x *AggPlan, s *ScanPlan) (aggCodeInfo, bool) {
	info := aggCodeInfo{groupCol: -1}
	schema := s.Entry.Schema
	switch len(x.GroupBy) {
	case 0:
	case 1:
		cr, ok := x.GroupBy[0].(*ColRef)
		if !ok {
			return info, false
		}
		idx := findScanCol(s.cols, cr)
		if idx < 0 || idx >= len(schema) || !codeKeyKind(schema[idx].Kind) {
			return info, false
		}
		info.groupCol, info.groupKind = idx, schema[idx].Kind
	default:
		return info, false
	}
	for _, a := range x.Aggs {
		if a.Star || a.Arg == nil {
			info.argCols = append(info.argCols, -1)
			continue
		}
		cr, ok := a.Arg.(*ColRef)
		if !ok {
			return info, false
		}
		idx := findScanCol(s.cols, cr)
		if idx < 0 || idx >= len(schema) {
			return info, false
		}
		info.argCols = append(info.argCols, idx)
	}
	return info, true
}

// joinCodeInfo is the shape summary of a code-keyed hash join: the probe
// (left) side is a scan whose single equi key is a bare reference to a
// non-float column.
type joinCodeInfo struct {
	scan    *ScanPlan
	keyCol  int
	keyKind value.Kind
}

// joinCodeShape reports whether a hash join can probe on integer codes.
// Only the probe side needs the shape: the build side drains boxed
// whichever plan it is, so joins where only one side is dict-encoded
// qualify naturally (the build keys are interned into the probe key
// space once, at build time).
func joinCodeShape(x *JoinPlan) (joinCodeInfo, bool) {
	if len(x.EquiL) != 1 {
		return joinCodeInfo{}, false
	}
	s, ok := x.L.(*ScanPlan)
	if !ok {
		return joinCodeInfo{}, false
	}
	cr, ok := x.EquiL[0].(*ColRef)
	if !ok {
		return joinCodeInfo{}, false
	}
	idx := findScanCol(s.cols, cr)
	schema := s.Entry.Schema
	if idx < 0 || idx >= len(schema) || !codeKeyKind(schema[idx].Kind) {
		return joinCodeInfo{}, false
	}
	return joinCodeInfo{scan: s, keyCol: idx, keyKind: schema[idx].Kind}, true
}

// projectScanShape reports whether a projection directly over a scan is
// pure column selection — every output expression a bare column
// reference — so the fused path can materialize only the projected
// columns.
func projectScanShape(x *ProjectPlan) (*ScanPlan, []int, bool) {
	s, ok := x.Child.(*ScanPlan)
	if !ok {
		return nil, nil, false
	}
	cols := make([]int, len(x.Exprs))
	for i, e := range x.Exprs {
		cr, ok := e.(*ColRef)
		if !ok {
			return nil, nil, false
		}
		idx := findScanCol(s.cols, cr)
		if idx < 0 {
			return nil, nil, false
		}
		cols[i] = idx
	}
	return s, cols, true
}

// pruneScan eliminates partitions that cannot contain matching rows, using
// range bounds and the semantic prune hook.
func (pl *Planner) pruneScan(s *ScanPlan) {
	parts := s.Entry.Partitions
	conjs := splitConjuncts(s.Filter)
	if len(parts) > 1 && s.Filter != nil {
		lo, hi := boundsFor(conjs, partPruneCol(parts))
		if !lo.IsNull() || !hi.IsNull() {
			var kept []*catalog.Partition
			for _, p := range parts {
				if p.MayContainRange(lo, hi) {
					kept = append(kept, p)
				}
			}
			parts = kept
		}
	}
	if pl.Prune != nil {
		parts = pl.Prune(s.Entry, conjs, parts)
	}
	if s.Filter != nil {
		parts = zonePrune(s, conjs, parts)
	}
	s.Pruned = len(s.Entry.Partitions) - len(parts)
	s.Parts = parts
	markKernelEligible(s)
}

func partPruneCol(parts []*catalog.Partition) string {
	for _, p := range parts {
		if p.PruneCol != "" {
			return p.PruneCol
		}
	}
	return ""
}

// boundsFor derives [lo, hi] bounds on col from conjuncts of the form
// col <op> literal. NULL means unbounded.
func boundsFor(conjs []Expr, col string) (lo, hi value.Value) {
	if col == "" {
		return value.Null, value.Null
	}
	lo, hi = value.Null, value.Null
	tighterLo := func(v value.Value) {
		if lo.IsNull() || value.Compare(v, lo) > 0 {
			lo = v
		}
	}
	tighterHi := func(v value.Value) {
		if hi.IsNull() || value.Compare(v, hi) < 0 {
			hi = v
		}
	}
	for _, c := range conjs {
		switch x := c.(type) {
		case *BinaryExpr:
			cr, lok := x.L.(*ColRef)
			lit, rok := x.R.(*Literal)
			op := x.Op
			if !lok || !rok {
				// literal <op> col: flip
				if lit2, ok := x.L.(*Literal); ok {
					if cr2, ok := x.R.(*ColRef); ok {
						cr, lit = cr2, lit2
						switch op {
						case "<":
							op = ">"
						case "<=":
							op = ">="
						case ">":
							op = "<"
						case ">=":
							op = "<="
						}
						lok, rok = true, true
					}
				}
			}
			if !lok || !rok || cr.Name != col {
				continue
			}
			switch op {
			case "=":
				tighterLo(lit.Val)
				tighterHi(lit.Val)
			case "<":
				// Strict bounds tighten by one for integer literals.
				if lit.Val.K == value.KindInt {
					tighterHi(value.Int(lit.Val.I - 1))
				} else {
					tighterHi(lit.Val)
				}
			case "<=":
				tighterHi(lit.Val)
			case ">":
				if lit.Val.K == value.KindInt {
					tighterLo(value.Int(lit.Val.I + 1))
				} else {
					tighterLo(lit.Val)
				}
			case ">=":
				tighterLo(lit.Val)
			}
		case *BetweenExpr:
			cr, ok := x.E.(*ColRef)
			if !ok || cr.Name != col || x.Not {
				continue
			}
			if l, ok := x.Lo.(*Literal); ok {
				tighterLo(l.Val)
			}
			if h, ok := x.Hi.(*Literal); ok {
				tighterHi(h.Val)
			}
		}
	}
	return lo, hi
}

// Explain renders a plan tree for debugging and the shell's EXPLAIN.
func Explain(p Plan) string {
	var sb strings.Builder
	explainRec(p, 0, &sb)
	return sb.String()
}

func explainRec(p Plan, depth int, sb *strings.Builder) {
	ind := strings.Repeat("  ", depth)
	switch x := p.(type) {
	case *ScanPlan:
		sb.WriteString(ind + "Scan " + x.Entry.Name)
		if x.Alias != x.Entry.Name {
			sb.WriteString(" AS " + x.Alias)
		}
		sb.WriteString(" [" + strconv.Itoa(len(x.scanParts())) + "/" + strconv.Itoa(len(x.Entry.Partitions)) + " partitions]")
		if x.Filter != nil {
			sb.WriteString(" filter=" + exprString(x.Filter))
		}
		sb.WriteString("\n")
	case *TableFuncPlan:
		sb.WriteString(ind + "TableFunc " + x.Name + "\n")
	case *VirtualScanPlan:
		sb.WriteString(ind + "VirtualScan " + x.Table.Name)
		if x.Alias != x.Table.Name && !strings.HasSuffix(x.Table.Name, "."+x.Alias) {
			sb.WriteString(" AS " + x.Alias)
		}
		sb.WriteString("\n")
	case *FilterPlan:
		sb.WriteString(ind + "Filter " + exprString(x.Pred) + "\n")
		explainRec(x.Child, depth+1, sb)
	case *JoinPlan:
		kind := "HashJoin"
		if len(x.EquiL) == 0 {
			kind = "NestedLoopJoin"
		}
		if x.LeftOuter {
			kind = "Left" + kind
		}
		sb.WriteString(ind + kind)
		for i := range x.EquiL {
			sb.WriteString(" " + exprString(x.EquiL[i]) + "=" + exprString(x.EquiR[i]))
		}
		if x.Residual != nil {
			sb.WriteString(" residual=" + exprString(x.Residual))
		}
		sb.WriteString("\n")
		explainRec(x.L, depth+1, sb)
		explainRec(x.R, depth+1, sb)
	case *ProjectPlan:
		sb.WriteString(ind + "Project " + strings.Join(x.Names, ", ") + "\n")
		explainRec(x.Child, depth+1, sb)
	case *AggPlan:
		sb.WriteString(ind + fmt.Sprintf("Aggregate groups=%d aggs=%d\n", len(x.GroupBy), len(x.Aggs)))
		explainRec(x.Child, depth+1, sb)
	case *DistinctPlan:
		sb.WriteString(ind + "Distinct\n")
		explainRec(x.Child, depth+1, sb)
	case *SortPlan:
		sb.WriteString(ind + "Sort\n")
		explainRec(x.Child, depth+1, sb)
	case *LimitPlan:
		sb.WriteString(ind + fmt.Sprintf("Limit %d offset %d\n", x.N, x.Offset))
		explainRec(x.Child, depth+1, sb)
	case *AliasPlan:
		sb.WriteString(ind + "Alias " + x.Alias + "\n")
		explainRec(x.Child, depth+1, sb)
	case *ValuesPlan:
		sb.WriteString(ind + fmt.Sprintf("Values %d rows\n", len(x.Rows)))
	default:
		sb.WriteString(ind + fmt.Sprintf("%T\n", p))
	}
}

// Resolver builds a colResolver over a plan's output columns.
func resolverFor(cols []colInfo) colResolver {
	return func(qual, name string) (int, error) {
		found := -1
		for i, c := range cols {
			if (qual == "" || qual == c.Qual) && name == c.Name {
				if found >= 0 && qual == "" {
					return 0, fmt.Errorf("sql: ambiguous column %q", name)
				}
				found = i
				if qual != "" {
					return i, nil
				}
			}
		}
		if found < 0 {
			return 0, fmt.Errorf("sql: unknown column %s", joinQual(qual, name))
		}
		return found, nil
	}
}

func joinQual(q, n string) string {
	if q == "" {
		return n
	}
	return q + "." + n
}

var _ = columnstore.Schema{} // keep import for TableFunc signature docs
