package sqlexec

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/columnstore"
	"repro/internal/extstore"
	"repro/internal/value"
)

// This file implements the "compiled" executor: plans are specialized into
// fused closure pipelines before execution, the software analog of SAP
// HANA SOE's SQL→C→LLVM code generation (§IV-A, [11], [12]). Compared to
// the Volcano interpreter it removes (a) the per-tuple iterator interface
// calls, (b) row materialization ahead of filters — predicates run
// directly against typed column accessors — and (c) boxed value
// comparisons on hot integer paths.

// pipe pushes rows into emit until exhausted.
type pipe func(emit func(value.Row) error) error

// errStop terminates a pipeline early (LIMIT).
var errStop = fmt.Errorf("sqlexec: pipeline stop")

// compilePlan specializes a plan node into a pipe, attaching the analyze
// wrapper when the statement is profiled.
func compilePlan(p Plan, ctx *execCtx) (pipe, error) {
	pp, err := compilePlanRaw(p, ctx)
	if err != nil {
		return nil, err
	}
	return ctx.prof.wrapPipe(p, pp), nil
}

func compilePlanRaw(p Plan, ctx *execCtx) (pipe, error) {
	switch x := p.(type) {
	case *ScanPlan:
		return compileScan(x, ctx)
	case *TableFuncPlan:
		it, err := newTableFuncIter(x, ctx)
		if err != nil {
			return nil, err
		}
		return iterToPipe(it), nil
	case *VirtualScanPlan:
		it, err := newVirtualIter(x, ctx)
		if err != nil {
			return nil, err
		}
		return iterToPipe(it), nil
	case *FilterPlan:
		child, err := compilePlan(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		pred, err := compileExpr(x.Pred, resolverFor(x.Child.columns()), ctx.reg)
		if err != nil {
			return nil, err
		}
		params := ctx.params
		return func(emit func(value.Row) error) error {
			env := Env{Params: params}
			return child(func(row value.Row) error {
				env.Row = row
				if v := pred(&env); !v.IsNull() && v.AsBool() {
					return emit(row)
				}
				return nil
			})
		}, nil
	case *ProjectPlan:
		child, err := compilePlan(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		res := resolverFor(x.Child.columns())
		exprs := make([]evalFn, len(x.Exprs))
		for i, e := range x.Exprs {
			f, err := compileExpr(e, res, ctx.reg)
			if err != nil {
				return nil, err
			}
			exprs[i] = f
		}
		params := ctx.params
		return func(emit func(value.Row) error) error {
			env := Env{Params: params}
			return child(func(row value.Row) error {
				env.Row = row
				out := make(value.Row, len(exprs))
				for i, f := range exprs {
					out[i] = f(&env)
				}
				return emit(out)
			})
		}, nil
	case *JoinPlan:
		return compileJoin(x, ctx)
	case *AggPlan:
		return compileAgg(x, ctx)
	case *DistinctPlan:
		child, err := compilePlan(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		return func(emit func(value.Row) error) error {
			seen := map[string]bool{}
			return child(func(row value.Row) error {
				k := row.Key()
				if seen[k] {
					return nil
				}
				seen[k] = true
				return emit(row)
			})
		}, nil
	case *SortPlan:
		child, err := compilePlan(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		res := resolverFor(x.Child.columns())
		keys := make([]evalFn, len(x.Keys))
		descs := make([]bool, len(x.Keys))
		for i, k := range x.Keys {
			f, err := compileExpr(k.Expr, res, ctx.reg)
			if err != nil {
				return nil, err
			}
			keys[i], descs[i] = f, k.Desc
		}
		params := ctx.params
		return func(emit func(value.Row) error) error {
			type keyed struct{ row, k value.Row }
			var all []keyed
			env := Env{Params: params}
			if err := child(func(row value.Row) error {
				env.Row = row
				ks := make(value.Row, len(keys))
				for i, f := range keys {
					ks[i] = f(&env)
				}
				all = append(all, keyed{row, ks})
				return nil
			}); err != nil {
				return err
			}
			sort.SliceStable(all, func(a, b int) bool {
				for i := range keys {
					c := value.Compare(all[a].k[i], all[b].k[i])
					if descs[i] {
						c = -c
					}
					if c != 0 {
						return c < 0
					}
				}
				return false
			})
			for _, kr := range all {
				if err := emit(kr.row); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case *LimitPlan:
		child, err := compilePlan(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		n, off := x.N, x.Offset
		return func(emit func(value.Row) error) error {
			skipped, emitted := 0, 0
			err := child(func(row value.Row) error {
				if skipped < off {
					skipped++
					return nil
				}
				if emitted >= n {
					return errStop
				}
				emitted++
				if err := emit(row); err != nil {
					return err
				}
				if emitted >= n {
					return errStop
				}
				return nil
			})
			if err == errStop {
				return nil
			}
			return err
		}, nil
	case *AliasPlan:
		return compilePlan(x.Child, ctx)
	case *ValuesPlan:
		it, err := newValuesIter(x, ctx)
		if err != nil {
			return nil, err
		}
		return iterToPipe(it), nil
	}
	return nil, fmt.Errorf("sql: no compiler for %T", p)
}

func iterToPipe(it iterator) pipe {
	return func(emit func(value.Row) error) error {
		if err := it.Open(); err != nil {
			return err
		}
		defer it.Close()
		for {
			row, ok, err := it.Next()
			if err != nil || !ok {
				return err
			}
			if err := emit(row); err != nil {
				return err
			}
		}
	}
}

// --- fused scan -------------------------------------------------------------

// colGetter reads one column at a physical row position without boxing
// intermediary rows.
type colGetter func(pos int) value.Value

// compileScan fuses partition iteration, visibility, predicate and row
// materialization into one loop. Predicates of the shape <intCol> <op>
// <literal> compile to raw int64 comparisons over the bit-packed storage.
func compileScan(s *ScanPlan, ctx *execCtx) (pipe, error) {
	parts := s.scanParts()
	ncols := len(s.Entry.Schema)
	pruned := s.Pruned
	filterExpr := s.Filter
	cols := s.columns()
	reg := ctx.reg
	params := ctx.params
	ts := ctx.ts
	stats := ctx.stats
	op := ctx.prof.node(s)

	return func(emit func(value.Row) error) error {
		stats.PartitionsPruned += pruned
		if op != nil {
			op.partsPruned.Add(int64(pruned))
		}
		for _, part := range parts {
			if part.ColdReadPenalty > 0 {
				time.Sleep(time.Duration(part.ColdReadPenalty) * time.Microsecond)
				stats.ColdPenaltyMicros += part.ColdReadPenalty
			}
			faults0, faultNS0 := extstore.FaultCounters()
			snap := part.Table.Snapshot(ts)
			stats.PartitionsScanned++
			if op != nil {
				op.partsScanned.Add(1)
			}
			n := snap.NumRows()

			getters := make([]colGetter, ncols)
			for c := 0; c < ncols; c++ {
				getters[c] = makeGetter(snap, c)
			}

			// Specialized predicate over positions; falls back to the
			// generic expression evaluator over materialized rows.
			fastPred, genericPred, err := compileScanPredicate(filterExpr, snap, cols, reg)
			if err != nil {
				return err
			}

			// Accumulate the row count locally and flush once per
			// partition: a per-row stats write in this loop is measurable
			// against raw int comparisons.
			scanned := 0
			env := Env{Params: params}
			for pos := 0; pos < n; pos++ {
				if !snap.Visible(pos) {
					continue
				}
				scanned++
				if fastPred != nil && !fastPred(pos) {
					continue
				}
				row := make(value.Row, ncols)
				for c := 0; c < ncols; c++ {
					row[c] = getters[c](pos)
				}
				if genericPred != nil {
					env.Row = row
					if v := genericPred(&env); v.IsNull() || !v.AsBool() {
						continue
					}
				}
				if err := emit(row); err != nil {
					stats.RowsScanned += scanned
					if op != nil {
						op.rowsScanned.Add(int64(scanned))
					}
					return err
				}
			}
			stats.RowsScanned += scanned
			if op != nil {
				op.rowsScanned.Add(int64(scanned))
			}
			attributeFaults(stats, op, faults0, faultNS0)
		}
		return nil
	}, nil
}

// attributeFaults charges the page faults that happened since the given
// extstore counter snapshot to the stats block and operator profile.
// Under concurrent queries the per-operator attribution is approximate
// (the process-wide counters stay exact).
func attributeFaults(stats *ExecStats, op *OpProfile, faults0, faultNS0 int64) {
	faults1, faultNS1 := extstore.FaultCounters()
	if faults1 == faults0 {
		return
	}
	stats.PageFaults += int(faults1 - faults0)
	stats.PageFaultMicros += int((faultNS1 - faultNS0) / 1000)
	if op != nil {
		op.pageFaults.Add(faults1 - faults0)
		op.faultNS.Add(faultNS1 - faultNS0)
	}
}

// makeGetter builds a specialized accessor spanning main and delta parts.
func makeGetter(snap *columnstore.Snapshot, col int) colGetter {
	mainRows := snap.MainRows()
	mc := snap.MainColumn(col)
	dc := snap.DeltaColumn(col)
	deltaGet := func(pos int) value.Value {
		d := pos - mainRows
		if dc == nil || d >= dc.Len() {
			return value.Null
		}
		return dc.Get(d)
	}
	if mc == nil {
		return deltaGet
	}
	// Specialize on reader capabilities, not concrete structs: hot and
	// paged warm columns expose the same accessors.
	kind := mc.Kind()
	if m, ok := mc.(columnstore.IntAccessor); ok && kind != value.KindFloat && kind != value.KindString {
		return func(pos int) value.Value {
			if pos < mainRows {
				if mc.IsNull(pos) {
					return value.Null
				}
				return value.Value{K: kind, I: m.Int64(pos)}
			}
			return deltaGet(pos)
		}
	}
	if m, ok := mc.(columnstore.FloatAccessor); ok && kind == value.KindFloat {
		return func(pos int) value.Value {
			if pos < mainRows {
				if mc.IsNull(pos) {
					return value.Null
				}
				return value.Float(m.Float64(pos))
			}
			return deltaGet(pos)
		}
	}
	return func(pos int) value.Value {
		if pos < mainRows {
			return mc.Get(pos)
		}
		return deltaGet(pos)
	}
}

// intReader reads an int64 at a position; ok=false means NULL or
// non-integer storage.
type intReader func(pos int) (int64, bool)

func makeIntReader(snap *columnstore.Snapshot, col int) intReader {
	mainRows := snap.MainRows()
	mc, dc := snap.MainColumn(col), snap.DeltaColumn(col)
	m, mok := mc.(columnstore.IntAccessor)
	if mok {
		switch mc.Kind() {
		case value.KindInt, value.KindTime, value.KindBool:
		default:
			mok = false
		}
	}
	if dc != nil && dc.Kind() != value.KindInt && dc.Kind() != value.KindTime && dc.Kind() != value.KindBool {
		return nil
	}
	if !mok && mc != nil && mc.Len() > 0 {
		return nil // main part not integer-addressable (e.g. RLE): generic path
	}
	return func(pos int) (int64, bool) {
		if pos < mainRows {
			if !mok || mc.IsNull(pos) {
				return 0, false
			}
			return m.Int64(pos), true
		}
		d := pos - mainRows
		if dc == nil || d >= dc.Len() || dc.IsNull(d) {
			return 0, false
		}
		return dc.Int64(d), true
	}
}

// compileScanPredicate splits the pushed filter into position-specialized
// conjuncts (int comparisons, dictionary equality) and a generic residue.
func compileScanPredicate(filter Expr, snap *columnstore.Snapshot, cols []colInfo, reg *Registry) (func(pos int) bool, evalFn, error) {
	if filter == nil {
		return nil, nil, nil
	}
	var fastParts []func(pos int) bool
	var rest []Expr
	for _, conj := range splitConjuncts(filter) {
		if f := tryFastConjunct(conj, snap, cols); f != nil {
			fastParts = append(fastParts, f)
			continue
		}
		rest = append(rest, conj)
	}
	var fast func(pos int) bool
	if len(fastParts) > 0 {
		fast = func(pos int) bool {
			for _, f := range fastParts {
				if !f(pos) {
					return false
				}
			}
			return true
		}
	}
	var generic evalFn
	if len(rest) > 0 {
		f, err := compileExpr(andAll(rest), resolverFor(cols), reg)
		if err != nil {
			return nil, nil, err
		}
		generic = f
	}
	return fast, generic, nil
}

// tryFastConjunct specializes col <op> literal over integer storage and
// col = 'string' over dictionary storage. Returns nil when not applicable.
func tryFastConjunct(e Expr, snap *columnstore.Snapshot, cols []colInfo) func(pos int) bool {
	be, ok := e.(*BinaryExpr)
	if !ok {
		return nil
	}
	cr, lok := be.L.(*ColRef)
	lit, rok := be.R.(*Literal)
	op := be.Op
	if !lok || !rok {
		if cr2, ok := be.R.(*ColRef); ok {
			if lit2, ok := be.L.(*Literal); ok {
				cr, lit = cr2, lit2
				switch op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
			} else {
				return nil
			}
		} else {
			return nil
		}
	}
	col := -1
	for i, c := range cols {
		if (cr.Qual == "" || cr.Qual == c.Qual) && cr.Name == c.Name {
			col = i
			break
		}
	}
	if col < 0 {
		return nil
	}

	// Integer comparison fast path.
	if lit.Val.K == value.KindInt || lit.Val.K == value.KindTime || lit.Val.K == value.KindBool {
		rd := makeIntReader(snap, col)
		if rd == nil {
			return nil
		}
		k := lit.Val.I
		switch op {
		case "=":
			return func(pos int) bool { v, ok := rd(pos); return ok && v == k }
		case "<>":
			return func(pos int) bool { v, ok := rd(pos); return ok && v != k }
		case "<":
			return func(pos int) bool { v, ok := rd(pos); return ok && v < k }
		case "<=":
			return func(pos int) bool { v, ok := rd(pos); return ok && v <= k }
		case ">":
			return func(pos int) bool { v, ok := rd(pos); return ok && v > k }
		case ">=":
			return func(pos int) bool { v, ok := rd(pos); return ok && v >= k }
		}
		return nil
	}

	// Dictionary equality fast path: compare value IDs in main storage.
	// Requires a table-wide dictionary (DictIndexed); paged warm columns
	// use per-chunk dictionaries and take the generic path instead.
	if lit.Val.K == value.KindString && op == "=" {
		mc, ok := snap.MainColumn(col).(columnstore.DictIndexed)
		if !ok {
			return nil
		}
		mainRows := snap.MainRows()
		dc := snap.DeltaColumn(col)
		id, found := mc.LookupID(lit.Val.S)
		want := lit.Val.S
		return func(pos int) bool {
			if pos < mainRows {
				return found && !mc.IsNull(pos) && mc.IDAt(pos) == id
			}
			d := pos - mainRows
			if dc == nil || d >= dc.Len() || dc.IsNull(d) {
				return false
			}
			return dc.Get(d).S == want
		}
	}
	return nil
}

// --- fused join and aggregation -------------------------------------------

func compileJoin(p *JoinPlan, ctx *execCtx) (pipe, error) {
	left, err := compilePlan(p.L, ctx)
	if err != nil {
		return nil, err
	}
	right, err := compilePlan(p.R, ctx)
	if err != nil {
		return nil, err
	}
	lres, rres := resolverFor(p.L.columns()), resolverFor(p.R.columns())
	var lKeys, rKeys []evalFn
	for i := range p.EquiL {
		lf, err := compileExpr(p.EquiL[i], lres, ctx.reg)
		if err != nil {
			return nil, err
		}
		rf, err := compileExpr(p.EquiR[i], rres, ctx.reg)
		if err != nil {
			return nil, err
		}
		lKeys, rKeys = append(lKeys, lf), append(rKeys, rf)
	}
	var residual evalFn
	if p.Residual != nil {
		f, err := compileExpr(p.Residual, resolverFor(p.columns()), ctx.reg)
		if err != nil {
			return nil, err
		}
		residual = f
	}
	rWidth := len(p.R.columns())
	leftOuter := p.LeftOuter
	params := ctx.params

	return func(emit func(value.Row) error) error {
		// Build.
		var build map[string][]value.Row
		var rRows []value.Row
		env := Env{Params: params}
		if len(rKeys) > 0 {
			build = make(map[string][]value.Row)
			key := make(value.Row, len(rKeys))
			if err := right(func(row value.Row) error {
				env.Row = row
				for i, f := range rKeys {
					key[i] = f(&env)
				}
				k := key.Key()
				build[k] = append(build[k], row)
				return nil
			}); err != nil {
				return err
			}
		} else {
			if err := right(func(row value.Row) error {
				rRows = append(rRows, row)
				return nil
			}); err != nil {
				return err
			}
		}
		// Probe.
		return left(func(lrow value.Row) error {
			var matches []value.Row
			if build != nil {
				env.Row = lrow
				key := make(value.Row, len(lKeys))
				hasNull := false
				for i, f := range lKeys {
					key[i] = f(&env)
					if key[i].IsNull() {
						hasNull = true
					}
				}
				if !hasNull {
					matches = build[key.Key()]
				}
			} else {
				matches = rRows
			}
			matched := false
			for _, rrow := range matches {
				combined := make(value.Row, 0, len(lrow)+len(rrow))
				combined = append(combined, lrow...)
				combined = append(combined, rrow...)
				if residual != nil {
					env.Row = combined
					if v := residual(&env); v.IsNull() || !v.AsBool() {
						continue
					}
				}
				matched = true
				if err := emit(combined); err != nil {
					return err
				}
			}
			if leftOuter && !matched {
				combined := make(value.Row, len(lrow)+rWidth)
				copy(combined, lrow)
				return emit(combined)
			}
			return nil
		})
	}, nil
}

func compileAgg(p *AggPlan, ctx *execCtx) (pipe, error) {
	child, err := compilePlan(p.Child, ctx)
	if err != nil {
		return nil, err
	}
	res := resolverFor(p.Child.columns())
	groups := make([]evalFn, len(p.GroupBy))
	for i, g := range p.GroupBy {
		f, err := compileExpr(g, res, ctx.reg)
		if err != nil {
			return nil, err
		}
		groups[i] = f
	}
	specs := p.Aggs
	args := make([]evalFn, len(specs))
	for i, a := range specs {
		if a.Arg != nil {
			f, err := compileExpr(a.Arg, res, ctx.reg)
			if err != nil {
				return nil, err
			}
			args[i] = f
		}
	}
	params := ctx.params

	return func(emit func(value.Row) error) error {
		type group struct {
			key  value.Row
			accs []aggAcc
		}
		table := map[string]*group{}
		var order []string
		env := Env{Params: params}
		if err := child(func(row value.Row) error {
			env.Row = row
			key := make(value.Row, len(groups))
			for i, f := range groups {
				key[i] = f(&env)
			}
			k := key.Key()
			g := table[k]
			if g == nil {
				g = &group{key: key, accs: make([]aggAcc, len(specs))}
				table[k] = g
				order = append(order, k)
			}
			for i := range specs {
				var v value.Value
				if args[i] != nil {
					v = args[i](&env)
				}
				g.accs[i].add(v, specs[i])
			}
			return nil
		}); err != nil {
			return err
		}
		if len(order) == 0 && len(groups) == 0 {
			g := &group{accs: make([]aggAcc, len(specs))}
			table[""] = g
			order = append(order, "")
		}
		for _, k := range order {
			g := table[k]
			row := make(value.Row, 0, len(g.key)+len(specs))
			row = append(row, g.key...)
			for i := range specs {
				row = append(row, g.accs[i].result(specs[i]))
			}
			if err := emit(row); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
