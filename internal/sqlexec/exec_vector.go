package sqlexec

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/extstore"
	"repro/internal/value"
)

// This file implements the vectorized executor: plans run as batch
// pipelines over encoded column data instead of row-at-a-time iterators.
// Scans split into ~16k-row morsels dispatched to a per-query worker pool
// (morsel-driven parallelism); pushed-down conjuncts of kernel shape
// evaluate directly against the compressed main representations —
// dictionary ID intervals, frame-of-reference packed integers, whole RLE
// runs — producing selection vectors, and only surviving positions
// materialize boxed rows. Aggregation over a scan folds worker-local
// partial tables merged at the end; hash-join builds partition across
// workers. Output is kept byte-identical to the sequential executors:
// scan batches emit in morsel order and merged aggregate groups sort by
// first-seen input position.

// errNoVector signals a plan shape the batch operators don't cover
// (table functions, VALUES, joins without equi keys); Run falls back to
// the row-at-a-time executors.
var errNoVector = errors.New("sqlexec: plan not vectorizable")

// vpipe pushes row batches into emit until exhausted.
type vpipe func(emit func(rows []value.Row) error) error

// runVectorized attempts the statement on the vectorized executor.
// handled=false with a nil error means the plan isn't covered and the
// caller should fall back; a non-nil error is a real execution failure.
func runVectorized(p Plan, ctx *execCtx, res *Result) (bool, error) {
	vp, err := vecCompile(p, ctx)
	if err != nil {
		return false, nil
	}
	defer func() {
		if ctx.pool != nil {
			ctx.pool.close()
			ctx.pool = nil
		}
	}()
	if err := vp(func(rows []value.Row) error {
		res.Rows = append(res.Rows, rows...)
		return nil
	}); err != nil {
		return false, err
	}
	cVecQueries.Inc()
	return true, nil
}

// vecCompile builds the batch pipeline for a plan node, attaching the
// analyze wrapper when the statement is profiled.
func vecCompile(p Plan, ctx *execCtx) (vpipe, error) {
	vp, err := vecCompileRaw(p, ctx)
	if err != nil {
		return nil, err
	}
	return ctx.prof.wrapVPipe(p, vp), nil
}

func vecCompileRaw(p Plan, ctx *execCtx) (vpipe, error) {
	switch x := p.(type) {
	case *ScanPlan:
		return vecScan(x, ctx)
	case *VirtualScanPlan:
		return vecVirtual(x, ctx)
	case *FilterPlan:
		return vecFilter(x, ctx)
	case *ProjectPlan:
		return vecProject(x, ctx)
	case *AggPlan:
		return vecAgg(x, ctx)
	case *JoinPlan:
		return vecJoin(x, ctx)
	case *DistinctPlan:
		child, err := vecCompile(x.Child, ctx)
		if err != nil {
			return nil, err
		}
		return func(emit func([]value.Row) error) error {
			seen := map[string]bool{}
			return child(func(rows []value.Row) error {
				out := rows[:0]
				for _, row := range rows {
					k := row.Key()
					if seen[k] {
						continue
					}
					seen[k] = true
					out = append(out, row)
				}
				if len(out) == 0 {
					return nil
				}
				return emit(out)
			})
		}, nil
	case *SortPlan:
		return vecSort(x, ctx)
	case *LimitPlan:
		return vecLimit(x, ctx)
	case *AliasPlan:
		return vecCompile(x.Child, ctx)
	}
	return nil, errNoVector
}

// --- morsel-parallel scan ---------------------------------------------------

// kernelFn evaluates one bound conjunct over main rows [lo, hi), appending
// matching positions to sel.
type kernelFn func(lo, hi int, sel []int) []int

// scanPrep is the compile-time part of a vectorized scan: validation that
// every expression the scan may need compiles, done before the executor
// commits to the vector path.
type scanPrep struct {
	plan  *ScanPlan
	cols  []colInfo
	ncols int

	// zoneAgg, when set by a fused aggregate, is offered each warm
	// partition whose zone map exactly describes the snapshot (same
	// physical rows, no merge since demotion, every row visible, no
	// filter, no cold stall). Returning true answers the partition from
	// the synopsis and skips its morsels entirely.
	zoneAgg func(snap *columnstore.Snapshot, z *columnstore.ZoneMap) bool
}

func prepScan(s *ScanPlan, ctx *execCtx) (*scanPrep, error) {
	if !s.VecMarked {
		markKernelEligible(s)
	}
	if s.Filter != nil {
		if _, err := compileExpr(s.Filter, resolverFor(s.columns()), ctx.reg); err != nil {
			return nil, err
		}
	}
	return &scanPrep{plan: s, cols: s.columns(), ncols: len(s.Entry.Schema)}, nil
}

// scanTask is one morsel: rows [lo, hi) of one partition snapshot. Main
// morsels carry bound kernels plus a compiled residual; delta morsels
// evaluate the full filter generically (delta storage is unencoded).
// Each task runs on exactly one worker, so its compiled resid needs no
// synchronization.
type scanTask struct {
	seq     int
	snap    *columnstore.Snapshot
	lo, hi  int
	kernels []kernelFn
	resid   evalFn
	getters []colGetter
	cold    int  // µs cold-read stall, charged by the partition's first morsel
	main    bool // rows [lo, hi) lie in encoded main storage (capabilities apply)
}

type scanScratch struct{ selA, selB []int }

// scanRun is one execution of a prepared scan: the morsel list plus
// per-worker scratch selection vectors.
type scanRun struct {
	ctx     *execCtx
	tasks   []*scanTask
	scratch []scanScratch
	stop    atomic.Bool
	op      *OpProfile // scan operator's analyze counters; may be nil
}

// newRun snapshots the partitions, binds kernels against each partition's
// physical encodings, and slices the row space into morsels. Partition
// accounting (scanned/pruned, empty-partition cold stalls) matches the
// row executors exactly.
func (p *scanPrep) newRun(ctx *execCtx) (*scanRun, error) {
	s := p.plan
	r := &scanRun{ctx: ctx, scratch: make([]scanScratch, ctx.getPool().workers), op: ctx.prof.node(s)}
	res := resolverFor(p.cols)
	ctx.mu.Lock()
	ctx.stats.PartitionsPruned += s.Pruned
	ctx.mu.Unlock()
	if r.op != nil {
		r.op.partsPruned.Add(int64(s.Pruned))
	}
	for _, part := range s.scanParts() {
		cold := part.ColdReadPenalty
		snap := part.Table.Snapshot(ctx.ts)
		ctx.mu.Lock()
		ctx.stats.PartitionsScanned++
		ctx.mu.Unlock()
		if r.op != nil {
			r.op.partsScanned.Add(1)
		}
		rows := snap.NumRows()
		if rows == 0 {
			// The row executors stall on the cold read before discovering
			// the partition is empty; keep the accounting identical.
			if cold > 0 {
				time.Sleep(time.Duration(cold) * time.Microsecond)
				ctx.mu.Lock()
				ctx.stats.ColdPenaltyMicros += cold
				ctx.mu.Unlock()
			}
			continue
		}
		if p.zoneAgg != nil && cold == 0 && s.Filter == nil &&
			part.Tier == catalog.TierExtended && part.Zone != nil &&
			part.Zone.Rows == rows && part.Zone.Merges == part.Table.MergeCount() &&
			snap.NumRows() == snap.MainRows() && snap.AllVisible() {
			// Zone-map fast path: the synopsis covers exactly this
			// snapshot's rows and every one of them is visible, so
			// COUNT/MIN/MAX answer from resident metadata without
			// faulting a single page.
			if p.zoneAgg(snap, part.Zone) {
				continue
			}
		}
		mainRows := snap.MainRows()
		var kernels []kernelFn
		generic := append([]Expr(nil), s.VecResidual...)
		if mainRows > 0 {
			hits, falls := 0, 0
			for _, vp := range s.VecEligible {
				if k := bindKernel(snap, vp); k != nil {
					kernels = append(kernels, k)
					hits++
				} else {
					generic = append(generic, vp.Orig)
					falls++
				}
			}
			cVecKernelHits.Add(int64(hits))
			cVecKernelFallbacks.Add(int64(falls))
			ctx.mu.Lock()
			ctx.stats.KernelHits += hits
			ctx.stats.KernelFallbacks += falls
			ctx.mu.Unlock()
			if r.op != nil {
				r.op.kernelHits.Add(int64(hits))
				r.op.kernelFallbacks.Add(int64(falls))
			}
		} else {
			// All rows live in the delta; kernels never apply.
			for _, vp := range s.VecEligible {
				generic = append(generic, vp.Orig)
			}
		}
		mainResid := andAll(generic)
		getters := make([]colGetter, p.ncols)
		for c := range getters {
			getters[c] = makeGetter(snap, c)
		}
		addTask := func(lo, hi int, ks []kernelFn, filter Expr, main bool) error {
			var resid evalFn
			if filter != nil {
				f, err := compileExpr(filter, res, ctx.reg)
				if err != nil {
					return err
				}
				resid = f
			}
			r.tasks = append(r.tasks, &scanTask{
				seq: len(r.tasks), snap: snap, lo: lo, hi: hi,
				kernels: ks, resid: resid, getters: getters, cold: cold, main: main,
			})
			cold = 0
			return nil
		}
		// Morsels never straddle the main/delta boundary: main morsels run
		// kernels over the encoded columns, delta morsels the full filter.
		for lo := 0; lo < mainRows; lo += morselRows {
			if err := addTask(lo, min(lo+morselRows, mainRows), kernels, mainResid, true); err != nil {
				return nil, err
			}
		}
		for lo := mainRows; lo < rows; lo += morselRows {
			if err := addTask(lo, min(lo+morselRows, rows), nil, s.Filter, false); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// process runs one morsel's selection phase on worker w — cold stall,
// visibility sweep, kernel intersection — and hands the surviving
// positions to consume, bracketing the whole morsel with the scan's
// stats, profiling and page-fault attribution. consume must not retain
// sel past the call: it is worker scratch.
func (r *scanRun) process(t *scanTask, w int, consume func(sel []int) []value.Row) []value.Row {
	if r.stop.Load() {
		return nil
	}
	if r.op != nil {
		t0 := time.Now()
		defer func() { r.op.busyNS.Add(time.Since(t0).Nanoseconds()) }()
	}
	ctx := r.ctx
	if t.cold > 0 {
		time.Sleep(time.Duration(t.cold) * time.Microsecond)
		ctx.mu.Lock()
		ctx.stats.ColdPenaltyMicros += t.cold
		ctx.mu.Unlock()
	}
	faults0, faultNS0 := extstore.FaultCounters()
	scr := &r.scratch[w]
	sel := t.snap.VisibleRange(t.lo, t.hi, scr.selA[:0])
	visible := len(sel)
	for _, k := range t.kernels {
		if len(sel) == 0 {
			break
		}
		scr.selB = k(t.lo, t.hi, scr.selB[:0])
		sel = intersectInto(sel, scr.selB)
	}
	var out []value.Row
	if len(sel) > 0 {
		out = consume(sel)
	}
	scr.selA = sel[:0]
	ctx.mu.Lock()
	ctx.stats.RowsScanned += visible
	ctx.stats.Morsels++
	attributeFaults(ctx.stats, r.op, faults0, faultNS0)
	ctx.mu.Unlock()
	if r.op != nil {
		r.op.rowsScanned.Add(int64(visible))
		r.op.morsels.Add(1)
	}
	cVecMorsels.Inc()
	return out
}

// materialize boxes the surviving positions into full rows, applying the
// morsel's residual predicate.
func (r *scanRun) materialize(t *scanTask, sel []int) []value.Row {
	var out []value.Row
	env := Env{Params: r.ctx.params}
	for _, pos := range sel {
		row := make(value.Row, len(t.getters))
		for c, g := range t.getters {
			row[c] = g(pos)
		}
		if t.resid != nil {
			env.Row = row
			if v := t.resid(&env); v.IsNull() || !v.AsBool() {
				continue
			}
		}
		out = append(out, row)
	}
	return out
}

// runMorsel executes one morsel on worker w: visibility sweep, kernel
// intersection, then row materialization with the generic residual.
func (r *scanRun) runMorsel(t *scanTask, w int) []value.Row {
	return r.process(t, w, func(sel []int) []value.Row { return r.materialize(t, sel) })
}

// drain runs every morsel on the pool and emits surviving batches in
// morsel order — vectorized output stays byte-identical to sequential.
// Each morsel owns a buffered channel, so workers complete out of order
// without blocking while the drain loop consumes in sequence.
func (r *scanRun) drain(emit func([]value.Row) error) error {
	return r.drainWith(r.runMorsel, emit)
}

// drainWith is drain with a custom per-morsel function — the fused
// operators (code-valued join probe, fused projection) substitute their
// own consumers while keeping the ordered hand-off.
func (r *scanRun) drainWith(fn func(t *scanTask, w int) []value.Row, emit func([]value.Row) error) error {
	if len(r.tasks) == 0 {
		return nil
	}
	pool := r.ctx.getPool()
	chans := make([]chan []value.Row, len(r.tasks))
	for i := range chans {
		chans[i] = make(chan []value.Row, 1)
	}
	go func() {
		for i, t := range r.tasks {
			i, t := i, t
			pool.submit(func(w int) { chans[i] <- fn(t, w) })
		}
	}()
	var emitErr error
	for _, ch := range chans {
		rows := <-ch
		if emitErr != nil || len(rows) == 0 {
			continue
		}
		if err := emit(rows); err != nil {
			// Remaining morsels see the stop flag and return immediately
			// (LIMIT early exit); keep draining so no goroutine leaks.
			emitErr = err
			r.stop.Store(true)
		}
	}
	return emitErr
}

func vecScan(s *ScanPlan, ctx *execCtx) (vpipe, error) {
	prep, err := prepScan(s, ctx)
	if err != nil {
		return nil, err
	}
	return func(emit func([]value.Row) error) error {
		run, err := prep.newRun(ctx)
		if err != nil {
			return err
		}
		return run.drain(emit)
	}, nil
}

// bindKernel resolves one eligible conjunct against a partition's main
// encoding. The kind restrictions mirror value.Compare exactly: the
// integer kernel compares raw int64 only when column and literal agree on
// kind, the float kernel coerces integer literals the way Compare does,
// the dictionary kernel binds string literals, and the RLE kernel calls
// Compare itself once per run so any literal kind is safe. A nil return
// sends the conjunct to the generic expression path for this partition.
func bindKernel(snap *columnstore.Snapshot, p vecPred) kernelFn {
	mc := snap.MainColumn(p.Col)
	if mc == nil {
		return nil
	}
	// Capability interfaces instead of concrete structs: hot columns and
	// paged warm columns bind the same kernels.
	if c, ok := mc.(columnstore.IntFilterer); ok {
		if p.Lit.K == mc.Kind() && p.Lit.K != value.KindFloat {
			k := p.Lit.I
			return func(lo, hi int, sel []int) []int {
				return c.FilterInts(lo, hi, p.Op, k, sel)
			}
		}
		return nil
	}
	if c, ok := mc.(columnstore.FloatFilterer); ok {
		var k float64
		switch p.Lit.K {
		case value.KindFloat:
			k = p.Lit.F
		case value.KindInt:
			k = float64(p.Lit.I)
		default:
			return nil
		}
		return func(lo, hi int, sel []int) []int {
			return c.FilterFloats(lo, hi, p.Op, k, sel)
		}
	}
	if c, ok := mc.(columnstore.StringFilterer); ok {
		if p.Lit.K == value.KindString {
			return func(lo, hi int, sel []int) []int {
				return c.FilterString(lo, hi, p.Op, p.Lit.S, sel)
			}
		}
		return nil
	}
	if c, ok := mc.(columnstore.ValueFilterer); ok {
		return func(lo, hi int, sel []int) []int {
			return c.FilterValues(lo, hi, p.Op, p.Lit, sel)
		}
	}
	return nil
}

// intersectInto keeps the elements of a that also appear in b (both
// strictly ascending), writing the result into a's prefix.
func intersectInto(a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// --- batch filter / project -------------------------------------------------

func vecFilter(x *FilterPlan, ctx *execCtx) (vpipe, error) {
	child, err := vecCompile(x.Child, ctx)
	if err != nil {
		return nil, err
	}
	pred, err := compileExpr(x.Pred, resolverFor(x.Child.columns()), ctx.reg)
	if err != nil {
		return nil, err
	}
	return func(emit func([]value.Row) error) error {
		env := Env{Params: ctx.params}
		return child(func(rows []value.Row) error {
			out := rows[:0]
			for _, row := range rows {
				env.Row = row
				if v := pred(&env); !v.IsNull() && v.AsBool() {
					out = append(out, row)
				}
			}
			if len(out) == 0 {
				return nil
			}
			return emit(out)
		})
	}, nil
}

func vecProject(x *ProjectPlan, ctx *execCtx) (vpipe, error) {
	if s, cols, ok := projectScanShape(x); ok {
		return vecProjectScan(s, cols, ctx)
	}
	child, err := vecCompile(x.Child, ctx)
	if err != nil {
		return nil, err
	}
	res := resolverFor(x.Child.columns())
	exprs := make([]evalFn, len(x.Exprs))
	for i, e := range x.Exprs {
		f, err := compileExpr(e, res, ctx.reg)
		if err != nil {
			return nil, err
		}
		exprs[i] = f
	}
	return func(emit func([]value.Row) error) error {
		env := Env{Params: ctx.params}
		return child(func(rows []value.Row) error {
			out := make([]value.Row, len(rows))
			for i, row := range rows {
				env.Row = row
				prow := make(value.Row, len(exprs))
				for c, f := range exprs {
					prow[c] = f(&env)
				}
				out[i] = prow
			}
			return emit(out)
		})
	}, nil
}

// --- parallel partial aggregation -------------------------------------------

// vecAggFold is one worker-local partial aggregation table. Groups track
// the global rank of their first input row so merged output reproduces
// the sequential first-seen group order.
type vecAggFold struct {
	groups []evalFn
	args   []evalFn
	specs  []aggSpec
	table  map[string]*vecGroup
	env    Env
}

type vecGroup struct {
	key   value.Row
	accs  []aggAcc
	first int64
}

func newAggFold(p *AggPlan, res colResolver, ctx *execCtx) (*vecAggFold, error) {
	f := &vecAggFold{specs: p.Aggs, table: map[string]*vecGroup{}, env: Env{Params: ctx.params}}
	for _, g := range p.GroupBy {
		fn, err := compileExpr(g, res, ctx.reg)
		if err != nil {
			return nil, err
		}
		f.groups = append(f.groups, fn)
	}
	for _, a := range p.Aggs {
		var fn evalFn
		if a.Arg != nil {
			var err error
			fn, err = compileExpr(a.Arg, res, ctx.reg)
			if err != nil {
				return nil, err
			}
		}
		f.args = append(f.args, fn)
	}
	return f, nil
}

func (f *vecAggFold) add(row value.Row, rank int64) {
	f.env.Row = row
	key := make(value.Row, len(f.groups))
	for i, fn := range f.groups {
		key[i] = fn(&f.env)
	}
	k := key.Key()
	g := f.table[k]
	if g == nil {
		g = &vecGroup{key: key, accs: make([]aggAcc, len(f.specs)), first: rank}
		f.table[k] = g
	}
	for i := range f.specs {
		var v value.Value
		if f.args[i] != nil {
			v = f.args[i](&f.env)
		}
		g.accs[i].add(v, f.specs[i])
	}
}

// merge folds another accumulator for the same aggregate into a. Only
// non-DISTINCT state merges: per-worker seen-sets cannot be reconciled
// with the partial sums they already filtered, which is why DISTINCT
// aggregation stays sequential.
func (a *aggAcc) merge(b *aggAcc) {
	a.count += b.count
	a.sumI += b.sumI
	a.sumF += b.sumF
	a.isFloat = a.isFloat || b.isFloat
	if !b.min.IsNull() && (a.min.IsNull() || value.Compare(b.min, a.min) < 0) {
		a.min = b.min
	}
	if !b.max.IsNull() && (a.max.IsNull() || value.Compare(b.max, a.max) > 0) {
		a.max = b.max
	}
}

// finishAgg merges the partial tables and renders output rows in
// first-seen group order, matching the sequential executors.
func finishAgg(folds []*vecAggFold, p *AggPlan) []value.Row {
	merged := map[string]*vecGroup{}
	for _, f := range folds {
		if f == nil {
			continue
		}
		for k, g := range f.table {
			m := merged[k]
			if m == nil {
				merged[k] = g
				continue
			}
			if g.first < m.first {
				m.first = g.first
			}
			for i := range p.Aggs {
				m.accs[i].merge(&g.accs[i])
			}
		}
	}
	if len(merged) == 0 && len(p.GroupBy) == 0 {
		merged[""] = &vecGroup{accs: make([]aggAcc, len(p.Aggs))}
	}
	list := make([]*vecGroup, 0, len(merged))
	for _, g := range merged {
		list = append(list, g)
	}
	sort.Slice(list, func(a, b int) bool { return list[a].first < list[b].first })
	out := make([]value.Row, 0, len(list))
	for _, g := range list {
		row := make(value.Row, 0, len(g.key)+len(p.Aggs))
		row = append(row, g.key...)
		for i := range p.Aggs {
			row = append(row, g.accs[i].result(p.Aggs[i]))
		}
		out = append(out, row)
	}
	return out
}

// aggFloatOrderSensitive reports whether any aggregate of x accumulates
// a floating-point sum over s, whose value depends on addition order.
// Such plans must not take the fused per-worker fold: morsel→worker
// assignment is scheduler-dependent, so the float addends would group
// differently run to run and the output would no longer be byte-identical
// to the sequential executors. They use the ordered general path instead
// (parallel scan, sequential fold in morsel order). SUM/AVG over a plain
// integer column — and COUNT/MIN/MAX over anything — are exact under any
// grouping and keep the fused path.
func aggFloatOrderSensitive(x *AggPlan, s *ScanPlan) bool {
	schema := s.Entry.Schema
	for _, a := range x.Aggs {
		if a.Fn != "SUM" && a.Fn != "AVG" {
			continue
		}
		cr, ok := a.Arg.(*ColRef)
		if !ok {
			return true // computed argument: kind unknown statically
		}
		idx := -1
		for i, c := range s.cols {
			if c.Name == cr.Name && (cr.Qual == "" || cr.Qual == c.Qual) {
				idx = i
				break
			}
		}
		if idx < 0 || idx >= len(schema) || schema[idx].Kind != value.KindInt {
			return true
		}
	}
	return false
}

func vecAgg(x *AggPlan, ctx *execCtx) (vpipe, error) {
	res := resolverFor(x.Child.columns())
	if _, err := newAggFold(x, res, ctx); err != nil {
		return nil, err
	}
	hasDistinct := false
	for _, a := range x.Aggs {
		if a.Distinct {
			hasDistinct = true
		}
	}
	if s, ok := x.Child.(*ScanPlan); ok && !hasDistinct && !aggFloatOrderSensitive(x, s) {
		if info, ok := aggCodeShape(x, s); ok {
			return vecAggScanCode(x, s, info, ctx)
		}
		return vecAggScan(x, s, res, ctx)
	}
	// General case: sequential fold over the child's ordered batches (the
	// child still scans in parallel underneath).
	child, err := vecCompile(x.Child, ctx)
	if err != nil {
		return nil, err
	}
	return func(emit func([]value.Row) error) error {
		f, err := newAggFold(x, res, ctx)
		if err != nil {
			return err
		}
		rank := int64(0)
		if err := child(func(rows []value.Row) error {
			for _, row := range rows {
				f.add(row, rank)
				rank++
			}
			return nil
		}); err != nil {
			return err
		}
		return emit(finishAgg([]*vecAggFold{f}, x))
	}, nil
}

// vecAggScan fuses aggregation into the scan's morsel tasks: each worker
// folds the morsels it runs into its own partial table, and the partials
// merge once at the end. No ordered hand-off is needed, so morsels with
// cold-read stalls overlap freely across workers. Only order-insensitive
// accumulators may come here (see aggFloatOrderSensitive): which worker
// ran which morsel is scheduler-dependent, so a float sum folded this
// way would drift by association — integer sums, counts and min/max are
// exact under any grouping.
func vecAggScan(x *AggPlan, s *ScanPlan, res colResolver, ctx *execCtx) (vpipe, error) {
	prep, err := prepScan(s, ctx)
	if err != nil {
		return nil, err
	}
	return func(emit func([]value.Row) error) error {
		// The scan child never passes through vecCompile here — its wall
		// time is charged to the fused aggregate, while morsel/kernel/row
		// counters still reach the scan node via the scanRun hook. Marked
		// at run time so an aborted vectorized compile leaves no stale
		// flag for the fallback executor.
		if op := ctx.prof.node(s); op != nil {
			op.fused = true
		}
		run, err := prep.newRun(ctx)
		if err != nil {
			return err
		}
		pool := ctx.getPool()
		folds := make([]*vecAggFold, pool.workers)
		for w := range folds {
			if folds[w], err = newAggFold(x, res, ctx); err != nil {
				return err
			}
		}
		var wg sync.WaitGroup
		wg.Add(len(run.tasks))
		for _, t := range run.tasks {
			t := t
			pool.submit(func(w int) {
				defer wg.Done()
				rows := run.runMorsel(t, w)
				if len(rows) == 0 {
					return
				}
				f := folds[w]
				// Rank = morsel sequence number × morsel capacity + offset:
				// globally unique and ordered like the sequential row stream.
				base := int64(t.seq) << 20
				for i, row := range rows {
					f.add(row, base+int64(i))
				}
			})
		}
		wg.Wait()
		return emit(finishAgg(folds, x))
	}, nil
}

// --- parallel partitioned hash join ----------------------------------------

func vecJoin(x *JoinPlan, ctx *execCtx) (vpipe, error) {
	if len(x.EquiL) == 0 {
		return nil, errNoVector // nested-loop joins stay row-at-a-time
	}
	if info, ok := joinCodeShape(x); ok {
		return vecJoinCode(x, info, ctx)
	}
	left, err := vecCompile(x.L, ctx)
	if err != nil {
		return nil, err
	}
	right, err := vecCompile(x.R, ctx)
	if err != nil {
		return nil, err
	}
	lres, rres := resolverFor(x.L.columns()), resolverFor(x.R.columns())
	var lKeys, rKeys []evalFn
	for i := range x.EquiL {
		lf, err := compileExpr(x.EquiL[i], lres, ctx.reg)
		if err != nil {
			return nil, err
		}
		rf, err := compileExpr(x.EquiR[i], rres, ctx.reg)
		if err != nil {
			return nil, err
		}
		lKeys, rKeys = append(lKeys, lf), append(rKeys, rf)
	}
	var residual evalFn
	if x.Residual != nil {
		if residual, err = compileExpr(x.Residual, resolverFor(x.columns()), ctx.reg); err != nil {
			return nil, err
		}
	}
	rWidth := len(x.R.columns())

	return func(emit func([]value.Row) error) error {
		pool := ctx.getPool()
		nPart := pool.workers
		type keyedRow struct {
			k   string
			row value.Row
		}
		// Phase 1: drain the build side, bucketing rows by key hash.
		buckets := make([][]keyedRow, nPart)
		env := Env{Params: ctx.params}
		key := make(value.Row, len(rKeys))
		if err := right(func(rows []value.Row) error {
			for _, row := range rows {
				env.Row = row
				for i, f := range rKeys {
					key[i] = f(&env)
				}
				k := key.Key()
				b := int(fnv32a(k) % uint32(nPart))
				buckets[b] = append(buckets[b], keyedRow{k, row})
			}
			return nil
		}); err != nil {
			return err
		}
		// Phase 2: build the per-bucket hash tables in parallel.
		maps := make([]map[string][]value.Row, nPart)
		var wg sync.WaitGroup
		for b := 0; b < nPart; b++ {
			if len(buckets[b]) == 0 {
				continue
			}
			b := b
			wg.Add(1)
			pool.submit(func(int) {
				defer wg.Done()
				m := make(map[string][]value.Row, len(buckets[b]))
				for _, kr := range buckets[b] {
					m[kr.k] = append(m[kr.k], kr.row)
				}
				maps[b] = m
			})
		}
		wg.Wait()
		// Phase 3: probe with the left side's ordered batches.
		return left(func(rows []value.Row) error {
			var out []value.Row
			for _, lrow := range rows {
				env.Row = lrow
				lkey := make(value.Row, len(lKeys))
				hasNull := false
				for i, f := range lKeys {
					lkey[i] = f(&env)
					if lkey[i].IsNull() {
						hasNull = true
					}
				}
				var matches []value.Row
				if !hasNull {
					k := lkey.Key()
					matches = maps[int(fnv32a(k)%uint32(nPart))][k]
				}
				matched := false
				for _, rrow := range matches {
					combined := make(value.Row, 0, len(lrow)+len(rrow))
					combined = append(combined, lrow...)
					combined = append(combined, rrow...)
					if residual != nil {
						env.Row = combined
						if v := residual(&env); v.IsNull() || !v.AsBool() {
							continue
						}
					}
					matched = true
					out = append(out, combined)
				}
				if x.LeftOuter && !matched {
					combined := make(value.Row, len(lrow)+rWidth)
					copy(combined, lrow)
					out = append(out, combined)
				}
			}
			if len(out) == 0 {
				return nil
			}
			return emit(out)
		})
	}, nil
}

func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// --- sort / limit -----------------------------------------------------------

func vecSort(x *SortPlan, ctx *execCtx) (vpipe, error) {
	child, err := vecCompile(x.Child, ctx)
	if err != nil {
		return nil, err
	}
	res := resolverFor(x.Child.columns())
	keys := make([]evalFn, len(x.Keys))
	descs := make([]bool, len(x.Keys))
	for i, k := range x.Keys {
		f, err := compileExpr(k.Expr, res, ctx.reg)
		if err != nil {
			return nil, err
		}
		keys[i], descs[i] = f, k.Desc
	}
	return func(emit func([]value.Row) error) error {
		type keyed struct{ row, k value.Row }
		var all []keyed
		env := Env{Params: ctx.params}
		if err := child(func(rows []value.Row) error {
			for _, row := range rows {
				env.Row = row
				ks := make(value.Row, len(keys))
				for i, f := range keys {
					ks[i] = f(&env)
				}
				all = append(all, keyed{row, ks})
			}
			return nil
		}); err != nil {
			return err
		}
		sort.SliceStable(all, func(a, b int) bool {
			for i := range keys {
				c := value.Compare(all[a].k[i], all[b].k[i])
				if descs[i] {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		if len(all) == 0 {
			return nil
		}
		out := make([]value.Row, len(all))
		for i, kr := range all {
			out[i] = kr.row
		}
		return emit(out)
	}, nil
}

func vecLimit(x *LimitPlan, ctx *execCtx) (vpipe, error) {
	child, err := vecCompile(x.Child, ctx)
	if err != nil {
		return nil, err
	}
	return func(emit func([]value.Row) error) error {
		skipped, emitted := 0, 0
		err := child(func(rows []value.Row) error {
			out := rows
			if skipped < x.Offset {
				drop := min(x.Offset-skipped, len(out))
				skipped += drop
				out = out[drop:]
			}
			if emitted+len(out) > x.N {
				out = out[:x.N-emitted]
			}
			if len(out) > 0 {
				emitted += len(out)
				if err := emit(out); err != nil {
					return err
				}
			}
			if emitted >= x.N {
				return errStop
			}
			return nil
		})
		if err == errStop {
			return nil
		}
		return err
	}, nil
}
