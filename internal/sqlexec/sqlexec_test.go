package sqlexec

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// newTestEngine builds an engine with a small ERP-style dataset.
func newTestEngine(t testing.TB) *Engine {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE customers (id INT, name VARCHAR, country VARCHAR, credit DOUBLE)`)
	mustExec(t, e, `CREATE TABLE orders (id INT, cust_id INT, status VARCHAR, total DOUBLE, yr INT)`)
	for i := 0; i < 10; i++ {
		mustExec(t, e, fmt.Sprintf(
			`INSERT INTO customers VALUES (%d, 'cust%02d', '%s', %f)`,
			i, i, []string{"DE", "US", "KR"}[i%3], float64(i)*100))
	}
	statuses := []string{"OPEN", "PAID", "SHIPPED"}
	for i := 0; i < 30; i++ {
		mustExec(t, e, fmt.Sprintf(
			`INSERT INTO orders VALUES (%d, %d, '%s', %f, %d)`,
			i, i%10, statuses[i%3], float64(i)*2.5, 2013+i%3))
	}
	return e
}

func mustExec(t testing.TB, e *Engine, sql string, params ...value.Value) *Result {
	t.Helper()
	r, err := e.Query(sql, params...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return r
}

// bothModes runs the query under all three executors and checks they
// agree (compiled as the baseline, interpreted and vectorized against it).
func bothModes(t *testing.T, e *Engine, sql string, params ...value.Value) *Result {
	t.Helper()
	e.Mode = ModeCompiled
	rc := mustExec(t, e, sql, params...)
	normalize := func(rows []value.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.Key()
		}
		return out
	}
	a := normalize(rc.Rows)
	for _, m := range []struct {
		name string
		mode Mode
	}{{"interpreted", ModeInterpreted}, {"vectorized", ModeVectorized}} {
		e.Mode = m.mode
		ro := mustExec(t, e, sql, params...)
		if len(rc.Rows) != len(ro.Rows) {
			t.Fatalf("%s: compiled %d rows, %s %d rows", sql, len(rc.Rows), m.name, len(ro.Rows))
		}
		b := normalize(ro.Rows)
		// Order-insensitive comparison unless the query has ORDER BY.
		if !strings.Contains(strings.ToUpper(sql), "ORDER BY") {
			am := map[string]int{}
			for _, k := range a {
				am[k]++
			}
			for _, k := range b {
				am[k]--
			}
			for _, c := range am {
				if c != 0 {
					t.Fatalf("%s: compiled and %s executors disagree", sql, m.name)
				}
			}
		} else if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: compiled and %s executors disagree on ordered output", sql, m.name)
		}
	}
	e.Mode = ModeCompiled
	return rc
}

func TestParserRejectsGarbage(t *testing.T) {
	for _, sql := range []string{
		"", "SELEC 1", "SELECT", "SELECT * FROM", "INSERT INTO", "SELECT 1 FROM t WHERE",
		"SELECT 'unterminated", "CREATE TABLE t", "SELECT 1 2",
	} {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("%q must not parse", sql)
		}
	}
}

func TestParserAcceptsDialect(t *testing.T) {
	for _, sql := range []string{
		"SELECT 1",
		"SELECT a, b AS x FROM t WHERE a > 1 AND b LIKE 'x%' ORDER BY x DESC LIMIT 3 OFFSET 1",
		"SELECT COUNT(*), SUM(a) FROM t GROUP BY b HAVING COUNT(*) > 2",
		"SELECT * FROM t1 JOIN t2 ON t1.a = t2.b LEFT JOIN t3 ON t2.c = t3.d",
		"SELECT a FROM (SELECT a FROM t) sub",
		"SELECT * FROM TABLE(shortest_path('g', 1, 2)) p",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = a + 1 WHERE b IN (1, 2, 3)",
		"DELETE FROM t WHERE a BETWEEN 1 AND 5",
		"CREATE TABLE t (a INT, b VARCHAR) WITH (flexible = 'true')",
		"CREATE TABLE p (a INT) PARTITION BY RANGE(a) VALUES (10, 20)",
		"CREATE VIEW v AS SELECT a FROM t",
		"DROP TABLE IF EXISTS t",
		"MERGE DELTA OF t",
		"SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
		"SELECT a FROM t WHERE b IS NOT NULL AND c NOT IN (1,2)",
		"SELECT -3 + 4 * 2",
		"SELECT a || '-' || b FROM t",
	} {
		if _, err := Parse(sql); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
	}
}

func TestSelectBasics(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT id, name FROM customers WHERE country = 'DE' ORDER BY id`)
	if len(r.Rows) != 4 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	if r.Rows[0][1].S != "cust00" {
		t.Fatalf("first=%v", r.Rows[0])
	}
	if !reflect.DeepEqual(r.Cols, []string{"id", "name"}) {
		t.Fatalf("cols=%v", r.Cols)
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT UPPER(name), credit * 2 + 1 FROM customers WHERE id = 3`)
	if r.Rows[0][0].S != "CUST03" || r.Rows[0][1].F != 601 {
		t.Fatalf("row=%v", r.Rows[0])
	}
	r = bothModes(t, e, `SELECT ABS(-5), LENGTH('abc'), COALESCE(NULL, 7)`)
	if r.Rows[0][0].I != 5 || r.Rows[0][1].I != 3 || r.Rows[0][2].I != 7 {
		t.Fatalf("row=%v", r.Rows[0])
	}
}

func TestWherePredicates(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		sql  string
		want int
	}{
		{`SELECT id FROM orders WHERE status = 'OPEN'`, 10},
		{`SELECT id FROM orders WHERE status <> 'OPEN'`, 20},
		{`SELECT id FROM orders WHERE id < 5`, 5},
		{`SELECT id FROM orders WHERE id BETWEEN 5 AND 9`, 5},
		{`SELECT id FROM orders WHERE id IN (1, 3, 5)`, 3},
		{`SELECT id FROM orders WHERE status LIKE 'S%'`, 10},
		{`SELECT id FROM orders WHERE id >= 28 OR id = 0`, 3},
		{`SELECT id FROM orders WHERE NOT (id < 29)`, 1},
		{`SELECT id FROM orders WHERE total > 10 AND yr = 2014`, 8},
		{`SELECT id FROM orders WHERE id IS NULL`, 0},
	}
	for _, c := range cases {
		r := bothModes(t, e, c.sql)
		if len(r.Rows) != c.want {
			t.Fatalf("%s: rows=%d want %d", c.sql, len(r.Rows), c.want)
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT status, COUNT(*), SUM(total), AVG(total), MIN(id), MAX(id) FROM orders GROUP BY status ORDER BY status`)
	if len(r.Rows) != 3 {
		t.Fatalf("groups=%d", len(r.Rows))
	}
	// OPEN group: ids 0,3,...,27 → count 10, min 0, max 27.
	open := r.Rows[0]
	if open[0].S != "OPEN" || open[1].I != 10 || open[4].I != 0 || open[5].I != 27 {
		t.Fatalf("open=%v", open)
	}
	var sum float64
	for i := 0; i < 30; i += 3 {
		sum += float64(i) * 2.5
	}
	if open[2].F != sum {
		t.Fatalf("sum=%v want %v", open[2], sum)
	}
	if open[3].F != sum/10 {
		t.Fatalf("avg=%v", open[3])
	}
}

func TestAggregateWithoutGroupBy(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT COUNT(*), SUM(credit) / COUNT(*) FROM customers`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 10 {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestHaving(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT yr, COUNT(*) AS n FROM orders GROUP BY yr HAVING COUNT(*) >= 10 ORDER BY yr`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	r = bothModes(t, e, `SELECT yr FROM orders GROUP BY yr HAVING SUM(total) > 400 ORDER BY yr`)
	if len(r.Rows) == 3 {
		t.Fatal("having filter had no effect")
	}
}

func TestJoins(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT c.name, o.total FROM customers c JOIN orders o ON c.id = o.cust_id WHERE o.status = 'PAID' ORDER BY o.total DESC LIMIT 3`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	if r.Rows[0][1].F < r.Rows[1][1].F {
		t.Fatal("order broken")
	}
	// Aggregate over join.
	r = bothModes(t, e, `SELECT c.country, SUM(o.total) FROM customers c JOIN orders o ON c.id = o.cust_id GROUP BY c.country ORDER BY c.country`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
}

func TestLeftJoinPreservesUnmatched(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `INSERT INTO customers VALUES (99, 'lonely', 'FR', 0)`)
	r := bothModes(t, e, `SELECT c.id, o.id FROM customers c LEFT JOIN orders o ON c.id = o.cust_id WHERE c.id = 99`)
	if len(r.Rows) != 1 || !r.Rows[0][1].IsNull() {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestSelfJoinAliases(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT a.id, b.id FROM customers a JOIN customers b ON a.id = b.id WHERE a.id < 3`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
}

func TestDistinctAndSubquery(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT DISTINCT status FROM orders`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	r = bothModes(t, e, `SELECT s.status, s.n FROM (SELECT status, COUNT(*) AS n FROM orders GROUP BY status) s WHERE s.n = 10 ORDER BY s.status`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
}

func TestViews(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `CREATE VIEW open_orders AS SELECT id, cust_id, total FROM orders WHERE status = 'OPEN'`)
	r := bothModes(t, e, `SELECT COUNT(*) FROM open_orders`)
	if r.Rows[0][0].I != 10 {
		t.Fatalf("view count=%v", r.Rows[0][0])
	}
	r = bothModes(t, e, `SELECT c.name, v.total FROM open_orders v JOIN customers c ON c.id = v.cust_id WHERE v.total > 50 ORDER BY v.total`)
	if len(r.Rows) == 0 {
		t.Fatal("join over view empty")
	}
}

func TestOrderByOrdinalAndCase(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT name, CASE WHEN credit > 500 THEN 'gold' ELSE 'basic' END AS tier FROM customers ORDER BY 2, 1`)
	if r.Rows[0][1].S != "basic" {
		t.Fatalf("rows=%v", r.Rows[0])
	}
	last := r.Rows[len(r.Rows)-1]
	if last[1].S != "gold" {
		t.Fatalf("last=%v", last)
	}
}

func TestParams(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT id FROM orders WHERE status = ? AND total > ?`, value.String("PAID"), value.Float(30))
	for _, row := range r.Rows {
		if row[0].I%3 != 1 {
			t.Fatalf("wrong status row %v", row)
		}
	}
}

func TestDollarParams(t *testing.T) {
	e := newTestEngine(t)
	// $N is explicit and 1-based; the same parameter may repeat.
	r := bothModes(t, e, `SELECT id FROM orders WHERE status = $1 AND total > $2 AND total > $2 - 1`,
		value.String("PAID"), value.Float(30))
	want := bothModes(t, e, `SELECT id FROM orders WHERE status = ? AND total > ? AND total > ? - 1`,
		value.String("PAID"), value.Float(30), value.Float(30))
	if len(r.Rows) == 0 || len(r.Rows) != len(want.Rows) {
		t.Fatalf("$N rows=%d, ? rows=%d", len(r.Rows), len(want.Rows))
	}
	// Out-of-order references bind by index, not arrival.
	r = bothModes(t, e, `SELECT COUNT(*) FROM orders WHERE total > $2 AND status = $1`,
		value.String("PAID"), value.Float(30))
	if r.Rows[0][0].I == 0 {
		t.Fatal("out-of-order $N bound nothing")
	}
	// Missing bindings and malformed references are errors.
	if _, err := e.Query(`SELECT id FROM orders WHERE total > $3`, value.Float(1)); err == nil {
		t.Fatal("want error for unbound $3")
	}
	if _, err := e.Query(`SELECT id FROM orders WHERE total > $0`); err == nil {
		t.Fatal("want error for $0")
	}
	if _, err := e.Query(`SELECT id FROM orders WHERE total > $`); err == nil {
		t.Fatal("want error for bare $")
	}
}

func TestInsertSelectUpdateDelete(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `CREATE TABLE archive (id INT, total DOUBLE)`)
	r := mustExec(t, e, `INSERT INTO archive SELECT id, total FROM orders WHERE yr = 2013`)
	if r.Rows[0][0].I != 10 {
		t.Fatalf("inserted=%v", r.Rows[0][0])
	}
	r = mustExec(t, e, `UPDATE archive SET total = total * 10 WHERE id < 10`)
	upd := r.Rows[0][0].I
	if upd == 0 {
		t.Fatal("no rows updated")
	}
	r = bothModes(t, e, `SELECT SUM(total) FROM archive WHERE id < 10`)
	want := 0.0
	for i := 0; i < 30; i += 3 {
		if i < 10 {
			want += float64(i) * 2.5 * 10
		}
	}
	if r.Rows[0][0].F != want {
		t.Fatalf("sum=%v want %v", r.Rows[0][0], want)
	}
	r = mustExec(t, e, `DELETE FROM archive WHERE id >= 10`)
	mustExec(t, e, `DELETE FROM archive WHERE id < 0`) // no-op
	r = bothModes(t, e, `SELECT COUNT(*) FROM archive`)
	if r.Rows[0][0].I != int64(upd) {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
}

func TestExplicitTransactionRollback(t *testing.T) {
	e := newTestEngine(t)
	s := e.NewSession()
	defer s.Close()
	if _, err := s.Query("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(`INSERT INTO customers VALUES (50, 'temp', 'XX', 0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	r := mustExec(t, e, `SELECT COUNT(*) FROM customers WHERE id = 50`)
	if r.Rows[0][0].I != 0 {
		t.Fatal("rollback leaked")
	}
}

func TestExplicitTransactionCommit(t *testing.T) {
	e := newTestEngine(t)
	s := e.NewSession()
	defer s.Close()
	s.Query("BEGIN")
	s.Query(`INSERT INTO customers VALUES (51, 'kept', 'XX', 0)`)
	// Not visible to other sessions before commit.
	r := mustExec(t, e, `SELECT COUNT(*) FROM customers WHERE id = 51`)
	if r.Rows[0][0].I != 0 {
		t.Fatal("uncommitted row visible")
	}
	if _, err := s.Query("COMMIT"); err != nil {
		t.Fatal(err)
	}
	r = mustExec(t, e, `SELECT COUNT(*) FROM customers WHERE id = 51`)
	if r.Rows[0][0].I != 1 {
		t.Fatal("committed row missing")
	}
}

func TestMergeDeltaStatement(t *testing.T) {
	e := newTestEngine(t)
	entry, _ := e.Cat.Table("orders")
	if entry.Primary().MainRows() != 0 {
		t.Fatal("precondition")
	}
	mustExec(t, e, `MERGE DELTA OF orders`)
	if entry.Primary().MainRows() != 30 {
		t.Fatalf("main rows=%d", entry.Primary().MainRows())
	}
	// Queries keep working after merge.
	r := bothModes(t, e, `SELECT COUNT(*) FROM orders WHERE status = 'OPEN'`)
	if r.Rows[0][0].I != 10 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
}

func TestRangePartitionedTableAndPruning(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `CREATE TABLE events (id INT, yr INT) PARTITION BY RANGE(yr) VALUES (2014, 2015)`)
	for i := 0; i < 30; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO events VALUES (%d, %d)`, i, 2013+i%3))
	}
	r := bothModes(t, e, `SELECT COUNT(*) FROM events WHERE yr = 2014`)
	if r.Rows[0][0].I != 10 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
	if r.Stats.PartitionsScanned != 1 || r.Stats.PartitionsPruned != 2 {
		t.Fatalf("stats=%+v (pruning broken)", r.Stats)
	}
	// Range query across two partitions.
	r = bothModes(t, e, `SELECT COUNT(*) FROM events WHERE yr >= 2014`)
	if r.Rows[0][0].I != 20 || r.Stats.PartitionsScanned != 2 {
		t.Fatalf("count=%v stats=%+v", r.Rows[0][0], r.Stats)
	}
	// Unfiltered query scans all partitions.
	r = bothModes(t, e, `SELECT COUNT(*) FROM events`)
	if r.Rows[0][0].I != 30 || r.Stats.PartitionsScanned != 3 {
		t.Fatalf("stats=%+v", r.Stats)
	}
}

func TestFlexibleTableImplicitColumns(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE things (id INT) WITH (flexible = 'true')`)
	mustExec(t, e, `INSERT INTO things (id) VALUES (1)`)
	// Unknown column appears via DML, not DDL (§II-H).
	mustExec(t, e, `INSERT INTO things (id, color) VALUES (2, 'red')`)
	r := bothModes(t, e, `SELECT id, color FROM things ORDER BY id`)
	if !r.Rows[0][1].IsNull() || r.Rows[1][1].S != "red" {
		t.Fatalf("rows=%v", r.Rows)
	}
	// Non-flexible tables reject unknown columns.
	mustExec(t, e, `CREATE TABLE rigid (id INT)`)
	if _, err := e.Query(`INSERT INTO rigid (id, nope) VALUES (1, 2)`); err == nil {
		t.Fatal("rigid table accepted unknown column")
	}
}

func TestTableFunction(t *testing.T) {
	e := newTestEngine(t)
	e.Reg.RegisterTable("fib", columnstoreSchema("n INT, v INT"), func(args []value.Value) ([]value.Row, error) {
		n := int(args[0].AsInt())
		out := make([]value.Row, n)
		a, b := int64(0), int64(1)
		for i := 0; i < n; i++ {
			out[i] = value.Row{value.Int(int64(i)), value.Int(a)}
			a, b = b, a+b
		}
		return out, nil
	})
	r := bothModes(t, e, `SELECT f.v FROM TABLE(fib(7)) f WHERE f.v > 1 ORDER BY f.v`)
	if len(r.Rows) != 4 || r.Rows[3][0].I != 8 {
		t.Fatalf("rows=%v", r.Rows)
	}
	// Join a table function with a real table.
	r = bothModes(t, e, `SELECT c.name FROM TABLE(fib(20)) f JOIN customers c ON c.id = f.v WHERE c.id < 9`)
	if len(r.Rows) == 0 {
		t.Fatal("join with table function empty")
	}
}

func TestScalarFunctionRegistration(t *testing.T) {
	e := newTestEngine(t)
	e.Reg.RegisterScalar("TWICE", func(a []value.Value) (value.Value, error) {
		return value.Mul(a[0], value.Int(2)), nil
	})
	r := bothModes(t, e, `SELECT TWICE(id) FROM customers WHERE id = 4`)
	if r.Rows[0][0].I != 8 {
		t.Fatalf("got %v", r.Rows[0][0])
	}
}

func TestExplainShowsPruningAndJoinStrategy(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `CREATE TABLE events (id INT, yr INT) PARTITION BY RANGE(yr) VALUES (2014, 2015)`)
	txt, err := e.ExplainSQL(`SELECT COUNT(*) FROM events WHERE yr = 2014`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "[1/3 partitions]") {
		t.Fatalf("explain missing pruning info:\n%s", txt)
	}
	txt, _ = e.ExplainSQL(`SELECT * FROM customers c JOIN orders o ON c.id = o.cust_id`)
	if !strings.Contains(txt, "HashJoin") {
		t.Fatalf("expected hash join:\n%s", txt)
	}
}

func TestErrorMessages(t *testing.T) {
	e := newTestEngine(t)
	for _, sql := range []string{
		`SELECT nosuch FROM customers`,
		`SELECT * FROM nosuchtable`,
		`SELECT UNKNOWN_FN(1)`,
		`SELECT id FROM customers GROUP BY country`, // id not grouped
		`INSERT INTO nosuchtable VALUES (1)`,
		`SELECT id FROM orders HAVING id > 1`,
	} {
		if _, err := e.Query(sql); err == nil {
			t.Fatalf("%q must fail", sql)
		}
	}
}

func TestCountDistinct(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT COUNT(DISTINCT status) FROM orders`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("got %v", r.Rows[0][0])
	}
}

func TestExecutorsAgreeOnRandomQueriesProperty(t *testing.T) {
	// Property: for randomized filters over a fixed dataset, both
	// executors return identical multisets. This guards E4's validity.
	e := newTestEngine(t)
	mustExec(t, e, `MERGE DELTA OF orders`) // exercise main-storage fast paths
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		lo := rng.Intn(30)
		hi := lo + rng.Intn(30)
		status := []string{"OPEN", "PAID", "SHIPPED"}[rng.Intn(3)]
		sql := fmt.Sprintf(
			`SELECT id, total FROM orders WHERE id BETWEEN %d AND %d AND status = '%s'`, lo, hi, status)
		e.Mode = ModeCompiled
		rc, err := e.Query(sql)
		if err != nil {
			return false
		}
		e.Mode = ModeInterpreted
		ri, err := e.Query(sql)
		e.Mode = ModeCompiled
		if err != nil {
			return false
		}
		if len(rc.Rows) != len(ri.Rows) {
			return false
		}
		seen := map[string]int{}
		for _, r := range rc.Rows {
			seen[r.Key()]++
		}
		for _, r := range ri.Rows {
			seen[r.Key()]--
		}
		for _, c := range seen {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"ABC", "abc", true}, // case-insensitive like HANA's default collation here
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Fatalf("like(%q,%q)=%v", c.s, c.p, got)
		}
	}
}

// columnstoreSchema parses "a INT, b VARCHAR" into a schema for tests.
func columnstoreSchema(spec string) columnstore.Schema {
	var out columnstore.Schema
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Fields(part)
		k, err := value.ParseKind(fields[1])
		if err != nil {
			panic(err)
		}
		out = append(out, columnstore.ColumnDef{Name: fields[0], Kind: k})
	}
	return out
}

func TestLeftJoinWherePredicateNotMergedIntoOn(t *testing.T) {
	// Regression: WHERE conjuncts over both sides must stay above a LEFT
	// OUTER join — merging them into ON changes which rows survive.
	e := newTestEngine(t)
	mustExec(t, e, `CREATE TABLE promos (cust_id INT, pct DOUBLE)`)
	mustExec(t, e, `INSERT INTO promos VALUES (0, 10)`)
	r := bothModes(t, e, `SELECT c.id FROM customers c LEFT JOIN promos p ON c.id = p.cust_id WHERE c.id < 2 AND p.pct IS NOT NULL`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 0 {
		t.Fatalf("rows=%v", r.Rows)
	}
	// Sanity: without the IS NOT NULL filter, both customers survive.
	r = bothModes(t, e, `SELECT c.id FROM customers c LEFT JOIN promos p ON c.id = p.cust_id WHERE c.id < 2`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestBuiltinScalarFunctions(t *testing.T) {
	e := NewEngine()
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT SUBSTR('hello world', 7, 5)`, "world"},
		{`SELECT SUBSTR('abc', 0, 10)`, "abc"},
		{`SELECT SUBSTR('abc', 9, 2)`, ""},
		{`SELECT CONCAT('a', NULL, 'b', 1)`, "ab1"},
		{`SELECT ROUND(2.567, 2)`, "2.57"},
		{`SELECT ROUND(2.4)`, "2"},
		{`SELECT FLOOR(2.9)`, "2"},
		{`SELECT CEIL(2.1)`, "3"},
		{`SELECT SQRT(16)`, "4"},
		{`SELECT POWER(2, 10)`, "1024"},
		{`SELECT MOD(10, 3)`, "1"},
		{`SELECT IFNULL(NULL, 'fallback')`, "fallback"},
		{`SELECT IFNULL('x', 'fallback')`, "x"},
		{`SELECT CAST_INT('42')`, "42"},
		{`SELECT CAST_DOUBLE('2.5')`, "2.5"},
		{`SELECT GREATEST(3, 9, 1)`, "9"},
		{`SELECT LEAST(3, 9, 1)`, "1"},
		{`SELECT LOWER('ABC')`, "abc"},
		{`SELECT ABS(2.5)`, "2.5"},
		{`SELECT ABS(3)`, "3"},
	}
	for _, c := range cases {
		r := mustExec(t, e, c.sql)
		if got := r.Rows[0][0].AsString(); got != c.want {
			t.Fatalf("%s = %q want %q", c.sql, got, c.want)
		}
	}
	// Time parts.
	r := mustExec(t, e, `SELECT YEAR(TO_TIMESTAMP('2015-04-13 09:30:00')), MONTH(TO_TIMESTAMP('2015-04-13')), DAY(TO_TIMESTAMP('2015-04-13')), HOUR(TO_TIMESTAMP('2015-04-13 09:30:00'))`)
	if r.Rows[0][0].I != 2015 || r.Rows[0][1].I != 4 || r.Rows[0][2].I != 13 || r.Rows[0][3].I != 9 {
		t.Fatalf("time parts=%v", r.Rows[0])
	}
	r = mustExec(t, e, `SELECT YEAR(NULL)`)
	if !r.Rows[0][0].IsNull() {
		t.Fatal("YEAR(NULL)")
	}
	// Wrong arities surface as NULL (errors are swallowed to keep scans
	// robust), but must not panic.
	for _, sql := range []string{`SELECT ABS(1, 2)`, `SELECT LENGTH()`, `SELECT SUBSTR('a', 1)`, `SELECT MOD(1)`} {
		r := mustExec(t, e, sql)
		if !r.Rows[0][0].IsNull() {
			t.Fatalf("%s should be NULL", sql)
		}
	}
}

func TestQuotedIdentifiersAndComments(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE "Weird" (a INT)`)
	mustExec(t, e, `INSERT INTO "Weird" VALUES (1) -- trailing comment`)
	r := mustExec(t, e, "-- leading comment\nSELECT a FROM \"Weird\"")
	if len(r.Rows) != 1 {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestSessionMisuse(t *testing.T) {
	e := NewEngine()
	s := e.NewSession()
	defer s.Close()
	if _, err := s.Query("COMMIT"); err == nil {
		t.Fatal("commit without begin")
	}
	if _, err := s.Query("ROLLBACK"); err == nil {
		t.Fatal("rollback without begin")
	}
	s.Query("BEGIN")
	if !s.InTxn() {
		t.Fatal("InTxn")
	}
	if _, err := s.Query("BEGIN"); err == nil {
		t.Fatal("nested begin accepted")
	}
	s.Query("ROLLBACK")
	if s.InTxn() {
		t.Fatal("InTxn after rollback")
	}
}

func TestDropTableSemantics(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE d (a INT)`)
	mustExec(t, e, `DROP TABLE d`)
	if _, err := e.Query(`SELECT * FROM d`); err == nil {
		t.Fatal("dropped table resolvable")
	}
	if _, err := e.Query(`DROP TABLE d`); err == nil {
		t.Fatal("double drop accepted")
	}
	mustExec(t, e, `DROP TABLE IF EXISTS d`) // tolerated
	// Recreate after drop.
	mustExec(t, e, `CREATE TABLE d (a INT)`)
	mustExec(t, e, `CREATE TABLE IF NOT EXISTS d (a INT)`)
	if _, err := e.Query(`CREATE TABLE d (a INT)`); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestBoundsForPartitionPruningVariants(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `CREATE TABLE ev (id INT, yr INT) PARTITION BY RANGE(yr) VALUES (2014, 2015)`)
	for i := 0; i < 9; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO ev VALUES (%d, %d)`, i, 2013+i%3))
	}
	cases := []struct {
		sql     string
		scanned int
	}{
		{`SELECT COUNT(*) FROM ev WHERE yr <= 2013`, 1},
		{`SELECT COUNT(*) FROM ev WHERE 2015 <= yr`, 1}, // flipped literal
		{`SELECT COUNT(*) FROM ev WHERE yr BETWEEN 2014 AND 2014`, 1},
		{`SELECT COUNT(*) FROM ev WHERE yr > 2013 AND yr < 2015`, 1},
	}
	for _, c := range cases {
		r := mustExec(t, e, c.sql)
		if r.Stats.PartitionsScanned != c.scanned {
			t.Fatalf("%s scanned %d partitions", c.sql, r.Stats.PartitionsScanned)
		}
	}
}

func TestExplainVarieties(t *testing.T) {
	e := newTestEngine(t)
	for _, sql := range []string{
		`SELECT DISTINCT country FROM customers ORDER BY country LIMIT 2`,
		`SELECT c.id FROM customers c LEFT JOIN orders o ON c.id = o.cust_id`,
		`SELECT s.n FROM (SELECT COUNT(*) AS n FROM orders) s`,
	} {
		txt, err := e.ExplainSQL(sql)
		if err != nil || txt == "" {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if _, err := e.ExplainSQL(`INSERT INTO orders VALUES (1)`); err == nil {
		t.Fatal("EXPLAIN of DML accepted")
	}
}

func TestValuesWithExpressionsAndParams(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE v (a INT, b VARCHAR)`)
	mustExec(t, e, `INSERT INTO v VALUES (1 + 2, UPPER('x')), (?, ?)`, value.Int(9), value.String("y"))
	r := mustExec(t, e, `SELECT a, b FROM v ORDER BY a`)
	if r.Rows[0][0].I != 3 || r.Rows[0][1].S != "X" || r.Rows[1][0].I != 9 {
		t.Fatalf("rows=%v", r.Rows)
	}
	// Column references are not allowed in VALUES.
	if _, err := e.Query(`INSERT INTO v VALUES (a, 'x')`); err == nil {
		t.Fatal("column ref in VALUES accepted")
	}
}

func TestCaseWithoutElseAndNestedAggRewrite(t *testing.T) {
	e := newTestEngine(t)
	r := bothModes(t, e, `SELECT CASE WHEN id > 100 THEN 'big' END FROM customers WHERE id = 1`)
	if !r.Rows[0][0].IsNull() {
		t.Fatal("CASE without ELSE must yield NULL")
	}
	// Aggregates inside arithmetic and CASE over aggregation.
	r = bothModes(t, e, `SELECT SUM(total) / COUNT(*), CASE WHEN COUNT(*) > 1000 THEN 'big' ELSE 'small' END FROM orders`)
	if r.Rows[0][1].S != "small" {
		t.Fatalf("rows=%v", r.Rows)
	}
	// ORDER BY an aggregate not in the select list.
	r = bothModes(t, e, `SELECT status FROM orders GROUP BY status ORDER BY COUNT(*) DESC, status`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%v", r.Rows)
	}
}
