package sqlexec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// morselRows is the scan granule of the vectorized executor: large enough
// to amortize kernel setup and selection-vector reuse, small enough that a
// table splits into many independently schedulable units (morsel-driven
// parallelism). ~16k rows of a few columns stay cache-resident per worker.
const morselRows = 16 * 1024

// vecPool is the per-query worker pool. One pool is shared by every
// vectorized operator of a statement (scan morsels, partitioned hash-join
// build, partial aggregation), so a query never runs more than `workers`
// goroutines regardless of plan shape.
type vecPool struct {
	workers int
	jobs    chan vecJob
	wg      sync.WaitGroup
	busyNS  []int64 // per-worker accumulated busy time
	stopped atomic.Bool
}

// vecJob is one unit of work; worker is the executing worker's index so
// jobs can use per-worker scratch state without synchronization.
type vecJob func(worker int)

func newVecPool(workers int) *vecPool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &vecPool{
		workers: workers,
		jobs:    make(chan vecJob),
		busyNS:  make([]int64, workers),
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer p.wg.Done()
			for job := range p.jobs {
				t0 := time.Now()
				job(w)
				p.busyNS[w] += time.Since(t0).Nanoseconds()
			}
		}(w)
	}
	return p
}

// submit hands a job to the pool, blocking until a worker is free.
func (p *vecPool) submit(j vecJob) { p.jobs <- j }

// stop requests that in-flight and queued jobs finish early (jobs poll
// stopping); used when a LIMIT downstream has seen enough rows.
func (p *vecPool) stop() { p.stopped.Store(true) }

// stopping reports whether downstream asked to cut the query short.
func (p *vecPool) stopping() bool { return p.stopped.Load() }

// close shuts the pool down, waits for the workers, and reports each
// worker's busy time to the observability layer.
func (p *vecPool) close() {
	close(p.jobs)
	p.wg.Wait()
	for _, ns := range p.busyNS {
		if ns > 0 {
			hVecWorkerBusy.Observe(float64(ns) / 1e3)
		}
	}
}
