package sqlexec

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

// sysTestEngine builds an engine with data and a recorded workload so the
// monitoring views have something to show.
func sysTestEngine(t testing.TB) *Engine {
	t.Helper()
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE acct (id INT, region VARCHAR, bal DOUBLE)`)
	for i := 0; i < 20; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO acct VALUES (%d, '%s', %f)`,
			i, []string{"EMEA", "AMER"}[i%2], float64(i)))
	}
	for i := 0; i < 5; i++ {
		mustExec(t, e, `SELECT region, COUNT(*) FROM acct GROUP BY region`)
	}
	return e
}

// TestSysViewsAllModes scans every engine-local monitoring view under all
// three executors: virtual tables must resolve and materialize identically
// whether the plan is compiled, interpreted or vectorized.
func TestSysViewsAllModes(t *testing.T) {
	e := sysTestEngine(t)
	views := e.SysViews().Names()
	if len(views) < 9 {
		t.Fatalf("expected >= 9 engine views, got %v", views)
	}
	for _, m := range []struct {
		name string
		mode Mode
	}{{"compiled", ModeCompiled}, {"interpreted", ModeInterpreted}, {"vectorized", ModeVectorized}} {
		e.Mode = m.mode
		for _, v := range views {
			res, err := e.Query(`SELECT * FROM ` + v)
			if err != nil {
				t.Fatalf("%s: SELECT * FROM %s: %v", m.name, v, err)
			}
			st, _ := e.SysViews().Lookup(v)
			if len(res.Cols) != len(st.Schema) {
				t.Fatalf("%s: %s returned %d cols, schema has %d", m.name, v, len(res.Cols), len(st.Schema))
			}
		}
		// Projection, filter, aggregate and ORDER BY over a virtual table.
		res := mustExec(t, e,
			`SELECT fingerprint_id, calls FROM sys.m_statements WHERE calls > 1 ORDER BY calls DESC`)
		if len(res.Rows) == 0 {
			t.Fatalf("%s: no aggregated statements with calls > 1", m.name)
		}
	}
}

// TestStatementStatsAggregation checks the fingerprint rollup: repeated
// executions with different literals are one row, capacity eviction keeps
// the hottest entries, and the view reflects both.
func TestStatementStatsAggregation(t *testing.T) {
	e := sysTestEngine(t)
	sts := e.StatementStats()
	byNorm := map[string]StatementStat{}
	for _, s := range sts {
		byNorm[s.Query] = s
	}
	ins, ok := byNorm[`INSERT INTO acct VALUES (?, ?, ?)`]
	if !ok || ins.Calls != 20 {
		t.Fatalf("INSERT not aggregated to 20 calls: %+v (have %d shapes)", ins, len(sts))
	}
	_, aggNorm := Fingerprint(`SELECT region, COUNT(*) FROM acct GROUP BY region`)
	agg, ok := byNorm[aggNorm]
	if !ok || agg.Calls != 5 || agg.Rows != 10 {
		t.Fatalf("GROUP BY shape wrong: %+v", agg)
	}
	if agg.TotalMs < agg.MaxMs || agg.P99Ms < agg.P50Ms {
		t.Fatalf("latency stats implausible: %+v", agg)
	}

	// Errors are counted on the same fingerprint, not dropped.
	e.Query(`SELECT nope FROM acct`)
	found := false
	for _, s := range e.StatementStats() {
		if s.Query == `SELECT nope FROM acct` && s.Errors == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("failed statement not recorded with errors=1")
	}

	// Capacity: the log evicts the least-called shapes, keeps the hottest.
	e.SetStatementCapacity(4)
	for i := 0; i < 40; i++ {
		mustExec(t, e, fmt.Sprintf(`SELECT * FROM acct WHERE id = %d`, i))
	}
	sts = e.StatementStats()
	if len(sts) > 4 {
		t.Fatalf("capacity 4 but %d entries retained", len(sts))
	}
	if e.StatementEvictions() == 0 {
		t.Fatal("no evictions counted")
	}
	keep := false
	for _, s := range sts {
		if s.Query == `SELECT * FROM acct WHERE id = ?` {
			keep = true
		}
	}
	if !keep {
		t.Fatalf("hottest shape evicted: %+v", sts)
	}
}

// TestSlowLogRetention: fingerprint stamping plus SetSlowCapacity resize
// in both directions, with the ring staying newest-first.
func TestSlowLogRetention(t *testing.T) {
	e := newTestEngine(t)
	e.SlowThreshold = time.Nanosecond // everything is slow
	e.SetSlowCapacity(3)
	for i := 0; i < 7; i++ {
		mustExec(t, e, fmt.Sprintf(`SELECT * FROM orders WHERE id = %d`, i))
	}
	got := e.SlowQueries()
	if len(got) != 3 {
		t.Fatalf("capacity 3 retained %d", len(got))
	}
	for i, q := range got {
		want := fmt.Sprintf(`SELECT * FROM orders WHERE id = %d`, 6-i)
		if q.SQL != want {
			t.Fatalf("slot %d = %q, want %q (newest first)", i, q.SQL, want)
		}
		wantFP, _ := Fingerprint(q.SQL)
		if q.Fingerprint != wantFP {
			t.Fatalf("fingerprint %q, want %q", q.Fingerprint, wantFP)
		}
		if q.When.IsZero() {
			t.Fatal("capture time not stamped")
		}
	}

	// Growing keeps history; shrinking drops the oldest.
	e.SetSlowCapacity(5)
	for i := 7; i < 10; i++ {
		mustExec(t, e, fmt.Sprintf(`SELECT * FROM orders WHERE id = %d`, i))
	}
	if got = e.SlowQueries(); len(got) != 5 {
		t.Fatalf("after growth retained %d, want 5", len(got))
	}
	if got[0].SQL != `SELECT * FROM orders WHERE id = 9` {
		t.Fatalf("newest = %q", got[0].SQL)
	}
	e.SetSlowCapacity(2)
	mustExec(t, e, `SELECT * FROM orders WHERE id = 10`)
	if got = e.SlowQueries(); len(got) != 2 || got[0].SQL != `SELECT * FROM orders WHERE id = 10` {
		t.Fatalf("after shrink: %d entries, newest %q", len(got), got[0].SQL)
	}

	// The view joins against sys.m_statements by fingerprint_id.
	res := mustExec(t, e,
		`SELECT s.query, st.calls FROM sys.m_slow_queries s JOIN sys.m_statements st ON s.fingerprint_id = st.fingerprint_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("slow/statements join returned %d rows, want 2", len(res.Rows))
	}
}

// TestMetricsConsistency is the registry <-> sys.m_metrics <-> Prometheus
// contract: every series registered in the engine's registry is queryable
// through SQL and rendered by the text exposition, while writers keep
// mutating it concurrently (the -race half of the test).
func TestMetricsConsistency(t *testing.T) {
	e := sysTestEngine(t)
	obs := stats.NewRegistry()
	e.Obs = obs
	obs.Counter("consist_ops_total", "op=read").Inc()
	obs.Counter("consist_ops_total", "op=write").Add(2)
	obs.Gauge("consist_depth").Set(7)
	obs.Histogram("consist_wait_ms").Observe(1.5)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				obs.Counter("consist_ops_total", "op=write").Inc()
				obs.Histogram("consist_wait_ms").Observe(0.5)
			}
		}
	}()

	for i := 0; i < 20; i++ {
		snap := obs.Snapshot()
		res := mustExec(t, e, `SELECT name, kind, labels FROM sys.m_metrics`)
		inView := map[string]bool{}
		for _, row := range res.Rows {
			inView[row[0].AsString()+"|"+row[2].AsString()] = true
		}
		prom := snap.Prometheus()
		check := func(name string, labels []string) {
			if !inView[name+"|"+strings.Join(labels, ",")] {
				t.Fatalf("series %s{%v} not in sys.m_metrics", name, labels)
			}
			if !strings.Contains(prom, name) {
				t.Fatalf("series %s not in Prometheus exposition", name)
			}
		}
		for _, c := range snap.Counters {
			check(c.Name, c.Labels)
		}
		for _, g := range snap.Gauges {
			check(g.Name, g.Labels)
		}
		for _, h := range snap.Histograms {
			check(h.Name, h.Labels)
		}
	}
	close(stop)
	wg.Wait()

	// Runtime gauges (satellite): sampled into the default registry and
	// visible through the same view.
	res := mustExec(t, e, `SELECT value FROM sys.m_metrics WHERE name = 'runtime_goroutines'`)
	if len(res.Rows) != 1 || res.Rows[0][0].F < 1 {
		t.Fatalf("runtime_goroutines not sampled: %v", res.Rows)
	}
}
