package sqlexec

import (
	"strings"
	"testing"
)

// TestNormalizeSQL pins the canonical form: keywords uppercase,
// identifiers lowercase, literals and parameters abstracted to `?`,
// IN-lists of literals collapsed regardless of arity, canonical spacing.
func TestNormalizeSQL(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`select * from t where id = 7`, `SELECT * FROM t WHERE id = ?`},
		{`SELECT * FROM t WHERE id = $1`, `SELECT * FROM t WHERE id = ?`},
		{`SELECT * FROM t WHERE name = 'bob'`, `SELECT * FROM t WHERE name = ?`},
		{`select  id ,  name   from T  limit 3 ;`, `SELECT id, name FROM t LIMIT ?`},
		{`SELECT o.id FROM orders o`, `SELECT o.id FROM orders o`},
		{`SELECT * FROM t WHERE id IN (1, 2, 3)`, `SELECT * FROM t WHERE id IN (...)`},
		{`SELECT * FROM t WHERE id IN ($1)`, `SELECT * FROM t WHERE id IN (...)`},
		{`SELECT * FROM t WHERE id IN ('a','b')`, `SELECT * FROM t WHERE id IN (...)`},
		{`SELECT * FROM t WHERE id IN (-1, -2)`, `SELECT * FROM t WHERE id IN (...)`},
		// A subquery inside IN is structure, not a literal list: keep it.
		{`SELECT * FROM t WHERE id IN (SELECT id FROM u)`,
			`SELECT * FROM t WHERE id IN (SELECT id FROM u)`},
		{`INSERT INTO t VALUES (1, 'x', 2.5)`, `INSERT INTO t VALUES (?, ?, ?)`},
	}
	for _, c := range cases {
		if got := NormalizeSQL(c.in); got != c.want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestFingerprintEquivalence groups spellings that must share one
// fingerprint, and checks distinct shapes stay distinct.
func TestFingerprintEquivalence(t *testing.T) {
	groups := [][]string{
		{
			`select * from t where id = 7`,
			`SELECT * FROM t WHERE id = 123456`,
			`SELECT   *   FROM   T   WHERE   ID = $1`,
			"select *\n\tfrom t\n\twhere id = 'abc'",
		},
		{
			`SELECT * FROM t WHERE id IN (1)`,
			`SELECT * FROM t WHERE id IN (1, 2, 3, 4, 5, 6, 7, 8)`,
			`select * from t where id in ($1, $2)`,
		},
		{
			`INSERT INTO t VALUES (1, 2)`,
			`insert into T values ($1, $2)`,
		},
	}
	seen := map[string]int{} // fingerprint -> group index
	for gi, g := range groups {
		id0, norm0 := Fingerprint(g[0])
		if len(id0) != 16 {
			t.Fatalf("fingerprint %q is not 16 hex digits", id0)
		}
		for _, sql := range g[1:] {
			id, norm := Fingerprint(sql)
			if id != id0 {
				t.Errorf("group %d: %q -> %s (%q), want %s (%q)", gi, sql, id, norm, id0, norm0)
			}
		}
		if prev, dup := seen[id0]; dup {
			t.Errorf("groups %d and %d collided on %s", prev, gi, id0)
		}
		seen[id0] = gi
	}
}

// TestFingerprintFallback: strings the lexer rejects still get a
// deterministic fingerprint via whitespace collapsing.
func TestFingerprintFallback(t *testing.T) {
	id1, norm1 := Fingerprint("SELECT 'unterminated")
	id2, norm2 := Fingerprint("SELECT    'unterminated")
	if id1 != id2 || norm1 != norm2 {
		t.Fatalf("fallback not deterministic: %s/%q vs %s/%q", id1, norm1, id2, norm2)
	}
	if !strings.Contains(norm1, "'unterminated") {
		t.Fatalf("fallback norm lost the text: %q", norm1)
	}
}
