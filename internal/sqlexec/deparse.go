package sqlexec

import (
	"fmt"
	"strings"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// ExprText renders an expression as SQL text (used by the distributed
// planner to compare and ship expressions).
func ExprText(e Expr) string { return deparseExpr(e) }

// CompileRowPredicate parses a standalone SQL condition and binds it
// against a row shape, returning a predicate over rows. External engines
// (the simulated Hive of the federation layer, stream filters) evaluate
// pushed-down conditions with it.
func CompileRowPredicate(cond string, schema columnstore.Schema, reg *Registry) (func(value.Row) bool, error) {
	st, err := Parse("SELECT 1 WHERE " + cond)
	if err != nil {
		return nil, err
	}
	sel := st.(*SelectStmt)
	cols := make([]colInfo, len(schema))
	for i, c := range schema {
		cols[i] = colInfo{Name: c.Name}
	}
	if reg == nil {
		reg = NewRegistry()
	}
	fn, err := compileExpr(sel.Where, resolverFor(cols), reg)
	if err != nil {
		return nil, err
	}
	return func(row value.Row) bool {
		v := fn(&Env{Row: row})
		return !v.IsNull() && v.AsBool()
	}, nil
}

// Deparse renders a SELECT statement back to SQL text. The distributed
// coordinator rewrites parsed queries (partial aggregates, temp-table
// substitution) and ships them to query services as text — the moral
// equivalent of the paper's plan shipping.
func Deparse(s *SelectStmt) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			if it.Qual != "" {
				sb.WriteString(it.Qual + ".*")
			} else {
				sb.WriteString("*")
			}
			continue
		}
		sb.WriteString(deparseExpr(it.Expr))
		if it.As != "" {
			sb.WriteString(" AS " + it.As)
		}
	}
	if s.From.Name != "" || s.From.Subquery != nil || s.From.Func != nil {
		sb.WriteString(" FROM " + deparseTableRef(s.From))
		for _, j := range s.Joins {
			if j.Left {
				sb.WriteString(" LEFT JOIN ")
			} else {
				sb.WriteString(" JOIN ")
			}
			sb.WriteString(deparseTableRef(j.Table))
			sb.WriteString(" ON " + deparseExpr(j.On))
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + deparseExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(deparseExpr(g))
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + deparseExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(deparseExpr(o.Expr))
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
		if s.Offset > 0 {
			fmt.Fprintf(&sb, " OFFSET %d", s.Offset)
		}
	}
	return sb.String()
}

func deparseTableRef(r TableRef) string {
	var base string
	switch {
	case r.Subquery != nil:
		base = "(" + Deparse(r.Subquery) + ")"
	case r.Func != nil:
		base = "TABLE(" + deparseExpr(r.Func) + ")"
	default:
		base = r.Name
	}
	if r.Alias != "" && r.Alias != r.Name {
		return base + " " + r.Alias
	}
	return base
}

func deparseExpr(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Literal:
		switch {
		case x.Val.IsNull():
			return "NULL"
		case x.Val.K == 3: // KindString
			return "'" + strings.ReplaceAll(x.Val.S, "'", "''") + "'"
		case x.Val.K == 4: // KindBool
			if x.Val.I != 0 {
				return "TRUE"
			}
			return "FALSE"
		default:
			return x.Val.AsString()
		}
	case *ColRef:
		if x.Qual != "" {
			return x.Qual + "." + x.Name
		}
		return x.Name
	case *Param:
		return "?"
	case *BinaryExpr:
		return "(" + deparseExpr(x.L) + " " + x.Op + " " + deparseExpr(x.R) + ")"
	case *UnaryExpr:
		if x.Op == "NOT" {
			return "NOT (" + deparseExpr(x.E) + ")"
		}
		return "-(" + deparseExpr(x.E) + ")"
	case *FuncExpr:
		var args []string
		if x.Star {
			args = append(args, "*")
		}
		if x.Distinct {
			args = append(args, "DISTINCT")
		}
		for _, a := range x.Args {
			args = append(args, deparseExpr(a))
		}
		joined := strings.Join(args, ", ")
		if x.Distinct && len(x.Args) > 0 {
			joined = "DISTINCT " + deparseExpr(x.Args[0])
		}
		return x.Name + "(" + joined + ")"
	case *CaseExpr:
		var sb strings.Builder
		sb.WriteString("CASE")
		for _, w := range x.Whens {
			sb.WriteString(" WHEN " + deparseExpr(w.Cond) + " THEN " + deparseExpr(w.Then))
		}
		if x.Else != nil {
			sb.WriteString(" ELSE " + deparseExpr(x.Else))
		}
		sb.WriteString(" END")
		return sb.String()
	case *InExpr:
		var items []string
		for _, v := range x.List {
			items = append(items, deparseExpr(v))
		}
		op := " IN ("
		if x.Not {
			op = " NOT IN ("
		}
		return deparseExpr(x.E) + op + strings.Join(items, ", ") + ")"
	case *BetweenExpr:
		op := " BETWEEN "
		if x.Not {
			op = " NOT BETWEEN "
		}
		return deparseExpr(x.E) + op + deparseExpr(x.Lo) + " AND " + deparseExpr(x.Hi)
	case *IsNullExpr:
		if x.Not {
			return deparseExpr(x.E) + " IS NOT NULL"
		}
		return deparseExpr(x.E) + " IS NULL"
	}
	return fmt.Sprintf("/*%T*/", e)
}
