package sqlexec

import (
	"strings"

	"repro/internal/columnstore"
	"repro/internal/stats"
	"repro/internal/value"
)

// Engine-local monitoring views: everything observable from the engine
// itself — workload fingerprints, sessions, catalog/storage state, merge
// daemon backlog, the metrics registry, the slow-query log and recent
// traces. Views over external subsystems (pgwire connections, the
// extended-store buffer pool, the SOE cluster) are registered by those
// layers onto the same SysCatalog.

// sysCol abbreviates schema construction for the view definitions below.
func sysCol(name string, k value.Kind) columnstore.ColumnDef {
	return columnstore.ColumnDef{Name: name, Kind: k}
}

func registerEngineSysViews(e *Engine) {
	sc := e.Sys

	sc.Register("sys.m_statements", columnstore.Schema{
		sysCol("fingerprint_id", value.KindString),
		sysCol("query", value.KindString),
		sysCol("calls", value.KindInt),
		sysCol("errors", value.KindInt),
		sysCol("rows", value.KindInt),
		sysCol("total_ms", value.KindFloat),
		sysCol("avg_ms", value.KindFloat),
		sysCol("min_ms", value.KindFloat),
		sysCol("max_ms", value.KindFloat),
		sysCol("p50_ms", value.KindFloat),
		sysCol("p95_ms", value.KindFloat),
		sysCol("p99_ms", value.KindFloat),
		sysCol("last_call", value.KindTime),
	}, func() ([]value.Row, error) {
		sts := e.StatementStats()
		rows := make([]value.Row, len(sts))
		for i, s := range sts {
			avg := 0.0
			if s.Calls > 0 {
				avg = s.TotalMs / float64(s.Calls)
			}
			rows[i] = value.Row{
				value.String(s.ID), value.String(s.Query),
				value.Int(s.Calls), value.Int(s.Errors), value.Int(s.Rows),
				value.Float(s.TotalMs), value.Float(avg),
				value.Float(s.MinMs), value.Float(s.MaxMs),
				value.Float(s.P50Ms), value.Float(s.P95Ms), value.Float(s.P99Ms),
				value.Time(s.LastCall),
			}
		}
		return rows, nil
	})

	sc.Register("sys.m_sessions", columnstore.Schema{
		sysCol("session_id", value.KindInt),
		sysCol("state", value.KindString),
		sysCol("statement", value.KindString),
		sysCol("in_txn", value.KindBool),
		sysCol("statements", value.KindInt),
		sysCol("started", value.KindTime),
		sysCol("last_active", value.KindTime),
	}, func() ([]value.Row, error) {
		return e.sessionRows(), nil
	})

	sc.Register("sys.m_tables", columnstore.Schema{
		sysCol("table_name", value.KindString),
		sysCol("partitions", value.KindInt),
		sysCol("columns", value.KindInt),
		sysCol("rows", value.KindInt),
		sysCol("delta_rows", value.KindInt),
		sysCol("main_rows", value.KindInt),
		sysCol("bytes", value.KindInt),
		sysCol("merge_count", value.KindInt),
		sysCol("flexible", value.KindBool),
	}, func() ([]value.Row, error) {
		var rows []value.Row
		for _, name := range e.Cat.Tables() {
			entry, ok := e.Cat.Table(name)
			if !ok {
				continue
			}
			var nRows, delta, main, bytes, merges int64
			for _, p := range entry.Partitions {
				nRows += int64(p.Table.NumRows())
				delta += int64(p.Table.DeltaRows())
				main += int64(p.Table.MainRows())
				bytes += int64(p.Table.Bytes())
				merges += int64(p.Table.MergeCount())
			}
			rows = append(rows, value.Row{
				value.String(name), value.Int(int64(len(entry.Partitions))),
				value.Int(int64(len(entry.Schema))), value.Int(nRows),
				value.Int(delta), value.Int(main), value.Int(bytes),
				value.Int(merges), value.Bool(entry.Flexible),
			})
		}
		return rows, nil
	})

	sc.Register("sys.m_partitions", columnstore.Schema{
		sysCol("table_name", value.KindString),
		sysCol("partition", value.KindString),
		sysCol("tier", value.KindString),
		sysCol("rows", value.KindInt),
		sysCol("delta_rows", value.KindInt),
		sysCol("main_rows", value.KindInt),
		sysCol("bytes", value.KindInt),
		sysCol("merge_count", value.KindInt),
		sysCol("zone_cols", value.KindInt),
		sysCol("zone_fresh", value.KindBool),
		sysCol("cold_penalty_us", value.KindInt),
	}, func() ([]value.Row, error) {
		var rows []value.Row
		for _, name := range e.Cat.Tables() {
			entry, ok := e.Cat.Table(name)
			if !ok {
				continue
			}
			for _, p := range entry.Partitions {
				zoneCols, zoneFresh := 0, false
				if p.Zone != nil {
					zoneCols = len(p.Zone.Cols)
					// A zone map is fresh when its stamps still match the
					// partition — stale synopses cannot prune safely.
					zoneFresh = p.Zone.Rows == p.Table.NumRows() &&
						p.Zone.Merges == p.Table.MergeCount()
				}
				rows = append(rows, value.Row{
					value.String(name), value.String(p.Name),
					value.String(string(p.Tier)),
					value.Int(int64(p.Table.NumRows())),
					value.Int(int64(p.Table.DeltaRows())),
					value.Int(int64(p.Table.MainRows())),
					value.Int(int64(p.Table.Bytes())),
					value.Int(int64(p.Table.MergeCount())),
					value.Int(int64(zoneCols)), value.Bool(zoneFresh),
					value.Int(int64(p.ColdReadPenalty)),
				})
			}
		}
		return rows, nil
	})

	sc.Register("sys.m_merges", columnstore.Schema{
		sysCol("table_name", value.KindString),
		sysCol("delta_rows", value.KindInt),
		sysCol("main_rows", value.KindInt),
		sysCol("merge_count", value.KindInt),
		sysCol("last_merge_ms", value.KindFloat),
		sysCol("last_rows_merged", value.KindInt),
		sysCol("last_rows_evicted", value.KindInt),
		sysCol("last_dict_resorted", value.KindBool),
		sysCol("last_remapped_refs", value.KindInt),
	}, func() ([]value.Row, error) {
		// The merge daemon's live backlog (delta sizes) and per-table merge
		// history, straight from the transaction manager's table registry.
		var rows []value.Row
		for _, name := range e.Mgr.TableNames() {
			tab, ok := e.Mgr.Table(name)
			if !ok {
				continue
			}
			ms := tab.LastMergeStats()
			rows = append(rows, value.Row{
				value.String(name),
				value.Int(int64(tab.DeltaRows())),
				value.Int(int64(tab.MainRows())),
				value.Int(int64(tab.MergeCount())),
				value.Float(float64(ms.Duration) / 1e6),
				value.Int(int64(ms.RowsMerged)),
				value.Int(int64(ms.RowsEvicted)),
				value.Bool(ms.DictResorted),
				value.Int(int64(ms.RemappedRefs)),
			})
		}
		return rows, nil
	})

	sc.Register("sys.m_metrics", columnstore.Schema{
		sysCol("name", value.KindString),
		sysCol("kind", value.KindString),
		sysCol("labels", value.KindString),
		sysCol("value", value.KindFloat),
		sysCol("count", value.KindInt),
		sysCol("sum", value.KindFloat),
		sysCol("min", value.KindFloat),
		sysCol("max", value.KindFloat),
		sysCol("p50", value.KindFloat),
		sysCol("p95", value.KindFloat),
		sysCol("p99", value.KindFloat),
	}, func() ([]value.Row, error) {
		return metricsRows(e.metricsSnapshot()), nil
	})

	sc.Register("sys.m_slow_queries", columnstore.Schema{
		sysCol("fingerprint_id", value.KindString),
		sysCol("query", value.KindString),
		sysCol("total_ms", value.KindFloat),
		sysCol("captured", value.KindTime),
	}, func() ([]value.Row, error) {
		sq := e.SlowQueries()
		rows := make([]value.Row, len(sq))
		for i, q := range sq {
			rows[i] = value.Row{
				value.String(q.Fingerprint), value.String(q.SQL),
				value.Float(float64(q.Total) / 1e6), value.Time(q.When),
			}
		}
		return rows, nil
	})

	sc.Register("sys.m_traces", columnstore.Schema{
		sysCol("trace_id", value.KindInt),
		sysCol("root", value.KindString),
		sysCol("attrs", value.KindString),
		sysCol("spans", value.KindInt),
		sysCol("duration_ms", value.KindFloat),
		sysCol("begin", value.KindTime),
	}, func() ([]value.Row, error) {
		var rows []value.Row
		for _, sp := range e.Tracer.Recent(64) {
			rows = append(rows, value.Row{
				value.Int(int64(sp.TraceID)), value.String(sp.Name),
				value.String(strings.Join(sp.Attrs, ",")),
				value.Int(int64(countSpans(sp))),
				value.Float(float64(sp.Duration()) / 1e6),
				value.Time(sp.Begin),
			})
		}
		return rows, nil
	})

	sc.Register("sys.m_views", columnstore.Schema{
		sysCol("view_name", value.KindString),
		sysCol("columns", value.KindInt),
		sysCol("rows", value.KindInt),
	}, func() ([]value.Row, error) {
		// The view catalog itself; row counts come from materializing each
		// other view (this one reports the catalog size to avoid
		// recursing into itself).
		names := sc.Names()
		rows := make([]value.Row, 0, len(names))
		for _, n := range names {
			st, ok := sc.Lookup(n)
			if !ok {
				continue
			}
			count := int64(len(names))
			if n != "sys.m_views" {
				snap, err := st.Snapshot()
				if err != nil {
					return nil, err
				}
				count = int64(len(snap))
			}
			rows = append(rows, value.Row{
				value.String(n), value.Int(int64(len(st.Schema))), value.Int(count),
			})
		}
		return rows, nil
	})
}

// metricsSnapshot merges the engine's registry with the process-wide
// default (where storage and runtime metrics land), refreshing the
// runtime gauges first so a monitoring query always sees current values.
func (e *Engine) metricsSnapshot() stats.Snapshot {
	stats.SampleRuntime(stats.Default)
	if e.Obs == nil {
		return stats.Default.Snapshot()
	}
	return stats.Merge(e.Obs.Snapshot(), stats.Default.Snapshot())
}

// metricsRows melts a stats snapshot into sys.m_metrics rows: one row per
// series; histogram-only columns are NULL for counters and gauges.
func metricsRows(snap stats.Snapshot) []value.Row {
	null := value.Value{}
	var rows []value.Row
	for _, c := range snap.Counters {
		rows = append(rows, value.Row{
			value.String(c.Name), value.String("counter"),
			value.String(strings.Join(c.Labels, ",")),
			value.Float(float64(c.Value)),
			null, null, null, null, null, null, null,
		})
	}
	for _, g := range snap.Gauges {
		rows = append(rows, value.Row{
			value.String(g.Name), value.String("gauge"),
			value.String(strings.Join(g.Labels, ",")),
			value.Float(g.Value),
			null, null, null, null, null, null, null,
		})
	}
	for _, h := range snap.Histograms {
		rows = append(rows, value.Row{
			value.String(h.Name), value.String("histogram"),
			value.String(strings.Join(h.Labels, ",")),
			value.Float(float64(h.Count)),
			value.Int(h.Count), value.Float(h.Sum),
			value.Float(h.Min), value.Float(h.Max),
			value.Float(h.P50), value.Float(h.P95), value.Float(h.P99),
		})
	}
	return rows
}

// countSpans sizes a span tree (the root included).
func countSpans(sp *stats.Span) int {
	n := 1
	for _, c := range sp.Children() {
		n += countSpans(c)
	}
	return n
}
