package sqlexec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// This file is the vectorized-executor parity suite: every query shape the
// experiment catalog (E1–E17) issues — plus coverage for NULLs, deletes,
// main+delta mixes, partitioned tables, parameters and plan shapes that
// must fall back — runs through the interpreted, compiled and vectorized
// executors and must produce identical rows in identical order. Run under
// -race it also exercises the morsel pool's synchronization.

// parityEngine builds an ERP-style dataset mirroring the experiment
// workload: an orders fact table with NULLs, deleted rows and a delta tail
// on top of encoded main storage; an items table for joins; a partitioned
// sales table; and a table function (whole-plan fallback path).
func parityEngine(t testing.TB) *Engine {
	t.Helper()
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE orders (id INT, region VARCHAR, status VARCHAR, amount DOUBLE, yr INT)`)
	mustExec(t, e, `CREATE TABLE items (order_id INT, qty INT, sku VARCHAR)`)
	mustExec(t, e, `CREATE TABLE sales (yr INT, region VARCHAR, amount DOUBLE) PARTITION BY RANGE(yr) VALUES (2012, 2014)`)

	// Compressed-execution adversaries: events is large enough that its
	// main storage spans a morsel boundary (>16384 rows), with grp/status
	// runny enough for the merge to pick RLE (runs cross the boundary), a
	// NULL-heavy dictionary region, and qty spanning past the flat-array
	// group cutoff. dims is a small merged build side with NULL, duplicate
	// and unmatched keys; dims_delta never merges (unencoded build side);
	// raw_events never merges (delta-only probe side).
	mustExec(t, e, `CREATE TABLE events (grp INT, region VARCHAR, qty INT, status INT)`)
	mustExec(t, e, `CREATE TABLE dims (region VARCHAR, dname VARCHAR)`)
	mustExec(t, e, `CREATE TABLE dims_delta (region VARCHAR, dname VARCHAR)`)
	mustExec(t, e, `CREATE TABLE raw_events (region VARCHAR, qty INT)`)
	const eventRows = 20000
	erows := make([]value.Row, eventRows)
	for i := range erows {
		region := value.String(fmt.Sprintf("R%d", i%5))
		if i%3 == 0 {
			region = value.Null
		}
		erows[i] = value.Row{
			value.Int(int64(i / 2500)), // 8 runs of 2500 → RLE
			region,
			value.Int(int64(i % 9000)),      // past the flat group cutoff
			value.Int(int64((i / 100) % 4)), // 200 runs of 100 → RLE
		}
	}
	et := e.Cat.MustTable("events").Primary()
	et.ApplyInsert(erows, 1)
	et.Merge(2)
	dt := e.Cat.MustTable("dims").Primary()
	dt.ApplyInsert([]value.Row{
		{value.String("R0"), value.String("zero")},
		{value.String("R2"), value.String("two")},
		{value.String("R4"), value.String("four")},
		{value.Null, value.String("nul")},            // NULL build key never matches
		{value.String("XX"), value.String("none")},   // unmatched build key
		{value.String("R0"), value.String("zero-b")}, // duplicate: multi-match
	}, 1)
	dt.Merge(2)
	e.Mgr.AdvanceTo(2)

	rng := rand.New(rand.NewSource(42))
	regions := []string{"EMEA", "AMER", "APJ"}
	statuses := []string{"OPEN", "PAID", "SHIPPED", "CLOSED"}
	sess := e.NewSession()
	defer sess.Close()
	insertOrders := func(n, base int) {
		sess.Begin()
		for i := 0; i < n; i++ {
			region := value.String(regions[rng.Intn(3)])
			if (base+i)%37 == 0 {
				region = value.Null // NULLs must never match kernels
			}
			amount := value.Float(rng.Float64() * 1000)
			if (base+i)%41 == 0 {
				amount = value.Null
			}
			if _, err := sess.Query(`INSERT INTO orders VALUES (?, ?, ?, ?, ?)`,
				value.Int(int64(base+i)), region,
				value.String(statuses[rng.Intn(4)]), amount,
				value.Int(int64(2010+rng.Intn(5)))); err != nil {
				t.Fatal(err)
			}
		}
		if err := sess.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	insertOrders(500, 0)
	mustExec(t, e, `MERGE DELTA OF orders`) // encode main: dict, FoR ints, floats
	insertOrders(80, 500)                   // delta tail over encoded main
	mustExec(t, e, `DELETE FROM orders WHERE id BETWEEN 100 AND 120`)
	mustExec(t, e, `DELETE FROM orders WHERE id = 510`) // delete in the delta

	sess.Begin()
	for i := 0; i < 300; i++ {
		if _, err := sess.Query(`INSERT INTO items VALUES (?, ?, ?)`,
			value.Int(int64(rng.Intn(580))), value.Int(int64(1+rng.Intn(9))),
			value.String(fmt.Sprintf("sku%03d", rng.Intn(40)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		if _, err := sess.Query(`INSERT INTO sales VALUES (?, ?, ?)`,
			value.Int(int64(2010+rng.Intn(6))), value.String(regions[rng.Intn(3)]),
			value.Float(rng.Float64()*100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `MERGE DELTA OF items`)
	mustExec(t, e, `MERGE DELTA OF sales`)

	// Delta tails and deletes over the compressed tables: events gains
	// unencoded rows (NULL regions, qty on both sides of the cutoff, a
	// kind-mismatched odd row would be impossible through SQL so delta
	// coverage is NULL/dup heavy), and deletes punch holes so morsels stop
	// being dense (run folding must yield to the selection-vector paths).
	sess2 := e.NewSession()
	defer sess2.Close()
	sess2.Begin()
	for i := 0; i < 60; i++ {
		region := value.String(fmt.Sprintf("R%d", i%6)) // R5 unseen in main
		if i%4 == 0 {
			region = value.Null
		}
		if _, err := sess2.Query(`INSERT INTO events VALUES (?, ?, ?, ?)`,
			value.Int(int64(8+i%3)), region,
			value.Int(int64(i*150)), value.Int(int64(i%4))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := sess2.Query(`INSERT INTO dims_delta VALUES (?, ?)`,
			value.String(fmt.Sprintf("R%d", i*2)), value.String(fmt.Sprintf("dd%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		region := value.String(fmt.Sprintf("R%d", i%7))
		if i%5 == 0 {
			region = value.Null
		}
		if _, err := sess2.Query(`INSERT INTO raw_events VALUES (?, ?)`,
			region, value.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess2.Commit(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `DELETE FROM events WHERE grp = 2 AND qty < 5300`)
	mustExec(t, e, `DELETE FROM events WHERE qty = 8999`)

	e.Reg.RegisterTable("NUMS", columnstore.Schema{{Name: "n", Kind: value.KindInt}},
		func(args []value.Value) ([]value.Row, error) {
			var out []value.Row
			for i := int64(0); i < args[0].I; i++ {
				out = append(out, value.Row{value.Int(i)})
			}
			return out, nil
		})
	return e
}

// parityQueries is the experiment-query catalog plus edge-shape coverage.
// Every entry must yield identical ordered output on all executors.
var parityQueries = []struct {
	sql    string
	params []value.Value
}{
	// The E1/E4/E6/E8/E13 aggregate and filter shapes.
	{sql: `SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region`},
	{sql: `SELECT region, COUNT(*), SUM(amount), AVG(amount) FROM orders GROUP BY region`},
	{sql: `SELECT status, COUNT(*), SUM(amount), AVG(amount) FROM orders GROUP BY status`},
	{sql: `SELECT SUM(amount) FROM orders WHERE yr = 2012 AND amount > 500`},
	{sql: `SELECT COUNT(*) FROM orders WHERE id = 42`},
	{sql: `SELECT COUNT(*) FROM orders WHERE status = 'OPEN'`},
	{sql: `SELECT COUNT(*) FROM orders`},
	{sql: `SELECT * FROM orders`},
	// The E4/E5 join shapes (self join, fact-dimension join).
	{sql: `SELECT a.region, COUNT(*) FROM orders a JOIN orders b ON a.id = b.id WHERE a.status = 'OPEN' GROUP BY a.region`},
	{sql: `SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region`},
	{sql: `SELECT o.id, i.sku FROM orders o LEFT JOIN items i ON o.id = i.order_id WHERE o.yr = 2013`},
	// Kernel coverage: every comparison operator over every encoding.
	{sql: `SELECT COUNT(*) FROM orders WHERE id <> 7`},
	{sql: `SELECT COUNT(*) FROM orders WHERE id < 250`},
	{sql: `SELECT COUNT(*) FROM orders WHERE id <= 250`},
	{sql: `SELECT COUNT(*) FROM orders WHERE id > 250`},
	{sql: `SELECT COUNT(*) FROM orders WHERE id >= 250`},
	{sql: `SELECT COUNT(*) FROM orders WHERE region <> 'EMEA'`},
	{sql: `SELECT COUNT(*) FROM orders WHERE region < 'B'`},
	{sql: `SELECT COUNT(*) FROM orders WHERE region >= 'APJ'`},
	{sql: `SELECT COUNT(*) FROM orders WHERE region = 'NOPE'`},
	{sql: `SELECT COUNT(*) FROM orders WHERE amount > 500.5`},
	{sql: `SELECT COUNT(*) FROM orders WHERE amount <= 120`},
	{sql: `SELECT COUNT(*) FROM orders WHERE 300 < id`}, // flipped operands
	{sql: `SELECT COUNT(*) FROM orders WHERE yr >= 2012 AND yr < 2014 AND status = 'PAID' AND amount > 100`},
	// Residual-expression shapes kernels must leave to the generic path.
	{sql: `SELECT id FROM orders WHERE region LIKE 'A%' AND id < 50`},
	{sql: `SELECT id FROM orders WHERE status IN ('OPEN', 'PAID') AND yr = 2011`},
	{sql: `SELECT id FROM orders WHERE amount BETWEEN 200 AND 300`},
	{sql: `SELECT id FROM orders WHERE region IS NULL`},
	{sql: `SELECT id FROM orders WHERE amount IS NOT NULL AND amount < 50`},
	{sql: `SELECT CASE WHEN amount > 500 THEN 'hi' ELSE 'lo' END, COUNT(*) FROM orders WHERE amount IS NOT NULL GROUP BY CASE WHEN amount > 500 THEN 'hi' ELSE 'lo' END`},
	// Aggregates: MIN/MAX/DISTINCT, HAVING, global aggregate over empty input.
	{sql: `SELECT MIN(amount), MAX(amount), MIN(id), MAX(id) FROM orders`},
	{sql: `SELECT region, MIN(amount), MAX(yr) FROM orders GROUP BY region`},
	{sql: `SELECT COUNT(DISTINCT region), COUNT(DISTINCT yr) FROM orders`},
	{sql: `SELECT region, COUNT(*) FROM orders GROUP BY region HAVING COUNT(*) > 50`},
	{sql: `SELECT COUNT(*), SUM(amount) FROM orders WHERE id > 100000`},
	// Ordering, limits, distinct, derived tables.
	{sql: `SELECT id, amount FROM orders ORDER BY amount DESC, id LIMIT 17`},
	{sql: `SELECT DISTINCT region, status FROM orders ORDER BY region, status`},
	{sql: `SELECT id FROM orders ORDER BY id LIMIT 10 OFFSET 495`},
	{sql: `SELECT * FROM orders LIMIT 5`},
	{sql: `SELECT r, c FROM (SELECT region AS r, COUNT(*) AS c FROM orders GROUP BY region) g WHERE c > 10`},
	// Partition pruning + kernels on a range-partitioned table.
	{sql: `SELECT COUNT(*), SUM(amount) FROM sales WHERE yr = 2013`},
	{sql: `SELECT region, COUNT(*) FROM sales WHERE yr >= 2014 GROUP BY region`},
	{sql: `SELECT COUNT(*) FROM sales WHERE yr < 2012 AND region = 'APJ'`},
	// Parameters bind through the vectorized residual path.
	{sql: `SELECT COUNT(*) FROM orders WHERE region = ? AND yr > ?`,
		params: []value.Value{value.String("EMEA"), value.Int(2011)}},
	{sql: `SELECT id FROM orders WHERE amount > ? ORDER BY id LIMIT 20`,
		params: []value.Value{value.Float(900)}},
	// Whole-plan fallback shapes (table function, FROM-less select).
	{sql: `SELECT COUNT(*) FROM TABLE(NUMS(25)) x`},
	{sql: `SELECT n FROM TABLE(NUMS(5)) x WHERE n > 2`},
	{sql: `SELECT 1 + 2`},
	// Compressed-execution shapes: run-folded aggregation over RLE columns
	// crossing morsel boundaries, NULL-heavy dictionary group keys, group
	// cardinality past the flat-array cutoff, and code-valued joins with
	// one-sided encodings (merged probe vs delta-only build and vice versa).
	{sql: `SELECT grp, COUNT(*), SUM(qty), MIN(qty), MAX(qty) FROM events GROUP BY grp`},
	{sql: `SELECT status, COUNT(*), SUM(qty) FROM events GROUP BY status`},
	{sql: `SELECT region, COUNT(*), SUM(qty) FROM events GROUP BY region`},
	{sql: `SELECT qty, COUNT(*) FROM events GROUP BY qty`},
	{sql: `SELECT COUNT(*), SUM(qty), MIN(qty), MAX(qty) FROM events`},
	{sql: `SELECT grp, COUNT(*) FROM events WHERE qty > 4500 GROUP BY grp`},
	{sql: `SELECT region, COUNT(*) FROM events WHERE region IS NOT NULL GROUP BY region`},
	{sql: `SELECT COUNT(*), COUNT(amount), MIN(amount), MAX(amount) FROM sales`},
	{sql: `SELECT d.dname, COUNT(*), SUM(e.qty) FROM events e JOIN dims d ON e.region = d.region GROUP BY d.dname`},
	{sql: `SELECT COUNT(*) FROM events e LEFT JOIN dims d ON e.region = d.region WHERE e.grp = 1`},
	{sql: `SELECT COUNT(*) FROM events e JOIN dims_delta d ON e.region = d.region`},
	{sql: `SELECT COUNT(*) FROM raw_events r JOIN dims d ON r.region = d.region`},
}

// resultKeys renders rows for exact ordered comparison.
func resultKeys(r *Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Key()
	}
	return out
}

// TestVectorizedParity runs the catalog through all three executors (and
// the vectorized one at several worker counts) asserting byte-identical
// ordered output — the vectorized executor's determinism contract.
func TestVectorizedParity(t *testing.T) {
	e := parityEngine(t)
	for _, q := range parityQueries {
		e.Mode = ModeInterpreted
		want := mustExec(t, e, q.sql, q.params...)
		wantKeys := resultKeys(want)

		e.Mode = ModeCompiled
		if got := resultKeys(mustExec(t, e, q.sql, q.params...)); !reflect.DeepEqual(got, wantKeys) {
			t.Errorf("%s: compiled output differs from interpreted", q.sql)
		}
		for _, workers := range []int{1, 3, 8} {
			e.Mode = ModeVectorized
			e.Workers = workers
			if got := resultKeys(mustExec(t, e, q.sql, q.params...)); !reflect.DeepEqual(got, wantKeys) {
				t.Errorf("%s: vectorized(workers=%d) output differs from interpreted (%d vs %d rows)",
					q.sql, workers, len(got), len(wantKeys))
			}
		}
	}
}

// TestVectorizedParityFlatOverflow reruns the grouping shapes with the
// flat-array group cutoff forced to 2, so nearly every group spills to
// the overflow map mid-query — flat and overflow partials must merge
// into byte-identical output regardless of where the cutoff falls.
func TestVectorizedParityFlatOverflow(t *testing.T) {
	old := vecFlatGroupCutoff
	vecFlatGroupCutoff = 2
	defer func() { vecFlatGroupCutoff = old }()
	e := parityEngine(t)
	for _, sql := range []string{
		`SELECT grp, COUNT(*), SUM(qty), MIN(qty), MAX(qty) FROM events GROUP BY grp`,
		`SELECT status, COUNT(*), SUM(qty) FROM events GROUP BY status`,
		`SELECT region, COUNT(*), SUM(qty) FROM events GROUP BY region`,
		`SELECT qty, COUNT(*) FROM events GROUP BY qty`,
		`SELECT region, COUNT(*) FROM orders GROUP BY region HAVING COUNT(*) > 50`,
	} {
		e.Mode = ModeInterpreted
		wantKeys := resultKeys(mustExec(t, e, sql))
		for _, workers := range []int{1, 3, 8} {
			e.Mode = ModeVectorized
			e.Workers = workers
			if got := resultKeys(mustExec(t, e, sql)); !reflect.DeepEqual(got, wantKeys) {
				t.Errorf("%s: vectorized(workers=%d, cutoff=2) output differs from interpreted", sql, workers)
			}
		}
	}
}

// TestVectorizedPathTaken asserts the batch operators actually handled the
// kernel-friendly queries (morsels dispatched, kernels bound) rather than
// silently falling back to the row pipelines.
func TestVectorizedPathTaken(t *testing.T) {
	e := parityEngine(t)
	e.Mode = ModeVectorized
	r := mustExec(t, e, `SELECT COUNT(*) FROM orders WHERE status = 'OPEN' AND id < 400`)
	if r.Stats.Morsels == 0 {
		t.Fatal("vectorized scan dispatched no morsels")
	}
	if r.Stats.KernelHits < 2 {
		t.Fatalf("expected both conjuncts kernel-bound, got %d hits / %d fallbacks",
			r.Stats.KernelHits, r.Stats.KernelFallbacks)
	}
	// LIKE cannot bind a kernel; it must be counted as a residual, and the
	// query must still be answered by the vectorized path.
	r = mustExec(t, e, `SELECT COUNT(*) FROM orders WHERE region LIKE 'A%' AND id < 400`)
	if r.Stats.Morsels == 0 || r.Stats.KernelHits == 0 {
		t.Fatalf("expected mixed kernel/residual scan, got %+v", r.Stats)
	}
	// Table functions are not vectorizable: the whole plan falls back and
	// reports no morsels.
	r = mustExec(t, e, `SELECT COUNT(*) FROM TABLE(NUMS(25)) x`)
	if r.Stats.Morsels != 0 {
		t.Fatalf("table-function plan should fall back, got %d morsels", r.Stats.Morsels)
	}
}

// TestVectorizedStatsParity asserts the scan accounting the experiments
// read (rows scanned, partitions scanned/pruned, cold penalty) is
// identical across executors.
func TestVectorizedStatsParity(t *testing.T) {
	e := parityEngine(t)
	for _, sql := range []string{
		`SELECT COUNT(*) FROM orders WHERE status = 'OPEN'`,
		`SELECT COUNT(*), SUM(amount) FROM sales WHERE yr = 2013`,
		`SELECT region, COUNT(*) FROM sales WHERE yr >= 2014 GROUP BY region`,
	} {
		e.Mode = ModeCompiled
		rc := mustExec(t, e, sql)
		e.Mode = ModeVectorized
		rv := mustExec(t, e, sql)
		if rc.Stats.RowsScanned != rv.Stats.RowsScanned ||
			rc.Stats.PartitionsScanned != rv.Stats.PartitionsScanned ||
			rc.Stats.PartitionsPruned != rv.Stats.PartitionsPruned {
			t.Fatalf("%s: stats diverge: compiled %+v vectorized %+v", sql, rc.Stats, rv.Stats)
		}
	}
}
