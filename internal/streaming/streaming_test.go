package streaming

import (
	"fmt"
	"testing"

	"repro/internal/columnstore"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

func eventSchema() columnstore.Schema {
	return columnstore.Schema{
		{Name: "ts", Kind: value.KindInt},
		{Name: "sensor", Kind: value.KindString},
		{Name: "fill", Kind: value.KindFloat},
	}
}

func ev(ts int64, sensor string, fill float64) value.Row {
	return value.Row{value.Int(ts), value.String(sensor), value.Float(fill)}
}

func TestFilterAndMap(t *testing.T) {
	s := New(eventSchema())
	var got []value.Row
	s.Filter(func(r value.Row) bool { return r[2].F < 20 }).
		Map(func(r value.Row) value.Row {
			out := r.Clone()
			out[1] = value.String("ALERT:" + r[1].S)
			return out
		}).
		OnEvent(func(r value.Row) { got = append(got, r) })
	s.Push(ev(1, "D1", 50))
	s.Push(ev(2, "D2", 10))
	s.Push(ev(3, "D3", 5))
	if len(got) != 2 || got[0][1].S != "ALERT:D2" {
		t.Fatalf("got=%v", got)
	}
	in, out := s.Stats()
	if in != 3 || out != 2 {
		t.Fatalf("in=%d out=%d", in, out)
	}
}

func TestFilterSQL(t *testing.T) {
	s := New(eventSchema())
	if _, err := s.FilterSQL("fill < 20 AND sensor <> 'D9'"); err != nil {
		t.Fatal(err)
	}
	var n int
	s.OnEvent(func(value.Row) { n++ })
	s.Push(ev(1, "D1", 10))
	s.Push(ev(2, "D9", 10))
	s.Push(ev(3, "D1", 90))
	if n != 1 {
		t.Fatalf("n=%d", n)
	}
	bad := New(eventSchema())
	if _, err := bad.FilterSQL("nosuchcol = 1"); err == nil {
		t.Fatal("bad condition accepted")
	}
}

func TestTumblingWindowAggregation(t *testing.T) {
	s := New(eventSchema())
	if _, err := s.Window(WindowSpec{TSCol: "ts", Width: 100, GroupCol: "sensor", AggCol: "fill", Agg: "avg"}); err != nil {
		t.Fatal(err)
	}
	var got []value.Row
	s.OnEvent(func(r value.Row) { got = append(got, r.Clone()) })
	// Window [0,100): D1 avg (10+30)/2, D2 avg 50.
	s.Push(ev(10, "D1", 10))
	s.Push(ev(20, "D2", 50))
	s.Push(ev(90, "D1", 30))
	if len(got) != 0 {
		t.Fatal("window closed early")
	}
	// Event at 150 advances the watermark past window 0.
	s.Push(ev(150, "D1", 99))
	if len(got) != 2 {
		t.Fatalf("emitted=%v", got)
	}
	if got[0][0].I != 0 || got[0][1].S != "D1" || got[0][2].F != 20 {
		t.Fatalf("D1 window=%v", got[0])
	}
	if got[1][1].S != "D2" || got[1][2].F != 50 {
		t.Fatalf("D2 window=%v", got[1])
	}
	// Flush drains the open window.
	s.Flush()
	if len(got) != 3 || got[2][2].F != 99 {
		t.Fatalf("after flush=%v", got)
	}
}

func TestWindowAggKinds(t *testing.T) {
	for agg, want := range map[string]float64{"sum": 60, "min": 10, "max": 30, "count": 3, "avg": 20} {
		s := New(eventSchema())
		if _, err := s.Window(WindowSpec{TSCol: "ts", Width: 1000, AggCol: "fill", Agg: agg}); err != nil {
			t.Fatal(err)
		}
		var got []value.Row
		s.OnEvent(func(r value.Row) { got = append(got, r) })
		s.Push(ev(1, "x", 10))
		s.Push(ev(2, "x", 20))
		s.Push(ev(3, "x", 30))
		s.Flush()
		if len(got) != 1 || got[0][2].F != want {
			t.Fatalf("%s: got=%v want %v", agg, got, want)
		}
	}
}

func TestWindowValidation(t *testing.T) {
	s := New(eventSchema())
	if _, err := s.Window(WindowSpec{TSCol: "nope", Width: 10, AggCol: "fill", Agg: "sum"}); err == nil {
		t.Fatal("bad ts column accepted")
	}
	if _, err := s.Window(WindowSpec{TSCol: "ts", Width: 0, AggCol: "fill", Agg: "sum"}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := s.Window(WindowSpec{TSCol: "ts", Width: 10, AggCol: "fill", Agg: "median"}); err == nil {
		t.Fatal("unknown agg accepted")
	}
}

func TestIntoTableIngestsToDeltaStore(t *testing.T) {
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE readings (ts INT, sensor VARCHAR, fill DOUBLE)`)
	s := New(eventSchema())
	if err := s.IntoTable(eng, "readings"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Push(ev(int64(i), fmt.Sprintf("D%d", i%2), float64(i)))
	}
	// Events are immediately queryable (they sit in the delta store).
	r := eng.MustQuery(`SELECT COUNT(*), SUM(fill) FROM readings`)
	if r.Rows[0][0].I != 10 || r.Rows[0][1].F != 45 {
		t.Fatalf("row=%v", r.Rows[0])
	}
	entry, _ := eng.Cat.Table("readings")
	if entry.Primary().DeltaRows() != 10 {
		t.Fatalf("delta rows=%d", entry.Primary().DeltaRows())
	}
	if err := s.IntoTable(eng, "ghost"); err == nil {
		t.Fatal("missing sink accepted")
	}
}

func TestWindowedStreamIntoTable(t *testing.T) {
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE agg (window_start INT, grp VARCHAR, val DOUBLE)`)
	s := New(eventSchema())
	if _, err := s.Window(WindowSpec{TSCol: "ts", Width: 100, GroupCol: "sensor", AggCol: "fill", Agg: "sum"}); err != nil {
		t.Fatal(err)
	}
	if err := s.IntoTable(eng, "agg"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 350; i += 50 {
		s.Push(ev(i, "D1", 1))
	}
	s.Flush()
	r := eng.MustQuery(`SELECT COUNT(*) FROM agg`)
	if r.Rows[0][0].I != 4 { // windows 0,100,200,300
		t.Fatalf("windows=%v", r.Rows[0][0])
	}
}
