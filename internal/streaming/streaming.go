// Package streaming implements the ESP-style streaming engine of Figure 4:
// push-based event pipelines with filters, transformations, event-time
// tumbling windows with aggregation, pattern triggers (alerts), and table
// sinks that feed events straight into the column store's delta storage —
// the streaming entry point of the ecosystem (sensor data, ticker feeds).
package streaming

import (
	"fmt"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/value"
)

// Stream processing reports into the process-wide default registry (no
// per-instance plumbing path); counters cached for the per-event path.
var (
	cEvents  = stats.Default.Counter("streaming_events_total")
	cFlushes = stats.Default.Counter("streaming_window_flushes_total")
)

// Stream is one pipeline. Build it with the fluent operators, then Push
// events into it; Flush closes open windows at end of stream.
type Stream struct {
	mu     sync.Mutex
	schema columnstore.Schema
	head   stage
	tail   *fanout

	eventsIn  int
	eventsOut int
}

// stage consumes events and forwards them downstream.
type stage interface {
	push(row value.Row)
	flush()
}

// fanout is the terminal stage feeding all sinks.
type fanout struct {
	s     *Stream
	sinks []func(value.Row)
}

func (f *fanout) push(row value.Row) {
	f.s.eventsOut++
	for _, sink := range f.sinks {
		sink(row)
	}
}

func (f *fanout) flush() {}

// New creates a stream over the given event schema.
func New(schema columnstore.Schema) *Stream {
	s := &Stream{schema: schema.Clone()}
	s.tail = &fanout{s: s}
	s.head = s.tail
	return s
}

// Schema returns the schema of events leaving the pipeline (windows
// change it).
func (s *Stream) Schema() columnstore.Schema { return s.schema }

// Stats returns events accepted and events emitted to sinks.
func (s *Stream) Stats() (in, out int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eventsIn, s.eventsOut
}

// prepend inserts a stage before the current head (operators are added in
// declaration order, so each wraps the existing pipeline downstream).
func (s *Stream) append(mk func(down stage) stage) {
	// Stages chain: head -> ... -> tail. New operators go at the end,
	// just before the fanout. Walk is unnecessary: we rebuild by wrapping
	// the tail and letting earlier stages keep their downstream pointer,
	// which requires operators to be added before any events flow.
	st := mk(s.tail)
	if s.head == s.tail {
		s.head = st
		return
	}
	// Find the stage currently pointing at the tail and repoint it.
	cur := s.head
	for {
		type downer interface {
			downstream() stage
			setDownstream(stage)
		}
		d, ok := cur.(downer)
		if !ok {
			break
		}
		if d.downstream() == s.tail {
			d.setDownstream(st)
			return
		}
		cur = d.downstream()
	}
	s.head = st
}

// baseStage implements downstream plumbing.
type baseStage struct {
	down stage
}

func (b *baseStage) downstream() stage     { return b.down }
func (b *baseStage) setDownstream(d stage) { b.down = d }

// Filter keeps events matching pred.
func (s *Stream) Filter(pred func(value.Row) bool) *Stream {
	s.append(func(down stage) stage { return &filterStage{baseStage{down}, pred} })
	return s
}

// FilterSQL keeps events matching a SQL condition over the event schema.
func (s *Stream) FilterSQL(cond string) (*Stream, error) {
	pred, err := sqlexec.CompileRowPredicate(cond, s.schema, nil)
	if err != nil {
		return nil, err
	}
	return s.Filter(pred), nil
}

type filterStage struct {
	baseStage
	pred func(value.Row) bool
}

func (f *filterStage) push(row value.Row) {
	if f.pred(row) {
		f.down.push(row)
	}
}
func (f *filterStage) flush() { f.down.flush() }

// Map transforms events.
func (s *Stream) Map(f func(value.Row) value.Row) *Stream {
	s.append(func(down stage) stage { return &mapStage{baseStage{down}, f} })
	return s
}

type mapStage struct {
	baseStage
	f func(value.Row) value.Row
}

func (m *mapStage) push(row value.Row) { m.down.push(m.f(row)) }
func (m *mapStage) flush()             { m.down.flush() }

// WindowSpec configures a tumbling event-time window aggregation.
type WindowSpec struct {
	TSCol    string // event-time column (int64 micros)
	Width    int64  // window width in micros
	GroupCol string // optional grouping column
	AggCol   string // aggregated column
	Agg      string // sum, avg, min, max, count
}

// Window adds a tumbling window: events are bucketed by event time; when
// an event arrives at or past a window's end (the watermark), the closed
// window emits one row per group: (window_start, group, agg). The stream's
// downstream schema changes accordingly.
func (s *Stream) Window(spec WindowSpec) (*Stream, error) {
	ti := s.schema.ColIndex(spec.TSCol)
	ai := s.schema.ColIndex(spec.AggCol)
	if ti < 0 || (ai < 0 && spec.Agg != "count") {
		return nil, fmt.Errorf("streaming: window columns %q/%q not in schema", spec.TSCol, spec.AggCol)
	}
	gi := -1
	if spec.GroupCol != "" {
		gi = s.schema.ColIndex(spec.GroupCol)
		if gi < 0 {
			return nil, fmt.Errorf("streaming: group column %q not in schema", spec.GroupCol)
		}
	}
	if spec.Width <= 0 {
		return nil, fmt.Errorf("streaming: window width must be positive")
	}
	switch spec.Agg {
	case "sum", "avg", "min", "max", "count":
	default:
		return nil, fmt.Errorf("streaming: unknown aggregate %q", spec.Agg)
	}
	s.append(func(down stage) stage {
		return &windowStage{baseStage: baseStage{down}, spec: spec, ti: ti, gi: gi, ai: ai, open: map[int64]map[string]*wacc{}}
	})
	// Downstream schema: (window_start TIMESTAMP, group VARCHAR, val DOUBLE).
	s.schema = columnstore.Schema{
		{Name: "window_start", Kind: value.KindInt},
		{Name: "grp", Kind: value.KindString},
		{Name: "val", Kind: value.KindFloat},
	}
	return s, nil
}

type wacc struct {
	count    int64
	sum      float64
	min, max float64
}

type windowStage struct {
	baseStage
	spec       WindowSpec
	ti, gi, ai int
	open       map[int64]map[string]*wacc
	watermark  int64
}

func (w *windowStage) push(row value.Row) {
	ts := row[w.ti].AsInt()
	start := ts - mod64(ts, w.spec.Width)
	grp := ""
	if w.gi >= 0 {
		grp = row[w.gi].AsString()
	}
	groups := w.open[start]
	if groups == nil {
		groups = map[string]*wacc{}
		w.open[start] = groups
	}
	a := groups[grp]
	if a == nil {
		a = &wacc{}
		groups[grp] = a
	}
	v := 0.0
	if w.ai >= 0 {
		v = row[w.ai].AsFloat()
	}
	if a.count == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.count++
	a.sum += v

	// Watermark: event time advances; close windows strictly before the
	// current window.
	if ts > w.watermark {
		w.watermark = ts
	}
	for ws := range w.open {
		if ws+w.spec.Width <= w.watermark-mod64(w.watermark, w.spec.Width) {
			w.emit(ws)
		}
	}
}

func (w *windowStage) emit(start int64) {
	cFlushes.Inc()
	groups := w.open[start]
	delete(w.open, start)
	keys := make([]string, 0, len(groups))
	for g := range groups {
		keys = append(keys, g)
	}
	sortStrings(keys)
	for _, g := range keys {
		a := groups[g]
		var v float64
		switch w.spec.Agg {
		case "sum":
			v = a.sum
		case "avg":
			v = a.sum / float64(a.count)
		case "min":
			v = a.min
		case "max":
			v = a.max
		case "count":
			v = float64(a.count)
		}
		w.down.push(value.Row{value.Int(start), value.String(g), value.Float(v)})
	}
}

func (w *windowStage) flush() {
	starts := make([]int64, 0, len(w.open))
	for s := range w.open {
		starts = append(starts, s)
	}
	sortInt64s(starts)
	for _, s := range starts {
		w.emit(s)
	}
	w.down.flush()
}

// OnEvent registers a callback sink (pattern triggers, alert fan-out).
func (s *Stream) OnEvent(f func(value.Row)) *Stream {
	s.tail.sinks = append(s.tail.sinks, f)
	return s
}

// IntoTable sinks events into an engine table — the stream-to-delta-store
// ingestion path of Figure 4. Inserts run through the transaction layer,
// so every event is immediately queryable.
func (s *Stream) IntoTable(eng *sqlexec.Engine, table string) error {
	entry, ok := eng.Cat.Table(table)
	if !ok {
		return fmt.Errorf("streaming: unknown table %q", table)
	}
	if len(entry.Schema) != len(s.schema) {
		return fmt.Errorf("streaming: sink table %q has %d columns, stream emits %d", table, len(entry.Schema), len(s.schema))
	}
	sess := eng.NewSession()
	params := make([]string, len(entry.Schema))
	for i := range params {
		params[i] = "?"
	}
	sql := fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, joinComma(params))
	s.OnEvent(func(row value.Row) {
		sess.Query(sql, row...)
	})
	return nil
}

// Push feeds one event through the pipeline.
func (s *Stream) Push(row value.Row) {
	cEvents.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eventsIn++
	s.head.push(row)
}

// Flush closes all open windows (end of stream).
func (s *Stream) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.head.flush()
}

func mod64(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
