package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func echo(from string, req Message) (Message, error) {
	return Message{Kind: "echo", Payload: req.Payload}, nil
}

func TestCallRoundTrip(t *testing.T) {
	n := New(Config{})
	n.Register("a", echo)
	n.Register("b", echo)
	resp, err := n.Call("a", "b", Message{Kind: "ping", Payload: []byte("hi")})
	if err != nil || string(resp.Payload) != "hi" {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	msgs, bytes := n.Stats()
	if msgs != 2 || bytes == 0 {
		t.Fatalf("msgs=%d bytes=%d", msgs, bytes)
	}
}

func TestUnknownAndCrashedNodes(t *testing.T) {
	n := New(Config{})
	n.Register("a", echo)
	if _, err := n.Call("a", "ghost", Message{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatal(err)
	}
	n.Register("b", echo)
	n.Crash("b")
	if _, err := n.Call("a", "b", Message{}); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if n.Alive("b") {
		t.Fatal("crashed node alive")
	}
	n.Recover("b")
	if _, err := n.Call("a", "b", Message{}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(Config{})
	n.Register("a", echo)
	n.Register("b", echo)
	n.Partition("a", "b")
	if _, err := n.Call("a", "b", Message{}); !errors.Is(err, ErrPartitioned) {
		t.Fatal(err)
	}
	if _, err := n.Call("b", "a", Message{}); !errors.Is(err, ErrPartitioned) {
		t.Fatal(err)
	}
	n.Heal("a", "b")
	if _, err := n.Call("a", "b", Message{}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyCharged(t *testing.T) {
	n := New(Config{Latency: 2 * time.Millisecond})
	n.Register("a", echo)
	n.Register("b", echo)
	start := time.Now()
	n.Call("a", "b", Message{Payload: []byte("x")})
	if time.Since(start) < 4*time.Millisecond { // two directions
		t.Fatal("latency not charged")
	}
}

func TestBandwidthCharged(t *testing.T) {
	n := New(Config{Bandwidth: 1 << 20}) // 1 MiB/s
	n.Register("a", echo)
	n.Register("b", echo)
	payload := make([]byte, 1<<18) // 256 KiB -> ~0.25s one way, ~0.5s round
	start := time.Now()
	n.Call("a", "b", Message{Payload: payload})
	if time.Since(start) < 400*time.Millisecond {
		t.Fatalf("bandwidth not charged: %v", time.Since(start))
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := New(Config{})
	n.Register("hub", echo)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := n.Call("hub", "hub", Message{Payload: []byte("x")}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	msgs, _ := n.Stats()
	if msgs != 3200 {
		t.Fatalf("msgs=%d", msgs)
	}
	n.ResetStats()
	if m, b := n.Stats(); m != 0 || b != 0 {
		t.Fatal("reset failed")
	}
}

func TestNodesList(t *testing.T) {
	n := New(Config{})
	n.Register("a", echo)
	n.Register("b", echo)
	n.Crash("a")
	nodes := n.Nodes()
	if len(nodes) != 1 || nodes[0] != "b" {
		t.Fatalf("nodes=%v", nodes)
	}
	n.Deregister("b")
	if len(n.Nodes()) != 0 {
		t.Fatal("deregister failed")
	}
}
