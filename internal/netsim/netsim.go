// Package netsim provides the simulated cluster substrate the scale-out
// extension runs on: in-process nodes exchanging messages over links with
// configurable latency and bandwidth, plus the failure modes (crashed
// nodes, partitioned links) the SOE protocols must survive. The paper's
// 1000-node deployments are reproduced in-process; speedup and crossover
// experiments (E8, E9) are driven by the same communication/computation
// trade-off the latency and bandwidth model induces.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Message is one request or response payload. Trace is the caller's
// span context riding the envelope (W3C traceparent style): handlers
// that keep tracers parent their own spans under it, stitching a
// coordinator fan-out and its remote work into one trace.
type Message struct {
	Kind    string
	Payload []byte
	Trace   stats.SpanContext
}

// Size returns the modeled wire size (trace context adds the fixed two
// IDs a binary traceparent header would).
func (m Message) Size() int {
	s := len(m.Kind) + len(m.Payload)
	if m.Trace.Valid() {
		s += 16
	}
	return s
}

// Handler processes an incoming request and returns the response.
type Handler func(from string, req Message) (Message, error)

// Errors surfaced by the network.
var (
	ErrUnknownNode = errors.New("netsim: unknown node")
	ErrCrashed     = errors.New("netsim: node crashed")
	ErrPartitioned = errors.New("netsim: link partitioned")
)

// Config models the physical links.
type Config struct {
	Latency   time.Duration // one-way per message
	Bandwidth int64         // bytes/second, 0 = infinite
}

// Network connects named endpoints.
type Network struct {
	mu        sync.RWMutex
	cfg       Config
	handlers  map[string]Handler
	crashed   map[string]bool
	blocked   map[string]bool // "a->b"
	msgs      atomic.Int64
	bytesSent atomic.Int64

	obs atomic.Pointer[stats.Registry]
}

// New returns a network with the given link model.
func New(cfg Config) *Network {
	return &Network{
		cfg:      cfg,
		handlers: map[string]Handler{},
		crashed:  map[string]bool{},
		blocked:  map[string]bool{},
	}
}

// Register adds a node with its request handler.
func (n *Network) Register(name string, h Handler) {
	n.mu.Lock()
	n.handlers[name] = h
	delete(n.crashed, name)
	n.mu.Unlock()
}

// Deregister removes a node.
func (n *Network) Deregister(name string) {
	n.mu.Lock()
	delete(n.handlers, name)
	n.mu.Unlock()
}

// Crash marks a node as failed: all traffic to it errors.
func (n *Network) Crash(name string) {
	n.mu.Lock()
	n.crashed[name] = true
	n.mu.Unlock()
}

// Recover brings a crashed node back.
func (n *Network) Recover(name string) {
	n.mu.Lock()
	delete(n.crashed, name)
	n.mu.Unlock()
}

// Partition blocks traffic in both directions between a and b.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	n.blocked[a+"->"+b] = true
	n.blocked[b+"->"+a] = true
	n.mu.Unlock()
}

// Heal unblocks a partitioned pair.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	delete(n.blocked, a+"->"+b)
	delete(n.blocked, b+"->"+a)
	n.mu.Unlock()
}

// Call performs a synchronous RPC from one node to another, charging
// latency and bandwidth both ways.
func (n *Network) Call(from, to string, req Message) (Message, error) {
	n.mu.RLock()
	h, ok := n.handlers[to]
	crashed := n.crashed[to] || n.crashed[from]
	blocked := n.blocked[from+"->"+to]
	cfg := n.cfg
	n.mu.RUnlock()

	if !ok {
		return Message{}, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if crashed {
		return Message{}, fmt.Errorf("%w: %s", ErrCrashed, to)
	}
	if blocked {
		return Message{}, fmt.Errorf("%w: %s->%s", ErrPartitioned, from, to)
	}

	n.charge(cfg, req.Size())
	resp, err := h(from, req)
	if err != nil {
		return Message{}, err
	}
	n.charge(cfg, resp.Size())
	if reg := n.obs.Load(); reg != nil {
		pair := "pair=" + from + "->" + to
		reg.Counter("netsim_messages_total", pair).Add(2)
		reg.Counter("netsim_bytes_total", pair).Add(int64(req.Size() + resp.Size()))
	}
	return resp, nil
}

// Instrument attaches a metrics registry; every successful Call records
// message and byte counters labeled by the from->to service pair. Nil
// detaches.
func (n *Network) Instrument(reg *stats.Registry) {
	n.obs.Store(reg)
}

// Send is a one-way, fire-and-forget message (log replication fan-out).
func (n *Network) Send(from, to string, req Message) error {
	_, err := n.Call(from, to, req)
	return err
}

func (n *Network) charge(cfg Config, size int) {
	n.msgs.Add(1)
	n.bytesSent.Add(int64(size))
	d := cfg.Latency
	if cfg.Bandwidth > 0 {
		d += time.Duration(int64(size) * int64(time.Second) / cfg.Bandwidth)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Stats returns total messages and bytes since creation.
func (n *Network) Stats() (msgs, bytes int64) {
	return n.msgs.Load(), n.bytesSent.Load()
}

// ResetStats zeroes the counters (between benchmark phases).
func (n *Network) ResetStats() {
	n.msgs.Store(0)
	n.bytesSent.Store(0)
}

// Nodes lists registered, non-crashed nodes.
func (n *Network) Nodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []string
	for name := range n.handlers {
		if !n.crashed[name] {
			out = append(out, name)
		}
	}
	return out
}

// IsUnavailable reports whether err is a network-availability failure — the
// destination crashed, the link partitioned, or the node unregistered — as
// opposed to an application-level error returned by the remote handler.
// Availability failures are the retryable/failover class: the request never
// reached a healthy handler, so re-sending (possibly elsewhere) is safe.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrCrashed) || errors.Is(err, ErrPartitioned) ||
		errors.Is(err, ErrUnknownNode)
}

// Alive reports whether a node is registered and not crashed.
func (n *Network) Alive(name string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.handlers[name]
	return ok && !n.crashed[name]
}
