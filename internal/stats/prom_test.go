package stats

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// checkPrometheusText parses text-format exposition the way a scraper
// would: every line is a comment, a well-formed `# TYPE` line, or a
// sample; each sample's family was declared at most once; histogram
// bucket counts are cumulative and end at the `+Inf` == `_count` total.
func checkPrometheusText(text string) []string {
	var errs []string
	declared := map[string]bool{}
	type hist struct {
		lastLE    float64
		lastCount int64
		count     int64
		hasCount  bool
	}
	hists := map[string]*hist{} // family+labels(without le)
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") {
				if !promTypeRe.MatchString(line) {
					errs = append(errs, fmt.Sprintf("line %d: bad TYPE line %q", i+1, line))
					continue
				}
				fam := strings.Fields(line)[2]
				if declared[fam] {
					errs = append(errs, fmt.Sprintf("line %d: family %s declared twice", i+1, fam))
				}
				declared[fam] = true
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			errs = append(errs, fmt.Sprintf("line %d: unparseable sample %q", i+1, line))
			continue
		}
		name, labels := m[1], m[2]
		if strings.HasSuffix(name, "_bucket") {
			key := strings.TrimSuffix(name, "_bucket") + stripLE(labels)
			h := hists[key]
			if h == nil {
				h = &hist{lastLE: math.Inf(-1)}
				hists[key] = h
			}
			le := leOf(labels)
			n, _ := strconv.ParseInt(m[7], 10, 64)
			if le <= h.lastLE {
				errs = append(errs, fmt.Sprintf("line %d: bucket le not increasing (%g after %g)", i+1, le, h.lastLE))
			}
			if n < h.lastCount {
				errs = append(errs, fmt.Sprintf("line %d: bucket count not cumulative (%d after %d)", i+1, n, h.lastCount))
			}
			h.lastLE, h.lastCount = le, n
		}
		if strings.HasSuffix(name, "_count") {
			key := strings.TrimSuffix(name, "_count") + labels
			if h := hists[key]; h != nil {
				h.count, _ = strconv.ParseInt(m[7], 10, 64)
				h.hasCount = true
			}
		}
	}
	for key, h := range hists {
		if !math.IsInf(h.lastLE, 1) {
			errs = append(errs, fmt.Sprintf("%s: buckets do not end at +Inf", key))
		}
		if !h.hasCount {
			errs = append(errs, fmt.Sprintf("%s: histogram without _count", key))
		} else if h.lastCount != h.count {
			errs = append(errs, fmt.Sprintf("%s: +Inf bucket %d != count %d", key, h.lastCount, h.count))
		}
	}
	return errs
}

func stripLE(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var keep []string
	for _, p := range strings.Split(inner, ",") {
		if !strings.HasPrefix(p, `le="`) {
			keep = append(keep, p)
		}
	}
	if len(keep) == 0 {
		return ""
	}
	return "{" + strings.Join(keep, ",") + "}"
}

func leOf(labels string) float64 {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, p := range strings.Split(inner, ",") {
		if strings.HasPrefix(p, `le="`) {
			v := strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
			if v == "+Inf" {
				return math.Inf(1)
			}
			f, _ := strconv.ParseFloat(v, 64)
			return f
		}
	}
	return math.NaN()
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry("service=v2dqp")
	r.Counter("soe_queries_total", "result=ok").Add(7)
	r.Counter("soe_queries_total", "result=error").Add(2)
	r.Gauge("soe_backlog", "node=node0").Set(3.5)
	h := r.Histogram("soe_query_ms")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	// A label value with quote and backslash must be escaped, not break
	// the format.
	r.Counter("netsim_messages_total", `pair=a"b\c`).Inc()

	text := r.Snapshot().Prometheus()
	if errs := checkPrometheusText(text); len(errs) > 0 {
		t.Fatalf("invalid exposition: %v\n%s", errs, text)
	}
	for _, want := range []string{
		`soe_queries_total{result="error",service="v2dqp"} 2`,
		`soe_queries_total{result="ok",service="v2dqp"} 7`,
		`soe_backlog{node="node0",service="v2dqp"} 3.5`,
		`soe_query_ms_bucket{le="25",service="v2dqp"} 26`,
		`soe_query_ms_bucket{le="+Inf",service="v2dqp"} 100`,
		`soe_query_ms_sum{service="v2dqp"} 4950`,
		`soe_query_ms_count{service="v2dqp"} 100`,
		`pair="a\"b\\c"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	// p50/p95/p99 appear with the same values as the JSON snapshot
	// (consistent export across both surfaces).
	snap := r.Snapshot()
	hs, _ := snap.HistogramNamed("soe_query_ms")
	for q, v := range map[string]float64{"p50": hs.P50, "p95": hs.P95, "p99": hs.P99} {
		want := fmt.Sprintf("soe_query_ms_%s{service=\"v2dqp\"} %s", q, formatFloat(v))
		if !strings.Contains(text, want) {
			t.Fatalf("missing quantile line %q in:\n%s", want, text)
		}
	}
}

// The quantile sample ring is a sliding window: after capacity is
// exceeded, old observations no longer influence p50/p95/p99, while the
// lifetime buckets/count/sum still include them. This pins the
// documented eviction contract.
func TestHistogramQuantilesAtCapacity(t *testing.T) {
	h := NewHistogram(10)
	// 100 old samples at 1000, then 10 recent samples 1..10: the window
	// holds only the recent ten.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	snap := h.snapshot("lat_ms", nil)
	if snap.Count != 110 {
		t.Fatalf("lifetime count %d, want 110", snap.Count)
	}
	if snap.Max != 1000 || snap.Min != 1 {
		t.Fatalf("lifetime min/max %v/%v", snap.Min, snap.Max)
	}
	if snap.P50 != 5 || snap.P99 != 10 {
		t.Fatalf("window quantiles p50=%v p99=%v, want 5 and 10 (old samples must be evicted)", snap.P50, snap.P99)
	}
	// Buckets are lifetime: the 1000s are still counted under le=1000.
	var le1000 int64
	for _, b := range snap.Buckets {
		if b.LE == 1000 {
			le1000 = b.N
		}
	}
	if le1000 != 110 {
		t.Fatalf("le=1000 bucket %d, want 110 (buckets never evict)", le1000)
	}

	// Exactly at capacity, quantiles cover all samples ever observed.
	h2 := NewHistogram(5)
	for _, v := range []float64{5, 1, 4, 2, 3} {
		h2.Observe(v)
	}
	if got := h2.Quantile(0.5); got != 3 {
		t.Fatalf("p50 at capacity = %v, want 3", got)
	}
}
