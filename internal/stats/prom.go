package stats

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) by hand — the repo is stdlib-only. Counters map to
// `counter`, gauges to `gauge`, histograms to a real `histogram` family
// (cumulative `_bucket{le=...}` lines from the lifetime bucket counts,
// plus `_sum` and `_count`) and, because the scrape-side cannot recover
// sliding-window quantiles from lifetime buckets, the ring-derived
// p50/p95/p99 are additionally exported as `<name>_p50|_p95|_p99` gauge
// families — the same three values the JSON snapshot carries.

// PrometheusContentType is the Content-Type for the text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Prometheus renders the snapshot in the Prometheus text format.
func (s Snapshot) Prometheus() string {
	var sb strings.Builder

	writeFamily(&sb, "counter", s.Counters, func(c CounterSnap) (string, []string, string) {
		return c.Name, c.Labels, strconv.FormatInt(c.Value, 10)
	})
	writeFamily(&sb, "gauge", s.Gauges, func(g GaugeSnap) (string, []string, string) {
		return g.Name, g.Labels, formatFloat(g.Value)
	})

	var lastName string
	for _, h := range s.Histograms {
		if h.Name != lastName {
			fmt.Fprintf(&sb, "# TYPE %s histogram\n", promName(h.Name))
			lastName = h.Name
		}
		name := promName(h.Name)
		for _, b := range h.Buckets {
			sb.WriteString(name + "_bucket" + promLabels(h.Labels, `le="`+formatFloat(b.LE)+`"`) + " " + strconv.FormatInt(b.N, 10) + "\n")
		}
		sb.WriteString(name + "_bucket" + promLabels(h.Labels, `le="+Inf"`) + " " + strconv.FormatInt(h.Count, 10) + "\n")
		sb.WriteString(name + "_sum" + promLabels(h.Labels) + " " + formatFloat(h.Sum) + "\n")
		sb.WriteString(name + "_count" + promLabels(h.Labels) + " " + strconv.FormatInt(h.Count, 10) + "\n")
	}

	// Ring-window percentiles as gauge families, one per quantile.
	for _, q := range []struct {
		suffix string
		get    func(HistogramSnap) float64
	}{
		{"_p50", func(h HistogramSnap) float64 { return h.P50 }},
		{"_p95", func(h HistogramSnap) float64 { return h.P95 }},
		{"_p99", func(h HistogramSnap) float64 { return h.P99 }},
	} {
		lastName = ""
		for _, h := range s.Histograms {
			if h.Name != lastName {
				fmt.Fprintf(&sb, "# TYPE %s gauge\n", promName(h.Name)+q.suffix)
				lastName = h.Name
			}
			sb.WriteString(promName(h.Name) + q.suffix + promLabels(h.Labels) + " " + formatFloat(q.get(h)) + "\n")
		}
	}
	return sb.String()
}

// writeFamily emits TYPE headers once per metric name (the snapshot is
// sorted, so equal names are adjacent) followed by the sample lines.
func writeFamily[T any](sb *strings.Builder, typ string, items []T, get func(T) (string, []string, string)) {
	lastName := ""
	for _, it := range items {
		name, labels, val := get(it)
		if name != lastName {
			fmt.Fprintf(sb, "# TYPE %s %s\n", promName(name), typ)
			lastName = name
		}
		sb.WriteString(promName(name) + promLabels(labels) + " " + val + "\n")
	}
}

// promName sanitizes a metric name to [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabels renders "key=value" labels (plus pre-rendered extras like
// le="...") as a {k="v",...} block; empty input renders nothing.
func promLabels(labels []string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels)+len(extra))
	for _, l := range labels {
		k, v := l, ""
		if i := strings.IndexByte(l, '='); i >= 0 {
			k, v = l[:i], l[i+1:]
		}
		parts = append(parts, promLabelKey(k)+`="`+promEscaper.Replace(v)+`"`)
	}
	parts = append(parts, extra...)
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// promLabelKey sanitizes a label key to [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelKey(k string) string {
	var sb strings.Builder
	for i, r := range k {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

// formatFloat renders a float the way the exposition format expects
// (NaN, +Inf, -Inf spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
