package stats

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(8)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty histogram q%.2f = %v, want 0", q, v)
		}
	}
	snap := h.snapshot("x_ms", nil)
	if snap.Count != 0 || snap.Sum != 0 || snap.Min != 0 || snap.Max != 0 || snap.P50 != 0 || snap.P99 != 0 {
		t.Fatalf("empty snapshot not zeroed: %+v", snap)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if v := h.Quantile(q); v != 42 {
			t.Fatalf("single-sample q%.2f = %v, want 42", q, v)
		}
	}
	snap := h.snapshot("x_ms", nil)
	if snap.Count != 1 || snap.Sum != 42 || snap.Min != 42 || snap.Max != 42 {
		t.Fatalf("single-sample snapshot wrong: %+v", snap)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(100)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := map[float64]float64{0.50: 50, 0.95: 95, 0.99: 99, 1: 100, 0: 1}
	for q, want := range cases {
		if got := h.Quantile(q); got != want {
			t.Fatalf("q%.2f = %v, want %v", q, got, want)
		}
	}
}

func TestHistogramSaturatedRing(t *testing.T) {
	h := NewHistogram(4)
	// 1..8: the ring retains only the last 4 samples (5,6,7,8), but
	// lifetime count/sum/min/max cover all 8.
	for i := 1; i <= 8; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); got != 5 {
		t.Fatalf("saturated ring min-quantile = %v, want 5 (oldest retained)", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Fatalf("saturated ring max-quantile = %v, want 8", got)
	}
	snap := h.snapshot("x_ms", nil)
	if snap.Count != 8 || snap.Sum != 36 || snap.Min != 1 || snap.Max != 8 {
		t.Fatalf("lifetime stats wrong after saturation: %+v", snap)
	}
}

func TestHistogramCapacityFloor(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(1)
	h.Observe(2)
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("capacity-1 ring keeps latest: got %v", got)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Half the increments re-resolve the counter through the
				// registry (the lock-free lookup path), half use a cached
				// pointer — both must be race-free.
				r.Counter("hits_total", "svc=a").Inc()
				c := r.Counter("hits_total", "svc=b")
				c.Inc()
				r.Histogram("lat_ms").Observe(float64(i))
				r.Gauge("depth").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("hits_total", "svc=a").Value(); v != goroutines*perG {
		t.Fatalf("svc=a count = %d, want %d", v, goroutines*perG)
	}
	if v := r.Counter("hits_total", "svc=b").Value(); v != goroutines*perG {
		t.Fatalf("svc=b count = %d, want %d", v, goroutines*perG)
	}
	if n := r.Histogram("lat_ms").Count(); n != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", n, goroutines*perG)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z").Observe(1)
	if v := r.Counter("x").Value(); v != 0 {
		t.Fatalf("nil registry counter = %d", v)
	}
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("nil registry snapshot non-empty")
	}
	var tr *Tracer
	sp := tr.Start("op")
	sp.Child("sub").Finish()
	sp.Finish()
	if tr.Total() != 0 || sp.Duration() != 0 {
		t.Fatal("nil tracer recorded something")
	}
}

func TestRegistryBaseLabelsAndSnapshot(t *testing.T) {
	r := NewRegistry("node=n1")
	r.Counter("q_total", "table=orders").Add(7)
	r.Gauge("applied_ts").Set(99)
	r.Histogram("exec_ms").Observe(1.5)
	snap := r.Snapshot()
	v, ok := snap.Counter("q_total", "node=n1", "table=orders")
	if !ok || v != 7 {
		t.Fatalf("labeled counter lookup: %v %v", v, ok)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 99 {
		t.Fatalf("gauge snapshot: %+v", snap.Gauges)
	}
	if node, ok := LabelValue(snap.Counters[0].Labels, "node"); !ok || node != "n1" {
		t.Fatalf("base label missing: %v", snap.Counters[0].Labels)
	}

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot does not unmarshal: %v", err)
	}
	if v, ok := back.Counter("q_total", "node=n1", "table=orders"); !ok || v != 7 {
		t.Fatalf("roundtripped counter: %v %v", v, ok)
	}
}

func TestMergeAndDelta(t *testing.T) {
	a := NewRegistry("node=a")
	b := NewRegistry("node=b")
	a.Counter("q_total").Add(3)
	b.Counter("q_total").Add(5)
	a.Histogram("lat_ms").Observe(10)
	b.Histogram("lat_ms").Observe(30)

	m := Merge(a.Snapshot(), b.Snapshot())
	if got := m.CounterTotal("q_total"); got != 8 {
		t.Fatalf("merged total = %d, want 8", got)
	}
	if len(m.CountersNamed("q_total")) != 2 {
		t.Fatal("per-node counters collapsed despite distinct labels")
	}

	// Identical label sets must sum.
	c1 := Snapshot{Counters: []CounterSnap{{Name: "x", Value: 2}}}
	c2 := Snapshot{Counters: []CounterSnap{{Name: "x", Value: 3}}}
	if v, _ := Merge(c1, c2).Counter("x"); v != 5 {
		t.Fatalf("same-key merge = %d, want 5", v)
	}

	// Histogram merge: counts/sums exact, quantiles conservative max.
	h1 := Snapshot{Histograms: []HistogramSnap{{Name: "h", Count: 1, Sum: 10, Min: 10, Max: 10, P99: 10}}}
	h2 := Snapshot{Histograms: []HistogramSnap{{Name: "h", Count: 1, Sum: 30, Min: 30, Max: 30, P99: 30}}}
	hm := Merge(h1, h2).Histograms[0]
	if hm.Count != 2 || hm.Sum != 40 || hm.Min != 10 || hm.Max != 30 || hm.P99 != 30 {
		t.Fatalf("histogram merge wrong: %+v", hm)
	}

	before := c1
	after := Snapshot{Counters: []CounterSnap{{Name: "x", Value: 9}, {Name: "y", Value: 4}}}
	d := Delta(before, after)
	if v, _ := d.Counter("x"); v != 7 {
		t.Fatalf("delta x = %d, want 7", v)
	}
	if v, _ := d.Counter("y"); v != 4 {
		t.Fatalf("delta y = %d, want 4", v)
	}
}
