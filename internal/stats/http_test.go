package stats

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsJSON(t *testing.T) {
	r := NewRegistry("node=n0")
	r.Counter("q_total").Add(11)
	r.Histogram("lat_ms").Observe(2.5)
	tr := NewTracer(4)
	tr.Start("query").Finish()

	srv := httptest.NewServer(NewHandler(r.Snapshot, tr))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if v, ok := snap.Counter("q_total", "node=n0"); !ok || v != 11 {
		t.Fatalf("counter over HTTP: %v %v", v, ok)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("histogram over HTTP: %+v", snap.Histograms)
	}

	// Live view: the snapshot function is re-invoked per request.
	r.Counter("q_total").Add(1)
	resp2, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap2 Snapshot
	json.NewDecoder(resp2.Body).Decode(&snap2)
	if v, _ := snap2.Counter("q_total", "node=n0"); v != 12 {
		t.Fatalf("metrics not live: %d", v)
	}
}

func TestHandlerMetricsPrometheus(t *testing.T) {
	r := NewRegistry("node=n0")
	r.Counter("q_total").Add(11)
	r.Histogram("lat_ms").Observe(2.5)
	srv := httptest.NewServer(NewHandler(r.Snapshot, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE q_total counter", `q_total{node="n0"} 11`,
		"# TYPE lat_ms histogram", `lat_ms_bucket{le="+Inf",node="n0"} 1`,
		`lat_ms_count{node="n0"} 1`, `lat_ms_p95{node="n0"} 2.5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
	if errs := checkPrometheusText(text); len(errs) > 0 {
		t.Fatalf("invalid exposition: %v\n%s", errs, text)
	}
}

func TestHandlerMetricsTextAndTraces(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	tr := NewTracer(4)
	root := tr.Start("query")
	root.Child("plan").Finish()
	root.Finish()

	srv := httptest.NewServer(NewHandler(r.Snapshot, tr))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics?text=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "x_total") {
		t.Fatalf("text metrics missing counter:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/traces?n=3")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "query") || !strings.Contains(string(body), "plan") {
		t.Fatalf("traces endpoint wrong:\n%s", body)
	}
}
