package stats

import "runtime"

// SampleRuntime refreshes process-level runtime gauges in r: goroutine
// count, heap occupancy and cumulative GC pause. Callers decide the
// cadence — soed samples on a ticker so /metrics scrapes stay cheap, and
// sys.m_metrics samples on demand so a monitoring query always reads
// current values. Nil-safe like the rest of the registry API.
func SampleRuntime(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime_goroutines").Set(float64(runtime.NumGoroutine()))
	r.Gauge("runtime_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("runtime_heap_sys_bytes").Set(float64(ms.HeapSys))
	r.Gauge("runtime_gc_runs").Set(float64(ms.NumGC))
	r.Gauge("runtime_gc_pause_total_ms").Set(float64(ms.PauseTotalNs) / 1e6)
}
