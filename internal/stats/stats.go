// Package stats is the observability subsystem behind the paper's v2stats
// service (Figure 3): a lock-cheap metrics registry (counters, gauges,
// latency histograms with p50/p95/p99), hierarchical span tracing with a
// ring buffer of recent traces, and snapshot types that serialize to JSON
// for the /metrics endpoint. It is stdlib-only and imports nothing from
// the rest of the repository, so every layer — netsim, sharedlog, the
// column store, sqlexec, the SOE services, streaming — can instrument
// itself without dependency cycles.
//
// Conventions: metric names are snake_case with a _total suffix for
// counters and a _ms suffix for latency histograms; labels are "key=value"
// strings. Registries may carry base labels (e.g. "node=node3") stamped
// onto every metric they create, which is how per-node registries stay
// distinguishable after the StatsService merges them.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. All methods are safe
// on a nil receiver (metrics disabled), so call sites need no guards.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float64 (queue depth, applied timestamp, lag).
// Safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultHistogramCapacity is the sample-ring size of registry-created
// histograms: quantiles reflect the most recent observations.
const DefaultHistogramCapacity = 512

// DefaultBuckets are the cumulative-bucket upper bounds of registry
// histograms, in the metric's own unit (milliseconds for _ms latency
// histograms, raw values otherwise). Bucket counts are lifetime totals —
// unlike the quantile sample ring they never evict — so the Prometheus
// exposition can emit a true cumulative histogram.
var DefaultBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram tracks a latency (or size) distribution along two axes:
//
//   - Lifetime state: count, sum, min, max and per-bucket counts
//     (DefaultBuckets bounds). These are exact over every observation
//     ever made and never evict.
//   - A bounded ring of the most recent `capacity` samples, from which
//     p50/p95/p99 are computed by nearest rank. Once the ring saturates
//     (after `capacity` observations) each new sample overwrites the
//     oldest — a sliding window, not a reservoir — so quantiles describe
//     the last `capacity` observations only, which is what an operator
//     tuning hotspot detection or staleness bounds actually wants.
//     TestHistogramQuantilesAtCapacity pins this eviction contract.
//
// Both the JSON snapshot and the Prometheus exposition export the same
// precomputed P50/P95/P99 fields, so the two surfaces can never disagree.
// Safe on a nil receiver.
type Histogram struct {
	mu      sync.Mutex
	ring    []float64
	next    int
	count   int64
	sum     float64
	min     float64
	max     float64
	bounds  []float64 // bucket upper bounds (ascending); nil = no buckets
	buckets []int64   // non-cumulative per-bound counts; values > last bound land only in count
}

// NewHistogram returns a histogram with the given sample-ring capacity
// (minimum 1) and DefaultBuckets bucket bounds.
func NewHistogram(capacity int) *Histogram {
	if capacity < 1 {
		capacity = 1
	}
	return &Histogram{
		ring:    make([]float64, 0, capacity),
		bounds:  DefaultBuckets,
		buckets: make([]int64, len(DefaultBuckets)),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.buckets) {
		h.buckets[i]++
	}
	if len(h.ring) < cap(h.ring) {
		h.ring = append(h.ring, v)
	} else {
		h.ring[h.next] = v
		h.next = (h.next + 1) % cap(h.ring)
	}
	h.mu.Unlock()
}

// ObserveSince records the elapsed time since start, in milliseconds —
// the idiom for latency instrumentation.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// Count returns the lifetime number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1, nearest-rank) over the
// retained samples. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	samples := append([]float64(nil), h.ring...)
	h.mu.Unlock()
	return quantile(samples, q)
}

func quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	if q <= 0 {
		return samples[0]
	}
	if q >= 1 {
		return samples[len(samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return samples[idx]
}

func (h *Histogram) snapshot(name string, labels []string) HistogramSnap {
	h.mu.Lock()
	samples := append([]float64(nil), h.ring...)
	snap := HistogramSnap{
		Name: name, Labels: labels,
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
	}
	// Export buckets cumulatively (Prometheus `le` semantics); the
	// implicit +Inf bucket equals Count and is synthesized on exposition.
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i]
		snap.Buckets = append(snap.Buckets, BucketSnap{LE: b, N: cum})
	}
	h.mu.Unlock()
	snap.P50 = quantile(samples, 0.50)
	snap.P95 = quantile(samples, 0.95)
	snap.P99 = quantile(samples, 0.99)
	return snap
}

// Registry names and owns metrics. Lookups take a lock-free fast path
// (sync.Map); hot call sites can additionally cache the returned pointer
// so the name+label key is never rebuilt. All methods are safe on a nil
// receiver and return nil metrics, so instrumentation can be wired
// unconditionally and enabled by supplying a registry.
type Registry struct {
	base     []string // labels stamped on every metric
	histCap  int
	counters sync.Map // key -> *counterEntry
	gauges   sync.Map // key -> *gaugeEntry
	hists    sync.Map // key -> *histEntry
}

type counterEntry struct {
	name   string
	labels []string
	c      *Counter
}

type gaugeEntry struct {
	name   string
	labels []string
	g      *Gauge
}

type histEntry struct {
	name   string
	labels []string
	h      *Histogram
}

// NewRegistry creates a registry; baseLabels ("key=value") are attached
// to every metric it hands out.
func NewRegistry(baseLabels ...string) *Registry {
	return &Registry{base: append([]string(nil), baseLabels...), histCap: DefaultHistogramCapacity}
}

// SetHistogramCapacity changes the sample-ring size of histograms created
// after the call — harnesses that report tail quantiles (p999) need a
// deeper ring than the operator-dashboard default. Call it before the
// first Histogram lookup; it does not resize existing rings.
func (r *Registry) SetHistogramCapacity(n int) {
	if r != nil && n > 0 {
		r.histCap = n
	}
}

// Default is the process-wide registry used by layers with no natural
// place to plumb one through (column store internals, streaming stages).
// The SOE StatsService folds it into every collection.
var Default = NewRegistry()

func (r *Registry) canon(labels []string) []string {
	all := make([]string, 0, len(r.base)+len(labels))
	all = append(all, r.base...)
	all = append(all, labels...)
	sort.Strings(all)
	return all
}

func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, ",") + "}"
}

// Counter returns (creating if needed) the counter with this name and
// label set.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	all := r.canon(labels)
	k := metricKey(name, all)
	if e, ok := r.counters.Load(k); ok {
		return e.(*counterEntry).c
	}
	e, _ := r.counters.LoadOrStore(k, &counterEntry{name: name, labels: all, c: &Counter{}})
	return e.(*counterEntry).c
}

// Gauge returns (creating if needed) the gauge with this name and label
// set.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	all := r.canon(labels)
	k := metricKey(name, all)
	if e, ok := r.gauges.Load(k); ok {
		return e.(*gaugeEntry).g
	}
	e, _ := r.gauges.LoadOrStore(k, &gaugeEntry{name: name, labels: all, g: &Gauge{}})
	return e.(*gaugeEntry).g
}

// Histogram returns (creating if needed) the histogram with this name and
// label set.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	all := r.canon(labels)
	k := metricKey(name, all)
	if e, ok := r.hists.Load(k); ok {
		return e.(*histEntry).h
	}
	e, _ := r.hists.LoadOrStore(k, &histEntry{name: name, labels: all, h: NewHistogram(r.histCap)})
	return e.(*histEntry).h
}

// --- snapshots ------------------------------------------------------------

// CounterSnap is one counter's state in a snapshot.
type CounterSnap struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Value  int64    `json:"value"`
}

// GaugeSnap is one gauge's state in a snapshot.
type GaugeSnap struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Value  float64  `json:"value"`
}

// BucketSnap is one cumulative histogram bucket: N observations were
// ≤ LE. Only finite bounds are listed; the +Inf bucket is the lifetime
// Count.
type BucketSnap struct {
	LE float64 `json:"le"`
	N  int64   `json:"n"`
}

// HistogramSnap is one histogram's state in a snapshot, quantiles
// precomputed. P50/P95/P99 come from the recent-sample ring (see
// Histogram); Buckets are exact lifetime cumulative counts.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Labels  []string     `json:"labels,omitempty"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Snapshot is a typed, JSON-serializable view of a registry (or of many
// merged registries) at one instant.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot captures the registry's current state, sorted by metric key.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.counters.Range(func(_, v any) bool {
		e := v.(*counterEntry)
		s.Counters = append(s.Counters, CounterSnap{Name: e.name, Labels: e.labels, Value: e.c.Value()})
		return true
	})
	r.gauges.Range(func(_, v any) bool {
		e := v.(*gaugeEntry)
		s.Gauges = append(s.Gauges, GaugeSnap{Name: e.name, Labels: e.labels, Value: e.g.Value()})
		return true
	})
	r.hists.Range(func(_, v any) bool {
		e := v.(*histEntry)
		s.Histograms = append(s.Histograms, e.h.snapshot(e.name, e.labels))
		return true
	})
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		return metricKey(s.Counters[i].Name, s.Counters[i].Labels) < metricKey(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return metricKey(s.Gauges[i].Name, s.Gauges[i].Labels) < metricKey(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return metricKey(s.Histograms[i].Name, s.Histograms[i].Labels) < metricKey(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
}

// Counter returns the value of the counter with exactly this name and
// label set, and whether it exists.
func (s Snapshot) Counter(name string, labels ...string) (int64, bool) {
	sort.Strings(labels)
	k := metricKey(name, labels)
	for _, c := range s.Counters {
		if metricKey(c.Name, c.Labels) == k {
			return c.Value, true
		}
	}
	return 0, false
}

// CountersNamed returns every counter with the given name, across label
// sets.
func (s Snapshot) CountersNamed(name string) []CounterSnap {
	var out []CounterSnap
	for _, c := range s.Counters {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// CounterTotal sums every counter with the given name across label sets —
// the cluster-wide view of a per-node metric.
func (s Snapshot) CounterTotal(name string) int64 {
	var total int64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// HistogramNamed returns the first histogram with the given name (any
// label set), and whether one exists.
func (s Snapshot) HistogramNamed(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

// LabelValue extracts the value of a "key=value" label, if present.
func LabelValue(labels []string, key string) (string, bool) {
	prefix := key + "="
	for _, l := range labels {
		if strings.HasPrefix(l, prefix) {
			return l[len(prefix):], true
		}
	}
	return "", false
}

// Merge combines snapshots: counters with identical name+labels sum,
// gauges take the later snapshot's value, histograms combine count/sum
// and min/max exactly while quantiles take the per-source maximum (a
// conservative upper bound — exact cross-source quantiles would need the
// raw samples).
func Merge(snaps ...Snapshot) Snapshot {
	counters := map[string]*CounterSnap{}
	gauges := map[string]*GaugeSnap{}
	hists := map[string]*HistogramSnap{}
	var order []string
	for _, s := range snaps {
		for _, c := range s.Counters {
			k := "c:" + metricKey(c.Name, c.Labels)
			if e, ok := counters[k]; ok {
				e.Value += c.Value
			} else {
				cp := c
				counters[k] = &cp
				order = append(order, k)
			}
		}
		for _, g := range s.Gauges {
			k := "g:" + metricKey(g.Name, g.Labels)
			if e, ok := gauges[k]; ok {
				e.Value = g.Value
			} else {
				cp := g
				gauges[k] = &cp
				order = append(order, k)
			}
		}
		for _, h := range s.Histograms {
			k := "h:" + metricKey(h.Name, h.Labels)
			if e, ok := hists[k]; ok {
				if h.Count > 0 {
					if e.Count == 0 || h.Min < e.Min {
						e.Min = h.Min
					}
					if e.Count == 0 || h.Max > e.Max {
						e.Max = h.Max
					}
				}
				e.Count += h.Count
				e.Sum += h.Sum
				e.P50 = math.Max(e.P50, h.P50)
				e.P95 = math.Max(e.P95, h.P95)
				e.P99 = math.Max(e.P99, h.P99)
				// Bucket counts sum exactly when both sides share the
				// standard bounds; a shape mismatch drops buckets rather
				// than merge misaligned bounds.
				if len(e.Buckets) == len(h.Buckets) {
					merged := append([]BucketSnap(nil), e.Buckets...)
					for i := range merged {
						if merged[i].LE != h.Buckets[i].LE {
							merged = nil
							break
						}
						merged[i].N += h.Buckets[i].N
					}
					e.Buckets = merged
				} else {
					e.Buckets = nil
				}
			} else {
				cp := h
				hists[k] = &cp
				order = append(order, k)
			}
		}
	}
	var out Snapshot
	for _, k := range order {
		switch k[0] {
		case 'c':
			out.Counters = append(out.Counters, *counters[k])
		case 'g':
			out.Gauges = append(out.Gauges, *gauges[k])
		case 'h':
			out.Histograms = append(out.Histograms, *hists[k])
		}
	}
	out.sort()
	return out
}

// Delta subtracts counter values in before from those in after (new
// counters pass through), dropping counters that did not change. Gauges
// and histograms are taken from after unchanged. Benchmark harnesses use
// this to report what one phase did.
func Delta(before, after Snapshot) Snapshot {
	prev := map[string]int64{}
	for _, c := range before.Counters {
		prev[metricKey(c.Name, c.Labels)] = c.Value
	}
	var out Snapshot
	for _, c := range after.Counters {
		d := c.Value - prev[metricKey(c.Name, c.Labels)]
		if d != 0 {
			out.Counters = append(out.Counters, CounterSnap{Name: c.Name, Labels: c.Labels, Value: d})
		}
	}
	out.Gauges = append(out.Gauges, after.Gauges...)
	out.Histograms = append(out.Histograms, after.Histograms...)
	out.sort()
	return out
}

// String renders the snapshot as aligned text (shell, logs).
func (s Snapshot) String() string {
	var sb strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&sb, "counter    %-44s %d\n", metricKey(c.Name, c.Labels), c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&sb, "gauge      %-44s %g\n", metricKey(g.Name, g.Labels), g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&sb, "histogram  %-44s n=%d sum=%.2f min=%.3f max=%.3f p50=%.3f p95=%.3f p99=%.3f\n",
			metricKey(h.Name, h.Labels), h.Count, h.Sum, h.Min, h.Max, h.P50, h.P95, h.P99)
	}
	return sb.String()
}
