package stats

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// NewHandler serves the live observability surface of a landscape:
//
//	GET /metrics        — JSON Snapshot from the snapshot function
//	GET /metrics?text=1 — the same snapshot as aligned text
//	GET /traces[?n=K]   — the K most recent traces as a text tree
//
// The snapshot function is called per request, so a StatsService-backed
// handler re-aggregates the cluster on every poll — live counters, not a
// cached view. tracer may be nil (404 on /traces).
func NewHandler(snapshot func() Snapshot, tracer *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := snapshot()
		if r.URL.Query().Get("text") != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(snap.String()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			http.NotFound(w, r)
			return
		}
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(tracer.Render(n)))
	})
	return mux
}
