package stats

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// NewHandler serves the live observability surface of a landscape:
//
//	GET /metrics           — Prometheus text exposition (scrapeable)
//	GET /metrics?text=1    — the same snapshot as aligned text
//	GET /metrics.json      — the snapshot as JSON
//	GET /traces[?n=K]      — the K most recent traces as stitched text trees
//	GET /traces?trace=<id> — one trace (hex or decimal TraceID), every
//	                         retained root stitched into a single tree
//
// The snapshot function is called per request, so a StatsService-backed
// handler re-aggregates the cluster on every poll — live counters, not a
// cached view. tracer may be nil (404 on /traces).
func NewHandler(snapshot func() Snapshot, tracer *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := snapshot()
		if r.URL.Query().Get("text") != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(snap.String()))
			return
		}
		w.Header().Set("Content-Type", PrometheusContentType)
		w.Write([]byte(snap.Prometheus()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 16, 64)
			if err != nil {
				if id, err = strconv.ParseUint(q, 10, 64); err != nil {
					http.Error(w, "bad trace id (hex or decimal)", http.StatusBadRequest)
					return
				}
			}
			w.Write([]byte(tracer.RenderTrace(id)))
			return
		}
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		w.Write([]byte(tracer.Render(n)))
	})
	return mux
}
