package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestTracerHierarchyAndRender(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("query", "sql=SELECT 1")
	plan := root.Child("plan")
	plan.Finish()
	fan := root.Child("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := fan.Child("task")
			sp.Finish()
		}()
	}
	wg.Wait()
	fan.Finish()
	root.Finish()

	if tr.Total() != 1 {
		t.Fatalf("traces recorded = %d, want 1", tr.Total())
	}
	got := tr.Recent(1)
	if len(got) != 1 || got[0].Name != "query" {
		t.Fatalf("recent: %+v", got)
	}
	if n := len(got[0].Children()); n != 2 {
		t.Fatalf("root children = %d, want 2", n)
	}
	text := tr.Render(1)
	for _, want := range []string{"query", "plan", "fanout", "task", "sql=SELECT 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	// Child spans are indented under the root (which itself sits under
	// the "trace <id>" heading).
	if !strings.Contains(text, "\n    plan") {
		t.Fatalf("plan not indented:\n%s", text)
	}
	if root.TraceID == 0 || root.SpanID == 0 {
		t.Fatalf("root has no ids: %+v", root)
	}
	if plan.TraceID != root.TraceID || plan.ParentID != root.SpanID {
		t.Fatalf("child ids not inherited: root=%d/%d child=%d/%d", root.TraceID, root.SpanID, plan.TraceID, plan.ParentID)
	}
}

// A remote continuation (StartRemote from a propagated SpanContext) must
// stitch under the span that issued it in both Render and RenderTrace.
func TestTracerRemoteSpansStitchIntoOneTrace(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("query")
	task := root.Child("task", "attempt=1")

	remote := tr.StartRemote("exec", task.Context(), "node=node1")
	remote.Child("scan").Finish()
	remote.Finish()

	task.Finish()
	root.Finish()

	if remote.TraceID != root.TraceID {
		t.Fatalf("remote trace id %d != %d", remote.TraceID, root.TraceID)
	}
	got := tr.RenderTrace(root.TraceID)
	for _, want := range []string{"query", "task", "exec", "scan", "node=node1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("stitched trace missing %q:\n%s", want, got)
		}
	}
	// The remote exec span renders nested under the task span.
	ti := strings.Index(got, "task")
	ei := strings.Index(got, "exec")
	if ti < 0 || ei < ti {
		t.Fatalf("exec not under task:\n%s", got)
	}
	execLine := ""
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "exec") {
			execLine = line
		}
	}
	if !strings.HasPrefix(execLine, strings.Repeat("  ", 3)) {
		t.Fatalf("exec not indented below task: %q", execLine)
	}
	// One trace, rendered once: Render must not list the remote root as
	// a second top-level trace.
	all := tr.Render(10)
	if strings.Count(all, "trace ") != 1 {
		t.Fatalf("remote root leaked as separate trace:\n%s", all)
	}
}

// Regression: evicting the origin root from the ring must not orphan or
// leak its surviving remote continuations — they render exactly once,
// marked detached, instead of disappearing or duplicating.
func TestTracerEvictedParentDoesNotOrphanRemoteChildren(t *testing.T) {
	// Record the origin first so it is evicted first, leaving the remote
	// continuation behind in the ring.
	tr2 := NewTracer(2)
	root2 := tr2.Start("query")
	root2.Finish() // recorded first -> evicted first
	remote2 := tr2.StartRemote("exec", root2.Context(), "node=node0")
	remote2.Finish()
	tr2.Start("filler").Finish() // evicts root2, keeps remote2

	got := tr2.RenderTrace(root2.TraceID)
	if !strings.Contains(got, "exec") {
		t.Fatalf("surviving remote child lost:\n%s", got)
	}
	if strings.Count(got, "exec") != 1 {
		t.Fatalf("remote child duplicated:\n%s", got)
	}
	if !strings.Contains(got, "detached") {
		t.Fatalf("evicted parent not flagged:\n%s", got)
	}
	all := tr2.Render(10)
	if strings.Count(all, "exec") != 1 {
		t.Fatalf("orphaned child leaked or lost in /traces view:\n%s", all)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Start("op" + string(rune('a'+i))).Finish()
	}
	recent := tr.Recent(10)
	if len(recent) != 3 {
		t.Fatalf("retained = %d, want 3", len(recent))
	}
	if recent[0].Name != "ope" || recent[2].Name != "opc" {
		t.Fatalf("order wrong: %s .. %s", recent[0].Name, recent[2].Name)
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
}

func TestTracerRenderEmpty(t *testing.T) {
	tr := NewTracer(2)
	if got := tr.Render(5); got != "(no traces)\n" {
		t.Fatalf("empty render: %q", got)
	}
}
