package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestTracerHierarchyAndRender(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("query", "sql=SELECT 1")
	plan := root.Child("plan")
	plan.Finish()
	fan := root.Child("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := fan.Child("task")
			sp.Finish()
		}()
	}
	wg.Wait()
	fan.Finish()
	root.Finish()

	if tr.Total() != 1 {
		t.Fatalf("traces recorded = %d, want 1", tr.Total())
	}
	got := tr.Recent(1)
	if len(got) != 1 || got[0].Name != "query" {
		t.Fatalf("recent: %+v", got)
	}
	if n := len(got[0].Children()); n != 2 {
		t.Fatalf("root children = %d, want 2", n)
	}
	text := tr.Render(1)
	for _, want := range []string{"query", "plan", "fanout", "task", "sql=SELECT 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	// Child spans are indented under the root.
	if !strings.Contains(text, "\n  plan") {
		t.Fatalf("plan not indented:\n%s", text)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Start("op" + string(rune('a'+i))).Finish()
	}
	recent := tr.Recent(10)
	if len(recent) != 3 {
		t.Fatalf("retained = %d, want 3", len(recent))
	}
	if recent[0].Name != "ope" || recent[2].Name != "opc" {
		t.Fatalf("order wrong: %s .. %s", recent[0].Name, recent[2].Name)
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
}

func TestTracerRenderEmpty(t *testing.T) {
	tr := NewTracer(2)
	if got := tr.Render(5); got != "(no traces)\n" {
		t.Fatalf("empty render: %q", got)
	}
}
