package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// idGen hands out process-unique span/trace IDs. The whole simulated
// landscape runs in one process, so a counter is collision-free; IDs are
// rendered in hex to look like what a wire-format tracer would carry.
var idGen atomic.Uint64

func nextID() uint64 { return idGen.Add(1) }

// SpanContext is the portable identity of a span — what crosses process
// (here: netsim message) boundaries so a remote handler can parent its
// own spans into the caller's trace. The zero value means "no trace".
type SpanContext struct {
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
}

// Valid reports whether the context identifies a live trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// Span is one timed operation in a hierarchical trace: query → plan →
// per-partition task → log append. Spans are created through a Tracer
// (roots) or a parent span (children); both are safe on nil receivers so
// tracing can be compiled in everywhere and enabled by supplying a
// Tracer. Children may be created from multiple goroutines (fan-out).
//
// Every span carries a TraceID (shared by all spans of one causal
// operation, including spans recorded by remote services) and its own
// SpanID; ParentID links remote continuation roots back to the span that
// issued the request.
type Span struct {
	Name  string
	Attrs []string
	Begin time.Time

	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for trace origins

	mu       sync.Mutex
	end      time.Time
	children []*Span
	tracer   *Tracer // set on roots; Finish records the trace
}

// Child opens a sub-span sharing the trace ID.
func (s *Span) Child(name string, attrs ...string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		Name: name, Attrs: attrs, Begin: time.Now(),
		TraceID: s.TraceID, SpanID: nextID(), ParentID: s.SpanID,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Context returns the span's propagation context (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// Finish closes the span; finishing a root records the trace in its
// tracer's ring buffer.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	t := s.tracer
	s.mu.Unlock()
	if t != nil {
		t.record(s)
	}
}

// Duration returns the span's elapsed time (up to now if unfinished).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.Begin)
	}
	return s.end.Sub(s.Begin)
}

// Children returns a copy of the child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Tracer produces root spans and retains the most recent finished traces
// in a ring buffer for the shell renderer and the /traces endpoint. Safe
// on a nil receiver (tracing disabled).
//
// One trace may span several recorded roots: the origin (Start) plus any
// remote continuations (StartRemote) recorded by services that received
// the origin's SpanContext over the network. The renderers stitch them
// back together by TraceID/ParentID, so evicting the origin from the
// ring never hides or double-counts its surviving remote children — they
// render once, marked detached.
type Tracer struct {
	mu    sync.Mutex
	ring  []*Span
	next  int
	total atomic.Int64
}

// NewTracer returns a tracer retaining up to capacity finished traces.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Span, 0, capacity)}
}

// Start opens a trace-origin root span; Finish on it records the whole
// trace.
func (t *Tracer) Start(name string, attrs ...string) *Span {
	if t == nil {
		return nil
	}
	id := nextID()
	return &Span{Name: name, Attrs: attrs, Begin: time.Now(), TraceID: id, SpanID: id, tracer: t}
}

// StartRemote opens a root span that continues a trace started elsewhere:
// it adopts the caller's TraceID and parents itself under the caller's
// span. This is what a service invokes when a netsim message arrives
// carrying a SpanContext. With an invalid context it degrades to Start.
func (t *Tracer) StartRemote(name string, parent SpanContext, attrs ...string) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.Start(name, attrs...)
	}
	return &Span{
		Name: name, Attrs: attrs, Begin: time.Now(),
		TraceID: parent.TraceID, SpanID: nextID(), ParentID: parent.SpanID,
		tracer: t,
	}
}

func (t *Tracer) record(root *Span) {
	t.total.Add(1)
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, root)
	} else {
		t.ring[t.next] = root
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.mu.Unlock()
}

// Total returns the number of traces recorded since creation.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Recent returns up to n finished root spans, most recent first. Remote
// continuation roots count as entries of their own here; use Render or
// RenderTrace for the stitched view.
func (t *Tracer) Recent(n int) []*Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, n)
	for i := 0; i < len(t.ring) && len(out) < n; i++ {
		// Walk backwards from the slot before next (the newest entry).
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if len(t.ring) < cap(t.ring) {
			// Ring not yet saturated: entries are [0, len) in order.
			idx = len(t.ring) - 1 - i
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// Trace returns every retained root belonging to one trace, oldest
// first: the origin (if still in the ring) and any remote continuations.
func (t *Tracer) Trace(traceID uint64) []*Span {
	if t == nil || traceID == 0 {
		return nil
	}
	var out []*Span
	for _, r := range t.Recent(t.ringLen()) {
		if r.TraceID == traceID {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Begin.Before(out[j].Begin) })
	return out
}

// Render formats the n most recent traces as an indented text tree — the
// shell and /traces presentation. Roots sharing a TraceID are stitched
// into one tree: remote continuations attach under the span that issued
// them, or render once as detached when that parent was evicted.
func (t *Tracer) Render(n int) string {
	roots := t.Recent(t.ringLen())
	if len(roots) == 0 {
		return "(no traces)\n"
	}
	var order []uint64
	seen := map[uint64]bool{}
	for _, r := range roots { // newest first
		if !seen[r.TraceID] {
			seen[r.TraceID] = true
			order = append(order, r.TraceID)
		}
	}
	if len(order) > n {
		order = order[:n]
	}
	var sb strings.Builder
	for i, id := range order {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(t.renderTraceLocked(id))
	}
	return sb.String()
}

// ringLen returns the ring capacity (for Recent's "everything" walks).
func (t *Tracer) ringLen() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return cap(t.ring)
}

// RenderTrace formats one trace — every retained root with this TraceID
// stitched into a single tree. Unknown IDs yield "(trace not found)".
func (t *Tracer) RenderTrace(traceID uint64) string {
	if t == nil {
		return "(no traces)\n"
	}
	out := t.renderTraceLocked(traceID)
	if out == "" {
		return fmt.Sprintf("(trace %x not found)\n", traceID)
	}
	return out
}

func (t *Tracer) renderTraceLocked(traceID uint64) string {
	roots := t.Trace(traceID)
	if len(roots) == 0 {
		return ""
	}
	// Index the remote continuations by the span they hang off.
	known := map[uint64]bool{} // every SpanID present in this trace's retained trees
	for _, r := range roots {
		walkSpans(r, func(s *Span) { known[s.SpanID] = true })
	}
	byParent := map[uint64][]*Span{}
	var tops []*Span // origin plus continuations whose parent was evicted
	for _, r := range roots {
		if r.ParentID != 0 && known[r.ParentID] {
			byParent[r.ParentID] = append(byParent[r.ParentID], r)
		} else {
			tops = append(tops, r)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %x\n", traceID)
	for _, r := range tops {
		detached := r.ParentID != 0 // parent span evicted from the ring
		renderSpan(&sb, r, 1, byParent, detached)
	}
	return sb.String()
}

func walkSpans(s *Span, fn func(*Span)) {
	fn(s)
	for _, c := range s.Children() {
		walkSpans(c, fn)
	}
}

func renderSpan(sb *strings.Builder, s *Span, depth int, byParent map[uint64][]*Span, detached bool) {
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "%s %.3fms", s.Name, float64(s.Duration())/float64(time.Millisecond))
	if len(s.Attrs) > 0 {
		fmt.Fprintf(sb, " [%s]", strings.Join(s.Attrs, " "))
	}
	if detached {
		sb.WriteString(" (detached: parent evicted)")
	}
	sb.WriteString("\n")
	for _, c := range s.Children() {
		renderSpan(sb, c, depth+1, byParent, false)
	}
	for _, r := range byParent[s.SpanID] {
		renderSpan(sb, r, depth+1, byParent, false)
	}
}
