package stats

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation in a hierarchical trace: query → plan →
// per-partition task → log append. Spans are created through a Tracer
// (roots) or a parent span (children); both are safe on nil receivers so
// tracing can be compiled in everywhere and enabled by supplying a
// Tracer. Children may be created from multiple goroutines (fan-out).
type Span struct {
	Name  string
	Attrs []string
	Begin time.Time

	mu       sync.Mutex
	end      time.Time
	children []*Span
	tracer   *Tracer // set on roots; Finish records the trace
}

// Child opens a sub-span.
func (s *Span) Child(name string, attrs ...string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Attrs: attrs, Begin: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish closes the span; finishing a root records the trace in its
// tracer's ring buffer.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	t := s.tracer
	s.mu.Unlock()
	if t != nil {
		t.record(s)
	}
}

// Duration returns the span's elapsed time (up to now if unfinished).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.Begin)
	}
	return s.end.Sub(s.Begin)
}

// Children returns a copy of the child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Tracer produces root spans and retains the most recent finished traces
// in a ring buffer for the shell renderer and the /traces endpoint. Safe
// on a nil receiver (tracing disabled).
type Tracer struct {
	mu    sync.Mutex
	ring  []*Span
	next  int
	total atomic.Int64
}

// NewTracer returns a tracer retaining up to capacity finished traces.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Span, 0, capacity)}
}

// Start opens a root span; Finish on it records the whole trace.
func (t *Tracer) Start(name string, attrs ...string) *Span {
	if t == nil {
		return nil
	}
	return &Span{Name: name, Attrs: attrs, Begin: time.Now(), tracer: t}
}

func (t *Tracer) record(root *Span) {
	t.total.Add(1)
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, root)
	} else {
		t.ring[t.next] = root
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.mu.Unlock()
}

// Total returns the number of traces recorded since creation.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Recent returns up to n finished traces, most recent first.
func (t *Tracer) Recent(n int) []*Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, n)
	for i := 0; i < len(t.ring) && len(out) < n; i++ {
		// Walk backwards from the slot before next (the newest entry).
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if len(t.ring) < cap(t.ring) {
			// Ring not yet saturated: entries are [0, len) in order.
			idx = len(t.ring) - 1 - i
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// Render formats the n most recent traces as an indented text tree — the
// shell and /traces presentation.
func (t *Tracer) Render(n int) string {
	traces := t.Recent(n)
	if len(traces) == 0 {
		return "(no traces)\n"
	}
	var sb strings.Builder
	for i, root := range traces {
		if i > 0 {
			sb.WriteString("\n")
		}
		renderSpan(&sb, root, 0)
	}
	return sb.String()
}

func renderSpan(sb *strings.Builder, s *Span, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "%s %.3fms", s.Name, float64(s.Duration())/float64(time.Millisecond))
	if len(s.Attrs) > 0 {
		fmt.Fprintf(sb, " [%s]", strings.Join(s.Attrs, " "))
	}
	sb.WriteString("\n")
	for _, c := range s.Children() {
		renderSpan(sb, c, depth+1)
	}
}
