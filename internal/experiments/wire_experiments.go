package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/pgwire"
	"repro/internal/sqlexec"
	"repro/internal/stats"
)

// E22WireLoad — the web-scale front door: a PostgreSQL wire-protocol
// server with admission control in front of one engine, driven by the
// loadgen harness over hundreds of concurrent connections with a mixed
// point-lookup/aggregate/ingest workload. The claims under test: latency
// quantiles (p50/p99/p999) come out of the stats pipeline per op class;
// overload surfaces as coded admission rejections, never as hangs or bare
// errors; and a graceful drain under live traffic finishes every
// in-flight query — zero dropped responses.
func E22WireLoad(s Scale) *Table {
	t := &Table{
		ID:     "E22",
		Title:  "wire protocol: mixed load over concurrent connections, admission control, graceful drain",
		Claim:  "N concurrent wire connections get per-op p50/p99/p999 through the stats pipeline; overload rejects with SQLSTATE 53xxx instead of hanging; drain drops zero responses",
		Header: []string{"op", "count", "errors", "p50", "p99", "p999"},
	}

	// 125 connections per scale node: Full (8 nodes) drives 1000
	// concurrent connections, Small 500.
	conns := 125 * s.Nodes
	duration := 2 * time.Second
	if s.Rows <= 1000 { // test scale: keep the harness fast
		conns = 64
		duration = 500 * time.Millisecond
	}

	eng := sqlexec.NewEngine()
	obs := stats.NewRegistry()
	srv, err := pgwire.Serve(pgwire.EngineBackend{Engine: eng}, pgwire.Config{
		Addr: "127.0.0.1:0",
		// Headroom over the steady-state fleet: the overload probe dials
		// its connections while the server is still reaping the first
		// fleet's sockets.
		MaxConns: 2 * conns,
		Obs:      obs,
	})
	if err != nil {
		panic(err)
	}

	rep, err := pgwire.RunLoad(pgwire.LoadConfig{
		Addr:     srv.Addr().String(),
		Conns:    conns,
		Duration: duration,
		SeedRows: s.Rows,
	})
	if err != nil {
		srv.Close()
		panic(err)
	}

	for _, op := range []string{pgwire.OpPoint, pgwire.OpAgg, pgwire.OpInsert} {
		o := rep.PerOp[op]
		t.AddRow(op, fmt.Sprint(o.Count), fmt.Sprint(o.Errors),
			fmt.Sprintf("%.2fms", o.P50), fmt.Sprintf("%.2fms", o.P99), fmt.Sprintf("%.2fms", o.P999))
	}
	t.Note("%d concurrent connections, %v steady state: %d queries (%.0f qps), %d admission rejections, %d protocol errors",
		rep.Conns, rep.Wall.Round(time.Millisecond), rep.Queries, rep.QPS, rep.Rejections, rep.ProtocolErrors)
	if rep.ProtocolErrors > 0 {
		t.Note("PROTOCOL ERRORS: %d — transport failures are never an acceptable overload response", rep.ProtocolErrors)
	}

	// Overload probe: pile aggregate-only traffic on top of the same
	// server. The only acceptable failure is a coded 53xxx rejection — a
	// hang would surface here as a stalled run, a bare error as a
	// protocol error.
	overload, err := pgwire.RunLoad(pgwire.LoadConfig{
		Addr:      srv.Addr().String(),
		Conns:     32,
		Duration:  300 * time.Millisecond,
		NoSetup:   true,
		AggWeight: 100,
	})
	if err != nil {
		srv.Close()
		panic(err)
	}
	t.Note("overload probe (32 conns, agg-only): %d queries, %d rejections, %d protocol errors",
		overload.Queries, overload.Rejections, overload.ProtocolErrors)

	// Graceful drain under live traffic: shut the server down mid-burst.
	// Every response the drain-phase client received before its 57P01 must
	// correspond to a committed row — zero dropped responses.
	drainClient, err := pgwire.Dial(pgwire.ClientConfig{Addr: srv.Addr().String(), User: "drain"})
	if err != nil {
		srv.Close()
		panic(err)
	}
	eng.MustQuery(`CREATE TABLE drain_probe (n INT)`)
	confirmed := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100000; i++ {
			if _, err := drainClient.Query(`INSERT INTO drain_probe VALUES ($1)`, i); err != nil {
				return
			}
			confirmed++
		}
	}()
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		panic(err)
	}
	<-done
	drainClient.Close()
	durable := eng.MustQuery(`SELECT COUNT(*) FROM drain_probe`).Rows[0][0].AsInt()
	dropped := int64(confirmed) - durable
	if dropped < 0 {
		dropped = 0 // a row can commit after the response was cut; never the reverse
	}
	t.Note("graceful drain in %v under live ingest: %d confirmed responses, %d durable rows, %d dropped (claim: 0)",
		time.Since(start).Round(time.Millisecond), confirmed, durable, dropped)

	snap := obs.Snapshot()
	drained := snap.CounterTotal("pgwire_drained_conns_total")
	rejTotal := snap.CounterTotal("pgwire_admission_rejections_total")
	t.Note("server-side: %d connections total, %d drained with 57P01, %d admission rejections (53400)",
		snap.CounterTotal("pgwire_connections_total"), drained, rejTotal)
	return t
}
