package experiments

import (
	"fmt"
	"time"

	"repro/internal/pgwire"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/txn"
)

// E24HTAPIngestMerge — the CH-benCHmark-style freshness-vs-interference
// experiment: wire-protocol ingest ramps up in steps against a steady
// analytic workload on the same tables, with the background merge daemon
// compacting the delta underneath both. The claims under test: analytic
// queries keep answering (bounded p99 growth, zero errors, zero wrong
// results) as write throughput scales; merges run in the background off
// the commit path (merge counter advances while ingest continues); and
// the commit pipeline's counters (txn_commits_total, group-commit sizes,
// merge_background_total) flow through the stats pipeline.
func E24HTAPIngestMerge(s Scale) *Table {
	t := &Table{
		ID:     "E24",
		Title:  "HTAP under write scale: ingest ramp vs analytic p99 with background merges",
		Claim:  "analytic p99 degrades boundedly and results stay exact while wire ingest ramps and the merge daemon compacts the delta off the commit path",
		Header: []string{"step", "ingest_conns", "ingest_qps", "agg_count", "agg_p99", "merges", "delta_rows"},
	}

	// Ramp shape per scale: Full drives 3 steps up to 12 writers/node,
	// the tiny test scale two short steps.
	steps := []int{s.Nodes, 4 * s.Nodes, 12 * s.Nodes}
	stepDur := 700 * time.Millisecond
	mergeThreshold := 512
	if s.Rows <= 2000 { // test/bench scale: keep the harness fast
		steps = []int{2, 8}
		stepDur = 250 * time.Millisecond
		mergeThreshold = 256
	}

	eng := sqlexec.NewEngine()
	merger := eng.Mgr.StartMerger(txn.MergerConfig{Threshold: mergeThreshold, Interval: 2 * time.Millisecond})
	defer merger.Stop()

	obs := stats.NewRegistry()
	// Queue depth covers the whole fleet: this experiment measures MVCC
	// commit-pipeline interference, not admission control (E22 covers
	// that), so a rejected insert would only muddy the exactness check.
	srv, err := pgwire.Serve(pgwire.EngineBackend{Engine: eng}, pgwire.Config{
		Addr:       "127.0.0.1:0",
		MaxConns:   4 * steps[len(steps)-1],
		QueueDepth: 8 * steps[len(steps)-1],
		Obs:        obs,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	before := stats.Default.Snapshot()

	// Seed through the wire, then ramp. Each step runs a mixed fleet:
	// ~85% ingest, ~15% analytic aggregates over the ingest target's
	// sibling table — same engine, same commit pipeline, same merges.
	var totalInserts, totalInsertErrs, totalAggErrs, totalRejections int64
	firstP99, lastP99 := 0.0, 0.0
	for i, conns := range steps {
		rep, err := pgwire.RunLoad(pgwire.LoadConfig{
			Addr:         srv.Addr().String(),
			Conns:        conns,
			Duration:     stepDur,
			SeedRows:     s.Rows,
			NoSetup:      i > 0, // seed once
			InsertWeight: 85,
			AggWeight:    15,
		})
		if err != nil {
			panic(err)
		}
		ins, agg := rep.PerOp[pgwire.OpInsert], rep.PerOp[pgwire.OpAgg]
		totalInserts += ins.Count
		totalInsertErrs += ins.Errors
		totalAggErrs += agg.Errors
		totalRejections += rep.Rejections
		if i == 0 {
			firstP99 = agg.P99
		}
		lastP99 = agg.P99
		deltaRows := 0
		for _, name := range eng.Mgr.TableNames() {
			if tab, ok := eng.Mgr.Table(name); ok {
				deltaRows += tab.DeltaRows()
			}
		}
		ingestQPS := float64(ins.Count) / rep.Wall.Seconds()
		t.AddRow(fmt.Sprint(i+1), fmt.Sprint(conns), fmt.Sprintf("%.0f", ingestQPS),
			fmt.Sprint(agg.Count), fmt.Sprintf("%.2fms", agg.P99),
			fmt.Sprint(merger.Merges()), fmt.Sprint(deltaRows))
	}

	// Zero wrong results: every acknowledged insert is durable and exactly
	// counted — the analytic side never reads a torn or half-merged state.
	durable := eng.MustQuery(`SELECT COUNT(*) FROM loadgen_kv`).Rows[0][0].AsInt()
	want := int64(s.Rows) + totalInserts - totalInsertErrs
	lost := want - durable
	if lost < 0 {
		lost = 0 // an insert can land after its response was cut; never the reverse
	}
	t.Note("correctness: %d seed + %d acked inserts → %d durable rows, %d lost (claim: 0); %d analytic errors (claim: 0), %d rejections",
		s.Rows, totalInserts-totalInsertErrs, durable, lost, totalAggErrs, totalRejections)

	growth := 0.0
	if firstP99 > 0 {
		growth = lastP99 / firstP99
	}
	t.Note("interference: analytic p99 %.2fms → %.2fms across the ramp (%.1fx growth)", firstP99, lastP99, growth)

	// The analytic plan itself, profiled mid-state through EXPLAIN ANALYZE.
	if _, prof, err := eng.AnalyzeSQL(`SELECT region, COUNT(*), SUM(amount) FROM loadgen_orders GROUP BY region`); err == nil && prof != nil && prof.Root != nil {
		t.Note("explain analyze (post-ramp aggregate): root %s wall=%v", prof.Root.Label, prof.Root.Wall().Round(time.Microsecond))
	}

	// Commit-pipeline counters through the default stats registry — the
	// same snapshot the cluster stats service and /metrics expose.
	after := stats.Default.Snapshot()
	commits := after.CounterTotal("txn_commits_total") - before.CounterTotal("txn_commits_total")
	groups := after.CounterTotal("txn_group_commits_total") - before.CounterTotal("txn_group_commits_total")
	bgMerges := after.CounterTotal("merge_background_total") - before.CounterTotal("merge_background_total")
	conflicts := after.CounterTotal("txn_conflicts_total") - before.CounterTotal("txn_conflicts_total")
	avgBatch := 0.0
	if groups > 0 {
		avgBatch = float64(commits) / float64(groups)
	}
	t.Note("pipeline: %d commits in %d group batches (avg %.1f/batch), %d background merges, %d conflicts, %d retries",
		commits, groups, avgBatch, bgMerges, conflicts,
		after.CounterTotal("txn_retries_total")-before.CounterTotal("txn_retries_total"))
	return t
}
