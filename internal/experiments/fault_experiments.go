package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/soe"
	"repro/internal/value"
)

// E19ChaosFailover — §IV-B: the SOE keeps answering under node crashes and
// link partitions. Every catalog query against a wounded cluster must
// either match the healthy answer exactly (replica failover) or come back
// explicitly labelled partial with its completeness fraction — a bare
// error is a reproduction failure. The run also seals a shared-log unit
// mid-stream to force the append path through epoch adoption and hole
// repair.
func E19ChaosFailover(s Scale) *Table {
	t := &Table{
		ID:     "E19",
		Title:  "chaos: query and commit availability under crashes and partitions",
		Claim:  "replica failover and log repair keep the scale-out engine answering — degraded results are labelled, never wrong (§IV-B)",
		Header: []string{"fault round", "queries", "full (match healthy)", "partial (labelled)", "bare errors"},
	}
	nodes := s.Nodes
	if nodes < 3 {
		nodes = 3
	}
	c := soe.NewCluster(soe.ClusterConfig{Nodes: nodes, Mode: soe.OLTP})
	defer c.Shutdown()
	c.Coordinator.PartialResults = true
	c.Coordinator.Retry = soe.RetryPolicy{
		MaxAttempts: 3, TaskTimeout: time.Second,
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
	}
	if err := loadCluster(c, s.Rows/5, true); err != nil {
		panic(err)
	}
	for _, tbl := range []string{"orders", "items"} {
		if err := c.ReplicateTable(tbl); err != nil {
			panic(err)
		}
	}

	catalog := []string{
		`SELECT COUNT(*) FROM orders`,
		`SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region ORDER BY region`,
		`SELECT COUNT(*) FROM orders WHERE amount < 100`,
		`SELECT orders.region, SUM(items.qty) FROM orders JOIN items ON orders.id = items.order_id GROUP BY orders.region ORDER BY orders.region`,
	}
	healthy := make([]string, len(catalog))
	for i, q := range catalog {
		r, err := c.Query(q)
		if err != nil {
			panic(err)
		}
		healthy[i] = canonRows(r.Rows)
	}

	var totalFull, totalPartial, totalErrors int
	round := func(label string) {
		var full, partial, bare int
		for i, q := range catalog {
			r, err := c.Query(q)
			switch {
			case err != nil:
				bare++
			case r.Partial:
				if r.Completeness <= 0 || r.Completeness >= 1 || len(r.Lost) == 0 {
					bare++ // mislabelled degradation counts as a failure
				} else {
					partial++
				}
			case canonRows(r.Rows) == healthy[i]:
				full++
			default:
				bare++ // a "complete" answer that disagrees is worst of all
			}
		}
		totalFull += full
		totalPartial += partial
		totalErrors += bare
		t.AddRow(label, fmt.Sprint(len(catalog)), fmt.Sprint(full), fmt.Sprint(partial), fmt.Sprint(bare))
	}

	round("none (baseline)")
	for i := 0; i < len(c.Nodes); i++ {
		victim := c.Nodes[i].Name
		c.Net.Crash(victim)
		round("crash " + victim)
		c.Net.Recover(victim)
	}
	c.Net.Partition(c.Coordinator.Name, c.Nodes[0].Name)
	round("partition v2dqp ↔ " + c.Nodes[0].Name)
	c.Net.Heal(c.Coordinator.Name, c.Nodes[0].Name)

	// Losing a primary AND its replica at once exceeds the replication
	// factor: those answers must degrade to labelled partials, not errors.
	c.Net.Crash(c.Nodes[0].Name)
	c.Net.Crash(c.Nodes[1].Name)
	round(fmt.Sprintf("crash %s + %s", c.Nodes[0].Name, c.Nodes[1].Name))
	c.Net.Recover(c.Nodes[0].Name)
	c.Net.Recover(c.Nodes[1].Name)

	// Shared-log repair: seal one stripe unit under the broker, then keep
	// committing. The append path must adopt the new epoch and fill any
	// abandoned hole instead of wedging the commit pipeline.
	c.Log.SealStripeUnit(0, 0)
	commitsOK := 0
	for i := 0; i < 8; i++ {
		row := value.Row{value.String(fmt.Sprintf("OCHAOS%02d", i)), value.String("EMEA"), value.Float(1)}
		if _, err := c.Insert("orders", row); err == nil {
			commitsOK++
		}
	}

	snap := c.Obs.Snapshot()
	counter := func(name string) int64 { return snap.CounterTotal(name) }
	t.Note("commits after mid-stream unit seal: %d/8 succeeded (log recoveries: %d, repairs: %d, fills: %d, append retries: %d)",
		commitsOK, counter("soe_commit_log_recoveries_total"), counter("sharedlog_repairs_total"),
		counter("sharedlog_fills_total"), counter("sharedlog_append_retries_total"))
	t.Note("fault handling: %d failovers, %d task retries, %d commit retries, %d degraded queries, %d bare errors (must be 0)",
		counter("soe_failovers_total"), counter("soe_task_retries_total"),
		counter("soe_commit_retries_total"), counter("soe_degraded_queries_total"), totalErrors)
	t.Note("every wounded-cluster answer was either exact (%d) or labelled partial (%d)", totalFull, totalPartial)
	return t
}

// canonRows renders a result as an order-insensitive canonical string so
// failed-over answers can be compared against the healthy baseline.
func canonRows(rows []value.Row) string {
	keys := make([]string, 0, len(rows))
	for _, r := range rows {
		keys = append(keys, r.Key())
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}
