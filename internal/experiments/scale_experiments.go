package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/columnstore"
	"repro/internal/distql"
	"repro/internal/federation"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/netsim"
	"repro/internal/rdd"
	"repro/internal/sharedlog"
	"repro/internal/soe"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

// E7SharedLog — Figure 3 / §IV-B: the distributed shared log decouples
// transactions from query processing; striping scales appends; OLTP nodes
// see writes synchronously while OLAP nodes trade freshness.
func E7SharedLog(s Scale) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "shared-log append scaling and node freshness",
		Claim:  "the CORFU-style log scales by striping; OLTP applies synchronously, OLAP with bounded staleness (§IV-B)",
		Header: []string{"configuration", "appends", "throughput (appends/ms)", "note"},
	}
	n := s.Rows
	payload := []byte("order-payload-0123456789")

	for _, cfg := range []struct {
		stripes, replicas, writers int
	}{{1, 1, 8}, {4, 1, 8}, {8, 1, 8}, {4, 3, 8}} {
		log := sharedlog.NewInMemory(cfg.stripes, cfg.replicas)
		start := time.Now()
		var wg sync.WaitGroup
		per := n / cfg.writers
		for w := 0; w < cfg.writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					log.Append(payload)
				}
			}()
		}
		wg.Wait()
		d := time.Since(start)
		t.AddRow(fmt.Sprintf("%d stripes × %d replicas", cfg.stripes, cfg.replicas),
			fmt.Sprint(per*cfg.writers),
			fmt.Sprintf("%.0f", float64(per*cfg.writers)/(d.Seconds()*1000)),
			fmt.Sprintf("%d writers", cfg.writers))
	}

	// Freshness: OLTP vs OLAP visibility after a burst of commits.
	cluster := soe.NewCluster(soe.ClusterConfig{Nodes: 2, Mode: soe.OLTP})
	defer cluster.Shutdown()
	schema := columnstore.Schema{{Name: "id", Kind: value.KindString}, {Name: "v", Kind: value.KindFloat}}
	cluster.CreateTable("freshness", schema, "id", 4)
	for i := 0; i < 200; i++ {
		cluster.Insert("freshness", value.Row{value.String(fmt.Sprint(i)), value.Float(1)})
	}
	r, _ := cluster.Query(`SELECT COUNT(*) FROM freshness`)
	t.Note("OLTP nodes: %s/200 rows visible immediately after commit (synchronous apply)", r.Rows[0][0].AsString())

	olap := soe.NewCluster(soe.ClusterConfig{Nodes: 2, Mode: soe.OLAP})
	defer olap.Shutdown()
	olap.CreateTable("freshness", schema, "id", 4)
	for i := 0; i < 200; i++ {
		olap.Insert("freshness", value.Row{value.String(fmt.Sprint(i)), value.Float(1)})
	}
	r, _ = olap.Query(`SELECT COUNT(*) FROM freshness`)
	stale := r.Rows[0][0].AsInt()
	olap.SyncOLAP()
	r, _ = olap.Query(`SELECT COUNT(*) FROM freshness`)
	t.Note("OLAP nodes: %d/200 before polling, %s/200 after one poll cycle (availability over freshness)", stale, r.Rows[0][0].AsString())
	return t
}

// loadCluster fills an SOE cluster with the standard two-table workload.
// bulk=true loads directly into node storage (what E8/E9 measure is the
// query path, not ingestion).
func loadCluster(c *soe.Cluster, orders int, coPartition bool) error {
	return loadClusterMode(c, orders, coPartition, false)
}

func loadClusterMode(c *soe.Cluster, orders int, coPartition, bulk bool) error {
	oSchema := columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "region", Kind: value.KindString},
		{Name: "amount", Kind: value.KindFloat},
	}
	iSchema := columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "order_id", Kind: value.KindString},
		{Name: "qty", Kind: value.KindInt},
	}
	if _, err := c.CreateTable("orders", oSchema, "id", 2*len(c.Nodes)); err != nil {
		return err
	}
	ikey := "id"
	if coPartition {
		ikey = "order_id"
	}
	if _, err := c.CreateTable("items", iSchema, ikey, 2*len(c.Nodes)); err != nil {
		return err
	}
	regions := []string{"EMEA", "AMER", "APJ"}
	var orows, irows []value.Row
	flush := func() error {
		if len(orows) == 0 {
			return nil
		}
		if bulk {
			if err := c.BulkLoadLocal("orders", orows); err != nil {
				return err
			}
			if err := c.BulkLoadLocal("items", irows); err != nil {
				return err
			}
			orows, irows = orows[:0], irows[:0]
			return nil
		}
		if _, err := c.Insert("orders", orows...); err != nil {
			return err
		}
		if _, err := c.Insert("items", irows...); err != nil {
			return err
		}
		orows, irows = orows[:0], irows[:0]
		return nil
	}
	for i := 0; i < orders; i++ {
		oid := fmt.Sprintf("O%08d", i)
		orows = append(orows, value.Row{value.String(oid), value.String(regions[i%3]), value.Float(float64(i % 997))})
		irows = append(irows, value.Row{value.String(oid + "-I0"), value.String(oid), value.Int(int64(i%5 + 1))})
		if len(orows) >= 2000 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// E8ScaleOutSpeedup — §IV-A [13]: tailored distributed plans give strong
// speedups; join strategy matters.
func E8ScaleOutSpeedup(s Scale) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "distributed query speedup vs. node count; join strategies",
		Claim:  "plans tailored for clustered execution yield strong speedups (§IV-A, [13])",
		Header: []string{"nodes / strategy", "query", "time", "speedup vs 1 node"},
	}
	// Node tasks run truly in parallel on a real cluster; this harness may
	// run on a single core, so each node's task is measured serially and
	// the simulated cluster time is max(per-node compute) + network.
	aggQ := `SELECT region, COUNT(*), SUM(amount), AVG(amount) FROM orders GROUP BY region`
	const linkLatency = 200 * time.Microsecond
	var base time.Duration
	rows := s.Rows * 10
	st0, err0 := sqlexec.Parse(aggQ)
	if err0 != nil {
		panic(err0)
	}
	plan, err0 := distql.Rewrite(st0.(*sqlexec.SelectStmt))
	if err0 != nil {
		panic(err0)
	}
	nodeCounts := []int{1, 2, 4}
	if s.Nodes > 4 {
		nodeCounts = append(nodeCounts, s.Nodes)
	}
	for _, nodes := range nodeCounts {
		c := soe.NewCluster(soe.ClusterConfig{Nodes: nodes, Mode: soe.OLTP})
		if err := loadClusterMode(c, rows, false, true); err != nil {
			panic(err)
		}
		hosting := c.Catalog.NodesOf("orders")
		var worst time.Duration
		var batches [][]value.Row
		for rep := 0; rep < 3; rep++ { // best-of-3 per node, take the max node
			var repWorst time.Duration
			batches = batches[:0]
			for _, node := range hosting {
				n, _ := c.Manager.Node(node)
				st := time.Now()
				res, err := n.Engine().Query(plan.LocalSQL)
				if err != nil {
					panic(err)
				}
				d := time.Since(st)
				if d > repWorst {
					repWorst = d
				}
				batches = append(batches, res.Rows)
			}
			if rep == 0 || repWorst < worst {
				worst = repWorst
			}
		}
		st := time.Now()
		plan.MergePartials(batches)
		merge := time.Since(st)
		sim := worst + merge + 2*linkLatency
		if nodes == 1 {
			base = sim
		}
		t.AddRow(fmt.Sprintf("%d nodes", nodes), fmt.Sprintf("group-by agg over %d rows", rows), ms(sim), ratio(base.Seconds(), sim.Seconds()))
		c.Shutdown()
	}

	// Join strategies at fixed size.
	c := soe.NewCluster(soe.ClusterConfig{Nodes: 4, Mode: soe.OLTP, Net: netsim.Config{Latency: 200 * time.Microsecond}})
	defer c.Shutdown()
	if err := loadCluster(c, s.Rows/2, true); err != nil {
		panic(err)
	}
	joinQ := `SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region`
	for _, strat := range []distql.Strategy{distql.StrategyColocated, distql.StrategyBroadcast, distql.StrategyRepartition} {
		c.Net.ResetStats()
		st := time.Now()
		if _, _, err := c.Coordinator.ForceStrategy(joinQ, strat); err != nil {
			panic(err)
		}
		d := time.Since(st)
		_, bytes := c.Net.Stats()
		t.AddRow("4 nodes / "+strat.String(), "orders ⋈ items", ms(d), fmt.Sprintf("%d wire bytes", bytes))
	}
	_, chosen, _ := c.Coordinator.Query(joinQ)
	t.Note("the optimizer picks %s for the co-partitioned join", chosen.Strategy)
	return t
}

// E9ScaleUpVsOut — §II-I [7]: most volumes fit one big server; scale-out
// pays coordination overhead until data grows past a crossover.
func E9ScaleUpVsOut(s Scale) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "scale-up (one node) vs. scale-out (cluster) across data sizes",
		Claim:  "moderate volumes favor scale-up; the crossover to scale-out comes with data growth (§II-I, [7])",
		Header: []string{"rows", "scale-up (1 node)", fmt.Sprintf("scale-out (%d nodes)", s.Nodes), "winner"},
	}
	aggQ := `SELECT region, COUNT(*), SUM(amount), AVG(amount) FROM orders GROUP BY region`
	for _, rows := range []int{s.Rows / 10, s.Rows, s.Rows * 4, s.Rows * 16} {
		up := soe.NewCluster(soe.ClusterConfig{Nodes: 1, Mode: soe.OLTP})
		loadClusterMode(up, rows, false, true)
		out := soe.NewCluster(soe.ClusterConfig{Nodes: s.Nodes, Mode: soe.OLTP, Net: netsim.Config{Latency: 300 * time.Microsecond}})
		loadClusterMode(out, rows, false, true)
		bench := func(c *soe.Cluster) time.Duration {
			best := time.Duration(1 << 62)
			for r := 0; r < 3; r++ {
				st := time.Now()
				c.Coordinator.Query(aggQ)
				if d := time.Since(st); d < best {
					best = d
				}
			}
			return best
		}
		dUp, dOut := bench(up), bench(out)
		winner := "scale-up"
		if dOut < dUp {
			winner = "scale-out"
		}
		t.AddRow(fmt.Sprint(rows), ms(dUp), ms(dOut), winner)
		up.Shutdown()
		out.Shutdown()
	}
	t.Note("the crossover point moves with the link latency: coordination overhead dominates small data")
	return t
}

// E10HadoopPaths — §IV-C: the three integration paths answer the same
// question with different latency/transfer profiles.
func E10HadoopPaths(s Scale) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "three HDFS integration paths (file/MapReduce, RDD wrap, federated SQL)",
		Claim:  "data can be consumed via standard Hadoop, Spark-style RDDs over SOE, and federated SQL (§IV-C)",
		Header: []string{"path", "result", "rows moved to client", "time"},
	}
	n := s.Rows
	// Sensor CSV in HDFS: fixed 24-byte records (23 chars + newline).
	fs := hdfs.New(4, 24*512, 2)
	var buf []byte
	low := 0
	for i := 0; i < n; i++ {
		fill := i % 100
		if fill < 10 {
			low++
		}
		buf = append(buf, fmt.Sprintf("DISP-%08d,%05d,%03d\n", i, i%1000, fill)...)
	}
	if err := fs.WriteFile("/sensors/fills.csv", buf); err != nil {
		panic(err)
	}
	schema := columnstore.Schema{
		{Name: "sensor", Kind: value.KindString},
		{Name: "site", Kind: value.KindInt},
		{Name: "fill", Kind: value.KindInt},
	}

	// Path 1: plain MapReduce over the file connector.
	st := time.Now()
	job := &mapreduce.Job{
		FS: fs, Inputs: []string{"/sensors/fills.csv"}, Output: "/out/low",
		Mapper: mapreduce.LinesMapper(func(line string, emit func(k, v string)) {
			row, err := federation.ParseCSVRow(line, schema)
			if err != nil {
				return
			}
			if row[2].I < 10 {
				emit("low", "1")
			}
		}),
		Reducer: func(k string, vs []string, emit func(k, v string)) {
			emit(k, fmt.Sprint(len(vs)))
		},
	}
	if _, err := job.Run(); err != nil {
		panic(err)
	}
	kvs, _ := mapreduce.ReadResults(fs, "/out/low")
	d1 := time.Since(st)
	t.AddRow("1: MapReduce job", kvs[0].V, "1", ms(d1))

	// Path 2: RDD wrapping an SOE table with pushdown.
	cluster := soe.NewCluster(soe.ClusterConfig{Nodes: 4, Mode: soe.OLTP})
	defer cluster.Shutdown()
	cluster.CreateTable("fills", schema, "sensor", 8)
	var rows []value.Row
	for i := 0; i < n; i++ {
		rows = append(rows, value.Row{value.String(fmt.Sprintf("DISP-%08d", i)), value.Int(int64(i % 1000)), value.Int(int64(i % 100))})
		if len(rows) == 2000 {
			cluster.Insert("fills", rows...)
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		cluster.Insert("fills", rows...)
	}
	st = time.Now()
	cnt, err := rdd.FromSOETable(cluster, "fills").Where("fill < 10").Rows().Count()
	if err != nil {
		panic(err)
	}
	d2 := time.Since(st)
	t.AddRow("2: RDD over SOE (filter pushed down)", fmt.Sprint(cnt), fmt.Sprint(cnt), ms(d2))

	// Path 3: federated SQL through SDA into Hive (filter runs as a
	// MapReduce job on the Hadoop side, aggregate runs in HANA).
	eng := sqlexec.NewEngine()
	fed := federation.Attach(eng)
	hive := federation.NewHiveSource(fs)
	hive.DefineTable("fills", "/sensors/fills.csv", schema)
	fed.Register(hive)
	fed.Expose("fills", "hive", "fills")
	st = time.Now()
	r := eng.MustQuery(`SELECT COUNT(*) FROM TABLE(FED_FILLS('fill < 10')) f`)
	d3 := time.Since(st)
	t.AddRow("3: federated SQL (SDA → Hive)", r.Rows[0][0].AsString(), fmt.Sprint(fed.RowsMoved()), ms(d3))
	t.Note("all three paths agree on %d low sensors; transfer differs by path", low)
	return t
}
