package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/aging"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

// E6AgingPruning — §III: semantic aging rules prune partitions "much
// better than any approach purely based on access statistics", and the
// dependency-coupled rule enables the join split.
func E6AgingPruning(s Scale) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "partition pruning: none vs. statistics vs. semantic rules",
		Claim:  "application-defined aging rules allow better pruning than statistics (§III)",
		Header: []string{"query", "pruner", "partitions scanned", "rows scanned", "time"},
	}
	now := time.Date(2015, 4, 13, 0, 0, 0, 0, time.UTC)
	eng := sqlexec.NewEngine()
	mgr := aging.Attach(eng)
	mgr.ColdReadPenaltyMicros = 150

	eng.MustQuery(`CREATE TABLE orders (id VARCHAR, status VARCHAR, closed INT, total DOUBLE)`)
	eng.MustQuery(`CREATE TABLE invoices (id VARCHAR, order_id VARCHAR, status VARCHAR, paid INT, amount DOUBLE)`)
	rng := rand.New(rand.NewSource(8))
	n := s.Rows
	sess := eng.NewSession()
	sess.Begin()
	for i := 0; i < n; i++ {
		// 80% old closed orders (will age), 20% current open/recent.
		var status string
		var closed int64
		if i%5 != 0 {
			status = "CLOSED"
			closed = now.AddDate(-1-rng.Intn(3), 0, 0).UnixMicro()
		} else {
			status = "OPEN"
			closed = now.AddDate(0, 0, -rng.Intn(30)).UnixMicro()
		}
		oid := fmt.Sprintf("O%08d", i)
		sess.Query(`INSERT INTO orders VALUES (?, ?, ?, ?)`,
			value.String(oid), value.String(status), value.Int(closed), value.Float(float64(i)))
		istatus := "OPEN"
		if status == "CLOSED" {
			istatus = "PAID"
		}
		sess.Query(`INSERT INTO invoices VALUES (?, ?, ?, ?, ?)`,
			value.String("I"+oid), value.String(oid), value.String(istatus), value.Int(closed), value.Float(float64(i)/2))
	}
	sess.Commit()
	sess.Close()

	mgr.DefineRule(aging.Rule{Table: "orders", StatusCol: "status", ClosedStatus: "CLOSED",
		DateCol: "closed", MinAge: 90 * 24 * time.Hour, NotCurrentYear: true})
	mgr.DefineRule(aging.Rule{Table: "invoices", StatusCol: "status", ClosedStatus: "PAID",
		DateCol: "paid", MinAge: 90 * 24 * time.Hour, NotCurrentYear: true,
		DependsOn: &aging.Dependency{ParentTable: "orders", ParentKeyCol: "id", FKCol: "order_id"}})
	if _, err := mgr.RunAging(now); err != nil {
		panic(err)
	}
	eng.MustQuery(`MERGE DELTA OF orders`)
	eng.MustQuery(`MERGE DELTA OF invoices`)

	openQ := `SELECT COUNT(*) FROM orders WHERE status = 'OPEN'`
	measure := func(q string) (parts, rows int, d time.Duration) {
		st := time.Now()
		r := eng.MustQuery(q)
		return r.Stats.PartitionsScanned, r.Stats.RowsScanned, time.Since(st)
	}

	// No pruner.
	eng.Prune = nil
	p, rws, d := measure(openQ)
	t.AddRow("open orders", "none", fmt.Sprint(p), fmt.Sprint(rws), ms(d))
	// Statistics-based.
	eng.Prune = aging.StatsPrune(eng)
	p, rws, d = measure(openQ)
	t.AddRow("open orders", "statistics (min/max)", fmt.Sprint(p), fmt.Sprint(rws), ms(d))
	// Semantic.
	eng.Prune = mgr.Prune
	p, rws, d = measure(openQ)
	t.AddRow("open orders", "semantic rule", fmt.Sprint(p), fmt.Sprint(rws), ms(d))

	// The join split: open orders with their invoices.
	joinQ := `SELECT COUNT(*) FROM orders o JOIN invoices i ON i.order_id = o.id WHERE o.status = 'OPEN'`
	p, rws, d = measure(joinQ)
	t.AddRow("open orders ⋈ invoices", "semantic rule", fmt.Sprint(p), fmt.Sprint(rws), ms(d))
	if mgr.CanRestrictJoinToHot("orders", "invoices") {
		var p2, r2 int
		var d2 time.Duration
		mgr.HotOnly([]string{"orders", "invoices"}, func() error {
			p2, r2, d2 = measure(joinQ)
			return nil
		})
		t.AddRow("open orders ⋈ invoices", "rule + dependency join split", fmt.Sprint(p2), fmt.Sprint(r2), ms(d2))
	}
	return t
}
