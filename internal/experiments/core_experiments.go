package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/appbridge"
	"repro/internal/columnstore"
	"repro/internal/graph"
	"repro/internal/sqlexec"
	"repro/internal/timeseries"
	"repro/internal/value"
)

// ordersSchemaSQL creates the shared ERP-style workload table.
const ordersSchemaSQL = `CREATE TABLE orders (id INT, region VARCHAR, status VARCHAR, amount DOUBLE, yr INT)`

func loadOrders(eng *sqlexec.Engine, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"EMEA", "AMER", "APJ"}
	statuses := []string{"OPEN", "PAID", "SHIPPED", "CLOSED"}
	sess := eng.NewSession()
	defer sess.Close()
	sess.Begin()
	for i := 0; i < n; i++ {
		sess.Query(`INSERT INTO orders VALUES (?, ?, ?, ?, ?)`,
			value.Int(int64(i)),
			value.String(regions[rng.Intn(3)]),
			value.String(statuses[rng.Intn(4)]),
			value.Float(rng.Float64()*1000),
			value.Int(int64(2010+rng.Intn(5))))
	}
	sess.Commit()
}

// E1HTAPvsSplit — §II-A: one column store for OLTP and OLAP "avoids the
// expensive replication costs between OLTP and OLAP systems and provides
// access for all analytic questions in real time".
func E1HTAPvsSplit(s Scale) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "HTAP single store vs. split OLTP→ETL→OLAP",
		Claim:  "combining both workloads avoids replication cost and gives real-time freshness (§II-A)",
		Header: []string{"architecture", "txns", "queries", "total time", "etl time", "avg staleness (txns)"},
	}
	const olapEvery = 20 // one analytic query per 20 transactions
	txns := s.Rows / 5

	run := func(split bool) (total, etl time.Duration, staleness float64) {
		oltp := sqlexec.NewEngine()
		oltp.MustQuery(ordersSchemaSQL)
		analytic := oltp
		var etlDur time.Duration
		if split {
			analytic = sqlexec.NewEngine()
			analytic.MustQuery(ordersSchemaSQL)
		}
		rng := rand.New(rand.NewSource(7))
		regions := []string{"EMEA", "AMER", "APJ"}
		start := time.Now()
		lastETL := 0
		var lagSum, lagN float64
		for i := 0; i < txns; i++ {
			oltp.MustQuery(`INSERT INTO orders VALUES (?, ?, 'OPEN', ?, 2014)`,
				value.Int(int64(i)), value.String(regions[rng.Intn(3)]), value.Float(rng.Float64()*100))
			if (i+1)%olapEvery == 0 {
				if split {
					// Periodic ETL refresh: every 10 analytic cycles the
					// copy is rebuilt (replication cost).
					if (i+1)%(olapEvery*10) == 0 {
						es := time.Now()
						analytic.MustQuery(`DELETE FROM orders`)
						rows := oltp.MustQuery(`SELECT * FROM orders`)
						sess := analytic.NewSession()
						sess.Begin()
						for _, r := range rows.Rows {
							sess.Query(`INSERT INTO orders VALUES (?, ?, ?, ?, ?)`, r...)
						}
						sess.Commit()
						sess.Close()
						etlDur += time.Since(es)
						lastETL = i + 1
					}
					lagSum += float64(i + 1 - lastETL)
					lagN++
				} else {
					lagN++
				}
				analytic.MustQuery(`SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region`)
			}
		}
		if lagN == 0 {
			lagN = 1
		}
		return time.Since(start), etlDur, lagSum / lagN
	}

	total, _, lag := run(false)
	t.AddRow("HTAP (one store)", fmt.Sprint(txns), fmt.Sprint(txns/olapEvery), ms(total), "0.00ms", fmt.Sprintf("%.1f", lag))
	total2, etl, lag2 := run(true)
	t.AddRow("split + ETL", fmt.Sprint(txns), fmt.Sprint(txns/olapEvery), ms(total2), ms(etl), fmt.Sprintf("%.1f", lag2))
	t.Note("HTAP answers on fresh data (0 staleness); the split system pays %s of pure replication and still reads stale data", ms(etl))
	return t
}

// E2Compression — §II-A/§II-F: dictionary compression on business data and
// "large compression factors" on sensor series.
func E2Compression(s Scale) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "compression ratios by column type",
		Claim:  "dictionary/RLE/sparse encoding compress business data; the TS codec compresses sensor data (§II-A, §II-F, §II-H)",
		Header: []string{"column", "encoding", "raw bytes", "stored bytes", "ratio"},
	}
	n := s.Rows

	addCol := func(name string, kind value.Kind, gen func(i int) value.Value, wantEnc string) {
		tab := columnstore.NewTable("c", columnstore.Schema{{Name: "v", Kind: kind}})
		rows := make([]value.Row, n)
		for i := range rows {
			rows[i] = value.Row{gen(i)}
		}
		tab.ApplyInsert(rows, 1)
		tab.Merge(2)
		col := tab.Snapshot(2).MainColumn(0)
		raw := columnstore.RawBytes(col)
		t.AddRow(name, wantEnc, fmt.Sprint(raw), fmt.Sprint(col.Bytes()), ratio(float64(raw), float64(col.Bytes())))
	}

	statuses := []string{"OPEN", "PAID", "SHIPPED", "CLOSED"}
	addCol("status (4 distinct strings)", value.KindString, func(i int) value.Value {
		return value.String(statuses[i%4])
	}, "dictionary")
	addCol("customer name (high card.)", value.KindString, func(i int) value.Value {
		return value.String(fmt.Sprintf("customer-%08d", i%(n/2)))
	}, "dictionary")
	addCol("sorted sensor id (runny)", value.KindInt, func(i int) value.Value {
		return value.Int(int64(i / 512))
	}, "RLE")
	addCol("sequence number", value.KindInt, func(i int) value.Value {
		return value.Int(int64(1_000_000 + i))
	}, "FOR bit-pack")

	// Sparse flexible-table column: 1% non-NULL.
	positions := make([]int, 0, n/100)
	vals := make([]value.Value, 0, n/100)
	for i := 0; i < n; i += 100 {
		positions = append(positions, i)
		vals = append(vals, value.String("extra"))
	}
	sp := columnstore.NewSparseColumn(n, value.Null, positions, vals, value.KindString)
	t.AddRow("flexible col (1% filled)", "sparse", fmt.Sprint(n*16), fmt.Sprint(sp.Bytes()), ratio(float64(n*16), float64(sp.Bytes())))

	// Sensor time series.
	series := timeseries.New()
	temp := 21.5
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		if i%64 == 0 {
			temp += rng.Float64()*0.2 - 0.1
		}
		series.Append(int64(i)*1_000_000, temp)
	}
	enc := timeseries.Encode(series)
	t.AddRow("sensor series (ts+val)", "dod+XOR", fmt.Sprint(timeseries.RawSize(series)), fmt.Sprint(len(enc)), ratio(float64(timeseries.RawSize(series)), float64(len(enc))))
	return t
}

// E3MergeStableKeys — §III: application-aware key generation lets the
// delta merge keep "a stable sort order without resorting".
func E3MergeStableKeys(s Scale) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "delta→main merge: generated vs. random keys",
		Claim:  "knowing how keys are generated avoids dictionary resort and reference remapping (§III)",
		Header: []string{"key pattern", "batches", "resorts", "refs remapped", "merge time"},
	}
	n := s.Rows
	batches := 4

	run := func(stable bool) (resorts, remapped int, dur time.Duration) {
		tab := columnstore.NewTable("k", columnstore.Schema{{Name: "key", Kind: value.KindString}})
		if stable {
			tab.SetStableKeyColumn("key")
		}
		gen := appbridge.NewKeyGenerator("DOC")
		rng := rand.New(rand.NewSource(11))
		next := uint64(1)
		for b := 0; b < batches; b++ {
			rows := make([]value.Row, n/batches)
			for i := range rows {
				if stable {
					rows[i] = value.Row{value.String(gen.Next())}
				} else {
					rows[i] = value.Row{value.String(fmt.Sprintf("DOC-%012d", rng.Intn(1<<30)))}
				}
			}
			tab.ApplyInsert(rows, next)
			next++
			start := time.Now()
			st := tab.Merge(next)
			dur += time.Since(start)
			if st.DictResorted {
				resorts++
			}
			remapped += st.RemappedRefs
		}
		return resorts, remapped, dur
	}

	rs, rm, d := run(true)
	t.AddRow("generated (ascending)", fmt.Sprint(batches), fmt.Sprint(rs), fmt.Sprint(rm), ms(d))
	rs2, rm2, d2 := run(false)
	t.AddRow("random", fmt.Sprint(batches), fmt.Sprint(rs2), fmt.Sprint(rm2), ms(d2))
	t.Note("stable keys merge with zero remap work; random keys rewrite %d references and resort %d times", rm2, rs2)
	return t
}

// E4CompiledVsInterpreted — §IV-A [11][12]: compiling queries removes
// per-tuple interpretation overhead.
func E4CompiledVsInterpreted(s Scale) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "fused compiled executor vs. Volcano interpreter",
		Claim:  "compiling SQL (→C→LLVM in the paper, →fused closures here) yields significant speedups (§IV-A)",
		Header: []string{"query", "interpreted", "compiled", "speedup"},
	}
	eng := sqlexec.NewEngine()
	eng.MustQuery(ordersSchemaSQL)
	loadOrders(eng, s.Rows*4, 3)
	eng.MustQuery(`MERGE DELTA OF orders`)

	queries := []struct{ name, sql string }{
		{"Q1-like full agg", `SELECT status, COUNT(*), SUM(amount), AVG(amount) FROM orders GROUP BY status`},
		{"Q6-like filter agg", `SELECT SUM(amount) FROM orders WHERE yr = 2012 AND amount > 500`},
		{"point filter", `SELECT COUNT(*) FROM orders WHERE id = 42`},
		{"join+agg", `SELECT a.region, COUNT(*) FROM orders a JOIN orders b ON a.id = b.id WHERE a.status = 'OPEN' GROUP BY a.region`},
	}
	reps := 5
	for _, q := range queries {
		var ti, tc time.Duration
		for r := 0; r < reps; r++ {
			eng.Mode = sqlexec.ModeInterpreted
			st := time.Now()
			eng.MustQuery(q.sql)
			ti += time.Since(st)
			eng.Mode = sqlexec.ModeCompiled
			st = time.Now()
			eng.MustQuery(q.sql)
			tc += time.Since(st)
		}
		t.AddRow(q.name, ms(ti/time.Duration(reps)), ms(tc/time.Duration(reps)), ratio(ti.Seconds(), tc.Seconds()))
	}
	return t
}

// E5Pushdown — §III: in-DB currency conversion and hierarchy counting
// avoid shipping data to the application.
func E5Pushdown(s Scale) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "pushdown vs. application-layer computation",
		Claim:  "moving business logic into the engine cuts data transfer and latency (§III)",
		Header: []string{"operation", "where", "rows moved", "compute", "incl. transfer"},
	}
	// Rows crossing the application/database boundary pay a modeled
	// round-trip share; in-process execution makes the wire free, so the
	// paper's transfer effect is charged explicitly.
	const perRow = 500 * time.Microsecond
	eng := sqlexec.NewEngine()
	bridge := appbridge.Attach(eng, "EUR")
	bridge.Currency.SetRate("USD", 0, 0.9)
	bridge.Currency.SetRate("KRW", 0, 0.0007)
	bridge.Currency.SetRate("GBP", 0, 1.17)
	eng.MustQuery(`CREATE TABLE revenue (region VARCHAR, currency VARCHAR, dt INT, amount DOUBLE)`)
	rng := rand.New(rand.NewSource(5))
	regions := []string{"EMEA", "AMER", "APJ", "MEE", "LAC"}
	curs := []string{"EUR", "USD", "KRW", "GBP"}
	sess := eng.NewSession()
	sess.Begin()
	for i := 0; i < s.Rows; i++ {
		sess.Query(`INSERT INTO revenue VALUES (?, ?, 1, ?)`,
			value.String(regions[rng.Intn(len(regions))]),
			value.String(curs[rng.Intn(len(curs))]),
			value.Float(rng.Float64()*100))
	}
	sess.Commit()
	sess.Close()
	eng.MustQuery(`MERGE DELTA OF revenue`)

	st := time.Now()
	_, rowsDB, err := bridge.RevenueByRegionInDB("revenue")
	dDB := time.Since(st)
	if err != nil {
		panic(err)
	}
	st = time.Now()
	_, rowsApp, err := bridge.RevenueByRegionAppSide("revenue")
	dApp := time.Since(st)
	if err != nil {
		panic(err)
	}
	t.AddRow("currency conversion", "in-DB (CONVERT_CURRENCY)", fmt.Sprint(rowsDB), ms(dDB), ms(dDB+time.Duration(rowsDB)*perRow))
	t.AddRow("currency conversion", "application layer", fmt.Sprint(rowsApp), ms(dApp), ms(dApp+time.Duration(rowsApp)*perRow))

	// Hierarchy subtree counting.
	h := graph.NewHierarchy()
	h.Add("n0", "")
	rng2 := rand.New(rand.NewSource(6))
	nodes := s.Rows / 2
	for i := 1; i < nodes; i++ {
		h.Add(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", rng2.Intn(i)))
	}
	h.SubtreeCount("n0") // label once, outside the measurement
	st = time.Now()
	inCount := h.SubtreeCount("n0")
	dIn := time.Since(st)
	st = time.Now()
	recCount := h.SubtreeCountRecursive("n0") // the app walks the subtree
	dRec := time.Since(st)
	if inCount != recCount {
		panic("subtree counts disagree")
	}
	t.AddRow("transitive child count", "in-DB (interval label)", "1", ms(dIn), ms(dIn+perRow))
	t.AddRow("transitive child count", fmt.Sprintf("application (ships %d nodes)", recCount), fmt.Sprint(recCount), ms(dRec), ms(dRec+time.Duration(recCount)*perRow))
	t.Note("pushdown ships %d rows instead of %d for conversion and 1 instead of %d for the count (boundary cost %v/row)", rowsDB, rowsApp, recCount, perRow)
	return t
}
