package experiments

import (
	"fmt"
	"time"

	"repro/internal/pgwire"
	"repro/internal/sqlexec"
	"repro/internal/stats"
)

// E25SelfObservation — the cost of watching yourself. The monitoring
// views materialize consistent snapshots at scan time (statement-stats
// lock, connection registry, metrics registries), so a SQL client polling
// sys.m_statements competes for the same locks every query execution
// stamps. The claim under test: a 1 Hz monitoring poller over the wire
// costs the foreground workload less than 5% p99 — observation rides the
// ordinary query path instead of a privileged side channel, and still
// stays out of the way.
func E25SelfObservation(s Scale) *Table {
	t := &Table{
		ID:     "E25",
		Title:  "self-observation overhead: mixed wire load with a sys.m_statements poller",
		Claim:  "a 1 Hz monitoring poller over pgwire costs the foreground workload < 5% p99",
		Header: []string{"run", "op", "count", "p50", "p99", "p999"},
	}

	// Overhead is only measurable below saturation: a queue-limited system
	// shows scheduling noise, not observation cost, so the fleet stays
	// moderate (E22 owns the overload story).
	conns := 4 * s.Nodes
	duration := 2 * time.Second
	pollEvery := time.Second
	if s.Rows <= 1000 { // test scale: keep the harness fast, poll harder
		conns = 8
		duration = 400 * time.Millisecond
		pollEvery = 50 * time.Millisecond
	}

	run := func(withPoller bool) *pgwire.LoadReport {
		eng := sqlexec.NewEngine()
		srv, err := pgwire.Serve(pgwire.EngineBackend{Engine: eng}, pgwire.Config{
			Addr: "127.0.0.1:0", Obs: stats.NewRegistry(),
		})
		if err != nil {
			panic(err)
		}
		defer srv.Close()

		stop := make(chan struct{})
		pollDone := make(chan int)
		if withPoller {
			mon, err := pgwire.Dial(pgwire.ClientConfig{Addr: srv.Addr().String(), User: "monitor"})
			if err != nil {
				panic(err)
			}
			go func() {
				defer mon.Close()
				polls, rejected := 0, 0
				tick := time.NewTicker(pollEvery)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						t.Note("poller completed %d sys.m_statements scans (%d rejected by admission control)",
							polls, rejected)
						pollDone <- polls
						return
					case <-tick.C:
						// The poller is an ordinary client: under pressure its
						// scans wait in the same admission queue as the
						// workload, and rejections are counted, not hidden.
						if _, err := mon.Query(
							`SELECT * FROM sys.m_statements ORDER BY total_ms DESC LIMIT 5`); err == nil {
							polls++
						} else {
							rejected++
						}
						mon.Query(`SELECT * FROM sys.m_connections`)
					}
				}
			}()
		}

		rep, err := pgwire.RunLoad(pgwire.LoadConfig{
			Addr:     srv.Addr().String(),
			Conns:    conns,
			Duration: duration,
			SeedRows: s.Rows,
		})
		if err != nil {
			panic(err)
		}
		if withPoller {
			close(stop)
			<-pollDone
		}
		return rep
	}

	// Two runs per arm, keeping the one with the lower point-lookup p99:
	// on a small shared host, scheduler noise between runs is larger than
	// the effect under test, and best-of damps the tail.
	reps := 2
	if s.Rows <= 1000 {
		reps = 1
	}
	best := func(withPoller bool) *pgwire.LoadReport {
		r := run(withPoller)
		for i := 1; i < reps; i++ {
			if n := run(withPoller); n.PerOp[pgwire.OpPoint].P99 < r.PerOp[pgwire.OpPoint].P99 {
				r = n
			}
		}
		return r
	}
	base := best(false)
	observed := best(true)

	for _, r := range []struct {
		name string
		rep  *pgwire.LoadReport
	}{{"baseline", base}, {"observed", observed}} {
		for _, op := range []string{pgwire.OpPoint, pgwire.OpAgg, pgwire.OpInsert} {
			o := r.rep.PerOp[op]
			t.AddRow(r.name, op, fmt.Sprint(o.Count),
				fmt.Sprintf("%.2fms", o.P50), fmt.Sprintf("%.2fms", o.P99), fmt.Sprintf("%.2fms", o.P999))
		}
	}

	bp, op := base.PerOp[pgwire.OpPoint].P99, observed.PerOp[pgwire.OpPoint].P99
	delta := 0.0
	if bp > 0 {
		delta = (op - bp) / bp * 100
	}
	t.Note("point-lookup p99: baseline %.2fms, observed %.2fms (%+.1f%%; claim: < +5%% — a negative delta means the poller's cost sits below the run-to-run noise floor)",
		bp, op, delta)
	t.Note("baseline %.0f qps vs observed %.0f qps over %d connections",
		base.QPS, observed.QPS, conns)
	return t
}
