package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/extstore"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/value"
)

// E21ExtendedStoreTiering — §III: warm data lives in the page-based
// extended store and is scanned through a shared buffer pool whose budget
// is a small fraction of the dataset. The claim under test: with ≥5× more
// pages on disk than the pool may keep resident, full scans still answer
// correctly with a bounded slowdown over the all-hot run, and the pool's
// hit/miss/eviction counters surface in the Prometheus exposition.
func E21ExtendedStoreTiering(s Scale) *Table {
	t := &Table{
		ID:     "E21",
		Title:  "extended storage: scans through an undersized buffer pool",
		Claim:  "a warm tier holding 5x+ the pool budget answers the all-hot result with bounded slowdown; pool counters are scrapeable (§III)",
		Header: []string{"phase", "time", "rows", "page faults", "pool hits", "pool misses", "evictions"},
	}

	const nPart = 4
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE warm_orders (pk INT, region VARCHAR, status VARCHAR, amount DOUBLE) PARTITION BY RANGE(pk) VALUES (1, 2, 3)`)
	ent := eng.Cat.MustTable("warm_orders")
	rng := rand.New(rand.NewSource(21))
	regions := []string{"EMEA", "AMER", "APJ", "LATAM"}
	statuses := []string{"OPEN", "PAID", "SHIPPED", "CLOSED"}
	perPart := s.Rows / nPart
	for pi, p := range ent.Partitions {
		rows := make([]value.Row, perPart)
		for i := range rows {
			rows[i] = value.Row{
				value.Int(int64(pi)),
				value.String(regions[rng.Intn(len(regions))]),
				value.String(statuses[rng.Intn(len(statuses))]),
				value.Float(rng.Float64() * 1000),
			}
		}
		p.Table.ApplyInsert(rows, 1)
		p.Table.Merge(2)
	}
	eng.Mgr.AdvanceTo(2)

	const q = `SELECT region, COUNT(*), SUM(amount) FROM warm_orders WHERE status <> 'CLOSED' GROUP BY region`
	eng.Mode = sqlexec.ModeVectorized
	const reps = 3
	measure := func() (time.Duration, *sqlexec.Result) {
		var best time.Duration
		var last *sqlexec.Result
		for r := 0; r < reps; r++ {
			st := time.Now()
			last = eng.MustQuery(q)
			if d := time.Since(st); r == 0 || d < best {
				best = d
			}
		}
		return best, last
	}

	counters := func() (hits, misses, evicts, faults int64) {
		snap := stats.Default.Snapshot()
		return snap.CounterTotal("extstore_pool_hits_total"),
			snap.CounterTotal("extstore_pool_misses_total"),
			snap.CounterTotal("extstore_pool_evictions_total"),
			snap.CounterTotal("extstore_page_faults_total")
	}

	hotDur, hotRes := measure()
	t.AddRow("all-hot", ms(hotDur), fmt.Sprint(hotRes.Stats.RowsScanned), "0", "-", "-", "-")

	// Demote every partition, then shrink the pool so the on-disk dataset
	// is at least 5x the page budget — the scans below must page.
	store, err := extstore.OpenTemp(extstore.Options{PageSize: 1024, ChunkRows: 256, PoolPages: 8})
	if err != nil {
		panic(err)
	}
	defer store.Close()
	if _, err := store.DemoteTable(ent, eng.Mgr.MinActiveTS()); err != nil {
		panic(err)
	}
	budget := int(store.Pages() / 6)
	if budget < 2 {
		budget = 2
	}
	store.SetPoolBudget(budget)

	phase := func(name string) {
		h0, m0, e0, _ := counters()
		dur, res := measure()
		h1, m1, e1, _ := counters()
		t.AddRow(name, ms(dur), fmt.Sprint(res.Stats.RowsScanned),
			fmt.Sprint(res.Stats.PageFaults),
			fmt.Sprint(h1-h0), fmt.Sprint(m1-m0), fmt.Sprint(e1-e0))
	}
	phase("warm, cold pool")
	phase("warm, steady")

	warmDur, warmRes := measure()
	if k := len(t.Rows) - 1; warmRes.Stats.RowsScanned != hotRes.Stats.RowsScanned {
		t.Note("ROW MISMATCH at %s: warm scanned %d rows vs hot %d", t.Rows[k][0], warmRes.Stats.RowsScanned, hotRes.Stats.RowsScanned)
	}
	t.Note("dataset %d pages vs pool budget %d pages: %.1fx (claim needs >=5x)",
		store.Pages(), budget, float64(store.Pages())/float64(budget))
	t.Note("warm steady-state scan costs %s vs %s all-hot: %s slowdown (bound: <50x at this pool pressure)",
		ms(warmDur), ms(hotDur), ratio(warmDur.Seconds(), hotDur.Seconds()))

	// The same counters must be scrapeable: the /metrics exposition the
	// stats HTTP handler serves comes from this exact render.
	prom := stats.Default.Snapshot().Prometheus()
	present := 0
	for _, name := range []string{
		"extstore_pool_hits_total", "extstore_pool_misses_total",
		"extstore_pool_evictions_total", "extstore_page_faults_total",
		"extstore_resident_pages", "extstore_pool_budget_pages",
	} {
		if strings.Contains(prom, name) {
			present++
		}
	}
	t.Note("prometheus exposition: %d/6 extstore pool metrics present in /metrics", present)
	return t
}
