package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// E18VectorizedMorsels — §IV-A: the vectorized executor processes encoded
// columns in batches (dictionary-code comparison, run skipping) and
// morsel-driven parallelism overlaps per-partition fetch stalls, so one
// query saturates the node instead of scanning partitions one after the
// other.
func E18VectorizedMorsels(s Scale) *Table {
	t := &Table{
		ID:     "E18",
		Title:  "vectorized morsel-parallel scan vs. row-at-a-time",
		Claim:  "batch kernels over encoded columns plus morsel parallelism beat tuple-at-a-time execution and hide cold-partition latency (§IV-A)",
		Header: []string{"executor", "workers", "time", "morsels", "kernel hits", "speedup vs interp"},
	}

	// A range-partitioned fact table whose partitions all pay a simulated
	// cold-read stall, as aged data in the tiered landscape would.
	const nPart = 6
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE cold_orders (pk INT, region VARCHAR, status VARCHAR, amount DOUBLE) PARTITION BY RANGE(pk) VALUES (1, 2, 3, 4, 5)`)
	ent := eng.Cat.MustTable("cold_orders")
	rng := rand.New(rand.NewSource(18))
	regions := []string{"EMEA", "AMER", "APJ"}
	statuses := []string{"OPEN", "PAID", "SHIPPED", "CLOSED"}
	perPart := s.Rows / nPart
	// The stall grows with the workload so the fetch-vs-compute balance is
	// comparable at both scales (aged partitions are bigger at full scale).
	cold := 2_000 + s.Rows/10 // microseconds per partition scan
	for pi, p := range ent.Partitions {
		p.ColdReadPenalty = cold
		rows := make([]value.Row, perPart)
		for i := range rows {
			rows[i] = value.Row{
				value.Int(int64(pi)),
				value.String(regions[rng.Intn(3)]),
				value.String(statuses[rng.Intn(4)]),
				value.Float(rng.Float64() * 1000),
			}
		}
		p.Table.ApplyInsert(rows, 1)
		p.Table.Merge(2)
	}
	eng.Mgr.AdvanceTo(2)

	const q = `SELECT region, COUNT(*), SUM(amount) FROM cold_orders WHERE status <> 'CLOSED' GROUP BY region`
	const reps = 3
	measure := func(mode sqlexec.Mode, workers int) (time.Duration, *sqlexec.Result) {
		eng.Mode, eng.Workers = mode, workers
		var dur time.Duration
		var last *sqlexec.Result
		for r := 0; r < reps; r++ {
			st := time.Now()
			last = eng.MustQuery(q)
			dur += time.Since(st)
		}
		return dur / reps, last
	}

	interp, _ := measure(sqlexec.ModeInterpreted, 0)
	t.AddRow("interpreted", "1", ms(interp), "-", "-", "1.0x")
	for _, w := range []int{1, 2, nPart} {
		dur, res := measure(sqlexec.ModeVectorized, w)
		t.AddRow("vectorized", fmt.Sprint(w), ms(dur),
			fmt.Sprint(res.Stats.Morsels), fmt.Sprint(res.Stats.KernelHits),
			ratio(interp.Seconds(), dur.Seconds()))
	}
	t.Note("the dictionary kernel answers status<>'CLOSED' on codes; extra workers overlap the %d partitions' cold stalls even on one CPU", nPart)
	return t
}
