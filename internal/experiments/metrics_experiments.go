package experiments

import (
	"fmt"
	"time"

	"repro/internal/soe"
	"repro/internal/stats"
)

// E17MetricsReport — the v2stats observability subsystem: boot the full
// Figure 3 landscape, drive a mixed OLTP/OLAP workload (broker commits
// plus distributed scans and joins), and report the landscape-wide
// metrics aggregate the StatsService collects from every per-node
// registry over the network.
func E17MetricsReport(s Scale) *Table {
	t := &Table{
		ID:     "E17",
		Title:  "v2stats landscape metrics under a mixed OLTP/OLAP workload",
		Claim:  "the v2stats service aggregates per-node registries into one live landscape view (Figure 3)",
		Header: []string{"metric", "value", "detail"},
	}
	c := soe.NewCluster(soe.ClusterConfig{Nodes: s.Nodes, Mode: soe.OLTP, LogStripes: 4, LogReplicas: 2})
	defer c.Shutdown()

	if err := loadCluster(c, s.Rows/2, true); err != nil {
		panic(err)
	}
	queries := 0
	for i := 0; i < 8; i++ {
		if _, err := c.Query(`SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region`); err != nil {
			panic(err)
		}
		queries++
	}
	if _, _, err := c.Coordinator.Query(`SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region`); err != nil {
		panic(err)
	}
	queries++

	st := time.Now()
	snap := c.CollectStats()
	collectTime := time.Since(st)

	coordQ, _ := snap.Counter("soe_queries_total", "service=v2dqp")
	var nodeQ int64
	nodesSeen := 0
	for _, cs := range snap.CountersNamed("soe_queries_total") {
		if _, ok := stats.LabelValue(cs.Labels, "node"); ok {
			nodeQ += cs.Value
			nodesSeen++
		}
	}
	commits, _ := snap.Counter("soe_commits_total", "service=v2transact")
	t.AddRow("soe_queries_total", fmt.Sprintf("%d", coordQ), fmt.Sprintf("coordinator; %d fan-out execs on %d nodes", nodeQ, nodesSeen))
	t.AddRow("soe_commits_total", fmt.Sprintf("%d", commits), "broker transactions through the shared log")
	t.AddRow("sharedlog_appends_total", fmt.Sprintf("%d", snap.CounterTotal("sharedlog_appends_total")),
		fmt.Sprintf("%d bytes", snap.CounterTotal("sharedlog_bytes_total")))
	t.AddRow("netsim_messages_total", fmt.Sprintf("%d", snap.CounterTotal("netsim_messages_total")),
		fmt.Sprintf("%d bytes across service pairs", snap.CounterTotal("netsim_bytes_total")))
	if h, ok := snap.HistogramNamed("soe_query_ms"); ok {
		t.AddRow("soe_query_ms", fmt.Sprintf("p99=%.2fms", h.P99),
			fmt.Sprintf("p50=%.2fms p95=%.2fms n=%d", h.P50, h.P95, h.Count))
	}
	if h, ok := snap.HistogramNamed("soe_commit_ms"); ok {
		t.AddRow("soe_commit_ms", fmt.Sprintf("p99=%.2fms", h.P99),
			fmt.Sprintf("p50=%.2fms n=%d", h.P50, h.Count))
	}
	t.AddRow("collect", ms(collectTime), fmt.Sprintf("merged %d node registries over MsgStatsPull", nodesSeen))

	t.Note("%d queries issued; traces recorded: %d (query → plan → per-node task)", queries, c.Tracer.Total())
	if hot := c.Manager.HotSpots(1.5); len(hot) > 0 {
		t.Note("hotspot detection (registry-backed): %v", hot)
	}
	return t
}
