package experiments

import (
	"fmt"
	"time"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// E20ProfileOverhead — EXPLAIN ANALYZE must be cheap enough to leave on:
// the profiling wrappers (per-batch timers on pipeline boundaries, atomic
// counters on the scan hot path) add bounded overhead to a vectorized
// scan+aggregate, which is what makes always-on slow-query capture viable
// (Engine.SlowThreshold profiles every statement).
func E20ProfileOverhead(s Scale) *Table {
	t := &Table{
		ID:     "E20",
		Title:  "EXPLAIN ANALYZE overhead on the vectorized executor",
		Claim:  "per-operator profiling costs under 10% of vectorized scan+aggregate wall time — cheap enough for always-on slow-query capture",
		Header: []string{"run", "time", "overhead", "operators"},
	}

	// Enough rows that the measured wall time dwarfs timer noise even at
	// the tiny test scale; the vectorized executor amortizes the wrappers
	// over 1024-row batches, so overhead shrinks as data grows.
	n := s.Rows
	if n < 120_000 {
		n = 120_000
	}
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE pfact (id INT, grp VARCHAR, v DOUBLE)`)
	rows := make([]value.Row, n)
	groups := []string{"g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7"}
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i)), value.String(groups[i%8]), value.Float(float64(i % 1000))}
	}
	ent := eng.Cat.MustTable("pfact")
	ent.Primary().ApplyInsert(rows, 1)
	ent.Primary().Merge(2)
	eng.Mgr.AdvanceTo(2)
	eng.Mode = sqlexec.ModeVectorized

	const q = `SELECT grp, COUNT(*), SUM(v) FROM pfact WHERE v < 900 GROUP BY grp`
	const reps = 6
	// Best-of-N: the minimum is robust against scheduler noise, which at
	// sub-millisecond walls otherwise swamps the effect being measured.
	best := func(run func()) time.Duration {
		lo := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			st := time.Now()
			run()
			if d := time.Since(st); d < lo {
				lo = d
			}
		}
		return lo
	}

	plain := best(func() { eng.MustQuery(q) })
	var prof *sqlexec.Profile
	profiled := best(func() {
		_, p, err := eng.AnalyzeSQL(q)
		if err != nil {
			panic(err)
		}
		prof = p
	})

	overhead := (profiled.Seconds() - plain.Seconds()) / plain.Seconds() * 100
	if overhead < 0 {
		overhead = 0
	}
	ops := 0
	var count func(o *sqlexec.OpProfile)
	count = func(o *sqlexec.OpProfile) {
		ops++
		for _, c := range o.Children {
			count(c)
		}
	}
	count(prof.Root)

	t.AddRow("vectorized", ms(plain), "-", "-")
	t.AddRow("vectorized + profile", ms(profiled), fmt.Sprintf("%.1f%%", overhead), fmt.Sprint(ops))
	t.Note("%d rows, best of %d runs each; profiled runs also feed the slow-query log when SlowThreshold is set", n, reps)
	return t
}
