package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/core"
	"repro/internal/soe"
	"repro/internal/value"
)

func tempDir() (string, error) { return os.MkdirTemp("", "hanaeco-exp-") }

// F1Tiering — Figure 1: data moves along the temperature spectrum while
// remaining transparently queryable; per-tier access cost differs.
func F1Tiering(s Scale) *Table {
	t := &Table{
		ID:     "F1",
		Title:  "dynamic tiering across hot / extended / HDFS (Figure 1)",
		Claim:  "data ages from in-memory to extended storage and HDFS, guided by rules, without losing queryability",
		Header: []string{"phase", "hot rows", "extended rows", "hdfs rows", "query time (full count)"},
	}
	eco, err := core.New(core.Config{HDFSDataNodes: 3})
	if err != nil {
		panic(err)
	}
	defer eco.Close()
	eco.MustQuery(`CREATE TABLE readings (id INT, ts INT, v DOUBLE)`)
	now := time.Date(2015, 4, 13, 0, 0, 0, 0, time.UTC)
	n := s.Rows
	sess := eco.Engine.NewSession()
	sess.Begin()
	for i := 0; i < n; i++ {
		// A third each: fresh, months old, years old.
		var ts int64
		switch i % 3 {
		case 0:
			ts = now.Add(-time.Hour).UnixMicro()
		case 1:
			ts = now.AddDate(0, -4, 0).UnixMicro()
		case 2:
			ts = now.AddDate(-2, 0, 0).UnixMicro()
		}
		sess.Query(`INSERT INTO readings VALUES (?, ?, ?)`, value.Int(int64(i)), value.Int(ts), value.Float(float64(i)))
	}
	sess.Commit()
	sess.Close()

	countTime := func() time.Duration {
		st := time.Now()
		r := eco.MustQuery(`SELECT COUNT(*) FROM readings`)
		if int(r.Rows[0][0].I) != n {
			panic("rows lost across tiers")
		}
		return time.Since(st)
	}
	report := func(phase string) {
		counts, _ := eco.TierCounts("readings")
		t.AddRow(phase, fmt.Sprint(counts[catalog.TierHot]), fmt.Sprint(counts[catalog.TierExtended]), fmt.Sprint(counts[catalog.TierHDFS]), ms(countTime()))
	}
	report("all hot")
	if _, _, err := eco.TierByTemperature(core.TierPolicy{
		Table: "readings", DateCol: "ts",
		ExtendedAfter: 30 * 24 * time.Hour, HDFSAfter: 365 * 24 * time.Hour,
		ExtendedPenalty: 150, HDFSPenalty: 1500,
	}, now); err != nil {
		panic(err)
	}
	report("after tiering run")
	// Hot-only queries (date-bounded) skip the cold tiers via pruning.
	st := time.Now()
	r := eco.MustQuery(fmt.Sprintf(`SELECT COUNT(*) FROM readings WHERE ts > %d`, now.AddDate(0, 0, -7).UnixMicro()))
	t.Note("date-bounded hot query: %s rows in %s scanning %d/%d partitions (range pruning)",
		r.Rows[0][0].AsString(), ms(time.Since(st)), r.Stats.PartitionsScanned, r.Stats.PartitionsScanned+r.Stats.PartitionsPruned)
	t.Note("HDFS mirror files: %d (readable by MapReduce/Hive)", len(eco.HDFS.List("/tiering/")))
	return t
}

// F2CrossEngine — Figure 2: one statement through one optimizer touching
// text, geo, graph, time series and business functions.
func F2CrossEngine(s Scale) *Table {
	t := &Table{
		ID:     "F2",
		Title:  "one SQL statement across the Figure-2 engines",
		Claim:  "specialized engines combine seamlessly under a common plan generator and optimizer",
		Header: []string{"engines combined", "rows", "time"},
	}
	eco, err := core.New(core.Config{})
	if err != nil {
		panic(err)
	}
	defer eco.Close()
	eco.Bridge.Currency.SetRate("USD", 0, 0.9)
	eco.MustQuery(`CREATE TABLE sites (id VARCHAR, lat DOUBLE, lon DOUBLE, report VARCHAR, spend DOUBLE, cur VARCHAR)`)
	n := s.Rows / 10
	sess := eco.Engine.NewSession()
	sess.Begin()
	for i := 0; i < n; i++ {
		report := "routine maintenance, all normal"
		if i%7 == 0 {
			report = "urgent problem, dispenser broken and empty"
		}
		sess.Query(`INSERT INTO sites VALUES (?, ?, ?, ?, ?, 'USD')`,
			value.String(fmt.Sprintf("S%05d", i)),
			value.Float(52+float64(i%100)/100), value.Float(13+float64(i%100)/100),
			value.String(report), value.Float(float64(i%500)))
	}
	sess.Commit()
	sess.Close()

	st := time.Now()
	r := eco.MustQuery(`
		SELECT COUNT(*), SUM(CONVERT_CURRENCY(spend, cur, 'EUR', 1))
		FROM sites
		WHERE ST_WITHIN_DISTANCE(lat, lon, 52.5, 13.5, 40)
		  AND SENTIMENT(report) < 0`)
	d := time.Since(st)
	t.AddRow("geo + text + currency + relational agg", r.Rows[0][0].AsString(), ms(d))

	// Graph + geo: route to the worst site.
	eco.MustQuery(`CREATE TABLE roads (src VARCHAR, dst VARCHAR, km DOUBLE)`)
	eco.MustQuery(`INSERT INTO roads VALUES ('depot', 'hub1', 5), ('hub1', 'hub2', 7), ('hub2', 'S00000', 3), ('depot', 'S00000', 20)`)
	eco.Graph.CreateGraphView("roads", "roads", "src", "dst", "km", true)
	st = time.Now()
	r = eco.MustQuery(`SELECT COUNT(*) FROM TABLE(GRAPH_SHORTEST_PATH('roads', 'depot', 'S00000')) p`)
	t.AddRow("graph traversal via SQL table function", r.Rows[0][0].AsString(), ms(time.Since(st)))
	return t
}

// F3SOECluster — Figure 3: all services boot, transact through the broker
// and shared log, survive a query-service failure, and report statistics.
func F3SOECluster(s Scale) *Table {
	t := &Table{
		ID:     "F3",
		Title:  "full SOE landscape: boot, transact, fail over (Figure 3)",
		Claim:  "the service decomposition (v2lqp/v2dqp/v2transact/v2catalog/v2disc&auth/v2clustermgr) operates as one system",
		Header: []string{"step", "detail", "time"},
	}
	st := time.Now()
	c := soe.NewCluster(soe.ClusterConfig{Nodes: s.Nodes, Mode: soe.OLTP, LogStripes: 4, LogReplicas: 2})
	defer c.Shutdown()
	t.AddRow("boot", fmt.Sprintf("%d nodes, services %v", s.Nodes, c.Disc.Services()), ms(time.Since(st)))

	st = time.Now()
	if err := loadCluster(c, s.Rows/2, true); err != nil {
		panic(err)
	}
	t.AddRow("load through broker+log", fmt.Sprintf("%d orders, log tail %d", s.Rows/2, c.Log.Tail()), ms(time.Since(st)))

	st = time.Now()
	r, plan, err := c.Coordinator.Query(`SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region`)
	if err != nil {
		panic(err)
	}
	t.AddRow("distributed join", fmt.Sprintf("%d groups, strategy %s", len(r.Rows), plan.Strategy), ms(time.Since(st)))

	// Failover.
	victim := c.Nodes[s.Nodes-1].Name
	st = time.Now()
	tbl, _ := c.Catalog.Table("orders")
	moved := 0
	for p, nn := range tbl.NodeOf {
		if nn == victim {
			if err := c.Manager.MovePartition("orders", p, victim, c.Nodes[0].Name); err != nil {
				panic(err)
			}
			moved++
		}
	}
	itbl, _ := c.Catalog.Table("items")
	for p, nn := range itbl.NodeOf {
		if nn == victim {
			c.Manager.MovePartition("items", p, victim, c.Nodes[0].Name)
			moved++
		}
	}
	c.Manager.StopNode(victim)
	r2, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		panic(err)
	}
	t.AddRow("failover", fmt.Sprintf("moved %d partitions off %s; count still %s", moved, victim, r2.Rows[0][0].AsString()), ms(time.Since(st)))
	return t
}

// F4Ecosystem — Figure 4: one session spanning the in-memory platform,
// the SOE cluster, streaming ingestion, the Hadoop tier and SDA.
func F4Ecosystem(s Scale) *Table {
	t := &Table{
		ID:     "F4",
		Title:  "ecosystem query spanning in-memory + SOE + HDFS + streaming + SDA (Figure 4)",
		Claim:  "one platform serves SQL over in-memory data, scale-out data, Hadoop data and live streams",
		Header: []string{"component", "contribution", "time"},
	}
	eco, err := core.New(core.Config{
		HDFSDataNodes: 3,
		SOE:           &soe.ClusterConfig{Nodes: 3, Mode: soe.OLTP},
	})
	if err != nil {
		panic(err)
	}
	defer eco.Close()
	n := s.Rows / 5

	// In-memory master data.
	eco.MustQuery(`CREATE TABLE assets (id VARCHAR, site VARCHAR)`)
	sess := eco.Engine.NewSession()
	sess.Begin()
	for i := 0; i < 100; i++ {
		sess.Query(`INSERT INTO assets VALUES (?, ?)`, value.String(fmt.Sprintf("A%03d", i)), value.String(fmt.Sprintf("site%d", i%10)))
	}
	sess.Commit()
	sess.Close()

	// SOE holds the big fact table.
	schema := columnstore.Schema{
		{Name: "asset", Kind: value.KindString},
		{Name: "v", Kind: value.KindFloat},
	}
	st := time.Now()
	eco.SOE.CreateTable("measurements", schema, "asset", 6)
	var rows []value.Row
	for i := 0; i < n; i++ {
		rows = append(rows, value.Row{value.String(fmt.Sprintf("A%03d", i%100)), value.Float(float64(i % 87))})
		if len(rows) == 2000 {
			eco.SOE.Insert("measurements", rows...)
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		eco.SOE.Insert("measurements", rows...)
	}
	eco.Fed.Expose("meas", "soe", "measurements")
	t.AddRow("SOE cluster", fmt.Sprintf("%d measurements over 3 nodes", n), ms(time.Since(st)))

	// Hadoop tier holds history; expose via Hive.
	var buf []byte
	for i := 0; i < 1000; i++ {
		buf = append(buf, fmt.Sprintf("A%03d,%03d\n", i%100, i%50)...)
	}
	eco.HDFS.WriteFile("/hist/meas.csv", buf)
	eco.HiveSrc.DefineTable("hist", "/hist/meas.csv", columnstore.Schema{
		{Name: "asset", Kind: value.KindString}, {Name: "v", Kind: value.KindInt},
	})
	eco.Fed.Expose("hist", "hive", "hist")

	// Streaming ingests live events into the in-memory store.
	eco.MustQuery(`CREATE TABLE live (asset VARCHAR, v DOUBLE)`)
	stream := eco.NewStream(columnstore.Schema{{Name: "asset", Kind: value.KindString}, {Name: "v", Kind: value.KindFloat}})
	stream.IntoTable(eco.Engine, "live")
	for i := 0; i < 500; i++ {
		stream.Push(value.Row{value.String(fmt.Sprintf("A%03d", i%100)), value.Float(float64(i % 99))})
	}
	stream.Flush()
	t.AddRow("streaming (ESP)", "500 live events into the delta store", "-")

	// The spanning query: live + SOE + HDFS history joined with master
	// data in one statement.
	st = time.Now()
	r := eco.MustQuery(`
		SELECT a.site, COUNT(*) AS signals
		FROM assets a
		JOIN (SELECT l.asset FROM live l WHERE l.v > 90) hot ON hot.asset = a.id
		GROUP BY a.site ORDER BY signals DESC LIMIT 3`)
	t.AddRow("in-memory + stream join", fmt.Sprintf("%d hot sites", len(r.Rows)), ms(time.Since(st)))

	st = time.Now()
	r = eco.MustQuery(`SELECT COUNT(*) FROM TABLE(FED_MEAS('v > 80')) m`)
	t.AddRow("SDA → SOE pushdown", r.Rows[0][0].AsString()+" rows matched on the cluster", ms(time.Since(st)))

	st = time.Now()
	r = eco.MustQuery(`
		SELECT a.site, COUNT(*)
		FROM TABLE(FED_HIST('v < 10')) h JOIN assets a ON a.id = h.asset
		GROUP BY a.site ORDER BY a.site LIMIT 3`)
	t.AddRow("SDA → Hive (MapReduce) join with ERP", fmt.Sprintf("%d sites", len(r.Rows)), ms(time.Since(st)))
	return t
}
