package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/docstore"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/planning"
	"repro/internal/sqlexec"
	"repro/internal/text"
	"repro/internal/timeseries"
	"repro/internal/value"
)

// E11TextEngine — §II-C: deep text integration; indexed search vs. scan.
func E11TextEngine(s Scale) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "text engine: indexed search vs. per-row scan; auto-extraction",
		Claim:  "text analysis is deeply integrated and triggered automatically on ingestion (§II-C)",
		Header: []string{"operation", "matches", "time"},
	}
	eng := sqlexec.NewEngine()
	ix := text.Attach(eng)
	eng.MustQuery(`CREATE TABLE docs (id VARCHAR, body VARCHAR)`)
	rng := rand.New(rand.NewSource(12))
	words := []string{"dispenser", "sensor", "refill", "empty", "maintenance", "report", "status", "normal", "urgent", "check"}
	n := s.Rows / 2

	st := time.Now()
	sess := eng.NewSession()
	sess.Begin()
	for i := 0; i < n; i++ {
		var body string
		for w := 0; w < 12; w++ {
			body += words[rng.Intn(len(words))] + " "
		}
		if i%50 == 0 {
			body += "Acme Corp in Berlin reported 500 EUR damage"
		}
		sess.Query(`INSERT INTO docs VALUES (?, ?)`, value.String(fmt.Sprintf("d%d", i)), value.String(body))
	}
	sess.Commit()
	sess.Close()
	ingest := time.Since(st)

	st = time.Now()
	if err := ix.CreateIndex("docs", "body", "id"); err != nil {
		panic(err)
	}
	build := time.Since(st)
	t.AddRow(fmt.Sprintf("index build + analysis (%d docs)", n), "-", ms(build))
	t.Note("ingestion of %d docs took %s; subsequent inserts index incrementally on commit", n, ms(ingest))

	st = time.Now()
	hits, err := ix.Search("docs", "dispenser urgent")
	if err != nil {
		panic(err)
	}
	dIdx := time.Since(st)
	t.AddRow("indexed search (two terms)", fmt.Sprint(len(hits)), ms(dIdx))

	st = time.Now()
	r := eng.MustQuery(`SELECT COUNT(*) FROM docs WHERE CONTAINS_TEXT(body, 'dispenser urgent')`)
	dScan := time.Since(st)
	t.AddRow("unindexed scan (CONTAINS_TEXT)", r.Rows[0][0].AsString(), ms(dScan))
	t.Note("index beats the scan by %s", ratio(dScan.Seconds(), dIdx.Seconds()))

	st = time.Now()
	ents := eng.MustQuery(`SELECT COUNT(*) FROM TABLE(TEXT_ENTITIES('docs')) e WHERE e.etype = 'COMPANY'`)
	dEnt := time.Since(st)
	t.AddRow("auto-extracted company entities", ents.Rows[0][0].AsString(), ms(dEnt))
	return t
}

// E12GraphHierarchy — §II-E: in-engine graph/hierarchy operators.
func E12GraphHierarchy(s Scale) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "hierarchy interval labels vs. recursive walk; shortest paths",
		Claim:  "explicit graph support executes operations more effectively than application logic (§II-E, [4][5])",
		Header: []string{"operation", "n", "time"},
	}
	n := s.Rows
	h := graph.NewHierarchy()
	h.Add("n0", "")
	rng := rand.New(rand.NewSource(13))
	for i := 1; i < n; i++ {
		h.Add(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", rng.Intn(i)))
	}
	h.SubtreeCount("n0") // label once

	st := time.Now()
	reps := 1000
	for i := 0; i < reps; i++ {
		h.SubtreeCount(fmt.Sprintf("n%d", rng.Intn(n)))
	}
	dInt := time.Since(st)
	t.AddRow(fmt.Sprintf("subtree count, interval (×%d)", reps), fmt.Sprint(n), ms(dInt))

	st = time.Now()
	for i := 0; i < 50; i++ {
		h.SubtreeCountRecursive(fmt.Sprintf("n%d", rng.Intn(20)))
	}
	dRec := time.Since(st)
	t.AddRow("subtree count, recursive (×50)", fmt.Sprint(n), ms(dRec))

	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddUndirected(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", (i+1)%n), 1+rng.Float64())
		g.AddUndirected(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", rng.Intn(n)), 1+rng.Float64())
	}
	st = time.Now()
	for i := 0; i < 20; i++ {
		g.ShortestPath("v0", fmt.Sprintf("v%d", rng.Intn(n)))
	}
	dSP := time.Since(st)
	t.AddRow(fmt.Sprintf("Dijkstra shortest path (×20, %d edges)", g.NumEdges()), fmt.Sprint(n), ms(dSP))
	return t
}

// E13GeoTimeseries — §II-F: R-tree proximity vs. scan; series ops.
func E13GeoTimeseries(s Scale) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "geo R-tree vs. full scan; time series operations",
		Claim:  "geospatial and time series are native engine types with tuned operators (§II-F)",
		Header: []string{"operation", "n", "result", "time"},
	}
	n := s.Rows
	rng := rand.New(rand.NewSource(14))
	tree := geo.NewRTree()
	pts := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geo.Point{Lat: 47 + rng.Float64()*8, Lon: 6 + rng.Float64()*9}
		tree.Insert(pts[i], i)
	}
	center := geo.Point{Lat: 52.52, Lon: 13.405}

	st := time.Now()
	reps := 200
	var found int
	for i := 0; i < reps; i++ {
		found = len(tree.WithinDistance(center, 50))
	}
	dTree := time.Since(st)
	t.AddRow(fmt.Sprintf("WithinDistance 50km, R-tree (×%d)", reps), fmt.Sprint(n), fmt.Sprint(found), ms(dTree))

	st = time.Now()
	for i := 0; i < reps; i++ {
		found = 0
		for _, p := range pts {
			if center.WithinDistance(p, 50) {
				found++
			}
		}
	}
	dScan := time.Since(st)
	t.AddRow(fmt.Sprintf("WithinDistance 50km, scan (×%d)", reps), fmt.Sprint(n), fmt.Sprint(found), ms(dScan))
	t.Note("R-tree beats the scan by %s", ratio(dScan.Seconds(), dTree.Seconds()))

	series := timeseries.New()
	other := timeseries.New()
	for i := 0; i < n; i++ {
		ts := int64(i) * 1_000_000
		series.Append(ts, 20+rng.Float64())
		other.Append(ts, 40-rng.Float64())
	}
	st = time.Now()
	rs, _ := series.Resample(60_000_000, timeseries.AggAvg)
	dRes := time.Since(st)
	t.AddRow("resample 1s→1min", fmt.Sprint(n), fmt.Sprint(rs.Len()), ms(dRes))
	st = time.Now()
	c := timeseries.Correlation(series, other)
	dCorr := time.Since(st)
	t.AddRow("correlation (full join on ts)", fmt.Sprint(n), fmt.Sprintf("%.3f", c), ms(dCorr))
	return t
}

// E14InEngineAlgebra — §II-G [6]: linear algebra inside the store vs. the
// export/import cycle.
func E14InEngineAlgebra(s Scale) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "eigenvalue in-engine vs. export→external tool→import",
		Claim:  "keeping matrices in the store avoids redundant copying to external libraries (§II-G, [6])",
		Header: []string{"path", "eigenvalue", "bytes moved", "time"},
	}
	dim := 400
	if s.Rows < 20_000 {
		dim = 200
	}
	rng := rand.New(rand.NewSource(15))
	var ts []matrix.Triple
	for i := 0; i < dim; i++ {
		ts = append(ts, matrix.Triple{I: i, J: i, V: 2 + rng.Float64()})
		for k := 0; k < 4; k++ {
			j := rng.Intn(dim)
			w := rng.Float64() * 0.05
			ts = append(ts, matrix.Triple{I: i, J: j, V: w}, matrix.Triple{I: j, J: i, V: w})
		}
	}
	m, err := matrix.FromTriples(dim, dim, ts)
	if err != nil {
		panic(err)
	}
	eng := sqlexec.NewEngine()
	store := matrix.Attach(eng)
	if err := store.SaveCSR("m", m); err != nil {
		panic(err)
	}

	st := time.Now()
	evIn, _, _, err := store.EigenInEngine("m", dim, dim)
	if err != nil {
		panic(err)
	}
	dIn := time.Since(st)
	t.AddRow("in-engine (SLACID-style)", fmt.Sprintf("%.4f", evIn), "0", ms(dIn))

	dir, err := tempDir()
	if err != nil {
		panic(err)
	}
	st = time.Now()
	evEx, moved, err := store.EigenViaExport("m", dim, dim, dir)
	if err != nil {
		panic(err)
	}
	dEx := time.Since(st)
	t.AddRow("export→compute→import", fmt.Sprintf("%.4f", evEx), fmt.Sprint(moved), ms(dEx))
	t.Note("identical eigenvalues; the export path moves %d redundant bytes through the file system", moved)
	return t
}

// E15PlanningDisagg — §II-D: planning operators in the engine.
func E15PlanningDisagg(s Scale) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "plan disaggregation in-engine vs. application-side",
		Claim:  "planning needs heavy in-DB operators like disaggregation and copy (§II-D)",
		Header: []string{"path", "cells", "rows moved", "time"},
	}
	eng := sqlexec.NewEngine()
	p := planning.Attach(eng)
	eng.MustQuery(`CREATE TABLE plan (version VARCHAR, region VARCHAR, product VARCHAR, revenue DOUBLE)`)
	rng := rand.New(rand.NewSource(16))
	regions, products := 20, s.Rows/100
	sess := eng.NewSession()
	sess.Begin()
	for r := 0; r < regions; r++ {
		for pr := 0; pr < products; pr++ {
			sess.Query(`INSERT INTO plan VALUES ('actual', ?, ?, ?)`,
				value.String(fmt.Sprintf("R%02d", r)), value.String(fmt.Sprintf("P%04d", pr)), value.Float(rng.Float64()*1000))
		}
	}
	sess.Commit()
	sess.Close()
	cells := regions * products

	st := time.Now()
	nIn, err := p.Disaggregate("plan", "version", "actual", "t_eng", 1e6, "revenue")
	if err != nil {
		panic(err)
	}
	dIn := time.Since(st)
	t.AddRow("in-engine PLAN_DISAGGREGATE", fmt.Sprint(nIn), "0", ms(dIn))

	st = time.Now()
	nApp, moved, err := p.DisaggregateAppStyle("plan", "version", "actual", "t_app", 1e6, "revenue")
	if err != nil {
		panic(err)
	}
	dApp := time.Since(st)
	t.AddRow("application-side", fmt.Sprint(nApp), fmt.Sprint(moved), ms(dApp))
	t.Note("%d plan cells; the app-side path ships every cell twice across the boundary", cells)
	return t
}

// E16Docstore — §II-H: flexible tables and the materialized object index.
func E16Docstore(s Scale) *Table {
	t := &Table{
		ID:     "E16",
		Title:  "document store: object index vs. join assembly; path queries",
		Claim:  "a header–item–subitem object stored as one document acts as a materialized join index (§II-H)",
		Header: []string{"operation", "objects", "time"},
	}
	eng := sqlexec.NewEngine()
	o := docstore.Attach(eng)
	eng.MustQuery(`CREATE TABLE hdr (so VARCHAR, customer VARCHAR)`)
	eng.MustQuery(`CREATE TABLE itm (item VARCHAR, so VARCHAR, sku VARCHAR, qty INT)`)
	eng.MustQuery(`CREATE TABLE sub (sid VARCHAR, item VARCHAR, note VARCHAR)`)
	n := s.Rows / 25
	sess := eng.NewSession()
	sess.Begin()
	for i := 0; i < n; i++ {
		so := fmt.Sprintf("SO-%06d", i)
		sess.Query(`INSERT INTO hdr VALUES (?, ?)`, value.String(so), value.String(fmt.Sprintf("C%04d", i%500)))
		for j := 0; j < 3; j++ {
			item := fmt.Sprintf("%s-I%d", so, j)
			sess.Query(`INSERT INTO itm VALUES (?, ?, ?, ?)`, value.String(item), value.String(so), value.String(fmt.Sprintf("sku%d", j)), value.Int(int64(j+1)))
			sess.Query(`INSERT INTO sub VALUES (?, ?, 'n')`, value.String(item+"-S0"), value.String(item))
		}
	}
	sess.Commit()
	sess.Close()
	def := docstore.ObjectDef{
		Name:        "so_objects",
		HeaderTable: "hdr", HeaderKey: "so",
		ItemTable: "itm", ItemFK: "so", ItemKey: "item",
		SubitemTable: "sub", SubitemFK: "item",
	}
	st := time.Now()
	if _, err := o.Materialize(def); err != nil {
		panic(err)
	}
	t.AddRow("materialize object index", fmt.Sprint(n), ms(time.Since(st)))
	eng.MustQuery(`MERGE DELTA OF so_objects`)

	reads := 200
	rng := rand.New(rand.NewSource(17))
	st = time.Now()
	for i := 0; i < reads; i++ {
		if _, err := o.GetIndexed(def, fmt.Sprintf("SO-%06d", rng.Intn(n))); err != nil {
			panic(err)
		}
	}
	dIdx := time.Since(st)
	t.AddRow(fmt.Sprintf("read object, indexed (×%d)", reads), fmt.Sprint(n), ms(dIdx))

	st = time.Now()
	for i := 0; i < reads; i++ {
		if _, err := o.GetAssembled(def, fmt.Sprintf("SO-%06d", rng.Intn(n))); err != nil {
			panic(err)
		}
	}
	dAsm := time.Since(st)
	t.AddRow(fmt.Sprintf("read object, 3-way join (×%d)", reads), fmt.Sprint(n), ms(dAsm))
	t.Note("the object index answers whole-object reads %s faster than join assembly", ratio(dAsm.Seconds(), dIdx.Seconds()))

	st = time.Now()
	r := eng.MustQuery(`SELECT COUNT(*) FROM so_objects WHERE JSON_VALUE(doc, '$.customer') = 'C0042'`)
	t.AddRow(fmt.Sprintf("JSON path filter over %s docs", r.Rows[0][0].AsString()+" matching"), fmt.Sprint(n), ms(time.Since(st)))
	return t
}
