// Package experiments implements the reproduction harness: one function
// per experiment of DESIGN.md §3 (E1–E25 for the paper's quantitative
// claims, F1–F4 for its architecture figures). Each returns a formatted
// Table with the measured rows; bench_test.go wraps them as Go benchmarks
// and cmd/benchrunner prints them for EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper statement under test
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-text observation.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Scale shrinks or grows workloads uniformly; benchmarks use Small for
// fast iteration and benchrunner uses Full for EXPERIMENTS.md.
type Scale struct {
	Rows  int // base row count
	Nodes int // max cluster size
}

// The two standard scales.
var (
	Small = Scale{Rows: 5_000, Nodes: 4}
	Full  = Scale{Rows: 50_000, Nodes: 8}
)

// All runs every experiment at the given scale, in order.
func All(s Scale) []*Table {
	return []*Table{
		E1HTAPvsSplit(s), E2Compression(s), E3MergeStableKeys(s),
		E4CompiledVsInterpreted(s), E5Pushdown(s), E6AgingPruning(s),
		E7SharedLog(s), E8ScaleOutSpeedup(s), E9ScaleUpVsOut(s),
		E10HadoopPaths(s), E11TextEngine(s), E12GraphHierarchy(s),
		E13GeoTimeseries(s), E14InEngineAlgebra(s), E15PlanningDisagg(s),
		E16Docstore(s), E17MetricsReport(s), E18VectorizedMorsels(s),
		E19ChaosFailover(s), E20ProfileOverhead(s), E21ExtendedStoreTiering(s),
		E22WireLoad(s), E23CompressedExec(s), E24HTAPIngestMerge(s),
		E25SelfObservation(s),
		F1Tiering(s), F2CrossEngine(s), F3SOECluster(s), F4Ecosystem(s),
	}
}

// ByID resolves one experiment function.
func ByID(id string) (func(Scale) *Table, bool) {
	m := map[string]func(Scale) *Table{
		"E1": E1HTAPvsSplit, "E2": E2Compression, "E3": E3MergeStableKeys,
		"E4": E4CompiledVsInterpreted, "E5": E5Pushdown, "E6": E6AgingPruning,
		"E7": E7SharedLog, "E8": E8ScaleOutSpeedup, "E9": E9ScaleUpVsOut,
		"E10": E10HadoopPaths, "E11": E11TextEngine, "E12": E12GraphHierarchy,
		"E13": E13GeoTimeseries, "E14": E14InEngineAlgebra, "E15": E15PlanningDisagg,
		"E16": E16Docstore, "E17": E17MetricsReport, "E18": E18VectorizedMorsels,
		"E19": E19ChaosFailover, "E20": E20ProfileOverhead, "E21": E21ExtendedStoreTiering,
		"E22": E22WireLoad, "E23": E23CompressedExec, "E24": E24HTAPIngestMerge,
		"E25": E25SelfObservation,
		"F1":  F1Tiering, "F2": F2CrossEngine, "F3": F3SOECluster, "F4": F4Ecosystem,
	}
	f, ok := m[strings.ToUpper(id)]
	return f, ok
}

func ms(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.2fms", d.Seconds()*1000)
}

func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}
