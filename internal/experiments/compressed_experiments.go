package experiments

import (
	"fmt"
	"time"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// E23CompressedExec — §IV-A late materialization: the vectorized executor
// keeps dictionary codes and RLE runs compressed through join probes and
// group-by keying, decoding only the rows that survive. The join probes
// the build table on integer codes (non-matching fact rows are never
// boxed) and the group-by folds whole runs into its accumulators, so the
// speedup over tuple-at-a-time execution grows with the compression
// ratio rather than shrinking at the operator boundary.
func E23CompressedExec(s Scale) *Table {
	t := &Table{
		ID:     "E23",
		Title:  "compressed execution: code-valued join and run-folding group-by",
		Claim:  "operating on dictionary codes and RLE runs through join and group-by beats decode-at-scan-exit execution (§IV-A)",
		Header: []string{"query", "executor", "time", "codes joined", "runs folded", "decode avoided", "speedup vs interp"},
	}

	// The merge encoder only emits an RLE column above 1,024 rows, so the
	// workload never shrinks below the point where runs exist to fold.
	n := s.Rows
	if n < 2048 {
		n = 2048
	}
	eng := sqlexec.NewEngine()
	eng.MustQuery(`CREATE TABLE fact (rk VARCHAR, grp INT, qty INT)`)
	eng.MustQuery(`CREATE TABLE dim (rk VARCHAR, name VARCHAR)`)
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.String(fmt.Sprintf("r%03d", i%64)), // 64 dictionary codes
			value.Int(int64(i / (n / 8))),            // 8 long runs after merge
			value.Int(int64(i % 100)),
		}
	}
	fact := eng.Cat.MustTable("fact").Primary()
	fact.ApplyInsert(rows, 1)
	fact.Merge(2)
	dims := make([]value.Row, 16)
	for i := range dims {
		dims[i] = value.Row{
			value.String(fmt.Sprintf("r%03d", i*4)), // every 4th key matches
			value.String(fmt.Sprintf("name-%02d", i)),
		}
	}
	dim := eng.Cat.MustTable("dim").Primary()
	dim.ApplyInsert(dims, 1)
	dim.Merge(2)
	eng.Mgr.AdvanceTo(2)

	const reps = 3
	measure := func(mode sqlexec.Mode, q string) (time.Duration, *sqlexec.Result) {
		eng.Mode = mode
		var dur time.Duration
		var last *sqlexec.Result
		for r := 0; r < reps; r++ {
			st := time.Now()
			last = eng.MustQuery(q)
			dur += time.Since(st)
		}
		return dur / reps, last
	}
	kb := func(n int) string { return fmt.Sprintf("%dKB", n/1024) }

	queries := []struct{ name, sql string }{
		{"join", `SELECT COUNT(*), SUM(f.qty) FROM fact f JOIN dim d ON f.rk = d.rk`},
		{"group-by", `SELECT grp, COUNT(*), SUM(qty), MIN(qty), MAX(qty) FROM fact GROUP BY grp`},
	}
	for _, q := range queries {
		interp, _ := measure(sqlexec.ModeInterpreted, q.sql)
		t.AddRow(q.name, "interpreted", ms(interp), "-", "-", "-", "1.0x")
		dur, res := measure(sqlexec.ModeVectorized, q.sql)
		t.AddRow(q.name, "vectorized", ms(dur),
			fmt.Sprint(res.Stats.CodesJoined), fmt.Sprint(res.Stats.RunsFolded),
			kb(res.Stats.DecodeBytesAvoided),
			ratio(interp.Seconds(), dur.Seconds()))
	}
	t.Note("join probes %d fact rows as dictionary codes (1 in 4 keys matches); group-by folds the 8-run grp column without touching row storage", n)
	return t
}
