package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// tiny keeps the full matrix runnable in unit-test time.
var tiny = Scale{Rows: 800, Nodes: 2}

func TestAllExperimentsProduceResults(t *testing.T) {
	for _, tab := range All(tiny) {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: no rows", tab.ID)
		}
		if tab.Claim == "" {
			t.Fatalf("%s: missing claim", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s: ragged row %v", tab.ID, row)
			}
		}
		if !strings.Contains(tab.String(), tab.ID) {
			t.Fatalf("%s: rendering broken", tab.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e4"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment")
	}
}

func cell(tab *Table, row, col int) string { return tab.Rows[row][col] }

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return n
}

// The shape assertions below are what EXPERIMENTS.md claims must hold; if
// a refactor breaks a reproduced effect, these tests catch it.

func TestE1ShapeFreshness(t *testing.T) {
	tab := E1HTAPvsSplit(tiny)
	htapLag, splitLag := tab.Rows[0][5], tab.Rows[1][5]
	if htapLag != "0.0" {
		t.Fatalf("HTAP staleness = %s", htapLag)
	}
	if splitLag == "0.0" {
		t.Fatal("split system shows no staleness")
	}
}

func TestE3ShapeStableKeysNoResort(t *testing.T) {
	tab := E3MergeStableKeys(tiny)
	if cell(tab, 0, 2) != "0" || cell(tab, 0, 3) != "0" {
		t.Fatalf("stable keys resorted: %v", tab.Rows[0])
	}
	if atoi(t, cell(tab, 1, 3)) == 0 {
		t.Fatal("random keys showed no remap work")
	}
}

func TestE6ShapeSemanticPrunesBest(t *testing.T) {
	tab := E6AgingPruning(tiny)
	none := atoi(t, cell(tab, 0, 2))
	stats := atoi(t, cell(tab, 1, 2))
	semantic := atoi(t, cell(tab, 2, 2))
	if !(semantic < none) || !(semantic <= stats) {
		t.Fatalf("pruning order broken: none=%d stats=%d semantic=%d", none, stats, semantic)
	}
	// Join split scans fewer partitions than the plain semantic join.
	join := atoi(t, cell(tab, 3, 2))
	split := atoi(t, cell(tab, 4, 2))
	if !(split < join) {
		t.Fatalf("join split did not help: %d vs %d", split, join)
	}
}

func TestE9ShapeCrossover(t *testing.T) {
	tab := E9ScaleUpVsOut(tiny)
	if tab.Rows[0][3] != "scale-up" {
		t.Fatalf("small data should favor scale-up: %v", tab.Rows[0])
	}
}

func TestE10ShapePathsAgree(t *testing.T) {
	tab := E10HadoopPaths(tiny)
	a, b, c := cell(tab, 0, 1), cell(tab, 1, 1), cell(tab, 2, 1)
	if a != b || b != c {
		t.Fatalf("paths disagree: %s %s %s", a, b, c)
	}
}

func TestE17ShapeMetricsNonZero(t *testing.T) {
	tab := E17MetricsReport(tiny)
	// Counters in rows 0..3 must be non-zero: the workload ran queries,
	// commits, log appends and network messages.
	for row := 0; row < 4; row++ {
		if atoi(t, cell(tab, row, 1)) == 0 {
			t.Fatalf("%s is zero after a mixed workload", cell(tab, row, 0))
		}
	}
	// Latency histograms report sane quantiles (present, parseable,
	// non-negative, p99 bounded by something absurd like a minute).
	found := 0
	for _, row := range tab.Rows {
		if row[0] == "soe_query_ms" || row[0] == "soe_commit_ms" {
			found++
			var p99 float64
			if _, err := fmt.Sscanf(row[1], "p99=%fms", &p99); err != nil {
				t.Fatalf("%s: unparseable %q", row[0], row[1])
			}
			if p99 < 0 || p99 > 60_000 {
				t.Fatalf("%s: insane p99 %f", row[0], p99)
			}
		}
	}
	if found != 2 {
		t.Fatalf("latency histogram rows missing (found %d)", found)
	}
}

func TestE18ShapeVectorizedRuns(t *testing.T) {
	tab := E18VectorizedMorsels(tiny)
	// Every vectorized row must have actually taken the vectorized path:
	// morsels dispatched and kernels bound, never zero.
	for row := 1; row < len(tab.Rows); row++ {
		if atoi(t, cell(tab, row, 3)) == 0 {
			t.Fatalf("row %d: no morsels dispatched: %v", row, tab.Rows[row])
		}
		if atoi(t, cell(tab, row, 4)) == 0 {
			t.Fatalf("row %d: no kernels bound: %v", row, tab.Rows[row])
		}
	}
	// Timings are noisy at tiny scale, so assert only the structural shape:
	// one interpreted baseline plus three vectorized worker counts.
	if len(tab.Rows) != 4 || tab.Rows[0][0] != "interpreted" {
		t.Fatalf("unexpected table shape: %v", tab.Rows)
	}
}

func TestE14ShapeSameEigenvalue(t *testing.T) {
	tab := E14InEngineAlgebra(tiny)
	if cell(tab, 0, 1) != cell(tab, 1, 1) {
		t.Fatalf("eigenvalues differ: %s vs %s", cell(tab, 0, 1), cell(tab, 1, 1))
	}
	if cell(tab, 0, 2) != "0" {
		t.Fatal("in-engine path moved bytes")
	}
	if atoi(t, cell(tab, 1, 2)) == 0 {
		t.Fatal("export path moved nothing")
	}
}

func TestE19ShapeNoBareErrors(t *testing.T) {
	tab := E19ChaosFailover(tiny)
	// Every fault round must resolve each query as either a full answer
	// matching the healthy baseline or a labelled partial — column 4 (bare
	// errors) must be zero everywhere, and full+partial must account for
	// every query in the round.
	for row := range tab.Rows {
		queries := atoi(t, cell(tab, row, 1))
		full := atoi(t, cell(tab, row, 2))
		partial := atoi(t, cell(tab, row, 3))
		if bare := atoi(t, cell(tab, row, 4)); bare != 0 {
			t.Fatalf("round %q: %d bare errors: %v", cell(tab, row, 0), bare, tab.Rows[row])
		}
		if full+partial != queries {
			t.Fatalf("round %q: %d full + %d partial != %d queries", cell(tab, row, 0), full, partial, queries)
		}
	}
	// Single-fault rounds (crash or partition with a replica available)
	// must answer in full; the double crash must degrade to partials.
	if atoi(t, cell(tab, 1, 2)) != atoi(t, cell(tab, 1, 1)) {
		t.Fatalf("single crash did not fail over fully: %v", tab.Rows[1])
	}
	last := len(tab.Rows) - 1
	if atoi(t, cell(tab, last, 3)) == 0 {
		t.Fatalf("double crash produced no labelled partials: %v", tab.Rows[last])
	}
	// The chaos run must actually exercise the fault machinery: failovers
	// and the sealed-unit log repair show up in the notes.
	notes := strings.Join(tab.Notes, "\n")
	var recoveries, repairs, fills, retries int
	if _, err := fmt.Sscanf(notes[strings.Index(notes, "log recoveries:"):],
		"log recoveries: %d, repairs: %d, fills: %d, append retries: %d", &recoveries, &repairs, &fills, &retries); err != nil {
		t.Fatalf("unparseable log-repair note: %q", notes)
	}
	if repairs+fills+retries == 0 {
		t.Fatal("sealed unit exercised no log repair at all")
	}
	var failovers int
	if _, err := fmt.Sscanf(notes[strings.Index(notes, "fault handling:"):], "fault handling: %d failovers", &failovers); err != nil {
		t.Fatalf("unparseable fault note: %q", notes)
	}
	if failovers == 0 {
		t.Fatal("no failovers recorded across the chaos rounds")
	}
	if !strings.Contains(notes, "8/8 succeeded") {
		t.Fatalf("commits lost after unit seal: %q", notes)
	}
}

func TestE21ShapeTieredScanParity(t *testing.T) {
	tab := E21ExtendedStoreTiering(tiny)
	if len(tab.Rows) != 3 || tab.Rows[0][0] != "all-hot" {
		t.Fatalf("unexpected table shape: %v", tab.Rows)
	}
	// The warm scans must read exactly the hot row count — cross-tier
	// execution is transparent.
	hotRows := cell(tab, 0, 2)
	for row := 1; row < 3; row++ {
		if cell(tab, row, 2) != hotRows {
			t.Fatalf("warm phase %q scanned %s rows vs hot %s", cell(tab, row, 0), cell(tab, row, 2), hotRows)
		}
		if atoi(t, cell(tab, row, 3)) == 0 {
			t.Fatalf("warm phase %q faulted no pages: %v", cell(tab, row, 0), tab.Rows[row])
		}
	}
	notes := strings.Join(tab.Notes, "\n")
	if strings.Contains(notes, "ROW MISMATCH") {
		t.Fatalf("warm scan diverged: %q", notes)
	}
	// The acceptance ratio: the on-disk dataset must be >=5x the pool
	// budget, so the buffer pool genuinely cannot hold the working set.
	var pages, budget int
	var x float64
	if _, err := fmt.Sscanf(notes, "dataset %d pages vs pool budget %d pages: %fx", &pages, &budget, &x); err != nil {
		t.Fatalf("unparseable ratio note: %q", notes)
	}
	if x < 5 {
		t.Fatalf("dataset-to-budget ratio %.1fx < 5x (%d pages, budget %d)", x, pages, budget)
	}
	// Pool counters must both move and be scrapeable.
	if atoi(t, cell(tab, 1, 5)) == 0 {
		t.Fatalf("cold-pool scan recorded no pool misses: %v", tab.Rows[1])
	}
	if !strings.Contains(notes, "6/6 extstore pool metrics present") {
		t.Fatalf("extstore metrics missing from the Prometheus exposition: %q", notes)
	}
}

func TestE20ShapeProfileOverhead(t *testing.T) {
	tab := E20ProfileOverhead(tiny)
	if len(tab.Rows) != 2 || tab.Rows[0][0] != "vectorized" {
		t.Fatalf("unexpected table shape: %v", tab.Rows)
	}
	// The profiled run must actually have instrumented a plan tree.
	if atoi(t, cell(tab, 1, 3)) == 0 {
		t.Fatalf("no operators timed: %v", tab.Rows[1])
	}
	// The acceptance bound: profiling must cost under 10% of wall time.
	// E20 measures best-of-N over >=120k rows precisely so this holds even
	// at tiny scale, where single-run timings would be too noisy.
	var overhead float64
	if _, err := fmt.Sscanf(cell(tab, 1, 2), "%f%%", &overhead); err != nil {
		t.Fatalf("unparseable overhead %q: %v", cell(tab, 1, 2), err)
	}
	if overhead >= 10 {
		t.Fatalf("profiling overhead %.1f%% >= 10%%:\n%s", overhead, tab.String())
	}
}

func TestE22ShapeWireLoad(t *testing.T) {
	tab := E22WireLoad(tiny)
	if len(tab.Rows) != 3 {
		t.Fatalf("unexpected table shape: %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		if atoi(t, row[1]) == 0 {
			t.Fatalf("op %q never ran: %v", row[0], tab.Rows)
		}
	}
	notes := strings.Join(tab.Notes, "\n")
	// Transport failures are never acceptable, under load or overload.
	if strings.Contains(notes, "PROTOCOL ERRORS") || !strings.Contains(notes, " 0 protocol errors") {
		t.Fatalf("protocol errors:\n%s", notes)
	}
	// Graceful drain must not drop a single confirmed response.
	if !strings.Contains(notes, " 0 dropped") {
		t.Fatalf("drain dropped responses:\n%s", notes)
	}
}

func TestE23ShapeCompressedExec(t *testing.T) {
	tab := E23CompressedExec(tiny)
	if len(tab.Rows) != 4 {
		t.Fatalf("unexpected table shape: %v", tab.Rows)
	}
	// Row 1 is the vectorized join, row 3 the vectorized group-by: the
	// compressed paths must actually have engaged — codes probed on the
	// join, runs folded on the group-by, decode work avoided on both.
	if atoi(t, cell(tab, 1, 3)) == 0 {
		t.Fatalf("join probed no dictionary codes:\n%s", tab.String())
	}
	if atoi(t, cell(tab, 3, 4)) == 0 {
		t.Fatalf("group-by folded no RLE runs:\n%s", tab.String())
	}
	for _, r := range []int{1, 3} {
		if cell(tab, r, 5) == "0KB" {
			t.Fatalf("row %d avoided no decode work:\n%s", r, tab.String())
		}
	}
}

func TestE24ShapeHTAPIngestMerge(t *testing.T) {
	tab := E24HTAPIngestMerge(tiny)
	if len(tab.Rows) != 2 {
		t.Fatalf("unexpected table shape: %v", tab.Rows)
	}
	// The analytic side must keep answering at every ramp step, and
	// ingest must actually flow.
	for _, row := range tab.Rows {
		if atoi(t, row[3]) == 0 {
			t.Fatalf("analytic queries starved at step %s:\n%s", row[0], tab.String())
		}
		if row[2] == "0" {
			t.Fatalf("no ingest at step %s:\n%s", row[0], tab.String())
		}
	}
	// Background merges must have engaged by the end of the ramp.
	if atoi(t, cell(tab, len(tab.Rows)-1, 5)) == 0 {
		t.Fatalf("background merger never fired:\n%s", tab.String())
	}
	notes := strings.Join(tab.Notes, "\n")
	// Zero wrong results: no lost rows, no analytic errors.
	if !strings.Contains(notes, " 0 lost") {
		t.Fatalf("acked inserts went missing:\n%s", notes)
	}
	if !strings.Contains(notes, " 0 analytic errors") {
		t.Fatalf("analytic queries errored under ingest:\n%s", notes)
	}
	// Group commit must have actually grouped (batches recorded).
	if !strings.Contains(notes, "group batches") {
		t.Fatalf("pipeline note missing:\n%s", notes)
	}
}

func TestE25ShapeSelfObservation(t *testing.T) {
	tab := E25SelfObservation(tiny)
	if len(tab.Rows) != 6 {
		t.Fatalf("unexpected table shape: %v", tab.Rows)
	}
	// Both runs drove real traffic on every op class. The <5% p99 claim
	// is asserted at full scale, not here: sub-millisecond tiny-scale
	// latencies are noise-dominated.
	for _, row := range tab.Rows {
		if atoi(t, row[2]) == 0 {
			t.Fatalf("%s/%s never ran:\n%s", row[0], row[1], tab.String())
		}
	}
	notes := strings.Join(tab.Notes, "\n")
	if !strings.Contains(notes, "poller completed") || strings.Contains(notes, "completed 0 ") {
		t.Fatalf("monitoring poller never scanned sys.m_statements:\n%s", notes)
	}
}
