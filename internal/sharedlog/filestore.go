package sharedlog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileStore is a file-backed UnitStore: an append-only record file with an
// in-memory position index, reloaded on open. One of the "multiple
// implementation variants" of the distributed log (§IV-B); the HDFS-backed
// variant lives in package hdfs to avoid an import cycle.
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	index map[uint64][]byte
}

// OpenFileStore opens (creating or reloading) a file-backed store.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sharedlog: open %s: %w", path, err)
	}
	s := &FileStore{f: f, index: map[uint64][]byte{}}
	r := bufio.NewReader(f)
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // EOF or torn tail: loaded what we could
		}
		pos := binary.LittleEndian.Uint64(hdr[:8])
		n := binary.LittleEndian.Uint32(hdr[8:])
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			break
		}
		s.index[pos] = data
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return s, nil
}

// Put appends the record and indexes it.
func (s *FileStore) Put(pos uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[pos]; ok {
		return ErrWritten
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], pos)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	if _, err := s.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.f.Write(data); err != nil {
		return err
	}
	s.index[pos] = append([]byte(nil), data...)
	return nil
}

// Get reads a position from the index.
func (s *FileStore) Get(pos uint64) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.index[pos]
	return d, ok, nil
}

// Delete drops a position from the index (physical space reclaimed at the
// next compaction, which this simulation does not need).
func (s *FileStore) Delete(pos uint64) error {
	s.mu.Lock()
	delete(s.index, pos)
	s.mu.Unlock()
	return nil
}

// Close closes the backing file.
func (s *FileStore) Close() error { return s.f.Close() }
