package sharedlog

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendReadOrdered(t *testing.T) {
	l := NewInMemory(4, 1)
	var positions []uint64
	for i := 0; i < 20; i++ {
		pos, err := l.Append([]byte(fmt.Sprintf("entry-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		positions = append(positions, pos)
	}
	for i, pos := range positions {
		if pos != uint64(i) {
			t.Fatalf("position %d issued as %d", i, pos)
		}
		d, err := l.Read(pos)
		if err != nil || string(d) != fmt.Sprintf("entry-%d", i) {
			t.Fatalf("read %d: %q %v", pos, d, err)
		}
	}
	if l.Tail() != 20 {
		t.Fatalf("tail=%d", l.Tail())
	}
}

func TestConcurrentAppendsTotalOrder(t *testing.T) {
	l := NewInMemory(8, 2)
	const writers, each = 8, 50
	var wg sync.WaitGroup
	seen := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				pos, err := l.Append([]byte{byte(w), byte(i)})
				if err != nil {
					t.Error(err)
					return
				}
				seen[w] = append(seen[w], pos)
			}
		}(w)
	}
	wg.Wait()
	// All positions distinct and dense.
	all := map[uint64]bool{}
	for _, ps := range seen {
		for _, p := range ps {
			if all[p] {
				t.Fatalf("position %d issued twice", p)
			}
			all[p] = true
		}
	}
	if len(all) != writers*each || l.Tail() != writers*each {
		t.Fatalf("count=%d tail=%d", len(all), l.Tail())
	}
	// Per-writer positions are increasing (the log serializes).
	for _, ps := range seen {
		for i := 1; i < len(ps); i++ {
			if ps[i] <= ps[i-1] {
				t.Fatal("writer saw non-increasing positions")
			}
		}
	}
}

func TestWriteOnceAndHoleFilling(t *testing.T) {
	l := NewInMemory(2, 1)
	// Simulate a crashed appender: position 0 reserved but never written.
	hole := l.seq.Next()
	l.Append([]byte("after-hole"))
	if _, err := l.Read(hole); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected hole, got %v", err)
	}
	// Readers can't pass the hole until it's filled.
	entries, _, next := l.ReadFrom(0, 10)
	if len(entries) != 0 || next != hole {
		t.Fatalf("read past hole: %d entries next=%d", len(entries), next)
	}
	if err := l.Fill(hole); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(hole); !errors.Is(err, ErrFilled) {
		t.Fatalf("expected filled, got %v", err)
	}
	entries, _, next = l.ReadFrom(0, 10)
	if len(entries) != 1 || string(entries[0]) != "after-hole" || next != 2 {
		t.Fatalf("entries=%v next=%d", entries, next)
	}
	// Filling a written position is a no-op.
	if err := l.Fill(1); err != nil {
		t.Fatal(err)
	}
	if d, _ := l.Read(1); string(d) != "after-hole" {
		t.Fatal("fill clobbered data")
	}
}

func TestSealFencesOldEpoch(t *testing.T) {
	l := NewInMemory(1, 1)
	l.Append([]byte("a"))
	unit := l.stripes[0][0]
	epoch, tail := l.Seal()
	if tail != 1 {
		t.Fatalf("tail=%d", tail)
	}
	// A straggler writing with the old epoch is fenced.
	if err := unit.Write(epoch-1, 5, []byte("stale")); !errors.Is(err, ErrSealed) {
		t.Fatalf("stale write accepted: %v", err)
	}
	// The log client carries the new epoch after seal... but Seal only
	// bumps unit epochs; the client keeps appending with its own epoch.
	// Reconfigure installs a fresh epoch on client and units.
	if _, err := l.Reconfigure(l.stripes); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
}

func TestTrim(t *testing.T) {
	l := NewInMemory(2, 1)
	for i := 0; i < 10; i++ {
		l.Append([]byte{byte(i)})
	}
	l.Trim(5)
	if _, err := l.Read(3); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("expected trimmed, got %v", err)
	}
	if d, err := l.Read(7); err != nil || d[0] != 7 {
		t.Fatalf("post-trim read: %v %v", d, err)
	}
	entries, positions, _ := l.ReadFrom(0, 100)
	if len(entries) != 5 || positions[0] != 5 {
		t.Fatalf("entries=%d first=%d", len(entries), positions[0])
	}
}

func TestReplicationAllReplicasHoldData(t *testing.T) {
	l := NewInMemory(1, 3)
	pos, err := l.Append([]byte("replicated"))
	if err != nil {
		t.Fatal(err)
	}
	for r, u := range l.stripes[0] {
		d, err := u.Read(pos)
		if err != nil || len(d) == 0 || d[0] != tagData || string(d[1:]) != "replicated" {
			t.Fatalf("replica %d missing framed data: %q %v", r, d, err)
		}
	}
}

// Regression: an entry whose payload equals the old fill sentinel must not
// be misreported as a filled hole — fills are marked by the frame tag, not
// by payload bytes.
func TestFTSentinelCollisionPayloadReadsBack(t *testing.T) {
	l := NewInMemory(2, 2)
	sentinel := []byte{0xde, 0xad}
	pos, err := l.Append(sentinel)
	if err != nil {
		t.Fatal(err)
	}
	d, err := l.Read(pos)
	if err != nil {
		t.Fatalf("sentinel-valued payload misread: %v", err)
	}
	if string(d) != string(sentinel) {
		t.Fatalf("payload mangled: %x", d)
	}
	entries, _, _ := l.ReadFrom(0, 10)
	if len(entries) != 1 || string(entries[0]) != string(sentinel) {
		t.Fatalf("ReadFrom skipped a real entry: %v", entries)
	}
}

// Regression: a seal racing an append (head replica accepted the write, the
// tail fenced it) must not abandon the sequenced position — the appender
// reseals onto the new epoch and completes the chain, so readers make
// progress and the entry survives on every replica.
func TestFTReadersProgressPastSealedAppend(t *testing.T) {
	l := NewInMemory(1, 2)
	if _, err := l.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	// Fence the tail replica one epoch ahead, as a reconfiguration would.
	l.SealStripeUnit(0, 1)
	pos, err := l.Append([]byte("fenced"))
	if err != nil {
		t.Fatalf("append did not repair after seal fence: %v", err)
	}
	if d, err := l.Read(pos); err != nil || string(d) != "fenced" {
		t.Fatalf("repaired entry unreadable: %q %v", d, err)
	}
	if _, err := l.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	entries, _, next := l.ReadFrom(0, 10)
	if len(entries) != 3 || next != 3 {
		t.Fatalf("readers stalled: %d entries next=%d", len(entries), next)
	}
	// The chain is consistent: both replicas hold the repaired entry.
	for r, u := range l.stripes[0] {
		if _, err := u.Read(pos); err != nil {
			t.Fatalf("replica %d missing repaired entry: %v", r, err)
		}
	}
}

// faultStore fails a configurable number of Puts before behaving normally.
type faultStore struct {
	*MemStore
	failures int
}

var errDisk = errors.New("injected unit fault")

func (s *faultStore) Put(pos uint64, data []byte) error {
	if s.failures > 0 {
		s.failures--
		return errDisk
	}
	return s.MemStore.Put(pos, data)
}

// Regression: when a position cannot be salvaged (unit fault, not an epoch
// fence), Append fills the abandoned position and retries at a fresh one —
// readers never stall on a permanent hole.
func TestFTFailedAppendFillsAbandonedPosition(t *testing.T) {
	fs := &faultStore{MemStore: NewMemStore(), failures: 1}
	l, err := New(Config{Stripes: [][]*Unit{{NewUnit(fs)}}})
	if err != nil {
		t.Fatal(err)
	}
	pos, err := l.Append([]byte("survives"))
	if err != nil {
		t.Fatalf("append did not retry past unit fault: %v", err)
	}
	if pos != 1 {
		t.Fatalf("expected retry at fresh position 1, got %d", pos)
	}
	// Position 0 was abandoned but filled, so readers pass it.
	if _, err := l.Read(0); !errors.Is(err, ErrFilled) {
		t.Fatalf("abandoned position not filled: %v", err)
	}
	entries, _, next := l.ReadFrom(0, 10)
	if len(entries) != 1 || string(entries[0]) != "survives" || next != 2 {
		t.Fatalf("readers stalled: entries=%v next=%d", entries, next)
	}
}

// A persistent fault exhausts the bounded retries and surfaces the error.
func TestFTAppendExhaustsRetries(t *testing.T) {
	fs := &faultStore{MemStore: NewMemStore(), failures: 1 << 30}
	l, err := New(Config{Stripes: [][]*Unit{{NewUnit(fs)}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, errDisk) {
		t.Fatalf("expected injected fault, got %v", err)
	}
}

func TestStripingDistributesPositions(t *testing.T) {
	l := NewInMemory(4, 1)
	for i := 0; i < 40; i++ {
		l.Append([]byte("x"))
	}
	for s, chain := range l.stripes {
		ms := chain[0].store.(*MemStore)
		ms.mu.RLock()
		n := len(ms.m)
		ms.mu.RUnlock()
		if n != 10 {
			t.Fatalf("stripe %d holds %d entries", s, n)
		}
	}
}

func TestFileStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unit.log")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(0, []byte("zero"))
	s.Put(3, []byte("three"))
	if err := s.Put(0, []byte("dup")); !errors.Is(err, ErrWritten) {
		t.Fatal("write-once violated")
	}
	s.Close()

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	d, ok, _ := s2.Get(3)
	if !ok || string(d) != "three" {
		t.Fatalf("reload lost data: %q %v", d, ok)
	}
	if err := s2.Put(3, []byte("dup")); !errors.Is(err, ErrWritten) {
		t.Fatal("write-once lost after reload")
	}
}

func TestFileBackedLog(t *testing.T) {
	dir := t.TempDir()
	var chain []*Unit
	s, err := OpenFileStore(filepath.Join(dir, "u0.log"))
	if err != nil {
		t.Fatal(err)
	}
	chain = append(chain, NewUnit(s))
	l, err := New(Config{Stripes: [][]*Unit{chain}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	d, err := l.Read(4)
	if err != nil || string(d) != "e4" {
		t.Fatalf("read: %q %v", d, err)
	}
}

func TestReadFromNeverSkipsDataProperty(t *testing.T) {
	// Property: whatever interleaving of appends and fills, ReadFrom
	// returns every real entry in position order.
	l := NewInMemory(3, 2)
	var want []string
	i := 0
	f := func(makeHole bool) bool {
		if makeHole {
			pos := l.seq.Next()
			l.Fill(pos)
		} else {
			s := fmt.Sprintf("d%d", i)
			i++
			l.Append([]byte(s))
			want = append(want, s)
		}
		entries, _, _ := l.ReadFrom(0, 1<<20)
		if len(entries) != len(want) {
			return false
		}
		for k := range want {
			if string(entries[k]) != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
