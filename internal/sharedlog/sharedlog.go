// Package sharedlog implements the CORFU-style distributed shared log of
// §IV-B [15]: a sequencer hands out positions, entries stripe across log
// units, each stripe replicates over a chain of units, holes can be
// filled, and epochs/sealing support reconfiguration. The transaction
// broker (v2transact) of the SOE stores "all changes in a transactional
// consistent way" here; database nodes tail the log to update themselves.
// Backends: in-memory, file-backed, and HDFS-backed (package hdfs).
package sharedlog

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Errors surfaced by the log.
var (
	ErrWritten  = errors.New("sharedlog: position already written")
	ErrSealed   = errors.New("sharedlog: unit sealed for old epoch")
	ErrNotFound = errors.New("sharedlog: position not written")
	ErrFilled   = errors.New("sharedlog: position filled (junk)")
	ErrTrimmed  = errors.New("sharedlog: position trimmed")
)

// UnitStore is the storage behind one log unit replica.
type UnitStore interface {
	Put(pos uint64, data []byte) error // write-once
	Get(pos uint64) ([]byte, bool, error)
	Delete(pos uint64) error
}

// MemStore is the in-memory UnitStore.
type MemStore struct {
	mu sync.RWMutex
	m  map[uint64][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: map[uint64][]byte{}} }

// Put writes pos once.
func (s *MemStore) Put(pos uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[pos]; ok {
		return ErrWritten
	}
	s.m[pos] = data
	return nil
}

// Get reads pos.
func (s *MemStore) Get(pos uint64) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.m[pos]
	return d, ok, nil
}

// Delete removes pos (trim).
func (s *MemStore) Delete(pos uint64) error {
	s.mu.Lock()
	delete(s.m, pos)
	s.mu.Unlock()
	return nil
}

// Unit is one log unit: a write-once store guarded by an epoch.
type Unit struct {
	mu    sync.RWMutex
	store UnitStore
	epoch uint64
}

// NewUnit wraps a store as a log unit at epoch 0.
func NewUnit(store UnitStore) *Unit { return &Unit{store: store} }

// Seal raises the unit's epoch; writes tagged with older epochs fail.
// Returns the highest epoch now in force.
func (u *Unit) Seal(epoch uint64) uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	if epoch > u.epoch {
		u.epoch = epoch
	}
	return u.epoch
}

// Write stores data at pos under the given client epoch.
func (u *Unit) Write(epoch, pos uint64, data []byte) error {
	u.mu.RLock()
	cur := u.epoch
	u.mu.RUnlock()
	if epoch < cur {
		return ErrSealed
	}
	return u.store.Put(pos, data)
}

// Epoch returns the epoch currently in force on this unit.
func (u *Unit) Epoch() uint64 {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.epoch
}

// Read fetches pos.
func (u *Unit) Read(pos uint64) ([]byte, error) {
	d, ok, err := u.store.Get(pos)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	return d, nil
}

// Trim removes pos.
func (u *Unit) Trim(pos uint64) error { return u.store.Delete(pos) }

// Every stored entry is framed with a one-byte tag so filled holes are
// distinguishable from real payloads whatever their bytes are — comparing
// payloads against a junk sentinel misreports a legitimate entry that
// happens to equal the sentinel.
const (
	tagFill byte = 0x00
	tagData byte = 0x01
)

// fillFrame is the stored representation of a filled hole.
var fillFrame = []byte{tagFill}

// frame prefixes a payload with the data tag.
func frame(data []byte) []byte {
	f := make([]byte, len(data)+1)
	f[0] = tagData
	copy(f[1:], data)
	return f
}

// Sequencer hands out log positions.
type Sequencer struct {
	next atomic.Uint64
}

// Next reserves and returns the next position.
func (s *Sequencer) Next() uint64 { return s.next.Add(1) - 1 }

// Tail returns the next unissued position.
func (s *Sequencer) Tail() uint64 { return s.next.Load() }

// Config shapes a log.
type Config struct {
	// Stripes is the list of replica chains; entry at position p lives on
	// every unit of chain p % len(Stripes).
	Stripes [][]*Unit
	Epoch   uint64
}

// Log is the client view: append, read, fill, trim, checkTail.
type Log struct {
	mu        sync.RWMutex
	seq       *Sequencer
	stripes   [][]*Unit
	epoch     uint64
	trimmedLo atomic.Uint64 // positions below are trimmed

	obs atomic.Pointer[stats.Registry]
}

// Instrument attaches a metrics registry recording appends, bytes and
// append latency. Nil detaches.
func (l *Log) Instrument(reg *stats.Registry) {
	l.obs.Store(reg)
}

// New assembles a log over the given striping.
func New(cfg Config) (*Log, error) {
	if len(cfg.Stripes) == 0 {
		return nil, fmt.Errorf("sharedlog: need at least one stripe")
	}
	for i, chain := range cfg.Stripes {
		if len(chain) == 0 {
			return nil, fmt.Errorf("sharedlog: stripe %d has no units", i)
		}
	}
	return &Log{seq: &Sequencer{}, stripes: cfg.Stripes, epoch: cfg.Epoch}, nil
}

// NewInMemory builds a log with the given stripe count and replication
// factor over fresh in-memory units.
func NewInMemory(stripes, replicas int) *Log {
	cfg := Config{}
	for s := 0; s < stripes; s++ {
		var chain []*Unit
		for r := 0; r < replicas; r++ {
			chain = append(chain, NewUnit(NewMemStore()))
		}
		cfg.Stripes = append(cfg.Stripes, chain)
	}
	l, _ := New(cfg)
	return l
}

// Epoch returns the client epoch.
func (l *Log) Epoch() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.epoch
}

// maxAppendAttempts bounds the sequence of fresh positions one Append may
// burn through while repairing failed writes.
const maxAppendAttempts = 4

// Append writes data at the next position: chain replication through the
// stripe's units, position returned once every replica acknowledged.
//
// A failed write does not abandon its sequenced position: that would leave
// a permanent hole ReadFrom consumers stall on. Instead Append repairs —
// on an epoch fence (ErrSealed, a reconfiguration racing the write) it
// reseals to adopt the new epoch and completes the chain with the real
// payload; if the position cannot be salvaged it is filled so readers make
// progress, and the append retries at a fresh position.
func (l *Log) Append(data []byte) (uint64, error) {
	t0 := time.Now()
	fr := frame(data)
	var lastErr error
	for attempts := 0; attempts < maxAppendAttempts; {
		pos := l.seq.Next()
		err := l.writeAt(pos, fr)
		if err == nil {
			l.recordAppend(t0, len(data))
			return pos, nil
		}
		if errors.Is(err, ErrWritten) {
			continue // lost the race for this position; take the next
		}
		lastErr = err
		attempts++
		if reg := l.obs.Load(); reg != nil {
			reg.Counter("sharedlog_append_retries_total").Inc()
		}
		if errors.Is(err, ErrSealed) {
			// A seal fenced this write mid-chain (possibly after the head
			// replica accepted it). Adopt the new epoch and complete the
			// chain with the real payload — the append still succeeds.
			l.Reseal()
			if cerr := l.completeAt(pos, fr); cerr == nil {
				if reg := l.obs.Load(); reg != nil {
					reg.Counter("sharedlog_repairs_total").Inc()
				}
				l.recordAppend(t0, len(data))
				return pos, nil
			}
		}
		// The position is lost: fill it so readers pass the hole, then
		// retry the payload at a fresh position.
		if ferr := l.completeAt(pos, fillFrame); ferr == nil {
			if reg := l.obs.Load(); reg != nil {
				reg.Counter("sharedlog_fills_total").Inc()
			}
		}
	}
	return 0, lastErr
}

func (l *Log) recordAppend(t0 time.Time, n int) {
	if reg := l.obs.Load(); reg != nil {
		reg.Counter("sharedlog_appends_total").Inc()
		reg.Counter("sharedlog_bytes_total").Add(int64(n))
		reg.Histogram("sharedlog_append_ms").ObserveSince(t0)
	}
}

func (l *Log) writeAt(pos uint64, data []byte) error {
	l.mu.RLock()
	chain := l.stripes[pos%uint64(len(l.stripes))]
	epoch := l.epoch
	l.mu.RUnlock()
	for i, u := range chain {
		if err := u.Write(epoch, pos, data); err != nil {
			// Replica 0 rejecting ErrWritten means the slot is taken; a
			// later replica rejecting it means a previous fill/append
			// already got there — both surface to the caller.
			if i == 0 || !errors.Is(err, ErrWritten) {
				return err
			}
		}
	}
	return nil
}

// Read fetches the entry at pos from the stripe's tail replica (the one
// guaranteed complete under chain replication). The frame tag decides
// data vs fill, so payload bytes are never misinterpreted as a fill.
func (l *Log) Read(pos uint64) ([]byte, error) {
	if pos < l.trimmedLo.Load() {
		return nil, ErrTrimmed
	}
	l.mu.RLock()
	chain := l.stripes[pos%uint64(len(l.stripes))]
	l.mu.RUnlock()
	d, err := chain[len(chain)-1].Read(pos)
	if err != nil {
		return nil, err
	}
	if len(d) == 0 || d[0] == tagFill {
		return nil, ErrFilled
	}
	return d[1:], nil
}

// Fill marks a hole so readers can make progress past a crashed appender.
// Replicas that already hold an entry keep it (write-once).
func (l *Log) Fill(pos uint64) error {
	err := l.completeAt(pos, fillFrame)
	if err == nil {
		if reg := l.obs.Load(); reg != nil {
			reg.Counter("sharedlog_fills_total").Inc()
		}
	}
	return err
}

// completeAt writes data to every replica of pos's chain under the current
// epoch, ignoring replicas that already hold an entry — the chain-repair
// primitive behind fills and post-seal append completion.
func (l *Log) completeAt(pos uint64, data []byte) error {
	l.mu.RLock()
	chain := l.stripes[pos%uint64(len(l.stripes))]
	epoch := l.epoch
	l.mu.RUnlock()
	for _, u := range chain {
		if err := u.Write(epoch, pos, data); err != nil && !errors.Is(err, ErrWritten) {
			return err
		}
	}
	return nil
}

// Tail returns the next position the sequencer will issue.
func (l *Log) Tail() uint64 { return l.seq.Tail() }

// Trim discards entries below pos.
func (l *Log) Trim(pos uint64) {
	for {
		lo := l.trimmedLo.Load()
		if pos <= lo || l.trimmedLo.CompareAndSwap(lo, pos) {
			break
		}
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	for p := uint64(0); p < pos; p++ {
		chain := l.stripes[p%uint64(len(l.stripes))]
		for _, u := range chain {
			u.Trim(p)
		}
	}
}

// Trimmed returns the low-water mark.
func (l *Log) Trimmed() uint64 { return l.trimmedLo.Load() }

// Seal bumps the epoch everywhere and returns the new epoch plus the
// current tail — the reconfiguration primitive: after Seal, writers on the
// old epoch are fenced out.
func (l *Log) Seal() (uint64, uint64) {
	l.mu.Lock()
	l.epoch++
	epoch := l.epoch
	stripes := l.stripes
	l.mu.Unlock()
	for _, chain := range stripes {
		for _, u := range chain {
			u.Seal(epoch)
		}
	}
	return epoch, l.seq.Tail()
}

// Reseal re-synchronizes the client with the highest epoch in force on any
// unit (a lagging writer catching up after a reconfiguration sealed units
// ahead of it) and seals every unit to that epoch. Returns the adopted
// epoch. Unlike Seal it never advances past what is already in force.
func (l *Log) Reseal() uint64 {
	l.mu.RLock()
	stripes := l.stripes
	epoch := l.epoch
	l.mu.RUnlock()
	for _, chain := range stripes {
		for _, u := range chain {
			if e := u.Epoch(); e > epoch {
				epoch = e
			}
		}
	}
	l.mu.Lock()
	if epoch > l.epoch {
		l.epoch = epoch
	}
	epoch = l.epoch
	l.mu.Unlock()
	for _, chain := range stripes {
		for _, u := range chain {
			u.Seal(epoch)
		}
	}
	return epoch
}

// SealStripeUnit seals one unit a single epoch ahead of the client — a
// fault-injection hook simulating a reconfiguration racing an appender
// (chaos experiments and tests). The next append hitting that stripe fails
// with ErrSealed and must take the repair path.
func (l *Log) SealStripeUnit(stripe, replica int) uint64 {
	l.mu.RLock()
	u := l.stripes[stripe][replica]
	epoch := l.epoch
	l.mu.RUnlock()
	return u.Seal(epoch + 1)
}

// Reconfigure swaps in a new striping at a new epoch (e.g. adding units).
// Existing positions must remain readable: callers pass a striping whose
// prefix mapping is compatible or migrate data first.
func (l *Log) Reconfigure(stripes [][]*Unit) (uint64, error) {
	if len(stripes) == 0 {
		return 0, fmt.Errorf("sharedlog: empty striping")
	}
	epoch, _ := l.Seal()
	l.mu.Lock()
	l.stripes = stripes
	l.epoch = epoch + 1
	newEpoch := l.epoch
	l.mu.Unlock()
	for _, chain := range stripes {
		for _, u := range chain {
			u.Seal(newEpoch)
		}
	}
	return newEpoch, nil
}

// ReadFrom streams entries in [from, tail), skipping filled holes,
// stopping at the first unwritten position. Returns entries and the next
// position to poll — the replica catch-up loop of the SOE's OLAP nodes.
func (l *Log) ReadFrom(from uint64, max int) (entries [][]byte, positions []uint64, next uint64) {
	next = from
	tail := l.Tail()
	for next < tail && len(entries) < max {
		d, err := l.Read(next)
		switch {
		case err == nil:
			entries = append(entries, d)
			positions = append(positions, next)
			next++
		case errors.Is(err, ErrFilled) || errors.Is(err, ErrTrimmed):
			next++
		case errors.Is(err, ErrNotFound):
			// Hole: an appender holds this position but has not finished.
			return entries, positions, next
		default:
			return entries, positions, next
		}
	}
	return entries, positions, next
}
