package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 || Int(42).K != KindInt {
		t.Fatal("Int")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Fatal("Float")
	}
	if String("x").AsString() != "x" {
		t.Fatal("String")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Fatal("Bool")
	}
	ts := time.Date(2015, 4, 13, 9, 0, 0, 0, time.UTC) // ICDE'15 in Seoul
	if !Time(ts).AsTime().Equal(ts) {
		t.Fatal("Time round trip")
	}
	if !Null.IsNull() || Null.AsString() != "NULL" {
		t.Fatal("Null")
	}
}

func TestCoercions(t *testing.T) {
	if Float(3.9).AsInt() != 3 {
		t.Fatal("float->int truncates")
	}
	if String("17").AsInt() != 17 {
		t.Fatal("string->int")
	}
	if Int(0).AsBool() || !Int(5).AsBool() {
		t.Fatal("int->bool")
	}
	if Coerce(String("2015-04-13"), KindTime).IsNull() {
		t.Fatal("date parse")
	}
	if !Coerce(String("not a date"), KindTime).IsNull() {
		t.Fatal("bad date must be NULL")
	}
	if Coerce(Int(3), KindString).S != "3" {
		t.Fatal("int->string")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Null, Null, 0},
		{Int(1), Int(2), -1},
		{Float(2.5), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{String("a"), String("b"), -1},
		{String("10"), Int(9), 1}, // numeric coercion, not lexicographic
		{Bool(true), Bool(false), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Fatalf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	if Add(Int(2), Int(3)).I != 5 {
		t.Fatal("int add")
	}
	if Add(Int(2), Float(0.5)).F != 2.5 {
		t.Fatal("promoted add")
	}
	if Add(String("a"), String("b")).S != "ab" {
		t.Fatal("concat")
	}
	if !Add(Null, Int(1)).IsNull() {
		t.Fatal("null propagation")
	}
	if Sub(Int(5), Int(3)).I != 2 || Mul(Int(4), Int(3)).I != 12 {
		t.Fatal("sub/mul")
	}
	if Div(Int(7), Int(2)).F != 3.5 {
		t.Fatal("non-even int div promotes")
	}
	if Div(Int(8), Int(2)).I != 4 {
		t.Fatal("even int div stays int")
	}
	if !Div(Int(1), Int(0)).IsNull() {
		t.Fatal("div by zero")
	}
	if Mod(Int(7), Int(3)).I != 1 || !Mod(Int(7), Int(0)).IsNull() {
		t.Fatal("mod")
	}
	if Neg(Int(2)).I != -2 || Neg(Float(1.5)).F != -1.5 {
		t.Fatal("neg")
	}
}

func TestHashConsistency(t *testing.T) {
	// Values that compare equal across numeric kinds must hash equal
	// (hash join correctness).
	if Int(7).Hash() != Float(7).Hash() {
		t.Fatal("int/float hash mismatch")
	}
	if Int(7).Hash() == Int(8).Hash() {
		t.Fatal("suspicious collision")
	}
	if String("abc").Hash() == String("abd").Hash() {
		t.Fatal("string collision")
	}
	if math.IsNaN(0) { // keep math import honest
		t.Fatal()
	}
}

func TestCompareIsAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(a, b string) bool {
		return Compare(String(a), String(b)) == -Compare(String(b), String(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowKeyInjective(t *testing.T) {
	a := Row{Int(1), String("x")}
	b := Row{Int(1), String("x")}
	c := Row{String("1"), String("x")}
	if a.Key() != b.Key() {
		t.Fatal("equal rows must share keys")
	}
	if a.Key() == c.Key() {
		t.Fatal("kind must participate in key")
	}
	if k := (Row{String("a\x1fb")}).Key(); k == (Row{String("a"), String("b")}).Key() {
		t.Fatal("separator collision")
	}
}

func TestParseKind(t *testing.T) {
	for s, k := range map[string]Kind{"int": KindInt, "VARCHAR": KindString, "Double": KindFloat, "bool": KindBool, "TIMESTAMP": KindTime} {
		got, err := ParseKind(s)
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q)=%v,%v", s, got, err)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Fatal("unknown type must error")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), String("a")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].I != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestKindStringsAndNumeric(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "DOUBLE",
		KindString: "VARCHAR", KindBool: "BOOLEAN", KindTime: "TIMESTAMP",
	} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
	if !Int(1).Numeric() || !Float(1).Numeric() || !Bool(true).Numeric() || !TimeMicros(1).Numeric() {
		t.Fatal("numeric kinds")
	}
	if String("x").Numeric() || Null.Numeric() {
		t.Fatal("non-numeric kinds")
	}
}

func TestAsStringAndAsBoolAllKinds(t *testing.T) {
	if Float(2.5).AsString() != "2.5" || Bool(true).AsString() != "TRUE" || Bool(false).AsString() != "FALSE" {
		t.Fatal("renders")
	}
	ts := time.Date(2015, 4, 13, 9, 30, 0, 0, time.UTC)
	if Time(ts).AsString() != "2015-04-13 09:30:00.000000" {
		t.Fatalf("time render: %q", Time(ts).AsString())
	}
	if (Value{K: Kind(99)}).AsString() == "" {
		t.Fatal("unknown kind render")
	}
	if !Float(0.5).AsBool() || Float(0).AsBool() {
		t.Fatal("float bool")
	}
	if !String("x").AsBool() || String("").AsBool() {
		t.Fatal("string bool")
	}
	if Null.AsBool() {
		t.Fatal("null bool")
	}
	if String("3.5").AsFloat() != 3.5 || Null.AsFloat() != 0 || Null.AsInt() != 0 {
		t.Fatal("coercions")
	}
}

func TestEqualAndSubMulNullPropagation(t *testing.T) {
	if !Equal(Int(3), Float(3)) || Equal(Int(3), Int(4)) {
		t.Fatal("Equal")
	}
	if !Sub(Null, Int(1)).IsNull() || !Mul(Int(1), Null).IsNull() {
		t.Fatal("null propagation")
	}
	if Sub(Float(1.5), Int(1)).F != 0.5 || Mul(Float(2), Float(3)).F != 6 {
		t.Fatal("float paths")
	}
	if !Neg(String("x")).IsNull() {
		t.Fatal("neg of string")
	}
}

func TestCoerceAllTargets(t *testing.T) {
	if Coerce(Int(1), KindBool).AsBool() != true {
		t.Fatal("int->bool")
	}
	if Coerce(Float(3.7), KindInt).I != 3 {
		t.Fatal("float->int")
	}
	if Coerce(Bool(true), KindFloat).F != 1 {
		t.Fatal("bool->float")
	}
	if Coerce(Int(5), KindTime).K != KindTime {
		t.Fatal("int->time")
	}
	if Coerce(String("2015-04-13 10:00:00"), KindTime).IsNull() {
		t.Fatal("datetime parse")
	}
	if !Coerce(Int(1), Kind(99)).IsNull() {
		t.Fatal("unknown target")
	}
	v := Int(7)
	if Coerce(v, KindInt) != v || !Coerce(Null, KindFloat).IsNull() {
		t.Fatal("identity/null")
	}
}
