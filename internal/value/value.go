// Package value defines the dynamic value model shared by every engine in
// the ecosystem. Columns are stored in typed, compressed form inside the
// column store; Value is the boundary representation used by expressions,
// query results, the wire format of the simulated cluster, and the log.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the logical data types of the ecosystem. The paper's
// domain engines add semantic types (geometry, time series, documents) that
// are represented at this layer as String (serialized) or via dedicated
// tables; the relational core needs only these kinds.
type Kind uint8

// The supported logical types.
const (
	KindNull   Kind = iota
	KindInt         // 64-bit signed integer
	KindFloat       // 64-bit IEEE float
	KindString      // UTF-8 string
	KindBool        // boolean
	KindTime        // instant, microseconds since Unix epoch, UTC
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// ParseKind maps a SQL type name to a Kind. It accepts the common aliases
// used by the shell and the DDL parser.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return KindInt, nil
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return KindFloat, nil
	case "VARCHAR", "STRING", "TEXT", "CHAR", "NVARCHAR", "DOCUMENT":
		return KindString, nil
	case "BOOLEAN", "BOOL":
		return KindBool, nil
	case "TIMESTAMP", "DATE", "TIME", "DATETIME":
		return KindTime, nil
	default:
		return KindNull, fmt.Errorf("value: unknown type %q", s)
	}
}

// Value is a tagged union holding one dynamically typed value. The zero
// Value is NULL. Values are small (no pointer chasing except strings) so
// they can be passed by value through operator pipelines.
type Value struct {
	K Kind
	I int64   // Int, Bool (0/1), Time (unix micros)
	F float64 // Float
	S string  // String
}

// Null is the NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// String returns a string value.
func String(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// Time returns a timestamp value.
func Time(t time.Time) Value { return Value{K: KindTime, I: t.UnixMicro()} }

// TimeMicros returns a timestamp value from raw microseconds since epoch.
func TimeMicros(us int64) Value { return Value{K: KindTime, I: us} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsInt returns the value as int64, coercing floats and bools.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindBool, KindTime:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindString:
		n, _ := strconv.ParseInt(v.S, 10, 64)
		return n
	default:
		return 0
	}
}

// AsFloat returns the value as float64, coercing ints and bools.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindFloat:
		return v.F
	case KindInt, KindBool, KindTime:
		return float64(v.I)
	case KindString:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	default:
		return 0
	}
}

// AsBool returns the value as a boolean; non-zero numerics are true.
func (v Value) AsBool() bool {
	switch v.K {
	case KindBool, KindInt, KindTime:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// AsString renders the value for result sets and string coercion.
func (v Value) AsString() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindTime:
		return v.AsTime().UTC().Format("2006-01-02 15:04:05.000000")
	default:
		return fmt.Sprintf("<%v>", v.K)
	}
}

// AsTime returns the value as a time.Time (UTC).
func (v Value) AsTime() time.Time { return time.UnixMicro(v.I).UTC() }

// Numeric reports whether the value participates in arithmetic.
func (v Value) Numeric() bool {
	return v.K == KindInt || v.K == KindFloat || v.K == KindBool || v.K == KindTime
}

// Compare orders two values. NULL sorts first; numeric kinds compare by
// numeric value; strings lexicographically. Cross-kind numeric/string
// comparison coerces the string.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if a.K == KindString && b.K == KindString {
		return strings.Compare(a.S, b.S)
	}
	if a.K == KindString || b.K == KindString {
		// Coerce the string side to float for mixed comparisons.
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.K == KindFloat || b.K == KindFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.I < b.I:
		return -1
	case a.I > b.I:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Add returns a+b with numeric promotion; string operands concatenate.
func Add(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.K == KindString || b.K == KindString {
		return String(a.AsString() + b.AsString())
	}
	if a.K == KindFloat || b.K == KindFloat {
		return Float(a.AsFloat() + b.AsFloat())
	}
	return Int(a.AsInt() + b.AsInt())
}

// Sub returns a-b with numeric promotion.
func Sub(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.K == KindFloat || b.K == KindFloat {
		return Float(a.AsFloat() - b.AsFloat())
	}
	return Int(a.AsInt() - b.AsInt())
}

// Mul returns a*b with numeric promotion.
func Mul(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.K == KindFloat || b.K == KindFloat {
		return Float(a.AsFloat() * b.AsFloat())
	}
	return Int(a.AsInt() * b.AsInt())
}

// Div returns a/b; division by zero yields NULL (SQL semantics would raise,
// we degrade gracefully for analytic robustness). Integer operands divide
// as floats when not evenly divisible.
func Div(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	bf := b.AsFloat()
	if bf == 0 {
		return Null
	}
	if a.K == KindInt && b.K == KindInt && a.I%b.I == 0 {
		return Int(a.I / b.I)
	}
	return Float(a.AsFloat() / bf)
}

// Mod returns a%b for integers; NULL on zero divisor.
func Mod(a, b Value) Value {
	if a.IsNull() || b.IsNull() || b.AsInt() == 0 {
		return Null
	}
	return Int(a.AsInt() % b.AsInt())
}

// Neg returns -a.
func Neg(a Value) Value {
	switch a.K {
	case KindInt:
		return Int(-a.I)
	case KindFloat:
		return Float(-a.F)
	default:
		return Null
	}
}

// Hash returns a 64-bit hash of the value, used by hash joins and
// aggregation. Equal values (under Compare) of the same numeric family hash
// identically: ints and floats holding the same integral value collide as
// required.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	switch v.K {
	case KindNull:
		return 0x9e3779b97f4a7c15
	case KindString:
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= prime64
		}
		return h
	case KindFloat:
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			return hashInt(int64(v.F))
		}
		return hashInt(int64(math.Float64bits(v.F)))
	default:
		return hashInt(v.I)
	}
}

func hashInt(i int64) uint64 {
	x := uint64(i)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Coerce converts v to kind k, returning NULL when the conversion is not
// meaningful. Used by INSERT type adaptation and the docstore.
func Coerce(v Value, k Kind) Value {
	if v.IsNull() || v.K == k {
		return v
	}
	switch k {
	case KindInt:
		return Int(v.AsInt())
	case KindFloat:
		return Float(v.AsFloat())
	case KindString:
		return String(v.AsString())
	case KindBool:
		return Bool(v.AsBool())
	case KindTime:
		if v.K == KindString {
			for _, layout := range []string{"2006-01-02 15:04:05.000000", "2006-01-02 15:04:05", "2006-01-02"} {
				if t, err := time.ParseInLocation(layout, v.S, time.UTC); err == nil {
					return Time(t)
				}
			}
			return Null
		}
		return TimeMicros(v.AsInt())
	default:
		return Null
	}
}

// Row is a tuple of values.
type Row []Value

// Clone returns a deep-enough copy of the row (strings are immutable in Go,
// so copying the slice suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Key renders a row as a canonical grouping key. It is injective for rows
// of the same shape and is used by hash aggregation and distinct.
func (r Row) Key() string {
	var sb strings.Builder
	for i, v := range r {
		if i > 0 {
			sb.WriteByte(0x1f)
		}
		sb.WriteByte(byte(v.K))
		sb.WriteString(v.AsString())
	}
	return sb.String()
}
