package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqlexec"
)

func TestDenseMulAndTranspose(t *testing.T) {
	a := NewDense(2, 3)
	for i := 0; i < 6; i++ {
		a.Data[i] = float64(i + 1) // [[1 2 3][4 5 6]]
	}
	b := a.Transpose()
	if b.Rows != 3 || b.Cols != 2 || b.At(2, 1) != 6 {
		t.Fatalf("transpose=%v", b)
	}
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	// [[14 32][32 77]]
	if c.At(0, 0) != 14 || c.At(0, 1) != 32 || c.At(1, 1) != 77 {
		t.Fatalf("mul=%v", c.Data)
	}
	if _, err := a.Mul(a); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestDenseMulVec(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	v, err := a.MulVec([]float64{1, 1})
	if err != nil || v[0] != 2 || v[1] != 3 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("bad vector length accepted")
	}
}

func TestCSRFromTriples(t *testing.T) {
	ts := []Triple{{1, 2, 5}, {0, 0, 1}, {1, 2, 3}, {2, 1, 7}} // duplicate (1,2) sums
	c, err := FromTriples(3, 3, ts)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 3 {
		t.Fatalf("nnz=%d", c.NNZ())
	}
	if c.At(1, 2) != 8 || c.At(0, 0) != 1 || c.At(2, 1) != 7 || c.At(2, 2) != 0 {
		t.Fatal("CSR values wrong")
	}
	if _, err := FromTriples(2, 2, []Triple{{5, 0, 1}}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestCSRDenseAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		d := NewDense(rows, cols)
		var ts []Triple
		for k := 0; k < rng.Intn(30); k++ {
			i, j, v := rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()
			d.Set(i, j, d.At(i, j)+v)
			ts = append(ts, Triple{i, j, v})
		}
		c, err := FromTriples(rows, cols, ts)
		if err != nil {
			return false
		}
		// Element-wise agreement (tolerating float summation order).
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if math.Abs(c.At(i, j)-d.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		// MulVec agreement.
		v := make([]float64, cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		cv, _ := c.MulVec(v)
		dv, _ := d.MulVec(v)
		for i := range cv {
			if math.Abs(cv[i]-dv[i]) > 1e-9 {
				return false
			}
		}
		// Transpose round trip.
		tt := c.Transpose().Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if math.Abs(tt.At(i, j)-c.At(i, j)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerIterationKnownEigenvalue(t *testing.T) {
	// [[2 0][0 1]] has dominant eigenvalue 2, eigenvector e1.
	d := NewDense(2, 2)
	d.Set(0, 0, 2)
	d.Set(1, 1, 1)
	ev, vec, iters, err := PowerIteration(d, 2, 500, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev-2) > 1e-6 {
		t.Fatalf("eigenvalue=%v after %d iters", ev, iters)
	}
	if math.Abs(math.Abs(vec[0])-1) > 1e-4 {
		t.Fatalf("eigenvector=%v", vec)
	}
}

func TestPowerIterationSymmetric(t *testing.T) {
	// Symmetric [[4 1][1 3]]: dominant eigenvalue (7+sqrt(5))/2 ≈ 4.618.
	d := NewDense(2, 2)
	d.Set(0, 0, 4)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(1, 1, 3)
	ev, _, _, err := PowerIteration(d, 2, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := (7 + math.Sqrt(5)) / 2
	if math.Abs(ev-want) > 1e-6 {
		t.Fatalf("eigenvalue=%v want %v", ev, want)
	}
}

func TestCovariance(t *testing.T) {
	// Two perfectly correlated columns.
	d := NewDense(4, 2)
	for i := 0; i < 4; i++ {
		d.Set(i, 0, float64(i))
		d.Set(i, 1, 2*float64(i))
	}
	cov := Covariance(d)
	// var(x) = 5/3, cov(x,2x) = 10/3, var(2x) = 20/3.
	if math.Abs(cov.At(0, 0)-5.0/3) > 1e-9 || math.Abs(cov.At(0, 1)-10.0/3) > 1e-9 || math.Abs(cov.At(1, 1)-20.0/3) > 1e-9 {
		t.Fatalf("cov=%v", cov.Data)
	}
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Fatal("not symmetric")
	}
}

func TestStoreRoundTripAndEigen(t *testing.T) {
	eng := sqlexec.NewEngine()
	st := Attach(eng)
	m, _ := FromTriples(3, 3, []Triple{{0, 0, 3}, {1, 1, 2}, {2, 2, 1}, {0, 1, 0.5}, {1, 0, 0.5}})
	if err := st.SaveCSR("m1", m); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadCSR("m1", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != m.NNZ() || got.At(0, 1) != 0.5 {
		t.Fatal("round trip broken")
	}
	ev, _, _, err := st.EigenInEngine("m1", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Dominant eigenvalue of [[3 .5][.5 2]] block ≈ 3.207.
	if math.Abs(ev-3.2071067) > 1e-4 {
		t.Fatalf("eigen=%v", ev)
	}
	// SQL surface.
	r := eng.MustQuery(`SELECT MATRIX_EIGENVALUE('m1', 3, 3), MATRIX_NNZ('m1', 3, 3)`)
	if math.Abs(r.Rows[0][0].F-ev) > 1e-9 || r.Rows[0][1].I != int64(m.NNZ()) {
		t.Fatalf("sql=%v", r.Rows[0])
	}
}

func TestEigenViaExportMatchesInEngine(t *testing.T) {
	eng := sqlexec.NewEngine()
	st := Attach(eng)
	rng := rand.New(rand.NewSource(99))
	var ts []Triple
	n := 20
	for i := 0; i < n; i++ {
		ts = append(ts, Triple{i, i, 1 + rng.Float64()})
		if i > 0 {
			w := rng.Float64() * 0.1
			ts = append(ts, Triple{i, i - 1, w}, Triple{i - 1, i, w})
		}
	}
	m, _ := FromTriples(n, n, ts)
	if err := st.SaveCSR("m2", m); err != nil {
		t.Fatal(err)
	}
	inEv, _, _, err := st.EigenInEngine("m2", n, n)
	if err != nil {
		t.Fatal(err)
	}
	exEv, moved, err := st.EigenViaExport("m2", n, n, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inEv-exEv) > 1e-6 {
		t.Fatalf("in=%v export=%v", inEv, exEv)
	}
	if moved == 0 {
		t.Fatal("export moved no bytes?")
	}
}
